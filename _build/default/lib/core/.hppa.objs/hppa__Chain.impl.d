lib/core/chain.ml: Array Format Hppa_word Int List Printf Result
