(* Classic intrusive doubly-linked list over a hashtable, one mutex for
   the lot. The list head is most recent, the tail the eviction victim.
   Sentinel-free: [first]/[last] options with node prev/next pointers. *)

type node = {
  key : string;
  mutable value : string;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable first : node option; (* most recently used *)
  mutable last : node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 4096);
    first = None;
    last = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let size t = locked t (fun () -> Hashtbl.length t.table)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)

let hit_rate t =
  locked t (fun () ->
      let total = t.hits + t.misses in
      if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total)

(* Detach [n] from the recency list (caller holds the lock). *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

(* Push [n] to the front (caller holds the lock, [n] detached). *)
let push_front t n =
  n.next <- t.first;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          t.hits <- t.hits + 1;
          unlink t n;
          push_front t n;
          Some n.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t key value =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          n.value <- value;
          unlink t n;
          push_front t n
      | None ->
          if Hashtbl.length t.table >= t.capacity then (
            match t.last with
            | Some victim ->
                unlink t victim;
                Hashtbl.remove t.table victim.key;
                t.evictions <- t.evictions + 1
            | None -> ());
          let n = { key; value; prev = None; next = None } in
          Hashtbl.replace t.table key n;
          push_front t n)
