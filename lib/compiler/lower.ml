module Word = Hppa_word.Word
module Plan = Hppa_plan.Strategy
module Selector = Hppa_plan.Selector

type t = {
  entry : string;
  params : string list;
  source : Program.source;
  millicode_calls : int;
  inline_multiplies : int;
}

let inline_mul_threshold = 6

exception Unsupported of string

(* Parameters live in r3..r6, expression temporaries in r7..r18; both
   ranges survive millicode calls (the library touches only r1, r19..r31
   and the argument/result registers). *)
let param_regs = [ 3; 4; 5; 6 ] |> List.map Reg.of_int
let temp_regs = List.init 12 (fun i -> Reg.of_int (7 + i))

(* Scratch registers handed to inline chains: the result temp first, then
   caller-saved scratch the chains may clobber freely. *)
let chain_scratch = [ Reg.t2; Reg.t3; Reg.t4; Reg.t5 ]

type state = {
  b : Builder.t;
  vars : (string * Reg.t) list;
  mutable free : Reg.t list;
  mutable millicode_calls : int;
  mutable inline_multiplies : int;
  mutable plans : (string * Program.source) list; (* per-constant routines *)
  trap_overflow : bool;
  small_divisor_dispatch : bool;
  require_certified : bool;
}

let alloc st =
  match st.free with
  | r :: rest ->
      st.free <- rest;
      r
  | [] -> raise (Unsupported "expression needs too many registers")

(* Anything in the callee-saved range can serve as an expression
   temporary; variable registers are simply never released. *)
let callee_saved = List.init 16 (fun i -> Reg.of_int (3 + i))


let release st r =
  let is_var = List.exists (fun (_, r') -> Reg.equal r r') st.vars in
  let is_pool = List.exists (Reg.equal r) callee_saved in
  if is_pool && not is_var then st.free <- r :: st.free

(* The signed-divide routine for a constant: divisors 1..19 reuse the
   routines already resident in the millicode library (Div_small links
   them); anything else is generated into this unit once. *)
let divide_entry st c =
  if Word.lt_s 0l c && Word.to_int_s c < Div_small.threshold then
    Printf.sprintf "divi_c%ld" c
  else begin
    let plan = Div_const.plan_signed c in
    if not (List.mem_assoc plan.entry st.plans) then
      st.plans <- (plan.entry, plan.source) :: st.plans;
    plan.entry
  end

let call st target =
  st.millicode_calls <- st.millicode_calls + 1;
  Builder.insn st.b (Emit.bl target Reg.mrp)

(* Every non-trivial multiply/divide/remainder is arbitrated by the
   strategy selector (lib/plan) under the compiler's context; the chosen
   strategy is then mapped onto this module's emission idioms (inline
   chain, resident small-divisor routine, per-unit constant plan, or
   millicode call), so the selector decides and the generated code stays
   in the compiler's conventions. *)
let selector_ctx st =
  {
    (Plan.compiler ~small_divisor_dispatch:st.small_divisor_dispatch ()) with
    Plan.inline_mul_threshold;
  }

let choose st req =
  Selector.choose ~ctx:(selector_ctx st)
    ~require_certified:st.require_certified req

(* The call-through strategies carry their millicode entry in the
   emission detail; fall back to the historical target if selection ever
   fails (it cannot for well-formed requests). *)
let millicode_target choice ~default =
  match choice with
  | Ok c -> (
      match c.Selector.emission.Plan.detail with
      | Plan.Millicode m -> m
      | Plan.Mul_plan _ | Plan.Div_plan _ -> default)
  | Error _ -> default

(* Inline a multiply-by-constant chain: product of [src] by the chain's
   target into a fresh temp. *)
let inline_chain st ~negate chain src =
  st.inline_multiplies <- st.inline_multiplies + 1;
  let dst = alloc st in
  let pool = Array.of_list (dst :: chain_scratch) in
  let _info =
    Chain_codegen.body_at ~overflow:st.trap_overflow ~negate ~src ~pool chain
      st.b
  in
  dst

let rec emit st (e : Expr.t) : Reg.t =
  let ov = st.trap_overflow in
  let binop f a b =
    let ra = emit st a in
    let rb = emit st b in
    release st ra;
    release st rb;
    let t = alloc st in
    Builder.insn st.b (f ra rb t);
    t
  in
  match e with
  | Var v -> (
      match List.assoc_opt v st.vars with
      | Some r -> r
      | None -> raise (Unsupported ("unbound variable " ^ v)))
  | Const c ->
      let t = alloc st in
      Builder.insns st.b (Emit.ldi c t);
      t
  | Add (a, b) -> binop (Emit.add ~ov) a b
  | Sub (a, b) -> binop (Emit.sub ~ov) a b
  | Neg a ->
      let ra = emit st a in
      release st ra;
      let t = alloc st in
      Builder.insn st.b (Emit.sub ~ov Reg.r0 ra t);
      t
  | Mul (Const c, a) | Mul (a, Const c) -> emit_mul_const st a c
  | Mul (a, b) ->
      let target =
        millicode_target
          (choose st (Plan.mul_var ~trap_overflow:ov ()))
          ~default:(if ov then Millicode.muloI else Millicode.mulI)
      in
      emit_call2 st a b target
  | Div (a, Const c) when not (Word.equal c 0l) ->
      let target = emit_div_const_entry st c in
      let ra = emit st a in
      Builder.insn st.b (Emit.copy ra Reg.arg0);
      release st ra;
      call st target;
      let t = alloc st in
      Builder.insn st.b (Emit.copy Reg.ret0 t);
      t
  | Div (a, b) ->
      let target =
        millicode_target
          (choose st (Plan.div_var Plan.Signed))
          ~default:(if st.small_divisor_dispatch then "divI_small" else "divI")
      in
      emit_call2 st a b target
  | Rem (a, Const c) when not (Word.equal c 0l) -> emit_rem_const st a c
  | Rem (a, b) ->
      let target =
        millicode_target
          (choose st (Plan.rem_var Plan.Signed))
          ~default:"remI"
      in
      emit_call2 st a b target

and emit_call2 st a b target =
  let ra = emit st a in
  let rb = emit st b in
  Builder.insns st.b [ Emit.copy ra Reg.arg0; Emit.copy rb Reg.arg1 ];
  release st ra;
  release st rb;
  call st target;
  let t = alloc st in
  Builder.insn st.b (Emit.copy Reg.ret0 t);
  t

and emit_mul_const st a c =
  if Word.equal c 0l then begin
    (* Still evaluate a for faithfulness to side-effect-free semantics,
       then discard. *)
    let ra = emit st a in
    release st ra;
    let t = alloc st in
    Builder.insn st.b (Emit.copy Reg.r0 t);
    t
  end
  else
    (* The selector inlines exactly when the chain strategy wins under
       the compiler context (chain found and within the inline
       threshold); the chosen emission carries that chain. *)
    let inline_choice =
      match choose st (Plan.mul_const ~trap_overflow:st.trap_overflow c) with
      | Ok choice -> (
          match
            (choice.Selector.chosen.Plan.name,
             choice.Selector.emission.Plan.detail)
          with
          | "mul_const_chain", Plan.Mul_plan { Mul_const.chain = Some chain; _ }
            ->
              Some chain
          | _ -> None)
      | Error _ -> None
    in
    match inline_choice with
    | Some chain ->
        let ra = emit st a in
        let t = inline_chain st ~negate:(Word.is_neg c) chain ra in
        release st ra;
        t
    | None ->
        (* Millicode multiply with an immediate operand. *)
        let ra = emit st a in
        Builder.insn st.b (Emit.copy ra Reg.arg0);
        release st ra;
        Builder.insns st.b (Emit.ldi c Reg.arg1);
        call st (if st.trap_overflow then Millicode.muloI else Millicode.mulI);
        let t = alloc st in
        Builder.insn st.b (Emit.copy Reg.ret0 t);
        t

and emit_div_const_entry st c =
  (* The selector arbitrates constant plan vs. general millicode; in
     compiled code both map onto [divide_entry]'s conventions (a
     fallback constant plan is itself a [divU] tail call, so the two
     strategies coincide), and divisors below the small-divisor
     threshold reuse the routines resident in the linked library. *)
  match choose st (Plan.div_const Plan.Signed c) with
  | Ok choice
    when choice.Selector.chosen.Plan.name = "div_const"
         && not
              (Word.lt_s 0l c && Word.to_int_s c < Div_small.threshold) -> (
      match choice.Selector.emission.Plan.detail with
      | Plan.Div_plan plan ->
          if not (List.mem_assoc plan.Div_const.entry st.plans) then
            st.plans <-
              (plan.Div_const.entry, plan.Div_const.source) :: st.plans;
          plan.Div_const.entry
      | _ -> divide_entry st c)
  | Ok _ | Error _ -> divide_entry st c

and emit_rem_const st a c =
  (* x mod c through the dedicated remainder routine (which itself
     composes x - (x/c)*c with an inline multiply-back chain). The
     selector's constant-divide emission is that very plan. *)
  let plan =
    match choose st (Plan.rem_const Plan.Signed c) with
    | Ok
        {
          Selector.chosen = { Plan.name = "div_const"; _ };
          emission = { Plan.detail = Plan.Div_plan plan; _ };
          _;
        } ->
        plan
    | Ok _ | Error _ -> Div_const.plan_rem_signed c
  in
  if not (List.mem_assoc plan.Div_const.entry st.plans) then
    st.plans <- (plan.Div_const.entry, plan.Div_const.source) :: st.plans;
  let ra = emit st a in
  Builder.insn st.b (Emit.copy ra Reg.arg0);
  release st ra;
  call st plan.Div_const.entry;
  let t = alloc st in
  Builder.insn st.b (Emit.copy Reg.ret0 t);
  t

let make_state ?(require_certified = false) b ~vars ~temps ~trap_overflow
    ~small_divisor_dispatch =
  {
    b;
    vars;
    free = temps;
    millicode_calls = 0;
    inline_multiplies = 0;
    plans = [];
    trap_overflow;
    small_divisor_dispatch;
    require_certified;
  }

let compile ?entry ?(trap_overflow = false) ?(small_divisor_dispatch = false)
    ?require_certified ~params expr =
  let entry = Option.value entry ~default:"proc" in
  if List.length params > List.length param_regs then
    raise (Unsupported "more than 4 parameters");
  let b = Builder.create ~prefix:entry () in
  Builder.label b entry;
  let vars = List.mapi (fun i v -> (v, List.nth param_regs i)) params in
  (* Move incoming arguments out of the way of millicode calls. *)
  List.iteri
    (fun i (_, r) ->
      Builder.insn b (Emit.copy (List.nth [ Reg.arg0; Reg.arg1; Reg.arg2; Reg.arg3 ] i) r))
    vars;
  let st =
    make_state ?require_certified b ~vars ~temps:temp_regs ~trap_overflow
      ~small_divisor_dispatch
  in
  let result = emit st expr in
  Builder.insn b (Emit.copy result Reg.ret0);
  Builder.insn b Emit.ret;
  let source =
    Program.concat (Builder.to_source b :: List.map snd st.plans)
  in
  {
    entry;
    params;
    source;
    millicode_calls = st.millicode_calls;
    inline_multiplies = st.inline_multiplies;
  }

let compile_and_link ?entry ?trap_overflow ?small_divisor_dispatch
    ?require_certified ~params expr =
  let unit_ =
    compile ?entry ?trap_overflow ?small_divisor_dispatch ?require_certified
      ~params expr
  in
  Program.resolve_exn (Program.concat [ unit_.source; Millicode.source ])

module Internal = struct
  type nonrec state = state

  let make_state = make_state
  let emit_expr = emit
  let release = release
  let plans st = List.map snd st.plans
  let millicode_calls st = st.millicode_calls
  let inline_multiplies st = st.inline_multiplies
  let callee_saved = callee_saved
end
