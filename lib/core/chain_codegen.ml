type info = { instructions : int; temporaries : int }

(* Default scratch pool, result register first: a chain that never needs
   two live intermediates uses only ret0. *)
let default_pool =
  [| Reg.ret0; Reg.t2; Reg.t3; Reg.t4; Reg.t5; Reg.t1; Reg.ret1 |]

let step_reads : Chain.step -> int list = function
  | Add (j, k) | Shadd (_, j, k) | Sub (j, k) -> [ j; k ]
  | Shl (j, _) -> [ j ]

let body_at ?(overflow = false) ?(negate = false) ~src ~pool chain b =
  if overflow && not (Chain.is_overflow_safe chain) then
    invalid_arg "Chain_codegen.body: chain is not overflow-safe";
  let steps = Array.of_list chain in
  let nsteps = Array.length steps in
  let nelts = nsteps + 2 in
  (* last_use.(e) = index of the last step reading element e; the final
     element is "read" by the (virtual) return. *)
  let last_use = Array.make nelts 0 in
  last_use.(nelts - 1) <- max_int;
  Array.iteri
    (fun idx step ->
      List.iter (fun e -> last_use.(e) <- max last_use.(e) (idx + 2)) (step_reads step))
    steps;
  let assigned = Array.make nelts Reg.r0 in
  assigned.(1) <- src;
  (* in_use.(p): element currently held by pool.(p), or -1. *)
  let in_use = Array.make (Array.length pool) (-1) in
  let temporaries = ref 0 in
  let alloc i =
    let rec free p =
      if p = Array.length pool then
        invalid_arg "Chain_codegen.body: chain needs too many temporaries"
      else
        let e = in_use.(p) in
        if e = -1 || last_use.(e) <= i then p else free (p + 1)
    in
    let p = free 0 in
    in_use.(p) <- i;
    if p > 0 then temporaries := max !temporaries p;
    pool.(p)
  in
  let reg e = assigned.(e) in
  let count = ref 0 in
  let emit i =
    Builder.insn b i;
    incr count
  in
  let dst = pool.(0) in
  if nsteps = 0 then begin
    (* Multiplier 1. *)
    if negate then emit (Emit.sub ~ov:overflow Reg.r0 src dst)
    else emit (Emit.copy src dst)
  end
  else begin
    Array.iteri
      (fun idx step ->
        let i = idx + 2 in
        let t = alloc i in
        assigned.(i) <- t;
        (match (step : Chain.step) with
        | Add (j, k) -> emit (Emit.add ~ov:overflow (reg j) (reg k) t)
        | Shadd (m, j, k) -> emit (Emit.shadd ~ov:overflow m (reg j) (reg k) t)
        | Sub (j, k) -> emit (Emit.sub ~ov:overflow (reg j) (reg k) t)
        | Shl (j, m) -> emit (Emit.shl (reg j) m t)))
      steps;
    let result = assigned.(nelts - 1) in
    if negate then emit (Emit.sub ~ov:overflow Reg.r0 result dst)
    else if not (Reg.equal result dst) then emit (Emit.copy result dst)
  end;
  { instructions = !count; temporaries = !temporaries }

let body ?overflow ?negate chain b =
  body_at ?overflow ?negate ~src:Reg.arg0 ~pool:default_pool chain b

(* Double-word variant: every chain element is a (hi:lo) register pair
   and every step becomes a short carry-chain sequence — the shifted
   high word via SHD, the low add/sub setting the PSW carry, the high
   half consuming it. Unlike the scalar emitter the destination pair
   must not alias either operand pair of the same step (the sequences
   read operands after writing half the destination), so the allocator
   frees a register only when its element's last use is strictly
   earlier. Overflow trapping has no pair form. *)
let body_at_pair ?(negate = false) ~src ~pool chain b =
  let steps = Array.of_list chain in
  let nsteps = Array.length steps in
  let nelts = nsteps + 2 in
  let last_use = Array.make nelts 0 in
  last_use.(nelts - 1) <- max_int;
  Array.iteri
    (fun idx step ->
      List.iter
        (fun e -> last_use.(e) <- max last_use.(e) (idx + 2))
        (step_reads step))
    steps;
  let assigned = Array.make nelts (Reg.r0, Reg.r0) in
  assigned.(1) <- src;
  let in_use = Array.make (Array.length pool) (-1) in
  let temporaries = ref 0 in
  let alloc i =
    let rec free p =
      if p = Array.length pool then
        invalid_arg "Chain_codegen.body_at_pair: chain needs too many pairs"
      else
        let e = in_use.(p) in
        if e = -1 || last_use.(e) < i then p else free (p + 1)
    in
    let p = free 0 in
    in_use.(p) <- i;
    if p > 0 then temporaries := max !temporaries p;
    pool.(p)
  in
  let count = ref 0 in
  let emit i =
    Builder.insn b i;
    incr count
  in
  let pair_shl_into (jh, jl) m (th, tl) =
    (* (th:tl) = (jh:jl) << m, for any m in 0..63. *)
    if m = 0 then begin
      emit (Emit.copy jh th);
      emit (Emit.copy jl tl)
    end
    else if m < 32 then begin
      emit (Emit.shd jh jl (32 - m) th);
      emit (Emit.shl jl m tl)
    end
    else begin
      if m = 32 then emit (Emit.copy jl th) else emit (Emit.shl jl (m - 32) th);
      emit (Emit.copy Reg.r0 tl)
    end
  in
  let pair_negate_into (jh, jl) (th, tl) =
    emit (Emit.sub Reg.r0 jl tl);
    emit (Emit.subb Reg.r0 jh th)
  in
  let dst = pool.(0) in
  if nsteps = 0 then begin
    (* Multiplier 1. *)
    if negate then pair_negate_into src dst
    else begin
      emit (Emit.copy (fst src) (fst dst));
      emit (Emit.copy (snd src) (snd dst))
    end
  end
  else begin
    Array.iteri
      (fun idx step ->
        let i = idx + 2 in
        let t = alloc i in
        assigned.(i) <- t;
        let th, tl = t in
        match (step : Chain.step) with
        | Add (j, k) ->
            let jh, jl = assigned.(j) and kh, kl = assigned.(k) in
            emit (Emit.add jl kl tl);
            emit (Emit.addc jh kh th)
        | Sub (j, k) ->
            let jh, jl = assigned.(j) and kh, kl = assigned.(k) in
            emit (Emit.sub jl kl tl);
            emit (Emit.subb jh kh th)
        | Shadd (m, j, k) ->
            let jh, jl = assigned.(j) and kh, kl = assigned.(k) in
            (* High half of aj << m first (SHD leaves the PSW alone),
               then the low SHxADD sets the carry the ADDC consumes. *)
            emit (Emit.shd jh jl (32 - m) th);
            emit (Emit.shadd m jl kl tl);
            emit (Emit.addc th kh th)
        | Shl (j, m) -> pair_shl_into assigned.(j) m t)
      steps;
    let result = assigned.(nelts - 1) in
    if negate then pair_negate_into result dst
    else if not (Reg.equal (fst result) (fst dst)) then begin
      emit (Emit.copy (fst result) (fst dst));
      emit (Emit.copy (snd result) (snd dst))
    end
  end;
  { instructions = !count; temporaries = !temporaries }

let routine ?overflow ?negate ~entry chain =
  let b = Builder.create ~prefix:entry () in
  Builder.label b entry;
  let info = body ?overflow ?negate chain b in
  Builder.insn b Emit.mret;
  (Builder.to_source b, info)
