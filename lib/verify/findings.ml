type check =
  | Structure
  | Use_before_def
  | Psw_before_def
  | Dead_write
  | Delay_hazard
  | Convention
  | Pair
  | Certify

type severity = Error | Warning

type t = {
  check : check;
  severity : severity;
  routine : string option;
  addr : int option;
  message : string;
}

let v ?(severity = Error) ?routine ?addr check message =
  { check; severity; routine; addr; message }

let check_name = function
  | Structure -> "structure"
  | Use_before_def -> "use-before-def"
  | Psw_before_def -> "psw-before-def"
  | Dead_write -> "dead-write"
  | Delay_hazard -> "delay-hazard"
  | Convention -> "convention"
  | Pair -> "pair-convention"
  | Certify -> "certify"

let errors = List.filter (fun f -> f.severity = Error)

let pp ppf f =
  let sev = match f.severity with Error -> "error" | Warning -> "warning" in
  Format.fprintf ppf "%s[%s]" sev (check_name f.check);
  (match f.routine with
  | Some r -> Format.fprintf ppf " %s" r
  | None -> ());
  (match f.addr with
  | Some a -> Format.fprintf ppf "+%d" a
  | None -> ());
  Format.fprintf ppf ": %s" f.message

let pp_list ppf fs =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf fs
