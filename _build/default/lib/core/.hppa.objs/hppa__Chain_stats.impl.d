lib/core/chain_stats.ml: Chain_rules Chain_search List
