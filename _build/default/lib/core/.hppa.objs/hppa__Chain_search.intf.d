lib/core/chain_search.mli: Chain
