(** Assembly programs: labelled instruction sequences and their resolution
    to executable images.

    A {!source} program carries symbolic labels; {!resolve} performs the
    second assembler pass, producing an array of instructions whose branch
    targets are absolute instruction indices, plus a symbol table used to
    call entry points and to form vectored-branch table addresses. *)

type item = Label of string | Insn of string Insn.t
type source = item list

type resolved = private {
  code : int Insn.t array;
  symbols : (string, int) Hashtbl.t;
  names : (int, string) Hashtbl.t; (* first label at each address *)
}

val resolve : source -> (resolved, string) result
(** Fails on duplicate labels, undefined targets, or instructions rejected by
    {!Insn.validate}. *)

val resolve_exn : source -> resolved
val symbol : resolved -> string -> int option
val symbol_exn : resolved -> string -> int
val length : resolved -> int

val concat : source list -> source
(** Concatenate compilation units (e.g. a program and the millicode library);
    label clashes surface at {!resolve} time. *)

val pp_source : Format.formatter -> source -> unit
val pp_resolved : Format.formatter -> resolved -> unit
(** Disassembly listing with addresses and label comments. *)
