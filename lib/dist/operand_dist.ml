module Word = Hppa_word.Word

let log_uniform ?(bits = 31) g =
  let len = Prng.int_range g 0 bits in
  if len = 0 then 0l
  else
    let base = 1 lsl (len - 1) in
    Word.of_int (base + Prng.int_range g 0 (base - 1))

type bucket = { lo : int; hi : int; weight : float }

let figure5_buckets =
  [
    { lo = 0; hi = 15; weight = 0.6 };
    { lo = 16; hi = 255; weight = 0.2 };
    { lo = 256; hi = 4095; weight = 0.1 };
    { lo = 4096; hi = 46340; weight = 0.1 };
  ]

let bucket_of_pair x y =
  let mag w = Int64.abs (Word.to_int64_s w) in
  let m = Int64.to_int (min (mag x) (mag y)) in
  List.find_opt (fun b -> m >= b.lo && m <= b.hi) figure5_buckets

let pick_bucket g =
  let u = Prng.float01 g in
  let rec go acc = function
    | [] -> List.nth figure5_buckets (List.length figure5_buckets - 1)
    | b :: rest -> if u < acc +. b.weight then b else go (acc +. b.weight) rest
  in
  go 0.0 figure5_buckets

(* Log-uniform within [lo .. hi]: bit-length uniform, then uniform within
   the length, clipped to the interval. *)
let bit_length v =
  let rec go l = if v lsr l = 0 then l else go (l + 1) in
  go 0

let log_uniform_in g lo hi =
  let lo = max lo 0 and hi = max hi 0 in
  if hi <= lo then lo
  else
    let llo = bit_length (max lo 1) and lhi = bit_length hi in
    let len = Prng.int_range g llo lhi in
    let base = if len <= 1 then 1 else 1 lsl (len - 1) in
    let top = min hi ((2 * base) - 1) in
    let bot = max lo base in
    if top < bot then bot else Prng.int_range g bot top

let figure5_pair ?(positive_fraction = 0.9) g =
  let b = pick_bucket g in
  let small = log_uniform_in g b.lo b.hi in
  let small = max small 0 in
  (* The other operand: as large as representability allows. *)
  let other_max = if small <= 1 then 0x7fff_ffff else 0x7fff_ffff / small in
  let other = log_uniform_in g b.lo other_max in
  let x, y = if Prng.bool g ~p:0.5 then (small, other) else (other, small) in
  let sx, sy =
    if Prng.bool g ~p:positive_fraction then (1, 1)
    else ((if Prng.bool g ~p:0.5 then -1 else 1), if Prng.bool g ~p:0.5 then -1 else 1)
  in
  (Word.of_int (sx * x), Word.of_int (sy * y))

let small_divisor g = Word.of_int (Prng.int_range g 1 19)

(* -- 64-bit operands ------------------------------------------------- *)

let uniform64 g = Prng.next64 g

let log_uniform64 ?(bits = 63) g =
  let len = Prng.int_range g 0 bits in
  if len = 0 then 0L
  else
    let base = Int64.shift_left 1L (len - 1) in
    Int64.add base (Int64.logand (Prng.next64 g) (Int64.sub base 1L))

(* Zipf over ranks, then a rank-derived 64-bit divisor whose high word is
   non-zero — so repeated draws hit the normalization path of the 64/64
   divide with the heavy-head rank statistics the serve workloads use. *)
let zipf_cdf = Hashtbl.create 4

let cdf_for support =
  match Hashtbl.find_opt zipf_cdf support with
  | Some c -> c
  | None ->
      let s = 1.1 in
      let weights =
        Array.init support (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s)
      in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let acc = ref 0.0 in
      let cdf =
        Array.map
          (fun w ->
            acc := !acc +. (w /. total);
            !acc)
          weights
      in
      Hashtbl.replace zipf_cdf support cdf;
      cdf

let zipf_rank ?(support = 1000) g =
  let cdf = cdf_for support in
  let u = Prng.float01 g in
  let lo = ref 0 and hi = ref (support - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* splitmix64's finalizer: a cheap bijective mix for the low word. *)
let mix64 z =
  let z = Int64.logand z Int64.max_int in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let zipf64_divisor ?support g =
  let rank = zipf_rank ?support g in
  let rank64 = Int64.of_int (rank + 1) in
  Int64.logor (Int64.shift_left rank64 32)
    (Int64.logand (mix64 rank64) 0xffffffffL)

let w64_pair ?(hw0 = 0.5) g =
  let x = log_uniform64 g in
  let y =
    if Prng.bool g ~p:hw0 then
      (* high word zero: the divides degenerate to the 32-bit path *)
      Int64.of_int (1 + Int64.to_int (Int64.logand (Prng.next64 g) 0x7fffffffL))
    else
      let v = log_uniform64 g in
      if Int64.equal v 0L then 1L else v
  in
  (x, y)
