lib/core/chain_codegen.mli: Builder Chain Program Reg
