type t = {
  line_words : int;
  lines : int;
  tags : int array; (* -1 = invalid *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(line_words = 8) ?(lines = 64) () =
  if line_words <= 0 || line_words land (line_words - 1) <> 0 then
    invalid_arg "Icache.create: line_words must be a positive power of two";
  if lines <= 0 then invalid_arg "Icache.create: lines must be positive";
  { line_words; lines; tags = Array.make lines (-1); hits = 0; misses = 0 }

let access t pc =
  let line_addr = pc / t.line_words in
  let index = line_addr mod t.lines in
  if t.tags.(index) = line_addr then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.tags.(index) <- line_addr;
    t.misses <- t.misses + 1;
    false
  end

let hits t = t.hits
let misses t = t.misses

let reset t =
  Array.fill t.tags 0 t.lines (-1);
  t.hits <- 0;
  t.misses <- 0

let footprint_lines t =
  Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) 0 t.tags
