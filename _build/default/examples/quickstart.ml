(* Quickstart: the public API in five minutes.

   Run with:  dune exec examples/quickstart.exe *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine

let () =
  Format.printf "== 1. Multiply by a constant (section 5) ==@.";
  (* Ask the rule program for a chain and compile it. *)
  let plan = Hppa.Mul_const.plan 10l in
  Format.printf "multiply by 10 is %d instructions:@.%a@."
    plan.static_instructions Program.pp_source plan.source;

  (* Execute it on the simulated machine. *)
  let mach = Machine.create (Program.resolve_exn plan.source) in
  (match Machine.call mach plan.entry ~args:[ 123l ] with
  | Machine.Halted ->
      Format.printf "123 * 10 = %ld@.@." (Machine.get mach Reg.ret0)
  | Machine.Trapped t -> Format.printf "trap: %a@." Hppa_machine.Trap.pp t
  | Machine.Fuel_exhausted -> Format.printf "ran out of fuel@.");

  Format.printf "== 2. The millicode library (sections 6 and 7) ==@.";
  let mach = Hppa.Millicode.machine () in
  let call name a b =
    match Machine.call_cycles mach name ~args:[ a; b ] with
    | Machine.Halted, cycles -> (Machine.get mach Reg.ret0, cycles)
    | (Machine.Trapped _ | Machine.Fuel_exhausted), _ -> (0l, -1)
  in
  let p, c = call "mulI" 12345l 678l in
  Format.printf "mulI  12345 * 678  = %-10ld (%d cycles)@." p c;
  let q, c = call "divU" 1000000l 7l in
  Format.printf "divU  1000000 / 7  = %-10ld (%d cycles)@." q c;
  let q, c = call "divU_small" 1000000l 7l in
  Format.printf "small 1000000 / 7  = %-10ld (%d cycles)@.@." q c;

  Format.printf "== 3. Division by a constant (section 7) ==@.";
  let t = Hppa.Div_magic.derive 7l in
  Format.printf "derived parameters: %a@." Hppa.Div_magic.pp t;
  let plan = Hppa.Div_const.plan_unsigned 7l in
  let mach =
    Machine.create
      (Program.resolve_exn
         (Program.concat [ plan.source; Hppa.Div_gen.source ]))
  in
  (match Machine.call_cycles mach plan.entry ~args:[ 1000000l ] with
  | Machine.Halted, cycles ->
      Format.printf "1000000 / 7 = %ld via the reciprocal (%d cycles vs ~76 general)@.@."
        (Machine.get mach Reg.ret0) cycles
  | (Machine.Trapped _ | Machine.Fuel_exhausted), _ -> ());

  Format.printf "== 4. Assembly in, results out ==@.";
  let src =
    Asm.parse_exn
      {|
; three-instruction average-of-two (with the carry trick)
avg:    add    arg0, arg1, ret0
        addc   r0, r0, r1        ; capture the carry
        shd    r1, ret0, 1, ret0 ; 33-bit value >> 1
        bv     r0(rp)
|}
  in
  let mach = Machine.create (Program.resolve_exn src) in
  (match Machine.call mach "avg" ~args:[ 0x7fffffffl; 0x7fffffffl ] with
  | Machine.Halted ->
      Format.printf "avg(max_int, max_int) = %ld@." (Machine.get mach Reg.ret0)
  | Machine.Trapped t -> Format.printf "trap: %a@." Hppa_machine.Trap.pp t
  | Machine.Fuel_exhausted -> ())
