test/test_compiler.ml: Alcotest Expr Format Hppa Hppa_compiler Hppa_machine Hppa_word Int32 List Loop_ir Lower Lower_loop Printf Program QCheck Reg Strength Util
