(* Wire protocol: total parsing of one request line. Random bytes, huge
   numbers, wrong arities — everything maps to Error, never an
   exception (the fuzz suite pins this).

   Every plan-producing verb — scalar or batch, 32- or 64-bit — is one
   row of [kernel_table]; parsing, verb naming, printing, cache keys and
   batch-header recognition are all table lookups, so a new verb is one
   [kernel] constructor plus one row, not four hand-written code
   sites. *)

module Word = Hppa_word.Word

type w64_op = W64_mul | W64_div | W64_rem

type kernel = Kmul | Kdiv | Kw64 of w64_op | Kdivl

type lane =
  | Const of int32
  | Pair of { signed : bool; x : int64; y : int64 }
  | Triple of { xhi : int64; xlo : int64; y : int64 }
      (** the 128/64 divide's operands: dividend dword pair, divisor *)

type request =
  | Op of { kernel : kernel; batch : bool; lanes : lane list }
  | Eval of string * Word.t list
  | Stats
  | Metrics
  | Ping
  | Quit

(* Convenience constructors for the scalar forms. *)
let mul n = Op { kernel = Kmul; batch = false; lanes = [ Const n ] }
let div d = Op { kernel = Kdiv; batch = false; lanes = [ Const d ] }

let w64 op ~signed x y =
  Op { kernel = Kw64 op; batch = false; lanes = [ Pair { signed; x; y } ] }

let divl ~xhi ~xlo y =
  Op { kernel = Kdivl; batch = false; lanes = [ Triple { xhi; xlo; y } ] }

let max_line_bytes = 1024

(* 64 operands of up to 11 characters plus separators and the verb fit
   comfortably inside [max_line_bytes]. *)
let max_batch_operands = 64

(* int64 decimal tokens run to 20 characters; 16 pairs (32 tokens) plus
   the signedness and the verb still fit in [max_line_bytes]. *)
let max_w64_batch_pairs = 16

(* Triples run to three 20-character tokens; 10 of them plus the verb
   stay inside [max_line_bytes]. *)
let max_divl_batch_triples = 10

(* How a kernel's operands look on the wire. *)
type shape =
  | Consts  (** bare int32 tokens; 1 scalar, up to [max_batch_operands] *)
  | Pairs
      (** a signedness tag then int64 [x y] pairs; 1 scalar pair, up to
          [max_w64_batch_pairs] batched *)
  | Triples
      (** unsigned int64 [xhi xlo y] triples; 1 scalar triple, up to
          [max_divl_batch_triples] batched *)

let kernel_table =
  [
    (Kmul, "MUL", Consts);
    (Kdiv, "DIV", Consts);
    (Kw64 W64_mul, "W64MUL", Pairs);
    (Kw64 W64_div, "W64DIV", Pairs);
    (Kw64 W64_rem, "W64REM", Pairs);
    (Kdivl, "W64DIVL", Triples);
  ]

let kernel_verb k =
  let _, name, _ = List.find (fun (k', _, _) -> k' = k) kernel_table in
  name

let kernel_shape k =
  let _, _, shape = List.find (fun (k', _, _) -> k' = k) kernel_table in
  shape

let verb = function
  | Op { kernel; batch; _ } ->
      if batch then kernel_verb kernel ^ "B" else kernel_verb kernel
  | Eval _ -> "EVAL"
  | Stats -> "STATS"
  | Metrics -> "METRICS"
  | Ping -> "PING"
  | Quit -> "QUIT"

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s
let ok payload = "OK " ^ one_line payload
let err detail = "ERR " ^ one_line detail
let is_ok s = String.length s >= 3 && String.sub s 0 3 = "OK "
let is_err s = String.length s >= 4 && String.sub s 0 4 = "ERR "

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Batch replies open "OK <VERB>B k=<K>" — derived from the same table,
   so a new kernel's batch form frames correctly with no extra code. *)
let is_batch_reply s =
  List.exists
    (fun (_, name, _) -> starts_with ("OK " ^ name ^ "B k=") s)
    kernel_table

(* Printable excerpt of hostile input for error messages. *)
let excerpt s =
  let n = min (String.length s) 32 in
  let b = Buffer.create n in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if c >= ' ' && c <= '~' && c <> '"' then Buffer.add_char b c
    else Buffer.add_char b '?'
  done;
  if String.length s > n then Buffer.add_string b "...";
  Buffer.contents b

let int32_of_token tok =
  match Int64.of_string_opt tok with
  | None -> Error (Printf.sprintf "parse bad integer \"%s\"" (excerpt tok))
  | Some v ->
      if v < -0x8000_0000L || v > 0xFFFF_FFFFL then
        Error (Printf.sprintf "range %s does not fit in 32 bits" (excerpt tok))
      else Ok (Int64.to_int32 v)

(* 64-bit operands are full int64 values; decimal literals must fit
   int64 (hex literals wrap like OCaml's [Int64.of_string]). *)
let int64_of_token tok =
  match Int64.of_string_opt tok with
  | None -> Error (Printf.sprintf "parse bad integer \"%s\"" (excerpt tok))
  | Some v -> Ok v

let signedness_of_token = function
  | "u" | "U" -> Ok false
  | "s" | "S" -> Ok true
  | tok ->
      Error
        (Printf.sprintf "parse bad signedness \"%s\" (expected u or s)"
           (excerpt tok))

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let label_ok s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_')
       s

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      Result.bind (f x) (fun y ->
          Result.map (fun ys -> y :: ys) (map_result f rest))

(* One parser per operand shape, scalar and batch forms alike; the
   error strings are generated from the verb so every row of the table
   reports uniformly. A batch with one bad operand is rejected whole:
   a partial batch would desynchronize the lane-indexed reply. *)
let parse_lanes kernel ~batch args =
  let name = kernel_verb kernel ^ if batch then "B" else "" in
  match (kernel_shape kernel, batch) with
  | Consts, false -> (
      match args with
      | [ tok ] -> Result.map (fun n -> [ Const n ]) (int32_of_token tok)
      | _ -> Error (Printf.sprintf "parse %s takes exactly one integer" name))
  | Consts, true ->
      if args = [] then
        Error (Printf.sprintf "parse %s needs at least one integer" name)
      else if List.length args > max_batch_operands then
        Error
          (Printf.sprintf "parse %s takes at most %d integers" name
             max_batch_operands)
      else
        map_result
          (fun tok -> Result.map (fun n -> Const n) (int32_of_token tok))
          args
  | Pairs, false -> (
      match args with
      | [ sign; x; y ] ->
          Result.bind (signedness_of_token sign) (fun signed ->
              Result.bind (int64_of_token x) (fun x ->
                  Result.map
                    (fun y -> [ Pair { signed; x; y } ])
                    (int64_of_token y)))
      | _ ->
          Error
            (Printf.sprintf "parse %s takes a signedness and two integers"
               name))
  | Pairs, true -> (
      match args with
      | [] ->
          Error
            (Printf.sprintf "parse %s needs a signedness and operand pairs"
               name)
      | sign :: args ->
          Result.bind (signedness_of_token sign) (fun signed ->
              let n = List.length args in
              if n = 0 then
                Error
                  (Printf.sprintf "parse %s needs at least one operand pair"
                     name)
              else if n mod 2 <> 0 then
                Error
                  (Printf.sprintf
                     "parse %s takes x y operand pairs (odd operand count)"
                     name)
              else if n / 2 > max_w64_batch_pairs then
                Error
                  (Printf.sprintf "parse %s takes at most %d operand pairs"
                     name max_w64_batch_pairs)
              else
                let rec convert acc = function
                  | [] -> Ok (List.rev acc)
                  | x :: y :: rest -> (
                      match int64_of_token x with
                      | Error e -> Error e
                      | Ok x -> (
                          match int64_of_token y with
                          | Error e -> Error e
                          | Ok y ->
                              convert (Pair { signed; x; y } :: acc) rest))
                  | [ _ ] -> Error "parse internal odd operand count"
                in
                convert [] args))
  | Triples, false -> (
      match args with
      | [ xhi; xlo; y ] ->
          Result.bind (int64_of_token xhi) (fun xhi ->
              Result.bind (int64_of_token xlo) (fun xlo ->
                  Result.map
                    (fun y -> [ Triple { xhi; xlo; y } ])
                    (int64_of_token y)))
      | _ ->
          Error
            (Printf.sprintf
               "parse %s takes three integers (dividend hi, dividend lo, \
                divisor)"
               name))
  | Triples, true ->
      let n = List.length args in
      if n = 0 then
        Error (Printf.sprintf "parse %s needs at least one operand triple" name)
      else if n mod 3 <> 0 then
        Error
          (Printf.sprintf
             "parse %s takes xhi xlo y operand triples (operand count not a \
              multiple of three)"
             name)
      else if n / 3 > max_divl_batch_triples then
        Error
          (Printf.sprintf "parse %s takes at most %d operand triples" name
             max_divl_batch_triples)
      else
        let rec convert acc = function
          | [] -> Ok (List.rev acc)
          | xhi :: xlo :: y :: rest -> (
              match int64_of_token xhi with
              | Error e -> Error e
              | Ok xhi -> (
                  match int64_of_token xlo with
                  | Error e -> Error e
                  | Ok xlo -> (
                      match int64_of_token y with
                      | Error e -> Error e
                      | Ok y -> convert (Triple { xhi; xlo; y } :: acc) rest)))
          | _ -> Error "parse internal operand count not a multiple of three"
        in
        convert [] args

(* Verb lookup: "<VERB>" is the scalar form, "<VERB>B" the batch form
   of the same kernel row. *)
let kernel_of_verb cmd =
  let find name =
    List.find_opt (fun (_, n, _) -> n = name) kernel_table
    |> Option.map (fun (k, _, _) -> k)
  in
  match find cmd with
  | Some k -> Some (k, false)
  | None ->
      let n = String.length cmd in
      if n > 1 && cmd.[n - 1] = 'B' then
        Option.map (fun k -> (k, true)) (find (String.sub cmd 0 (n - 1)))
      else None

let parse line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.length line > max_line_bytes then
    Error (Printf.sprintf "oversized request exceeds %d bytes" max_line_bytes)
  else
    match tokens line with
    | [] -> Error "parse empty request"
    | cmd :: rest -> (
        let cmd = String.uppercase_ascii cmd in
        match kernel_of_verb cmd with
        | Some (kernel, batch) ->
            Result.map
              (fun lanes -> Op { kernel; batch; lanes })
              (parse_lanes kernel ~batch rest)
        | None -> (
            match (cmd, rest) with
            | "EVAL", entry :: args ->
                if not (label_ok entry) then
                  Error
                    (Printf.sprintf "parse bad entry label \"%s\""
                       (excerpt entry))
                else if List.length args > 4 then
                  Error "parse EVAL takes at most four arguments"
                else
                  map_result int32_of_token args
                  |> Result.map (fun args -> Eval (entry, args))
            | "EVAL", [] -> Error "parse EVAL needs an entry label"
            | "STATS", [] -> Ok Stats
            | "STATS", _ -> Error "parse STATS takes no arguments"
            | "METRICS", [] -> Ok Metrics
            | "METRICS", _ -> Error "parse METRICS takes no arguments"
            | "PING", [] -> Ok Ping
            | "PING", _ -> Error "parse PING takes no arguments"
            | "QUIT", [] -> Ok Quit
            | "QUIT", _ -> Error "parse QUIT takes no arguments"
            | _ ->
                Error
                  (Printf.sprintf "parse unknown command \"%s\"" (excerpt cmd))
            ))

(* Canonical rendering. Scalar requests print exactly as their
   normalized wire form — that string is the shard-cache key, so "MUL 7"
   and " mul  7 " share one entry. Batch lanes print space-separated in
   lane order with the signedness tag emitted once (the parser
   guarantees all lanes of a W64 batch share it). *)
let pp_lanes ppf lanes =
  (match lanes with
  | Pair { signed; _ } :: _ ->
      Format.fprintf ppf " %s" (if signed then "s" else "u")
  | _ -> ());
  List.iter
    (function
      | Const n -> Format.fprintf ppf " %ld" n
      | Pair { x; y; _ } -> Format.fprintf ppf " %Ld %Ld" x y
      | Triple { xhi; xlo; y } -> Format.fprintf ppf " %Ld %Ld %Ld" xhi xlo y)
    lanes

let pp_request ppf = function
  | Op { kernel; batch; lanes } ->
      Format.fprintf ppf "%s%s%a" (kernel_verb kernel)
        (if batch then "B" else "")
        pp_lanes lanes
  | Eval (e, args) ->
      Format.fprintf ppf "EVAL %s" e;
      List.iter (fun w -> Format.fprintf ppf " %ld" w) args
  | Stats -> Format.pp_print_string ppf "STATS"
  | Metrics -> Format.pp_print_string ppf "METRICS"
  | Ping -> Format.pp_print_string ppf "PING"
  | Quit -> Format.pp_print_string ppf "QUIT"

(* The normalized scalar form of one lane — the cache key shared by the
   scalar verb and every batch lane carrying the same operand. *)
let lane_key kernel lane =
  Format.asprintf "%a" pp_request
    (Op { kernel; batch = false; lanes = [ lane ] })
