(** The plan service: socket front-end, dispatch, cache and drain.

    A server owns one listening socket (TCP on localhost or a Unix
    socket), a {!Pool} of worker domains (each with a private millicode
    machine), one shared {!Lru} plan cache and one {!Metrics} recorder.
    Each accepted connection is served by a dedicated thread that reads
    request lines, calls {!respond} and writes the reply — so per-
    connection ordering is trivial while compute parallelism comes from
    the pool.

    {!respond} is exposed separately because it is the entire protocol
    surface: the fuzz suite drives it directly, without sockets. It
    never raises.

    Shutdown: {!stop} (also invoked by the daemon's SIGINT/SIGTERM
    handlers) makes the accept loop exit; connection threads finish the
    request in flight, reply, close, and are joined; then the pool is
    drained and {!run} returns. *)

type endpoint = Unix_socket of string | Tcp of string * int

type config = {
  endpoint : endpoint;
  workers : int;  (** worker domains; >= 1 *)
  cache_capacity : int;  (** LRU plan-cache entries; >= 1 *)
  fuel : int;  (** per-EVAL cycle budget *)
  trace_path : string option;
      (** when set, keep a bounded request-event trace and write it as
          JSONL to this path when {!run} drains *)
  plans_path : string option;
      (** when set, warm-start: load the [BENCH_PLANS.json] store
          (written by [bench plans], {!Hppa_plan.Autotune.Store}) at
          {!create} time and pre-compute the reply for every measured
          MUL/DIV-expressible request, so benchmarked plans are cache
          hits from the first client on. Unreadable or stale stores
          warm nothing and never fail startup. *)
  certified : bool;
      (** certified-only serving: every MUL/DIV plan (computed or
          warm-started) is selected with
          [Selector.choose ~require_certified:true], so each cached
          artifact carries a {!Hppa_verify.Certificate} digest. Strategies
          whose emission the certifier cannot prove are passed over in
          favour of the certified millicode call-through; reply bytes are
          unchanged ({!Plan.mul}/{!Plan.div} render from the planner
          record, not the winner). *)
}

val default_config : config
(** Unix socket ["hppa-serve.sock"], workers 2, cache 4096, fuel 1e6,
    no trace, no warm-start, not certified-only. *)

type t

val create : config -> t
(** Builds the pool, cache, metrics and observability registry; does
    not open the socket ({!run} does). The registry carries the server
    metric families ([hppa_serve_*], [hppa_pool_*]); worker machines
    keep their simulator stats private. *)

val config : t -> config

val registry : t -> Hppa_obs.Obs.Registry.t
(** The server's observability registry — what [METRICS] scrapes. MUL
    and DIV dispatch through {!Hppa_plan.Selector} against it, so the
    per-strategy [hppa_plan_candidates_total] /
    [hppa_plan_selections_total] families appear here alongside the
    [hppa_serve_*] ones. *)

val artifacts : t -> (string * Plan.artifact) list
(** The selector verdicts cached alongside the reply bytes, as
    (cache key, artifact) pairs sorted by key — one per distinct
    MUL/DIV request computed (or warm-started) so far. *)

val respond : t -> string -> string
(** Map one raw request line to one reply (no trailing newline).
    Total: malformed input yields an ["ERR ..."] reply; internal
    exceptions are caught and reported as ["ERR internal ..."]. Every
    reply is a single line except the [METRICS] scrape (multi-line
    Prometheus text whose last line is ["# EOF"]) and the [MULB]/[DIVB]
    batch replies (["OK MULB k=<K>"] header followed by K lines, each
    byte-identical to the corresponding scalar reply — see
    {!is_batch_reply}). *)

val stats_payload : t -> string
(** The [STATS] reply payload (also available without a socket). *)

val metrics_payload : t -> string
(** The [METRICS] reply: Prometheus exposition text of a registry
    snapshot, terminated by ["# EOF"] (no trailing newline). *)

val is_scrape : string -> bool
(** Does this reply look like a [METRICS] scrape (starts with [#])?
    Replies satisfy [is_ok || is_err || is_scrape]. *)

val is_batch_reply : string -> bool
(** Does this reply open with a [MULB]/[DIVB] batch header
    (["OK MULB k="] / ["OK DIVB k="])? Batch replies are the only
    multi-line replies besides the [METRICS] scrape; every line after
    the header is itself [is_ok || is_err]. *)

val run : t -> unit
(** Bind, listen and serve until {!stop}; then drain and return.
    Raises [Unix.Unix_error] if the endpoint cannot be bound. *)

val stop : t -> unit
(** Request graceful shutdown; safe from signal handlers and other
    threads. Idempotent. *)

val shutdown_pool : t -> unit
(** Drain the worker pool without running the socket loop — for tests
    that only use {!respond}. Idempotent. *)

val pp_dump : Format.formatter -> t -> unit
(** Human-readable final report: metrics dump plus cache counters. *)
