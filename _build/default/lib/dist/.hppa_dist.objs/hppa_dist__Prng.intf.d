lib/dist/prng.mli: Hppa_word
