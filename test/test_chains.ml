(* Tests for addition chains: evaluation, the rule program, exhaustive
   search, and code generation (paper section 5, Figure 1). *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
open Util
open Hppa

(* ------------------------------------------------------------------ *)
(* Chain evaluation                                                    *)

let test_paper_chain_for_10 () =
  (* r = 4s + s; r = r + r  (section 5's example). *)
  let c = [ Chain.Shadd (2, 1, 1); Chain.Add (2, 2) ] in
  Alcotest.(check int) "target" 10 (Chain.target_exn c);
  Alcotest.(check int) "length" 2 (Chain.length c)

let test_monotonic_examples () =
  (* Section 5 "Overflow": the 2-step chain for 15 via shift-4 is not
     monotonic; the shift-and-add one is. *)
  let shl_chain = [ Chain.Shl (1, 4); Chain.Sub (2, 1) ] in
  let mono_chain = [ Chain.Shadd (1, 1, 1); Chain.Shadd (2, 2, 2) ] in
  Alcotest.(check int) "shl target" 15 (Chain.target_exn shl_chain);
  Alcotest.(check int) "mono target" 15 (Chain.target_exn mono_chain);
  Alcotest.(check bool) "shl chain unsafe" false (Chain.is_overflow_safe shl_chain);
  Alcotest.(check bool) "mono chain safe" true (Chain.is_overflow_safe mono_chain)

let test_bad_chains_rejected () =
  let bad = [ Chain.Add (3, 1) ] in
  (match Chain.values bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forward reference accepted");
  let bad_shift = [ Chain.Shadd (4, 1, 1) ] in
  match Chain.values bad_shift with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shift amount 4 accepted"

let prop_eval_word_is_linear =
  QCheck.Test.make ~name:"chain(s) = target * s mod 2^32" ~count:500
    (QCheck.pair (QCheck.int_range 1 5000) arb_word) (fun (n, s) ->
      match Chain_rules.find n with
      | None -> false
      | Some c ->
          Chain.target_exn c = n
          && Word.equal (Chain.eval_word c s) (Word.mul_lo (Word.of_int n) s))

(* ------------------------------------------------------------------ *)
(* The rule program                                                    *)

let rule_table = lazy (Chain_rules.table Fast ~limit:2000)
let mono_table = lazy (Chain_rules.table Monotonic ~limit:2000)

let test_single_step_values () =
  (* Figure 1 row 1: every value reachable in one step. *)
  let t = Lazy.force rule_table in
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (Printf.sprintf "l(%d)" n)
        (Some 1) (Chain_rules.cost t n))
    [ 2; 3; 4; 5; 8; 9; 16; 32; 64; 128; 256; 512; 1024 ]

let test_rule_chains_hit_targets () =
  let t = Lazy.force rule_table in
  for n = 1 to 2000 do
    match Chain_rules.chain t n with
    | None -> Alcotest.failf "no chain for %d" n
    | Some c ->
        if Chain.target_exn c <> n then Alcotest.failf "chain for %d wrong" n;
        (match Chain_rules.cost t n with
        | Some cost when cost = Chain.length c -> ()
        | Some cost ->
            Alcotest.failf "chain for %d has %d steps, table says %d" n
              (Chain.length c) cost
        | None -> Alcotest.failf "cost missing for %d" n)
  done

let test_monotonic_chains_safe () =
  let t = Lazy.force mono_table in
  for n = 1 to 2000 do
    match Chain_rules.chain t n with
    | None -> Alcotest.failf "no monotonic chain for %d" n
    | Some c ->
        if not (Chain.is_overflow_safe c) then
          Alcotest.failf "monotonic chain for %d not overflow-safe" n;
        if Chain.target_exn c <> n then Alcotest.failf "target %d wrong" n
  done

let test_monotonic_penalty_bounded () =
  (* The paper's example: 31 costs 2 fast, 3 monotonic. Over a range the
     penalty should stay small. *)
  let f = Lazy.force rule_table and m = Lazy.force mono_table in
  Alcotest.(check (option int)) "31 fast" (Some 2) (Chain_rules.cost f 31);
  Alcotest.(check (option int)) "31 monotonic" (Some 3) (Chain_rules.cost m 31);
  for n = 1 to 2000 do
    match (Chain_rules.cost f n, Chain_rules.cost m n) with
    | Some a, Some b ->
        if b < a then Alcotest.failf "monotonic beat fast at %d" n;
        (* The worst cases are 2^k -/+ 1 style values whose fast chain
           leans on a wide shift; the penalty stays small but can exceed
           the paper's one-step example. *)
        if b > a + 4 then Alcotest.failf "monotonic penalty > 4 at %d (%d vs %d)" n a b
    | _, _ -> Alcotest.failf "missing cost at %d" n
  done

let test_find_large_constants () =
  (* Magic multipliers and other big constants must still get chains. *)
  List.iter
    (fun n ->
      match Chain_rules.find n with
      | None -> Alcotest.failf "no chain for %d" n
      | Some c ->
          Alcotest.(check int) (Printf.sprintf "target %d" n) n (Chain.target_exn c))
    [ 0x55555555; 0x33333333; 0x49249249; 0xE38E38E3; 0x12345677; 0x7FFFFFFF; 65537 ]

(* ------------------------------------------------------------------ *)
(* Exhaustive search and Figure 1                                      *)

let test_figure1_rows_1_to_3 () =
  let ex = Chain_search.lengths_table ~max_len:3 ~limit:64 () in
  let check n expect =
    Alcotest.(check (option int))
      (Printf.sprintf "l(%d)" n)
      expect (Chain_search.length_of ex n)
  in
  (* Paper Figure 1 rows (prefixes). *)
  List.iter (fun n -> check n (Some 1)) [ 2; 3; 4; 5; 8; 9; 16; 32; 64 ];
  List.iter (fun n -> check n (Some 2)) [ 6; 7; 10; 11; 12; 13; 15; 17; 18; 19; 20; 21 ];
  List.iter (fun n -> check n (Some 3)) [ 14; 22; 23; 26; 28; 29; 30; 35; 38; 39; 42 ];
  check 58 None (* first of row 4: not reachable in 3 *)

let test_figure1_first_of_each_row () =
  let ex = Chain_search.lengths_table ~max_len:4 ~limit:600 () in
  let first r =
    let rec go n =
      if n > 600 then -1
      else
        match Chain_search.length_of ex n with
        | Some c when c = r -> n
        | Some _ -> go (n + 1)
        | None when r > 4 -> n
        | None -> go (n + 1)
    in
    go 2
  in
  Alcotest.(check int) "first l=1" 2 (first 1);
  Alcotest.(check int) "first l=2" 6 (first 2);
  Alcotest.(check int) "first l=3" 14 (first 3);
  Alcotest.(check int) "first l=4" 58 (first 4);
  Alcotest.(check int) "first l=5" 466 (first 5)

let test_find_agrees_with_paper_59 () =
  (* The paper: 59 has a minimal 3-step chain needing a temporary. *)
  match Chain_search.find ~max_len:3 59 with
  | None -> Alcotest.fail "no 3-step chain for 59"
  | Some c ->
      Alcotest.(check int) "59 target" 59 (Chain.target_exn c);
      Alcotest.(check int) "59 length" 3 (Chain.length c)

let test_rule_program_vs_exhaustive () =
  (* The paper reports its rule program minimal on all but a small set of
     exceptions; ours must be within one step of optimal below 600 and
     minimal for at least 90 % of targets. *)
  let ex = Chain_search.lengths_table ~max_len:4 ~limit:600 () in
  let rules = Lazy.force rule_table in
  let exceptions = ref 0 and total = ref 0 in
  for n = 2 to 600 do
    match (Chain_search.length_of ex n, Chain_rules.cost rules n) with
    | Some l, Some r ->
        incr total;
        if r < l then Alcotest.failf "rule program beat exhaustive at %d" n;
        if r > l then begin
          incr exceptions;
          if r > l + 1 then
            Alcotest.failf "rule program %d steps vs optimal %d at %d" r l n
        end
    | None, _ -> () (* l(n) = 5 here; upper bounds only *)
    | Some _, None -> Alcotest.failf "rules missed %d" n
  done;
  (* Measured: 24 exceptions of 597 (4 %), every one a single extra step
     (the paper reports 12 below 10000 for its richer rule set). *)
  if !exceptions * 100 > !total * 6 then
    Alcotest.failf "too many rule-program exceptions: %d of %d" !exceptions !total

(* ------------------------------------------------------------------ *)
(* Code generation                                                     *)

let prop_mulc_correct =
  QCheck.Test.make ~name:"mul-by-constant routines compute n*x" ~count:300
    (QCheck.pair (QCheck.map Int32.of_int (QCheck.int_range (-10000) 10000)) arb_word)
    (fun (n, x) ->
      let plan = Mul_const.plan n in
      let mach = Machine.create (Program.resolve_exn plan.source) in
      Word.equal (call_exn mach plan.entry [ x ]) (Word.mul_lo n x))

let prop_mulc_extreme_constants =
  QCheck.Test.make ~name:"mul-by-constant at full range" ~count:200
    (QCheck.pair arb_word arb_word) (fun (n, x) ->
      let plan = Mul_const.plan n in
      let mach = Machine.create (Program.resolve_exn plan.source) in
      Word.equal (call_exn mach plan.entry [ x ]) (Word.mul_lo n x))

let prop_mulc_overflow_exact =
  QCheck.Test.make ~name:"overflow plans trap iff product unrepresentable"
    ~count:400
    (QCheck.pair
       (QCheck.map Int32.of_int (QCheck.int_range (-3000) 3000))
       arb_word)
    (fun (n, x) ->
      QCheck.assume (not (Word.equal n 0l));
      let plan = Mul_const.plan ~overflow:true n in
      let mach = Machine.create (Program.resolve_exn plan.source) in
      match Machine.call mach plan.entry ~args:[ x ] with
      | Machine.Halted ->
          (not (Word.mul_overflows_s n x))
          && Word.equal (Machine.get mach Reg.ret0) (Word.mul_lo n x)
      | Machine.Trapped Hppa_machine.Trap.Overflow -> Word.mul_overflows_s n x
      | Machine.Trapped _ | Machine.Fuel_exhausted -> false)

let test_paper_temporaries () =
  (* Section 5 "Register Use": below 100, exactly 59, 87 and 94 need a
     temporary in their minimal chains — the best no-temporary chain is
     longer than the true minimum for those three constants only. *)
  let ex = Chain_search.lengths_table ~max_len:4 ~limit:100 () in
  let nt = Chain_rules.table No_temp ~limit:100 in
  let needs = ref [] in
  for n = 2 to 99 do
    match (Chain_search.length_of ex n, Chain_rules.cost nt n) with
    | Some l, Some l_nt when l_nt > l -> needs := n :: !needs
    | _, _ -> ()
  done;
  Alcotest.(check (list int)) "the paper's trio" [ 94; 87; 59 ] !needs;
  (* And the generated code for those three really does use one. *)
  List.iter
    (fun n ->
      match Chain_search.find ~max_len:4 n with
      | None -> Alcotest.failf "no chain for %d" n
      | Some c ->
          let b = Builder.create () in
          let info = Chain_codegen.body c b in
          Alcotest.(check int) (Printf.sprintf "%d temporaries" n) 1
            info.Chain_codegen.temporaries)
    [ 59; 87; 94 ]

let test_min_int_plans () =
  let plan = Mul_const.plan Int32.min_int in
  let mach = Machine.create (Program.resolve_exn plan.source) in
  Alcotest.check word "3 * min_int" (Word.mul_lo 3l Int32.min_int)
    (call_exn mach plan.entry [ 3l ]);
  let planov = Mul_const.plan ~overflow:true Int32.min_int in
  let mach = Machine.create (Program.resolve_exn planov.source) in
  Alcotest.check word "1 * min_int ok" Int32.min_int (call_exn mach planov.entry [ 1l ]);
  Alcotest.check word "0 * min_int ok" 0l (call_exn mach planov.entry [ 0l ]);
  match Machine.call mach planov.entry ~args:[ 2l ] with
  | Machine.Trapped Hppa_machine.Trap.Overflow -> ()
  | _ -> Alcotest.fail "2 * min_int must trap"

let prop_mulc_source_untouched =
  (* Section 5 "Register Use": "by convention, the source register for a
     multiplication by constant is left untouched". *)
  QCheck.Test.make ~name:"mulc leaves arg0 untouched" ~count:300
    (QCheck.pair (QCheck.map Int32.of_int (QCheck.int_range (-5000) 5000)) arb_word)
    (fun (n, x) ->
      let plan = Mul_const.plan n in
      let mach = Machine.create (Program.resolve_exn plan.source) in
      ignore (call_exn mach plan.entry [ x ]);
      Word.equal (Machine.get mach Reg.arg0) x)

let test_overflow_plan_large_constant () =
  (* Monotonic chains must exist for large magnitudes too (the descent
     path), and the generated code must trap exactly on overflow. *)
  let n = 0x12345677l in
  let plan = Mul_const.plan ~overflow:true n in
  let mach = Machine.create (Program.resolve_exn plan.source) in
  (match Machine.call mach plan.entry ~args:[ 7l ] with
  | Machine.Halted ->
      Alcotest.check word "7 * big" (Word.mul_lo 7l n) (Machine.get mach Reg.ret0)
  | _ -> Alcotest.fail "7 * big must fit");
  match Machine.call mach plan.entry ~args:[ 8l ] with
  | Machine.Trapped Hppa_machine.Trap.Overflow -> ()
  | _ -> Alcotest.fail "8 * big must trap"

let test_headline_costs () =
  (* Section 8: "multiplications by compile-time constants can generally
     be performed in four or fewer instructions" — check the fraction for
     1..1000. *)
  let t = Lazy.force rule_table in
  let small = ref 0 in
  for n = 1 to 1000 do
    match Chain_rules.cost t n with
    | Some c when c <= 4 -> incr small
    | Some _ -> ()
    | None -> Alcotest.failf "missing %d" n
  done;
  if !small < 840 then
    Alcotest.failf "only %d of 1000 constants cost <= 4 instructions" !small

(* ------------------------------------------------------------------ *)
(* Chain_stats                                                         *)

let test_chain_stats_rows () =
  let ex = Chain_search.lengths_table ~max_len:3 ~limit:64 () in
  let rows = Chain_stats.figure1_rows ex ~max_entries:6 in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  Alcotest.(check (list int)) "row 1" [ 2; 3; 4; 5; 8; 9 ] (List.assoc 1 rows);
  Alcotest.(check (list int)) "row 2 prefix" [ 6; 7; 10; 11; 12; 13 ] (List.assoc 2 rows);
  Alcotest.(check (option int)) "c(1)" (Some 2) (Chain_stats.first_with_length ex 1);
  Alcotest.(check (option int)) "c(3)" (Some 14) (Chain_stats.first_with_length ex 3);
  (* r = depth+1: first unreachable value. *)
  Alcotest.(check (option int)) "c(4) lower-bound form" (Some 58)
    (Chain_stats.first_with_length ex 4);
  Alcotest.(check (option int)) "beyond" None (Chain_stats.first_with_length ex 6)

let test_chain_stats_exceptions () =
  let ex = Chain_search.lengths_table ~max_len:4 ~limit:200 () in
  let rules = Chain_rules.table Fast ~limit:200 in
  let r = Chain_stats.rule_exceptions rules ex in
  Alcotest.(check bool) "covers the range" true (r.Chain_stats.total > 150);
  List.iter
    (fun (n, l, c) ->
      if c <= l then Alcotest.failf "non-exception reported at %d" n)
    r.Chain_stats.exceptions

let test_chain_stats_fraction () =
  let rules = Chain_rules.table Fast ~limit:100 in
  Alcotest.(check (float 1e-9)) "all of 1..100 within 4"
    1.0
    (Chain_stats.fraction_within rules ~upto:100 ~max_cost:4);
  let f1 = Chain_stats.fraction_within rules ~upto:100 ~max_cost:1 in
  Alcotest.(check bool) "one-step fraction sane" true (f1 > 0.05 && f1 < 0.2)

let test_chain_stats_temporaries () =
  Alcotest.(check (list int)) "the paper's trio via the API" [ 59; 87; 94 ]
    (Chain_stats.needing_temporary ~limit:100)

(* ------------------------------------------------------------------ *)
(* Sweep sharding edge cases                                           *)

let same_table msg a b =
  let limit = Chain_search.limit a in
  Alcotest.(check int) (msg ^ " limit") limit (Chain_search.limit b);
  for n = 1 to limit do
    Alcotest.(check (option int))
      (Printf.sprintf "%s l(%d)" msg n)
      (Chain_search.length_of a n)
      (Chain_search.length_of b n)
  done

let test_domains_exceed_frontier () =
  (* The first frontier has exactly one element, so 64 domains always
     exceed some frontier; excess workers must be clamped, not crash,
     and the table must be bit-identical to the sequential one. *)
  let seq = Chain_search.lengths_table ~max_len:3 ~limit:60 () in
  let wide = Chain_search.lengths_table ~domains:64 ~max_len:3 ~limit:60 () in
  same_table "domains=64" seq wide

let test_domains_one_vs_default () =
  let one = Chain_search.lengths_table ~domains:1 ~max_len:3 ~limit:80 () in
  let dflt =
    Chain_search.lengths_table
      ~domains:(Hppa_machine.Sweep.default_domains ())
      ~max_len:3 ~limit:80 ()
  in
  same_table "domains=default" one dflt

let test_domains_nonpositive_rejected () =
  List.iter
    (fun d ->
      Alcotest.check_raises
        (Printf.sprintf "domains=%d" d)
        (Invalid_argument "Chain_search.lengths_table: domains must be >= 1")
        (fun () ->
          ignore (Chain_search.lengths_table ~domains:d ~max_len:2 ~limit:10 ())))
    [ 0; -1; -8 ]

let suite =
  [
    ( "chains:unit",
      [
        Alcotest.test_case "paper chain for 10" `Quick test_paper_chain_for_10;
        Alcotest.test_case "monotonic examples" `Quick test_monotonic_examples;
        Alcotest.test_case "bad chains rejected" `Quick test_bad_chains_rejected;
        Alcotest.test_case "single-step values" `Quick test_single_step_values;
        Alcotest.test_case "rule chains hit targets" `Quick test_rule_chains_hit_targets;
        Alcotest.test_case "monotonic chains safe" `Quick test_monotonic_chains_safe;
        Alcotest.test_case "monotonic penalty" `Quick test_monotonic_penalty_bounded;
        Alcotest.test_case "large constants" `Quick test_find_large_constants;
        Alcotest.test_case "figure 1 rows 1-3" `Quick test_figure1_rows_1_to_3;
        Alcotest.test_case "figure 1 row firsts" `Slow test_figure1_first_of_each_row;
        Alcotest.test_case "paper's 59" `Quick test_find_agrees_with_paper_59;
        Alcotest.test_case "rules vs exhaustive" `Slow test_rule_program_vs_exhaustive;
        Alcotest.test_case "paper temporaries" `Quick test_paper_temporaries;
        Alcotest.test_case "min_int plans" `Quick test_min_int_plans;
        Alcotest.test_case "overflow plan large constant" `Quick
          test_overflow_plan_large_constant;
        Alcotest.test_case "headline costs" `Quick test_headline_costs;
        Alcotest.test_case "chain_stats rows" `Quick test_chain_stats_rows;
        Alcotest.test_case "chain_stats exceptions" `Quick test_chain_stats_exceptions;
        Alcotest.test_case "chain_stats fraction" `Quick test_chain_stats_fraction;
        Alcotest.test_case "chain_stats temporaries" `Quick test_chain_stats_temporaries;
        Alcotest.test_case "domains exceed frontier" `Quick test_domains_exceed_frontier;
        Alcotest.test_case "domains 1 vs default" `Quick test_domains_one_vs_default;
        Alcotest.test_case "domains <= 0 rejected" `Quick
          test_domains_nonpositive_rejected;
      ] );
    qsuite "chains:props"
      [
        prop_eval_word_is_linear;
        prop_mulc_correct;
        prop_mulc_extreme_constants;
        prop_mulc_overflow_exact;
        prop_mulc_source_untouched;
      ];
  ]
