(* Tests for division (section 7): the DS millicode, the derived method
   for constants, the small-divisor dispatch and the modern-magic
   ablation. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Trap = Hppa_machine.Trap
open Util
open Hppa

let mach = lazy (Millicode.machine ())

(* ------------------------------------------------------------------ *)
(* General-purpose millicode                                           *)

let divide entry x y =
  let m = Lazy.force mach in
  match Machine.call m entry ~args:[ x; y ] with
  | Machine.Halted -> Ok (Machine.get m Reg.ret0, Machine.get m Reg.ret1)
  | Machine.Trapped t -> Error t
  | Machine.Fuel_exhausted -> Error (Trap.Break 31)

let edge =
  [
    0l; 1l; -1l; 2l; -2l; 3l; 7l; 10l; 60l; 0xFFFFl; 0x10000l; 0x7fffffffl;
    0x80000000l; 0x80000001l; 0xfffffffel; 0xffffffffl;
  ]

let test_divu_edges () =
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          match divide "divU" x y with
          | Error (Trap.Break 0) when Word.equal y 0l -> ()
          | Error t -> Alcotest.failf "divU %ld %ld: %s" x y (Trap.to_string t)
          | Ok (q, r) ->
              let q', r' = Word.divmod_u x y in
              if not (Word.equal q q' && Word.equal r r') then
                Alcotest.failf "divU %ld/%ld = (%ld, %ld) want (%ld, %ld)" x y q r q' r')
        edge)
    edge

let test_divi_edges () =
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          match divide "divI" x y with
          | Error (Trap.Break 0) when Word.equal y 0l -> ()
          | Error t -> Alcotest.failf "divI %ld %ld: %s" x y (Trap.to_string t)
          | Ok (q, r) ->
              let q', r' = Word.divmod_trunc_s x y in
              if not (Word.equal q q' && Word.equal r r') then
                Alcotest.failf "divI %ld/%ld = (%ld, %ld) want (%ld, %ld)" x y q r q' r')
        edge)
    edge

let prop_div_entry entry signed rem =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s agrees with the reference" entry)
    ~count:2000 (QCheck.pair arb_word arb_word) (fun (x, y) ->
      QCheck.assume (not (Word.equal y 0l));
      match divide entry x y with
      | Error _ -> false
      | Ok (r0, _) ->
          let q, r =
            if signed then Word.divmod_trunc_s x y else Word.divmod_u x y
          in
          Word.equal r0 (if rem then r else q))

let test_div_by_zero_breaks () =
  List.iter
    (fun entry ->
      match divide entry 5l 0l with
      | Error (Trap.Break 0) -> ()
      | Error t -> Alcotest.failf "%s: wrong trap %s" entry (Trap.to_string t)
      | Ok _ -> Alcotest.failf "%s: no trap on /0" entry)
    [ "divU"; "divI"; "remU"; "remI"; "divU_small"; "divI_small" ]

let test_divu_cycles_near_80 () =
  let m = Lazy.force mach in
  let _, c = call_cycles_exn m "divU" [ 123456789l; 1097l ] in
  Alcotest.(check bool) (Printf.sprintf "divU %d cycles ~80" c) true
    (c >= 70 && c <= 90);
  let _, c = call_cycles_exn m "divI" [ -123456789l; 1097l ] in
  Alcotest.(check bool) (Printf.sprintf "divI %d cycles ~80-90" c) true
    (c >= 70 && c <= 95)

(* ------------------------------------------------------------------ *)
(* The derived method: parameters (Figure 6)                           *)

let test_figure6_exact () =
  (* The paper's table, row by row. *)
  let expect =
    [
      (3, 32, 1L, 0x55555555L, 0x100000002L);
      (5, 32, 1L, 0x33333333L, 0x100000004L);
      (7, 33, 1L, 0x49249249L, 0x200000006L);
      (9, 35, 5L, 0xE38E38E3L, 0x1999999A7L);
      (11, 36, 9L, 0x1745D1745L, 0x1C71C71D6L);
      (13, 35, 7L, 0x9D89D89DL, 0x124924938L);
      (15, 32, 1L, 0x11111111L, 0x10000000EL);
      (17, 32, 1L, 0xF0F0F0FL, 0x100000010L);
      (19, 36, 1L, 0xD79435E5L, 0x1000000012L);
    ]
  in
  List.iter
    (fun (y, s, r, a, coverage) ->
      let t = Div_magic.derive (Int32.of_int y) in
      Alcotest.(check int) (Printf.sprintf "s for %d" y) s t.Div_magic.s;
      Alcotest.(check int64) (Printf.sprintf "r for %d" y) r t.r;
      Alcotest.(check int64) (Printf.sprintf "a for %d" y) a t.a;
      Alcotest.(check int64) (Printf.sprintf "coverage for %d" y) coverage t.coverage)
    expect

let test_derive_rejects () =
  Alcotest.check_raises "even divisor"
    (Invalid_argument "Div_magic.derive: divisor must be odd and >= 3")
    (fun () -> ignore (Div_magic.derive 6l));
  Alcotest.check_raises "one"
    (Invalid_argument "Div_magic.derive: divisor must be odd and >= 3")
    (fun () -> ignore (Div_magic.derive 1l))

let prop_derived_eval_exact =
  QCheck.Test.make
    ~name:"derived q'(x) truncates to floor(x/y) over the full range"
    ~count:2000
    (QCheck.pair (QCheck.map (fun i -> (2 * i) + 3) (QCheck.int_range 0 5000)) arb_word)
    (fun (y, x) ->
      let t = Div_magic.derive (Int32.of_int y) in
      Word.equal (Div_magic.eval t x) (fst (Word.divmod_u x (Int32.of_int y))))

let test_derived_eval_at_coverage_boundaries () =
  (* The proof guarantees exactness only below (K+1)y; check the last
     multiples below the boundary for the Figure 6 divisors. *)
  List.iter
    (fun t ->
      let y = Word.to_int64_u t.Div_magic.y in
      let check (x64 : int64) =
        if x64 >= 0L && x64 < 0x1_0000_0000L then begin
          let x = Int64.to_int32 x64 in
          let q = Div_magic.eval t x in
          let q' = fst (Word.divmod_u x t.Div_magic.y) in
          if not (Word.equal q q') then
            Alcotest.failf "y=%Ld x=%Ld: %ld vs %ld" y x64 q q'
        end
      in
      List.iter check
        [
          0L; 1L; Int64.sub y 1L; y; Int64.add y 1L; 0xFFFF_FFFFL;
          0xFFFF_FFFEL; Int64.sub 0x1_0000_0000L y;
        ])
    (Div_magic.figure6 ())

(* Divisors at the top of the unsigned range: the derivation must still
   find an s <= 62 whose coverage clears 2^32, and the reference eval
   must agree with Word division at the boundary dividends. *)
let test_derive_near_2pow31 () =
  List.iter
    (fun y ->
      let t = Div_magic.derive y in
      let y64 = Word.to_int64_u y in
      Alcotest.(check bool)
        (Printf.sprintf "r > 0 for %lu" y)
        true (t.Div_magic.r > 0L);
      Alcotest.(check bool)
        (Printf.sprintf "coverage for %lu" y)
        true
        (t.Div_magic.coverage >= 0x1_0000_0000L);
      List.iter
        (fun (x64 : int64) ->
          if x64 >= 0L && x64 <= 0xFFFF_FFFFL then
            let x = Int64.to_int32 x64 in
            Alcotest.(check word)
              (Printf.sprintf "x=%Ld / %lu" x64 y)
              (fst (Word.divmod_u x y))
              (Div_magic.eval t x))
        [ 0L; 1L; Int64.sub y64 1L; y64; Int64.add y64 1L; 0xFFFF_FFFFL ])
    [
      0x7FFF_FFFDl;
      0x7FFF_FFFFl (* 2^31 - 1 *);
      0x8000_0001l (* 2^31 + 1, unsigned *);
      -3l (* 2^32 - 3 *);
      -1l (* 2^32 - 1 *);
    ]

(* The r = 0 exactness shortcut in [derive] can only fire for divisors
   that divide a power of two — which the odd-divisor precondition
   excludes, and which [Div_const] routes to shift plans instead. Pin
   both halves: r >= 1 for every odd divisor, and exact powers of two
   take the Power_of_two path and divide exactly at the boundaries. *)
let test_exact_power_path () =
  for i = 1 to 200 do
    let y = Int32.of_int ((2 * i) + 1) in
    Alcotest.(check bool)
      (Printf.sprintf "r >= 1 for %ld" y)
      true
      ((Div_magic.derive y).Div_magic.r >= 1L)
  done;
  for k = 1 to 31 do
    let y = Int32.shift_left 1l k in
    let plan = Div_const.plan_unsigned y in
    match plan.Div_const.strategy with
    | Div_const.Power_of_two k' ->
        Alcotest.(check int) (Printf.sprintf "shift for 2^%d" k) k k'
    | _ -> Alcotest.failf "2^%d: expected the power-of-two strategy" k
  done

let prop_boundary_dividends =
  QCheck.Test.make
    ~name:"coverage >= range implies eval exact on boundary dividends"
    ~count:500 arb_word
    (fun w ->
      let y = Int32.logor w 1l in
      QCheck.assume (not (Word.le_u y 1l));
      let t = Div_magic.derive y in
      let y64 = Word.to_int64_u y in
      (* derive only returns once its coverage clears the range *)
      t.Div_magic.coverage >= 0x1_0000_0000L
      && List.for_all
           (fun (x64 : int64) ->
             x64 < 0L || x64 > 0xFFFF_FFFFL
             ||
             let x = Int64.to_int32 x64 in
             Word.equal (Div_magic.eval t x) (fst (Word.divmod_u x y)))
           [ 0L; 1L; Int64.sub y64 1L; y64; 0xFFFF_FFFFL ])

(* ------------------------------------------------------------------ *)
(* Generated constant-division code                                    *)

let plan_machine (plan : Div_const.plan) =
  Machine.create
    (Program.resolve_exn (Program.concat [ plan.source; Div_gen.source ]))

let exercise_plan ~signed y =
  let y32 = Int32.of_int y in
  let plan =
    if signed then Div_const.plan_signed y32 else Div_const.plan_unsigned y32
  in
  let m = plan_machine plan in
  let reference x =
    if signed then fst (Word.divmod_trunc_s x y32) else fst (Word.divmod_u x y32)
  in
  let check x =
    let got = call_exn m plan.entry [ x ] in
    if not (Word.equal got (reference x)) then
      Alcotest.failf "%s x=%ld: got %ld want %ld" plan.entry x got (reference x)
  in
  for k = 0 to 500 do
    let x = Int32.mul (Int32.of_int k) y32 in
    check x;
    check (Int32.add x 1l);
    check (Int32.sub x 1l)
  done;
  List.iter check
    [ 0l; 1l; -1l; Int32.max_int; Int32.min_int; Int32.add Int32.min_int 1l;
      0x12345678l; -0x12345678l ]

let test_unsigned_plans_small () =
  for y = 1 to 40 do
    exercise_plan ~signed:false y
  done

let test_signed_plans_small () =
  for y = 1 to 40 do
    exercise_plan ~signed:true y;
    exercise_plan ~signed:true (-y)
  done

let test_plans_interesting () =
  List.iter
    (fun y -> exercise_plan ~signed:false y)
    [ 60; 100; 255; 256; 257; 641; 1000; 4095; 4096; 65535; 65537; 1000000007 ];
  List.iter
    (fun y -> exercise_plan ~signed:true y)
    [ 60; -60; 255; -257; 1000; 4096; -4096; 1000000007 ]

let prop_random_divisor_plans =
  QCheck.Test.make ~name:"plans for random divisors" ~count:60
    (QCheck.pair (QCheck.int_range 2 2_000_000) arb_word) (fun (y, x) ->
      let y32 = Int32.of_int y in
      let plan_u = Div_const.plan_unsigned y32 in
      let m = plan_machine plan_u in
      let ok_u = Word.equal (call_exn m plan_u.entry [ x ]) (fst (Word.divmod_u x y32)) in
      let plan_i = Div_const.plan_signed y32 in
      let m = plan_machine plan_i in
      let ok_i =
        Word.equal (call_exn m plan_i.entry [ x ]) (fst (Word.divmod_trunc_s x y32))
      in
      ok_u && ok_i)

let test_paper_division_by_3_cost () =
  (* Figure 7: 17 instructions for /3 (we are within a few of that, and
     far below the ~76-cycle general divide). *)
  let plan = Div_const.plan_unsigned 3l in
  let m = plan_machine plan in
  let _, c = call_cycles_exn m plan.entry [ 1000000l ] in
  Alcotest.(check bool) (Printf.sprintf "div by 3 takes %d cycles" c) true
    (c >= 15 && c <= 26);
  (* Paper: "a factor of 3.5 times better than the general purpose
     algorithm". *)
  let m2 = Lazy.force mach in
  let _, general = call_cycles_exn m2 "divU" [ 1000000l; 3l ] in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %d/%d >= 3x" general c)
    true
    (general >= 3 * c)

let test_signed_pow2_costs () =
  (* Section 7: signed division by small powers of two takes 3
     instructions, large ones 4. *)
  let count k =
    let plan = Div_const.plan_signed (Int32.shift_left 1l k) in
    plan.Div_const.static_instructions
  in
  Alcotest.(check int) "2^3 signed" 3 (count 3);
  Alcotest.(check int) "2^10 signed" 3 (count 10);
  Alcotest.(check int) "2^20 signed" 4 (count 20);
  Alcotest.(check int) "2^30 signed" 4 (count 30)

let test_y11_falls_back_unsigned_only () =
  (* The paper's caveat: y = 11 does not fit two words over the full
     unsigned range, but the signed range shrinks a. *)
  let u = Div_const.plan_unsigned 11l in
  Alcotest.(check bool) "unsigned 11 falls back" true (Div_const.needs_millicode u);
  let s = Div_const.plan_signed 11l in
  Alcotest.(check bool) "signed 11 uses the reciprocal" false
    (Div_const.needs_millicode s)

(* ------------------------------------------------------------------ *)
(* Remainder plans                                                     *)

let exercise_rem_plan ~signed y =
  let y32 = Int32.of_int y in
  let plan =
    if signed then Div_const.plan_rem_signed y32
    else Div_const.plan_rem_unsigned y32
  in
  let m = plan_machine plan in
  let reference x =
    if signed then snd (Word.divmod_trunc_s x y32) else snd (Word.divmod_u x y32)
  in
  let check x =
    let got = call_exn m plan.entry [ x ] in
    if not (Word.equal got (reference x)) then
      Alcotest.failf "%s x=%ld: got %ld want %ld" plan.entry x got (reference x)
  in
  for k = 0 to 300 do
    let x = Int32.mul (Int32.of_int k) y32 in
    check x;
    check (Int32.add x 1l);
    check (Int32.sub x 1l)
  done;
  List.iter check
    [ 0l; 1l; -1l; Int32.max_int; Int32.min_int; Int32.add Int32.min_int 1l;
      0x12345678l; -0x12345678l ]

let test_rem_plans () =
  List.iter
    (fun y ->
      exercise_rem_plan ~signed:false y;
      exercise_rem_plan ~signed:true y;
      exercise_rem_plan ~signed:true (-y))
    [ 1; 2; 3; 4; 5; 7; 8; 9; 11; 13; 16; 19; 60; 255; 4096 ]

let test_rem_pow2_is_one_instruction () =
  let plan = Div_const.plan_rem_unsigned 8l in
  Alcotest.(check int) "x mod 8 unsigned" 1 plan.Div_const.static_instructions

let prop_rem_random =
  QCheck.Test.make ~name:"remainder plans for random divisors" ~count:40
    (QCheck.pair (QCheck.int_range 2 100_000) arb_word) (fun (y, x) ->
      let y32 = Int32.of_int y in
      let pu = Div_const.plan_rem_unsigned y32 in
      let m = plan_machine pu in
      let ok_u = Word.equal (call_exn m pu.entry [ x ]) (snd (Word.divmod_u x y32)) in
      let ps = Div_const.plan_rem_signed y32 in
      let m = plan_machine ps in
      let ok_s =
        Word.equal (call_exn m ps.entry [ x ]) (snd (Word.divmod_trunc_s x y32))
      in
      ok_u && ok_s)

(* ------------------------------------------------------------------ *)
(* Small-divisor dispatch                                              *)

let prop_small_dispatch =
  QCheck.Test.make ~name:"divU_small/divI_small dispatch correctly" ~count:1000
    (QCheck.pair arb_word (QCheck.int_range 1 25)) (fun (x, y) ->
      let y32 = Int32.of_int y in
      match (divide "divU_small" x y32, divide "divI_small" x y32) with
      | Ok (qu, _), Ok (qi, _) ->
          Word.equal qu (fst (Word.divmod_u x y32))
          && Word.equal qi (fst (Word.divmod_trunc_s x y32))
      | _, _ -> false)

let test_small_dispatch_fast () =
  let m = Lazy.force mach in
  let _, c = call_cycles_exn m "divU_small" [ 1000000l; 3l ] in
  Alcotest.(check bool) (Printf.sprintf "/3 via dispatch: %d cycles" c) true (c <= 36);
  let _, c = call_cycles_exn m "divI_small" [ -1000000l; 13l ] in
  Alcotest.(check bool) (Printf.sprintf "/13 via dispatch: %d cycles" c) true (c <= 50)

(* ------------------------------------------------------------------ *)
(* Modern round-up magic (ablation)                                    *)

let prop_modern_magic =
  QCheck.Test.make ~name:"round-up magic exact for every divisor" ~count:2000
    (QCheck.pair (QCheck.int_range 2 1_000_000) arb_word) (fun (d, x) ->
      let t = Div_magic_modern.derive (Int32.of_int d) in
      Word.equal (Div_magic_modern.eval t x) (fst (Word.divmod_u x t.Div_magic_modern.d)))

let test_modern_handles_11_fully () =
  let t = Div_magic_modern.derive 11l in
  Alcotest.(check bool) "m fits 32 bits" true (not t.Div_magic_modern.add_fixup);
  List.iter
    (fun x ->
      Alcotest.check word
        (Printf.sprintf "x=%ld" x)
        (fst (Word.divmod_u x 11l))
        (Div_magic_modern.eval t x))
    [ 0l; 10l; 11l; 12l; Int32.max_int; Int32.min_int; -1l ]

let test_modern_known_constants () =
  (* The compiler-folklore constants. *)
  let t3 = Div_magic_modern.derive 3l in
  Alcotest.(check int64) "m for 3" 0xAAAAAAABL t3.Div_magic_modern.m;
  Alcotest.(check int) "p for 3" 33 t3.p;
  let t7 = Div_magic_modern.derive 7l in
  Alcotest.(check bool) "7 needs fixup" true t7.Div_magic_modern.add_fixup

let suite =
  [
    ( "div:unit",
      [
        Alcotest.test_case "divU edges" `Quick test_divu_edges;
        Alcotest.test_case "divI edges" `Quick test_divi_edges;
        Alcotest.test_case "div by zero breaks" `Quick test_div_by_zero_breaks;
        Alcotest.test_case "divU ~80 cycles" `Quick test_divu_cycles_near_80;
        Alcotest.test_case "figure 6 exact" `Quick test_figure6_exact;
        Alcotest.test_case "derive rejects" `Quick test_derive_rejects;
        Alcotest.test_case "coverage boundaries" `Quick test_derived_eval_at_coverage_boundaries;
        Alcotest.test_case "divisors near 2^31" `Quick test_derive_near_2pow31;
        Alcotest.test_case "exact-power r=0 path" `Quick test_exact_power_path;
        Alcotest.test_case "unsigned plans 1..40" `Slow test_unsigned_plans_small;
        Alcotest.test_case "signed plans 1..40" `Slow test_signed_plans_small;
        Alcotest.test_case "interesting divisors" `Slow test_plans_interesting;
        Alcotest.test_case "division by 3 cost" `Quick test_paper_division_by_3_cost;
        Alcotest.test_case "signed pow2 costs" `Quick test_signed_pow2_costs;
        Alcotest.test_case "y=11 fallback" `Quick test_y11_falls_back_unsigned_only;
        Alcotest.test_case "small dispatch fast" `Quick test_small_dispatch_fast;
        Alcotest.test_case "remainder plans" `Slow test_rem_plans;
        Alcotest.test_case "rem pow2 one insn" `Quick test_rem_pow2_is_one_instruction;
        Alcotest.test_case "modern handles 11" `Quick test_modern_handles_11_fully;
        Alcotest.test_case "modern known constants" `Quick test_modern_known_constants;
      ] );
    qsuite "div:props"
      [
        prop_div_entry "divU" false false;
        prop_div_entry "divI" true false;
        prop_div_entry "remU" false true;
        prop_div_entry "remI" true true;
        prop_derived_eval_exact;
        prop_boundary_dividends;
        prop_random_divisor_plans;
        prop_small_dispatch;
        prop_rem_random;
        prop_modern_magic;
      ];
  ]
