test/test_baselines.ml: Alcotest Booth Hppa_baselines Hppa_word Int32 List QCheck Shift_sub_div Util
