(** The millicode runtime library.

    HP Precision has no multiply or divide instructions; compiled code
    reaches these operations through branch-and-link calls into a small
    resident library — the millicode. This module assembles the whole
    library built in this reproduction:

    - multiplication ladder: [mul_naive], [mul_naive_early], [mul_nibble],
      [mul_switch], [mul_final] (alias [mulI]) and the trapping [mulo]
      (alias [muloI]);
    - extended multiplication: [mulU64] and [mulI64] (the full 64-bit
      product, built from four half-word standard multiplies);
    - division: [divU], [divI], [remU], [remI], the 64/32 [divU64], and
      the small-divisor dispatchers [divU_small], [divI_small] with their
      constant-divisor routines.

    Calling convention: operands in [arg0]/[arg1], results in
    [ret0] (and [ret1] for the divide remainder), return via [bv r0(rp)]
    — or [mrp] for millicode-to-millicode calls.

    {!resolved} and {!machine} are conveniences for tests, benches and
    examples that want a ready-to-run image. *)

val source : Program.source
val resolved : unit -> Program.resolved
val machine :
  ?config:Hppa_machine.Machine.Config.t -> unit -> Hppa_machine.Machine.t
(** A fresh machine loaded with the library, executing under [config]
    (default {!Hppa_machine.Machine.Config.default}). *)

val scheduled_source : unit -> Program.source
(** The library transformed by {!Hppa_isa.Delay.schedule} for delay-slot
    machines. *)

val scheduled_machine : unit -> Hppa_machine.Machine.t
(** A fresh delay-slot machine loaded with the scheduled library — the
    closest model to the hardware HP measured. *)

val entries : string list
(** Every public entry point. *)

val mulI : string
(** The production multiply entry (the final algorithm). *)

val muloI : string
(** The trapping multiply entry. *)

val conventions : Hppa_verify.Cfg.spec list
(** The declared register interface of every entry in {!entries}, as
    checked by {!Hppa_verify}. *)

val pair_conventions : Hppa_verify.Pairs.spec list
(** The register-pair (64-bit dword) view of the W64 family's
    interface, checked by the {!Hppa_verify.Pairs} rule inside
    {!lint}. *)

val lint : ?scheduled:bool -> unit -> Hppa_verify.Findings.t list
(** Run the full static check suite ({!Hppa_verify.Driver.check}) over
    the library — [~scheduled:true] checks the delay-slot-scheduled image
    in delay-slot mode. The library is lint-clean: both calls return [[]]
    (a test pins this). *)
