(** Imperative program builder used by the code generators.

    Accumulates {!Program.item}s in order and hands out collision-free fresh
    labels. Each code generator creates one builder per routine. *)

type t

val create : ?prefix:string -> unit -> t
(** [prefix] namespaces the fresh labels, e.g. ["mulc_10"]. *)

val insn : t -> string Insn.t -> unit
val insns : t -> string Insn.t list -> unit
val label : t -> string -> unit

val fresh : t -> string -> string
(** [fresh b "loop"] returns a unique label such as ["mulc_10$loop3"]. *)

val here : t -> string
(** Create and place a fresh anonymous label at the current point. *)

val length : t -> int
(** Instructions emitted so far (labels excluded). *)

val to_source : t -> Program.source
