lib/machine/machine.mli: Hppa_word Icache Insn Program Reg Stats Trap
