(* Q16.16 fixed-point arithmetic on a machine with no multiply hardware.

   Fixed-point multiply needs the full 64-bit product ((a*b) >> 16) and
   fixed-point divide needs a 48-bit dividend ((a << 16) / b) — exactly
   the extended operations the paper leaves as future work and this
   library implements as [mulU64] / [divU64] millicode. The example
   computes a square root with Newton iterations, every arithmetic op
   running on the simulator.

   Run with:  dune exec examples/fixed_point.exe *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine

let mach = Hppa.Millicode.machine ()
let total_cycles = ref 0

let call entry args =
  match Machine.call_cycles mach entry ~args with
  | Machine.Halted, c ->
      total_cycles := !total_cycles + c;
      Machine.get mach Reg.ret0
  | (Machine.Trapped _ | Machine.Fuel_exhausted), _ -> failwith entry

(* Q16.16 multiply: the middle 32 bits of the 64-bit product. *)
let fxmul a b =
  let lo = call "mulU64" [ a; b ] in
  let hi = Machine.get mach Reg.ret1 in
  Word.logor (Word.shl hi 16) (Word.shr_u lo 16)

(* Q16.16 divide: (a << 16) / b via the 64/32 divide. *)
let fxdiv a b =
  let hi = Word.shr_u a 16 and lo = Word.shl a 16 in
  call "divU64" [ hi; lo; b ]

let of_int i = Word.shl (Word.of_int i) 16
let to_float w = Int32.to_float w /. 65536.0

(* sqrt by Newton iteration: r <- (r + a/r) / 2. *)
let fxsqrt a =
  let rec go r i =
    if i = 0 then r
    else
      let r' = Word.shr_u (Word.add r (fxdiv a r)) 1 in
      if Word.equal r' r then r else go r' (i - 1)
  in
  go (if Word.lt_u a (of_int 1) then a else Word.shr_u a 1) 20

let () =
  Format.printf "Q16.16 fixed point on the simulated Precision machine@.@.";
  let pi = 205887l (* 3.14159... in Q16.16 *) in
  let r = of_int 5 in
  let area = fxmul pi (fxmul r r) in
  Format.printf "  pi * 5^2        = %.5f   (expect %.5f)@." (to_float area)
    (3.14159274 *. 25.0);
  let inv = fxdiv (of_int 1) pi in
  Format.printf "  1 / pi          = %.5f   (expect %.5f)@." (to_float inv)
    (1.0 /. 3.14159274);
  List.iter
    (fun v ->
      let s = fxsqrt (of_int v) in
      Format.printf "  sqrt(%-4d)      = %.5f   (expect %.5f)@." v (to_float s)
        (sqrt (float_of_int v)))
    [ 2; 10; 144; 10000 ];
  Format.printf "@.total simulated cycles for all of the above: %d@."
    !total_cycles;
  Format.printf
    "(every multiply was four 16x16 standard multiplies; every divide was@.";
  Format.printf " 32 ADDC/DS divide-step pairs — no multiply/divide hardware.)@."
