lib/core/chain_stats.mli: Chain_rules Chain_search
