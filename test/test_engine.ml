(* Differential tests: the threaded engine against the reference
   interpreter. The engine must be observationally identical — outcome,
   all 32 registers, PSW C/V, nullify flag, PC, full memory, and every
   statistics counter — on seeded random programs, on every millicode
   entry point, and across fuel boundaries. Delay-slot machines and
   machines with observation hooks must stay on the reference path. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Stats = Hppa_machine.Stats
module Trap = Hppa_machine.Trap
module Icache = Hppa_machine.Icache
module Sweep = Hppa_machine.Sweep

let fuzz_mem_bytes = 4096

let outcome_str = function
  | Machine.Halted -> "halted"
  | Machine.Trapped t -> "trapped: " ^ Trap.to_string t
  | Machine.Fuel_exhausted -> "fuel exhausted"

let outcome_eq a b =
  match (a, b) with
  | Machine.Halted, Machine.Halted -> true
  | Machine.Fuel_exhausted, Machine.Fuel_exhausted -> true
  | Machine.Trapped x, Machine.Trapped y -> Trap.equal x y
  | _ -> false

(* Compare every observable of two machines that ran the same program. *)
let check_same ~ctx ~mem_words (me, oe) (mi, oi) =
  if not (outcome_eq oe oi) then
    Alcotest.failf "%s: outcome %s (engine) vs %s (interpreter)" ctx
      (outcome_str oe) (outcome_str oi);
  for i = 0 to 31 do
    let a = Machine.get me (Reg.of_int i) and b = Machine.get mi (Reg.of_int i) in
    if not (Word.equal a b) then
      Alcotest.failf "%s: r%d = %ld (engine) vs %ld (interpreter)" ctx i a b
  done;
  if Machine.carry me <> Machine.carry mi then Alcotest.failf "%s: carry" ctx;
  if Machine.v_bit me <> Machine.v_bit mi then Alcotest.failf "%s: V" ctx;
  if Machine.pc me <> Machine.pc mi then
    Alcotest.failf "%s: pc %d vs %d" ctx (Machine.pc me) (Machine.pc mi);
  let se = Machine.stats me and si = Machine.stats mi in
  if Stats.cycles se <> Stats.cycles si then
    Alcotest.failf "%s: cycles %d vs %d" ctx (Stats.cycles se) (Stats.cycles si);
  if Stats.executed se <> Stats.executed si then
    Alcotest.failf "%s: executed %d vs %d" ctx (Stats.executed se)
      (Stats.executed si);
  if Stats.nullified se <> Stats.nullified si then
    Alcotest.failf "%s: nullified %d vs %d" ctx (Stats.nullified se)
      (Stats.nullified si);
  if Stats.branches_taken se <> Stats.branches_taken si then
    Alcotest.failf "%s: taken %d vs %d" ctx (Stats.branches_taken se)
      (Stats.branches_taken si);
  if Stats.by_mnemonic se <> Stats.by_mnemonic si then
    Alcotest.failf "%s: mnemonic histogram differs" ctx;
  for w = 0 to mem_words - 1 do
    let addr = Int32.of_int (4 * w) in
    match (Machine.load_word me addr, Machine.load_word mi addr) with
    | Ok a, Ok b when Word.equal a b -> ()
    | Ok a, Ok b -> Alcotest.failf "%s: mem[%d] %ld vs %ld" ctx (4 * w) a b
    | _ -> Alcotest.failf "%s: mem[%d] unreadable" ctx (4 * w)
  done

(* ------------------------------------------------------------------ *)
(* Seeded random program generator                                     *)

let gen_insn st n_insns : string Insn.t =
  let ri () = Random.State.int st in
  let reg () = Reg.of_int (ri () 32) in
  let cond () = List.nth Cond.all (ri () (List.length Cond.all)) in
  let lbl () = Printf.sprintf "L%d" (ri () n_insns) in
  let simm bits = Int32.of_int (ri () (1 lsl bits) - (1 lsl (bits - 1))) in
  let n () = Random.State.bool st in
  match ri () 100 with
  | x when x < 28 ->
      let op, may_trap =
        match ri () 9 with
        | 0 -> (Insn.Add, true)
        | 1 -> (Insn.Addc, true)
        | 2 -> (Insn.Sub, true)
        | 3 -> (Insn.Subb, true)
        | 4 -> (Insn.Shadd (1 + ri () 3), true)
        | 5 -> (Insn.And, false)
        | 6 -> (Insn.Or, false)
        | 7 -> (Insn.Xor, false)
        | _ -> (Insn.Andcm, false)
      in
      Alu
        {
          op;
          a = reg ();
          b = reg ();
          t = reg ();
          trap_ov = (may_trap && ri () 5 = 0);
        }
  | x when x < 34 -> Ds { a = reg (); b = reg (); t = reg () }
  | x when x < 41 ->
      Addi { imm = simm 14; a = reg (); t = reg (); trap_ov = ri () 5 = 0 }
  | x when x < 45 ->
      Subi { imm = simm 11; a = reg (); t = reg (); trap_ov = ri () 5 = 0 }
  | x when x < 51 -> Comclr { cond = cond (); a = reg (); b = reg (); t = reg () }
  | x when x < 55 ->
      Comiclr { cond = cond (); imm = simm 11; a = reg (); t = reg () }
  | x when x < 61 ->
      let pos = ri () 32 in
      let len = 1 + ri () (32 - pos) in
      Extr
        {
          signed = Random.State.bool st;
          r = reg ();
          pos;
          len;
          t = reg ();
          cond = (if Random.State.bool st then Cond.Never else cond ());
        }
  | x when x < 65 ->
      let pos = ri () 32 in
      let len = 1 + ri () (32 - pos) in
      Zdep { r = reg (); pos; len; t = reg () }
  | x when x < 68 -> Shd { a = reg (); b = reg (); sa = ri () 32; t = reg () }
  | x when x < 71 ->
      Ldil { imm = Int32.shift_left (Int32.of_int (ri () 0x20_0000)) 11; t = reg () }
  | x when x < 75 -> Ldo { imm = simm 14; base = reg (); t = reg () }
  | x when x < 78 -> Ldw { disp = simm 14; base = reg (); t = reg () }
  | x when x < 81 -> Stw { r = reg (); disp = simm 14; base = reg () }
  | x when x < 83 -> Ldaddr { target = lbl (); t = reg () }
  | x when x < 88 ->
      Comb { cond = cond (); a = reg (); b = reg (); target = lbl (); n = n () }
  | x when x < 91 ->
      Comib { cond = cond (); imm = simm 5; a = reg (); target = lbl (); n = n () }
  | x when x < 94 ->
      Addib { cond = cond (); imm = simm 5; a = reg (); target = lbl (); n = n () }
  | x when x < 96 -> B { target = lbl (); n = n () }
  | 96 -> Bl { target = lbl (); t = reg (); n = n () }
  | 97 -> Blr { x = reg (); t = reg (); n = n () }
  | 98 -> Bv { x = reg (); base = reg (); n = n () }
  | _ -> if ri () 3 = 0 then Break { code = ri () 32 } else Nop

let gen_program st =
  let n = 8 + Random.State.int st 33 in
  let body =
    List.concat
      (List.init n (fun i ->
           [
             Program.Label (Printf.sprintf "L%d" i);
             Program.Insn (gen_insn st n);
           ]))
  in
  (* End on a procedure return so straight-line fall-through halts. *)
  let src = body @ [ Program.Insn (Bv { x = Reg.r0; base = Reg.rp; n = false }) ] in
  match Program.resolve src with
  | Ok p -> p
  | Error e -> Alcotest.failf "generated program does not resolve: %s" e

(* A register-value generator biased toward the constants where
   arithmetic and addressing bugs live. *)
let gen_value st =
  match Random.State.int st 8 with
  | 0 -> Int32.of_int (Random.State.int st 64)
  | 1 -> Int32.of_int (Random.State.int st fuzz_mem_bytes land lnot 3)
  | 2 -> Machine.halt_sentinel
  | 3 ->
      List.nth
        [ 0l; 1l; -1l; 2l; Int32.min_int; Int32.max_int; 0x7fffl; 0x8000l ]
        (Random.State.int st 8)
  | _ ->
      Int32.logor
        (Int32.shift_left (Int32.of_int (Random.State.int st 0x10000)) 16)
        (Int32.of_int (Random.State.int st 0x10000))

let run_differential ~delay st prog =
  let init = Array.init 32 (fun _ -> gen_value st) in
  let mk engine =
    let config = { Machine.Config.default with engine } in
    let m =
      Machine.create ~mem_bytes:fuzz_mem_bytes ~delay_slots:delay ~config prog
    in
    for i = 1 to 31 do
      Machine.set m (Reg.of_int i) init.(i)
    done;
    m
  in
  let me = mk true and mi = mk false in
  let oe = Machine.call ~fuel:2000 me "L0" ~args:[] in
  let oi = Machine.call ~fuel:2000 mi "L0" ~args:[] in
  ((me, oe), (mi, oi))

let fuzz_default () =
  let st = Random.State.make [| 0x5ee0; 1987 |] in
  for i = 1 to 1200 do
    let prog = gen_program st in
    let (me, oe), (mi, oi) = run_differential ~delay:false st prog in
    if not (Machine.used_engine me) then
      Alcotest.failf "program %d: engine path not taken" i;
    if Machine.used_engine mi then
      Alcotest.failf "program %d: disabled engine still ran" i;
    check_same
      ~ctx:(Printf.sprintf "program %d" i)
      ~mem_words:(fuzz_mem_bytes / 4) (me, oe) (mi, oi)
  done

let fuzz_delay () =
  let st = Random.State.make [| 0xde1a; 1987 |] in
  for i = 1 to 300 do
    let prog = gen_program st in
    let (me, oe), (mi, oi) = run_differential ~delay:true st prog in
    (* Delay-slot mode is outside the engine's reach: both machines must
       take the reference interpreter, engine switch notwithstanding. *)
    if Machine.used_engine me then
      Alcotest.failf "delay program %d: engine used in delay-slot mode" i;
    check_same
      ~ctx:(Printf.sprintf "delay program %d" i)
      ~mem_words:(fuzz_mem_bytes / 4) (me, oe) (mi, oi)
  done

(* ------------------------------------------------------------------ *)
(* Millicode differential                                              *)

let millicode_differential () =
  let st = Random.State.make [| 0x311; 42 |] in
  let prog = Hppa.Millicode.resolved () in
  let me = Machine.create prog in
  let mi =
    Machine.create ~config:{ Machine.Config.default with engine = false } prog
  in
  List.iter
    (fun entry ->
      for _ = 1 to 25 do
        let a = gen_value st and b = gen_value st in
        let oe = Machine.call me entry ~args:[ a; b ] in
        let oi = Machine.call mi entry ~args:[ a; b ] in
        if Machine.used_engine mi then
          Alcotest.failf "%s: disabled engine ran" entry;
        check_same
          ~ctx:(Printf.sprintf "%s(%ld, %ld)" entry a b)
          ~mem_words:0 (me, oe) (mi, oi)
      done)
    Hppa.Millicode.entries

(* The divide entries drive DS loops with ADDC shift-in; pin a dense
   operand grid on them specifically, including divide-by-zero traps. *)
let divide_loops () =
  let prog = Hppa.Millicode.resolved () in
  let me = Machine.create prog in
  let mi =
    Machine.create ~config:{ Machine.Config.default with engine = false } prog
  in
  List.iter
    (fun entry ->
      List.iter
        (fun (a, b) ->
          let oe = Machine.call me entry ~args:[ a; b ] in
          let oi = Machine.call mi entry ~args:[ a; b ] in
          check_same
            ~ctx:(Printf.sprintf "%s(%ld, %ld)" entry a b)
            ~mem_words:0 (me, oe) (mi, oi))
        [
          (0l, 3l); (1l, 3l); (100l, 7l); (-100l, 7l); (100l, -7l);
          (Int32.min_int, -1l); (Int32.max_int, 1l); (0xffff_ffffl, 2l);
          (7l, 0l); (12345678l, 127l); (-1l, Int32.min_int);
        ])
    [ "divU"; "divI"; "remU"; "remI" ]

(* ------------------------------------------------------------------ *)
(* Deterministic corner programs                                       *)

(* A COMCLR whose shadow covers a taken branch, then a loop: the
   nullified/executed split and taken-branch counts must match at every
   fuel level, including mid-block and mid-shadow exhaustion. *)
let fuel_boundary_program () =
  Program.resolve_exn
    [
      Program.Label "L0";
      Program.Insn (Ldo { imm = 5l; base = Reg.r0; t = Reg.t2 });
      Program.Insn
        (Comclr { cond = Cond.Always; a = Reg.r0; b = Reg.r0; t = Reg.r0 });
      Program.Insn (B { target = "L0"; n = false });
      Program.Label "loop";
      Program.Insn (Addi { imm = 1l; a = Reg.t3; t = Reg.t3; trap_ov = false });
      Program.Insn
        (Addib { cond = Cond.Neq; imm = -1l; a = Reg.t2; target = "loop"; n = false });
      Program.Insn
        (Comiclr { cond = Cond.Lt; imm = 0l; a = Reg.t3; t = Reg.r0 });
      Program.Insn (Break { code = 7 });
      Program.Insn (Bv { x = Reg.r0; base = Reg.rp; n = false });
    ]

let fuel_boundaries () =
  let prog = fuel_boundary_program () in
  for fuel = 0 to 40 do
    let mk engine =
      Machine.create ~config:{ Machine.Config.default with engine } prog
    in
    let me = mk true and mi = mk false in
    let oe = Machine.call ~fuel me "L0" ~args:[] in
    let oi = Machine.call ~fuel mi "L0" ~args:[] in
    check_same ~ctx:(Printf.sprintf "fuel %d" fuel) ~mem_words:0 (me, oe)
      (mi, oi)
  done

(* ------------------------------------------------------------------ *)
(* Observation hooks force the reference path                          *)

let icache_stays_reference () =
  let m = Hppa.Millicode.machine () in
  let cache = Icache.create () in
  Machine.set_icache m (Some cache);
  (match Machine.call m "mulI" ~args:[ 1234l; 567l ] with
  | Machine.Halted -> ()
  | o -> Alcotest.failf "mulI: %s" (outcome_str o));
  if Machine.used_engine m then
    Alcotest.fail "icache attached but the engine ran";
  if Icache.hits cache + Icache.misses cache = 0 then
    Alcotest.fail "icache attached but saw no fetches";
  (* Detach: the same machine must hop back onto the engine. *)
  Machine.set_icache m None;
  (match Machine.call m "mulI" ~args:[ 1234l; 567l ] with
  | Machine.Halted -> ()
  | o -> Alcotest.failf "mulI: %s" (outcome_str o));
  if not (Machine.used_engine m) then
    Alcotest.fail "icache detached but the engine did not run"

let trace_stays_reference () =
  let m = Hppa.Millicode.machine () in
  let count = ref 0 in
  Machine.set_trace m (Some (fun _ _ -> incr count));
  ignore (Machine.call m "mulI" ~args:[ 99l; 3l ]);
  if Machine.used_engine m then Alcotest.fail "trace attached but engine ran";
  if !count = 0 then Alcotest.fail "trace hook never fired"

(* ------------------------------------------------------------------ *)
(* Sweep harness                                                       *)

let sweep_map_array () =
  let seq = Array.init 100 (fun i -> (i * i) + 3) in
  List.iter
    (fun domains ->
      let par = Sweep.map_array ~domains (fun i -> (i * i) + 3) 100 in
      Alcotest.(check (array int))
        (Printf.sprintf "map_array domains=%d" domains)
        seq par)
    [ 1; 3; 4; 7 ]

let sweep_ranges_cover () =
  List.iter
    (fun (n, domains) ->
      let ranges = Sweep.map_ranges ~domains (fun ~lo ~hi -> (lo, hi)) n in
      let total = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ranges in
      Alcotest.(check int)
        (Printf.sprintf "n=%d domains=%d total" n domains)
        n total;
      (* Contiguous, in order. *)
      ignore
        (List.fold_left
           (fun expect (lo, hi) ->
             Alcotest.(check int) "contiguous" expect lo;
             Alcotest.(check bool) "nonempty or trailing" true (hi >= lo);
             hi)
           0 ranges))
    [ (10, 3); (1, 4); (7, 7); (100, 4); (3, 8) ]

let sweep_machines () =
  (* Per-domain machine contexts: the same mulI sweep on 1 and 3 domains
     must agree element by element. *)
  let xs = Array.init 24 (fun i -> Int32.of_int ((i * 7919) + 3)) in
  let run domains =
    Sweep.sweep ~domains
      ~make:(fun () -> Hppa.Millicode.machine ())
      (fun m x ->
        match Machine.call m "mulI" ~args:[ x; 12345l ] with
        | Machine.Halted -> Machine.get m Reg.ret0
        | o -> Alcotest.failf "mulI trap in sweep: %s" (outcome_str o))
      xs
  in
  Alcotest.(check (array int32)) "sweep domains 1 vs 3" (run 1) (run 3)

let lengths_table_deterministic () =
  let a = Hppa.Chain_search.lengths_table ~max_len:4 ~limit:300 () in
  let b = Hppa.Chain_search.lengths_table ~domains:3 ~max_len:4 ~limit:300 () in
  for n = 1 to 300 do
    Alcotest.(check (option int))
      (Printf.sprintf "l(%d)" n)
      (Hppa.Chain_search.length_of a n)
      (Hppa.Chain_search.length_of b n)
  done

let suite =
  [
    ( "engine.differential",
      [
        Alcotest.test_case "1200 seeded programs, default model" `Quick
          fuzz_default;
        Alcotest.test_case "300 seeded programs, delay-slot model" `Quick
          fuzz_delay;
        Alcotest.test_case "every millicode entry, random operands" `Quick
          millicode_differential;
        Alcotest.test_case "divide DS loops, edge operands" `Quick divide_loops;
        Alcotest.test_case "fuel boundaries 0..40" `Quick fuel_boundaries;
      ] );
    ( "engine.dispatch",
      [
        Alcotest.test_case "icache keeps the reference path" `Quick
          icache_stays_reference;
        Alcotest.test_case "trace keeps the reference path" `Quick
          trace_stays_reference;
      ] );
    ( "engine.sweep",
      [
        Alcotest.test_case "map_array matches sequential" `Quick sweep_map_array;
        Alcotest.test_case "ranges partition the index space" `Quick
          sweep_ranges_cover;
        Alcotest.test_case "machine sweep deterministic" `Quick sweep_machines;
        Alcotest.test_case "lengths_table deterministic across domains" `Quick
          lengths_table_deterministic;
      ] );
  ]
