lib/dist/prng.ml: Int64
