(** Restoring and non-restoring division baselines (§2).

    The "usual implementations" the paper sketches before presenting the
    divide-step design. Both divide unsigned 32-bit quantities one quotient
    bit at a time; the restoring variant may need an addition {e and} a
    subtraction per bit, the non-restoring variant exactly one add-or-sub —
    the operation counts returned alongside the results let the benches
    show the cost ladder restoring → non-restoring → DS millicode →
    constant-divisor code. *)

type result = {
  quotient : Hppa_word.Word.t;
  remainder : Hppa_word.Word.t;
  add_sub_ops : int;  (** additions + subtractions performed *)
  cycles : int;
      (** modelled single-cycle instructions: shifts, tests and the
          adds/subs *)
}

val restoring : Hppa_word.Word.t -> Hppa_word.Word.t -> result
(** Raises [Division_by_zero]. *)

val non_restoring : Hppa_word.Word.t -> Hppa_word.Word.t -> result
