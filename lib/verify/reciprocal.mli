(** The division certifier: closed-form correctness proofs for the
    constant-divisor plans of §7.

    Given the CFG of an emitted plan, the certifier walks every path with
    a symbolic dividend, recovers the [(a, b, s)] reciprocal form of any
    double-word multiply it meets, and discharges the
    Granlund/Magenheimer coverage condition [(K+1)*y >= range] together
    with a 64-bit no-wrap bound — both with exact {!Hppa_word.U128}
    arithmetic, so the proof quantifies over {e all} dividends without
    ever sampling one. Power-of-two shifts, sign-fixup epilogues,
    remainder multiply-back chains and the [MIN_INT] special cases are
    proved by the same walk through dedicated closed-form rules.

    A successful proof yields a {!Certificate.t} whose transcript lists
    the discharged obligations. A failed proof is downgraded to
    {!verdict.Refuted} only when a concrete boundary witness — the walk
    re-run with the dividend pinned — disagrees with the reference
    semantics of {!Hppa_word.Word}; otherwise the verdict stays
    {!verdict.Unknown}. *)

type claim = { op : [ `Div | `Rem ]; signed : bool; divisor : int32 }
(** What the routine under certification is supposed to compute into
    [ret0] from the dividend in [arg0]. *)

type verdict =
  | Certified of Certificate.t
  | Refuted of string
  | Unknown of string

val pp_verdict : Format.formatter -> verdict -> unit

val certify : Cfg.t -> entry:int -> claim:claim -> verdict
(** Certify the routine entered at instruction address [entry]. The
    dividend register is [arg0], the result register [ret0], per the
    millicode convention. *)
