type t = {
  entry : string;
  source : Program.source;
  millicode_calls : int;
}

let vars_of_loop ~inputs ~result ?(preheader = []) (l : Loop_ir.t) =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  List.iter add inputs;
  add l.counter;
  let stmt (Loop_ir.Assign (v, e)) =
    add v;
    List.iter add (Expr.vars e)
  in
  List.iter stmt preheader;
  List.iter stmt l.body;
  add result;
  List.rev !out

let compile32 ?entry ~small_divisor_dispatch ~inputs ~result
    ?(preheader = []) (l : Loop_ir.t) =
  if List.length inputs > 4 then raise (Lower.Unsupported "more than 4 inputs");
  let entry = Option.value entry ~default:"kernel" in
  let names = vars_of_loop ~inputs ~result ~preheader l in
  let pool = Lower.Internal.callee_saved in
  (* One register per variable, one for the loop bound; the rest are
     expression temporaries. *)
  if List.length names + 1 > List.length pool then
    raise (Lower.Unsupported "too many loop variables");
  let vars = List.mapi (fun i v -> (v, List.nth pool i)) names in
  let stop_reg = List.nth pool (List.length names) in
  let temps =
    List.filteri (fun i _ -> i > List.length names) pool
  in
  if List.length temps < 2 then raise (Lower.Unsupported "too many loop variables");
  let reg v = List.assoc v vars in
  let b = Builder.create ~prefix:entry () in
  Builder.label b entry;
  (* Bind inputs; zero everything else (matching Loop_ir.eval with an init
     that lists only the inputs plus implicit zeros). *)
  List.iteri
    (fun i v ->
      Builder.insn b
        (Emit.copy (List.nth [ Reg.arg0; Reg.arg1; Reg.arg2; Reg.arg3 ] i) (reg v)))
    inputs;
  List.iter
    (fun (v, r) ->
      if not (List.mem v inputs) then Builder.insn b (Emit.copy Reg.r0 r))
    vars;
  let st =
    Lower.Internal.make_state b ~vars ~temps ~trap_overflow:false
      ~small_divisor_dispatch
  in
  let emit_stmt (Loop_ir.Assign (v, e)) =
    let r = Lower.Internal.emit_expr st e in
    Builder.insn b (Emit.copy r (reg v));
    Lower.Internal.release st r
  in
  List.iter emit_stmt preheader;
  Builder.insns b (Emit.ldi l.start (reg l.counter));
  Builder.insns b (Emit.ldi l.stop stop_reg);
  let top = entry ^ "$top" and exit_ = entry ^ "$exit" in
  Builder.label b top;
  Builder.insn b (Emit.comb Cond.Ge (reg l.counter) stop_reg exit_);
  List.iter emit_stmt l.body;
  (* Bump the counter; a wide step needs staging through a temporary. *)
  (if l.step >= -8192l && l.step <= 8191l then
     Builder.insn b (Emit.addi l.step (reg l.counter) (reg l.counter))
   else begin
     Builder.insns b (Emit.ldi l.step Reg.t1);
     Builder.insn b (Emit.add Reg.t1 (reg l.counter) (reg l.counter))
   end);
  Builder.insn b (Emit.b top);
  Builder.label b exit_;
  Builder.insns b [ Emit.copy (reg result) Reg.ret0; Emit.ret ];
  let source =
    Program.concat (Builder.to_source b :: Lower.Internal.plans st)
  in
  { entry; source; millicode_calls = Lower.Internal.millicode_calls st }

(* W64: every loop variable holds a dword in a callee-saved pair,
   including the counter, whose high half is kept sign-extended (its
   bounds and step are single words, so loop control compares the low
   halves and each bump re-extends the sign with one SHR). *)
let compile64 ?entry ~small_divisor_dispatch ~inputs ~result
    ?(preheader = []) (l : Loop_ir.t) =
  if List.length inputs > 2 then
    raise
      (Lower.Unsupported
         (Printf.sprintf "%d inputs exceed the 2 double-word argument pairs"
            (List.length inputs)));
  let entry = Option.value entry ~default:"kernel" in
  let names = vars_of_loop ~inputs ~result ~preheader l in
  let pool = Lower.Internal.callee_saved_pairs in
  (* A pair per variable; the loop bound takes one more, and at least
     two pairs must remain as expression temporaries. *)
  if List.length names + 3 > List.length pool then
    raise
      (Lower.Unsupported
         (Printf.sprintf
            "%d double-word loop variables exceed the %d callee-saved pairs \
             (one is the bound, two are temporaries)"
            (List.length names) (List.length pool)));
  let vars = List.mapi (fun i v -> (v, List.nth pool i)) names in
  (* The bound is a single word: use the low register of the next pair. *)
  let stop_reg = snd (List.nth pool (List.length names)) in
  let temps =
    List.filteri (fun i _ -> i > List.length names) pool
  in
  let pair v = List.assoc v vars in
  let b = Builder.create ~prefix:entry () in
  Builder.label b entry;
  List.iteri
    (fun i v ->
      let sh, sl = List.nth [ (Reg.arg0, Reg.arg1); (Reg.arg2, Reg.arg3) ] i in
      let dh, dl = pair v in
      Builder.insns b [ Emit.copy sh dh; Emit.copy sl dl ])
    inputs;
  List.iter
    (fun (v, (rh, rl)) ->
      if not (List.mem v inputs) then
        Builder.insns b [ Emit.copy Reg.r0 rh; Emit.copy Reg.r0 rl ])
    vars;
  let st =
    Lower.Internal.make_state64 b ~vars ~temps ~small_divisor_dispatch
  in
  let emit_stmt (Loop_ir.Assign (v, e)) =
    let rh, rl = Lower.Internal.emit_expr64 st e in
    let dh, dl = pair v in
    Builder.insns b [ Emit.copy rh dh; Emit.copy rl dl ];
    Lower.Internal.release64 st (rh, rl)
  in
  List.iter emit_stmt preheader;
  let ch, cl = pair l.counter in
  Builder.insns b (Emit.ldi l.start cl);
  Builder.insn b (Emit.shr_s cl 31 ch);
  Builder.insns b (Emit.ldi l.stop stop_reg);
  let top = entry ^ "$top" and exit_ = entry ^ "$exit" in
  Builder.label b top;
  Builder.insn b (Emit.comb Cond.Ge cl stop_reg exit_);
  List.iter emit_stmt l.body;
  (if l.step >= -8192l && l.step <= 8191l then
     Builder.insn b (Emit.addi l.step cl cl)
   else begin
     Builder.insns b (Emit.ldi l.step Reg.t1);
     Builder.insn b (Emit.add Reg.t1 cl cl)
   end);
  Builder.insn b (Emit.shr_s cl 31 ch);
  Builder.insn b (Emit.b top);
  Builder.label b exit_;
  let rh, rl = pair result in
  Builder.insns b [ Emit.copy rh Reg.ret0; Emit.copy rl Reg.ret1; Emit.ret ];
  {
    entry;
    source = Builder.to_source b;
    millicode_calls = Lower.Internal.millicode_calls64 st;
  }

let compile ?entry ?(small_divisor_dispatch = false) ?(width = Expr.W32)
    ~inputs ~result ?preheader (l : Loop_ir.t) =
  (match Loop_ir.validate l with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Lower_loop.compile: " ^ msg));
  match width with
  | Expr.W32 ->
      compile32 ?entry ~small_divisor_dispatch ~inputs ~result ?preheader l
  | Expr.W64 ->
      compile64 ?entry ~small_divisor_dispatch ~inputs ~result ?preheader l

let compile_and_link ?entry ?small_divisor_dispatch ?width ~inputs ~result
    ?preheader l =
  let unit_ =
    compile ?entry ?small_divisor_dispatch ?width ~inputs ~result ?preheader l
  in
  Program.resolve_exn (Program.concat [ unit_.source; Millicode.source ])

let compile_reduced ?entry ?small_divisor_dispatch ?width ~inputs ~result
    (r : Strength.reduced) =
  compile ?entry ?small_divisor_dispatch ?width ~inputs ~result
    ~preheader:r.preheader r.loop
