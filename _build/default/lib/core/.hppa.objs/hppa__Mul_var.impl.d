lib/core/mul_var.ml: Builder Cond Emit Hppa_word Int32 List Printf Program Reg
