(* Public facade over the machine state ({!Cpu}) and the two execution
   engines: the per-instruction reference interpreter and the
   closure-threaded engine ({!Engine}). [run] picks the engine
   transparently whenever the requested semantics are within its reach,
   so callers — bench, chainc, hppa_run — get the fast path for free. *)

include Cpu
module Obs = Hppa_obs.Obs

module Config = struct
  type t = Cpu.config = {
    engine : bool;
    fuel : int;
    trace : (int -> int Insn.t -> unit) option;
    obs : Obs.Registry.t option;
    obs_labels : (string * string) list;
  }

  let default = Cpu.default_config
end

let config t = { t.cfg with trace = t.trace }

(* The threaded engine implements the default branch model with no
   observation hooks; everything else stays on the reference
   interpreter. [pending] is always [None] outside delay-slot mode, but
   check it anyway so a hand-stepped machine can never be mis-entered. *)
let engine_eligible t =
  t.cfg.engine && (not t.delay)
  && (match t.trace with None -> true | Some _ -> false)
  && (match t.icache with None -> true | Some _ -> false)
  && (match t.pending with None -> true | Some _ -> false)
  && t.pc >= 0
  && t.pc < Array.length t.prog.code

let run ?fuel t =
  let fuel = match fuel with Some f -> f | None -> t.cfg.fuel in
  if t.halted then Halted
  else if engine_eligible t then begin
    t.used_engine <- true;
    Obs.Counter.incr t.prof.engine_runs;
    let eng =
      match t.engine with
      | Some e ->
          Obs.Counter.incr t.prof.translate_reuses;
          e
      | None ->
          Obs.Counter.incr t.prof.translations;
          let e = Engine.make t in
          t.engine <- Some e;
          e
    in
    let outcome = eng fuel in
    (match outcome with
    | Trapped trap -> Stats.record_trap t.stats (Trap.name trap)
    | Halted | Fuel_exhausted -> ());
    outcome
  end
  else begin
    t.used_engine <- false;
    Obs.Counter.incr t.prof.interp_runs;
    Cpu.run ~fuel t
  end

type profile_counts = {
  engine_runs : int;
  interp_runs : int;
  translations : int;
  translate_reuses : int;
  block_cycles : int;
  step_cycles : int;
}

let profile t =
  {
    engine_runs = Obs.Counter.get t.prof.engine_runs;
    interp_runs = Obs.Counter.get t.prof.interp_runs;
    translations = Obs.Counter.get t.prof.translations;
    translate_reuses = Obs.Counter.get t.prof.translate_reuses;
    block_cycles = Obs.Counter.get t.prof.block_cycles;
    step_cycles = Obs.Counter.get t.prof.step_cycles;
  }

let used_engine t = t.used_engine

(* Millicode takes up to four word arguments in the arg registers; the
   128/64 divide additionally takes its divisor dword in (ret0:ret1),
   so a fifth and sixth argument land there. *)
let arg_regs = [ Reg.arg0; Reg.arg1; Reg.arg2; Reg.arg3; Reg.ret0; Reg.ret1 ]

let call ?fuel t name ~args =
  let entry =
    match Program.symbol t.prog name with
    | Some a -> a
    | None -> invalid_arg (Printf.sprintf "Machine.call: no entry point %S" name)
  in
  if List.length args > 6 then invalid_arg "Machine.call: more than 6 arguments";
  List.iteri (fun i v -> set t (List.nth arg_regs i) v) args;
  set t Reg.rp halt_sentinel;
  set t Reg.mrp halt_sentinel;
  t.halted <- false;
  t.nullify <- false;
  t.pending <- None;
  t.pc <- entry;
  run ?fuel t

let call_cycles ?fuel t name ~args =
  let before = Stats.cycles t.stats in
  let outcome = call ?fuel t name ~args in
  (outcome, Stats.cycles t.stats - before)

module Batch = Engine_batch
