(* Thread- and domain-safe metrics registry + bounded event tracer.
   See obs.mli for the contract. Hot paths (counter bump, histogram
   observe) are single atomic RMWs; the registry mutex guards only
   metric interning and snapshots. *)

module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let incr t = Atomic.incr t
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get = Atomic.get
  let reset t = Atomic.set t 0
end

module Gauge = struct
  type t = float Atomic.t

  let create () = Atomic.make 0.0
  let set t v = Atomic.set t v
  let get = Atomic.get
end

module Histogram = struct
  let buckets = 40

  type t = { counts : int Atomic.t array; sum : float Atomic.t }

  let create () =
    { counts = Array.init buckets (fun _ -> Atomic.make 0); sum = Atomic.make 0.0 }

  (* Log2 bucketing: bucket 0 holds < 1.0, bucket i (1 <= i <= buckets-2)
     holds [2^(i-1), 2^i), and the last bucket is an explicit overflow
     bucket for everything at or above 2^(buckets-2) — its upper bound is
     +Inf, so saturated percentiles report +Inf instead of a fake finite
     value. *)
  let bucket_of v =
    if v < 1.0 then 0
    else begin
      let b = ref 0 and x = ref v in
      while !x >= 1.0 && !b < buckets - 1 do
        x := !x /. 2.0;
        incr b
      done;
      !b
    end

  let rec atomic_add_float a x =
    let v = Atomic.get a in
    if not (Atomic.compare_and_set a v (v +. x)) then atomic_add_float a x

  let observe t v =
    Atomic.incr t.counts.(bucket_of v);
    atomic_add_float t.sum v

  let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts
  let sum t = Atomic.get t.sum
  let bucket_counts t = Array.map Atomic.get t.counts
  let bucket_upper b =
    if b = 0 then 1.0
    else if b >= buckets - 1 then infinity
    else Float.of_int (1 lsl b)

  let percentile t q =
    let counts = bucket_counts t in
    let total = Array.fold_left ( + ) 0 counts in
    if total = 0 then 0.0
    else begin
      let rank = Float.to_int (ceil (q /. 100.0 *. Float.of_int total)) in
      let rank = max 1 (min total rank) in
      let acc = ref 0 and b = ref 0 in
      (try
         for i = 0 to buckets - 1 do
           acc := !acc + counts.(i);
           if !acc >= rank then begin
             b := i;
             raise Exit
           end
         done
       with Exit -> ());
      bucket_upper !b
    end

  let reset t =
    Array.iter (fun c -> Atomic.set c 0) t.counts;
    Atomic.set t.sum 0.0
end

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum : float; buckets : (float * int) array }

type sample = {
  name : string;
  labels : (string * string) list;
  help : string;
  value : value;
}

module Registry = struct
  type kind =
    | Counter_m of Counter.t
    | Gauge_m of Gauge.t
    | Histogram_m of Histogram.t
    | Fn_counter_m of (unit -> int)
    | Fn_gauge_m of (unit -> float)

  type metric = {
    m_name : string;
    m_labels : (string * string) list;
    m_help : string;
    m_kind : kind;
  }

  type t = {
    lock : Mutex.t;
    index : (string, metric) Hashtbl.t;  (* key = name + rendered labels *)
  }

  let create () = { lock = Mutex.create (); index = Hashtbl.create 64 }

  let sort_labels labels =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels

  let render_labels labels =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)

  let key name labels = name ^ "{" ^ render_labels labels ^ "}"

  let kind_name = function
    | Counter_m _ | Fn_counter_m _ -> "counter"
    | Gauge_m _ | Fn_gauge_m _ -> "gauge"
    | Histogram_m _ -> "histogram"

  let with_lock t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  (* Get-or-create: returns the existing metric when the key is already
     bound (checking the kind), otherwise interns [fresh ()]. *)
  let intern t ~help ~labels name fresh =
    let labels = sort_labels labels in
    let k = key name labels in
    with_lock t (fun () ->
        match Hashtbl.find_opt t.index k with
        | Some m ->
            let f = fresh () in
            if kind_name m.m_kind <> kind_name f then
              invalid_arg
                (Printf.sprintf "Obs.Registry: %s already registered as %s"
                   k (kind_name m.m_kind));
            m.m_kind
        | None ->
            let m =
              { m_name = name; m_labels = labels; m_help = help;
                m_kind = fresh () }
            in
            Hashtbl.replace t.index k m;
            m.m_kind)

  let counter t ?(help = "") ?(labels = []) name =
    match intern t ~help ~labels name (fun () -> Counter_m (Counter.create ())) with
    | Counter_m c -> c
    | _ -> invalid_arg ("Obs.Registry.counter: kind mismatch for " ^ name)

  let gauge t ?(help = "") ?(labels = []) name =
    match intern t ~help ~labels name (fun () -> Gauge_m (Gauge.create ())) with
    | Gauge_m g -> g
    | _ -> invalid_arg ("Obs.Registry.gauge: kind mismatch for " ^ name)

  let histogram t ?(help = "") ?(labels = []) name =
    match
      intern t ~help ~labels name (fun () -> Histogram_m (Histogram.create ()))
    with
    | Histogram_m h -> h
    | _ -> invalid_arg ("Obs.Registry.histogram: kind mismatch for " ^ name)

  (* Replace-if-present registration of externally owned metrics. *)
  let register t ~help ~labels name kind =
    let labels = sort_labels labels in
    let k = key name labels in
    with_lock t (fun () ->
        Hashtbl.replace t.index k
          { m_name = name; m_labels = labels; m_help = help; m_kind = kind })

  let register_counter t ?(help = "") ?(labels = []) name c =
    register t ~help ~labels name (Counter_m c)

  let register_histogram t ?(help = "") ?(labels = []) name h =
    register t ~help ~labels name (Histogram_m h)

  let fn_counter t ?(help = "") ?(labels = []) name f =
    register t ~help ~labels name (Fn_counter_m f)

  let fn_gauge t ?(help = "") ?(labels = []) name f =
    register t ~help ~labels name (Fn_gauge_m f)

  let sample_of m =
    let value =
      match m.m_kind with
      | Counter_m c -> Counter_v (Counter.get c)
      | Fn_counter_m f -> Counter_v (f ())
      | Gauge_m g -> Gauge_v (Gauge.get g)
      | Fn_gauge_m f -> Gauge_v (f ())
      | Histogram_m h ->
          let counts = Histogram.bucket_counts h in
          let cum = ref 0 and out = ref [] in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              if c > 0 then out := (Histogram.bucket_upper i, !cum) :: !out)
            counts;
          Histogram_v
            {
              count = !cum;
              sum = Histogram.sum h;
              buckets = Array.of_list (List.rev !out);
            }
    in
    { name = m.m_name; labels = m.m_labels; help = m.m_help; value }

  let snapshot t =
    let metrics =
      with_lock t (fun () ->
          Hashtbl.fold (fun _ m acc -> m :: acc) t.index [])
    in
    let metrics =
      List.sort
        (fun a b ->
          match String.compare a.m_name b.m_name with
          | 0 ->
              String.compare (render_labels a.m_labels)
                (render_labels b.m_labels)
          | c -> c)
        metrics
    in
    List.map sample_of metrics
end

module Export = struct
  let escape_label v =
    let buf = Buffer.create (String.length v + 2) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let prom_labels = function
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
               labels)
        ^ "}"

  (* Render a float the way Prometheus clients conventionally do: integral
     values without an exponent, others with enough digits to round-trip,
     non-finite values in the exposition-format spelling. *)
  let prom_float f =
    if f = infinity then "+Inf"
    else if f = neg_infinity then "-Inf"
    else if Float.is_nan f then "NaN"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f

  let type_of = function
    | Counter_v _ -> "counter"
    | Gauge_v _ -> "gauge"
    | Histogram_v _ -> "histogram"

  let prometheus samples =
    let buf = Buffer.create 1024 in
    let last_family = ref "" in
    List.iter
      (fun s ->
        if s.name <> !last_family then begin
          last_family := s.name;
          if s.help <> "" then
            Buffer.add_string buf
              (Printf.sprintf "# HELP %s %s\n" s.name s.help);
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s %s\n" s.name (type_of s.value))
        end;
        match s.value with
        | Counter_v n ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" s.name (prom_labels s.labels) n)
        | Gauge_v g ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" s.name (prom_labels s.labels)
                 (prom_float g))
        | Histogram_v { count; sum; buckets } ->
            Array.iter
              (fun (le, cum) ->
                (* The overflow bucket's upper bound is +Inf; its count is
                   already carried by the unconditional +Inf line below. *)
                if Float.is_finite le then
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" s.name
                       (prom_labels (s.labels @ [ ("le", prom_float le) ]))
                       cum))
              buckets;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" s.name
                 (prom_labels (s.labels @ [ ("le", "+Inf") ]))
                 count);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" s.name (prom_labels s.labels)
                 (prom_float sum));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" s.name (prom_labels s.labels)
                 count))
      samples;
    Buffer.contents buf

  let json_escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* JSON has no literal for non-finite values; emit them as quoted
     Prometheus-style strings so the document stays parseable. *)
  let json_float f =
    if f = infinity then "\"+Inf\""
    else if f = neg_infinity then "\"-Inf\""
    else if Float.is_nan f then "\"NaN\""
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%g" f

  let json_labels labels =
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           labels)
    ^ "}"

  let json samples =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\"schema\":\"hppa-obs/1\",\"metrics\":[";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"%s\",\"type\":\"%s\",\"labels\":%s,"
             (json_escape s.name) (type_of s.value) (json_labels s.labels));
        (match s.value with
        | Counter_v n -> Buffer.add_string buf (Printf.sprintf "\"value\":%d" n)
        | Gauge_v g ->
            Buffer.add_string buf
              (Printf.sprintf "\"value\":%s" (json_float g))
        | Histogram_v { count; sum; buckets } ->
            Buffer.add_string buf
              (Printf.sprintf "\"count\":%d,\"sum\":%s,\"buckets\":[" count
                 (json_float sum));
            Array.iteri
              (fun i (le, cum) ->
                if i > 0 then Buffer.add_char buf ',';
                Buffer.add_string buf
                  (Printf.sprintf "[%s,%d]" (json_float le) cum))
              buckets;
            Buffer.add_char buf ']');
        Buffer.add_char buf '}')
      samples;
    Buffer.add_string buf "]}";
    Buffer.contents buf

  (* Parser for our own exposition format: enough for the scrape check in
     CI and for round-trip tests. *)
  let parse_sample_line line =
    (* name{k="v",...} value   |   name value *)
    let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
    let is_name_char c =
      (c >= 'a' && c <= 'z')
      || (c >= 'A' && c <= 'Z')
      || (c >= '0' && c <= '9')
      || c = '_' || c = ':'
    in
    let n = String.length line in
    let i = ref 0 in
    while !i < n && is_name_char line.[!i] do incr i done;
    if !i = 0 then fail "metric line must start with a name: %S" line
    else begin
      let name = String.sub line 0 !i in
      let labels = ref [] in
      let ok = ref (Ok ()) in
      (if !i < n && line.[!i] = '{' then begin
         incr i;
         let stop = ref false in
         while (not !stop) && Result.is_ok !ok do
           if !i >= n then ok := fail "unterminated labels: %S" line
           else if line.[!i] = '}' then begin
             incr i;
             stop := true
           end
           else begin
             let ls = !i in
             while !i < n && line.[!i] <> '=' do incr i done;
             if !i >= n then ok := fail "label without '=': %S" line
             else begin
               let lname = String.sub line ls (!i - ls) in
               incr i;
               if !i >= n || line.[!i] <> '"' then
                 ok := fail "label value must be quoted: %S" line
               else begin
                 incr i;
                 let buf = Buffer.create 16 in
                 let vstop = ref false in
                 while (not !vstop) && Result.is_ok !ok do
                   if !i >= n then ok := fail "unterminated label value: %S" line
                   else
                     match line.[!i] with
                     | '"' -> incr i; vstop := true
                     | '\\' when !i + 1 < n ->
                         let c = line.[!i + 1] in
                         Buffer.add_char buf
                           (match c with 'n' -> '\n' | c -> c);
                         i := !i + 2
                     | c -> Buffer.add_char buf c; incr i
                 done;
                 if Result.is_ok !ok then begin
                   labels := (lname, Buffer.contents buf) :: !labels;
                   if !i < n && line.[!i] = ',' then incr i
                 end
               end
             end
           end
         done
       end);
      match !ok with
      | Error _ as e -> e
      | Ok () ->
          let rest = String.trim (String.sub line !i (n - !i)) in
          let value =
            match rest with
            | "+Inf" -> Some infinity
            | "-Inf" -> Some neg_infinity
            | "NaN" -> Some nan
            | r -> float_of_string_opt r
          in
          (match value with
          | None -> fail "bad sample value %S in %S" rest line
          | Some v -> Ok (name, List.rev !labels, v))
    end

  let parse_prometheus text =
    let lines = String.split_on_char '\n' text in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
          let line = String.trim line in
          if line = "" then go acc rest
          else if String.length line > 0 && line.[0] = '#' then go acc rest
          else
            match parse_sample_line line with
            | Ok s -> go (s :: acc) rest
            | Error _ as e -> e)
    in
    go [] lines

  let find samples name =
    List.find_map
      (fun (n, _, v) -> if String.equal n name then Some v else None)
      samples
end

module Trace = struct
  type field = Int of int | Float of float | Str of string | Bool of bool

  type event = { seq : int; name : string; fields : (string * field) list }

  type t = {
    lock : Mutex.t;
    ring : event option array;
    capacity : int;
    mutable next_seq : int;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Obs.Trace.create: capacity must be > 0";
    {
      lock = Mutex.create ();
      ring = Array.make capacity None;
      capacity;
      next_seq = 0;
    }

  let emit t name fields =
    Mutex.lock t.lock;
    let seq = t.next_seq in
    t.ring.(seq mod t.capacity) <- Some { seq; name; fields };
    t.next_seq <- seq + 1;
    Mutex.unlock t.lock

  let emitted t =
    Mutex.lock t.lock;
    let n = t.next_seq in
    Mutex.unlock t.lock;
    n

  let dropped t = max 0 (emitted t - t.capacity)

  let events t =
    Mutex.lock t.lock;
    let n = t.next_seq in
    let first = max 0 (n - t.capacity) in
    let out = ref [] in
    for seq = n - 1 downto first do
      match t.ring.(seq mod t.capacity) with
      | Some e -> out := e :: !out
      | None -> ()
    done;
    Mutex.unlock t.lock;
    !out

  let field_json = function
    | Int n -> string_of_int n
    | Float f -> Export.json_float f
    | Str s -> "\"" ^ Export.json_escape s ^ "\""
    | Bool b -> string_of_bool b

  let event_json e =
    let buf = Buffer.create 64 in
    Buffer.add_string buf
      (Printf.sprintf "{\"seq\":%d,\"ev\":\"%s\"" e.seq
         (Export.json_escape e.name));
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf ",\"%s\":%s" (Export.json_escape k) (field_json v)))
      e.fields;
    Buffer.add_char buf '}';
    Buffer.contents buf

  let to_jsonl t =
    String.concat "" (List.map (fun e -> event_json e ^ "\n") (events t))

  let write_jsonl t oc = output_string oc (to_jsonl t)
end
