type kind =
  | Linear_mul of int32
  | Reciprocal_div of { divisor : int32; signed : bool; rem : bool }
  | Divide_step of { entry : string; signed : bool }
  | Dispatch of { entry : string; divisors : int * int }
  | Body_equiv of { entry : string; insns : int }

type t = { kind : kind; transcript : string list; digest : string }

let kind_label = function
  | Linear_mul _ -> "linear_mul"
  | Reciprocal_div _ -> "reciprocal_div"
  | Divide_step _ -> "divide_step"
  | Dispatch _ -> "dispatch"
  | Body_equiv _ -> "body_equiv"

let describe = function
  | Linear_mul m -> Printf.sprintf "linear_mul multiplier=%ld" m
  | Reciprocal_div { divisor; signed; rem } ->
      Printf.sprintf "reciprocal_div divisor=%ld signed=%b rem=%b" divisor
        signed rem
  | Divide_step { entry; signed } ->
      Printf.sprintf "divide_step entry=%s signed=%b" entry signed
  | Dispatch { entry; divisors = lo, hi } ->
      Printf.sprintf "dispatch entry=%s divisors=%d..%d" entry lo hi
  | Body_equiv { entry; insns } ->
      Printf.sprintf "body_equiv entry=%s insns=%d" entry insns

let v kind transcript =
  let digest =
    Digest.to_hex
      (Digest.string (String.concat "\n" (describe kind :: transcript)))
  in
  { kind; transcript; digest }

let pp ppf t =
  Format.fprintf ppf "@[<v>certificate %s (%s)" (describe t.kind) t.digest;
  List.iter (fun line -> Format.fprintf ppf "@,  %s" line) t.transcript;
  Format.fprintf ppf "@]"
