(* Tests for the ISA layer: registers, conditions, assembler, binary codec
   and program resolution. *)

module Word = Hppa_word.Word
open Util

(* ------------------------------------------------------------------ *)
(* Registers and conditions                                            *)

let test_reg_names () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Reg.name r ^ " roundtrips") true
        (match Reg.of_name (Reg.name r) with
        | Some r' -> Reg.equal r r'
        | None -> false))
    Reg.all;
  Alcotest.(check bool) "alias rp" true (Reg.of_name "rp" = Some Reg.rp);
  Alcotest.(check bool) "alias arg0 = r26" true (Reg.of_name "arg0" = Some (Reg.of_int 26));
  Alcotest.(check bool) "bad name" true (Reg.of_name "r32" = None);
  Alcotest.(check bool) "bad name 2" true (Reg.of_name "x7" = None)

let test_reg_bounds () =
  Alcotest.check_raises "of_int 32" (Invalid_argument "Reg.of_int: register out of range")
    (fun () -> ignore (Reg.of_int 32));
  Alcotest.check_raises "of_int -1" (Invalid_argument "Reg.of_int: register out of range")
    (fun () -> ignore (Reg.of_int (-1)))

let test_cond_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Cond.to_string c ^ " roundtrips") true
        (Cond.of_string (Cond.to_string c) = Some c))
    Cond.all

let test_cond_eval () =
  let t name c a b expect =
    Alcotest.(check bool) name expect (Cond.eval c a b)
  in
  t "eq" Cond.Eq 5l 5l true;
  t "signed lt" Cond.Lt (-1l) 0l true;
  t "unsigned lt: -1 is huge" Cond.Ult (-1l) 0l false;
  t "unsigned lt" Cond.Ult 0l (-1l) true;
  t "odd" Cond.Odd 7l 0l true;
  t "odd of difference" Cond.Odd 7l 2l true;
  t "even" Cond.Even 6l 0l true;
  t "never" Cond.Never 1l 1l false;
  t "always" Cond.Always 1l 2l true

let prop_cond_negate =
  QCheck.Test.make ~name:"negate complements eval" ~count:1000
    (QCheck.triple (QCheck.oneofl Cond.all) arb_word arb_word)
    (fun (c, a, b) -> Cond.eval (Cond.negate c) a b = not (Cond.eval c a b))

(* ------------------------------------------------------------------ *)
(* Random instruction generator (valid instructions only)              *)

let gen_reg = QCheck.Gen.map Reg.of_int (QCheck.Gen.int_bound 31)
let gen_cond = QCheck.Gen.oneofl Cond.all

let gen_imm bits =
  QCheck.Gen.map
    (fun i -> Int32.of_int i)
    (QCheck.Gen.int_range (-(1 lsl (bits - 1))) ((1 lsl (bits - 1)) - 1))

let gen_field =
  QCheck.Gen.(
    int_range 0 31 >>= fun pos ->
    int_range 1 (32 - pos) >>= fun len -> return (pos, len))

let gen_insn : string Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let lbl = oneofl [ "alpha"; "beta"; "gamma" ] in
  let alu_op =
    oneofl
      [ Insn.Add; Insn.Addc; Insn.Sub; Insn.Subb; Insn.Shadd 1; Insn.Shadd 2;
        Insn.Shadd 3; Insn.And; Insn.Or; Insn.Xor; Insn.Andcm ]
  in
  frequency
    [
      ( 4,
        map2
          (fun (op, trap_ov) (a, b, t) -> Insn.Alu { op; a; b; t; trap_ov })
          (pair alu_op bool)
          (triple gen_reg gen_reg gen_reg) );
      (1, map (fun (a, b, t) -> Insn.Ds { a; b; t }) (triple gen_reg gen_reg gen_reg));
      ( 2,
        map2
          (fun (imm, ov) (a, t) -> Insn.Addi { imm; a; t; trap_ov = ov })
          (pair (gen_imm 14) bool) (pair gen_reg gen_reg) );
      ( 1,
        map2
          (fun (imm, ov) (a, t) -> Insn.Subi { imm; a; t; trap_ov = ov })
          (pair (gen_imm 11) bool) (pair gen_reg gen_reg) );
      ( 1,
        map2
          (fun cond (a, b, t) -> Insn.Comclr { cond; a; b; t })
          gen_cond (triple gen_reg gen_reg gen_reg) );
      ( 1,
        map3
          (fun cond imm (a, t) -> Insn.Comiclr { cond; imm; a; t })
          gen_cond (gen_imm 11) (pair gen_reg gen_reg) );
      ( 2,
        map3
          (fun (signed, cond) (pos, len) (r, t) ->
            Insn.Extr { signed; r; pos; len; t; cond })
          (pair bool gen_cond) gen_field (pair gen_reg gen_reg) );
      ( 1,
        map2
          (fun (pos, len) (r, t) -> Insn.Zdep { r; pos; len; t })
          gen_field (pair gen_reg gen_reg) );
      ( 1,
        map2
          (fun sa (a, b, t) -> Insn.Shd { a; b; sa; t })
          (int_range 0 31) (triple gen_reg gen_reg gen_reg) );
      ( 1,
        map2
          (fun imm t -> Insn.Ldil { imm = Int32.shift_left imm 11; t })
          (gen_imm 21) gen_reg );
      ( 1,
        map2
          (fun imm (base, t) -> Insn.Ldo { imm; base; t })
          (gen_imm 14) (pair gen_reg gen_reg) );
      ( 1,
        map2
          (fun disp (base, t) -> Insn.Ldw { disp; base; t })
          (gen_imm 14) (pair gen_reg gen_reg) );
      ( 1,
        map2
          (fun disp (base, r) -> Insn.Stw { r; disp; base })
          (gen_imm 14) (pair gen_reg gen_reg) );
      (1, map2 (fun target t -> Insn.Ldaddr { target; t }) lbl gen_reg);
      ( 2,
        map3
          (fun (cond, n) (a, b) target -> Insn.Comb { cond; a; b; target; n })
          (pair gen_cond bool) (pair gen_reg gen_reg) lbl );
      ( 1,
        map3
          (fun (cond, n) (imm, a) target -> Insn.Comib { cond; imm; a; target; n })
          (pair gen_cond bool) (pair (gen_imm 5) gen_reg) lbl );
      ( 1,
        map3
          (fun (cond, n) (imm, a) target -> Insn.Addib { cond; imm; a; target; n })
          (pair gen_cond bool) (pair (gen_imm 5) gen_reg) lbl );
      (1, map2 (fun target n -> Insn.B { target; n }) lbl bool);
      (1, map3 (fun target t n -> Insn.Bl { target; t; n }) lbl gen_reg bool);
      (1, map3 (fun x t n -> Insn.Blr { x; t; n }) gen_reg gen_reg bool);
      (1, map3 (fun x base n -> Insn.Bv { x; base; n }) gen_reg gen_reg bool);
      (1, map (fun code -> Insn.Break { code }) (int_bound 31));
      (1, return Insn.Nop);
    ]

let arb_insn =
  QCheck.make
    ~print:(fun i -> Format.asprintf "%a" (Insn.pp Format.pp_print_string) i)
    gen_insn

(* Wrap a random instruction list into a resolvable program: labels first
   so every symbolic target exists. *)
let wrap insns =
  Program.Label "alpha" :: Program.Label "beta" :: Program.Label "gamma"
  :: List.map (fun i -> Program.Insn i) insns

let prop_asm_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:500
    (QCheck.list_of_size (QCheck.Gen.int_range 1 20) arb_insn)
    (fun insns ->
      let src = wrap insns in
      let text = Asm.print src in
      match Asm.parse text with
      | Error msg -> QCheck.Test.fail_reportf "reparse failed: %s\n%s" msg text
      | Ok src' -> (
          (* Compare resolved images (the parser may expand pseudos). *)
          match (Program.resolve src, Program.resolve src') with
          | Ok p, Ok p' ->
              Array.length p.code = Array.length p'.code
              && Array.for_all2 (Insn.equal Int.equal) p.code p'.code
          | _, _ -> false))

let prop_encode_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:500
    (QCheck.list_of_size (QCheck.Gen.int_range 1 20) arb_insn)
    (fun insns ->
      match Program.resolve (wrap insns) with
      | Error _ -> false
      | Ok p -> (
          match Encode.encode_program p with
          | Error msg -> QCheck.Test.fail_reportf "encode failed: %s" msg
          | Ok words -> (
              match Encode.decode_program words with
              | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg
              | Ok insns' -> Array.for_all2 (Insn.equal Int.equal) p.code insns')))

(* ------------------------------------------------------------------ *)
(* Hand-written assembler cases                                        *)

let test_parse_basic () =
  let src =
    Asm.parse_exn
      {|
start:  add r1, r2, r3          ; comment
        sh2add,o arg0, ret0, ret0
        comb,<< r5, r6, start
        ldo 42(r0), r7
        ldi 0x12345678, r8      # expands to ldil + ldo
        bv r0(rp)
|}
  in
  let p = Program.resolve_exn src in
  Alcotest.(check int) "ldi expanded" 7 (Program.length p);
  Alcotest.(check bool) "start at 0" true (Program.symbol p "start" = Some 0)

let test_parse_errors () =
  let bad text =
    match Asm.parse text with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unknown mnemonic" true (bad "frobnicate r1, r2");
  Alcotest.(check bool) "bad register" true (bad "add r1, r99, r2");
  Alcotest.(check bool) "missing cond" true (bad "comb r1, r2, somewhere");
  Alcotest.(check bool) "bad operand count" true (bad "add r1, r2");
  Alcotest.(check bool) "unknown modifier" true (bad "add,q r1, r2, r3")

(* Every parse error names the 1-based source line; operand-shape errors
   also quote the offending token. *)
let test_parse_error_messages () =
  let error_of text =
    match Asm.parse text with
    | Ok _ -> Alcotest.failf "%S unexpectedly parsed" text
    | Error msg -> msg
  in
  let check_contains text needle =
    let msg = error_of text in
    let n = String.length needle and h = String.length msg in
    let rec go i =
      i + n <= h && (String.sub msg i n = needle || go (i + 1))
    in
    if not (go 0) then
      Alcotest.failf "error for %S is %S; expected it to contain %S" text msg
        needle
  in
  (* line numbers are 1-based and count blank/comment lines *)
  check_contains "add r1, 42, r3" "line 1:";
  check_contains "nop\n; fine\nadd r1, 42, r3" "line 3:";
  (* the offending token is quoted *)
  check_contains "add r1, 42, r3" "expected a register, got \"42\"";
  check_contains "addi r7, r1, r2" "expected an immediate, got \"r7\"";
  check_contains "b 123" "expected a label, got \"123\"";
  check_contains "stw 5(r1), 0(r2)" "expected a register, got \"5(r1)\""

let test_parse_error_messages_ok_cases () =
  (* Messages stay actionable for non-operand failures too. *)
  let error_of text =
    match Asm.parse text with
    | Ok _ -> Alcotest.failf "%S unexpectedly parsed" text
    | Error msg -> msg
  in
  let msg = error_of "nop\nfrobnicate r1, r2" in
  Alcotest.(check bool) "names line 2" true
    (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")

let test_resolve_errors () =
  let dup = [ Program.Label "a"; Program.Label "a" ] in
  (match Program.resolve dup with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate label accepted");
  let undef = [ Program.Insn (Emit.b "nowhere") ] in
  (match Program.resolve undef with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undefined target accepted");
  let bad_imm = [ Program.Insn (Emit.addi 100000l Reg.r0 Reg.r0) ] in
  match Program.resolve bad_imm with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range immediate accepted"

let test_validate_ranges () =
  let bad i =
    match Insn.validate i with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "comib imm 16" true
    (bad (Emit.comib Cond.Eq 16l Reg.r0 "x"));
  Alcotest.(check bool) "comib imm -17" true
    (bad (Emit.comib Cond.Eq (-17l) Reg.r0 "x"));
  Alcotest.(check bool) "comib imm 15 ok" false
    (bad (Emit.comib Cond.Eq 15l Reg.r0 "x"));
  Alcotest.(check bool) "ldil low bits" true
    (bad (Emit.ldil 0x1234l Reg.r0));
  Alcotest.(check bool) "subi 11-bit" true (bad (Emit.subi 1024l Reg.r0 Reg.r0))

let test_branch_displacement_limit () =
  (* A conditional branch over > 2^11 instructions must fail to encode. *)
  let far =
    Program.Label "top" :: Program.Insn (Emit.comb Cond.Eq Reg.r0 Reg.r0 "bottom")
    :: (List.init 3000 (fun _ -> Program.Insn Emit.nop)
       @ [ Program.Label "bottom"; Program.Insn Emit.nop ])
  in
  let p = Program.resolve_exn far in
  match Encode.encode_program p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over-range displacement encoded"

(* Decoding arbitrary words either errors or yields a re-encodable
   instruction; it never crashes. *)
let prop_decode_total =
  QCheck.Test.make ~name:"decode is total" ~count:2000 arb_word (fun w ->
      match Encode.decode ~addr:100 w with
      | Error _ -> true
      | Ok insn -> (
          match Encode.encode ~addr:100 insn with
          | Ok _ -> true
          | Error _ -> false))

(* The full millicode library (~1500 instructions, every branch form)
   round-trips through the binary codec. *)
let test_millicode_encodes () =
  let prog = Hppa.Millicode.resolved () in
  match Encode.encode_program prog with
  | Error msg -> Alcotest.failf "millicode failed to encode: %s" msg
  | Ok words -> (
      match Encode.decode_program words with
      | Error msg -> Alcotest.failf "millicode failed to decode: %s" msg
      | Ok insns ->
          Alcotest.(check bool) "image identical" true
            (Array.for_all2 (Insn.equal Int.equal) prog.code insns))

let prop_image_roundtrip =
  QCheck.Test.make ~name:"binary image roundtrip" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 20) arb_insn)
    (fun insns ->
      match Program.resolve (wrap insns) with
      | Error _ -> false
      | Ok p -> (
          match Image.to_bytes p with
          | Error _ -> QCheck.assume_fail ()
          | Ok data -> (
              match Image.of_bytes data with
              | Error msg -> QCheck.Test.fail_reportf "of_bytes: %s" msg
              | Ok insns' -> Array.for_all2 (Insn.equal Int.equal) p.code insns')))

let test_image_rejects_garbage () =
  (match Image.of_bytes (Bytes.of_string "not an image") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted");
  let p = Program.resolve_exn [ Program.Insn Emit.nop ] in
  match Image.to_bytes p with
  | Error e -> Alcotest.failf "to_bytes: %s" e
  | Ok data -> (
      match Image.of_bytes (Bytes.sub data 0 (Bytes.length data - 1)) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated image accepted")

let test_asm_syntax_extras () =
  (* Multiple labels, label-only lines, case-insensitive mnemonics, hex
     immediates. *)
  let src =
    Asm.parse_exn
      {|
a: b: c: ADD r1, r2, r3
d:
   LDO 0x10(r0), r4
   comib,= -0x4, r5, a
|}
  in
  let p = Program.resolve_exn src in
  Alcotest.(check int) "three labels at 0" 0 (Program.symbol_exn p "c");
  Alcotest.(check int) "d at 1" 1 (Program.symbol_exn p "d");
  Alcotest.(check int) "length" 3 (Program.length p)

let suite =
  [
    ( "isa:unit",
      [
        Alcotest.test_case "register names" `Quick test_reg_names;
        Alcotest.test_case "register bounds" `Quick test_reg_bounds;
        Alcotest.test_case "cond roundtrip" `Quick test_cond_roundtrip;
        Alcotest.test_case "cond eval" `Quick test_cond_eval;
        Alcotest.test_case "parse basic" `Quick test_parse_basic;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "parse error messages" `Quick
          test_parse_error_messages;
        Alcotest.test_case "parse error lines" `Quick
          test_parse_error_messages_ok_cases;
        Alcotest.test_case "resolve errors" `Quick test_resolve_errors;
        Alcotest.test_case "validate ranges" `Quick test_validate_ranges;
        Alcotest.test_case "branch displacement" `Quick test_branch_displacement_limit;
        Alcotest.test_case "millicode encodes" `Quick test_millicode_encodes;
        Alcotest.test_case "asm syntax extras" `Quick test_asm_syntax_extras;
        Alcotest.test_case "image rejects garbage" `Quick test_image_rejects_garbage;
      ] );
    qsuite "isa:props"
      [
        prop_cond_negate; prop_asm_roundtrip; prop_encode_roundtrip;
        prop_decode_total; prop_image_roundtrip;
      ];
  ]
