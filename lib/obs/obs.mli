(** Unified observability: a thread- and domain-safe metrics registry plus
    a low-overhead structured event tracer.

    This is the one vocabulary every layer of the system counts in. The
    machine's per-opcode dynamic statistics ([Hppa_machine.Stats]), the
    server's request metrics ([Hppa_server.Metrics]), the chain search's
    progress counters and the bench harness all publish into a {!Registry}
    and are exported through the same two serializers: Prometheus text
    exposition format ({!Export.prometheus}) and a deterministic JSON shape
    ({!Export.json}).

    Design constraints, in order:

    - {b correctness under parallelism}: counters and histogram buckets are
      [Atomic.t]; concurrent increments from any mix of domains and threads
      lose nothing. Registry mutation (interning a new metric) takes a
      mutex; the hot path (bumping an already-interned counter) does not.
    - {b determinism}: {!Registry.snapshot} orders metrics by name, then by
      rendered labels, so exports are byte-stable for a given set of
      recorded values regardless of registration order or worker count.
    - {b overhead}: a counter bump is one [Atomic.fetch_and_add]; an
      un-exercised registry costs nothing on the simulator's hot path. The
      tracer is bounded (ring buffer) and opt-in. *)

(** Monotonic integer counter. Exact under concurrent increment. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

(** Instantaneous float value, last write wins. *)
module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val get : t -> float
end

(** Log2-bucketed histogram with p50/p99 estimation.

    Bucket [0] holds observations [< 1.0]; bucket [i > 0] holds
    [[2^(i-1), 2^i)]. There are {!buckets} buckets; the last is an
    explicit overflow bucket covering [[2^(buckets-2), +Inf)] with
    {!bucket_upper} = [infinity]. Percentiles report the upper bound of
    the bucket containing the requested rank — an overestimate of at
    most 2x for in-range observations, and honestly [infinity] when the
    rank falls in the overflow bucket (rather than a fake finite value).
    This keeps recording allocation-free and latency monitoring
    truthful at the tail. *)
module Histogram : sig
  type t

  val buckets : int
  (** Number of log2 buckets (40), overflow bucket included. *)

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val bucket_counts : t -> int array
  val bucket_upper : int -> float
  (** Upper bound of bucket [i]: [1.0] for bucket 0, [infinity] for the
      overflow bucket [buckets - 1], else [2.0 ** i]. *)

  val percentile : t -> float -> float
  (** [percentile h q] for [q] in [0..100]. [0.0] when empty;
      [infinity] when the rank lands in the overflow bucket. *)

  val reset : t -> unit
end

(** A point-in-time value of one registered metric. *)
type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum : float; buckets : (float * int) array }
      (** [buckets] are (upper_bound, cumulative_count) pairs for every
          non-empty bucket, in increasing bound order. *)

type sample = {
  name : string;
  labels : (string * string) list;  (** sorted by label name *)
  help : string;
  value : value;
}

(** Named collection of metrics. Get-or-create accessors intern by
    (name, labels); asking for an existing metric with a different kind
    raises [Invalid_argument]. *)
module Registry : sig
  type t

  val create : unit -> t

  val counter :
    t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t

  val gauge :
    t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

  val histogram :
    t ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    Histogram.t

  val fn_counter :
    t ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    (unit -> int) ->
    unit
  (** Register a counter whose value is sampled by calling the function at
      snapshot time (e.g. cache hits owned by another module). *)

  val fn_gauge :
    t ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    (unit -> float) ->
    unit

  val register_counter :
    t ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    Counter.t ->
    unit
  (** Attach an externally created counter. If the (name, labels) key is
      already bound, the new registration replaces it (last wins) — callers
      that build successive machines against one registry observe the most
      recent one. *)

  val register_histogram :
    t ->
    ?help:string ->
    ?labels:(string * string) list ->
    string ->
    Histogram.t ->
    unit

  val snapshot : t -> sample list
  (** Deterministic: sorted by (name, rendered labels); fn-backed metrics
      are sampled at this moment. *)
end

(** Serializers over {!Registry.snapshot}. *)
module Export : sig
  val prometheus : sample list -> string
  (** Prometheus text exposition format. [# HELP]/[# TYPE] emitted once
      per metric family; histograms expand to [_bucket{le="..."}] series
      (cumulative, non-empty finite buckets plus exactly one [+Inf] line
      that also carries the overflow bucket), [_sum] and [_count]. *)

  val json : sample list -> string
  (** One-line JSON: [{"schema":"hppa-obs/1","metrics":[...]}] with
      metrics in snapshot order. Non-finite values (the overflow
      bucket's bound, a saturated percentile) are emitted as the quoted
      strings ["+Inf"], ["-Inf"], ["NaN"] so the document stays valid
      JSON. *)

  val parse_prometheus :
    string -> ((string * (string * string) list * float) list, string) result
  (** Strict-enough parser for our own exposition output (used by the
      [hppa-serve metrics] scrape check and tests): returns every sample
      line as (name, labels, value); accepts [#] comment lines and a
      trailing [# EOF]. *)

  val find :
    (string * (string * string) list * float) list ->
    string ->
    float option
  (** First sample with the given metric name, ignoring labels. *)
end

(** Bounded structured event tracer. [emit] appends to a ring buffer of
    the most recent [capacity] events; older events are dropped (counted,
    never blocking). Thread- and domain-safe; intended for opt-in tracing
    so a mutex per event is acceptable. *)
module Trace : sig
  type field = Int of int | Float of float | Str of string | Bool of bool

  type event = { seq : int; name : string; fields : (string * field) list }

  type t

  val create : capacity:int -> t
  (** [capacity] must be positive. *)

  val emit : t -> string -> (string * field) list -> unit
  val emitted : t -> int
  (** Total events ever emitted. *)

  val dropped : t -> int
  (** Events overwritten by ring wrap-around. *)

  val events : t -> event list
  (** Retained events, oldest first. *)

  val to_jsonl : t -> string
  (** One JSON object per line: [{"seq":N,"ev":"name",...fields}]. *)

  val write_jsonl : t -> out_channel -> unit
end
