let threshold = 20

(* Dispatcher: bounds-test the divisor, then vector through a table of
   two-instruction slots branching to the constant-divisor routines. *)
let dispatcher ~entry ~slot_prefix ~general =
  let b = Builder.create ~prefix:entry () in
  Builder.label b entry;
  Builder.insns b
    [
      Emit.ldo (Int32.of_int threshold) Reg.r0 Reg.t1;
      Emit.comb Cond.Uge Reg.arg1 Reg.t1 general;
      Emit.blr Reg.arg1 Reg.r0;
    ];
  (* Slot 0: divisor zero — the divide-by-zero break. *)
  Builder.insns b
    [ Emit.break Hppa_machine.Trap.divide_by_zero_code; Emit.nop ];
  for y = 1 to threshold - 1 do
    Builder.insns b
      [ Emit.b (Printf.sprintf "%s%d" slot_prefix y); Emit.nop ]
  done;
  Builder.to_source b

let source =
  let plans_u =
    List.init (threshold - 1) (fun i ->
        (Div_const.plan_unsigned (Int32.of_int (i + 1))).source)
  in
  let plans_i =
    List.init (threshold - 1) (fun i ->
        (Div_const.plan_signed (Int32.of_int (i + 1))).source)
  in
  Program.concat
    (dispatcher ~entry:"divU_small" ~slot_prefix:"divu_c" ~general:"divU"
    :: dispatcher ~entry:"divI_small" ~slot_prefix:"divi_c" ~general:"divI"
    :: (plans_u @ plans_i))

let entries = [ "divU_small"; "divI_small" ]
