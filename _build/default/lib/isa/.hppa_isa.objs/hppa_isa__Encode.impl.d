lib/isa/encode.ml: Array Cond Insn Int32 List Printf Program Reg Result
