lib/isa/emit.ml: Cond Insn Int32 Reg
