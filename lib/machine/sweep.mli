(** Domain-parallel sweep harness.

    Shards an index range over OCaml 5 domains in contiguous chunks and
    joins the per-chunk results {e in chunk order}, so the merged output
    is identical for every domain count whenever the per-index work is
    deterministic — the determinism guarantee the experiment harness
    relies on (see README).

    Workers must not share mutable state: simulate on a per-domain
    {!Machine.t} built by the [make] thunk of {!sweep}. *)

val default_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count ())]. *)

val map_ranges : ?domains:int -> (lo:int -> hi:int -> 'a) -> int -> 'a list
(** [map_ranges f n] splits [0..n-1] into at most [domains] (default
    {!default_domains}) contiguous chunks [f ~lo ~hi] (half-open), runs
    the first chunk on the calling domain and the rest on spawned
    domains, and returns the results in chunk order. [f] must be safe to
    run concurrently against itself. *)

val map_array : ?domains:int -> (int -> 'a) -> int -> 'a array
(** [map_array f n] is [[| f 0; ...; f (n-1) |]] computed in parallel
    chunks; equal to the sequential array for deterministic [f]. *)

val sweep : ?domains:int -> make:(unit -> 'ctx) -> ('ctx -> 'a -> 'b) -> 'a array -> 'b array
(** [sweep ~make f xs] maps [f ctx] over [xs] in parallel chunks, where
    each worker domain gets a private context from [make ()] — e.g. a
    fresh millicode machine for an operand sweep. *)
