(** The simulated HP Precision machine.

    State: 32 general registers with [r0] hardwired to zero, the PSW carry
    bit [C], the divide-step state bit [V], the [COMCLR] nullify flag, a PC
    in instruction units, and a small byte-addressed word-aligned memory.

    Cost model (see DESIGN.md): every instruction costs one cycle, nullified
    ones included; dynamic instruction count equals cycles.

    PSW update rules: [ADD]/[ADDC]/[SUB]/[SUBB]/[ADDI]/[SUBI], the
    [SHxADD] family (carry of the 32-bit addition of the shifted operand)
    and [DS] write the carry bit ([C]); plain [ADD]/[SUB]/[ADDI]/[SUBI]
    also clear [V], so
    [add r0, r0, r0] is the canonical divide-loop initialiser. Shift-and-add,
    logical, shift and branch instructions leave both bits alone ([ADDIB]
    included — a documented simplification). [DS] alone writes [V].

    The divide step [DS a, b, t] computes one bit of non-restoring division.
    The 33-bit partial remainder R is kept as [u32(a) - V*2^32]; the step is

    {v R2 = 2*R + C                  C = incoming dividend bit
      R' = R2 - u32(b)   if V = 0   (remainder was non-negative)
         = R2 + u32(b)   if V = 1
      t := low 32 bits of R';  V := R' < 0;  C := R' >= 0 v}

    so that pairing [ADDC l, l, l] (shift the dividend/quotient window) with
    [DS h, divisor, h], repeated 32 times, divides a 64-bit dividend exactly
    as §4 of the paper describes. *)

type t

type outcome = Cpu.outcome =
  | Halted  (** control returned to the halt sentinel *)
  | Trapped of Trap.t
  | Fuel_exhausted

val halt_sentinel : Hppa_word.Word.t
(** [0xffff_ffff]; a [BV] (or [BLR]) whose target equals this value stops the
    machine. {!call} plants it in [rp]. *)

(** Per-machine execution policy, fixed at {!create} time. *)
module Config : sig
  type t = {
    engine : bool;
        (** allow the threaded engine on eligible runs (default [true]) *)
    fuel : int;
        (** default fuel for {!run}/{!call} when the caller passes none
            (default 1_000_000) *)
    trace : (int -> int Insn.t -> unit) option;
        (** per-instruction hook; forces the reference-interpreter path *)
    obs : Hppa_obs.Obs.Registry.t option;
        (** registry to publish this machine's [hppa_sim_*] statistics and
            [hppa_machine_*] dispatch counters into *)
    obs_labels : (string * string) list;
        (** labels attached to every metric this machine publishes —
            distinguish machines sharing one registry (e.g.
            [("kernel", "mul_final")] in bench) *)
  }

  val default : t
end

val create :
  ?mem_bytes:int -> ?delay_slots:bool -> ?config:Config.t -> Program.resolved -> t
(** [mem_bytes] defaults to 64 KiB and is rounded up to a word multiple.
    [config] defaults to {!Config.default}.

    [delay_slots] (default false) selects the real pipeline's branch
    model: a taken branch transfers control only {e after} the following
    instruction (the delay slot) executes; the [,n] completer on a branch
    nullifies the slot when the branch is taken (one cycle, no effect).
    Code written for the default model must be transformed first — see
    {!Delay} — or every taken branch will leak its successor. *)

val delay_slots : t -> bool

val config : t -> Config.t
(** The machine's configuration; the [trace] field reflects later calls
    to {!set_trace}. *)

val program : t -> Program.resolved
val reset : t -> unit
(** Zero the registers, PSW bits and statistics (memory is preserved). *)

val get : t -> Reg.t -> Hppa_word.Word.t
val set : t -> Reg.t -> Hppa_word.Word.t -> unit
(** Writes to [r0] are discarded, as on the hardware. *)

val carry : t -> bool
val v_bit : t -> bool
val pc : t -> int
val set_pc : t -> int -> unit
val load_word : t -> int32 -> (Hppa_word.Word.t, Trap.t) result
val store_word : t -> int32 -> Hppa_word.Word.t -> (unit, Trap.t) result
val stats : t -> Stats.t

val set_trace : t -> (int -> int Insn.t -> unit) option -> unit
(** Hook called before each (non-nullified) instruction executes. *)

val set_icache : t -> Icache.t option -> unit
(** Attach an instruction-cache model: every fetch (nullified slots
    included) is looked up. Cycle counts are unaffected; miss penalties
    are applied by the consumer (see the bench's icache experiment). *)

val icache : t -> Icache.t option

val step : t -> (unit, Trap.t) result
(** Execute one instruction (or consume one nullification slot). Always
    uses the reference interpreter. *)

val run : ?fuel:int -> t -> outcome
(** Run from the current PC until halt, trap or [fuel] cycles (default
    1_000_000). The PC after [Trapped] is the address of the trapping
    instruction.

    Execution engine: the program is translated once into threaded
    closures ({!Engine}) and runs on that fast path whenever the
    machine is in the default branch model with no trace hook and no
    icache attached; delay-slot mode and the observation hooks always
    use the per-instruction reference interpreter. The two are
    observationally identical — registers, PSW C/V, memory, traps, PC
    and statistics — which the differential test suite enforces. *)

val used_engine : t -> bool
(** Whether the most recent {!run} (or {!call}) took the threaded-engine
    path. Also published as [hppa_machine_runs_total{path=...}] when a
    registry is attached. *)

(** Dispatch-path profile of this machine: how many runs took the engine
    vs the interpreter, translate-cache behaviour (a [translation] builds
    the threaded code, a [translate_reuse] is an engine run that found it
    already built), and the engine's cycles split between fused
    superblocks and single-stepped tails (fuel-bounded block entries,
    nullify shadows). *)
type profile_counts = {
  engine_runs : int;
  interp_runs : int;
  translations : int;
  translate_reuses : int;
  block_cycles : int;
  step_cycles : int;
}

val profile : t -> profile_counts

val call :
  ?fuel:int -> t -> string -> args:Hppa_word.Word.t list -> outcome
(** Procedure-call convention: load up to four arguments into
    [arg0..arg3] — a fifth and sixth land in [ret0]/[ret1], the 128/64
    divide's divisor slot — set [rp] (and [mrp]) to the halt sentinel,
    jump to the label, and run. Results are read from [ret0]/[ret1] by
    the caller. Raises [Invalid_argument] on an unknown label or more
    than six arguments. *)

val call_cycles :
  ?fuel:int -> t -> string -> args:Hppa_word.Word.t list -> outcome * int
(** [call] plus the cycle count of just this call. *)

module Batch = Engine_batch
(** The batched (structure-of-arrays) engine: translate once, run a
    whole vector of operand sets with per-lane trap capture. See
    {!Engine_batch}. *)
