lib/core/mul_const.ml: Builder Chain Chain_codegen Chain_rules Cond Emit Hppa_word Int32 List Printf Program Reg
