lib/isa/emit.mli: Cond Insn Reg
