let check cfg ~entry =
  let spec = Cfg.spec_at cfg entry in
  let allowed = spec.Cfg.clobbers @ spec.Cfg.results in
  let ok r = List.exists (Reg.equal r) allowed in
  List.filter_map
    (fun node ->
      match node with
      | Cfg.Summary _ | Cfg.Tail _ ->
          None (* the callee is checked against its own spec *)
      | Cfg.Insn a | Cfg.Slot (a, _) -> (
          match Cfg.defines cfg node with
          | [ r ] when not (ok r) ->
              Some
                (Findings.v ~routine:spec.Cfg.name ~addr:a Findings.Convention
                   (Format.asprintf
                      "%s writes %a, outside the declared clobber set"
                      (Insn.mnemonic (Cfg.insn cfg a))
                      Reg.pp r))
          | _ -> None))
    (Cfg.reachable cfg ~entries:[ entry ])
