(** A direct-mapped instruction cache model.

    §6 motivates squeezing the case table into two-instruction entries "to
    reduce the algorithm's size (and the instruction cache misses
    suffered)". This model makes that cost visible: attach one to a
    machine and every fetch (nullified slots included — they are fetched)
    is looked up; the bench reports cold-start misses per routine and the
    effective cycle count under a configurable miss penalty.

    Addresses are instruction indices; a line holds [line_words]
    instructions and the cache holds [lines] of them, direct-mapped. *)

type t

val create : ?line_words:int -> ?lines:int -> unit -> t
(** Defaults: 8 instructions per line, 64 lines (a 2 KB cache of 4-byte
    instructions). [line_words] must be a power of two. *)

val access : t -> int -> bool
(** Look up (and fill) the line holding this instruction; true on a hit. *)

val hits : t -> int
val misses : t -> int

val reset : t -> unit
(** Invalidate contents and zero the counters (a cold start). *)

val footprint_lines : t -> int
(** Distinct lines currently resident — the routine's cache footprint
    after a run from cold. *)
