lib/isa/image.ml: Array Buffer Bytes Encode Format Insn Int32 Result String
