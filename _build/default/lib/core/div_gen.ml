module Word = Hppa_word.Word

(* Register roles: t2 = dividend low word / quotient window, t3 = partial
   remainder, t4 = final quotient bit, t5 = quotient sign, t1 = remainder
   sign (the original dividend). *)
let lo = Reg.t2
let rem = Reg.t3
let qbit = Reg.t4
let qsign = Reg.t5
let rsign = Reg.t1

(* The 32 unrolled (ADDC; DS) steps plus corrections: unsigned quotient in
   ret0, remainder in ret1. The divisor is arg1, the dividend arg0. *)
let emit_core b =
  Builder.insns b
    [
      Emit.add Reg.r0 Reg.r0 Reg.r0; (* C := 0, V := 0 *)
      Emit.copy Reg.arg0 lo;
      Emit.copy Reg.r0 rem;
    ];
  for _ = 1 to 32 do
    Builder.insns b [ Emit.addc lo lo lo; Emit.ds rem Reg.arg1 rem ]
  done;
  Builder.insns b
    [
      Emit.addc Reg.r0 Reg.r0 qbit; (* 33-bit sign of the last step *)
      Emit.shadd 1 lo qbit Reg.ret0; (* shift in the final quotient bit *)
      Emit.comiclr Cond.Neq 0l qbit Reg.r0; (* negative remainder: correct *)
      Emit.add rem Reg.arg1 rem;
      Emit.copy rem Reg.ret1;
    ]

let emit_zero_check b entry =
  Builder.insn b (Emit.comib Cond.Eq 0l Reg.arg1 (entry ^ "$zero"))

let emit_zero_trap b entry =
  Builder.label b (entry ^ "$zero");
  Builder.insn b (Emit.break Hppa_machine.Trap.divide_by_zero_code)

(* abs both operands, recording the two result signs. *)
let emit_signed_prologue b =
  Builder.insns b
    [
      Emit.xor Reg.arg0 Reg.arg1 qsign;
      Emit.copy Reg.arg0 rsign;
      Emit.comclr Cond.Ge Reg.arg0 Reg.r0 Reg.r0;
      Emit.sub Reg.r0 Reg.arg0 Reg.arg0;
      Emit.comclr Cond.Ge Reg.arg1 Reg.r0 Reg.r0;
      Emit.sub Reg.r0 Reg.arg1 Reg.arg1;
    ]

let emit_signed_epilogue b =
  Builder.insns b
    [
      Emit.comclr Cond.Ge qsign Reg.r0 Reg.r0;
      Emit.sub Reg.r0 Reg.ret0 Reg.ret0;
      Emit.comclr Cond.Ge rsign Reg.r0 Reg.r0;
      Emit.sub Reg.r0 Reg.ret1 Reg.ret1;
    ]

let routine entry ~signed ~want_rem =
  let b = Builder.create ~prefix:entry () in
  Builder.label b entry;
  emit_zero_check b entry;
  if signed then emit_signed_prologue b;
  emit_core b;
  if signed then emit_signed_epilogue b;
  if want_rem then Builder.insn b (Emit.copy Reg.ret1 Reg.ret0);
  Builder.insn b Emit.mret;
  emit_zero_trap b entry;
  Builder.to_source b

let source =
  Program.concat
    [
      routine "divU" ~signed:false ~want_rem:false;
      routine "divI" ~signed:true ~want_rem:false;
      routine "remU" ~signed:false ~want_rem:true;
      routine "remI" ~signed:true ~want_rem:true;
    ]

let entries = [ "divU"; "divI"; "remU"; "remI" ]
let reference_unsigned = Word.divmod_u
let reference_signed = Word.divmod_trunc_s
