(* The service: accept loop on the main thread, one handler thread per
   connection, compute on the domain pool, replies cached by request
   line. See DESIGN.md "Serving: the plan service". *)

module Machine = Hppa_machine.Machine
module Obs = Hppa_obs.Obs
open Hppa

type endpoint = Unix_socket of string | Tcp of string * int

type config = {
  endpoint : endpoint;
  workers : int;
  cache_capacity : int;
  fuel : int;
  trace_path : string option;
  plans_path : string option;
  certified : bool;
}

let default_config =
  {
    endpoint = Unix_socket "hppa-serve.sock";
    workers = 2;
    cache_capacity = 4096;
    fuel = 1_000_000;
    trace_path = None;
    plans_path = None;
    certified = false;
  }

let trace_capacity = 65536

type t = {
  cfg : config;
  pool : Machine.t Lazy.t Pool.t;
  cache : Lru.t;
  artifacts : (string, Plan.artifact) Hashtbl.t;
      (* selector verdict per cached plan, keyed like the reply cache *)
  art_lock : Mutex.t;
  warmed : int ref;
  metrics : Metrics.t;
  obs : Obs.Registry.t;
  trace : Obs.Trace.t option;
  stopping : bool Atomic.t;
  started : float;
  conn_lock : Mutex.t;
  mutable conns : Thread.t list;
}

(* Map a strategy-layer request id (Autotune measurements record
   [Strategy.request_id]) back onto a cacheable protocol request. Only
   the shapes the protocol can express warm anything: signed constant
   multiplies and the d > 0 unsigned / d < 0 signed divide pairing DIV
   itself uses. *)
let warm_request id =
  let const tag =
    if String.length tag > 1 && tag.[0] = 'c' then
      Int32.of_string_opt (String.sub tag 1 (String.length tag - 1))
    else None
  in
  match String.split_on_char '.' id with
  | [ "mul"; tag; "s" ] -> Option.map (fun n -> Protocol.Mul n) (const tag)
  | [ "div"; tag; "u" ] ->
      Option.bind (const tag) (fun d ->
          if d > 0l then Some (Protocol.Div d) else None)
  | [ "div"; tag; "s" ] ->
      Option.bind (const tag) (fun d ->
          if d < 0l then Some (Protocol.Div d) else None)
  | _ -> None

(* Cacheable requests are keyed by their normalized form, so "MUL 7",
   "mul 7" and " MUL  7 " share one entry and one computation. The
   cached value is the exact reply payload: hits are byte-identical to
   recomputes by construction. *)
let cache_key req = Format.asprintf "%a" Protocol.pp_request req

let rec create cfg =
  if cfg.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if cfg.fuel < 1 then invalid_arg "Server.create: fuel must be >= 1";
  let obs = Obs.Registry.create () in
  let cache = Lru.create ~capacity:cfg.cache_capacity in
  let artifacts = Hashtbl.create 64 in
  let warmed = ref 0 in
  let started = Unix.gettimeofday () in
  (* The plan cache and uptime are owned elsewhere; expose them as
     fn-backed metrics sampled at scrape time. *)
  Obs.Registry.fn_counter obs ~help:"Plan cache hits"
    "hppa_serve_cache_hits_total" (fun () -> Lru.hits cache);
  Obs.Registry.fn_counter obs ~help:"Plan cache misses"
    "hppa_serve_cache_misses_total" (fun () -> Lru.misses cache);
  Obs.Registry.fn_counter obs ~help:"Plan cache evictions"
    "hppa_serve_cache_evictions_total" (fun () -> Lru.evictions cache);
  Obs.Registry.fn_gauge obs ~help:"Plan cache hit rate in [0, 1]"
    "hppa_serve_cache_hit_rate" (fun () -> Lru.hit_rate cache);
  Obs.Registry.fn_gauge obs ~help:"Plan cache entries"
    "hppa_serve_cache_size" (fun () -> float_of_int (Lru.size cache));
  Obs.Registry.fn_gauge obs ~help:"Plan cache capacity"
    "hppa_serve_cache_capacity" (fun () -> float_of_int (Lru.capacity cache));
  Obs.Registry.fn_gauge obs ~help:"Worker domains" "hppa_serve_workers"
    (fun () -> float_of_int cfg.workers);
  Obs.Registry.fn_gauge obs ~help:"Seconds since server creation"
    "hppa_serve_uptime_seconds" (fun () -> Unix.gettimeofday () -. started);
  Obs.Registry.fn_gauge obs ~help:"Cached plan artifacts (selector verdicts)"
    "hppa_serve_plan_artifacts" (fun () ->
      float_of_int (Hashtbl.length artifacts));
  Obs.Registry.fn_gauge obs
    ~help:"Cached plan artifacts carrying a certificate digest"
    "hppa_serve_plan_artifacts_certified" (fun () ->
      float_of_int
        (Hashtbl.fold
           (fun _ (a : Plan.artifact) n ->
             if a.Plan.cert_digest <> None then n + 1 else n)
           artifacts 0));
  Obs.Registry.fn_gauge obs
    ~help:"Plans pre-computed at startup from BENCH_PLANS.json"
    "hppa_serve_plans_warmed" (fun () -> float_of_int !warmed);
  let t =
    {
    cfg;
    (* The machine is built lazily inside each worker domain, so startup
       does not pay [workers] millicode resolutions up front. Worker
       machines keep their stats private: the server registry holds only
       server-level metrics, so scrapes stay cheap and unambiguous. *)
    pool =
      Pool.create ~obs ~workers:cfg.workers
        ~init:(fun () -> lazy (Millicode.machine ()))
        ();
      cache;
      artifacts;
      art_lock = Mutex.create ();
      warmed;
      metrics = Metrics.create ~registry:obs ();
      obs;
      trace =
        Option.map
          (fun _ -> Obs.Trace.create ~capacity:trace_capacity)
          cfg.trace_path;
      stopping = Atomic.make false;
      started;
      conn_lock = Mutex.create ();
      conns = [];
    }
  in
  (match cfg.plans_path with
  | None -> ()
  | Some path -> warm_start t path);
  t

and compute_plan t mach req =
  let require_certified = t.cfg.certified in
  match (req : Protocol.request) with
  | Protocol.Mul n -> Plan.mul ~obs:t.obs ~require_certified n
  | Protocol.Div d -> Plan.div ~obs:t.obs ~require_certified d
  | Protocol.W64 { op; signed; x; y } ->
      let op =
        match op with
        | Protocol.W64_mul -> Hppa_w64.Mul
        | Protocol.W64_div -> Hppa_w64.Div
        | Protocol.W64_rem -> Hppa_w64.Rem
      in
      Plan.w64 ~obs:t.obs ~require_certified (Lazy.force mach)
        ~fuel:t.cfg.fuel op ~signed x y
  | _ -> invalid_arg "Server.compute_plan: not a plan request"

and cache_plan t key payload artifact =
  Lru.add t.cache key payload;
  Mutex.lock t.art_lock;
  Hashtbl.replace t.artifacts key artifact;
  Mutex.unlock t.art_lock

(* Pre-compute the reply for every measured request in a BENCH_PLANS.json
   store (written by [bench plans] / {!Hppa_plan.Autotune.Store.save}):
   the first client to ask for a benchmarked plan hits the cache. An
   unreadable store or unparseable entry warms nothing — startup must
   not fail on a stale file. *)
and warm_start t path =
  match Hppa_plan.Autotune.Store.load path with
  | Error _ -> ()
  | Ok store ->
      let seen = Hashtbl.create 64 in
      let mach = lazy (Millicode.machine ()) in
      List.iter
        (fun (m : Hppa_plan.Autotune.measurement) ->
          match warm_request m.Hppa_plan.Autotune.request with
          | None -> ()
          | Some req ->
              let key = cache_key req in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                match compute_plan t mach req with
                | Ok (payload, artifact) ->
                    cache_plan t key payload artifact;
                    incr t.warmed
                | Error _ -> ()
              end)
        (Hppa_plan.Autotune.Store.entries store)

let config t = t.cfg
let registry t = t.obs

let artifacts t =
  Mutex.lock t.art_lock;
  let arts = Hashtbl.fold (fun k a acc -> (k, a) :: acc) t.artifacts [] in
  Mutex.unlock t.art_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) arts

let stats_payload t =
  Printf.sprintf
    "STATS %s cache_hits=%d cache_misses=%d cache_hit_rate=%.4f \
     cache_size=%d cache_capacity=%d cache_evictions=%d workers=%d \
     uptime_s=%.1f"
    (Metrics.render t.metrics)
    (Lru.hits t.cache) (Lru.misses t.cache) (Lru.hit_rate t.cache)
    (Lru.size t.cache) (Lru.capacity t.cache) (Lru.evictions t.cache)
    (Pool.workers t.pool)
    (Unix.gettimeofday () -. t.started)

let metrics_payload t =
  Obs.Export.prometheus (Obs.Registry.snapshot t.obs) ^ "# EOF"

let is_scrape s =
  String.length s >= 1 && s.[0] = '#'
  (* every scrape starts with a # HELP/# TYPE comment *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let is_batch_reply s =
  starts_with "OK MULB k=" s || starts_with "OK DIVB k=" s
  || starts_with "OK W64MULB k=" s
  || starts_with "OK W64DIVB k=" s
  || starts_with "OK W64REMB k=" s

(* MULB/DIVB/W64*B: one reply line per operand (pair), each
   byte-identical to the scalar reply — lanes share the scalar plan
   cache in both directions. All cache misses of one batch are computed
   in a single pool job, so a batch costs one submit however many lanes
   miss. A lane that fails (e.g. a W64DIVB zero-divisor trap) replies
   ERR on that line without poisoning the other lanes. *)
let dispatch_batch t breq =
  let reqs =
    match (breq : Protocol.request) with
    | Protocol.Mulb ns -> List.map (fun n -> Protocol.Mul n) ns
    | Protocol.Divb ds -> List.map (fun d -> Protocol.Div d) ds
    | Protocol.W64b { op; signed; pairs } ->
        List.map (fun (x, y) -> Protocol.W64 { op; signed; x; y }) pairs
    | _ -> invalid_arg "Server.dispatch_batch: not a batch request"
  in
  let cached =
    List.map (fun r -> (cache_key r, r, Lru.find t.cache (cache_key r))) reqs
  in
  let seen = Hashtbl.create 16 in
  let misses =
    List.filter_map
      (fun (key, r, hit) ->
        if hit = None && not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          Some (key, r)
        end
        else None)
      cached
  in
  let computed =
    match misses with
    | [] -> []
    | _ ->
        Pool.submit t.pool (fun mach ->
            List.map (fun (key, r) -> (key, compute_plan t mach r)) misses)
  in
  List.iter
    (fun (key, res) ->
      match res with
      | Ok (payload, artifact) -> cache_plan t key payload artifact
      | Error _ -> ())
    computed;
  let lane (key, _, hit) =
    match hit with
    | Some payload -> Protocol.ok payload
    | None -> (
        match List.assoc_opt key computed with
        | Some (Ok (payload, _)) -> Protocol.ok payload
        | Some (Error detail) -> Protocol.err detail
        | None -> Protocol.err "internal batch lane not computed")
  in
  let header =
    Protocol.ok
      (Printf.sprintf "%s k=%d" (Protocol.verb breq) (List.length reqs))
  in
  String.concat "\n" (header :: List.map lane cached)

let dispatch t req =
  match (req : Protocol.request) with
  | Protocol.Ping -> Protocol.ok "pong"
  | Protocol.Quit -> Protocol.ok "bye"
  | Protocol.Stats -> Protocol.ok (stats_payload t)
  (* Never cached: the scrape must observe live registry state. *)
  | Protocol.Metrics -> metrics_payload t
  | Protocol.Mul _ | Protocol.Div _ | Protocol.W64 _ -> (
      let key = cache_key req in
      match Lru.find t.cache key with
      | Some payload -> Protocol.ok payload
      | None -> (
          match Pool.submit t.pool (fun mach -> compute_plan t mach req) with
          | Ok (payload, artifact) ->
              cache_plan t key payload artifact;
              Protocol.ok payload
          | Error detail -> Protocol.err detail))
  | Protocol.Mulb _ | Protocol.Divb _ | Protocol.W64b _ -> dispatch_batch t req
  | Protocol.Eval (entry, args) -> (
      match
        Pool.submit t.pool (fun mach ->
            Plan.eval (Lazy.force mach) ~fuel:t.cfg.fuel entry args)
      with
      | Ok payload -> Protocol.ok payload
      | Error detail -> Protocol.err detail)

let respond t line =
  let t0 = Unix.gettimeofday () in
  let parsed = Protocol.parse line in
  let reply =
    try
      match parsed with
      | Ok req -> dispatch t req
      | Error detail -> Protocol.err detail
    with exn -> Protocol.err ("internal " ^ Printexc.to_string exn)
  in
  let error = Protocol.is_err reply in
  let us = (Unix.gettimeofday () -. t0) *. 1e6 in
  let verb =
    match parsed with Ok req -> Some (Protocol.verb req) | Error _ -> None
  in
  Metrics.record ?verb t.metrics ~error ~us;
  (match t.trace with
  | None -> ()
  | Some tr ->
      Obs.Trace.emit tr "request"
        [
          ("verb", Str (Option.value verb ~default:"(parse)"));
          ("error", Bool error);
          ("us", Float us);
        ]);
  reply

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                     *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* Read lines with a hard cap: a line longer than [max_line_bytes] is
   reported as `Oversized (and the rest of it discarded) instead of
   growing the buffer without bound. *)
type read_result = Line of string | Oversized | Eof | Timeout

let recv_timeout = 0.25

let handle_conn t fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let overflowing = ref false in
  (* Periodic receive timeouts let the handler notice [stop] even when
     the peer is idle. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO recv_timeout
   with Unix.Unix_error _ -> ());
  let take_line () =
    (* A complete line already buffered? *)
    match Buffer.contents buf with
    | s when String.contains s '\n' ->
        let i = String.index s '\n' in
        let line = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        Buffer.clear buf;
        Buffer.add_string buf rest;
        if !overflowing then begin
          overflowing := false;
          Some Oversized
        end
        else Some (Line line)
    | s when String.length s > Protocol.max_line_bytes ->
        (* Discard the partial line; keep discarding until newline. *)
        Buffer.clear buf;
        overflowing := true;
        None
    | _ -> None
  in
  let rec read_one () =
    match take_line () with
    | Some r -> r
    | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Eof
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            read_one ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            Timeout
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> Timeout)
  in
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      match read_one () with
      | Eof -> ()
      | Timeout -> loop ()
      | Oversized ->
          write_all fd
            (Protocol.err
               (Printf.sprintf "oversized request exceeds %d bytes"
                  Protocol.max_line_bytes)
            ^ "\n");
          loop ()
      | Line line ->
          let reply = respond t line in
          write_all fd (reply ^ "\n");
          if Protocol.parse line = Ok Protocol.Quit then () else loop ()
  in
  (try loop () with
  | Unix.Unix_error _ -> () (* peer went away mid-request *)
  | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)

let bind_listen = function
  | Unix_socket path ->
      (* A stale socket file from a previous run would make bind fail;
         only unlink things that actually are sockets. *)
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      fd
  | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 128;
      fd

let stop t = Atomic.set t.stopping true

let write_trace t =
  match (t.trace, t.cfg.trace_path) with
  | Some tr, Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Obs.Trace.write_jsonl tr oc)
  | _ -> ()

let run t =
  (* A client closing mid-write must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = bind_listen t.cfg.endpoint in
  let accept_loop () =
    while not (Atomic.get t.stopping) do
      match Unix.select [ listen_fd ] [] [] recv_timeout with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept listen_fd with
          | fd, _ ->
              let th = Thread.create (fun () -> handle_conn t fd) () in
              Mutex.lock t.conn_lock;
              t.conns <- th :: t.conns;
              Mutex.unlock t.conn_lock
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  accept_loop ();
  (* Drain: no new connections; handlers notice [stopping] within one
     receive timeout, finish their request in flight, reply and exit. *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.endpoint with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Mutex.lock t.conn_lock;
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.conn_lock;
  List.iter Thread.join conns;
  Pool.shutdown t.pool;
  write_trace t

let shutdown_pool t = Pool.shutdown t.pool

let pp_dump ppf t =
  let arts = artifacts t in
  let certified =
    List.length
      (List.filter (fun (_, a) -> a.Plan.cert_digest <> None) arts)
  in
  Format.fprintf ppf
    "@[<v>-- hppa-serve final report --@,%a@,cache: %d/%d entries, %d hits, \
     %d misses, %d evictions, hit rate %.2f%%@,workers: %d@,plans: %d \
     artifacts (%d certified), %d warmed@]"
    Metrics.pp_dump t.metrics (Lru.size t.cache)
    (Lru.capacity t.cache) (Lru.hits t.cache) (Lru.misses t.cache)
    (Lru.evictions t.cache)
    (100.0 *. Lru.hit_rate t.cache)
    (Pool.workers t.pool) (List.length arts) certified
    !(t.warmed)
