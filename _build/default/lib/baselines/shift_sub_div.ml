module Word = Hppa_word.Word

type result = {
  quotient : Word.t;
  remainder : Word.t;
  add_sub_ops : int;
  cycles : int;
}

(* Both algorithms run over a 33-bit partial remainder held in an int64;
   per-bit bookkeeping (the shift of the remainder/quotient window and the
   loop test) is modelled at 2 cycles, each add/sub at 1. *)

let restoring x y =
  if Word.equal y 0l then raise Division_by_zero;
  let y64 = Word.to_int64_u y in
  let rem = ref 0L and q = ref 0l and ops = ref 0 and cycles = ref 0 in
  for i = 31 downto 0 do
    rem := Int64.logor (Int64.shift_left !rem 1) (if Word.bit x i then 1L else 0L);
    cycles := !cycles + 2;
    (* Trial subtraction; restore on underflow. *)
    let trial = Int64.sub !rem y64 in
    incr ops;
    incr cycles;
    if trial >= 0L then begin
      rem := trial;
      q := Int32.logor (Int32.shift_left !q 1) 1l
    end
    else begin
      (* The restore step: add the divisor back. *)
      incr ops;
      incr cycles;
      q := Int32.shift_left !q 1
    end
  done;
  {
    quotient = !q;
    remainder = Int64.to_int32 !rem;
    add_sub_ops = !ops;
    cycles = !cycles;
  }

let non_restoring x y =
  if Word.equal y 0l then raise Division_by_zero;
  let y64 = Word.to_int64_u y in
  let rem = ref 0L and q = ref 0l and ops = ref 0 and cycles = ref 0 in
  for i = 31 downto 0 do
    let bit = if Word.bit x i then 1L else 0L in
    let shifted = Int64.logor (Int64.shift_left !rem 1) bit in
    cycles := !cycles + 2;
    rem := (if !rem >= 0L then Int64.sub shifted y64 else Int64.add shifted y64);
    incr ops;
    incr cycles;
    q := Int32.logor (Int32.shift_left !q 1) (if !rem >= 0L then 1l else 0l)
  done;
  let corrections = ref 0 in
  if !rem < 0L then begin
    rem := Int64.add !rem y64;
    corrections := 1
  end;
  {
    quotient = !q;
    remainder = Int64.to_int32 !rem;
    add_sub_ops = !ops + !corrections;
    cycles = !cycles + !corrections;
  }
