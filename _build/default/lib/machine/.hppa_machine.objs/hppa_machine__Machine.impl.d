lib/machine/machine.ml: Array Cond Hppa_word Icache Insn Int32 Int64 List Printf Program Reg Result Stats Trap
