lib/core/chain_rules.ml: Array Chain Chain_search Hashtbl List Option Printf
