lib/core/div_ext.mli: Hppa_word Program
