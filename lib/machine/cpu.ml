(* Machine state and the reference interpreter.

   This module holds the concrete simulator state and the per-instruction
   interpreter that defines the architecture's semantics. It exists as a
   separate layer so that the threaded-code engine ({!Engine}) can be
   compiled against the same state record without a dependency cycle:

     Cpu (state + reference semantics) <- Engine (translate once) <- Machine

   Everything outside [lib/machine] goes through the {!Machine} facade;
   the record is exposed here only for the engine and the tests. *)

module Word = Hppa_word.Word
module Obs = Hppa_obs.Obs

(* An armed control transfer: in delay-slot mode branches arm one of
   these and it is applied after the following instruction (the slot)
   completes. *)
type control = Jump of int | Stop

type outcome = Halted | Trapped of Trap.t | Fuel_exhausted

(* Per-machine execution policy, fixed at creation. The mutable [trace]
   field below shadows its config value so [set_trace] keeps working. *)
type config = {
  engine : bool;
  fuel : int;
  trace : (int -> int Insn.t -> unit) option;
  obs : Obs.Registry.t option;
  obs_labels : (string * string) list;
}

let default_config =
  { engine = true; fuel = 1_000_000; trace = None; obs = None; obs_labels = [] }

(* Dispatch-level profiling: how runs were executed and how the engine's
   cycles split between fused superblocks and single-stepped tails.
   Always counted (a handful of atomic adds per [run]); published as
   [hppa_machine_*] metrics when a registry is attached. *)
type profile = {
  engine_runs : Obs.Counter.t;
  interp_runs : Obs.Counter.t;
  translations : Obs.Counter.t;
  translate_reuses : Obs.Counter.t;
  block_cycles : Obs.Counter.t;
  step_cycles : Obs.Counter.t;
}

type t = {
  prog : Program.resolved;
  regs : int32 array;
  mem : int32 array;
  delay : bool;
  mutable carry : bool;
  mutable v : bool;
  mutable nullify : bool;
  mutable pending : control option;
  mutable pc : int;
  mutable halted : bool;
  stats : Stats.t;
  mutable trace : (int -> int Insn.t -> unit) option;
  mutable icache : Icache.t option;
  mutable engine : (int -> outcome) option;
      (* the compiled threaded engine, built lazily on first eligible run *)
  mutable used_engine : bool;
      (* whether the last run/call went through the engine *)
  cfg : config;
  prof : profile;
}

let halt_sentinel = -1l

let create ?(mem_bytes = 65536) ?(delay_slots = false)
    ?(config = default_config) prog =
  let prof =
    {
      engine_runs = Obs.Counter.create ();
      interp_runs = Obs.Counter.create ();
      translations = Obs.Counter.create ();
      translate_reuses = Obs.Counter.create ();
      block_cycles = Obs.Counter.create ();
      step_cycles = Obs.Counter.create ();
    }
  in
  (match config.obs with
  | None -> ()
  | Some reg ->
      let labels = config.obs_labels in
      let reg_c ?help name extra c =
        Obs.Registry.register_counter reg ?help ~labels:(extra @ labels) name c
      in
      reg_c ~help:"Machine runs by dispatch path" "hppa_machine_runs_total"
        [ ("path", "engine") ] prof.engine_runs;
      reg_c ~help:"Machine runs by dispatch path" "hppa_machine_runs_total"
        [ ("path", "interpreter") ] prof.interp_runs;
      reg_c ~help:"Threaded-engine translations built"
        "hppa_machine_translations_total" [] prof.translations;
      reg_c ~help:"Engine runs that reused an existing translation"
        "hppa_machine_translate_reuses_total" [] prof.translate_reuses;
      reg_c ~help:"Engine cycles by dispatch granularity"
        "hppa_machine_cycles_total" [ ("dispatch", "superblock") ]
        prof.block_cycles;
      reg_c ~help:"Engine cycles by dispatch granularity"
        "hppa_machine_cycles_total" [ ("dispatch", "single_step") ]
        prof.step_cycles);
  {
    prog;
    regs = Array.make 32 0l;
    mem = Array.make ((mem_bytes + 3) / 4) 0l;
    delay = delay_slots;
    carry = false;
    v = false;
    nullify = false;
    pending = None;
    pc = 0;
    halted = false;
    stats = Stats.create ?registry:config.obs ~labels:config.obs_labels ();
    trace = config.trace;
    icache = None;
    engine = None;
    used_engine = false;
    cfg = config;
    prof;
  }

let delay_slots t = t.delay

let program t = t.prog

let reset t =
  Array.fill t.regs 0 32 0l;
  t.carry <- false;
  t.v <- false;
  t.nullify <- false;
  t.pending <- None;
  t.pc <- 0;
  t.halted <- false;
  Stats.reset t.stats

let get t r = t.regs.(Reg.to_int r)

let set t r v =
  let i = Reg.to_int r in
  if i <> 0 then t.regs.(i) <- v

let carry t = t.carry
let v_bit t = t.v
let pc t = t.pc
let set_pc t pc = t.pc <- pc

let mem_index t (addr : int32) =
  if Int32.logand addr 3l <> 0l then Error (Trap.Unaligned addr)
  else
    let i = Word.to_int_u addr / 4 in
    if i >= Array.length t.mem then Error (Trap.Bad_address addr) else Ok i

let load_word t addr =
  Result.map (fun i -> t.mem.(i)) (mem_index t addr)

let store_word t addr v =
  Result.map (fun i -> t.mem.(i) <- v) (mem_index t addr)

let stats t = t.stats
let set_trace t hook = t.trace <- hook
let set_icache t c = t.icache <- c
let icache t = t.icache

let ( let* ) = Result.bind

(* --- Divide step: see the Machine interface comment and DESIGN.md. --- *)
let divide_step t a b =
  let r =
    Int64.sub (Word.to_int64_u a) (if t.v then 0x1_0000_0000L else 0L)
  in
  let r2 = Int64.add (Int64.mul 2L r) (if t.carry then 1L else 0L) in
  let r' =
    if t.v then Int64.add r2 (Word.to_int64_u b)
    else Int64.sub r2 (Word.to_int64_u b)
  in
  t.v <- r' < 0L;
  t.carry <- r' >= 0L;
  Int64.to_int32 r'

let alu_result t (op : Insn.alu) a b =
  match op with
  | Add ->
      let sum, carry_out = Word.add_carry a b ~carry_in:false in
      let ov = Word.add_overflows_s a b in
      t.carry <- carry_out;
      t.v <- false;
      (sum, ov)
  | Addc ->
      let carry_in = t.carry in
      let sum, carry_out = Word.add_carry a b ~carry_in in
      (* Signed overflow of a 3-input add, from the wide value. *)
      let wide =
        Int64.add
          (Int64.add (Word.to_int64_s a) (Word.to_int64_s b))
          (if carry_in then 1L else 0L)
      in
      let ov = wide < -0x8000_0000L || wide > 0x7fff_ffffL in
      t.carry <- carry_out;
      (sum, ov)
  | Sub ->
      let d, borrow = Word.sub_borrow a b ~borrow_in:false in
      let ov = Word.sub_overflows_s a b in
      (* PA-RISC convention: the PSW bit holds NOT-borrow after subtracts. *)
      t.carry <- not borrow;
      t.v <- false;
      (d, ov)
  | Subb ->
      let borrow_in = not t.carry in
      let d, borrow = Word.sub_borrow a b ~borrow_in in
      let wide =
        Int64.sub
          (Int64.sub (Word.to_int64_s a) (Word.to_int64_s b))
          (if borrow_in then 1L else 0L)
      in
      let ov = wide < -0x8000_0000L || wide > 0x7fff_ffffL in
      t.carry <- not borrow;
      (d, ov)
  | Shadd k ->
      (* The shift-and-adds are add-family instructions: they write the
         carry of the 32-bit addition (the double-word chain code depends
         on this, as did HP's). *)
      let shifted = Word.shl a k in
      let sum, carry_out = Word.add_carry shifted b ~carry_in:false in
      t.carry <- carry_out;
      (sum, Word.sh_add_overflows_hw k a b)
  | And -> (Word.logand a b, false)
  | Or -> (Word.logor a b, false)
  | Xor -> (Word.logxor a b, false)
  | Andcm -> (Word.logand a (Word.lognot b), false)

let check_pc t target =
  if target >= 0 && target < Array.length t.prog.code then Ok target
  else Error (Trap.Bad_pc target)

let apply_control t = function
  | Jump target -> t.pc <- target
  | Stop -> t.halted <- true

(* Take a resolved transfer: immediately in the default model, or armed
   for after the delay slot (with the slot nullified under [,n]). *)
let take_branch t ~n ctrl =
  Stats.record_branch_taken t.stats;
  if t.delay then begin
    t.pending <- Some ctrl;
    if n then t.nullify <- true
  end
  else apply_control t ctrl;
  Ok ()

(* A register-computed branch target: the halt sentinel stops the machine,
   anything else must land inside the program image. *)
let dynamic_branch t ~n (target_word : int32) =
  if Word.equal target_word halt_sentinel then take_branch t ~n Stop
  else
    let target = Word.to_int_u target_word in
    let* target = check_pc t target in
    take_branch t ~n (Jump target)

let static_branch t ~n target =
  let* target = check_pc t target in
  take_branch t ~n (Jump target)

let exec t (i : int Insn.t) =
  let next = t.pc + 1 in
  t.pc <- next;
  match i with
  | Alu { op; a; b; t = dst; trap_ov } ->
      let v, ov = alu_result t op (get t a) (get t b) in
      if trap_ov && ov then Error Trap.Overflow
      else (
        set t dst v;
        Ok ())
  | Ds { a; b; t = dst } ->
      set t dst (divide_step t (get t a) (get t b));
      Ok ()
  | Addi { imm; a; t = dst; trap_ov } ->
      let v, ov = alu_result t Add (get t a) imm in
      if trap_ov && ov then Error Trap.Overflow
      else (
        set t dst v;
        Ok ())
  | Subi { imm; a; t = dst; trap_ov } ->
      let v, ov = alu_result t Sub imm (get t a) in
      if trap_ov && ov then Error Trap.Overflow
      else (
        set t dst v;
        Ok ())
  | Comclr { cond; a; b; t = dst } ->
      if Cond.eval cond (get t a) (get t b) then t.nullify <- true;
      set t dst 0l;
      Ok ()
  | Comiclr { cond; imm; a; t = dst } ->
      if Cond.eval cond imm (get t a) then t.nullify <- true;
      set t dst 0l;
      Ok ()
  | Extr { signed; r; pos; len; t = dst; cond } ->
      let f = if signed then Word.extract_s else Word.extract_u in
      let v = f (get t r) ~pos ~len in
      if Cond.eval cond v 0l then t.nullify <- true;
      set t dst v;
      Ok ()
  | Zdep { r; pos; len; t = dst } ->
      set t dst (Word.deposit (get t r) ~into:0l ~pos ~len);
      Ok ()
  | Shd { a; b; sa; t = dst } ->
      let wide =
        Int64.logor
          (Int64.shift_left (Word.to_int64_u (get t a)) 32)
          (Word.to_int64_u (get t b))
      in
      set t dst (Int64.to_int32 (Int64.shift_right_logical wide sa));
      Ok ()
  | Ldil { imm; t = dst } ->
      set t dst imm;
      Ok ()
  | Ldo { imm; base; t = dst } ->
      set t dst (Word.add (get t base) imm);
      Ok ()
  | Ldw { disp; base; t = dst } ->
      let* v = load_word t (Word.add (get t base) disp) in
      set t dst v;
      Ok ()
  | Stw { r; disp; base } -> store_word t (Word.add (get t base) disp) (get t r)
  | Ldaddr { target; t = dst } ->
      set t dst (Word.of_int target);
      Ok ()
  | Comb { cond; a; b; target; n } ->
      if Cond.eval cond (get t a) (get t b) then static_branch t ~n target
      else Ok ()
  | Comib { cond; imm; a; target; n } ->
      if Cond.eval cond imm (get t a) then static_branch t ~n target else Ok ()
  | Addib { cond; imm; a; target; n } ->
      (* Updates the counter without touching C or V (simplification noted
         in the interface). *)
      let sum = Word.add (get t a) imm in
      set t a sum;
      if Cond.eval cond sum 0l then static_branch t ~n target else Ok ()
  | B { target; n } -> static_branch t ~n target
  | Bl { target; t = dst; n } ->
      (* On a delay-slot pipeline the return point is past the slot. *)
      let link = if t.delay then next + 1 else next in
      set t dst (Word.of_int link);
      static_branch t ~n target
  | Blr { x; t = dst; n } ->
      (* Case tables start after the slot on a delay-slot pipeline; the
         scheduler materialises that slot (see Delay). *)
      let base = if t.delay then next + 1 else next in
      set t dst (Word.of_int base);
      let target = base + (2 * Word.to_int_u (get t x)) in
      static_branch t ~n target
  | Bv { x; base; n } ->
      let target =
        Word.add (get t base) (Word.of_int (2 * Word.to_int_u (get t x)))
      in
      dynamic_branch t ~n target
  | Break { code } -> Error (Trap.Break code)
  | Nop -> Ok ()

let step t =
  if t.halted then Ok ()
  else if t.pc < 0 || t.pc >= Array.length t.prog.code then begin
    (* A pending transfer whose slot lies past the image end: charge the
       slot fetch as a nullified cycle and transfer (only reachable from a
       branch that is the image's last instruction). *)
    match t.pending with
    | Some ctrl ->
        t.pending <- None;
        t.nullify <- false;
        Stats.record t.stats ~nullified:true ~mnemonic:"nop";
        apply_control t ctrl;
        Ok ()
    | None -> Error (Trap.Bad_pc t.pc)
  end
  else begin
    let i = t.prog.code.(t.pc) in
    (match t.icache with
    | Some c -> ignore (Icache.access c t.pc)
    | None -> ());
    (* If a transfer is armed, this instruction is its delay slot: the
       transfer applies once the slot completes — unless the slot arms a
       transfer of its own, which then wins (the scheduler never emits
       branches in slots; the semantics is defined for completeness). *)
    let pending_before = t.pending in
    t.pending <- None;
    let finish result =
      (match (result, pending_before) with
      | Ok (), Some ctrl when t.pending = None -> apply_control t ctrl
      | _, _ -> ());
      result
    in
    if t.nullify then (
      t.nullify <- false;
      Stats.record t.stats ~nullified:true ~mnemonic:(Insn.mnemonic i);
      t.pc <- t.pc + 1;
      finish (Ok ()))
    else (
      (match t.trace with Some hook -> hook t.pc i | None -> ());
      Stats.record t.stats ~nullified:false ~mnemonic:(Insn.mnemonic i);
      match exec t i with
      | Ok () -> finish (Ok ())
      | Error trap ->
          (* Leave the PC on the trapping instruction for diagnosis. *)
          t.pc <- t.pc - 1;
          Error trap)
  end

let run ?fuel t =
  let fuel = match fuel with Some f -> f | None -> t.cfg.fuel in
  let rec go fuel =
    if t.halted then Halted
    else if fuel = 0 then Fuel_exhausted
    else
      match step t with
      | Ok () -> go (fuel - 1)
      | Error trap ->
          Stats.record_trap t.stats (Trap.name trap);
          Trapped trap
  in
  go fuel
