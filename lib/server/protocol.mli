(** The hppa-serve wire protocol.

    Line-oriented, ASCII, one request and one reply per line. Requests:

    {v MUL <n>                 constant-multiply plan for the int32 n
      DIV <d>                 constant-divide plan (d < 0: signed plan)
      MULB <n...>             batch of 1..64 constant-multiply plans
      DIVB <d...>             batch of 1..64 constant-divide plans
      W64MUL <u|s> <x> <y>    64x64 multiply (128-bit product) of int64s
      W64DIV <u|s> <x> <y>    64/64 truncating divide
      W64REM <u|s> <x> <y>    64/64 remainder
      W64MULB <u|s> <x y...>  batch of 1..16 W64MUL operand pairs
      W64DIVB <u|s> <x y...>  batch of 1..16 W64DIV operand pairs
      W64REMB <u|s> <x y...>  batch of 1..16 W64REM operand pairs
      W64DIVL <xhi> <xlo> <y> 128/64 divide: unsigned (xhi:xlo) / y
      W64DIVLB <xhi xlo y..>  batch of 1..10 W64DIVL operand triples
      EVAL <entry> <args...>  run a millicode entry (up to 4 int32 args)
      STATS                   server counters and latency percentiles
      METRICS                 Prometheus text scrape of the registry
      PING                    liveness probe
      QUIT                    close this connection v}

    Replies are a single line starting with ["OK "] or ["ERR "] — with
    two exceptions. [METRICS] replies with multi-line Prometheus
    exposition text terminated by a line reading ["# EOF"]. The batch
    verbs reply with a header line ["OK <VERB>B k=<K>"] followed by
    exactly K lines, the i-th being byte-identical to the reply the
    corresponding scalar request would have produced (["OK ..."] or,
    e.g. for a zero divisor lane, ["ERR ..."]).

    The W64 verbs carry their run-time operands on the request line:
    a signedness token ([u] or [s]) followed by signed decimal int64
    operands (the canonical form {!pp_request} prints; [0x..] literal
    syntax is also accepted on input). The batch forms take whitespace-
    separated [x y] pairs — an odd operand count, a bad signedness, or
    any malformed operand rejects the whole batch (a partial batch
    would desynchronize the lane-indexed reply). Divide lanes that trap
    reply ["ERR trap ..."] without poisoning the batch.

    Every plan-producing verb above is one row of an internal dispatch
    table keyed by {!kernel}: scalar/batch parsing, verb naming,
    canonical rendering, cache keys and batch-header recognition all
    derive from the row, so adding a verb means one {!kernel}
    constructor plus one table row — not four hand-written code sites.

    Parsing is total: {!parse} never raises, whatever the input bytes.
    Number arguments accept OCaml int literal syntax ([0x..] included)
    and must fit in 32 bits (64 for the W64 verbs). *)

module Word = Hppa_word.Word

type w64_op = W64_mul | W64_div | W64_rem

(** A plan-producing kernel — one row of the dispatch table. [Kdivl] is
    the 128/64 divide ([divU128by64]). *)
type kernel = Kmul | Kdiv | Kw64 of w64_op | Kdivl

(** One operand lane of an [Op] request. [Const] lanes belong to
    [Kmul]/[Kdiv], [Pair] lanes to [Kw64 _], [Triple] lanes to [Kdivl]
    (unsigned 128-bit dividend as two dwords, then the divisor dword);
    {!parse} guarantees the shape matches the kernel and that all lanes
    of one request share a signedness. *)
type lane =
  | Const of int32
  | Pair of { signed : bool; x : int64; y : int64 }
  | Triple of { xhi : int64; xlo : int64; y : int64 }

(** A parsed request. Every plan-producing verb — scalar or batch,
    32- or 64-bit — is the single [Op] constructor; a scalar request is
    an [Op] with [batch = false] and exactly one lane. *)
type request =
  | Op of { kernel : kernel; batch : bool; lanes : lane list }
  | Eval of string * Word.t list
  | Stats
  | Metrics
  | Ping
  | Quit

val mul : int32 -> request
(** [mul n] is the scalar [MUL n] request. *)

val div : int32 -> request
(** [div d] is the scalar [DIV d] request. *)

val w64 : w64_op -> signed:bool -> int64 -> int64 -> request
(** [w64 op ~signed x y] is the scalar [W64MUL]/[W64DIV]/[W64REM]
    request. *)

val divl : xhi:int64 -> xlo:int64 -> int64 -> request
(** [divl ~xhi ~xlo y] is the scalar [W64DIVL] request: the unsigned
    128-bit dividend [(xhi:xlo)] divided by the dword [y]. *)

val verb : request -> string
(** The command word of a request (["MUL"], ["MULB"], ["EVAL"], ...) —
    used as the [verb] label on per-verb latency histograms. *)

val kernel_verb : kernel -> string
(** The scalar wire verb of a kernel; the batch verb appends ["B"]. *)

val max_line_bytes : int
(** Longest accepted request line (1024); longer lines are rejected with
    an [oversized] error by {!Server.respond} and by the connection
    reader. *)

val max_batch_operands : int
(** Most operands one [MULB]/[DIVB] request may carry (64) — sized so a
    maximal batch still fits in {!max_line_bytes}. *)

val max_w64_batch_pairs : int
(** Most operand pairs one [W64MULB]/[W64DIVB]/[W64REMB] request may
    carry (16) — int64 decimal tokens are up to 20 bytes, so a maximal
    pair batch still fits in {!max_line_bytes}. *)

val max_divl_batch_triples : int
(** Most operand triples one [W64DIVLB] request may carry (10). *)

val parse : string -> (request, string) result
(** Parse one request line (no trailing newline; a trailing ['\r'] is
    tolerated). [Error detail] is ["<category> <message>"], ready to be
    prefixed with ["ERR "]. Never raises. *)

val ok : string -> string
(** [ok payload] is ["OK " ^ payload]. *)

val err : string -> string
(** [err detail] is ["ERR " ^ detail], with newlines squashed so the
    reply stays one line. *)

val is_ok : string -> bool
val is_err : string -> bool

val is_batch_reply : string -> bool
(** Recognize a batch reply header ["OK <VERB>B k=..."] for any kernel
    in the dispatch table; such a header is followed by [k] lane
    lines. *)

val pp_request : Format.formatter -> request -> unit
(** Canonical rendering; for a scalar [Op] this is the normalized wire
    form and doubles as the shard-cache key. *)

val lane_key : kernel -> lane -> string
(** [lane_key kernel lane] is the normalized scalar wire form of one
    lane (e.g. ["MUL 625"]) — the cache key shared by the scalar verb
    and every batch lane carrying the same operand. *)

val excerpt : string -> string
(** Printable, length-capped excerpt of untrusted input for error
    messages. *)
