examples/fixed_point.ml: Format Hppa Hppa_machine Hppa_word Int32 List Reg
