lib/core/millicode.ml: Builder Delay Div_ext Div_gen Div_small Emit Hppa_machine Mul_ext Mul_var Program
