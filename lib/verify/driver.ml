let structure cfg ~entries =
  let out = ref [] in
  let emit f = out := f :: !out in
  let addrs =
    List.filter_map
      (fun name ->
        match Program.symbol (Cfg.program cfg) name with
        | Some a -> Some a
        | None ->
            emit
              (Findings.v ~routine:name Findings.Structure
                 "entry label is not defined");
            None)
      entries
  in
  List.iter
    (fun node ->
      match Cfg.addr_of node with
      | None -> ()
      | Some a ->
          List.iter
            (function
              | Cfg.Indirect ->
                  emit
                    (Findings.v ~addr:a Findings.Structure
                       (Format.asprintf
                          "unresolvable indirect branch %s"
                          (Insn.mnemonic (Cfg.insn cfg a))))
              | Cfg.Off_image ->
                  emit
                    (Findings.v ~addr:a Findings.Structure
                       "control can run off the program image")
              | _ -> ())
            (Cfg.succs cfg node))
    (Cfg.reachable cfg ~entries:addrs);
  (addrs, List.rev !out)

let check ?(options = Cfg.default) ?specs ~entries prog =
  let cfg = Cfg.make ?specs options prog in
  let addrs, structural = structure cfg ~entries in
  structural
  @ Hazards.check cfg
  @ List.concat_map
      (fun entry -> Defuse.check cfg ~entry @ Convention.check cfg ~entry)
      addrs

let check_source ?options ?specs ~entries src =
  Result.map (check ?options ?specs ~entries) (Program.resolve src)

let certify ?(options = Cfg.default) prog ~entry ~multiplier =
  match Program.symbol prog entry with
  | None -> Linear.Unknown (Format.asprintf "no label %S" entry)
  | Some addr ->
      Linear.certify (Cfg.make options prog) ~entry:addr ~multiplier
