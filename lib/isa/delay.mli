(** Delay-slot scheduling.

    The real Precision pipeline executes the instruction after every taken
    branch (the delay slot); HP's hand-written millicode filled those slots
    with useful work, which is exactly why the paper's instruction counts
    equal its cycle counts. This module transforms code written for the
    simple model (branch transfers immediately) into delay-slot-correct
    code at two quality levels:

    - {!naive}: set the [,n] completer on every branch. Semantics are
      preserved; every taken branch pays one nullified slot cycle — the
      cost of {e unscheduled} code.
    - {!schedule}: move the instruction preceding a branch into its slot
      when provably safe (no dependence between the moved instruction and
      the branch's operands, condition, or link/counter writes; no label
      between them; neither lies in the shadow of a nullifying
      instruction), falling back to [,n] otherwise. Filled slots make the
      taken branch free again, recovering the simple model's cycle count
      for that branch.

    The scheduler is deliberately local (single-predecessor moves only) —
    like HP's millicode, hot loops benefit most. The bench's [delay]
    experiment quantifies all three models on the whole millicode
    library. *)

val is_nullifier : 'lbl Insn.t -> bool
(** May the instruction nullify its successor? ([COMCLR], [COMICLR], and
    [EXTR] with a condition completer.) The scheduler never moves an
    instruction out of a nullifier's shadow and never parks a nullifier in
    a delay slot; {!Hppa_verify.Hazards} machine-checks both invariants on
    the transformed code. *)

val may_trap : 'lbl Insn.t -> bool
(** May the instruction trap? (Overflow-trapping arithmetic, loads and
    stores, [BREAK].) Trapping instructions keep their program position so
    trap PCs and pre-trap state stay exact; a trapping instruction inside
    an executed delay slot would report the wrong PC. *)

val naive : Program.source -> Program.source

val schedule : Program.source -> Program.source

type stats = { branches : int; filled : int; nullified : int }

val stats_of : Program.source -> stats
(** Count branches and how their slots were handled in already-transformed
    code: [filled] branches carry no [,n] (their slot does real work),
    [nullified] ones do. *)
