(* Test entry point: every suite from every library. *)

let () =
  Alcotest.run "hppa"
    (Test_word.suite @ Test_isa.suite @ Test_machine.suite @ Test_chains.suite
   @ Test_mul.suite @ Test_div.suite @ Test_ext.suite @ Test_dist.suite
   @ Test_compiler.suite @ Test_compiler_w64.suite @ Test_golden.suite
   @ Test_baselines.suite @ Test_delay.suite
   @ Test_verify.suite @ Test_engine.suite @ Test_batch.suite
   @ Test_server.suite @ Test_obs.suite @ Test_plan.suite @ Test_w64.suite)
