module Obs = Hppa_obs.Obs
module Certificate = Hppa_verify.Certificate

type candidate = {
  strategy : Strategy.t;
  cost : (Strategy.cost, string) result;
}

type choice = {
  request : Strategy.request;
  context : Strategy.context;
  chosen : Strategy.t;
  cost : Strategy.cost;
  emission : Strategy.emission;
  certificate : Certificate.t option;
  candidates : candidate list;
}

let candidates ?(ctx = Strategy.standalone) req =
  Strategy.all
  |> List.filter (fun (s : Strategy.t) -> s.applies req)
  |> List.map (fun (s : Strategy.t) -> { strategy = s; cost = s.cost ctx req })

let bump obs name (key, value) =
  match obs with
  | None -> ()
  | Some reg ->
      Obs.Counter.incr
        (Obs.Registry.counter reg ~labels:[ (key, value) ] name)

let choose ?(ctx = Strategy.standalone) ?obs ?(require_certified = false) req =
  let cands = candidates ~ctx req in
  List.iter
    (fun c ->
      bump obs "hppa_plan_candidates_total"
        ("strategy", c.strategy.Strategy.name))
    cands;
  if cands = [] then
    Error
      (Format.asprintf "no applicable strategy for %a" Strategy.pp_request req)
  else
    (* Stable sort: at equal score, registry order is the tie-break. *)
    let ranked =
      cands
      |> List.filter_map (fun c ->
             match (c.strategy.Strategy.kind, c.cost) with
             | Strategy.Emits, Ok cost -> Some (c.strategy, cost)
             | _ -> None)
      |> List.stable_sort (fun (_, a) (_, b) ->
             compare a.Strategy.score b.Strategy.score)
    in
    (* strategies that emitted but failed certification, so the returned
       candidate table can show why they were passed over *)
    let uncertified = ref [] in
    let finish strategy cost emission certificate =
      bump obs "hppa_plan_selections_total" ("strategy", strategy.Strategy.name);
      (match certificate with
      | Some c ->
          bump obs "hppa_verify_certified_total"
            ("kind", Certificate.kind_label c.Certificate.kind)
      | None -> ());
      let candidates =
        List.map
          (fun c ->
            match List.assoc_opt c.strategy.Strategy.name !uncertified with
            | Some reason ->
                { c with cost = Error ("not certified: " ^ reason) }
            | None -> c)
          cands
      in
      Ok
        {
          request = req;
          context = ctx;
          chosen = strategy;
          cost;
          emission;
          certificate;
          candidates;
        }
    in
    let rec first_emitting last_err = function
      | [] ->
          Error
            (match last_err with
            | Some e -> e
            | None ->
                Format.asprintf "every strategy rejected %a in this context"
                  Strategy.pp_request req)
      | (strategy, cost) :: rest -> (
          match strategy.Strategy.emit req with
          | Ok emission ->
              if not require_certified then
                finish strategy cost emission None
              else (
                match Strategy.certify req emission with
                | Ok cert -> finish strategy cost emission (Some cert)
                | Error e ->
                    uncertified := (strategy.Strategy.name, e) :: !uncertified;
                    first_emitting
                      (Some
                         (Printf.sprintf "%s: not certified: %s"
                            strategy.Strategy.name e))
                      rest)
          | Error e ->
              first_emitting
                (Some (Printf.sprintf "%s: %s" strategy.Strategy.name e))
                rest)
    in
    first_emitting None ranked

let pp_choice ppf c =
  let open Format in
  fprintf ppf "@[<v>request:  %a@," Strategy.pp_request c.request;
  fprintf ppf "chosen:   %s (score %d, %s)@," c.chosen.Strategy.name
    c.cost.Strategy.score c.cost.Strategy.note;
  fprintf ppf "entry:    %s (%d instructions)@," c.emission.Strategy.entry
    c.emission.Strategy.static_instructions;
  (match c.certificate with
  | Some cert ->
      fprintf ppf "certified: %s (%s)@,"
        (Certificate.describe cert.Certificate.kind)
        cert.Certificate.digest
  | None -> ());
  fprintf ppf "candidates:";
  List.iter
    (fun cand ->
      let name = cand.strategy.Strategy.name in
      let tag =
        if cand.strategy.Strategy.kind = Strategy.Modelled then " [model]"
        else ""
      in
      match cand.cost with
      | Ok cost ->
          fprintf ppf "@,  %-24s score %4d  %s%s"
            name cost.Strategy.score cost.Strategy.note tag
      | Error reason ->
          fprintf ppf "@,  %-24s rejected: %s%s" name reason tag)
    c.candidates;
  fprintf ppf "@]"
