(** The register-pair calling convention check (W64 millicode family).

    A pair spec declares which 64-bit operands and results a routine
    carries as (hi:lo) word pairs. The check enforces:

    - {e shape}: every declared pair sits in a canonical slot —
      arguments in (arg0:arg1), (arg2:arg3) or, for the three-operand
      128/64 divide, (ret0:ret1); results in (ret0:ret1) or (arg0:arg1)
      — and each half is covered by the routine's flat
      {!Cfg.spec} (so the pair and word views of the interface agree);
    - {e definedness}: both halves of every result pair are defined on
      every return path (forward must-analysis over the routine's CFG);
    - {e consumption}: both halves of every argument pair are read
      somewhere in the routine — reading only one half almost certainly
      means the (hi:lo) order is swapped.

    Violations are reported as {!Findings.check.Pair} findings. *)

type pair = Reg.t * Reg.t
(** (high word, low word). *)

type spec = { name : string; arg_pairs : pair list; result_pairs : pair list }

val arg_slots : pair list
(** The canonical argument slots
    [(arg0:arg1); (arg2:arg3); (ret0:ret1)] — the last used only by the
    128/64 divide's divisor. *)

val result_slots : pair list
(** The canonical result slots [(ret0:ret1); (arg0:arg1)]. *)

val check : Cfg.t -> spec:spec -> Findings.t list
(** Check the routine entered at the spec's name against its declared
    pairs; a missing entry label is itself a finding. *)
