lib/core/chain.mli: Format Hppa_word
