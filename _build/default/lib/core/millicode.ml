(* mulI / muloI are aliases of the final-algorithm routines; a label-only
   compilation unit placed right before each target would also work, but
   explicit single-instruction trampolines keep every entry independent of
   layout. *)
let aliases =
  let b = Builder.create ~prefix:"aliases" () in
  Builder.label b "mulI";
  Builder.insn b (Emit.b "mul_final");
  Builder.label b "muloI";
  Builder.insn b (Emit.b "mulo");
  Builder.to_source b

let source =
  Program.concat
    [
      aliases; Mul_var.all; Mul_ext.source; Div_gen.source; Div_ext.source;
      Div_small.source;
    ]

let resolved () = Program.resolve_exn source
let machine () = Hppa_machine.Machine.create (resolved ())
let scheduled_source () = Delay.schedule source

let scheduled_machine () =
  Hppa_machine.Machine.create ~delay_slots:true
    (Program.resolve_exn (scheduled_source ()))

let entries =
  [ "mulI"; "muloI" ] @ Mul_var.entries @ Mul_ext.entries @ Div_gen.entries
  @ Div_ext.entries @ Div_small.entries

let mulI = "mulI"
let muloI = "muloI"
