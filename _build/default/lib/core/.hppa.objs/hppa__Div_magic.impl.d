lib/core/div_magic.ml: Format Hppa_word Int32 Int64 List
