(** Fixed-width 32-bit machine words.

    The HP Precision Architecture is a 32-bit two's-complement machine. OCaml's
    native [int] is 63-bit, so every register value in the reproduction is an
    [Int32.t] and this module supplies the unsigned views, carry/borrow
    chains, and overflow predicates the simulator and the reference models
    need.

    Conventions: a word has no intrinsic sign; functions are suffixed with the
    interpretation they apply ([u] = unsigned, [s] = signed two's complement).
    Carry/borrow follows the PA-RISC convention: for subtraction the PSW bit
    stores NOT-borrow, i.e. [1] means no borrow occurred. *)

type t = int32

val zero : t
val one : t
val minus_one : t

val min_signed : t
(** [0x8000_0000], the most negative two's-complement word. *)

val max_signed : t
(** [0x7fff_ffff]. *)

val max_unsigned : t
(** [0xffff_ffff] viewed as a word (equal to [minus_one]). *)

(** {1 Conversions} *)

val of_int : int -> t
(** Truncate an OCaml int to 32 bits. *)

val to_int_s : t -> int
(** Signed value, in [-2{^31}, 2{^31}). *)

val to_int_u : t -> int
(** Unsigned value, in [0, 2{^32}). Exact because OCaml ints are 63-bit. *)

val of_int64 : int64 -> t
val to_int64_u : t -> int64
val to_int64_s : t -> int64

(** {1 Predicates and comparisons} *)

val is_neg : t -> bool
val is_odd : t -> bool
val equal : t -> t -> bool
val compare_s : t -> t -> int
val compare_u : t -> t -> int
val lt_u : t -> t -> bool
val le_u : t -> t -> bool
val lt_s : t -> t -> bool
val le_s : t -> t -> bool

(** {1 Arithmetic with carry and overflow} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val add_carry : t -> t -> carry_in:bool -> t * bool
(** 32-bit add with carry-in; returns the sum and the carry-out. *)

val sub_borrow : t -> t -> borrow_in:bool -> t * bool
(** [sub_borrow a b ~borrow_in] computes [a - b - borrow_in]; the returned
    flag is the PA-RISC NOT-borrow convention inverted back to "borrow
    happened", i.e. [true] iff the unsigned subtraction wrapped. *)

val add_overflows_s : t -> t -> bool
(** Signed overflow of [a + b]. *)

val sub_overflows_s : t -> t -> bool
(** Signed overflow of [a - b]. *)

val abs : t -> t
(** Two's-complement absolute value; [abs min_signed = min_signed]. *)

(** {1 Shifts and bit fields} *)

val shl : t -> int -> t
(** Logical shift left; the amount is masked to [0..31]. *)

val shr_u : t -> int -> t
(** Logical (zero-filling) shift right. *)

val shr_s : t -> int -> t
(** Arithmetic (sign-filling) shift right. *)

val sh_add : int -> t -> t -> t
(** [sh_add k a b = (a << k) + b] — the shift-and-add primitive. [k] must be
    0..3 as on the real pre-shifter. *)

val sh_add_overflows : int -> t -> t -> bool
(** Exact signed-overflow predicate for [(a << k) + b], computed over the full
    35-bit value. Used as the reference against the cheap hardware check. *)

val sh_add_overflows_hw : int -> t -> t -> bool
(** The paper's cheap hardware overflow circuit: a plain 32-bit add is
    performed and overflow is flagged by comparing the sign bit of [a], the
    [k] bits shifted out of [a], the sign of the shifted operand, and the
    sign of the result. Sound for same-sign operands; may differ from
    {!sh_add_overflows} when operand signs differ (§4 of the paper). *)

val extract_u : t -> pos:int -> len:int -> t
(** Bits [pos .. pos+len-1] (0 = least significant), zero-extended.
    Requires [0 <= pos], [1 <= len], [pos + len <= 32]. *)

val extract_s : t -> pos:int -> len:int -> t
(** Same field, sign-extended from its top bit. *)

val deposit : t -> into:t -> pos:int -> len:int -> t
(** Insert the low [len] bits of the first argument into [into] at [pos]. *)

val bit : t -> int -> bool

(** {1 Bitwise} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** {1 Wide operations (reference models)} *)

val mul_lo : t -> t -> t
(** Low 32 bits of the product (same for signed/unsigned). *)

val mul_wide_u : t -> t -> t * t
(** Unsigned 64-bit product as [(hi, lo)]. *)

val mul_wide_s : t -> t -> t * t
(** Signed 64-bit product as [(hi, lo)]. *)

val mul_overflows_s : t -> t -> bool
(** True iff the signed product is not representable in 32 bits. *)

val divmod_u : t -> t -> t * t
(** Unsigned quotient and remainder. Raises [Division_by_zero]. *)

val divmod_trunc_s : t -> t -> t * t
(** Signed division truncating toward zero (C / Pascal / Fortran semantics).
    [divmod_trunc_s min_signed minus_one] wraps to [(min_signed, 0l)].
    Raises [Division_by_zero]. *)

(** {1 Formatting} *)

val to_hex : t -> string
(** Lower-case hex without prefix, e.g. ["55555555"]. *)

val pp : Format.formatter -> t -> unit
(** Signed decimal. *)

val pp_hex : Format.formatter -> t -> unit
