lib/isa/delay.mli: Program
