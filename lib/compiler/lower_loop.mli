(** Compiling counted loops — the §2 cost story executed, not estimated.

    A {!Loop_ir.t} (optionally with a strength-reduction preheader) compiles
    to a procedure so the multiply/divide cost of loop bodies can be
    {e measured} on the simulator: the paper's motivating examples — array
    subscripts that multiply by the counter, divisions an optimizer cannot
    remove — become runnable kernels.

    Compiled shape:

    {v proc(arg0 .. arg3 = the listed inputs):
        <preheader assignments>
        i := start
        while i < stop:  <body assignments>; i += step
        return the named result variable v}

    Loop variables live in callee-preserved registers (r3..r18 shared with
    the expression lowering); millicode calls inside the body therefore
    survive iterations. The loop control is the classic [ADDIB] idiom when
    [step] and the trip count allow, with a [COMB] fallback. *)

type t = {
  entry : string;
  source : Program.source;
  millicode_calls : int;  (** static call sites in the body *)
}

val compile :
  ?entry:string ->
  ?small_divisor_dispatch:bool ->
  ?width:Expr.width ->
  inputs:string list ->
  result:string ->
  ?preheader:Loop_ir.stmt list ->
  Loop_ir.t ->
  t
(** [inputs] are bound to [arg0..arg3] (at most 4); every other variable
    read by the body, the preheader or [result] starts at 0, matching
    {!Loop_ir.eval} with those inputs in [init]. Raises
    {!Lower.Unsupported} on register exhaustion and [Invalid_argument] on
    an invalid loop.

    [width] (default {!Expr.W32}) compiles the loop at the given width.
    At {!Expr.W64} every variable holds a dword in a callee-saved pair
    (at most 2 inputs, arriving in the arg pairs; result in
    (ret0:ret1)), matching {!Loop_ir.eval64}: the counter's high half is
    kept sign-extended and the loop control compares single words. *)

val compile_and_link :
  ?entry:string ->
  ?small_divisor_dispatch:bool ->
  ?width:Expr.width ->
  inputs:string list ->
  result:string ->
  ?preheader:Loop_ir.stmt list ->
  Loop_ir.t ->
  Program.resolved

val compile_reduced :
  ?entry:string ->
  ?small_divisor_dispatch:bool ->
  ?width:Expr.width ->
  inputs:string list ->
  result:string ->
  Strength.reduced ->
  t
(** Convenience: compile the output of {!Strength.reduce}. *)
