exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Operand scanning                                                    *)

type operand =
  | Oreg of Reg.t
  | Oimm of int32
  | Osym of string
  | Oindexed of operand * Reg.t (* disp(base) or x(base) *)

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

let split_operands s =
  (* split on top-level commas; parentheses never nest *)
  let parts = ref [] and buf = Buffer.create 16 in
  String.iter
    (fun c ->
      if c = ',' then (
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf)
      else Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map strip !parts |> List.filter (fun p -> p <> "")

let parse_imm s =
  match Int32.of_string_opt s with
  | Some v -> Some v
  | None -> (
      (* Int32.of_string already handles 0x/0o/0b and negatives; also accept
         unsigned hex that overflows the signed range, e.g. 0xffffffff. *)
      match Int64.of_string_opt s with
      | Some v when v >= 0L && v <= 0xffff_ffffL -> Some (Int64.to_int32 v)
      | Some _ | None -> None)

let is_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | '$' | '.' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' | '.' -> true
         | _ -> false)
       s

let rec parse_operand s =
  let s = strip s in
  if s = "" then fail "empty operand"
  else if s.[String.length s - 1] = ')' then (
    match String.index_opt s '(' with
    | None -> fail "unbalanced parenthesis in %S" s
    | Some i ->
        let inner = String.sub s (i + 1) (String.length s - i - 2) in
        let outer = String.sub s 0 i in
        let base =
          match Reg.of_name (strip inner) with
          | Some r -> r
          | None -> fail "bad base register %S" inner
        in
        Oindexed (parse_operand outer, base))
  else
    match Reg.of_name s with
    | Some r -> Oreg r
    | None -> (
        match parse_imm s with
        | Some v -> Oimm v
        | None ->
            if is_ident s then Osym s else fail "cannot parse operand %S" s)

let rec render_operand = function
  | Oreg r -> Reg.name r
  | Oimm v -> Int32.to_string v
  | Osym s -> s
  | Oindexed (o, base) ->
      Printf.sprintf "%s(%s)" (render_operand o) (Reg.name base)

let reg = function
  | Oreg r -> r
  | o -> fail "expected a register, got %S" (render_operand o)

let imm = function
  | Oimm v -> v
  | o -> fail "expected an immediate, got %S" (render_operand o)

let int_op o =
  let v = imm o in
  (* Field lengths reach 32; Insn.validate enforces per-field bounds. *)
  if v < 0l || v > 32l then fail "field value %ld out of 0..32" v
  else Int32.to_int v

let shift_op o =
  let v = int_op o in
  if v > 31 then fail "shift amount %d out of 0..31" v else v

let sym = function
  | Osym s -> s
  | Oreg r -> Reg.name r (* a label can collide with a register alias *)
  | o -> fail "expected a label, got %S" (render_operand o)

(* ------------------------------------------------------------------ *)
(* Instruction parsing                                                 *)

let alu_of_mnemonic = function
  | "add" -> Some Insn.Add
  | "addc" -> Some Insn.Addc
  | "sub" -> Some Insn.Sub
  | "subb" -> Some Insn.Subb
  | "sh1add" -> Some (Insn.Shadd 1)
  | "sh2add" -> Some (Insn.Shadd 2)
  | "sh3add" -> Some (Insn.Shadd 3)
  | "and" -> Some Insn.And
  | "or" -> Some Insn.Or
  | "xor" -> Some Insn.Xor
  | "andcm" -> Some Insn.Andcm
  | _ -> None

let cond_of modifier =
  match Cond.of_string modifier with
  | Some c -> c
  | None -> fail "unknown condition %S" modifier

let parse_insn mnem ops : string Insn.t list =
  let base, modifiers =
    match String.split_on_char ',' mnem with
    | [] -> (mnem, [])
    | base :: mods -> (base, mods)
  in
  (* The trailing ",n" (delay-slot nullify) may follow a condition. *)
  let nullify_slot, modifiers =
    match List.rev modifiers with
    | "n" :: rest -> (true, List.rev rest)
    | _ -> (false, modifiers)
  in
  let modifier =
    match modifiers with
    | [] -> None
    | [ m ] -> Some m
    | _ -> fail "too many modifiers on %S" mnem
  in
  let branch_n () = nullify_slot in
  let check_no_n () =
    if nullify_slot then fail "%s does not take ,n" base
  in
  let trap_ov () =
    check_no_n ();
    match modifier with
    | Some "o" -> true
    | Some m -> fail "unknown modifier %S" m
    | None -> false
  in
  let cond () = match modifier with Some m -> cond_of m | None -> fail "%s requires a condition" base in
  let no_modifier_cond () =
    match modifier with
    | Some m -> fail "%s takes no modifier %S" base m
    | None -> ()
  in
  let no_modifier () =
    check_no_n ();
    match modifier with Some m -> fail "%s takes no modifier %S" base m | None -> ()
  in
  match (alu_of_mnemonic base, ops) with
  | Some op, [ a; b; t ] ->
      [ Insn.Alu { op; a = reg a; b = reg b; t = reg t; trap_ov = trap_ov () } ]
  | Some _, _ -> fail "%s expects 3 register operands" base
  | None, _ -> (
      match (base, ops) with
      | "ds", [ a; b; t ] ->
          no_modifier ();
          [ Insn.Ds { a = reg a; b = reg b; t = reg t } ]
      | "addi", [ i; a; t ] ->
          [ Insn.Addi { imm = imm i; a = reg a; t = reg t; trap_ov = trap_ov () } ]
      | "subi", [ i; a; t ] ->
          [ Insn.Subi { imm = imm i; a = reg a; t = reg t; trap_ov = trap_ov () } ]
      | "comclr", [ a; b; t ] ->
          [ Insn.Comclr { cond = cond (); a = reg a; b = reg b; t = reg t } ]
      | "comiclr", [ i; a; t ] ->
          [ Insn.Comiclr { cond = cond (); imm = imm i; a = reg a; t = reg t } ]
      | "extru", [ r; p; l; t ] ->
          let cond = match modifier with None -> Cond.Never | Some m -> cond_of m in
          [ Insn.Extr { signed = false; r = reg r; pos = int_op p; len = int_op l; t = reg t; cond } ]
      | "extrs", [ r; p; l; t ] ->
          let cond = match modifier with None -> Cond.Never | Some m -> cond_of m in
          [ Insn.Extr { signed = true; r = reg r; pos = int_op p; len = int_op l; t = reg t; cond } ]
      | "zdep", [ r; p; l; t ] ->
          no_modifier ();
          [ Insn.Zdep { r = reg r; pos = int_op p; len = int_op l; t = reg t } ]
      | "shl", [ r; k; t ] ->
          no_modifier ();
          [ Emit.shl (reg r) (shift_op k) (reg t) ]
      | "shr", [ r; k; t ] ->
          no_modifier ();
          [ Emit.shr_u (reg r) (shift_op k) (reg t) ]
      | "sar", [ r; k; t ] ->
          no_modifier ();
          [ Emit.shr_s (reg r) (shift_op k) (reg t) ]
      | "shd", [ a; b; sa; t ] ->
          no_modifier ();
          [ Insn.Shd { a = reg a; b = reg b; sa = shift_op sa; t = reg t } ]
      | "ldil", [ i; t ] ->
          no_modifier ();
          [ Insn.Ldil { imm = imm i; t = reg t } ]
      | "ldo", [ Oindexed (d, base); t ] ->
          no_modifier ();
          [ Insn.Ldo { imm = imm d; base; t = reg t } ]
      | "ldi", [ i; t ] ->
          no_modifier ();
          Emit.ldi (imm i) (reg t)
      | "copy", [ a; t ] ->
          no_modifier ();
          [ Emit.copy (reg a) (reg t) ]
      | "ldw", [ Oindexed (d, base); t ] ->
          no_modifier ();
          [ Insn.Ldw { disp = imm d; base; t = reg t } ]
      | "stw", [ r; Oindexed (d, base) ] ->
          no_modifier ();
          [ Insn.Stw { r = reg r; disp = imm d; base } ]
      | "ldaddr", [ s; t ] ->
          no_modifier ();
          [ Insn.Ldaddr { target = sym s; t = reg t } ]
      | "comb", [ a; b; t ] ->
          [ Insn.Comb { cond = cond (); a = reg a; b = reg b; target = sym t; n = branch_n () } ]
      | "comib", [ i; a; t ] ->
          [ Insn.Comib { cond = cond (); imm = imm i; a = reg a; target = sym t; n = branch_n () } ]
      | "addib", [ i; a; t ] ->
          [ Insn.Addib { cond = cond (); imm = imm i; a = reg a; target = sym t; n = branch_n () } ]
      | "b", [ t ] ->
          no_modifier_cond ();
          [ Insn.B { target = sym t; n = branch_n () } ]
      | "bl", [ tgt; t ] ->
          no_modifier_cond ();
          [ Insn.Bl { target = sym tgt; t = reg t; n = branch_n () } ]
      | "blr", [ x; t ] ->
          no_modifier_cond ();
          [ Insn.Blr { x = reg x; t = reg t; n = branch_n () } ]
      | "bv", [ Oindexed (x, base) ] ->
          no_modifier_cond ();
          [ Insn.Bv { x = reg x; base; n = branch_n () } ]
      | "break", [ c ] ->
          no_modifier ();
          [ Insn.Break { code = int_op c } ]
      | "nop", [] ->
          no_modifier ();
          [ Insn.Nop ]
      | _, _ -> fail "unknown instruction %S with %d operand(s)" mnem (List.length ops))

(* ------------------------------------------------------------------ *)
(* Lines and files                                                     *)

let strip_comment line =
  let cut = ref (String.length line) in
  (match String.index_opt line ';' with Some i -> cut := min !cut i | None -> ());
  (match String.index_opt line '#' with Some i -> cut := min !cut i | None -> ());
  String.sub line 0 !cut

let parse_line line : Program.item list =
  let line = strip (strip_comment line) in
  if line = "" then []
  else
    let labels = ref [] in
    let rest = ref line in
    let continue = ref true in
    while !continue do
      match String.index_opt !rest ':' with
      | Some i
        when i > 0
             && is_ident (String.sub !rest 0 i)
             && not (String.contains (String.sub !rest 0 i) ' ') ->
          labels := String.sub !rest 0 i :: !labels;
          rest := strip (String.sub !rest (i + 1) (String.length !rest - i - 1))
      | Some _ | None -> continue := false
    done;
    let items = List.rev_map (fun l -> Program.Label l) !labels in
    if !rest = "" then items
    else
      let mnem, operand_text =
        match String.index_opt !rest ' ' with
        | None -> (!rest, "")
        | Some i ->
            ( String.sub !rest 0 i,
              String.sub !rest (i + 1) (String.length !rest - i - 1) )
      in
      let ops = List.map parse_operand (split_operands operand_text) in
      items @ List.map (fun i -> Program.Insn i) (parse_insn (String.lowercase_ascii mnem) ops)

let parse text =
  let lines = String.split_on_char '\n' text in
  try
    Ok
      (List.concat
         (List.mapi
            (fun idx line ->
              try parse_line line
              with Parse_error msg ->
                fail "line %d: %s" (idx + 1) msg)
            lines))
  with Parse_error msg -> Error msg

let parse_exn text =
  match parse text with Ok p -> p | Error msg -> invalid_arg ("Asm.parse_exn: " ^ msg)

let print src = Format.asprintf "%a@." Program.pp_source src
