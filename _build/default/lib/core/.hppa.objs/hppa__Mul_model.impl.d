lib/core/mul_model.ml: Array Hppa_word List
