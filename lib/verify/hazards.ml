let err addr fmt =
  Format.kasprintf (fun m -> Findings.v ~addr Findings.Delay_hazard m) fmt

let warn addr fmt =
  Format.kasprintf
    (fun m -> Findings.v ~severity:Findings.Warning ~addr Findings.Delay_hazard m)
    fmt

let check cfg =
  let prog = Cfg.program cfg in
  let code = prog.Program.code in
  let n_insns = Array.length code in
  let out = ref [] in
  let emit f = out := f :: !out in
  (match (Cfg.options cfg).Cfg.mode with
  | Cfg.Simple ->
      Array.iteri
        (fun addr i ->
          if Insn.is_branch i && Insn.get_n i then
            emit
              (warn addr
                 "%s carries a ,n completer but the simple model has no delay \
                  slot to nullify"
                 (Insn.mnemonic i)))
        code
  | Cfg.Delay_slot ->
      Array.iteri
        (fun addr i ->
          if Insn.is_branch i then
            if addr + 1 >= n_insns then
              emit
                (warn addr
                   "trailing %s has no delay slot: its slot fetch runs off the \
                    image"
                   (Insn.mnemonic i))
            else if not (Insn.get_n i) then begin
              let slot = code.(addr + 1) in
              if Insn.is_branch slot then
                emit
                  (err (addr + 1) "branch %s in the delay slot of %s"
                     (Insn.mnemonic slot) (Insn.mnemonic i));
              if Delay.is_nullifier slot then
                emit
                  (err (addr + 1)
                     "nullifying %s in the delay slot of %s would annul the \
                      branch target" (Insn.mnemonic slot) (Insn.mnemonic i));
              if Delay.may_trap slot then
                emit
                  (err (addr + 1)
                     "%s may trap inside the delay slot of %s, reporting the \
                      wrong PC" (Insn.mnemonic slot) (Insn.mnemonic i));
              if addr > 0 && Delay.is_nullifier code.(addr - 1) then
                emit
                  (err addr
                     "filled branch %s sits in the shadow of nullifying %s: \
                      annulment would skip the branch but not its hoisted slot"
                     (Insn.mnemonic i)
                     (Insn.mnemonic code.(addr - 1)))
            end)
        code);
  List.rev !out
