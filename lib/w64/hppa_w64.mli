(** High-level interface to the double-word (W64) millicode family.

    The paper's routines operate on single 32-bit words; this library's
    W64 family ({!Hppa.Mul_w64}, {!Hppa.Div_w64}) lifts them to 64-bit
    operands passed as (hi:lo) register pairs — X in (arg0:arg1), Y in
    (arg2:arg3). This module packs [int64] values into that convention,
    runs the entries on a {!Hppa_machine.Machine} (scalar or batched),
    and provides the bit-exact two-word OCaml reference the differential
    suites pin against. *)

type op = Mul | Div | Rem

val entry : signed:bool -> op -> string
(** The millicode entry implementing the operation: [mulU128]/[mulI128]
    (full 128-bit product), [divU64w]/[divI64w], [remU64w]/[remI64w]
    (truncating 64/64 divide and remainder). *)

val entries : string list
(** All six public W64 entries. *)

val op_of_entry : string -> op
(** Inverse of {!entry}; raises [Invalid_argument] off the family. *)

val signed_entry : string -> bool
(** Whether the entry is the signed variant. *)

(** {1 Register pairs} *)

val hi32 : int64 -> Hppa_word.Word.t
val lo32 : int64 -> Hppa_word.Word.t

val join : Hppa_word.Word.t -> Hppa_word.Word.t -> int64
(** [join hi lo] reassembles a dword from a register pair. *)

val operands : int64 -> int64 -> Hppa_word.Word.t list
(** [operands x y] is the four-word argument list
    [[hi32 x; lo32 x; hi32 y; lo32 y]] matching the W64 calling
    convention. *)

val divl_entry : string
(** ["divU128by64"], the three-operand 128/64 divide. *)

val operands_divl : xhi:int64 -> xlo:int64 -> int64 -> Hppa_word.Word.t list
(** The six-word argument list of {!divl_entry}: the 128-bit dividend
    [(xhi:xlo)] in the two arg pairs and the divisor in (ret0:ret1). *)

(** {1 Reference model and execution} *)

(** Every entry leaves two architectural result dwords: [ret] in
    (ret0:ret1) — the product's high dword, the quotient, or the
    remainder — and [arg] in (arg0:arg1) — the product's low dword for
    the multiplies, the remainder for the divide/rem entries. *)
type outcome =
  | Value of { ret : int64; arg : int64 }
  | Trap of Hppa_machine.Trap.t
  | Fuel

val outcome_equal : outcome -> outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

val reference : string -> int64 -> int64 -> outcome
(** The two-word OCaml model of the named entry, including its trap
    behaviour (divide by zero breaks with
    {!Hppa_machine.Trap.divide_by_zero_code}; signed [-2{^63} / -1]
    breaks with {!Hppa.Div_ext.overflow_break_code}). *)

val reference_divl : xhi:int64 -> xlo:int64 -> int64 -> outcome
(** The OCaml model of {!divl_entry} over {!Hppa_word.U128}: quotient
    dword in [ret], remainder in [arg]; divide by zero breaks with
    {!Hppa_machine.Trap.divide_by_zero_code} and a dividend high dword
    [>=] the divisor (unrepresentable quotient) with
    {!Hppa.Div_ext.overflow_break_code}. *)

val read_outcome :
  get:(Reg.t -> Hppa_word.Word.t) -> Hppa_machine.Cpu.outcome -> outcome
(** Decode a machine outcome through a register reader (scalar machine
    or one batch lane). *)

val call : ?fuel:int -> Hppa_machine.Machine.t -> string -> x:int64 -> y:int64 -> outcome
(** Pack the operands, call the entry, decode the result dwords. *)

val call_cycles :
  ?fuel:int -> Hppa_machine.Machine.t -> string -> x:int64 -> y:int64 -> outcome * int
(** {!call} plus the cycle count of the call. *)

val call_divl :
  ?fuel:int ->
  Hppa_machine.Machine.t ->
  xhi:int64 ->
  xlo:int64 ->
  int64 ->
  outcome
(** Pack the three operand dwords, call {!divl_entry}, decode the
    quotient/remainder dwords. *)

val call_divl_cycles :
  ?fuel:int ->
  Hppa_machine.Machine.t ->
  xhi:int64 ->
  xlo:int64 ->
  int64 ->
  outcome * int
(** {!call_divl} plus the cycle count of the call. *)

val batch_outcome : Hppa_machine.Machine.Batch.t -> lane:int -> outcome
(** Decode one lane of a batched dispatch. *)
