(* Register sets as 32-bit masks indexed by register number. *)
let mask r = 1 lsl Reg.to_int r
let mem r set = set land mask r <> 0
let of_list = List.fold_left (fun s r -> s lor mask r) 0
let all_regs = 0xFFFF_FFFF

(* Definedness state: a must-analysis point — [regs] the registers, [c]/[v]
   the PSW carry and overflow bits, certainly written on every path. *)
type state = { regs : int; c : bool; v : bool }

let meet a b = { regs = a.regs land b.regs; c = a.c && b.c; v = a.v && b.v }
let state_equal a b = a.regs = b.regs && a.c = b.c && a.v = b.v

(* PSW effects, mirroring [Machine.alu_result]: the add/sub family writes
   carry; plain ADD/SUB (and their immediate forms) also clear V; ADDC,
   SUBB and SHxADD leave V alone; DS reads and writes both. ADDIB updates
   its counter without touching the PSW. *)
let writes_c : int Insn.t -> bool = function
  | Alu { op = Add | Addc | Sub | Subb | Shadd _; _ } | Addi _ | Subi _ | Ds _
    ->
      true
  | _ -> false

let writes_v : int Insn.t -> bool = function
  | Alu { op = Add | Sub; _ } | Addi _ | Subi _ | Ds _ -> true
  | _ -> false

let reads_c : int Insn.t -> bool = function
  | Alu { op = Addc | Subb; _ } | Ds _ -> true
  | _ -> false

let reads_v : int Insn.t -> bool = function Ds _ -> true | _ -> false

(* Writers with no effect beyond their target register: safe to call dead
   when the target is. Anything that sets PSW bits, may nullify, may trap,
   links, or touches memory stays off this list. *)
let pure_write : int Insn.t -> bool = function
  | Ldil _ | Ldo _ | Zdep _ | Shd _ | Ldaddr _ -> true
  | Extr { cond; _ } -> Cond.equal cond Cond.Never
  | Alu { op = And | Or | Xor | Andcm; trap_ov; _ } -> not trap_ov
  | _ -> false

type t = {
  cfg : Cfg.t;
  entry : int;
  spec : Cfg.spec;
  nodes : Cfg.node list;
  ins : (Cfg.node, state) Hashtbl.t;
  live_out : (Cfg.node, int) Hashtbl.t;
}

let transfer cfg node (s : state) =
  match node with
  | Cfg.Summary _ | Cfg.Tail _ ->
      let unspec = of_list (Cfg.unspecifies cfg node) in
      let res = of_list (Cfg.defines cfg node) in
      { regs = s.regs land lnot unspec lor res; c = false; v = false }
  | Cfg.Insn a | Cfg.Slot (a, _) ->
      let i = Cfg.insn cfg a in
      {
        regs = s.regs lor of_list (Cfg.defines cfg node);
        c = s.c || writes_c i;
        v = s.v || writes_v i;
      }

let analyze cfg ~entry =
  let spec = Cfg.spec_at cfg entry in
  let nodes = Cfg.reachable cfg ~entries:[ entry ] in
  (* Forward must-defined fixpoint. States only shrink under [meet], so the
     worklist terminates. *)
  let ins = Hashtbl.create 256 in
  let entry_node = Cfg.Insn entry in
  let entry_state =
    {
      regs = of_list (Reg.r0 :: Reg.rp :: Reg.sp :: Reg.mrp :: spec.args);
      c = false;
      v = false;
    }
  in
  Hashtbl.replace ins entry_node entry_state;
  let work = Queue.create () in
  Queue.add entry_node work;
  while not (Queue.is_empty work) do
    let n = Queue.pop work in
    let out = transfer cfg n (Hashtbl.find ins n) in
    List.iter
      (function
        | Cfg.Step s -> (
            match Hashtbl.find_opt ins s with
            | None ->
                Hashtbl.replace ins s out;
                Queue.add s work
            | Some old ->
                let m = meet old out in
                if not (state_equal m old) then begin
                  Hashtbl.replace ins s m;
                  Queue.add s work
                end)
        | _ -> ())
      (Cfg.succs cfg n)
  done;
  (* Backward may-live fixpoint, round-robin in reverse discovery order.
     Only certain definitions kill: a summary's possible clobbers stay
     live. *)
  let live_in = Hashtbl.create 256 in
  let live_out = Hashtbl.create 256 in
  let get tbl n = Option.value ~default:0 (Hashtbl.find_opt tbl n) in
  let ret_live = of_list (Reg.rp :: Reg.sp :: spec.results) in
  let rev_nodes = List.rev nodes in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        let out =
          List.fold_left
            (fun acc e ->
              match e with
              | Cfg.Step s -> acc lor get live_in s
              | Cfg.Ret -> acc lor ret_live
              | Cfg.Trap | Cfg.Off_image | Cfg.Indirect -> acc lor all_regs)
            0 (Cfg.succs cfg n)
        in
        let inn =
          out land lnot (of_list (Cfg.defines cfg n))
          lor of_list (Cfg.reads cfg n)
        in
        if get live_out n <> out || get live_in n <> inn then begin
          Hashtbl.replace live_out n out;
          Hashtbl.replace live_in n inn;
          changed := true
        end)
      rev_nodes
  done;
  { cfg; entry; spec; nodes; ins; live_out }

let finding t ?severity check addr fmt =
  Format.kasprintf
    (fun message -> Findings.v ?severity ~routine:t.spec.name ?addr check message)
    fmt

let node_addr n =
  match Cfg.addr_of n with
  | Some a -> Some a
  | None -> ( match n with Cfg.Summary c -> Some c | _ -> None)

let use_before_def t =
  List.concat_map
    (fun n ->
      match Hashtbl.find_opt t.ins n with
      | None -> []
      | Some s ->
          let addr = node_addr n in
          let regs =
            List.filter_map
              (fun r ->
                if mem r s.regs then None
                else
                  Some
                    (finding t Findings.Use_before_def addr
                       "%a may be read before it is defined" Reg.pp r))
              (Cfg.reads t.cfg n)
          in
          let psw =
            match n with
            | Cfg.Summary _ | Cfg.Tail _ -> []
            | Cfg.Insn a | Cfg.Slot (a, _) ->
                let i = Cfg.insn t.cfg a in
                (if reads_c i && not s.c then
                   [
                     finding t Findings.Psw_before_def addr
                       "%s reads the carry bit before any instruction sets it"
                       (Insn.mnemonic i);
                   ]
                 else [])
                @
                if reads_v i && not s.v then
                  [
                    finding t Findings.Psw_before_def addr
                      "%s reads the V bit before any instruction sets it"
                      (Insn.mnemonic i);
                  ]
                else []
          in
          regs @ psw)
    t.nodes

let dead_writes t =
  List.filter_map
    (fun n ->
      match n with
      | Cfg.Summary _ | Cfg.Tail _ -> None
      | Cfg.Insn a | Cfg.Slot (a, _) -> (
          let i = Cfg.insn t.cfg a in
          match Cfg.defines t.cfg n with
          | [ r ] when pure_write i ->
              let out = Option.value ~default:0 (Hashtbl.find_opt t.live_out n) in
              if mem r out then None
              else
                Some
                  (finding t ~severity:Findings.Warning Findings.Dead_write
                     (Some a) "%a is written but never read" Reg.pp r)
          | _ -> None))
    t.nodes

let undefined_results t =
  List.concat_map
    (fun n ->
      if List.exists (function Cfg.Ret -> true | _ -> false) (Cfg.succs t.cfg n)
      then
        match Hashtbl.find_opt t.ins n with
        | None -> []
        | Some s ->
            let out = transfer t.cfg n s in
            List.filter_map
              (fun r ->
                if mem r out.regs then None
                else
                  Some
                    (finding t Findings.Convention (node_addr n)
                       "result %a is not defined on this return path" Reg.pp r))
              t.spec.results
      else [])
    t.nodes

let check cfg ~entry =
  let t = analyze cfg ~entry in
  use_before_def t @ dead_writes t @ undefined_results t
