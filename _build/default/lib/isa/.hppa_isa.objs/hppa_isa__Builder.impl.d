lib/isa/builder.ml: List Printf Program
