lib/compiler/lower.mli: Builder Expr Program Reg
