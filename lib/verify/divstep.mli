(** Certifier for the unrolled non-restoring divide-step millicode
    (§4 of the paper): the 32 ADDC/DS steps with zero-check, signed
    magnitude prologue/epilogue and remainder variants.

    Unlike {!Reciprocal}, which proves an algebraic bound, this
    certifier matches the routine {e structurally} against the exact
    schema the generator emits — zero-divisor trap, optional signed
    prologue, the 32 unrolled steps over a consistently-assigned
    register role set, quotient-bit fixup, optional signed epilogue and
    remainder move — with every role register pairwise distinct and
    disjoint from the calling convention. Any deviation yields
    [Unknown]; a match yields a {!Certificate.kind.Divide_step}
    certificate. *)

val certify :
  Cfg.t ->
  entry:int ->
  name:string ->
  signed:bool ->
  want_rem:bool ->
  Reciprocal.verdict
(** [certify cfg ~entry ~name ~signed ~want_rem] matches the routine
    entered at [entry] against the divide-step schema. [name] labels
    the certificate. *)
