(** Binary instruction encoding.

    Each instruction packs into one 32-bit word with a 6-bit major opcode,
    documented field by field in the implementation. The layout is this
    project's own (simpler than the historical PA-RISC bit assignments, which
    the paper does not depend on), but it enforces the same field widths the
    architecture grants: 14-bit [ADDI]/[LDO] immediates, 11-bit [SUBI], 5-bit
    [COMIB]/[ADDIB] immediates, 12-bit PC-relative conditional-branch
    displacements and 17-bit unconditional ones.

    Branch targets are stored PC-relative, so encoding operates on resolved
    instructions at a known address. *)

val encode : addr:int -> int Insn.t -> (int32, string) result
(** Fails when a field exceeds its width (e.g. a branch out of displacement
    range); such programs would not assemble on the real machine either. *)

val decode : addr:int -> int32 -> (int Insn.t, string) result
val encode_program : Program.resolved -> (int32 array, string) result
val decode_program : int32 array -> (int Insn.t array, string) result
