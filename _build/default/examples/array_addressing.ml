(* Array addressing: the paper's opening motivation (section 2).

     a = structureA[x][y].b;

   on a machine without multiply hardware requires two multiplications:
   x * y * sizeof(structureA)  -- really  (x * COLS + y) * SIZE  -- and
   FORTRAN-style code where the ranks are runtime parameters cannot even
   constant-fold them. This example compiles both shapes with the
   mini-compiler and shows where the multiplies went: constant strides
   become inline shift-and-add chains, runtime strides become millicode
   calls.

   Run with:  dune exec examples/array_addressing.exe *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
open Hppa_compiler

let cols = 17l (* columns of structureA *)
let size = 12l (* sizeof(structureA[0][0]) *)

let run_expr name prog entry args env expr =
  let mach = Machine.create prog in
  match Machine.call_cycles mach entry ~args with
  | Machine.Halted, cycles ->
      let got = Machine.get mach Reg.ret0 in
      let want = Expr.eval ~env expr in
      Format.printf "%-28s = %-10ld (%3d cycles)%s@." name got cycles
        (if Word.equal got want then "" else "  MISMATCH")
  | (Machine.Trapped _ | Machine.Fuel_exhausted), _ ->
      Format.printf "%-28s failed@." name

let () =
  Format.printf "strides: %ld columns x %ld bytes per element@.@." cols size;

  (* C shape: both strides are compile-time constants. *)
  let addr_const =
    Expr.Mul (Add (Mul (Var "x", Const cols), Var "y"), Const size)
  in
  let unit_ = Lower.compile ~entry:"addr_const" ~params:[ "x"; "y" ] addr_const in
  Format.printf
    "constant strides: %d inline chain multiplies, %d millicode calls@."
    unit_.inline_multiplies unit_.millicode_calls;
  let prog =
    Program.resolve_exn (Program.concat [ unit_.source; Hppa.Millicode.source ])
  in
  let env v = if v = "x" then 41l else 29l in
  run_expr "addr_const(41, 29)" prog "addr_const" [ 41l; 29l ] env addr_const;

  (* FORTRAN shape: the rank arrives as a parameter, so the inner multiply
     must go through the millicode. *)
  let addr_var =
    Expr.Mul (Add (Mul (Var "x", Var "cols"), Var "y"), Const size)
  in
  let unit_ = Lower.compile ~entry:"addr_var" ~params:[ "x"; "y"; "cols" ] addr_var in
  Format.printf
    "@.runtime rank:     %d inline chain multiplies, %d millicode calls@."
    unit_.inline_multiplies unit_.millicode_calls;
  let prog =
    Program.resolve_exn (Program.concat [ unit_.source; Hppa.Millicode.source ])
  in
  let env v = match v with "x" -> 41l | "y" -> 29l | _ -> cols in
  run_expr "addr_var(41, 29, 17)" prog "addr_var" [ 41l; 29l; cols ] env addr_var;

  (* The pointer-difference division of section 2:
       diff = &structureB[x] - &structureB[y]   (in elements). *)
  Format.printf "@.pointer difference (division by sizeof = %ld):@." size;
  let diff =
    Expr.Div (Sub (Mul (Var "px", Const size), Mul (Var "py", Const size)), Const size)
  in
  let unit_ = Lower.compile ~entry:"ptr_diff" ~params:[ "px"; "py" ] diff in
  let prog =
    Program.resolve_exn (Program.concat [ unit_.source; Hppa.Millicode.source ])
  in
  let env v = if v = "px" then 1000l else 977l in
  run_expr "ptr_diff(1000, 977)" prog "ptr_diff" [ 1000l; 977l ] env diff
