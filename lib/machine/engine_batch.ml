(* Batched (structure-of-arrays) execution engine.

   The scalar engine ({!Engine}) pays its translation once but still
   dispatches every closure once per instruction per request. For the
   paper's kernels — tiny straight-line or loop bodies — that dispatch
   dominates the arithmetic. This engine translates the program once
   into closures that each execute one instruction for a whole *cohort*
   of lanes, so the closure call, the mnemonic bookkeeping and the
   branch-target checks are paid once per instruction per batch.

   Layout: register state is one unboxed [int array] per architectural
   register ([rf.(reg).(lane)]), carrying the same unsigned 32-bit
   representation as the scalar engine; slot 0 is the hardwired zero and
   slot 32 the write sink for r0 targets. PSW bits, nullify flags, PCs,
   fuel and cycle counters are parallel per-lane arrays. Per-lane memory
   images are allocated only when the program actually loads or stores.

   Divergence: lanes are scheduled as min-PC cohorts. Each round the
   scheduler gathers every running lane at the lowest PC and dispatches
   the superblock (or a single instruction when some lane's fuel cannot
   cover the block) for all of them at once; lanes that branch apart
   simply land in different future cohorts and reconverge by PC order.
   Because lanes never share state, cohort order cannot affect any
   lane's result — each lane observes exactly the scalar semantics.

   Traps and fuel are per-lane: a compiled closure records a trapping
   lane's [Trap.t] (PC left on the trapping instruction, the instruction
   itself counted executed, like the scalar engine) and compacts it out
   of the cohort so its neighbours proceed; fuel exhaustion and the halt
   sentinel likewise retire single lanes. Statistics parity: per-lane
   cycle counters match the scalar engine's cycle accounting lane for
   lane, and the aggregate mnemonic histogram equals the sum of the
   corresponding scalar runs. Instances are not thread-safe; give each
   domain its own. *)

module Word = Hppa_word.Word
module Obs = Hppa_obs.Obs

let u32 = 0xffff_ffff
let sign = 0x8000_0000

(* Unsigned representation -> signed value, as a native int. *)
let sext v = (v lxor sign) - sign

(* Lane status codes. *)
let s_running = 0
let s_halted = 1
let s_fuel = 2
let s_trapped = 3

type counters = { lanes_run : int; lanes_trapped : int; dispatches : int }

type t = {
  prog : Program.resolved;
  lanes : int;
  mem_words : int;
  rf : int array array;  (* 33 registers x lanes; .(0) zero, .(32) sink *)
  lmem : int array array;  (* lanes x mem_words, [||] when unused *)
  lcarry : bool array;
  lv : bool array;
  lnull : bool array;
  lpc : int array;
  lfuel : int array;  (* negative = infinite, like the scalar engine *)
  lcyc : int array;  (* cycles of the current/last run *)
  lstatus : int array;
  ltrap : Trap.t array;
  mutable width : int;  (* lanes active in the last call *)
  stats : Stats.t;
  c_lanes : Obs.Counter.t;
  c_trapped : Obs.Counter.t;
  c_dispatches : Obs.Counter.t;
  go : int -> unit;  (* run [width] lanes from their per-lane PCs *)
}

(* A compiled instruction executes one opcode for lanes[0..k-1] and
   returns the surviving count: trapping (or halting) lanes are recorded
   and compacted out in place. [Body] never touches per-lane PCs — its
   successor is implicit; [Term] writes each survivor's next PC. *)
type compiled =
  | Body of (int array -> int -> int)
  | Term of (int array -> int -> int)

(* [Cond.eval] specialised to the unsigned-int representation, exactly
   as in the scalar engine. *)
let cond_fn (c : Cond.t) : int -> int -> bool =
  match c with
  | Never -> fun _ _ -> false
  | Always -> fun _ _ -> true
  | Eq -> fun a b -> a = b
  | Neq -> fun a b -> a <> b
  | Lt -> fun a b -> sext a < sext b
  | Le -> fun a b -> sext a <= sext b
  | Gt -> fun a b -> sext b < sext a
  | Ge -> fun a b -> sext b <= sext a
  | Ult -> fun a b -> a < b
  | Ule -> fun a b -> a <= b
  | Ugt -> fun a b -> b < a
  | Uge -> fun a b -> b <= a
  | Odd -> fun a b -> (a - b) land 1 = 1
  | Even -> fun a b -> (a - b) land 1 = 0

let create ?(mem_bytes = 65536) ?obs ?(obs_labels = []) ~lanes
    (prog : Program.resolved) =
  if lanes <= 0 then invalid_arg "Engine_batch.create: lanes must be positive";
  let code = prog.code in
  let len = Array.length code in
  let mem_words = (mem_bytes + 3) / 4 in
  let uses_mem =
    Array.exists
      (function Insn.Ldw _ | Insn.Stw _ -> true | _ -> false)
      code
  in
  let lmem =
    if uses_mem then Array.init lanes (fun _ -> Array.make mem_words 0)
    else [||]
  in
  let rf = Array.init 33 (fun _ -> Array.make lanes 0) in
  let lcarry = Array.make lanes false in
  let lv = Array.make lanes false in
  let lnull = Array.make lanes false in
  let lpc = Array.make lanes 0 in
  let lfuel = Array.make lanes 0 in
  let lcyc = Array.make lanes 0 in
  let lstatus = Array.make lanes s_halted in
  let ltrap = Array.make lanes (Trap.Break 0) in
  (* Interned mnemonics: closures count cohort sizes into a dense array. *)
  let ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rev_names = ref [] in
  let intern m =
    match Hashtbl.find_opt ids m with
    | Some id -> id
    | None ->
        let id = Hashtbl.length ids in
        Hashtbl.add ids m id;
        rev_names := m :: !rev_names;
        id
  in
  let mid = Array.map (fun i -> intern (Insn.mnemonic i)) code in
  let names = Array.of_list (List.rev !rev_names) in
  let mc = Array.make (max (Array.length names) 1) 0 in
  (* Per-run aggregates, reset by [go]. *)
  let nulls = ref 0 and taken = ref 0 and disp = ref 0 in
  let trap l pcv tr =
    lstatus.(l) <- s_trapped;
    ltrap.(l) <- tr;
    lpc.(l) <- pcv
  in
  let ri rg = Reg.to_int rg in
  let wi rg = let i = Reg.to_int rg in if i = 0 then 32 else i in
  let iu (imm : int32) = Int32.to_int imm land u32 in
  let compile pc (insn : int Insn.t) : compiled =
    let n = mid.(pc) in
    match insn with
    | Alu { op; a; b; t = d; trap_ov } -> (
        let ra = rf.(ri a) and rb = rf.(ri b) and rd = rf.(wi d) in
        match op with
        | Add ->
            if trap_ov then
              Body (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  let j = ref 0 in
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    let av = ra.(l) and bv = rb.(l) in
                    let w = av + bv in
                    lcarry.(l) <- w > u32;
                    lv.(l) <- false;
                    let s = w land u32 in
                    if
                      (av lxor bv) land sign = 0
                      && (av lxor s) land sign <> 0
                    then trap l pc Trap.Overflow
                    else begin
                      rd.(l) <- s;
                      ln.(!j) <- l;
                      incr j
                    end
                  done;
                  !j)
            else
              Body (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    let w = ra.(l) + rb.(l) in
                    lcarry.(l) <- w > u32;
                    lv.(l) <- false;
                    rd.(l) <- w land u32
                  done;
                  k)
        | Addc ->
            if trap_ov then
              Body (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  let j = ref 0 in
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    let av = ra.(l) and bv = rb.(l) in
                    let ci = if lcarry.(l) then 1 else 0 in
                    let w = av + bv + ci in
                    lcarry.(l) <- w > u32;
                    let wide = sext av + sext bv + ci in
                    if wide < -0x8000_0000 || wide > 0x7fff_ffff then
                      trap l pc Trap.Overflow
                    else begin
                      rd.(l) <- w land u32;
                      ln.(!j) <- l;
                      incr j
                    end
                  done;
                  !j)
            else
              Body (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    let w =
                      ra.(l) + rb.(l) + (if lcarry.(l) then 1 else 0)
                    in
                    lcarry.(l) <- w > u32;
                    rd.(l) <- w land u32
                  done;
                  k)
        | Sub ->
            if trap_ov then
              Body (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  let j = ref 0 in
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    let av = ra.(l) and bv = rb.(l) in
                    let w = av - bv in
                    lcarry.(l) <- w >= 0;
                    lv.(l) <- false;
                    let dv = w land u32 in
                    if
                      (av lxor bv) land sign <> 0
                      && (av lxor dv) land sign <> 0
                    then trap l pc Trap.Overflow
                    else begin
                      rd.(l) <- dv;
                      ln.(!j) <- l;
                      incr j
                    end
                  done;
                  !j)
            else
              Body (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    let w = ra.(l) - rb.(l) in
                    lcarry.(l) <- w >= 0;
                    lv.(l) <- false;
                    rd.(l) <- w land u32
                  done;
                  k)
        | Subb ->
            if trap_ov then
              Body (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  let j = ref 0 in
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    let av = ra.(l) and bv = rb.(l) in
                    let bw = if lcarry.(l) then 0 else 1 in
                    let w = av - bv - bw in
                    lcarry.(l) <- w >= 0;
                    let wide = sext av - sext bv - bw in
                    if wide < -0x8000_0000 || wide > 0x7fff_ffff then
                      trap l pc Trap.Overflow
                    else begin
                      rd.(l) <- w land u32;
                      ln.(!j) <- l;
                      incr j
                    end
                  done;
                  !j)
            else
              Body (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    let w =
                      ra.(l) - rb.(l) - (if lcarry.(l) then 0 else 1)
                    in
                    lcarry.(l) <- w >= 0;
                    rd.(l) <- w land u32
                  done;
                  k)
        | Shadd sh ->
            if trap_ov then
              Body (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  let j = ref 0 in
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    let av = ra.(l) and bv = rb.(l) in
                    let shifted = (av lsl sh) land u32 in
                    let w = shifted + bv in
                    lcarry.(l) <- w > u32;
                    let top = sext av asr (31 - sh) in
                    let shift_ok = top = 0 || top = -1 in
                    let s = w land u32 in
                    let add_ov =
                      (shifted lxor bv) land sign = 0
                      && (shifted lxor s) land sign <> 0
                    in
                    if (not shift_ok) || add_ov then trap l pc Trap.Overflow
                    else begin
                      rd.(l) <- s;
                      ln.(!j) <- l;
                      incr j
                    end
                  done;
                  !j)
            else
              Body (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    let w = ((ra.(l) lsl sh) land u32) + rb.(l) in
                    lcarry.(l) <- w > u32;
                    rd.(l) <- w land u32
                  done;
                  k)
        | And ->
            Body (fun ln k ->
                mc.(n) <- mc.(n) + k;
                for i = 0 to k - 1 do
                  let l = ln.(i) in
                  lcyc.(l) <- lcyc.(l) + 1;
                  rd.(l) <- ra.(l) land rb.(l)
                done;
                k)
        | Or ->
            Body (fun ln k ->
                mc.(n) <- mc.(n) + k;
                for i = 0 to k - 1 do
                  let l = ln.(i) in
                  lcyc.(l) <- lcyc.(l) + 1;
                  rd.(l) <- ra.(l) lor rb.(l)
                done;
                k)
        | Xor ->
            Body (fun ln k ->
                mc.(n) <- mc.(n) + k;
                for i = 0 to k - 1 do
                  let l = ln.(i) in
                  lcyc.(l) <- lcyc.(l) + 1;
                  rd.(l) <- ra.(l) lxor rb.(l)
                done;
                k)
        | Andcm ->
            Body (fun ln k ->
                mc.(n) <- mc.(n) + k;
                for i = 0 to k - 1 do
                  let l = ln.(i) in
                  lcyc.(l) <- lcyc.(l) + 1;
                  rd.(l) <- ra.(l) land lnot rb.(l) land u32
                done;
                k))
    | Ds { a; b; t = d } ->
        let ra = rf.(ri a) and rb = rf.(ri b) and rd = rf.(wi d) in
        Body (fun ln k ->
            mc.(n) <- mc.(n) + k;
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1;
              let vb = lv.(l) in
              let rr = ra.(l) - (if vb then 0x1_0000_0000 else 0) in
              let r2 = (2 * rr) + (if lcarry.(l) then 1 else 0) in
              let r' = if vb then r2 + rb.(l) else r2 - rb.(l) in
              lv.(l) <- r' < 0;
              lcarry.(l) <- r' >= 0;
              rd.(l) <- r' land u32
            done;
            k)
    | Addi { imm; a; t = d; trap_ov } ->
        let ra = rf.(ri a) and rd = rf.(wi d) and imm = iu imm in
        if trap_ov then
          Body (fun ln k ->
              mc.(n) <- mc.(n) + k;
              let j = ref 0 in
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                let av = ra.(l) in
                let w = av + imm in
                lcarry.(l) <- w > u32;
                lv.(l) <- false;
                let s = w land u32 in
                if (av lxor imm) land sign = 0 && (av lxor s) land sign <> 0
                then trap l pc Trap.Overflow
                else begin
                  rd.(l) <- s;
                  ln.(!j) <- l;
                  incr j
                end
              done;
              !j)
        else
          Body (fun ln k ->
              mc.(n) <- mc.(n) + k;
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                let w = ra.(l) + imm in
                lcarry.(l) <- w > u32;
                lv.(l) <- false;
                rd.(l) <- w land u32
              done;
              k)
    | Subi { imm; a; t = d; trap_ov } ->
        (* SUBI computes imm - a: the immediate is the left operand. *)
        let ra = rf.(ri a) and rd = rf.(wi d) and imm = iu imm in
        if trap_ov then
          Body (fun ln k ->
              mc.(n) <- mc.(n) + k;
              let j = ref 0 in
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                let av = ra.(l) in
                let w = imm - av in
                lcarry.(l) <- w >= 0;
                lv.(l) <- false;
                let dv = w land u32 in
                if (imm lxor av) land sign <> 0 && (imm lxor dv) land sign <> 0
                then trap l pc Trap.Overflow
                else begin
                  rd.(l) <- dv;
                  ln.(!j) <- l;
                  incr j
                end
              done;
              !j)
        else
          Body (fun ln k ->
              mc.(n) <- mc.(n) + k;
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                let w = imm - ra.(l) in
                lcarry.(l) <- w >= 0;
                lv.(l) <- false;
                rd.(l) <- w land u32
              done;
              k)
    | Comclr { cond; a; b; t = d } ->
        let ra = rf.(ri a) and rb = rf.(ri b) and rd = rf.(wi d) in
        let f = cond_fn cond in
        Term (fun ln k ->
            mc.(n) <- mc.(n) + k;
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1;
              if f ra.(l) rb.(l) then lnull.(l) <- true;
              rd.(l) <- 0;
              lpc.(l) <- pc + 1
            done;
            k)
    | Comiclr { cond; imm; a; t = d } ->
        let ra = rf.(ri a) and rd = rf.(wi d) and imm = iu imm in
        let f = cond_fn cond in
        Term (fun ln k ->
            mc.(n) <- mc.(n) + k;
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1;
              if f imm ra.(l) then lnull.(l) <- true;
              rd.(l) <- 0;
              lpc.(l) <- pc + 1
            done;
            k)
    | Extr { signed; r = src; pos; len = flen; t = d; cond } -> (
        let rs = rf.(ri src) and rd = rf.(wi d) in
        let sl = 32 - pos - flen and sr = 32 - flen in
        let mask = (1 lsl flen) - 1 in
        match cond with
        | Never ->
            if signed then
              Body (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    rd.(l) <- sext ((rs.(l) lsl sl) land u32) asr sr land u32
                  done;
                  k)
            else
              Body (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    rd.(l) <- (rs.(l) lsr pos) land mask
                  done;
                  k)
        | _ ->
            let f = cond_fn cond in
            if signed then
              Term (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    let v = sext ((rs.(l) lsl sl) land u32) asr sr land u32 in
                    if f v 0 then lnull.(l) <- true;
                    rd.(l) <- v;
                    lpc.(l) <- pc + 1
                  done;
                  k)
            else
              Term (fun ln k ->
                  mc.(n) <- mc.(n) + k;
                  for i = 0 to k - 1 do
                    let l = ln.(i) in
                    lcyc.(l) <- lcyc.(l) + 1;
                    let v = (rs.(l) lsr pos) land mask in
                    if f v 0 then lnull.(l) <- true;
                    rd.(l) <- v;
                    lpc.(l) <- pc + 1
                  done;
                  k))
    | Zdep { r = src; pos; len = flen; t = d } ->
        let rs = rf.(ri src) and rd = rf.(wi d) in
        let mask = (1 lsl flen) - 1 in
        Body (fun ln k ->
            mc.(n) <- mc.(n) + k;
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1;
              rd.(l) <- ((rs.(l) land mask) lsl pos) land u32
            done;
            k)
    | Shd { a; b; sa; t = d } ->
        let ra = rf.(ri a) and rb = rf.(ri b) and rd = rf.(wi d) in
        if sa = 0 then
          Body (fun ln k ->
              mc.(n) <- mc.(n) + k;
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                rd.(l) <- rb.(l)
              done;
              k)
        else
          Body (fun ln k ->
              mc.(n) <- mc.(n) + k;
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                rd.(l) <-
                  ((ra.(l) lsl (32 - sa)) lor (rb.(l) lsr sa)) land u32
              done;
              k)
    | Ldil { imm; t = d } ->
        let rd = rf.(wi d) and imm = iu imm in
        Body (fun ln k ->
            mc.(n) <- mc.(n) + k;
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1;
              rd.(l) <- imm
            done;
            k)
    | Ldo { imm; base; t = d } ->
        let rb = rf.(ri base) and rd = rf.(wi d) and imm = iu imm in
        Body (fun ln k ->
            mc.(n) <- mc.(n) + k;
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1;
              rd.(l) <- (rb.(l) + imm) land u32
            done;
            k)
    | Ldw { disp; base; t = d } ->
        let rb = rf.(ri base) and rd = rf.(wi d) and disp = iu disp in
        Body (fun ln k ->
            mc.(n) <- mc.(n) + k;
            let j = ref 0 in
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1;
              let addr = (rb.(l) + disp) land u32 in
              if addr land 3 <> 0 then
                trap l pc (Trap.Unaligned (Int32.of_int addr))
              else
                let w = addr lsr 2 in
                if w >= mem_words then
                  trap l pc (Trap.Bad_address (Int32.of_int addr))
                else begin
                  rd.(l) <- lmem.(l).(w);
                  ln.(!j) <- l;
                  incr j
                end
            done;
            !j)
    | Stw { r = src; disp; base } ->
        let rs = rf.(ri src) and rb = rf.(ri base) and disp = iu disp in
        Body (fun ln k ->
            mc.(n) <- mc.(n) + k;
            let j = ref 0 in
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1;
              let addr = (rb.(l) + disp) land u32 in
              if addr land 3 <> 0 then
                trap l pc (Trap.Unaligned (Int32.of_int addr))
              else
                let w = addr lsr 2 in
                if w >= mem_words then
                  trap l pc (Trap.Bad_address (Int32.of_int addr))
                else begin
                  lmem.(l).(w) <- rs.(l);
                  ln.(!j) <- l;
                  incr j
                end
            done;
            !j)
    | Ldaddr { target; t = d } ->
        let rd = rf.(wi d) and v = target land u32 in
        Body (fun ln k ->
            mc.(n) <- mc.(n) + k;
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1;
              rd.(l) <- v
            done;
            k)
    | Comb { cond; a; b; target; n = _ } ->
        let ra = rf.(ri a) and rb = rf.(ri b) in
        let f = cond_fn cond in
        if target >= 0 && target < len then
          Term (fun ln k ->
              mc.(n) <- mc.(n) + k;
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                if f ra.(l) rb.(l) then begin
                  taken := !taken + 1;
                  lpc.(l) <- target
                end
                else lpc.(l) <- pc + 1
              done;
              k)
        else
          Term (fun ln k ->
              mc.(n) <- mc.(n) + k;
              let j = ref 0 in
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                if f ra.(l) rb.(l) then trap l pc (Trap.Bad_pc target)
                else begin
                  lpc.(l) <- pc + 1;
                  ln.(!j) <- l;
                  incr j
                end
              done;
              !j)
    | Comib { cond; imm; a; target; n = _ } ->
        let ra = rf.(ri a) and imm = iu imm in
        let f = cond_fn cond in
        if target >= 0 && target < len then
          Term (fun ln k ->
              mc.(n) <- mc.(n) + k;
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                if f imm ra.(l) then begin
                  taken := !taken + 1;
                  lpc.(l) <- target
                end
                else lpc.(l) <- pc + 1
              done;
              k)
        else
          Term (fun ln k ->
              mc.(n) <- mc.(n) + k;
              let j = ref 0 in
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                if f imm ra.(l) then trap l pc (Trap.Bad_pc target)
                else begin
                  lpc.(l) <- pc + 1;
                  ln.(!j) <- l;
                  incr j
                end
              done;
              !j)
    | Addib { cond; imm; a; target; n = _ } ->
        let ra = rf.(ri a) and raw = rf.(wi a) and imm = iu imm in
        let f = cond_fn cond in
        if target >= 0 && target < len then
          Term (fun ln k ->
              mc.(n) <- mc.(n) + k;
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                let sum = (ra.(l) + imm) land u32 in
                raw.(l) <- sum;
                if f sum 0 then begin
                  taken := !taken + 1;
                  lpc.(l) <- target
                end
                else lpc.(l) <- pc + 1
              done;
              k)
        else
          Term (fun ln k ->
              mc.(n) <- mc.(n) + k;
              let j = ref 0 in
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                (* The counter is written before the condition decides —
                   it persists even into a Bad_pc trap. *)
                let sum = (ra.(l) + imm) land u32 in
                raw.(l) <- sum;
                if f sum 0 then trap l pc (Trap.Bad_pc target)
                else begin
                  lpc.(l) <- pc + 1;
                  ln.(!j) <- l;
                  incr j
                end
              done;
              !j)
    | B { target; n = _ } ->
        if target >= 0 && target < len then
          Term (fun ln k ->
              mc.(n) <- mc.(n) + k;
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                taken := !taken + 1;
                lpc.(l) <- target
              done;
              k)
        else
          Term (fun ln k ->
              mc.(n) <- mc.(n) + k;
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                trap l pc (Trap.Bad_pc target)
              done;
              0)
    | Bl { target; t = d; n = _ } ->
        let rd = rf.(wi d) in
        if target >= 0 && target < len then
          Term (fun ln k ->
              mc.(n) <- mc.(n) + k;
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                rd.(l) <- pc + 1;
                taken := !taken + 1;
                lpc.(l) <- target
              done;
              k)
        else
          Term (fun ln k ->
              mc.(n) <- mc.(n) + k;
              for i = 0 to k - 1 do
                let l = ln.(i) in
                lcyc.(l) <- lcyc.(l) + 1;
                (* The link is written before the branch traps, like the
                   scalar engine. *)
                rd.(l) <- pc + 1;
                trap l pc (Trap.Bad_pc target)
              done;
              0)
    | Blr { x; t = d; n = _ } ->
        let rx = rf.(ri x) and rd = rf.(wi d) in
        Term (fun ln k ->
            mc.(n) <- mc.(n) + k;
            let j = ref 0 in
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1;
              (* Link before reading x (t may be x). *)
              rd.(l) <- pc + 1;
              let tg = pc + 1 + (2 * rx.(l)) in
              if tg < len then begin
                taken := !taken + 1;
                lpc.(l) <- tg;
                ln.(!j) <- l;
                incr j
              end
              else trap l pc (Trap.Bad_pc tg)
            done;
            !j)
    | Bv { x; base; n = _ } ->
        let rx = rf.(ri x) and rb = rf.(ri base) in
        Term (fun ln k ->
            mc.(n) <- mc.(n) + k;
            let j = ref 0 in
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1;
              let tw = (rb.(l) + ((2 * rx.(l)) land u32)) land u32 in
              if tw = u32 then begin
                (* Halt sentinel: retire the lane with the PC past this
                   instruction. *)
                taken := !taken + 1;
                lstatus.(l) <- s_halted;
                lpc.(l) <- pc + 1
              end
              else if tw < len then begin
                taken := !taken + 1;
                lpc.(l) <- tw;
                ln.(!j) <- l;
                incr j
              end
              else trap l pc (Trap.Bad_pc tw)
            done;
            !j)
    | Break { code } ->
        Term (fun ln k ->
            mc.(n) <- mc.(n) + k;
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1;
              trap l pc (Trap.Break code)
            done;
            0)
    | Nop ->
        Body (fun ln k ->
            mc.(n) <- mc.(n) + k;
            for i = 0 to k - 1 do
              let l = ln.(i) in
              lcyc.(l) <- lcyc.(l) + 1
            done;
            k)
  in
  (* Thread the closures into superblocks exactly like the scalar
     engine: [ops] is the single-instruction step used when some cohort
     lane's fuel cannot cover the whole block, [blen] the block length
     from each entry point. *)
  let dummy _ _ = 0 in
  let ops = Array.make (max len 1) dummy in
  let blocks = Array.make (max len 1) dummy in
  let blen = Array.make (max len 1) 0 in
  for pc = len - 1 downto 0 do
    match compile pc code.(pc) with
    | Term f ->
        ops.(pc) <- f;
        blocks.(pc) <- f;
        blen.(pc) <- 1
    | Body b ->
        let stepped ln k =
          let k' = b ln k in
          for i = 0 to k' - 1 do
            lpc.(ln.(i)) <- pc + 1
          done;
          k'
        in
        ops.(pc) <- stepped;
        if pc = len - 1 then begin
          blocks.(pc) <- stepped;
          blen.(pc) <- 1
        end
        else begin
          let next = blocks.(pc + 1) in
          blocks.(pc) <- (fun ln k ->
              let k' = b ln k in
              if k' = 0 then 0 else next ln k');
          blen.(pc) <- blen.(pc + 1) + 1
        end
  done;
  let stats = Stats.create ?registry:obs ~labels:obs_labels () in
  let c_lanes = Obs.Counter.create () in
  let c_trapped = Obs.Counter.create () in
  let c_dispatches = Obs.Counter.create () in
  (match obs with
  | None -> ()
  | Some reg ->
      let reg_c ?help name c =
        Obs.Registry.register_counter reg ?help ~labels:obs_labels name c
      in
      reg_c ~help:"Batch-engine lanes run" "hppa_machine_batch_lanes_total"
        c_lanes;
      reg_c ~help:"Batch-engine lanes that ended in a trap"
        "hppa_machine_batch_lanes_trapped_total" c_trapped;
      reg_c ~help:"Batch-engine cohort dispatches"
        "hppa_machine_batch_dispatches_total" c_dispatches);
  (* Scratch arrays for the scheduler: the compact active-lane set and
     the current cohort. *)
  let act = Array.make lanes 0 in
  let coh = Array.make lanes 0 in
  (* The min-PC cohort scheduler. Mirrors the scalar driver's ordering
     per lane: halt before fuel, fuel before the bounds check, bounds
     before the nullify shadow. *)
  let go width =
    nulls := 0;
    taken := 0;
    disp := 0;
    Array.fill mc 0 (Array.length mc) 0;
    let na = ref 0 in
    for l = 0 to width - 1 do
      if lstatus.(l) = s_running then begin
        act.(!na) <- l;
        incr na
      end
    done;
    while !na > 0 do
      let minpc = ref max_int in
      for i = 0 to !na - 1 do
        let p = lpc.(act.(i)) in
        if p < !minpc then minpc := p
      done;
      let minpc = !minpc in
      if minpc < 0 then
        (* Only reachable from a caller-planted negative PC; the halt
           sentinel retires lanes inside the BV closure. Mirror the
           scalar driver's (Halted, exit_pc = 0). *)
        for i = 0 to !na - 1 do
          let l = act.(i) in
          if lpc.(l) < 0 then begin
            lstatus.(l) <- s_halted;
            lpc.(l) <- 0
          end
        done
      else begin
        let k = ref 0 and minfuel = ref max_int in
        for i = 0 to !na - 1 do
          let l = act.(i) in
          if lpc.(l) = minpc then begin
            let f = lfuel.(l) in
            if f = 0 then lstatus.(l) <- s_fuel
            else if minpc >= len then begin
              lstatus.(l) <- s_trapped;
              ltrap.(l) <- Trap.Bad_pc minpc
            end
            else if lnull.(l) then begin
              (* Consume the nullified cycle; the lane rejoins at pc+1. *)
              lnull.(l) <- false;
              lcyc.(l) <- lcyc.(l) + 1;
              incr nulls;
              lpc.(l) <- minpc + 1;
              if f > 0 then lfuel.(l) <- f - 1
            end
            else begin
              coh.(!k) <- l;
              incr k;
              let fe = if f < 0 then max_int else f in
              if fe < !minfuel then minfuel := fe
            end
          end
        done;
        if !k > 0 then begin
          incr disp;
          let bl = blen.(minpc) in
          if !minfuel >= bl then begin
            let k' = blocks.(minpc) coh !k in
            for i = 0 to k' - 1 do
              let l = coh.(i) in
              if lfuel.(l) > 0 then lfuel.(l) <- lfuel.(l) - bl
            done
          end
          else begin
            (* Some lane cannot cover the block: single-step the whole
               cohort (observationally identical, only slower). *)
            let k' = ops.(minpc) coh !k in
            for i = 0 to k' - 1 do
              let l = coh.(i) in
              if lfuel.(l) > 0 then lfuel.(l) <- lfuel.(l) - 1
            done
          end
        end
      end;
      (* Drop retired lanes from the active set. *)
      let j = ref 0 in
      for i = 0 to !na - 1 do
        let l = act.(i) in
        if lstatus.(l) = s_running then begin
          act.(!j) <- l;
          incr j
        end
      done;
      na := !j
    done;
    (* Settle aggregate statistics, like the scalar engine's exit. *)
    for id = 0 to Array.length names - 1 do
      if mc.(id) > 0 then Stats.add_executed stats ~mnemonic:names.(id) mc.(id)
    done;
    Stats.add_nullified stats !nulls;
    Stats.add_branches_taken stats !taken;
    let ntrapped = ref 0 in
    for l = 0 to width - 1 do
      if lstatus.(l) = s_trapped then begin
        Stats.record_trap stats (Trap.name ltrap.(l));
        incr ntrapped
      end
    done;
    Obs.Counter.add c_lanes width;
    if !ntrapped > 0 then Obs.Counter.add c_trapped !ntrapped;
    Obs.Counter.add c_dispatches !disp
  in
  {
    prog;
    lanes;
    mem_words;
    rf;
    lmem;
    lcarry;
    lv;
    lnull;
    lpc;
    lfuel;
    lcyc;
    lstatus;
    ltrap;
    width = 0;
    stats;
    c_lanes;
    c_trapped;
    c_dispatches;
    go;
  }

let lanes t = t.lanes
let width t = t.width
let program t = t.prog
let stats t = t.stats

let counters t =
  {
    lanes_run = Obs.Counter.get t.c_lanes;
    lanes_trapped = Obs.Counter.get t.c_trapped;
    dispatches = Obs.Counter.get t.c_dispatches;
  }

let check_lane t lane =
  if lane < 0 || lane >= t.lanes then
    invalid_arg (Printf.sprintf "Engine_batch: lane %d out of range" lane)

let get_reg t ~lane rg =
  check_lane t lane;
  Int32.of_int t.rf.(Reg.to_int rg).(lane)

let set_reg t ~lane rg v =
  check_lane t lane;
  let i = Reg.to_int rg in
  if i <> 0 then t.rf.(i).(lane) <- Int32.to_int v land u32

let carry t ~lane = check_lane t lane; t.lcarry.(lane)
let v_bit t ~lane = check_lane t lane; t.lv.(lane)
let pc t ~lane = check_lane t lane; t.lpc.(lane)
let cycles t ~lane = check_lane t lane; t.lcyc.(lane)

let outcome t ~lane =
  check_lane t lane;
  match t.lstatus.(lane) with
  | 2 -> Cpu.Fuel_exhausted
  | 3 -> Cpu.Trapped t.ltrap.(lane)
  | _ -> Cpu.Halted

let load_word t ~lane (addr : int32) =
  check_lane t lane;
  if Int32.logand addr 3l <> 0l then Error (Trap.Unaligned addr)
  else
    let i = Word.to_int_u addr / 4 in
    if i >= t.mem_words then Error (Trap.Bad_address addr)
    else if Array.length t.lmem = 0 then Ok 0l
    else Ok (Int32.of_int t.lmem.(lane).(i))

let arg_regs =
  [| Reg.arg0; Reg.arg1; Reg.arg2; Reg.arg3; Reg.ret0; Reg.ret1 |]

let call ?(fuel = 1_000_000) t name ~args =
  let entry =
    match Program.symbol t.prog name with
    | Some a -> a
    | None ->
        invalid_arg (Printf.sprintf "Engine_batch.call: no entry point %S" name)
  in
  let w = Array.length args in
  if w = 0 then invalid_arg "Engine_batch.call: empty batch";
  if w > t.lanes then
    invalid_arg
      (Printf.sprintf "Engine_batch.call: %d arg sets for %d lanes" w t.lanes);
  let rp = Reg.to_int Reg.rp and mrp = Reg.to_int Reg.mrp in
  Array.iteri
    (fun l largs ->
      if List.length largs > 6 then
        invalid_arg "Engine_batch.call: more than 6 arguments";
      List.iteri
        (fun i v -> t.rf.(Reg.to_int arg_regs.(i)).(l) <- Int32.to_int v land u32)
        largs;
      t.rf.(rp).(l) <- u32;
      t.rf.(mrp).(l) <- u32;
      t.lnull.(l) <- false;
      t.lstatus.(l) <- s_running;
      t.lpc.(l) <- entry;
      t.lfuel.(l) <- fuel;
      t.lcyc.(l) <- 0)
    args;
  t.width <- w;
  t.go w
