(** Minimal unsigned 128-bit arithmetic.

    The reciprocal-division derivation (§7) evaluates [(a*x + b) >> s] where
    [a] may be a 33-bit constant and [x] a full 32-bit dividend, so the exact
    intermediate needs more than 64 bits. Only the handful of operations that
    derivation needs are provided. *)

type t = { hi : int64; lo : int64 }
(** Unsigned value [hi * 2^64 + lo], both limbs interpreted unsigned. *)

val zero : t
val of_int64 : int64 -> t
(** Interprets the argument as unsigned. *)

val add : t -> t -> t

val sub : t -> t -> t
(** Wrap-around (mod 2^128) difference. *)

val mul_64_64 : int64 -> int64 -> t
(** Full unsigned 64x64 -> 128 product. *)

val shift_left : t -> int -> t
(** Amount in 0..127; bits shifted out are discarded. *)

val shift_right : t -> int -> t
(** Logical; amount in 0..127. *)

val divmod_64 : t -> int64 -> t * int64
(** [divmod_64 x y] is the unsigned quotient and remainder of the full
    128-bit [x] by the 64-bit [y] (interpreted unsigned). Restoring
    shift-subtract reference; raises [Invalid_argument] when [y = 0].
    The 128/64 millicode divide is differentially checked against
    this. *)

val to_int64 : t -> int64
(** Low 64 bits. *)

val fits_int64 : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
