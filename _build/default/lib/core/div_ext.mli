(** Division of 64-bit dividends — the full §4 divide-step scheme.

    §4 describes [DS] dividing "a register containing the least significant
    word of a 64-bit partial dividend ... combined with an add with carry
    operation on the most significant word". The 32-bit [divU] initialises
    that high word to zero; this routine accepts a caller-supplied high
    word, giving the 64/32 division that multi-precision arithmetic (and
    the reciprocal method itself) rests on.

    Entries (dividend high word in [arg0], low word in [arg1], divisor in
    [arg2]; quotient in [ret0], remainder in [ret1]):

    - [divU64]: unsigned. As on machines with a hardware 64/32 divide, the
      quotient must fit 32 bits: the routine requires [hi < divisor]
      (which also implies a nonzero divisor) and executes [BREAK 1]
      otherwise ([BREAK 0] stays the divide-by-zero code).
    - [divI64]: signed, truncating toward zero, remainder taking the
      dividend's sign. [BREAK 0] on a zero divisor, [BREAK 1] when the
      quotient does not fit a signed word. *)

val source : Program.source
val entries : string list
(** [["divU64"; "divI64"]]. *)

val overflow_break_code : int
(** 1 — quotient unrepresentable. *)

val reference :
  hi:Hppa_word.Word.t -> lo:Hppa_word.Word.t -> Hppa_word.Word.t ->
  (Hppa_word.Word.t * Hppa_word.Word.t) option
(** Unsigned [(quotient, remainder)], or [None] when the routine would
    break. *)

val reference_signed :
  hi:Hppa_word.Word.t -> lo:Hppa_word.Word.t -> Hppa_word.Word.t ->
  (Hppa_word.Word.t * Hppa_word.Word.t) option
(** Signed reference; [None] covers both break conditions. *)
