(** Shorthand constructors for the instruction set.

    Keeps the hand-written routines and the code generators close to
    assembler notation: operands appear in PA-RISC order (sources first,
    destination last). All functions return [string Insn.t] values ready for
    {!Builder.insn}. *)

type reg = Reg.t
type insn = string Insn.t

val add : ?ov:bool -> reg -> reg -> reg -> insn
val addc : ?ov:bool -> reg -> reg -> reg -> insn
val sub : ?ov:bool -> reg -> reg -> reg -> insn
val subb : ?ov:bool -> reg -> reg -> reg -> insn

val shadd : ?ov:bool -> int -> reg -> reg -> reg -> insn
(** [shadd k a b t]: [t := (a << k) + b], [k] in 1..3. *)

val and_ : reg -> reg -> reg -> insn
val or_ : reg -> reg -> reg -> insn
val xor : reg -> reg -> reg -> insn
val andcm : reg -> reg -> reg -> insn
val ds : reg -> reg -> reg -> insn
val addi : ?ov:bool -> int32 -> reg -> reg -> insn
val subi : ?ov:bool -> int32 -> reg -> reg -> insn
val comclr : Cond.t -> reg -> reg -> reg -> insn
val comiclr : Cond.t -> int32 -> reg -> reg -> insn
val extru : ?cond:Cond.t -> reg -> pos:int -> len:int -> reg -> insn
(** [cond] (default [Never]) nullifies the next instruction when the
    extracted result satisfies it against zero. *)

val extrs : ?cond:Cond.t -> reg -> pos:int -> len:int -> reg -> insn
val zdep : reg -> pos:int -> len:int -> reg -> insn

val shl : reg -> int -> reg -> insn
(** Shift-left-immediate pseudo (a [Zdep]); amount 0..31. *)

val shr_u : reg -> int -> reg -> insn
(** Logical shift-right pseudo (an [Extru]); amount 0..31. *)

val shr_s : reg -> int -> reg -> insn
(** Arithmetic shift-right pseudo (an [Extrs]). *)

val shd : reg -> reg -> int -> reg -> insn
val ldil : int32 -> reg -> insn
val ldo : int32 -> reg -> reg -> insn

val ldi : int32 -> reg -> insn list
(** Load a 32-bit constant: one [Ldo] off [r0] when it fits 14 signed bits,
    otherwise the two-instruction [Ldil]/[Ldo] sequence. *)

val copy : reg -> reg -> insn
val ldw : int32 -> reg -> reg -> insn
val stw : reg -> int32 -> reg -> insn
val ldaddr : string -> reg -> insn

(** Branches take [?n] (default false), the [,n] delay-slot nullify
    completer (meaningful only on delay-slot machines). *)

val comb : ?n:bool -> Cond.t -> reg -> reg -> string -> insn
val comib : ?n:bool -> Cond.t -> int32 -> reg -> string -> insn
val addib : ?n:bool -> Cond.t -> int32 -> reg -> string -> insn
val b : ?n:bool -> string -> insn
val bl : ?n:bool -> string -> reg -> insn
val blr : ?n:bool -> reg -> reg -> insn
val bv : ?n:bool -> reg -> reg -> insn

val ret : insn
(** Procedure return: [bv r0 (rp)]. *)

val mret : insn
(** Millicode return: [bv r0 (mrp)]. *)

val break : int -> insn
val nop : insn
