lib/core/millicode.mli: Hppa_machine Program
