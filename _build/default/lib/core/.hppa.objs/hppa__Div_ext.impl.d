lib/core/div_ext.ml: Builder Cond Emit Hppa_machine Hppa_word Int32 Int64 Program Reg
