(* Hand-written Precision assembly, assembled and run on the simulator.

   Euclid's algorithm with the remainder computed by the millicode divide:
   the classic case of a program that is "all division" — gcd of two ~2^31
   numbers performs ~30 remainders, so the ~76-cycle DS millicode
   dominates its run time, the situation section 7 set out to improve.

   Run with:  dune exec examples/euclid_asm.exe *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine

let gcd_source =
  Asm.parse_exn
    {|
; gcd(arg0, arg1) -> ret0, using the remU millicode.
; r3 holds a, r4 holds b across the calls (millicode preserves r3..r18).
gcd:    copy   arg0, r3
        copy   arg1, r4
loop:   comib,= 0, r4, done      ; while b <> 0
        copy   r3, arg0
        copy   r4, arg1
        bl     remU, mrp         ;   r = a mod b
        copy   r4, r3            ;   a = b
        copy   ret0, r4          ;   b = r
        b      loop
done:   copy   r3, ret0
        bv     r0(rp)
|}

let () =
  let prog =
    Program.resolve_exn (Program.concat [ gcd_source; Hppa.Millicode.source ])
  in
  let mach = Machine.create prog in
  let gcd a b =
    match Machine.call_cycles mach "gcd" ~args:[ a; b ] with
    | Machine.Halted, c -> (Machine.get mach Reg.ret0, c)
    | (Machine.Trapped _ | Machine.Fuel_exhausted), _ -> failwith "gcd"
  in
  Format.printf "Euclid on the simulator (remainders via DS millicode):@.@.";
  List.iter
    (fun (a, b) ->
      let g, c = gcd a b in
      Format.printf "  gcd(%ld, %ld) = %ld   (%d cycles)@." a b g c)
    [
      (48l, 36l); (1071l, 462l); (1234567890l, 987654321l);
      (2147483647l, 2l); (1836311903l, 1134903170l) (* consecutive Fibonacci *);
    ];
  (* The Fibonacci pair is Euclid's worst case: one subtraction of
     quotient 1 per step, so the divide cost dominates everything. *)
  let _, c = gcd 1836311903l 1134903170l in
  Format.printf
    "@.the Fibonacci pair needs ~43 remainders: %d cycles, ~%d per remainder@."
    c (c / 43)
