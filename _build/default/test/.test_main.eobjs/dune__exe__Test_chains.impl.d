test/test_chains.ml: Alcotest Builder Chain Chain_codegen Chain_rules Chain_search Chain_stats Hppa Hppa_machine Hppa_word Int32 Lazy List Mul_const Printf Program QCheck Reg Util
