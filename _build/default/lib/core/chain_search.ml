(* The search state is the multiset-free list of values generated so far
   (0 and 1 implicit). Candidate extensions enumerate every instruction form
   over every pair of available elements. *)

type lengths_table = { max_len : int; limit : int; best : int array }

let max_len t = t.max_len
let limit t = t.limit

let default_cap limit = (4 * limit) + 16

(* Enumerate every value derivable in one step from [values] (which includes
   0 and 1), calling [f value step]. Steps reference [values] indices. *)
let candidates ~cap values nvals f =
  for j = 0 to nvals - 1 do
    let x = values.(j) in
    (* Shifts of x. *)
    if x <> 0 then begin
      let s = ref 1 in
      while
        !s <= 31
        && Int.abs x <= (max_int asr (!s + 1))
        && Int.abs (x lsl !s) <= cap
      do
        f (x lsl !s) (Chain.Shl (j, !s));
        incr s
      done
    end;
    for k = 0 to nvals - 1 do
      let y = values.(k) in
      (* x + y, unordered. *)
      if k <= j && Int.abs (x + y) <= cap then f (x + y) (Chain.Add (j, k));
      (* (x << m) + y, ordered. *)
      for m = 1 to 3 do
        let v = (x lsl m) + y in
        if Int.abs x <= max_int asr 4 && Int.abs v <= cap then
          f v (Chain.Shadd (m, j, k))
      done;
      (* x - y, ordered. *)
      if Int.abs (x - y) <= cap then f (x - y) (Chain.Sub (j, k))
    done
  done

let useful v values nvals =
  let fresh = ref (v <> 0 && v <> 1) in
  for i = 0 to nvals - 1 do
    if values.(i) = v then fresh := false
  done;
  !fresh

(* ------------------------------------------------------------------ *)
(* Breadth-first closure                                               *)

module Key = struct
  type t = int array

  let equal = Stdlib.( = )
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

(* Sets have at most ~8 elements; copy-and-sort is fine. *)
let sorted_insert arr v =
  let n = Array.length arr in
  let out = Array.make (n + 1) v in
  Array.blit arr 0 out 0 n;
  Array.sort compare out;
  out

let lengths_table ?cap ~max_len ~limit () =
  if max_len < 0 || limit < 1 then invalid_arg "Chain_search.lengths_table";
  let cap = Option.value cap ~default:(default_cap limit) in
  let best = Array.make (limit + 1) max_int in
  best.(1) <- 0;
  let visited = Tbl.create 4096 in
  let scratch = Array.make (max_len + 3) 0 in
  let record depth v =
    if v >= 1 && v <= limit && depth < best.(v) then best.(v) <- depth
  in
  let rec grow depth frontier =
    if depth > max_len || frontier = [] then ()
    else begin
      let next = Tbl.create 4096 in
      List.iter
        (fun set ->
          let n = Array.length set in
          scratch.(0) <- 0;
          scratch.(1) <- 1;
          Array.blit set 0 scratch 2 n;
          let nvals = n + 2 in
          candidates ~cap scratch nvals (fun v _step ->
              if useful v scratch nvals then begin
                record depth v;
                if depth < max_len then begin
                  let key = sorted_insert set v in
                  if (not (Tbl.mem visited key)) && not (Tbl.mem next key)
                  then Tbl.add next key ()
                end
              end))
        frontier;
      let frontier' = Tbl.fold (fun k () acc -> k :: acc) next [] in
      List.iter (fun k -> Tbl.add visited k ()) frontier';
      grow (depth + 1) frontier'
    end
  in
  grow 1 [ [||] ];
  { max_len; limit; best }

let length_of t n =
  if n < 1 || n > t.limit then None
  else if t.best.(n) = max_int then None
  else Some t.best.(n)

(* ------------------------------------------------------------------ *)
(* Per-target iterative deepening                                      *)

let find ?cap ~max_len target =
  if target < 1 then invalid_arg "Chain_search.find";
  let cap = Option.value cap ~default:((4 * target) + 16) in
  if target = 1 then Some []
  else begin
    let exception Found of Chain.t in
    let values = Array.make (max_len + 2) 0 in
    values.(1) <- 1;
    let steps = Array.make (max_len + 2) (Chain.Add (0, 0)) in
    (* DFS filling [values] from index 2 up to [2 + depth - 1]. *)
    let rec dfs nvals remaining =
      if remaining = 1 then
        candidates ~cap values nvals (fun v step ->
            if v = target then begin
              steps.(nvals) <- step;
              let chain =
                Array.to_list (Array.sub steps 2 (nvals - 1))
              in
              raise (Found chain)
            end)
      else begin
        (* Deduplicate candidate values at this node. *)
        let seen = Hashtbl.create 64 in
        candidates ~cap values nvals (fun v step ->
            if useful v values nvals && not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              values.(nvals) <- v;
              steps.(nvals) <- step;
              dfs (nvals + 1) (remaining - 1);
              values.(nvals) <- 0
            end)
      end
    in
    let rec deepen d =
      if d > max_len then None
      else
        try
          dfs 2 d;
          deepen (d + 1)
        with Found chain -> Some chain
    in
    deepen 1
  end
