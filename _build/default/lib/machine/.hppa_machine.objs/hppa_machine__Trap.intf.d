lib/machine/trap.mli: Format
