module Word = Hppa_word.Word

(* Unsigned magnitude of the absolute value (min_int -> 2^31). *)
let mag w = Word.to_int_u (Word.abs w)

let bit_length u =
  let rec go l = if u lsr l = 0 then l else go (l + 1) in
  go 0

(* Iterations of a shift-right-until-zero loop: at least one. *)
let chunks ~width u = max 1 ((bit_length u + width - 1) / width)

let nibbles_of ~count u = List.init count (fun i -> (u lsr (4 * i)) land 0xf)

let case_costs = [| 1; 2; 2; 2; 2; 4; 2; 4; 2; 4; 4; 4; 2; 4; 4; 4 |]
let case_cost n = case_costs.(n)

let naive () = 168

let naive_early ~multiplier =
  let k = chunks ~width:1 (mag multiplier) in
  (6 * k) + 5

let nibble ~multiplier =
  let k = chunks ~width:4 (mag multiplier) in
  (13 * k) + 4

(* Shared by the switch routine and the final algorithm's fast path: the
   dispatch + case costs over the multiplier's nibbles, with [per_iter]
   continuation overhead between iterations and [finish] after the last. *)
let table_loop_cost u ~per_iter ~finish =
  let k = chunks ~width:4 u in
  let ns = nibbles_of ~count:k u in
  let rec go i = function
    | [] -> 0
    | n :: rest ->
        let dispatch = 2 + case_cost n in
        let tail = if i = k then finish else per_iter in
        dispatch + tail + go (i + 1) rest
  in
  go 1 ns

let switch ~multiplier =
  let u = mag multiplier in
  (* setup 5, per-iteration continuation 6 (shift test + nullified exit
     branch + two sh2add + sh1add + loop branch), exit 2, sign fix 3. *)
  5 + table_loop_cost u ~per_iter:6 ~finish:2 + 3

let final x y =
  let ux = Word.to_int_u x and uy = Word.to_int_u y in
  let both_nonneg = not (Word.is_neg x || Word.is_neg y) in
  if both_nonneg then begin
    (* or + untaken comb *)
    let prologue = 2 in
    let swap = if uy <= ux then 1 else 4 in
    let multiplier = min ux uy in
    if multiplier = 0 then prologue + swap + 3 (* comib taken, copy, ret *)
    else if multiplier = 1 then prologue + swap + 4
    else
      prologue + swap + 2 (* the two quick-exit tests fall through *)
      + 2 (* zero the accumulator, form 3*mcand *)
      + table_loop_cost multiplier ~per_iter:6 ~finish:2
  end
  else begin
    (* or + taken comb + xor + two abs sequences *)
    let prologue = 7 in
    let ax = mag x and ay = mag y in
    let swap = if ay <= ax then 1 else 4 in
    let multiplier = min ax ay in
    let k = chunks ~width:4 multiplier in
    prologue + swap + 1 (* zero the accumulator *)
    + (13 * (k - 1))
    + 10 (* final iteration exits at the shift test *)
    + 3 (* sign fix + return *)
  end
