type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let word t = Int64.to_int32 (next64 t)

let int_range t lo hi =
  assert (hi >= lo);
  let span = hi - lo + 1 in
  lo + Int64.to_int (Int64.unsigned_rem (next64 t) (Int64.of_int span))

let float01 t =
  Int64.to_float (Int64.shift_right_logical (next64 t) 11) *. 0x1p-53

let bool t ~p = float01 t < p
