type t = int

let of_int n =
  if n < 0 || n > 31 then invalid_arg "Reg.of_int: register out of range";
  n

let to_int n = n
let equal = Int.equal
let compare = Int.compare
let r0 = 0
let rp = 2
let sp = 30
let arg0 = 26
let arg1 = 25
let arg2 = 24
let arg3 = 23
let ret0 = 28
let ret1 = 29
let mrp = 31
let t1 = 1
let t2 = 19
let t3 = 20
let t4 = 21
let t5 = 22
let name n = "r" ^ string_of_int n

let aliases =
  [
    ("rp", rp); ("sp", sp); ("arg0", arg0); ("arg1", arg1); ("arg2", arg2);
    ("arg3", arg3); ("ret0", ret0); ("ret1", ret1); ("mrp", mrp);
  ]

let of_name s =
  match List.assoc_opt s aliases with
  | Some r -> Some r
  | None ->
      if String.length s >= 2 && s.[0] = 'r' then
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some n when n >= 0 && n <= 31 -> Some n
        | Some _ | None -> None
      else None

let pp ppf n = Format.pp_print_string ppf (name n)
let all = List.init 32 (fun i -> i)
