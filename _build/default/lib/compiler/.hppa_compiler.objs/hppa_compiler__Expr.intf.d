lib/compiler/expr.mli: Format Hppa_word
