(** Deterministic plan rendering for the service.

    Each function turns one request into the reply {e payload} (the text
    after ["OK "]) or an error detail (the text after ["ERR "]). The
    renderings are pure functions of their arguments — no timestamps, no
    addresses, no cache or worker identity — which is what makes the
    plan cache transparent and the worker pool size unobservable
    (the "identical plan bytes" guarantee). *)

val mul : int32 -> (string, string) result
(** Addition-chain multiply plan: chain steps, emitted instructions and
    the static cycle count, via {!Hppa.Mul_const.plan}. *)

val div : int32 -> (string, string) result
(** Constant-divide plan via {!Hppa.Div_const}: [d > 0] plans the
    unsigned routine, [d < 0] the signed one; [d = 0] is an error. The
    payload names the strategy (power-of-two shift, derived reciprocal
    with its magic parameters, even split, or general-divide fallback). *)

val eval :
  Hppa_machine.Machine.t ->
  fuel:int ->
  string ->
  Hppa_word.Word.t list ->
  (string, string) result
(** Run a public millicode entry on the given (worker-private) machine
    with a fuel bound, returning results and the dynamic cycle count.
    The machine is reset first, so replies are independent of request
    history. Traps and fuel exhaustion are error replies, not
    exceptions. *)

val render_source : Program.source -> string
(** One-line rendering of an assembly routine: items separated by [" | "],
    labels suffixed with [":"]. Exposed for the tests. *)
