lib/isa/image.mli: Insn Program
