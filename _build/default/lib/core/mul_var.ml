module Word = Hppa_word.Word

(* Register roles, shared by every routine:
     arg0  multiplicand (shifted left as the loop advances)
     arg1  multiplier   (shifted right; quotient of nibbles)
     ret0  accumulating product
     t2    saved multiplier sign (Figure 2/3 style routines)
     t3    3 * multiplicand, maintained for the case table
     t4    nibble index / scratch
     t5    result sign (xor of operand signs)
     t1    scratch *)

let m = Reg.arg0
let y = Reg.arg1
let acc = Reg.ret0
let sign = Reg.t2
let m3 = Reg.t3
let idx = Reg.t4
let xsign = Reg.t5
let tmp = Reg.t1

(* abs of [r], remembering the original in [keep] when provided. *)
let emit_abs b ?keep r =
  (match keep with Some k -> Builder.insn b (Emit.copy r k) | None -> ());
  Builder.insns b [ Emit.comclr Cond.Ge r Reg.r0 Reg.r0; Emit.sub Reg.r0 r r ]

(* Negate [acc] if [sr] is negative, then return. *)
let emit_sign_fix_ret b sr =
  Builder.insns b
    [
      Emit.comclr Cond.Ge sr Reg.r0 Reg.r0;
      Emit.sub Reg.r0 acc acc;
      Emit.mret;
    ]

(* ------------------------------------------------------------------ *)
(* Figure 2: one bit per iteration, fixed 32 iterations.               *)

let naive_source =
  let b = Builder.create ~prefix:"mul_naive" () in
  Builder.label b "mul_naive";
  emit_abs b ~keep:sign y;
  Builder.insns b [ Emit.copy Reg.r0 acc ];
  Builder.insns b (Emit.ldi 32l idx);
  Builder.label b "mul_naive$loop";
  Builder.insns b
    [
      Emit.extru ~cond:Cond.Eq y ~pos:0 ~len:1 Reg.r0; (* skip add if bit clear *)
      Emit.add m acc acc;
      Emit.shr_u y 1 y;
      Emit.add m m m;
      Emit.addib Cond.Gt (-1l) idx "mul_naive$loop";
    ];
  emit_sign_fix_ret b sign;
  Builder.to_source b

(* Figure 2 + early exit when the shifted multiplier is exhausted. *)
let naive_early_source =
  let b = Builder.create ~prefix:"mul_naive_early" () in
  Builder.label b "mul_naive_early";
  emit_abs b ~keep:sign y;
  Builder.insns b [ Emit.copy Reg.r0 acc ];
  Builder.label b "mul_naive_early$loop";
  Builder.insns b
    [
      Emit.extru ~cond:Cond.Eq y ~pos:0 ~len:1 Reg.r0;
      Emit.add m acc acc;
      Emit.extru ~cond:Cond.Neq y ~pos:1 ~len:31 y; (* shift; skip exit if bits remain *)
      Emit.b "mul_naive_early$done";
      Emit.add m m m;
      Emit.b "mul_naive_early$loop";
    ];
  Builder.label b "mul_naive_early$done";
  emit_sign_fix_ret b sign;
  Builder.to_source b

(* ------------------------------------------------------------------ *)
(* Figure 3: four bits per iteration. The loop is the paper's 13       *)
(* instructions: 8 testing/accumulating, 5 shifting and loop control.  *)

let emit_nibble_tests ?(ov = false) b =
  Builder.insns b
    [
      Emit.extru ~cond:Cond.Eq y ~pos:0 ~len:1 Reg.r0;
      Emit.add ~ov m acc acc;
      Emit.extru ~cond:Cond.Eq y ~pos:1 ~len:1 Reg.r0;
      Emit.shadd ~ov 1 m acc acc;
      Emit.extru ~cond:Cond.Eq y ~pos:2 ~len:1 Reg.r0;
      Emit.shadd ~ov 2 m acc acc;
      Emit.extru ~cond:Cond.Eq y ~pos:3 ~len:1 Reg.r0;
      Emit.shadd ~ov 3 m acc acc;
    ]

let nibble_source =
  let b = Builder.create ~prefix:"mul_nibble" () in
  Builder.label b "mul_nibble";
  emit_abs b ~keep:sign y;
  Builder.insns b [ Emit.copy Reg.r0 acc ];
  Builder.label b "mul_nibble$loop";
  emit_nibble_tests b;
  Builder.insns b
    [
      Emit.extru ~cond:Cond.Neq y ~pos:4 ~len:28 y;
      Emit.b "mul_nibble$done";
      Emit.shadd 2 m Reg.r0 m; (* mcand <<= 4 via two Shift Two and Adds *)
      Emit.shadd 2 m Reg.r0 m;
      Emit.b "mul_nibble$loop";
    ];
  Builder.label b "mul_nibble$done";
  emit_sign_fix_ret b sign;
  Builder.to_source b

(* ------------------------------------------------------------------ *)
(* Figure 4: the 16-way case table.                                    *)

(* Work instructions adding [nibble * mcand] to the accumulator, at most
   two each thanks to the maintained 3*mcand. *)
let case_work nibble =
  let add_m = Emit.add m acc acc in
  let add_2m = Emit.shadd 1 m acc acc in
  let add_4m = Emit.shadd 2 m acc acc in
  let add_8m = Emit.shadd 3 m acc acc in
  let add_m3 = Emit.add m3 acc acc in
  let add_2m3 = Emit.shadd 1 m3 acc acc in
  let add_4m3 = Emit.shadd 2 m3 acc acc in
  let sub_m = Emit.sub acc m acc in
  match nibble with
  | 0 -> []
  | 1 -> [ add_m ]
  | 2 -> [ add_2m ]
  | 3 -> [ add_m3 ]
  | 4 -> [ add_4m ]
  | 5 -> [ add_4m; add_m ]
  | 6 -> [ add_2m3 ]
  | 7 -> [ add_8m; sub_m ]
  | 8 -> [ add_8m ]
  | 9 -> [ add_8m; add_m ]
  | 10 -> [ add_8m; add_2m ]
  | 11 -> [ add_8m; add_m3 ]
  | 12 -> [ add_4m3 ]
  | 13 -> [ add_4m3; add_m ]
  | 14 -> [ add_4m3; add_2m ]
  | 15 -> [ add_4m3; add_m3 ]
  | _ -> invalid_arg "case_work"

(* Dispatch [extru nibble; blr] into 16 two-instruction slots; two-work
   cases continue in extension stubs placed after the table. Control
   rejoins at [next]. *)
let emit_switch b ~prefix ~next =
  Builder.insns b [ Emit.extru y ~pos:0 ~len:4 idx; Emit.blr idx Reg.r0 ];
  let stubs = ref [] in
  for nibble = 0 to 15 do
    match case_work nibble with
    | [] -> Builder.insns b [ Emit.b next; Emit.nop ]
    | [ w ] -> Builder.insns b [ w; Emit.b next ]
    | [ w1; w2 ] ->
        let ext = Printf.sprintf "%s$case%d" prefix nibble in
        Builder.insns b [ w1; Emit.b ext ];
        stubs := (ext, w2) :: !stubs
    | _ -> assert false
  done;
  List.iter
    (fun (ext, w2) ->
      Builder.label b ext;
      Builder.insns b [ w2; Emit.b next ])
    (List.rev !stubs)

let switch_source =
  let b = Builder.create ~prefix:"mul_switch" () in
  Builder.label b "mul_switch";
  emit_abs b ~keep:sign y;
  Builder.insns b [ Emit.copy Reg.r0 acc; Emit.shadd 1 m m m3 ];
  Builder.label b "mul_switch$loop";
  emit_switch b ~prefix:"mul_switch" ~next:"mul_switch$next";
  Builder.label b "mul_switch$next";
  Builder.insns b
    [
      Emit.extru ~cond:Cond.Neq y ~pos:4 ~len:28 y;
      Emit.b "mul_switch$done";
      Emit.shadd 2 m Reg.r0 m;
      Emit.shadd 2 m Reg.r0 m;
      Emit.shadd 1 m m m3;
      Emit.b "mul_switch$loop";
    ];
  Builder.label b "mul_switch$done";
  emit_sign_fix_ret b sign;
  Builder.to_source b

(* ------------------------------------------------------------------ *)
(* The final algorithm (Figure 5): operand swap, quick exits, positive *)
(* fast path.                                                          *)

let emit_swap_smaller_multiplier b ~skip =
  Builder.insns b
    [
      Emit.comb Cond.Ule y m skip;
      Emit.copy m tmp;
      Emit.copy y m;
      Emit.copy tmp y;
    ];
  Builder.label b skip

let final_source =
  let b = Builder.create ~prefix:"mul_final" () in
  Builder.label b "mul_final";
  Builder.insns b
    [
      Emit.or_ m y tmp;
      Emit.comb Cond.Lt tmp Reg.r0 "mul_final$negs";
    ];
  emit_swap_smaller_multiplier b ~skip:"mul_final$noswap";
  Builder.insns b
    [
      Emit.comib Cond.Eq 0l y "mul_final$zero";
      Emit.comib Cond.Eq 1l y "mul_final$one";
      Emit.copy Reg.r0 acc;
      Emit.shadd 1 m m m3;
    ];
  Builder.label b "mul_final$loop";
  emit_switch b ~prefix:"mul_final" ~next:"mul_final$next";
  Builder.label b "mul_final$next";
  Builder.insns b
    [
      Emit.extru ~cond:Cond.Neq y ~pos:4 ~len:28 y;
      Emit.mret;
      Emit.shadd 2 m Reg.r0 m;
      Emit.shadd 2 m Reg.r0 m;
      Emit.shadd 1 m m m3;
      Emit.b "mul_final$loop";
    ];
  Builder.label b "mul_final$zero";
  Builder.insns b [ Emit.copy Reg.r0 acc; Emit.mret ];
  Builder.label b "mul_final$one";
  Builder.insns b [ Emit.copy m acc; Emit.mret ];
  (* Slow path: an operand is negative. Take absolute values, run the
     Figure 3 loop, fix the sign. *)
  Builder.label b "mul_final$negs";
  Builder.insns b [ Emit.xor m y xsign ];
  emit_abs b m;
  emit_abs b y;
  emit_swap_smaller_multiplier b ~skip:"mul_final$nswap2";
  Builder.insns b [ Emit.copy Reg.r0 acc ];
  Builder.label b "mul_final$nloop";
  emit_nibble_tests b;
  Builder.insns b
    [
      Emit.extru ~cond:Cond.Neq y ~pos:4 ~len:28 y;
      Emit.b "mul_final$nfix";
      Emit.shadd 2 m Reg.r0 m;
      Emit.shadd 2 m Reg.r0 m;
      Emit.b "mul_final$nloop";
    ];
  Builder.label b "mul_final$nfix";
  emit_sign_fix_ret b xsign;
  Builder.to_source b

(* ------------------------------------------------------------------ *)
(* Signed multiply with exact overflow detection.                      *)

(* Trapping accumulation loop body over non-negative operands: every
   partial value is bounded by the true product, so a trap fires iff the
   product itself is unrepresentable (see mul_var.mli). The loop ends by
   branching to [done_]. *)
let emit_trapping_loop b ~loop ~done_ =
  Builder.label b loop;
  emit_nibble_tests ~ov:true b;
  Builder.insns b
    [
      Emit.extru ~cond:Cond.Neq y ~pos:4 ~len:28 y;
      Emit.b done_;
      Emit.shadd ~ov:true 2 m Reg.r0 m;
      Emit.shadd ~ov:true 2 m Reg.r0 m;
      Emit.b loop;
    ]

let mulo_source =
  let b = Builder.create ~prefix:"mulo" () in
  let l s = "mulo$" ^ s in
  Builder.label b "mulo";
  Builder.insns b
    [
      (* Trivial multipliers and multiplicands: no overflow possible
         except negating the most negative number, which sub,o reports. *)
      Emit.comib Cond.Eq 0l m (l "zero");
      Emit.comib Cond.Eq 0l y (l "zero");
      Emit.comib Cond.Eq 1l y (l "ret_m");
      Emit.comib Cond.Eq 1l m (l "ret_y");
      Emit.comib Cond.Eq (-1l) y (l "neg_m");
      Emit.comib Cond.Eq (-1l) m (l "neg_y");
      (* A most-negative operand with |other| >= 2 always overflows. *)
      Emit.ldil Int32.min_int sign;
      Emit.comb Cond.Eq m sign (l "trap");
      Emit.comb Cond.Eq y sign (l "trap");
      (* Result sign, absolute values; both now in [2, 2^31 - 1]. *)
      Emit.xor m y xsign;
    ];
  emit_abs b m;
  emit_abs b y;
  Builder.insns b
    [
      (* Both operands >= 2^16: the product exceeds 2^31 — overflow. *)
      Emit.extru ~cond:Cond.Eq m ~pos:16 ~len:16 tmp;
      Emit.extru ~cond:Cond.Neq y ~pos:16 ~len:16 tmp;
      Emit.b (l "small");
    ];
  Builder.label b (l "trap");
  Builder.insns b
    [ Emit.ldil 0x4000_0000l tmp; Emit.add ~ov:true tmp tmp Reg.r0 ];
  Builder.label b (l "small");
  emit_swap_smaller_multiplier b ~skip:(l "nsw");
  Builder.insns b
    [ Emit.comb Cond.Lt xsign Reg.r0 (l "negpath"); Emit.copy Reg.r0 acc ];
  (* Positive result: bound 2^31 - 1; the trapping loop is exact. *)
  emit_trapping_loop b ~loop:(l "ploop") ~done_:(l "pdone");
  Builder.label b (l "pdone");
  Builder.insn b Emit.mret;
  Builder.label b (l "negpath");
  Builder.insns b
    [
      (* Power-of-two multipliers can legally produce exactly -2^31, which
         the trapping loop would flag; compute (mcand - 1) * mpy instead
         (exactly trapping, see mul_var.mli) and correct at the end. *)
      Emit.addi (-1l) y tmp;
      Emit.and_ tmp y tmp;
      Emit.comib Cond.Eq 0l tmp (l "pow2");
      Emit.copy Reg.r0 acc;
    ];
  emit_trapping_loop b ~loop:(l "nloop") ~done_:(l "ndone");
  Builder.label b (l "ndone");
  Builder.insns b [ Emit.sub Reg.r0 acc acc; Emit.mret ];
  Builder.label b (l "pow2");
  Builder.insns b
    [
      Emit.copy y idx; (* save the multiplier; the loop consumes it *)
      Emit.addi (-1l) m m;
      Emit.copy Reg.r0 acc;
    ];
  emit_trapping_loop b ~loop:(l "qloop") ~done_:(l "qdone");
  Builder.label b (l "qdone");
  Builder.insns b
    [
      (* acc = (mcand-1)*mpy; result = -(acc + mpy). *)
      Emit.sub Reg.r0 acc acc;
      Emit.sub acc idx acc;
      Emit.mret;
    ];
  Builder.label b (l "zero");
  Builder.insns b [ Emit.copy Reg.r0 acc; Emit.mret ];
  Builder.label b (l "ret_m");
  Builder.insns b [ Emit.copy m acc; Emit.mret ];
  Builder.label b (l "ret_y");
  Builder.insns b [ Emit.copy y acc; Emit.mret ];
  Builder.label b (l "neg_m");
  Builder.insns b [ Emit.sub ~ov:true Reg.r0 m acc; Emit.mret ];
  Builder.label b (l "neg_y");
  Builder.insns b [ Emit.sub ~ov:true Reg.r0 y acc; Emit.mret ];
  Builder.to_source b

(* ------------------------------------------------------------------ *)

let all =
  Program.concat
    [
      naive_source;
      naive_early_source;
      nibble_source;
      switch_source;
      final_source;
      mulo_source;
    ]

let entries =
  [ "mul_naive"; "mul_naive_early"; "mul_nibble"; "mul_switch"; "mul_final"; "mulo" ]

let reference = Word.mul_lo

let mulo_reference a b =
  if Word.mul_overflows_s a b then None else Some (Word.mul_lo a b)
