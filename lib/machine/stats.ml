(* Execution statistics, backed by the unified observability layer.

   Every quantity is an [Obs.Counter.t] so a machine's dynamic counts can
   be published into an [Obs.Registry.t] (hppa-run --metrics, bench json,
   the METRICS server verb) without a second bookkeeping path: the STATS
   numbers and the registry snapshot read the same atomics. A Stats value
   owns its counters — two machines never share them — so per-run cycle
   accounting ([diff]) stays exact even when many machines publish into
   one registry (each registration carries its own labels, last wins). *)

module Obs = Hppa_obs.Obs

type t = {
  executed : Obs.Counter.t;
  nullified : Obs.Counter.t;
  branches_taken : Obs.Counter.t;
  histogram : (string, Obs.Counter.t) Hashtbl.t;
  traps : (string, Obs.Counter.t) Hashtbl.t;
  registry : Obs.Registry.t option;
  labels : (string * string) list;
}

let create ?registry ?(labels = []) () =
  let t =
    {
      executed = Obs.Counter.create ();
      nullified = Obs.Counter.create ();
      branches_taken = Obs.Counter.create ();
      histogram = Hashtbl.create 32;
      traps = Hashtbl.create 4;
      registry;
      labels;
    }
  in
  (match registry with
  | None -> ()
  | Some reg ->
      Obs.Registry.register_counter reg ~labels
        ~help:"Dynamically executed instructions" "hppa_sim_executed_total"
        t.executed;
      Obs.Registry.register_counter reg ~labels
        ~help:"Nullified instructions (cost their cycle)"
        "hppa_sim_nullified_total" t.nullified;
      Obs.Registry.register_counter reg ~labels
        ~help:"Taken branches" "hppa_sim_branches_taken_total"
        t.branches_taken);
  t

let reset t =
  Obs.Counter.reset t.executed;
  Obs.Counter.reset t.nullified;
  Obs.Counter.reset t.branches_taken;
  Hashtbl.iter (fun _ c -> Obs.Counter.reset c) t.histogram;
  Hashtbl.iter (fun _ c -> Obs.Counter.reset c) t.traps

(* Get-or-create the per-mnemonic counter, publishing it (labelled) when a
   registry is attached. The hot path is the Hashtbl.find_opt hit. *)
let mnemonic_counter t mnemonic =
  match Hashtbl.find_opt t.histogram mnemonic with
  | Some c -> c
  | None ->
      let c = Obs.Counter.create () in
      Hashtbl.replace t.histogram mnemonic c;
      (match t.registry with
      | None -> ()
      | Some reg ->
          Obs.Registry.register_counter reg
            ~labels:(("mnemonic", mnemonic) :: t.labels)
            ~help:"Executed instructions by mnemonic" "hppa_sim_insns_total" c);
      c

let record t ~nullified ~mnemonic =
  if nullified then Obs.Counter.incr t.nullified
  else begin
    Obs.Counter.incr t.executed;
    Obs.Counter.incr (mnemonic_counter t mnemonic)
  end

let record_branch_taken t = Obs.Counter.incr t.branches_taken

let record_trap t trap_name =
  let c =
    match Hashtbl.find_opt t.traps trap_name with
    | Some c -> c
    | None ->
        let c = Obs.Counter.create () in
        Hashtbl.replace t.traps trap_name c;
        (match t.registry with
        | None -> ()
        | Some reg ->
            Obs.Registry.register_counter reg
              ~labels:(("trap", trap_name) :: t.labels)
              ~help:"Traps taken by kind" "hppa_sim_traps_total" c);
        c
  in
  Obs.Counter.incr c

(* Bulk variants for the threaded engine, which counts locally during a run
   and settles the totals once on exit. *)
let add_executed t ~mnemonic n =
  if n > 0 then begin
    Obs.Counter.add t.executed n;
    Obs.Counter.add (mnemonic_counter t mnemonic) n
  end

let add_nullified t n = if n > 0 then Obs.Counter.add t.nullified n
let add_branches_taken t n = if n > 0 then Obs.Counter.add t.branches_taken n
let cycles t = Obs.Counter.get t.executed + Obs.Counter.get t.nullified
let executed t = Obs.Counter.get t.executed
let nullified t = Obs.Counter.get t.nullified
let branches_taken t = Obs.Counter.get t.branches_taken

let by_mnemonic t =
  Hashtbl.fold (fun k c acc -> (k, Obs.Counter.get c) :: acc) t.histogram []
  |> List.filter (fun (_, n) -> n > 0)
  |> List.sort (fun (k1, v1) (k2, v2) ->
         match compare v2 v1 with 0 -> compare k1 k2 | c -> c)

let by_trap t =
  Hashtbl.fold (fun k c acc -> (k, Obs.Counter.get c) :: acc) t.traps []
  |> List.filter (fun (_, n) -> n > 0)
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)

let diff ~before ~after = cycles after - cycles before

(* A snapshot is detached: fresh counters, no registry publication. *)
let snapshot t =
  let copy_tbl tbl =
    let out = Hashtbl.create (max 1 (Hashtbl.length tbl)) in
    Hashtbl.iter
      (fun k c ->
        let c' = Obs.Counter.create () in
        Obs.Counter.add c' (Obs.Counter.get c);
        Hashtbl.replace out k c')
      tbl;
    out
  in
  let copy c =
    let c' = Obs.Counter.create () in
    Obs.Counter.add c' (Obs.Counter.get c);
    c'
  in
  {
    executed = copy t.executed;
    nullified = copy t.nullified;
    branches_taken = copy t.branches_taken;
    histogram = copy_tbl t.histogram;
    traps = copy_tbl t.traps;
    registry = None;
    labels = t.labels;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>cycles: %d (executed %d, nullified %d, taken branches %d)"
    (cycles t) (executed t) (nullified t) (branches_taken t);
  List.iter (fun (m, n) -> Format.fprintf ppf "@,  %-12s %d" m n) (by_mnemonic t);
  List.iter
    (fun (m, n) -> Format.fprintf ppf "@,  trap:%-7s %d" m n)
    (by_trap t);
  Format.fprintf ppf "@]"
