module Word = Hppa_word.Word

let overflow_break_code = 1

(* The unrolled unsigned core, shared by both entries: dividend (hi in
   [rem_init], lo in t2 beforehand), divisor arg2; quotient ret0,
   remainder t3. Requires C = V = 0 on entry to the steps. *)
let emit_core64 b =
  for _ = 1 to 32 do
    Builder.insns b [ Emit.addc Reg.t2 Reg.t2 Reg.t2; Emit.ds Reg.t3 Reg.arg2 Reg.t3 ]
  done;
  Builder.insns b
    [
      Emit.addc Reg.r0 Reg.r0 Reg.t4;
      Emit.shadd 1 Reg.t2 Reg.t4 Reg.ret0;
      Emit.comiclr Cond.Neq 0l Reg.t4 Reg.r0;
      Emit.add Reg.t3 Reg.arg2 Reg.t3;
    ]

let divU64_source =
  let b = Builder.create ~prefix:"divU64" () in
  Builder.label b "divU64";
  Builder.insns b
    [
      (* hi < divisor implies divisor != 0 and a 32-bit quotient; the
         non-restoring invariant starts from R = hi in [0, y). *)
      Emit.comb Cond.Ule Reg.arg2 Reg.arg0 "divU64$ovfl";
      Emit.add Reg.r0 Reg.r0 Reg.r0; (* C := 0, V := 0 *)
      Emit.copy Reg.arg1 Reg.t2;
      Emit.copy Reg.arg0 Reg.t3;
    ];
  emit_core64 b;
  Builder.insns b [ Emit.copy Reg.t3 Reg.ret1; Emit.mret ];
  Builder.label b "divU64$ovfl";
  Builder.insn b (Emit.break overflow_break_code);
  Builder.to_source b

(* Signed: take magnitudes (64-bit negation of the dividend pair), run the
   unsigned core, then bound-check the quotient against the signed range
   and restore the signs. *)
let divI64_source =
  let b = Builder.create ~prefix:"divI64" () in
  let l s = "divI64$" ^ s in
  Builder.label b "divI64";
  Builder.insns b
    [
      Emit.comib Cond.Eq 0l Reg.arg2 (l "zero");
      Emit.xor Reg.arg0 Reg.arg2 Reg.t5; (* quotient sign *)
      Emit.copy Reg.arg0 Reg.t1; (* remainder sign = dividend's *)
      (* |dividend|: negate the 64-bit pair when hi is negative. *)
      Emit.comb Cond.Ge Reg.arg0 Reg.r0 (l "dpos");
      Emit.sub Reg.r0 Reg.arg1 Reg.arg1;
      Emit.subb Reg.r0 Reg.arg0 Reg.arg0;
    ];
  Builder.label b (l "dpos");
  Builder.insns b
    [
      Emit.comclr Cond.Ge Reg.arg2 Reg.r0 Reg.r0;
      Emit.sub Reg.r0 Reg.arg2 Reg.arg2;
      Emit.comb Cond.Ule Reg.arg2 Reg.arg0 (l "ovfl");
      Emit.add Reg.r0 Reg.r0 Reg.r0;
      Emit.copy Reg.arg1 Reg.t2;
      Emit.copy Reg.arg0 Reg.t3;
    ];
  emit_core64 b;
  Builder.insns b
    [
      (* Signed range: |q| <= 2^31 - 1, or 2^31 when the quotient is
         negative. *)
      Emit.comb Cond.Ge Reg.t5 Reg.r0 (l "qpos");
      Emit.ldil Int32.min_int Reg.t4;
      Emit.comb Cond.Ult Reg.t4 Reg.ret0 (l "ovfl"); (* q > 2^31 *)
      Emit.sub Reg.r0 Reg.ret0 Reg.ret0;
      Emit.b (l "rem");
    ];
  Builder.label b (l "qpos");
  Builder.insn b (Emit.comb Cond.Lt Reg.ret0 Reg.r0 (l "ovfl")); (* q >= 2^31 *)
  Builder.label b (l "rem");
  Builder.insns b
    [
      Emit.comclr Cond.Ge Reg.t1 Reg.r0 Reg.r0;
      Emit.sub Reg.r0 Reg.t3 Reg.t3;
      Emit.copy Reg.t3 Reg.ret1;
      Emit.mret;
    ];
  Builder.label b (l "zero");
  Builder.insn b (Emit.break Hppa_machine.Trap.divide_by_zero_code);
  Builder.label b (l "ovfl");
  Builder.insn b (Emit.break overflow_break_code);
  Builder.to_source b

let source = Program.concat [ divU64_source; divI64_source ]
let entries = [ "divU64"; "divI64" ]

let reference ~hi ~lo y =
  if Word.le_u y hi then None
  else
    let dividend =
      Int64.logor (Int64.shift_left (Word.to_int64_u hi) 32) (Word.to_int64_u lo)
    in
    let y64 = Word.to_int64_u y in
    Some
      ( Word.of_int64 (Int64.unsigned_div dividend y64),
        Word.of_int64 (Int64.unsigned_rem dividend y64) )

let reference_signed ~hi ~lo y =
  if Word.equal y 0l then None
  else
    let dividend =
      Int64.logor (Int64.shift_left (Word.to_int64_s hi) 32) (Word.to_int64_u lo)
    in
    let y64 = Word.to_int64_s y in
    (* Int64.min_int / -1 overflows the host too; it is out of range here
       anyway. *)
    if dividend = Int64.min_int && y64 = -1L then None
    else
      let q = Int64.div dividend y64 in
      if q < -0x8000_0000L || q > 0x7fff_ffffL then None
      else Some (Word.of_int64 q, Word.of_int64 (Int64.rem dividend y64))
