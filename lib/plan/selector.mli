(** Cost-model dispatch over the strategy registry.

    Given a {!Strategy.request}, enumerate the applicable strategies,
    score each under the selection {!Strategy.context}, and pick the
    cheapest one that can actually emit code. Modelled-only baselines
    (the §2 booth / shift-subtract machines) and strategies whose cost
    is an [Error] in this context (e.g. a chain over the inline
    threshold) stay in the candidate table — every consumer that prints
    a plan can show {e why} the losers lost — but are never chosen. *)

type candidate = {
  strategy : Strategy.t;
  cost : (Strategy.cost, string) result;
      (** [Error reason] = applicable in shape, rejected in context *)
}

type choice = {
  request : Strategy.request;
  context : Strategy.context;
  chosen : Strategy.t;
  cost : Strategy.cost;
  emission : Strategy.emission;
  certificate : Hppa_verify.Certificate.t option;
      (** the proof carried by the winner under [~require_certified];
          [None] in ordinary (unproved) selection *)
  candidates : candidate list;  (** every applicable strategy, scored *)
}

val candidates :
  ?ctx:Strategy.context -> Strategy.request -> candidate list
(** All strategies whose [applies] accepts the request, in registry
    order, each scored under [ctx] (default {!Strategy.standalone}). *)

val choose :
  ?ctx:Strategy.context ->
  ?obs:Hppa_obs.Obs.Registry.t ->
  ?require_certified:bool ->
  Strategy.request ->
  (choice, string) result
(** Pick the cheapest emitting candidate (stable: at equal score the
    registry order wins) and emit it. When [obs] is given, bumps
    [hppa_plan_candidates_total{strategy=...}] for every scored
    candidate and [hppa_plan_selections_total{strategy=...}] for the
    winner. With [~require_certified:true], a candidate is only chosen
    if {!Strategy.certify} discharges its proof obligation; the winner's
    certificate lands in the choice (and bumps
    [hppa_verify_certified_total{kind=...}]), while candidates that
    emitted but failed certification are re-ranked down with a
    ["not certified: ..."] rejection reason in the candidate table.
    [Error] when no strategy applies or every applicable one fails to
    emit (or, under [~require_certified], to certify). *)

val pp_choice : Format.formatter -> choice -> unit
(** The CLI plan table: request, chosen strategy with cost, then every
    candidate with its score or rejection reason. *)
