examples/quickstart.ml: Asm Format Hppa Hppa_machine Hppa_word Program Reg
