(* hppa-lint: static verification of Precision assembly.

   With no file, checks the built-in millicode library — the plain image
   in the simple model and the scheduled image in the delay-slot model —
   and expects both to be clean.

   With a file:
     hppa-lint prog.s -e mulU -e divU
     hppa-lint --delay scheduled.s -e mulU
     hppa-lint prog.s -e mulc_10 --certify 10
     hppa-lint prog.s -e divu7 --certify-div 7
     hppa-lint prog.s -e mulU --cfg *)

module V = Hppa_verify

let report name findings =
  if findings = [] then Format.printf "%s: clean@." name
  else Format.printf "@[<v>%s:@,%a@]@." name V.Findings.pp_list findings;
  findings <> []

let lint_millicode () =
  let bad = report "millicode (plain)" (Hppa.Millicode.lint ()) in
  let bad' =
    report "millicode (scheduled)" (Hppa.Millicode.lint ~scheduled:true ())
  in
  if bad || bad' then 1 else 0

let lint_file path entries delay blr_slots cfg_dump certify certify_div =
  let options =
    { V.Cfg.mode = (if delay then V.Cfg.Delay_slot else V.Cfg.Simple); blr_slots }
  in
  let ( let* ) = Result.bind in
  let result =
    let* text =
      try Ok (In_channel.with_open_text path In_channel.input_all)
      with Sys_error msg -> Error msg
    in
    let* src = Asm.parse text in
    let* prog = Program.resolve src in
    let entries =
      if entries <> [] then entries
      else
        (* default: every label that is anyone's branch target nowhere —
           i.e. treat each label as a potential entry *)
        List.filter_map
          (function Program.Label l -> Some l | Program.Insn _ -> None)
          src
    in
    if cfg_dump then begin
      let cfg = V.Cfg.make options prog in
      let addrs = List.filter_map (Program.symbol prog) entries in
      V.Cfg.pp_blocks cfg Format.std_formatter
        (V.Cfg.blocks cfg ~entries:addrs)
    end;
    let findings = V.Driver.check ~options ~entries prog in
    let bad = report path findings in
    let* cert_bad =
      match certify with
      | None -> Ok false
      | Some n -> (
          match entries with
          | [ entry ] ->
              let verdict =
                V.Driver.certify ~options prog ~entry
                  ~multiplier:(Int32.of_int n)
              in
              Format.printf "%s x %d: %a@." entry n V.Linear.pp_verdict verdict;
              Ok (verdict <> V.Linear.Certified)
          | _ -> Error "--certify needs exactly one -e entry"
          )
    in
    let* div_bad =
      match certify_div with
      | None -> Ok false
      | Some d -> (
          match entries with
          | [ entry ] ->
              (* Like the DIV protocol verb: d > 0 claims the unsigned
                 routine, d < 0 the signed one for |d|. *)
              let claim =
                {
                  V.Reciprocal.op = `Div;
                  signed = d < 0;
                  divisor = Int32.of_int d;
                }
              in
              let verdict = V.Driver.certify_division ~options prog ~entry ~claim in
              Format.printf "%s / %d: %a@." entry d V.Reciprocal.pp_verdict
                verdict;
              Ok
                (match verdict with
                | V.Reciprocal.Certified _ -> false
                | V.Reciprocal.Refuted _ | V.Reciprocal.Unknown _ -> true)
          | _ -> Error "--certify-div needs exactly one -e entry")
    in
    Ok (if bad || cert_bad || div_bad then 1 else 0)
  in
  match result with
  | Ok code -> code
  | Error msg ->
      Format.eprintf "hppa-lint: %s@." msg;
      2

let run file entries delay blr_slots cfg_dump certify certify_div =
  match file with
  | None -> lint_millicode ()
  | Some path ->
      lint_file path entries delay blr_slots cfg_dump certify certify_div

open Cmdliner

let file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Assembly file to check (default: the millicode library).")

let entries =
  Arg.(value & opt_all string [] & info [ "e"; "entry" ] ~docv:"LABEL"
         ~doc:"Entry label to analyze from (repeatable; default: every label).")

let delay =
  Arg.(value & flag & info [ "d"; "delay" ]
         ~doc:"Check under the delay-slot model (for scheduled code).")

let blr_slots =
  Arg.(value & opt int 16 & info [ "blr-slots" ] ~docv:"N"
         ~doc:"Case-table slots a blr may dispatch to (default 16).")

let cfg_dump =
  Arg.(value & flag & info [ "cfg" ] ~doc:"Dump the basic-block graph first.")

let certify =
  Arg.(value & opt (some int) None & info [ "certify" ] ~docv:"N"
         ~doc:"Certify that the single -e entry computes N * arg0 in ret0.")

let certify_div =
  Arg.(value & opt (some int) None & info [ "certify-div" ] ~docv:"D"
         ~doc:"Certify that the single -e entry divides arg0 by $(docv): \
               D > 0 claims the unsigned routine, D < 0 the signed one. \
               Exit 1 unless the proof is Certified.")

let cmd =
  Cmd.v
    (Cmd.info "hppa-lint"
       ~doc:"Statically verify Precision assembly: control flow, \
             definedness, delay-slot hazards, calling convention, and \
             multiply-chain and constant-divide certification")
    Term.(const run $ file $ entries $ delay $ blr_slots $ cfg_dump $ certify
          $ certify_div)

let () = exit (Cmd.eval' cmd)
