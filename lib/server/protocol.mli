(** The hppa-serve wire protocol.

    Line-oriented, ASCII, one request and one reply per line. Requests:

    {v MUL <n>                 constant-multiply plan for the int32 n
      DIV <d>                 constant-divide plan (d < 0: signed plan)
      MULB <n...>             batch of 1..64 constant-multiply plans
      DIVB <d...>             batch of 1..64 constant-divide plans
      W64MUL <u|s> <x> <y>    64x64 multiply (128-bit product) of int64s
      W64DIV <u|s> <x> <y>    64/64 truncating divide
      W64REM <u|s> <x> <y>    64/64 remainder
      W64MULB <u|s> <x y...>  batch of 1..16 W64MUL operand pairs
      W64DIVB <u|s> <x y...>  batch of 1..16 W64DIV operand pairs
      W64REMB <u|s> <x y...>  batch of 1..16 W64REM operand pairs
      EVAL <entry> <args...>  run a millicode entry (up to 4 int32 args)
      STATS                   server counters and latency percentiles
      METRICS                 Prometheus text scrape of the registry
      PING                    liveness probe
      QUIT                    close this connection v}

    Replies are a single line starting with ["OK "] or ["ERR "] — with
    two exceptions. [METRICS] replies with multi-line Prometheus
    exposition text terminated by a line reading ["# EOF"]. The batch
    verbs [MULB]/[DIVB] reply with a header line ["OK MULB k=<K>"]
    followed by exactly K lines, the i-th being byte-identical to the
    reply a scalar [MUL <n_i>] / [DIV <d_i>] request would have
    produced (["OK ..."] or, e.g. for a zero divisor lane,
    ["ERR ..."]):

    {v OK MUL n=625 steps=4 ... code=...
      ERR parse unknown command "FROB" v}

    The W64 verbs carry their run-time operands on the request line:
    a signedness token ([u] or [s]) followed by signed decimal int64
    operands (the canonical form {!pp_request} prints; [0x..] literal
    syntax is also accepted on input). The batch forms take whitespace-
    separated [x y] pairs — an odd operand count, a bad signedness, or
    any malformed operand rejects the whole batch. [W64MULB]/[W64DIVB]/
    [W64REMB] reply exactly like [MULB]: a header ["OK <verb> k=<K>"]
    then K lines byte-identical to the scalar replies (divide lanes
    that trap reply ["ERR trap ..."] without poisoning the batch).

    Parsing is total: {!parse} never raises, whatever the input bytes.
    Number arguments accept OCaml int literal syntax ([0x..] included)
    and must fit in 32 bits (64 for the W64 verbs). *)

type w64_op = W64_mul | W64_div | W64_rem

type request =
  | Mul of int32
  | Div of int32
  | Mulb of int32 list
  | Divb of int32 list
  | W64 of { op : w64_op; signed : bool; x : int64; y : int64 }
  | W64b of { op : w64_op; signed : bool; pairs : (int64 * int64) list }
  | Eval of string * Hppa_word.Word.t list
  | Stats
  | Metrics
  | Ping
  | Quit

val verb : request -> string
(** The command word of a request (["MUL"], ["EVAL"], ...) — used as
    the [verb] label on per-verb latency histograms. *)

val max_line_bytes : int
(** Longest accepted request line (1024); longer lines are rejected with
    an [oversized] error by {!Server.respond} and by the connection
    reader. *)

val max_batch_operands : int
(** Most operands one [MULB]/[DIVB] request may carry (64) — sized so a
    maximal batch still fits in {!max_line_bytes}. One malformed
    operand rejects the whole batch: a partial batch would
    desynchronize the lane-indexed reply. *)

val max_w64_batch_pairs : int
(** Most operand pairs one [W64MULB]/[W64DIVB]/[W64REMB] request may
    carry (16) — int64 decimal tokens are up to 20 bytes, so a maximal
    pair batch still fits in {!max_line_bytes}. *)

val parse : string -> (request, string) result
(** Parse one request line (no trailing newline; a trailing ['\r'] is
    tolerated). [Error detail] is ["<category> <message>"], ready to be
    prefixed with ["ERR "]. Never raises. *)

val ok : string -> string
(** [ok payload] is ["OK " ^ payload]. *)

val err : string -> string
(** [err detail] is ["ERR " ^ detail], with newlines squashed so the
    reply stays one line. *)

val is_ok : string -> bool
val is_err : string -> bool

val pp_request : Format.formatter -> request -> unit
