lib/isa/delay.ml: Array Cond Insn List Program Reg
