lib/word/word.ml: Format Int32 Int64 Printf
