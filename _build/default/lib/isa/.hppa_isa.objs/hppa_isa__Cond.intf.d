lib/isa/cond.mli: Format Hppa_word
