type mode = Simple | Delay_slot
type options = { mode : mode; blr_slots : int }

let default = { mode = Simple; blr_slots = 16 }
let delay = { mode = Delay_slot; blr_slots = 16 }

type spec = {
  name : string;
  args : Reg.t list;
  results : Reg.t list;
  clobbers : Reg.t list;
}

let scratch =
  [
    Reg.arg0; Reg.arg1; Reg.arg2; Reg.arg3; Reg.ret0; Reg.ret1; Reg.t1;
    Reg.t2; Reg.t3; Reg.t4; Reg.t5; Reg.mrp;
  ]

let default_spec name =
  { name; args = [ Reg.arg0; Reg.arg1 ]; results = [ Reg.ret0 ]; clobbers = scratch }

type dest = Addrs of int list | Call of int | Exit
type node = Insn of int | Slot of int * dest | Summary of int | Tail of int * int
type edge = Step of node | Ret | Trap | Off_image | Indirect

type t = {
  opts : options;
  prog : Program.resolved;
  specs : (string * spec) list;
  entry_addrs : (int, unit) Hashtbl.t;  (** addresses of declared entries *)
  jumped_into : bool array;
      (** can control arrive here other than by fall-through from the
          previous instruction? (label, branch target, BLR slot, or
          nullifier skip) *)
}

let make ?(specs = []) opts prog =
  let code = prog.Program.code in
  let n = Array.length code in
  let entry_addrs = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt prog.Program.symbols s.name with
      | Some a -> Hashtbl.replace entry_addrs a ()
      | None -> ())
    specs;
  let jumped_into = Array.make n false in
  let mark a = if a >= 0 && a < n then jumped_into.(a) <- true in
  Hashtbl.iter (fun _ a -> mark a) prog.Program.symbols;
  Array.iteri
    (fun addr i ->
      (match Insn.target i with Some a -> mark a | None -> ());
      (match (i : int Insn.t) with
      | Blr _ ->
          let base = match opts.mode with Simple -> addr + 1 | Delay_slot -> addr + 2 in
          for k = 0 to opts.blr_slots - 1 do
            mark (base + (2 * k))
          done
      | Bl _ ->
          mark (match opts.mode with Simple -> addr + 1 | Delay_slot -> addr + 2)
      | _ -> ());
      if Delay.is_nullifier i then mark (addr + 2))
    code;
  { opts; prog; specs = List.map (fun s -> (s.name, s)) specs; entry_addrs; jumped_into }

let options t = t.opts
let program t = t.prog
let length t = Array.length t.prog.Program.code
let insn t addr = t.prog.Program.code.(addr)

let addr_of = function
  | Insn a | Slot (a, _) -> Some a
  | Tail (site, _) -> Some site
  | Summary _ -> None

let spec_at t addr =
  let name =
    match Hashtbl.find_opt t.prog.Program.names addr with
    | Some n -> n
    | None -> "<anon>"
  in
  match List.assoc_opt name t.specs with
  | Some s -> s
  | None -> default_spec name

(* The address a [Summary c] resumes at: where the BL at [c] linked to. *)
let return_addr t c = match t.opts.mode with Simple -> c + 1 | Delay_slot -> c + 2

(* The callee entry of the BL at [c]. *)
let callee t c =
  match insn t c with
  | Insn.Bl { target; _ } -> target
  | _ -> invalid_arg "Cfg: Summary node not at a BL"

let link_reg t c =
  match insn t c with
  | Insn.Bl { t = link; _ } -> link
  | _ -> invalid_arg "Cfg: Summary node not at a BL"

let step_to t a = if a >= 0 && a < length t then Step (Insn a) else Off_image

(* A taken-branch landing site: a declared entry becomes a tail call. *)
let land_at t ~site a =
  if a >= 0 && a < length t then
    if Hashtbl.mem t.entry_addrs a then Step (Tail (site, a)) else Step (Insn a)
  else Off_image

(* Where a taken branch at [addr] with completer [n] and destination [d]
   transfers: directly in simple mode or with a nullified slot, through the
   slot node otherwise. *)
let taken t addr n (d : dest) : edge list =
  let direct () =
    match d with
    | Addrs l -> List.map (land_at t ~site:addr) l
    | Call c -> [ Step (Summary c) ]
    | Exit -> [ Ret ]
  in
  match t.opts.mode with
  | Simple -> direct ()
  | Delay_slot ->
      if n then direct ()
      else if addr + 1 < length t then [ Step (Slot (addr + 1, d)) ]
      else [ Off_image ]

let is_return_bv x base =
  Reg.equal x Reg.r0 && (Reg.equal base Reg.rp || Reg.equal base Reg.mrp)

let blr_dests t addr =
  let base = match t.opts.mode with Simple -> addr + 1 | Delay_slot -> addr + 2 in
  let rec go k acc =
    if k >= t.opts.blr_slots then List.rev acc
    else
      let d = base + (2 * k) in
      go (k + 1) (if d < length t then d :: acc else acc)
  in
  go 0 []

(* The guaranteed-trap idiom: [LDIL k,r; ADDO r,r,r0] with [k+k]
   overflowing. Recognised only when control cannot enter between the
   pair, so the constant is certain. *)
let guaranteed_trap t addr =
  match insn t addr with
  | Insn.Alu { op = Insn.Add; a; b; trap_ov = true; _ }
    when addr > 0 && Reg.equal a b && not t.jumped_into.(addr) -> (
      match insn t (addr - 1) with
      | Insn.Ldil { imm; t = r } ->
          Reg.equal r a && Hppa_word.Word.add_overflows_s imm imm
      | _ -> false)
  | _ -> false

let succs_insn t addr (i : int Insn.t) : edge list =
  if guaranteed_trap t addr then [ Trap ]
  else
    match i with
  | Comb { target; n; _ } | Comib { target; n; _ } | Addib { target; n; _ } ->
      taken t addr n (Addrs [ target ]) @ [ step_to t (addr + 1) ]
  | B { target; n } -> taken t addr n (Addrs [ target ])
  | Bl { n; _ } -> taken t addr n (Call addr)
  | Blr { n; _ } -> taken t addr n (Addrs (blr_dests t addr))
  | Bv { x; base; n } ->
      if is_return_bv x base then taken t addr n Exit else [ Indirect ]
  | Break _ -> [ Trap ]
  | _ ->
      if Delay.is_nullifier i then
        (* may annul the next instruction: fall through to it, or skip it *)
        [ step_to t (addr + 1); step_to t (addr + 2) ]
      else [ step_to t (addr + 1) ]

let succs t = function
  | Insn addr -> succs_insn t addr (insn t addr)
  | Slot (a, d) -> (
      match d with
      | Addrs l -> List.map (land_at t ~site:a) l
      | Call c -> [ Step (Summary c) ]
      | Exit -> [ Ret ])
  | Summary c -> [ step_to t (return_addr t c) ]
  | Tail _ -> [ Ret ]

let reads t = function
  | Insn a | Slot (a, _) -> Insn.reads_distinct (insn t a)
  | Summary c ->
      let s = spec_at t (callee t c) in
      let link = link_reg t c in
      if List.exists (Reg.equal link) s.args then s.args else s.args @ [ link ]
  | Tail (_, callee) -> (spec_at t callee).args

let writes_real i =
  match Insn.writes i with
  | Some r when Reg.equal r Reg.r0 -> None
  | w -> w

let defines t = function
  | Insn a | Slot (a, _) -> (
      match writes_real (insn t a) with Some r -> [ r ] | None -> [])
  | Summary c -> (spec_at t (callee t c)).results
  | Tail (_, callee) -> (spec_at t callee).results

let unspecifies t = function
  | Insn _ | Slot _ -> []
  | Summary c ->
      let s = spec_at t (callee t c) in
      List.filter (fun r -> not (List.exists (Reg.equal r) s.results)) s.clobbers
  | Tail (_, callee) ->
      let s = spec_at t callee in
      List.filter (fun r -> not (List.exists (Reg.equal r) s.results)) s.clobbers

let reachable t ~entries =
  let seen = Hashtbl.create 256 in
  let order = ref [] in
  let rec visit n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      order := n :: !order;
      List.iter (function Step n' -> visit n' | _ -> ()) (succs t n)
    end
  in
  List.iter (fun a -> if a >= 0 && a < length t then visit (Insn a)) entries;
  List.rev !order

type block = { id : int; nodes : node list; succ : int list; exits : edge list }

let blocks t ~entries =
  let nodes = reachable t ~entries in
  let preds = Hashtbl.create 256 in
  let bump n = Hashtbl.replace preds n (1 + Option.value ~default:0 (Hashtbl.find_opt preds n)) in
  List.iter
    (fun n -> List.iter (function Step n' -> bump n' | _ -> ()) (succs t n))
    nodes;
  let entry_nodes = List.filter_map (fun a -> if a >= 0 && a < length t then Some (Insn a) else None) entries in
  let is_leader n =
    List.exists (( = ) n) entry_nodes
    || Option.value ~default:0 (Hashtbl.find_opt preds n) <> 1
  in
  (* a node also leads if its unique predecessor branches *)
  let forced = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let ss = succs t n in
      let steps = List.filter_map (function Step s -> Some s | _ -> None) ss in
      if List.length steps > 1 || List.length ss > List.length steps then
        List.iter (fun s -> Hashtbl.replace forced s ()) steps)
    nodes;
  let is_leader n = is_leader n || Hashtbl.mem forced n in
  let leaders = List.filter is_leader nodes in
  let id_of = Hashtbl.create 64 in
  List.iteri (fun i l -> Hashtbl.replace id_of l i) leaders;
  let block_of leader id =
    let rec chase n acc =
      let ss = succs t n in
      match ss with
      | [ Step s ] when not (Hashtbl.mem id_of s) -> chase s (s :: acc)
      | _ ->
          let succ =
            List.filter_map
              (function Step s -> Hashtbl.find_opt id_of s | _ -> None)
              ss
          and exits = List.filter (function Step _ -> false | _ -> true) ss in
          { id; nodes = List.rev acc; succ; exits }
    in
    chase leader [ leader ]
  in
  List.mapi (fun i l -> block_of l i) leaders

let pp_node t ppf n =
  let pp_insn a = Insn.pp Format.pp_print_int ppf (insn t a) in
  match n with
  | Insn a ->
      Format.fprintf ppf "%4d: " a;
      pp_insn a
  | Slot (a, _) ->
      Format.fprintf ppf "%4d: " a;
      pp_insn a;
      Format.fprintf ppf "  ; delay slot"
  | Summary c ->
      let callee = callee t c in
      Format.fprintf ppf "      call %s  ; summary" (spec_at t callee).name
  | Tail (site, callee) ->
      Format.fprintf ppf "%4d: tail call %s  ; summary" site (spec_at t callee).name

let pp_blocks t ppf bs =
  List.iter
    (fun b ->
      Format.fprintf ppf "block %d -> [%a]%s@."
        b.id
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           Format.pp_print_int)
        b.succ
        (if b.exits = [] then ""
         else
           " exits:"
           ^ String.concat ","
               (List.map
                  (function
                    | Ret -> "ret"
                    | Trap -> "trap"
                    | Off_image -> "off-image"
                    | Indirect -> "indirect"
                    | Step _ -> assert false)
                  b.exits));
      List.iter (fun n -> Format.fprintf ppf "  %a@." (pp_node t) n) b.nodes)
    bs
