lib/compiler/expr.ml: Format Hashtbl Hppa_word List
