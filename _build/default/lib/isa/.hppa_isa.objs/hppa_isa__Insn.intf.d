lib/isa/insn.mli: Cond Format Reg
