(** The unified kernel-strategy interface.

    The paper's engineering move is {e choosing among} multiply/divide
    code sequences by operand class (§5 chains for constants, §6 the
    variable-multiply ladder, §7 reciprocal vs. millicode fallback for
    divisors). This module gives every such family one algebraic shape: a
    named strategy declares the requests it applies to, a cost under a
    selection context, and an [emit] that produces Precision code with a
    declared entry point and a {!Hppa_verify.Cfg.spec} calling
    convention — so the compiler, the plan server, the CLIs and the bench
    all dispatch through the same registry instead of hard-wiring
    planner calls at each site.

    The existing planners ({!Hppa.Mul_const}, {!Hppa.Div_const},
    {!Hppa.Div_small}, the millicode variable entries and the
    {!Hppa_baselines} booth/shift-subtract models) are wrapped, not
    replaced: each registered strategy defers to its module. *)

(** {1 Requests} *)

type op = Mul | Div | Rem | Divl
(** [Divl] is the three-operand 128/64 divide ([divU128by64]): a
    double-word-pair dividend and a dword divisor, quotient and
    remainder dwords out. W64-only, always unsigned. *)

type operand = Constant of int32 | Constant64 of int64 | Variable
(** [Constant64] is a double-word compile-time constant; only valid at
    {!W64} width. *)

type signedness = Unsigned | Signed

type width = W32 | W64
(** Operand width: the paper's single-word operations, or the
    double-word (64-bit) family built over them — operands and results
    as (hi:lo) register pairs. *)

type request = {
  op : op;
  operand : operand;
  signedness : signedness;
  trap_overflow : bool;
      (** require a trap on signed overflow (the §5 monotonic-chain /
          [mulo] discipline); divides ignore it *)
  width : width;
}

val mul_const : ?trap_overflow:bool -> int32 -> request
(** Signed multiply by a compile-time constant. *)

val mul_var : ?trap_overflow:bool -> unit -> request
val div_const : signedness -> int32 -> request
val div_var : signedness -> request
val rem_const : signedness -> int32 -> request
val rem_var : signedness -> request

val w64_mul : signedness -> request
val w64_div : signedness -> request
val w64_rem : signedness -> request
(** The double-word family; always [Variable] (pairs arrive at run
    time), never trapping on overflow (the 128-bit product cannot
    overflow; the divides trap on [-2^63 / -1] regardless). *)

val w64_divl : request
(** The 128/64 divide: dividend dword pair and divisor dword at run
    time, unsigned. *)

val w64_mul_const : ?trap_overflow:bool -> int64 -> request
val w64_div_const : signedness -> int64 -> request
val w64_rem_const : signedness -> int64 -> request
(** Double-word operations against a 64-bit compile-time constant
    ([Constant64]); the variable pair arrives in (arg0:arg1). *)

val pp_request : Format.formatter -> request -> unit

val request_id : request -> string
(** Compact stable identifier, safe for metric labels and store keys:
    ["mul.c625.s"], ["div.var.u"], ["mul.c-7.s.trap"], ["mul.var.u.w64"],
    ["mul.c15.s.w64"], ["divl.var.u.w64"], ... *)

val request_of_string : string -> (request, string) result
(** Parse the CLI plan-request syntax: an operation ([mul], [mulo],
    [divu], [divi], [remu], [remi], or the 64-bit [w64mulu], [w64muli],
    [w64divu], [w64divi], [w64remu], [w64remi], [w64divl]) followed by a
    constant or [x]/[var] for a run-time operand — e.g. ["mul 625"],
    ["divu x"], ["w64divu 10"], ["w64divl x"]. W32 forms take 32-bit
    constants, w64 forms take 64-bit constants; [w64divl] accepts only
    [x]. *)

(** {1 Selection contexts}

    Costs are context-dependent: inline expansion inside compiled code
    competes against a branch-and-link call (so chains are capped at the
    compiler's inline threshold), while a standalone routine always
    exists and is scored by its static length. *)

type purpose =
  | Standalone  (** emit a self-contained routine (server, CLIs, bench) *)
  | Inline_expansion  (** expand at a call site inside compiled code *)

type context = {
  purpose : purpose;
  inline_mul_threshold : int;
      (** longest chain worth inlining under {!Inline_expansion} *)
  small_divisor_dispatch : bool;
      (** operand model says variable divisors are usually < 20, making
          the §7 vectored dispatch worth its overhead *)
  millicode_mul_cycles : int;
      (** modelled average of the production [mulI] (paper: < 20) *)
  millicode_div_cycles : int;
      (** modelled average of the general [divU]/[divI] (paper: ~80) *)
}

val standalone : context
val compiler : ?small_divisor_dispatch:bool -> unit -> context
(** The compiler's context: [Inline_expansion] with
    [inline_mul_threshold = Hppa_compiler.Lower.inline_mul_threshold]'s
    value (6). *)

(** {1 Emissions} *)

(** What the emitted code wraps, kept so consumers can render the
    underlying planner records (the server's reply payloads are built
    from these and must stay byte-identical). *)
type detail =
  | Mul_plan of Hppa.Mul_const.plan
  | Div_plan of Hppa.Div_const.plan
  | Millicode of string  (** tail-call wrapper around this library entry *)
  | Pair_chain of Hppa.Chain.t
      (** double-word addition chain over register pairs (W64 constant
          multiply), emitted by {!Hppa.Chain_codegen.body_at_pair} *)

type emission = {
  entry : string;
  source : Program.source;
  spec : Hppa_verify.Cfg.spec;
      (** declared convention of [entry]: dividend/multiplicand in
          [arg0] (variable second operand in [arg1]), results per spec *)
  deps : Program.source list;
      (** compilation units the source must be linked with (e.g.
          {!Hppa.Div_gen.source} for fallback divides) *)
  callee_specs : Hppa_verify.Cfg.spec list;
      (** conventions of entries the emission may (tail-)call *)
  static_instructions : int;
  detail : detail;
}

val link : emission -> (Program.resolved, string) result
(** Resolve the emission concatenated with its [deps]. *)

val verify : emission -> (unit, string) result
(** {!Hppa_verify.Driver.check} over the linked program for the declared
    entry and convention; [Error] carries the findings, so [Ok ()] means
    lint-clean. *)

val encoded : emission -> (int32 array, string) result
(** Binary encoding of the linked program, checked to round-trip through
    {!Hppa_isa.Encode.decode_program}. *)

val digest : emission -> (string, string) result
(** Content address: MD5 hex of the encoded binary. *)

val certify : request -> emission -> (Hppa_verify.Certificate.t, string) result
(** Discharge the proof obligation matching the emission's shape:
    constant multiplies through the linear-form certifier
    ({!Hppa_verify.Linear}), constant divides/remainders through the
    reciprocal certifier (with divide-step and [ldi; b] wrapper
    dispatch, {!Hppa_verify.Driver.certify_division}), variable divides
    through the divide-step schema matcher on the millicode target, the
    small-divisor dispatchers through the vectored-dispatch totality
    proof, and every W64 millicode emission through the body-equivalence
    certifier ({!Hppa_verify.Equiv}) against the canonical millicode
    image. [Error] carries the refutation or the reason the emission is
    outside every certifier's domain (e.g. the variable multiply
    ladder, or a W64 {!Pair_chain} — under certified-only selection the
    millicode call-through wins for those requests). *)

(** {1 Strategies} *)

type kind =
  | Emits  (** produces runnable Precision code *)
  | Modelled
      (** a §2 baseline with a cost model only (never selected; appears
          in candidate tables and autotune measurements) *)

type cost = {
  score : int;
      (** static instructions for emitted routines, modelled average
          cycles for call-through strategies — the units the paper
          itself compares when it breaks even chains against [mulI] *)
  note : string;  (** where the number comes from *)
}

type t = {
  name : string;
  description : string;
  kind : kind;
  applies : request -> bool;  (** shape filter: op/operand/signedness *)
  cost : context -> request -> (cost, string) result;
      (** [Error reason] = applicable in shape but rejected in this
          context (e.g. chain longer than the inline threshold) *)
  emit : request -> (emission, string) result;
  model : (request -> Hppa_word.Word.t -> Hppa_word.Word.t -> int option) option;
      (** modelled cycle count for one operand pair ([Modelled]
          baselines); [None] when undefined (e.g. division by zero) *)
}

val all : t list
(** The registry, in tie-break order (earlier wins at equal score). *)

val find : string -> t option
