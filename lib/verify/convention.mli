(** Millicode calling-convention check: a routine may write only its
    declared clobber set (plus its results). Writes to [rp], [sp] or any
    callee-saved register reachable from the entry are errors — a caller
    that inlined a [BL mulU,mrp] expects everything outside the scratch
    set intact. Return-path result definedness is the complementary half,
    checked by {!Defuse.undefined_results} from the must-defined state. *)

val check : Cfg.t -> entry:int -> Findings.t list
