module Word = Hppa_word.Word

type op = Mul | Div

type event = { op : op; x : Word.t; y : Word.t; y_is_constant : bool }

type config = {
  const_operand_fraction : float;
  positive_fraction : float;
  div_fraction : float;
  small_divisor_fraction : float;
}

let default_config =
  {
    const_operand_fraction = 0.91;
    positive_fraction = 0.9;
    div_fraction = 0.25;
    small_divisor_fraction = 0.7;
  }

let generate ?(config = default_config) g ~n =
  List.init n (fun _ ->
      let op = if Prng.bool g ~p:config.div_fraction then Div else Mul in
      match op with
      | Mul ->
          let x, y =
            Operand_dist.figure5_pair ~positive_fraction:config.positive_fraction g
          in
          let y_is_constant = Prng.bool g ~p:config.const_operand_fraction in
          { op; x; y; y_is_constant }
      | Div ->
          (* Dividends log-uniform; divisors small most of the time, per
             the §7 "divisors less than twenty" emphasis. *)
          let x = Operand_dist.log_uniform g in
          let y =
            if Prng.bool g ~p:config.small_divisor_fraction then
              Operand_dist.small_divisor g
            else
              let v = Operand_dist.log_uniform ~bits:16 g in
              if Word.equal v 0l then 1l else v
          in
          let y_is_constant = Prng.bool g ~p:config.const_operand_fraction in
          { op; x; y; y_is_constant })

type summary = {
  events : int;
  muls : int;
  divs : int;
  const_operand_pct : float;
  min_operand_lt16_pct : float;
  both_positive_pct : float;
  bucket_pcts : float list;
  small_divisor_pct : float;
}

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let analyze events =
  let muls = List.filter (fun e -> e.op = Mul) events in
  let divs = List.filter (fun e -> e.op = Div) events in
  let nmul = List.length muls and ndiv = List.length divs in
  let count p l = List.length (List.filter p l) in
  let min_mag e =
    let mag w = Int64.abs (Word.to_int64_s w) in
    Int64.to_int (min (mag e.x) (mag e.y))
  in
  let bucket_counts =
    List.map
      (fun (b : Operand_dist.bucket) ->
        count (fun e -> min_mag e >= b.lo && min_mag e <= b.hi) muls)
      Operand_dist.figure5_buckets
  in
  {
    events = List.length events;
    muls = nmul;
    divs = ndiv;
    const_operand_pct = pct (count (fun e -> e.y_is_constant) events) (List.length events);
    min_operand_lt16_pct = pct (count (fun e -> min_mag e < 16) muls) nmul;
    both_positive_pct =
      pct
        (count (fun e -> not (Word.is_neg e.x || Word.is_neg e.y)) muls)
        nmul;
    bucket_pcts = List.map (fun c -> pct c nmul) bucket_counts;
    small_divisor_pct =
      pct
        (count (fun e -> Word.lt_u 0l e.y && Word.lt_u e.y 20l) divs)
        (max ndiv 1);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d events (%d mul, %d div)@,\
     constant operand:     %5.1f%%@,\
     min operand < 16:     %5.1f%% of multiplies@,\
     both positive:        %5.1f%% of multiplies@,\
     figure-5 buckets:     %s@,\
     divisor < 20:         %5.1f%% of divides@]"
    s.events s.muls s.divs s.const_operand_pct s.min_operand_lt16_pct
    s.both_positive_pct
    (String.concat " / " (List.map (Printf.sprintf "%.1f%%") s.bucket_pcts))
    s.small_divisor_pct
