lib/dist/gibson.ml:
