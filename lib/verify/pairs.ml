(* The register-pair calling convention of the W64 millicode family:
   64-bit operands and results travel as (hi:lo) word pairs in fixed
   slots — arguments in (arg0:arg1) / (arg2:arg3), plus (ret0:ret1) for
   the third operand dword of the 128/64 divide — results in (ret0:ret1)
   and, for routines that return a second dword, back in (arg0:arg1). *)

type pair = Reg.t * Reg.t

type spec = { name : string; arg_pairs : pair list; result_pairs : pair list }

let arg_slots =
  [ (Reg.arg0, Reg.arg1); (Reg.arg2, Reg.arg3); (Reg.ret0, Reg.ret1) ]
let result_slots = [ (Reg.ret0, Reg.ret1); (Reg.arg0, Reg.arg1) ]

let pair_equal (a, b) (c, d) = Reg.equal a c && Reg.equal b d
let pp_pair ppf (hi, lo) = Format.fprintf ppf "(%a:%a)" Reg.pp hi Reg.pp lo

let finding ?addr name fmt =
  Format.kasprintf (fun message -> Findings.v ~routine:name ?addr Findings.Pair message) fmt

(* Declaration shape: every declared pair must sit in a canonical slot,
   and its halves must be covered by the routine's flat register spec
   (so the pair view and the word view of the interface agree). *)
let shape cfg ~entry spec =
  let flat = Cfg.spec_at cfg entry in
  let covered rs r = List.exists (Reg.equal r) rs in
  let slot_findings kind slots covering =
    List.concat_map
      (fun ((hi, lo) as p) ->
        (if List.exists (pair_equal p) slots then []
         else
           [
             finding spec.name "%s pair %a is not a canonical pair slot" kind
               pp_pair p;
           ])
        @ List.filter_map
            (fun r ->
              if covered covering r then None
              else
                Some
                  (finding spec.name
                     "%s pair %a: half %a is missing from the declared %s set"
                     kind pp_pair p Reg.pp r kind))
            [ hi; lo ])
  in
  slot_findings "argument" arg_slots flat.Cfg.args spec.arg_pairs
  @ slot_findings "result" result_slots
      (flat.Cfg.results @ flat.Cfg.clobbers)
      spec.result_pairs

(* Forward must-defined fixpoint (register component only — the pair
   rule does not track the PSW). *)
let must_defined cfg ~entry args =
  let mask r = 1 lsl Reg.to_int r in
  let of_list = List.fold_left (fun s r -> s lor mask r) 0 in
  let ins = Hashtbl.create 128 in
  let entry_node = Cfg.Insn entry in
  Hashtbl.replace ins entry_node
    (of_list (Reg.r0 :: Reg.rp :: Reg.sp :: Reg.mrp :: args));
  let transfer node s =
    let defs = of_list (Cfg.defines cfg node) in
    match node with
    | Cfg.Summary _ | Cfg.Tail _ ->
        (s land lnot (of_list (Cfg.unspecifies cfg node))) lor defs
    | Cfg.Insn _ | Cfg.Slot _ -> s lor defs
  in
  let work = Queue.create () in
  Queue.add entry_node work;
  while not (Queue.is_empty work) do
    let n = Queue.pop work in
    let out = transfer n (Hashtbl.find ins n) in
    List.iter
      (function
        | Cfg.Step s -> (
            match Hashtbl.find_opt ins s with
            | None ->
                Hashtbl.replace ins s out;
                Queue.add s work
            | Some old ->
                if old land out <> old then begin
                  Hashtbl.replace ins s (old land out);
                  Queue.add s work
                end)
        | _ -> ())
      (Cfg.succs cfg n)
  done;
  (ins, transfer, mask)

(* Both halves of every result pair must be defined on every return
   path, and both halves of every argument pair must be consumed
   somewhere — a pair routine reading only one half almost certainly
   has its (hi:lo) order swapped. *)
let dataflow cfg ~entry spec =
  let nodes = Cfg.reachable cfg ~entries:[ entry ] in
  let halves ps = List.concat_map (fun (hi, lo) -> [ hi; lo ]) ps in
  let ins, transfer, mask =
    must_defined cfg ~entry (halves spec.arg_pairs)
  in
  let at_ret =
    List.concat_map
      (fun n ->
        if
          List.exists (function Cfg.Ret -> true | _ -> false) (Cfg.succs cfg n)
        then
          match Hashtbl.find_opt ins n with
          | None -> []
          | Some s ->
              let out = transfer n s in
              List.concat_map
                (fun ((hi, lo) as p) ->
                  List.filter_map
                    (fun r ->
                      if out land mask r <> 0 then None
                      else
                        Some
                          (finding ?addr:(Cfg.addr_of n) spec.name
                             "result pair %a: half %a is not defined on this \
                              return path"
                             pp_pair p Reg.pp r))
                    [ hi; lo ])
                spec.result_pairs
        else [])
      nodes
  in
  let read =
    List.fold_left
      (fun acc n -> List.fold_left (fun acc r -> acc lor mask r) acc (Cfg.reads cfg n))
      0 nodes
  in
  let unread =
    List.concat_map
      (fun ((hi, lo) as p) ->
        List.filter_map
          (fun r ->
            if read land mask r <> 0 then None
            else
              Some
                (finding spec.name
                   "argument pair %a: half %a is never read" pp_pair p Reg.pp r))
          [ hi; lo ])
      spec.arg_pairs
  in
  at_ret @ unread

let check cfg ~spec =
  match Program.symbol (Cfg.program cfg) spec.name with
  | None -> [ finding spec.name "entry label is not defined" ]
  | Some entry -> shape cfg ~entry spec @ dataflow cfg ~entry spec
