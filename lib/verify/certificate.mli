(** Proof-carrying plan certificates.

    A certificate records {e why} a division (or constant-multiply)
    routine is believed correct over the whole 2{^32} dividend domain:
    which certifier proved it, the transcript of discharged obligations
    (the coverage bound, the no-wrap bound, the matched millicode
    schema, ...), and a content digest over both so the certificate can
    ride beside the plan digest in stores and server artifacts.

    Certificates are {e data}, not trust: every constructor here is
    produced only by the certifiers ({!Linear}, {!Reciprocal},
    {!Divstep}, the dispatch checker in {!Driver}), each of which
    discharges a closed-form argument — never a sampling loop over
    dividends. *)

type kind =
  | Linear_mul of int32
      (** the §5 linear-form certificate: result = multiplier * x *)
  | Reciprocal_div of { divisor : int32; signed : bool; rem : bool }
      (** the §7 reciprocal / power-of-two / even-split proof for one
          compile-time divisor ([rem] = the remainder variant) *)
  | Divide_step of { entry : string; signed : bool }
      (** the unrolled 32-step non-restoring millicode loop, matched
          structurally against the generator schema *)
  | Dispatch of { entry : string; divisors : int * int }
      (** a §6-style vectored small-divisor table: total over the
          inclusive divisor range, every arm certified, the general
          path divide-step certified *)
  | Body_equiv of { entry : string; insns : int }
      (** the routine's reachable body (over [insns] instructions,
          including transitively called millicode) is structurally
          identical — instruction by instruction, with a consistent
          branch-target correspondence — to the canonical library
          routine of the same name, whose behaviour the differential
          suite pins against the two-word reference ({!Equiv}) *)

type t = {
  kind : kind;
  transcript : string list;
      (** human-readable record of the discharged obligations *)
  digest : string;  (** MD5 hex over kind and transcript *)
}

val v : kind -> string list -> t
(** Build a certificate, computing its digest. *)

val kind_label : kind -> string
(** Stable metric-label name: ["linear_mul"], ["reciprocal_div"],
    ["divide_step"], ["dispatch"] or ["body_equiv"]. *)

val describe : kind -> string
(** One-line rendering of the kind with its parameters. *)

val pp : Format.formatter -> t -> unit
