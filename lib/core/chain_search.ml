(* The search state is the multiset-free list of values generated so far
   (0 and 1 implicit). Candidate extensions enumerate every instruction form
   over every pair of available elements. *)

module Obs = Hppa_obs.Obs

type lengths_table = { max_len : int; limit : int; best : int array }

let max_len t = t.max_len
let limit t = t.limit

let default_cap limit = (4 * limit) + 16

(* Enumerate every value derivable in one step from [values] (which includes
   0 and 1), calling [f value step]. Steps reference [values] indices. *)
let candidates ~cap values nvals f =
  for j = 0 to nvals - 1 do
    let x = values.(j) in
    (* Shifts of x. *)
    if x <> 0 then begin
      let s = ref 1 in
      while
        !s <= 31
        && Int.abs x <= (max_int asr (!s + 1))
        && Int.abs (x lsl !s) <= cap
      do
        f (x lsl !s) (Chain.Shl (j, !s));
        incr s
      done
    end;
    for k = 0 to nvals - 1 do
      let y = values.(k) in
      (* x + y, unordered. *)
      if k <= j && Int.abs (x + y) <= cap then f (x + y) (Chain.Add (j, k));
      (* (x << m) + y, ordered. *)
      for m = 1 to 3 do
        let v = (x lsl m) + y in
        if Int.abs x <= max_int asr 4 && Int.abs v <= cap then
          f v (Chain.Shadd (m, j, k))
      done;
      (* x - y, ordered. *)
      if Int.abs (x - y) <= cap then f (x - y) (Chain.Sub (j, k))
    done
  done

let useful v values nvals =
  let fresh = ref (v <> 0 && v <> 1) in
  for i = 0 to nvals - 1 do
    if values.(i) = v then fresh := false
  done;
  !fresh

(* ------------------------------------------------------------------ *)
(* Breadth-first closure                                               *)

(* Value sets are small sorted int arrays; the table operations on them
   are the closure's inner loop, so the key operations are monomorphic —
   the polymorphic [Stdlib.(=)]/[Hashtbl.hash] walk the representation
   through a generic comparator and cost several times as much. *)
module Key = struct
  type t = int array

  let equal (a : int array) (b : int array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec eq i = i >= n || (a.(i) = b.(i) && eq (i + 1)) in
    eq 0

  (* FNV-1a over the elements (values may be negative; the final mask
     keeps the result non-negative). *)
  let hash (a : int array) =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor a.(i)) * 0x01000193
    done;
    !h land max_int
end

module Tbl = Hashtbl.Make (Key)

(* Sets are kept sorted ascending and never contain duplicates ([useful]
   filters members), so extension is a single-shift insertion rather
   than a polymorphic [Array.sort compare]. *)
let sorted_insert arr v =
  let n = Array.length arr in
  let out = Array.make (n + 1) v in
  let i = ref 0 in
  while !i < n && arr.(!i) < v do
    incr i
  done;
  Array.blit arr 0 out 0 !i;
  out.(!i) <- v;
  Array.blit arr !i out (!i + 1) (n - !i);
  out

let lengths_table ?cap ?(domains = 1) ?obs ~max_len ~limit () =
  if max_len < 0 || limit < 1 then invalid_arg "Chain_search.lengths_table";
  if domains < 1 then
    invalid_arg "Chain_search.lengths_table: domains must be >= 1";
  (* Progress counters: workers count into shard-local ints and the merge
     settles them, so the published totals are exact for any domain count
     (and identical across domain counts, like the table itself). *)
  let counters =
    Option.map
      (fun reg ->
        ( Obs.Registry.counter reg ~help:"Frontier sets expanded"
            "hppa_chain_sets_expanded_total",
          Obs.Registry.counter reg ~help:"Candidate chain extensions enumerated"
            "hppa_chain_candidates_total",
          Obs.Registry.counter reg ~help:"Completed BFS depths"
            "hppa_chain_depths_total",
          Obs.Registry.gauge reg ~help:"Size of the most recent frontier"
            "hppa_chain_frontier_size" ))
      obs
  in
  let cap = Option.value cap ~default:(default_cap limit) in
  let best = Array.make (limit + 1) max_int in
  best.(1) <- 0;
  let visited = Tbl.create 4096 in
  (* Expand one shard of the depth-[depth] frontier. Workers share
     [visited] read-only (no writer runs concurrently, so concurrent
     reads are safe) and keep private [lbest]/[next] accumulators, which
     makes the merge below order-independent and hence the table
     deterministic for every domain count. *)
  let expand_range frontier depth ~lo ~hi =
    let lbest = Array.make (limit + 1) max_int in
    let next = Tbl.create 4096 in
    let scratch = Array.make (max_len + 3) 0 in
    let cands = ref 0 in
    for idx = lo to hi - 1 do
      let set = frontier.(idx) in
      let n = Array.length set in
      scratch.(0) <- 0;
      scratch.(1) <- 1;
      Array.blit set 0 scratch 2 n;
      let nvals = n + 2 in
      candidates ~cap scratch nvals (fun v _step ->
          incr cands;
          if useful v scratch nvals then begin
            if v >= 1 && v <= limit && depth < lbest.(v) then
              lbest.(v) <- depth;
            if depth < max_len then begin
              let key = sorted_insert set v in
              if (not (Tbl.mem visited key)) && not (Tbl.mem next key)
              then Tbl.add next key ()
            end
          end)
    done;
    (lbest, next, !cands)
  in
  let rec grow depth frontier =
    if depth > max_len || Array.length frontier = 0 then ()
    else begin
      let parts =
        Hppa_machine.Sweep.map_ranges ~domains
          (expand_range frontier depth)
          (Array.length frontier)
      in
      (* Deterministic merge: [best] takes the elementwise minimum, the
         next frontier the set union — both independent of worker count
         and completion order. *)
      let merged = Tbl.create 4096 in
      List.iter
        (fun (lbest, next, _) ->
          for v = 1 to limit do
            if lbest.(v) < best.(v) then best.(v) <- lbest.(v)
          done;
          Tbl.iter
            (fun k () -> if not (Tbl.mem merged k) then Tbl.add merged k ())
            next)
        parts;
      let frontier' = Array.of_seq (Tbl.to_seq_keys merged) in
      (match counters with
      | None -> ()
      | Some (sets, cands, depths, frontier_size) ->
          Obs.Counter.add sets (Array.length frontier);
          List.iter (fun (_, _, c) -> Obs.Counter.add cands c) parts;
          Obs.Counter.incr depths;
          Obs.Gauge.set frontier_size (float_of_int (Array.length frontier')));
      Array.iter (fun k -> Tbl.add visited k ()) frontier';
      grow (depth + 1) frontier'
    end
  in
  grow 1 [| [||] |];
  { max_len; limit; best }

let length_of t n =
  if n < 1 || n > t.limit then None
  else if t.best.(n) = max_int then None
  else Some t.best.(n)

(* ------------------------------------------------------------------ *)
(* Per-target iterative deepening                                      *)

let find ?cap ~max_len target =
  if target < 1 then invalid_arg "Chain_search.find";
  let cap = Option.value cap ~default:((4 * target) + 16) in
  if target = 1 then Some []
  else begin
    let exception Found of Chain.t in
    let values = Array.make (max_len + 2) 0 in
    values.(1) <- 1;
    let steps = Array.make (max_len + 2) (Chain.Add (0, 0)) in
    (* DFS filling [values] from index 2 up to [2 + depth - 1]. *)
    let rec dfs nvals remaining =
      if remaining = 1 then
        candidates ~cap values nvals (fun v step ->
            if v = target then begin
              steps.(nvals) <- step;
              let chain =
                Array.to_list (Array.sub steps 2 (nvals - 1))
              in
              raise (Found chain)
            end)
      else begin
        (* Deduplicate candidate values at this node. *)
        let seen = Hashtbl.create 64 in
        candidates ~cap values nvals (fun v step ->
            if useful v values nvals && not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              values.(nvals) <- v;
              steps.(nvals) <- step;
              dfs (nvals + 1) (remaining - 1);
              values.(nvals) <- 0
            end)
      end
    in
    let rec deepen d =
      if d > max_len then None
      else
        try
          dfs 2 d;
          deepen (d + 1)
        with Found chain -> Some chain
    in
    deepen 1
  end
