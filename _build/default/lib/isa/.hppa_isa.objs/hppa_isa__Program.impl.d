lib/isa/program.ml: Array Format Hashtbl Insn List Printf
