type mode = Fast | Monotonic | No_temp

(* How a table entry was produced; [m] is the predecessor target. *)
type rule =
  | Base (* n = 1 *)
  | Rshl of int * int (* n = m << k                 [Shl]            *)
  | Rdouble of int (* n = 2m                     [Add last last]  *)
  | Rshadd_self of int * int (* n = (2^k + 1) m, k in 1..3 [Shadd k l l]    *)
  | Rshadd_zero of int * int (* n = m << k, k in 1..3      [Shadd k l r0]   *)
  | Radd1 of int (* n = m + 1                  [Add last one]   *)
  | Raddp2 of int * int (* n = m + 2^k, k in 1..3     [Shadd k one l]  *)
  | Rsub1 of int (* n = m - 1                  [Sub last one]   *)
  | Rshadd1 of int * int (* n = (m << k) + 1, k 1..3   [Shadd k l one]  *)
  | Rmul2k_minus of int * int (* n = (2^k - 1) m            [Shl; Sub]      *)
  | Rmul2k_plus of int * int (* n = (2^k + 1) m, k >= 4    [Shl; Add]      *)
  | Rfactor of int * int (* n = p * q                  [compose]       *)
  | Rseed of int (* minimal chain of this length from the exhaustive
                    depth-3 closure — the paper's "remembering the
                    exceptions" *)

type table = {
  mode : mode;
  limit : int;
  seed_cap : int;
  costs : int array; (* index 0 unused; max_int = unreachable *)
  rules : rule array;
}

let unreachable = max_int

let table_limit t = t.limit

(* ------------------------------------------------------------------ *)
(* Relaxation                                                          *)

let relax t n cand rule =
  if n >= 1 && n <= t.limit && cand < t.costs.(n) then begin
    t.costs.(n) <- cand;
    t.rules.(n) <- rule;
    true
  end
  else false

(* Forward edges from a settled target [m]. Returns true if anything
   improved. *)
let relax_from t m =
  let c = t.costs.(m) in
  if c = unreachable then false
  else begin
    let changed = ref false in
    let mark n cand rule = if relax t n cand rule then changed := true in
    let fast = t.mode = Fast || t.mode = No_temp in
    (* Doubling and small shift-and-add multiples. *)
    mark (2 * m) (c + 1) (Rdouble m);
    for k = 1 to 3 do
      let f = (1 lsl k) + 1 in
      if m <= t.limit / f then mark (f * m) (c + 1) (Rshadd_self (m, k));
      if m lsl k <= t.limit then begin
        if t.mode <> Fast then mark (m lsl k) (c + 1) (Rshadd_zero (m, k));
        mark ((m lsl k) + 1) (c + 1) (Rshadd1 (m, k))
      end;
      mark (m + (1 lsl k)) (c + 1) (Raddp2 (m, k))
    done;
    mark (m + 1) (c + 1) (Radd1 m);
    if fast then begin
      mark (m - 1) (c + 1) (Rsub1 m);
      (* Arbitrary shifts. *)
      let k = ref 1 in
      while m lsl !k <= t.limit && !k <= 31 do
        mark (m lsl !k) (c + 1) (Rshl (m, !k));
        incr k
      done
    end;
    if t.mode = Fast then
      (* (2^k +/- 1) multiples through an out-of-table intermediate; the
         subtraction step reads two non-adjacent elements, so these need a
         temporary and are excluded from No_temp. *)
      for k = 2 to 31 do
        let f = (1 lsl k) - 1 in
        if f <= t.limit && m <= t.limit / f then
          mark (f * m) (c + 2) (Rmul2k_minus (m, k));
        let f = (1 lsl k) + 1 in
        if k >= 4 && f <= t.limit && m <= t.limit / f then
          mark (f * m) (c + 2) (Rmul2k_plus (m, k))
      done;
    !changed
  end

let relax_factors t =
  let changed = ref false in
  for p = 2 to t.limit / 2 do
    if t.costs.(p) < unreachable then
      let q = ref p in
      while !q <= t.limit / p do
        if t.costs.(!q) < unreachable then begin
          let cand = t.costs.(p) + t.costs.(!q) in
          if relax t (p * !q) cand (Rfactor (p, !q)) then changed := true
        end;
        incr q
      done
  done;
  !changed

(* The value-level relaxation cannot express chains that reuse an
   intermediate element twice (the paper's 59 is the canonical case), so
   Fast tables are seeded with the exact exhaustive closure to depth 3 —
   cheap, and the same move as the paper's "by remembering these
   exceptions, minimal length chains may be generated". *)
let seed_depth = 3

let table mode ~limit =
  if limit < 1 then invalid_arg "Chain_rules.table: limit must be >= 1";
  let seed_cap = (4 * limit) + 16 in
  let t =
    {
      mode;
      limit;
      seed_cap;
      costs = Array.make (limit + 1) unreachable;
      rules = Array.make (limit + 1) Base;
    }
  in
  t.costs.(1) <- 0;
  if mode = Fast then begin
    let ex =
      Chain_search.lengths_table ~cap:seed_cap ~max_len:seed_depth ~limit ()
    in
    for n = 2 to limit do
      match Chain_search.length_of ex n with
      | Some l when l < t.costs.(n) ->
          t.costs.(n) <- l;
          t.rules.(n) <- Rseed l
      | Some _ | None -> ()
    done
  end;
  let continue = ref true in
  while !continue do
    let changed = ref false in
    for m = 1 to limit do
      if relax_from t m then changed := true
    done;
    (* Factor composition keeps an old element live across the inner
       chain, so it is excluded from No_temp. *)
    if t.mode <> No_temp && relax_factors t then changed := true;
    continue := !changed
  done;
  t

let cost t n =
  if n < 1 || n > t.limit then None
  else
    let c = t.costs.(n) in
    if c = unreachable then None else Some c

(* ------------------------------------------------------------------ *)
(* Reconstruction                                                      *)

(* Re-index [inner]'s steps so that its element 1 becomes the last element
   of [outer]: multiplying the two chains composes. *)
let compose outer inner =
  let shift = List.length outer in
  let last_of_outer = shift + 1 in
  let reindex j =
    if j = 0 then 0 else if j = 1 then last_of_outer else j + shift
  in
  let map_step : Chain.step -> Chain.step = function
    | Add (j, k) -> Add (reindex j, reindex k)
    | Shadd (m, j, k) -> Shadd (m, reindex j, reindex k)
    | Sub (j, k) -> Sub (reindex j, reindex k)
    | Shl (j, m) -> Shl (reindex j, m)
  in
  outer @ List.map map_step inner

(* Extend [c] (a chain for some m) by steps that only use the last element,
   element 1 and element 0. *)
let extend c steps_of_last =
  let last = List.length c + 1 in
  c @ steps_of_last last

let chain t n =
  let rec build n : Chain.t option =
    if n < 1 || n > t.limit || t.costs.(n) = unreachable then None
    else
      match t.rules.(n) with
      | Base -> Some []
      | Rshl (m, k) ->
          Option.map (fun c -> extend c (fun l -> [ Chain.Shl (l, k) ])) (build m)
      | Rdouble m ->
          Option.map (fun c -> extend c (fun l -> [ Chain.Add (l, l) ])) (build m)
      | Rshadd_self (m, k) ->
          Option.map (fun c -> extend c (fun l -> [ Chain.Shadd (k, l, l) ])) (build m)
      | Rshadd_zero (m, k) ->
          Option.map (fun c -> extend c (fun l -> [ Chain.Shadd (k, l, 0) ])) (build m)
      | Radd1 m ->
          Option.map (fun c -> extend c (fun l -> [ Chain.Add (l, 1) ])) (build m)
      | Raddp2 (m, k) ->
          Option.map (fun c -> extend c (fun l -> [ Chain.Shadd (k, 1, l) ])) (build m)
      | Rsub1 m ->
          Option.map (fun c -> extend c (fun l -> [ Chain.Sub (l, 1) ])) (build m)
      | Rshadd1 (m, k) ->
          Option.map (fun c -> extend c (fun l -> [ Chain.Shadd (k, l, 1) ])) (build m)
      | Rmul2k_minus (m, k) ->
          Option.map
            (fun c ->
              extend c (fun l -> [ Chain.Shl (l, k); Chain.Sub (l + 1, l) ]))
            (build m)
      | Rmul2k_plus (m, k) ->
          Option.map
            (fun c ->
              extend c (fun l -> [ Chain.Shl (l, k); Chain.Add (l + 1, l) ]))
            (build m)
      | Rfactor (p, q) -> (
          match (build p, build q) with
          | Some cp, Some cq -> Some (compose cp cq)
          | _, _ -> None)
      | Rseed l -> Chain_search.find ~cap:t.seed_cap ~max_len:l n
  in
  build n

(* ------------------------------------------------------------------ *)
(* Arbitrary single constants                                          *)

let shared_limit = 1 lsl 16

let shared_table =
  let cache : (mode, table) Hashtbl.t = Hashtbl.create 2 in
  fun mode ->
    match Hashtbl.find_opt cache mode with
    | Some t -> t
    | None ->
        let t = table mode ~limit:shared_limit in
        Hashtbl.add cache mode t;
        t

(* Recursive descent for targets beyond the shared table: only rules that
   shrink the target, so termination is structural. Not guaranteed minimal
   (neither was the paper's program); the compiler's cost model compares the
   result against the millicode multiply anyway. *)
let memo_find : (mode * int, Chain.t option) Hashtbl.t = Hashtbl.create 64

let rec descend mode n : Chain.t option =
  let t = shared_table mode in
  if n <= t.limit then chain t n
  else
    match Hashtbl.find_opt memo_find (mode, n) with
    | Some r -> r
    | None ->
        (* Break the cycle for the +/-1 wiggle on this value. *)
        Hashtbl.add memo_find (mode, n) None;
        let best = ref None in
        let consider c =
          match (c, !best) with
          | None, _ -> ()
          | Some c, Some b when List.length c >= List.length b -> ()
          | Some c, _ -> best := Some c
        in
        let try_rule m steps_of_last =
          consider (Option.map (fun c -> extend c steps_of_last) (descend mode m))
        in
        let fast = mode = Fast in
        let tz =
          let rec go k v = if v land 1 = 0 then go (k + 1) (v lsr 1) else k in
          go 0 n
        in
        if tz > 0 then begin
          let m = n asr tz in
          if fast then try_rule m (fun l -> [ Chain.Shl (l, tz) ])
          else begin
            (* Monotonic shifting in chunks of <= 3 via SHkADD with r0. *)
            let rec shifts l k acc =
              if k = 0 then List.rev acc
              else
                let s = min k 3 in
                shifts (l + 1) (k - s) (Chain.Shadd (s, l, 0) :: acc)
            in
            try_rule m (fun l -> shifts l tz [])
          end
        end
        else begin
          List.iter
            (fun (f, k) ->
              if n mod f = 0 then
                try_rule (n / f) (fun l -> [ Chain.Shadd (k, l, l) ]))
            [ (3, 1); (5, 2); (9, 3) ];
          for k = 1 to 3 do
            if (n - 1) land ((1 lsl k) - 1) = 0 && (n - 1) asr k > 0 then
              try_rule ((n - 1) asr k) (fun l -> [ Chain.Shadd (k, l, 1) ])
          done;
          try_rule (n - 1) (fun l -> [ Chain.Add (l, 1) ]);
          if fast then begin
            try_rule (n + 1) (fun l -> [ Chain.Sub (l, 1) ]);
            for k = 4 to 31 do
              let f = (1 lsl k) - 1 in
              if f <= n && n mod f = 0 then
                try_rule (n / f) (fun l ->
                    [ Chain.Shl (l, k); Chain.Sub (l + 1, l) ]);
              let f = (1 lsl k) + 1 in
              if f <= n && n mod f = 0 then
                try_rule (n / f) (fun l ->
                    [ Chain.Shl (l, k); Chain.Add (l + 1, l) ])
            done
          end
        end;
        Hashtbl.replace memo_find (mode, n) !best;
        !best

let find ?(mode = Fast) n =
  if n < 1 then invalid_arg "Chain_rules.find: target must be >= 1";
  descend mode n

let find_exn ?mode n =
  match find ?mode n with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Chain_rules.find_exn: no chain for %d" n)
