test/test_div.ml: Alcotest Div_const Div_gen Div_magic Div_magic_modern Hppa Hppa_machine Hppa_word Int32 Int64 Lazy List Millicode Printf Program QCheck Reg Util
