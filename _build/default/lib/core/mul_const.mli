(** Multiplication by compile-time constants (§5) — the public planner.

    Given a 32-bit constant, produce the cheapest straight-line multiply the
    rule program can find: a chain compiled by {!Chain_codegen}, or the
    one-instruction special cases (0, ±1, powers of two, the most negative
    number). With [overflow:true] the generated code traps on signed
    overflow exactly when the full product is unrepresentable, using
    monotonic chains (§5 "Overflow") — typically costing at most one extra
    step, as the paper's example for 31 shows.

    The paper's headline (§8): multiplications by constants generally take
    four or fewer single-cycle instructions. {!Chain_stats} quantifies this
    over ranges of constants. *)

type plan = {
  multiplier : int32;
  chain : Chain.t option;
      (** the chain for [|multiplier|], when one is used *)
  entry : string;
  source : Program.source;
      (** callable routine: multiplicand in [arg0], product in [ret0] *)
  static_instructions : int;  (** body length, excluding the return *)
  temporaries : int;
  overflow : bool;
}

val plan : ?overflow:bool -> ?entry:string -> int32 -> plan
(** Default entry label ["mulc_<n>"] (negative constants spell ["m<|n|>"]). *)

val cost : ?overflow:bool -> int32 -> int
(** [(plan n).static_instructions] without building the program. *)
