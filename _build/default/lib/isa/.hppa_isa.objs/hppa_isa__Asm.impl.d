lib/isa/asm.ml: Buffer Cond Emit Format Insn Int32 Int64 List Printf Program Reg String
