(** Statistics over chain lengths: the quantitative claims of §5.

    Everything here cross-references the rule program ({!Chain_rules}) with
    exhaustive search ({!Chain_search}) to regenerate Figure 1, the
    rule-program exception count, the "four or fewer instructions" summary
    claim, and the temporary-register analysis. *)

val figure1_rows :
  Chain_search.lengths_table -> max_entries:int -> (int * int list) list
(** [(r, least values with l(n) = r)] for each r up to the table's depth,
    at most [max_entries] values per row. *)

val first_with_length : Chain_search.lengths_table -> int -> int option
(** The paper's c(r): the least n with l(n) = r — or, when r exceeds the
    table depth by one, the least n not reachable at the depth bound (a
    certified lower bound making c(r) exact when the rule program matches
    it). *)

type exception_report = {
  total : int;  (** targets with a certified exhaustive length *)
  exceptions : (int * int * int) list;
      (** (n, exhaustive length, rule length) where the rule program is
          non-minimal — the paper's "12 cases" phenomenon *)
}

val rule_exceptions :
  Chain_rules.table -> Chain_search.lengths_table -> exception_report

val fraction_within : Chain_rules.table -> upto:int -> max_cost:int -> float
(** Share of constants in [1 .. upto] whose chain is at most [max_cost]
    steps (§8: "generally ... four or fewer"). *)

val needing_temporary : limit:int -> int list
(** Constants whose every minimal chain requires a temporary register:
    those where the best previous-element-only chain ({!Chain_rules}
    [No_temp] mode) is longer than the exhaustive minimum. The paper: 59,
    87 and 94 below 100. Uses exhaustive depth 4, so [limit] should stay
    within the l(n) <= 4 region (around 460). *)
