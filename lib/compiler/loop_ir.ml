module Word = Hppa_word.Word

type stmt = Assign of string * Expr.t

type t = {
  counter : string;
  start : int32;
  stop : int32;
  step : int32;
  body : stmt list;
}

let validate l =
  if Word.le_s l.step 0l then Error "step must be positive"
  else if List.exists (fun (Assign (v, _)) -> v = l.counter) l.body then
    Error "body must not assign the loop counter"
  else Ok ()

let eval ?(fuel = 1_000_000) l ~init =
  (match validate l with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Loop_ir.eval: " ^ msg));
  let env = Hashtbl.create 16 in
  List.iter (fun (v, x) -> Hashtbl.replace env v x) init;
  let lookup v =
    match Hashtbl.find_opt env v with
    | Some x -> x
    | None -> invalid_arg ("Loop_ir.eval: unbound variable " ^ v)
  in
  let i = ref l.start and fuel = ref fuel in
  while Word.lt_s !i l.stop do
    if !fuel = 0 then invalid_arg "Loop_ir.eval: out of fuel";
    decr fuel;
    Hashtbl.replace env l.counter !i;
    List.iter
      (fun (Assign (v, e)) -> Hashtbl.replace env v (Expr.eval ~env:lookup e))
      l.body;
    i := Word.add !i l.step
  done;
  Hashtbl.replace env l.counter !i;
  Hashtbl.fold (fun v x acc -> (v, x) :: acc) env []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Double-word evaluation. The counter itself stays a single-word
   quantity — bounds and step are 32-bit fields, and the compiled W64
   loop keeps it in one register, sign-extending on use — so it is
   stepped in 32-bit arithmetic (wrapping like [eval]) and published to
   the environment sign-extended. *)
let eval64 ?(fuel = 1_000_000) l ~init =
  (match validate l with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Loop_ir.eval64: " ^ msg));
  let env = Hashtbl.create 16 in
  List.iter (fun (v, x) -> Hashtbl.replace env v x) init;
  let lookup v =
    match Hashtbl.find_opt env v with
    | Some x -> x
    | None -> invalid_arg ("Loop_ir.eval64: unbound variable " ^ v)
  in
  let i = ref l.start and fuel = ref fuel in
  while Word.lt_s !i l.stop do
    if !fuel = 0 then invalid_arg "Loop_ir.eval64: out of fuel";
    decr fuel;
    Hashtbl.replace env l.counter (Int64.of_int32 !i);
    List.iter
      (fun (Assign (v, e)) ->
        Hashtbl.replace env v (Expr.eval64 ~env:lookup e))
      l.body;
    i := Word.add !i l.step
  done;
  Hashtbl.replace env l.counter (Int64.of_int32 !i);
  Hashtbl.fold (fun v x acc -> (v, x) :: acc) env []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let trip_count l =
  let span = Int64.sub (Word.to_int64_s l.stop) (Word.to_int64_s l.start) in
  if span <= 0L then 0
  else
    let step = Word.to_int64_s l.step in
    Int64.to_int (Int64.div (Int64.add span (Int64.sub step 1L)) step)

let dynamic_mul_div l =
  let m, d =
    List.fold_left
      (fun (m, d) (Assign (_, e)) ->
        let m', d' = Expr.mul_div_count e in
        (m + m', d + d'))
      (0, 0) l.body
  in
  let trips = trip_count l in
  (m * trips, d * trips)

let pp ppf l =
  Format.fprintf ppf "@[<v>for (%s = %ld; %s < %ld; %s += %ld) {" l.counter
    l.start l.counter l.stop l.counter l.step;
  List.iter
    (fun (Assign (v, e)) -> Format.fprintf ppf "@,  %s = %a;" v Expr.pp e)
    l.body;
  Format.fprintf ppf "@,}@]"
