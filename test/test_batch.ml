(* Differential tests: the batched (SoA) engine against the scalar
   threaded engine and the reference interpreter. Every lane of a batch
   must be observationally identical — outcome, all 32 registers, PSW
   C/V, PC, per-lane cycles, full memory — to a scalar machine with the
   same history, over all millicode entries, seeded random programs,
   mixed-lane traps and fuel-boundary lanes, at several widths
   including width 1. The aggregate statistics (executed / nullified /
   taken-branch counts and the mnemonic histogram) must equal the sum
   of the corresponding scalar runs. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Batch = Hppa_machine.Machine.Batch
module Stats = Hppa_machine.Stats
module Trap = Hppa_machine.Trap

let outcome_str = function
  | Machine.Halted -> "halted"
  | Machine.Trapped t -> "trapped: " ^ Trap.to_string t
  | Machine.Fuel_exhausted -> "fuel exhausted"

let outcome_eq a b =
  match (a, b) with
  | Machine.Halted, Machine.Halted -> true
  | Machine.Fuel_exhausted, Machine.Fuel_exhausted -> true
  | Machine.Trapped x, Machine.Trapped y -> Trap.equal x y
  | _ -> false

(* Compare one batch lane against a scalar machine that ran the same
   program with the same history. [scalar_cycles] is that machine's
   cycle delta for the run being compared. *)
let check_lane ~ctx ~mem_words b ~lane (m, om, scalar_cycles) =
  let ob = Batch.outcome b ~lane in
  if not (outcome_eq ob om) then
    Alcotest.failf "%s lane %d: outcome %s (batch) vs %s (scalar)" ctx lane
      (outcome_str ob) (outcome_str om);
  for i = 0 to 31 do
    let a = Batch.get_reg b ~lane (Reg.of_int i)
    and c = Machine.get m (Reg.of_int i) in
    if not (Word.equal a c) then
      Alcotest.failf "%s lane %d: r%d = %ld (batch) vs %ld (scalar)" ctx lane i
        a c
  done;
  if Batch.carry b ~lane <> Machine.carry m then
    Alcotest.failf "%s lane %d: carry" ctx lane;
  if Batch.v_bit b ~lane <> Machine.v_bit m then
    Alcotest.failf "%s lane %d: V" ctx lane;
  if Batch.pc b ~lane <> Machine.pc m then
    Alcotest.failf "%s lane %d: pc %d vs %d" ctx lane (Batch.pc b ~lane)
      (Machine.pc m);
  if Batch.cycles b ~lane <> scalar_cycles then
    Alcotest.failf "%s lane %d: cycles %d vs %d" ctx lane
      (Batch.cycles b ~lane) scalar_cycles;
  for w = 0 to mem_words - 1 do
    let addr = Int32.of_int (4 * w) in
    match (Batch.load_word b ~lane addr, Machine.load_word m addr) with
    | Ok a, Ok c when Word.equal a c -> ()
    | Ok a, Ok c ->
        Alcotest.failf "%s lane %d: mem[%d] %ld vs %ld" ctx lane (4 * w) a c
    | _ -> Alcotest.failf "%s lane %d: mem[%d] unreadable" ctx lane (4 * w)
  done

(* The aggregate batch statistics must be the lane-sum of the scalars. *)
let check_stats_sum ~ctx b scalars =
  let bs = Batch.stats b in
  let sum f = List.fold_left (fun acc m -> acc + f (Machine.stats m)) 0 scalars in
  if Stats.executed bs <> sum Stats.executed then
    Alcotest.failf "%s: executed %d vs lane sum %d" ctx (Stats.executed bs)
      (sum Stats.executed);
  if Stats.nullified bs <> sum Stats.nullified then
    Alcotest.failf "%s: nullified %d vs lane sum %d" ctx (Stats.nullified bs)
      (sum Stats.nullified);
  if Stats.branches_taken bs <> sum Stats.branches_taken then
    Alcotest.failf "%s: taken %d vs lane sum %d" ctx (Stats.branches_taken bs)
      (sum Stats.branches_taken);
  let add tbl (m, n) =
    Hashtbl.replace tbl m (n + (Option.value ~default:0 (Hashtbl.find_opt tbl m)))
  in
  let expect = Hashtbl.create 32 in
  List.iter
    (fun m -> List.iter (add expect) (Stats.by_mnemonic (Machine.stats m)))
    scalars;
  List.iter
    (fun (m, n) ->
      match Hashtbl.find_opt expect m with
      | Some e when e = n -> ()
      | Some e -> Alcotest.failf "%s: %s count %d vs lane sum %d" ctx m n e
      | None -> Alcotest.failf "%s: unexpected mnemonic %s in batch" ctx m)
    (Stats.by_mnemonic bs)

let gen_value st =
  match Random.State.int st 8 with
  | 0 -> Int32.of_int (Random.State.int st 64)
  | 1 -> Int32.of_int (Random.State.int st 4096 land lnot 3)
  | 2 -> Machine.halt_sentinel
  | 3 ->
      List.nth
        [ 0l; 1l; -1l; 2l; Int32.min_int; Int32.max_int; 0x7fffl; 0x8000l ]
        (Random.State.int st 8)
  | _ ->
      Int32.logor
        (Int32.shift_left (Int32.of_int (Random.State.int st 0x10000)) 16)
        (Int32.of_int (Random.State.int st 0x10000))

let widths = [ 1; 4; 7; 64 ]

(* Every millicode entry, random operands, several widths. Batch lanes
   and their paired scalar machines both persist register state across
   rounds, so the histories stay aligned and every round compares the
   full machine state, not just the returned values. *)
let millicode_differential () =
  let st = Random.State.make [| 0xBA7C; 1987 |] in
  let prog = Hppa.Millicode.resolved () in
  List.iter
    (fun width ->
      let b = Batch.create ~lanes:width prog in
      let scalar = Array.init width (fun _ -> Machine.create prog) in
      let interp =
        Array.init width (fun _ ->
            Machine.create
              ~config:{ Machine.Config.default with engine = false }
              prog)
      in
      List.iter
        (fun entry ->
          for round = 1 to 6 do
            let args =
              Array.init width (fun _ -> [ gen_value st; gen_value st ])
            in
            Batch.call b entry ~args;
            Array.iteri
              (fun l a ->
                let ctx =
                  Printf.sprintf "%s w=%d round %d" entry width round
                in
                let oe, ce = Machine.call_cycles scalar.(l) entry ~args:a in
                check_lane ~ctx ~mem_words:0 b ~lane:l (scalar.(l), oe, ce);
                let oi, ci = Machine.call_cycles interp.(l) entry ~args:a in
                check_lane ~ctx:(ctx ^ " (interp)") ~mem_words:0 b ~lane:l
                  (interp.(l), oi, ci))
              args
          done)
        Hppa.Millicode.entries;
      check_stats_sum
        ~ctx:(Printf.sprintf "millicode w=%d" width)
        b
        (Array.to_list scalar))
    widths

(* One lane divides by zero; its neighbours must be unaffected and the
   trap must be captured on that lane alone. *)
let mixed_lane_traps () =
  let prog = Hppa.Millicode.resolved () in
  let width = 8 in
  let b = Batch.create ~lanes:width prog in
  let scalar = Array.init width (fun _ -> Machine.create prog) in
  let args =
    Array.init width (fun l ->
        if l = 3 then [ 100l; 0l ]
        else [ Int32.of_int ((l * 7919) + 12345); Int32.of_int (l + 2) ])
  in
  Batch.call b "divU" ~args;
  Array.iteri
    (fun l a ->
      let om, cm = Machine.call_cycles scalar.(l) "divU" ~args:a in
      check_lane ~ctx:"mixed traps" ~mem_words:0 b ~lane:l (scalar.(l), om, cm))
    args;
  (match Batch.outcome b ~lane:3 with
  | Machine.Trapped (Trap.Break code) when code = Trap.divide_by_zero_code -> ()
  | o -> Alcotest.failf "lane 3 should divide-trap, got %s" (outcome_str o));
  Array.iteri
    (fun l _ ->
      if l <> 3 then
        match Batch.outcome b ~lane:l with
        | Machine.Halted -> ()
        | o -> Alcotest.failf "lane %d should halt, got %s" l (outcome_str o))
    args;
  let c = Batch.counters b in
  Alcotest.(check int) "lanes_run" width c.Batch.lanes_run;
  Alcotest.(check int) "lanes_trapped" 1 c.Batch.lanes_trapped;
  if c.Batch.dispatches <= 0 then Alcotest.fail "no dispatches counted"

(* Divergent control flow under a tight fuel budget: some lanes halt,
   some exhaust mid-loop, at every fuel level. *)
let fuel_boundary_lanes () =
  let prog = Hppa.Millicode.resolved () in
  let width = 6 in
  let args =
    Array.init width (fun l ->
        [ Int32.of_int ((l * 104729) + 7); Int32.of_int ((l * l) + 1) ])
  in
  for fuel = 0 to 40 do
    let b = Batch.create ~lanes:width prog in
    let scalar = Array.init width (fun _ -> Machine.create prog) in
    Batch.call ~fuel b "divU" ~args;
    Array.iteri
      (fun l a ->
        let om, cm = Machine.call_cycles ~fuel scalar.(l) "divU" ~args:a in
        check_lane
          ~ctx:(Printf.sprintf "fuel %d" fuel)
          ~mem_words:0 b ~lane:l (scalar.(l), om, cm))
      args
  done

(* Seeded random programs (loads, stores, traps, computed branches)
   with per-lane random register images and private memories. *)
let random_programs () =
  let st = Random.State.make [| 0xBA7C; 42 |] in
  let width = 8 in
  let mem_bytes = 4096 in
  for p = 1 to 40 do
    let prog = Test_engine.gen_program st in
    let b = Batch.create ~mem_bytes ~lanes:width prog in
    let scalar =
      Array.init width (fun _ -> Machine.create ~mem_bytes prog)
    in
    let interp =
      Array.init width (fun _ ->
          Machine.create ~mem_bytes
            ~config:{ Machine.Config.default with engine = false }
            prog)
    in
    for l = 0 to width - 1 do
      for i = 1 to 31 do
        let v = Test_engine.gen_value st in
        Batch.set_reg b ~lane:l (Reg.of_int i) v;
        Machine.set scalar.(l) (Reg.of_int i) v;
        Machine.set interp.(l) (Reg.of_int i) v
      done
    done;
    let args = Array.make width [] in
    Batch.call ~fuel:2000 b "L0" ~args;
    for l = 0 to width - 1 do
      let ctx = Printf.sprintf "program %d" p in
      let oe, ce = Machine.call_cycles ~fuel:2000 scalar.(l) "L0" ~args:[] in
      check_lane ~ctx ~mem_words:(mem_bytes / 4) b ~lane:l (scalar.(l), oe, ce);
      let oi, ci = Machine.call_cycles ~fuel:2000 interp.(l) "L0" ~args:[] in
      check_lane ~ctx:(ctx ^ " (interp)") ~mem_words:(mem_bytes / 4) b ~lane:l
        (interp.(l), oi, ci)
    done;
    check_stats_sum
      ~ctx:(Printf.sprintf "program %d" p)
      b
      (Array.to_list scalar)
  done

(* Width-1 batches are just a slow scalar engine; pin the equivalence on
   the divide edge grid, divide-by-zero included. *)
let width_one () =
  let prog = Hppa.Millicode.resolved () in
  List.iter
    (fun entry ->
      let b = Batch.create ~lanes:1 prog in
      let m = Machine.create prog in
      List.iter
        (fun (a, d) ->
          let om, cm = Machine.call_cycles m entry ~args:[ a; d ] in
          Batch.call b entry ~args:[| [ a; d ] |];
          check_lane
            ~ctx:(Printf.sprintf "%s(%ld, %ld)" entry a d)
            ~mem_words:0 b ~lane:0 (m, om, cm))
        [
          (0l, 3l); (1l, 3l); (100l, 7l); (-100l, 7l); (100l, -7l);
          (Int32.min_int, -1l); (Int32.max_int, 1l); (0xffff_ffffl, 2l);
          (7l, 0l); (12345678l, 127l); (-1l, Int32.min_int);
        ])
    [ "divU"; "divI"; "remU"; "remI" ]

let suite =
  [
    ( "batch.differential",
      [
        Alcotest.test_case "every millicode entry, widths 1/4/7/64" `Quick
          millicode_differential;
        Alcotest.test_case "mixed-lane divide-by-zero trap" `Quick
          mixed_lane_traps;
        Alcotest.test_case "fuel boundaries 0..40, divergent lanes" `Quick
          fuel_boundary_lanes;
        Alcotest.test_case "40 seeded random programs, width 8" `Quick
          random_programs;
        Alcotest.test_case "width 1 equals the scalar engine" `Quick width_one;
      ] );
  ]
