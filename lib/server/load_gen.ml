(* Load generator: one thread per connection, seeded request streams,
   client-side latency histogram, server STATS scrape at the end. *)

module Prng = Hppa_dist.Prng
module Operand_dist = Hppa_dist.Operand_dist

type dist = Figure5 | Zipf | Smalldiv | Mixed | W64mix

let dist_of_string = function
  | "figure5" -> Ok Figure5
  | "zipf" -> Ok Zipf
  | "smalldiv" -> Ok Smalldiv
  | "mixed" -> Ok Mixed
  | "w64mix" -> Ok W64mix
  | s ->
      Error
        (Printf.sprintf
           "unknown distribution %S (want figure5|zipf|smalldiv|mixed|w64mix)"
           s)

let dist_to_string = function
  | Figure5 -> "figure5"
  | Zipf -> "zipf"
  | Smalldiv -> "smalldiv"
  | Mixed -> "mixed"
  | W64mix -> "w64mix"

type summary = {
  dist : dist;
  requests : int;
  conns : int;
  seed : int64;
  ok : int;
  errors : int;
  wall_s : float;
  throughput_rps : float;
  offered_rps : float option;
  p50_us : float;
  p99_us : float;
  batch_width : int;
  batch_mismatches : int;
  server_stats : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Request streams                                                     *)

(* Zipf(s = 1.1) over ranks 1..support, rank r mapping to the constant
   r + 1. MUL and DIV keys are distinct, so the stream touches at most
   2 x support cache keys; with the default cache capacity above that,
   steady-state misses are bounded by 2 x support and the > 90% CI
   hit-rate floor follows for any request count over ~20 x support. *)
let zipf_support = 1000
let zipf_s = 1.1

let zipf_cdf =
  lazy
    (let w = Array.init zipf_support (fun i ->
         1.0 /. Float.pow (float_of_int (i + 1)) zipf_s)
     in
     let total = Array.fold_left ( +. ) 0.0 w in
     let acc = ref 0.0 in
     Array.map
       (fun x ->
         acc := !acc +. (x /. total);
         !acc)
       w)

let zipf_rank g =
  let cdf = Lazy.force zipf_cdf in
  let u = Prng.float01 g in
  let lo = ref 0 and hi = ref (zipf_support - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo + 1

let zipf_constant g = Int32.of_int (zipf_rank g + 1)

let figure5_request g =
  let x, y = Operand_dist.figure5_pair g in
  Printf.sprintf "EVAL mulI %ld %ld" x y

let zipf_request g =
  let c = zipf_constant g in
  if Prng.bool g ~p:0.7 then Printf.sprintf "MUL %ld" c
  else Printf.sprintf "DIV %ld" c

let smalldiv_request g =
  Printf.sprintf "DIV %ld" (Operand_dist.small_divisor g)

(* W64 requests key the cache by their operands, so cache-friendliness
   requires the operands themselves to repeat: draw a zipf rank, then
   derive verb, signedness and both operands deterministically from it.
   Each rank maps to exactly one request line, so the W64 half of the
   stream touches at most [zipf_support] cache keys. The operands are
   never a trapping pair ([w64_pair] divisors are non-zero and the
   dividend is non-negative), so every lane replies OK. *)
let w64_request g =
  let rank = zipf_rank g in
  let verb =
    match rank mod 3 with 0 -> "W64MUL" | 1 -> "W64DIV" | _ -> "W64REM"
  in
  let sign = if rank land 1 = 0 then "u" else "s" in
  let og = Prng.create (Int64.of_int (1_000_000 + rank)) in
  let x, y = Operand_dist.w64_pair og in
  Printf.sprintf "%s %s %Ld %Ld" verb sign x y

let request_of g = function
  | Figure5 -> figure5_request g
  | Zipf -> zipf_request g
  | Smalldiv -> smalldiv_request g
  | Mixed ->
      let u = Prng.float01 g in
      if u < 0.4 then zipf_request g
      else if u < 0.7 then figure5_request g
      else smalldiv_request g
  | W64mix ->
      if Prng.bool g ~p:0.5 then zipf_request g else w64_request g

(* ------------------------------------------------------------------ *)
(* Client connection                                                   *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

type conn = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let connect (ep : Server.Config.endpoint) =
  match ep with
  | Server.Config.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      { fd; buf = Buffer.create 4096; chunk = Bytes.create 4096 }
  | Server.Config.Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      { fd; buf = Buffer.create 4096; chunk = Bytes.create 4096 }

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let read_line conn =
  let rec take () =
    let s = Buffer.contents conn.buf in
    match String.index_opt s '\n' with
    | Some i ->
        let line = String.sub s 0 i in
        Buffer.clear conn.buf;
        Buffer.add_string conn.buf
          (String.sub s (i + 1) (String.length s - i - 1));
        Some line
    | None -> (
        match Unix.read conn.fd conn.chunk 0 (Bytes.length conn.chunk) with
        | 0 -> None
        | n ->
            Buffer.add_subbytes conn.buf conn.chunk 0 n;
            take ())
  in
  take ()

let round_trip conn line =
  write_all conn.fd (line ^ "\n");
  read_line conn

(* "MUL 625" -> ("MUL", "625"); a verb with no operand keeps "". *)
let split_verb r =
  match String.index_opt r ' ' with
  | Some i -> (String.sub r 0 i, String.sub r (i + 1) (String.length r - i - 1))
  | None -> (r, "")

(* Lane count of a batch reply header ("OK MULB k=3" -> 3); [None] for
   anything that is not a batch header, including a whole-batch ERR. *)
let batch_lane_count header =
  if not (Server.is_batch_reply header) then None
  else
    match String.index_opt header '=' with
    | None -> None
    | Some i ->
        int_of_string_opt
          (String.sub header (i + 1) (String.length header - i - 1))

(* ------------------------------------------------------------------ *)

let scrape_stats endpoint =
  match connect endpoint with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Unix.error_message e)
  | conn ->
      let r =
        match round_trip conn "STATS" with
        | Some reply when Protocol.is_ok reply ->
            (* "OK STATS k=v k=v ..." *)
            let kvs =
              String.split_on_char ' ' reply
              |> List.filter_map (fun tok ->
                     match String.index_opt tok '=' with
                     | Some i ->
                         Some
                           ( String.sub tok 0 i,
                             String.sub tok (i + 1)
                               (String.length tok - i - 1) )
                     | None -> None)
            in
            Ok kvs
        | Some reply -> Error ("STATS failed: " ^ reply)
        | None -> Error "STATS failed: connection closed"
      in
      ignore (try round_trip conn "QUIT" with _ -> None);
      close conn;
      r

let run ?(batch_width = 1) ?rate ~endpoint ~requests ~conns ~dist ~seed () =
  if requests < 1 then Error "requests must be >= 1"
  else if conns < 1 then Error "conns must be >= 1"
  else if batch_width < 1 || batch_width > Protocol.max_batch_operands then
    Error
      (Printf.sprintf "batch width must be in 1..%d"
         Protocol.max_batch_operands)
  else if (match rate with Some r -> r <= 0.0 | None -> false) then
    Error "rate must be > 0"
  else if rate <> None && batch_width > 1 then
    Error "open-loop mode (rate) is scalar-only; drop the batch width"
  else begin
    let conns = min conns requests in
    (* Fail fast (and cleanly) if the server is not there. *)
    match connect endpoint with
    | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot connect: %s" (Unix.error_message e))
    | probe ->
        close probe;
        let lat = Metrics.create () in
        let failures = Atomic.make 0 in
        let mismatches = Atomic.make 0 in
        let worker idx n () =
          let g =
            Prng.create
              (Int64.add seed (Int64.mul 0x9E3779B97F4A7C15L
                                 (Int64.of_int (idx + 1))))
          in
          match connect endpoint with
          | exception Unix.Unix_error _ ->
              Atomic.fetch_and_add failures n |> ignore
          | conn ->
              let scalar req =
                let t0 = Unix.gettimeofday () in
                match round_trip conn req with
                | Some reply ->
                    Metrics.record lat
                      ~error:(not (Protocol.is_ok reply))
                      ~us:((Unix.gettimeofday () -. t0) *. 1e6)
                | None -> Atomic.incr failures
              in
              let checked = ref false in
              (* One MULB/DIVB line carrying [ops]; each lane records a
                 latency sample (the batch round trip) so the summary
                 still counts logical requests. *)
              let batch verb ops =
                let t0 = Unix.gettimeofday () in
                write_all conn.fd (String.concat " " (verb :: ops) ^ "\n");
                match read_line conn with
                | None ->
                    Atomic.fetch_and_add failures (List.length ops) |> ignore
                | Some header -> (
                    match batch_lane_count header with
                    | None ->
                        (* Single-line reply: the batch was rejected
                           as a whole. *)
                        let us = (Unix.gettimeofday () -. t0) *. 1e6 in
                        List.iter
                          (fun _ -> Metrics.record lat ~error:true ~us)
                          ops
                    | Some count ->
                        let lanes =
                          List.init count (fun _ -> read_line conn)
                        in
                        let us = (Unix.gettimeofday () -. t0) *. 1e6 in
                        List.iter
                          (function
                            | Some l ->
                                Metrics.record lat
                                  ~error:(not (Protocol.is_ok l)) ~us
                            | None -> Atomic.incr failures)
                          lanes;
                        if not !checked then begin
                          (* First batch on this connection: every lane
                             must be byte-identical to the scalar reply
                             for the same operand. *)
                          checked := true;
                          let scalar_verb = String.sub verb 0 3 in
                          List.iteri
                            (fun i op ->
                              let want = List.nth_opt lanes i in
                              match
                                round_trip conn (scalar_verb ^ " " ^ op)
                              with
                              | Some r when want = Some (Some r) -> ()
                              | _ -> Atomic.incr mismatches)
                            ops
                        end)
              in
              (try
                 if batch_width = 1 then
                   for _ = 1 to n do scalar (request_of g dist) done
                 else begin
                   (* Draw a window of the stream, coalesce the scalar
                      MUL/DIV constants into one batch per verb, and
                      send anything else (EVAL lines) as-is. *)
                   let remaining = ref n in
                   while !remaining > 0 do
                     let k = min batch_width !remaining in
                     let reqs = List.init k (fun _ -> request_of g dist) in
                     let muls, divs, others =
                       List.fold_left
                         (fun (m, d, o) r ->
                           match split_verb r with
                           | "MUL", c -> (c :: m, d, o)
                           | "DIV", c -> (m, c :: d, o)
                           | _ -> (m, d, r :: o))
                         ([], [], []) reqs
                     in
                     if muls <> [] then batch "MULB" (List.rev muls);
                     if divs <> [] then batch "DIVB" (List.rev divs);
                     List.iter scalar (List.rev others);
                     remaining := !remaining - k
                   done
                 end
               with Unix.Unix_error _ | Sys_error _ ->
                 Atomic.incr failures);
              close conn
        in
        (* Open-loop worker: requests arrive on a seeded exponential
           schedule (Poisson process at [per_rate] per connection) laid
           out before the clock starts, and latency is measured from the
           {e scheduled} arrival time — so a slow server shows up as
           queueing delay in p99 instead of silently throttling the
           offered rate (the closed-loop coordinated-omission bias this
           mode exists to fix). A writer thread sends on schedule while
           the reader drains the pipelined replies in order; reply [i]
           always answers request [i], so no reply/request matching is
           needed. *)
        let open_worker idx n per_rate () =
          let g =
            Prng.create
              (Int64.add seed (Int64.mul 0x9E3779B97F4A7C15L
                                 (Int64.of_int (idx + 1))))
          in
          match connect endpoint with
          | exception Unix.Unix_error _ ->
              Atomic.fetch_and_add failures n |> ignore
          | conn ->
              let lines = Array.init n (fun _ -> request_of g dist) in
              let scheduled = Array.make n 0.0 in
              let acc = ref 0.0 in
              for i = 0 to n - 1 do
                acc :=
                  !acc +. (-.log (1.0 -. Prng.float01 g) /. per_rate);
                scheduled.(i) <- !acc
              done;
              let start = Unix.gettimeofday () in
              let sent = Atomic.make 0 in
              let writer () =
                try
                  for i = 0 to n - 1 do
                    let due = start +. scheduled.(i) in
                    let now = Unix.gettimeofday () in
                    if due > now then Thread.delay (due -. now);
                    write_all conn.fd (lines.(i) ^ "\n");
                    Atomic.incr sent
                  done
                with Unix.Unix_error _ | Sys_error _ -> ()
              in
              let wt = Thread.create writer () in
              (* Blocking reads are safe: reply [i] arrives once request
                 [i] is sent. The receive timeout only fires if the
                 writer died (or the server stalled), turning the
                 remaining requests into counted failures instead of a
                 hang. *)
              (try Unix.setsockopt_float conn.fd Unix.SO_RCVTIMEO 10.0
               with Unix.Unix_error _ -> ());
              let answered = ref 0 in
              (try
                 for i = 0 to n - 1 do
                   match read_line conn with
                   | Some reply ->
                       Metrics.record lat
                         ~error:(not (Protocol.is_ok reply))
                         ~us:
                           ((Unix.gettimeofday () -. start -. scheduled.(i))
                           *. 1e6);
                       incr answered
                   | None -> raise Exit
                 done
               with Exit | Unix.Unix_error _ | Sys_error _ -> ());
              Thread.join wt;
              Atomic.fetch_and_add failures (n - !answered) |> ignore;
              close conn
        in
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init conns (fun i ->
              let n =
                (requests / conns)
                + if i < requests mod conns then 1 else 0
              in
              match rate with
              | None -> Thread.create (worker i n) ()
              | Some r ->
                  Thread.create (open_worker i n (r /. float_of_int conns)) ())
        in
        List.iter Thread.join threads;
        let wall_s = Unix.gettimeofday () -. t0 in
        let server_stats =
          match scrape_stats endpoint with Ok kvs -> kvs | Error _ -> []
        in
        let sent = Metrics.requests lat + Atomic.get failures in
        let errors = Metrics.errors lat + Atomic.get failures in
        Ok
          {
            dist;
            requests = sent;
            conns;
            seed;
            ok = Metrics.requests lat - Metrics.errors lat;
            errors;
            wall_s;
            throughput_rps =
              (if wall_s > 0.0 then float_of_int sent /. wall_s else 0.0);
            offered_rps = rate;
            p50_us = Metrics.percentile_us lat 0.5;
            p99_us = Metrics.percentile_us lat 0.99;
            batch_width;
            batch_mismatches = Atomic.get mismatches;
            server_stats;
          }
  end

let hit_rate s =
  List.assoc_opt "cache_hit_rate" s.server_stats
  |> Fun.flip Option.bind float_of_string_opt

(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when c < ' ' -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* A saturated percentile is [infinity]; JSON has no literal for it, so
   quote it Prometheus-style. *)
let json_us f =
  if Float.is_finite f then Printf.sprintf "%.0f" f
  else if f = infinity then "\"+Inf\""
  else if f = neg_infinity then "\"-Inf\""
  else "\"NaN\""

let write_json ~path s =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"hppa-bench-serve/2\",\n";
  out "  \"dist\": %S,\n" (dist_to_string s.dist);
  out "  \"requests\": %d,\n" s.requests;
  out "  \"conns\": %d,\n" s.conns;
  out "  \"seed\": %Ld,\n" s.seed;
  out "  \"ok\": %d,\n" s.ok;
  out "  \"errors\": %d,\n" s.errors;
  out "  \"wall_seconds\": %.3f,\n" s.wall_s;
  out "  \"throughput_rps\": %.1f,\n" s.throughput_rps;
  (match s.offered_rps with
  | Some r -> out "  \"offered_rps\": %.1f,\n" r
  | None -> out "  \"offered_rps\": null,\n");
  out "  \"client_p50_us\": %s,\n" (json_us s.p50_us);
  out "  \"client_p99_us\": %s,\n" (json_us s.p99_us);
  out "  \"batch_width\": %d,\n" s.batch_width;
  out "  \"batch_mismatches\": %d,\n" s.batch_mismatches;
  out "  \"server_stats\": {\n";
  List.iteri
    (fun i (k, v) ->
      let v_json =
        (* "+Inf" parses as a float but is not a JSON literal — only
           pass finite numbers through bare. *)
        match float_of_string_opt v with
        | Some f when Float.is_finite f -> v
        | Some _ | None -> Printf.sprintf "\"%s\"" (json_escape v)
      in
      out "    \"%s\": %s%s\n" (json_escape k) v_json
        (if i < List.length s.server_stats - 1 then "," else ""))
    s.server_stats;
  out "  }\n";
  out "}\n";
  close_out oc

let pp_summary ppf s =
  let us f = if Float.is_finite f then Printf.sprintf "%.0f" f else "+Inf" in
  Format.fprintf ppf
    "@[<v>dist %s: %d requests over %d connection%s in %.2fs (%.0f req/s)%t@,\
     ok %d, errors %d@,client latency p50 <= %s us, p99 <= %s us%a@]"
    (dist_to_string s.dist) s.requests s.conns
    (if s.conns = 1 then "" else "s")
    s.wall_s s.throughput_rps
    (fun ppf ->
      (match s.offered_rps with
      | Some r ->
          Format.fprintf ppf "@,open loop: offered %.0f req/s, achieved %.0f"
            r s.throughput_rps
      | None -> ());
      if s.batch_width > 1 then
        Format.fprintf ppf "@,batch width %d, %d cross-check mismatch%s"
          s.batch_width s.batch_mismatches
          (if s.batch_mismatches = 1 then "" else "es"))
    s.ok s.errors (us s.p50_us) (us s.p99_us)
    (fun ppf -> function
      | [] -> ()
      | kvs ->
          Format.fprintf ppf "@,server: %s"
            (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)))
    s.server_stats
