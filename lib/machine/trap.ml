type t =
  | Overflow
  | Break of int
  | Unaligned of int32
  | Bad_address of int32
  | Bad_pc of int

let divide_by_zero_code = 0

let equal (a : t) (b : t) = a = b

let to_string = function
  | Overflow -> "overflow trap"
  | Break code -> Printf.sprintf "break trap (code %d)" code
  | Unaligned a -> Printf.sprintf "unaligned access at 0x%lx" a
  | Bad_address a -> Printf.sprintf "bad address 0x%lx" a
  | Bad_pc pc -> Printf.sprintf "bad pc %d" pc

let pp ppf t = Format.pp_print_string ppf (to_string t)

let name = function
  | Overflow -> "overflow"
  | Break code when code = divide_by_zero_code -> "divide_by_zero"
  | Break _ -> "break"
  | Unaligned _ -> "unaligned"
  | Bad_address _ -> "bad_address"
  | Bad_pc _ -> "bad_pc"
