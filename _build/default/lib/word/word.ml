type t = int32

let zero = 0l
let one = 1l
let minus_one = -1l
let min_signed = Int32.min_int
let max_signed = Int32.max_int
let max_unsigned = -1l
let of_int = Int32.of_int
let to_int_s = Int32.to_int
let to_int_u w = Int32.to_int w land 0xffff_ffff
let of_int64 = Int64.to_int32
let to_int64_u w = Int64.logand (Int64.of_int32 w) 0xffff_ffffL
let to_int64_s = Int64.of_int32
let is_neg w = w < 0l
let is_odd w = Int32.logand w 1l = 1l
let equal = Int32.equal
let compare_s = Int32.compare
let compare_u = Int32.unsigned_compare
let lt_u a b = compare_u a b < 0
let le_u a b = compare_u a b <= 0
let lt_s a b = compare_s a b < 0
let le_s a b = compare_s a b <= 0
let add = Int32.add
let sub = Int32.sub
let neg = Int32.neg

let add_carry a b ~carry_in =
  let wide =
    Int64.add
      (Int64.add (to_int64_u a) (to_int64_u b))
      (if carry_in then 1L else 0L)
  in
  (Int64.to_int32 wide, Int64.shift_right_logical wide 32 <> 0L)

let sub_borrow a b ~borrow_in =
  let wide =
    Int64.sub
      (Int64.sub (to_int64_u a) (to_int64_u b))
      (if borrow_in then 1L else 0L)
  in
  (Int64.to_int32 wide, wide < 0L)

let add_overflows_s a b =
  let s = Int32.add a b in
  (* Overflow iff operands share a sign and the result sign differs. *)
  Int32.logand (Int32.logxor a b) Int32.min_int = 0l
  && Int32.logand (Int32.logxor a s) Int32.min_int <> 0l

let sub_overflows_s a b =
  let d = Int32.sub a b in
  Int32.logand (Int32.logxor a b) Int32.min_int <> 0l
  && Int32.logand (Int32.logxor a d) Int32.min_int <> 0l

let abs w = if w < 0l then Int32.neg w else w
let shl w k = Int32.shift_left w (k land 31)
let shr_u w k = Int32.shift_right_logical w (k land 31)
let shr_s w k = Int32.shift_right w (k land 31)

let sh_add k a b =
  assert (k >= 0 && k <= 3);
  Int32.add (Int32.shift_left a k) b

let sh_add_overflows k a b =
  assert (k >= 0 && k <= 3);
  let wide = Int64.add (Int64.shift_left (to_int64_s a) k) (to_int64_s b) in
  wide < -0x8000_0000L || wide > 0x7fff_ffffL

let sh_add_overflows_hw k a b =
  assert (k >= 0 && k <= 3);
  (* The cheap circuit (§4): perform the plain 32-bit add of the shifted
     operand and check that the sign of [a], the k bits shifted out of [a],
     the sign of the shifted operand and the sign of the result all agree
     with a correct non-overflowing computation. Concretely: the (k+1) top
     bits of [a] together with the 32-bit add's own signed overflow decide. *)
  let shifted = Int32.shift_left a k in
  (* Bits lost by the pre-shift must be copies of the resulting sign bit of
     the shifted operand, otherwise the shift itself overflowed. *)
  let top = shr_s a (31 - k) in
  let shift_ok = top = 0l || top = -1l in
  (not shift_ok) || add_overflows_s shifted b

let extract_u w ~pos ~len =
  assert (pos >= 0 && len >= 1 && pos + len <= 32);
  if len = 32 then w
  else
    Int32.logand (shr_u w pos) (Int32.sub (Int32.shift_left 1l len) 1l)

let extract_s w ~pos ~len =
  assert (pos >= 0 && len >= 1 && pos + len <= 32);
  Int32.shift_right (Int32.shift_left w (32 - pos - len)) (32 - len)

let deposit v ~into ~pos ~len =
  assert (pos >= 0 && len >= 1 && pos + len <= 32);
  let mask =
    if len = 32 then -1l else Int32.sub (Int32.shift_left 1l len) 1l
  in
  let field = Int32.shift_left (Int32.logand v mask) pos in
  let hole = Int32.lognot (Int32.shift_left mask pos) in
  Int32.logor (Int32.logand into hole) field

let bit w i =
  assert (i >= 0 && i <= 31);
  Int32.logand (shr_u w i) 1l = 1l

let logand = Int32.logand
let logor = Int32.logor
let logxor = Int32.logxor
let lognot = Int32.lognot
let mul_lo = Int32.mul

let mul_wide_u a b =
  let p = Int64.mul (to_int64_u a) (to_int64_u b) in
  (Int64.to_int32 (Int64.shift_right_logical p 32), Int64.to_int32 p)

let mul_wide_s a b =
  let p = Int64.mul (to_int64_s a) (to_int64_s b) in
  (Int64.to_int32 (Int64.shift_right_logical p 32), Int64.to_int32 p)

let mul_overflows_s a b =
  let p = Int64.mul (to_int64_s a) (to_int64_s b) in
  p < -0x8000_0000L || p > 0x7fff_ffffL

let divmod_u a b =
  if b = 0l then raise Division_by_zero;
  (Int32.unsigned_div a b, Int32.unsigned_rem a b)

let divmod_trunc_s a b =
  if b = 0l then raise Division_by_zero;
  if a = Int32.min_int && b = -1l then (Int32.min_int, 0l)
  else (Int32.div a b, Int32.rem a b)

let to_hex w = Printf.sprintf "%lx" w
let pp ppf w = Format.fprintf ppf "%ld" w
let pp_hex ppf w = Format.fprintf ppf "%lx" w
