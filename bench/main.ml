(* Bench harness: regenerates every table and figure of the paper's
   evaluation, printing paper-reported values next to measured ones.

   Usage:
     dune exec bench/main.exe                 -- all figures
     dune exec bench/main.exe fig5 div_perf   -- a selection
     dune exec bench/main.exe --deep          -- adds the ~10-minute
                                                 depth-6 exhaustive search
                                                 certifying Figure 1 row 6
     dune exec bench/main.exe bechamel        -- host-time micro-benchmarks
     dune exec bench/main.exe json            -- BENCH_SIM.json snapshot
     dune exec bench/main.exe plans           -- autotune every kernel
                                                 strategy on the simulator,
                                                 gate the selector, write
                                                 BENCH_PLANS.json
     dune exec bench/main.exe w64             -- double-word kernel cycles
                                                 vs per-word millicode
                                                 lower bounds

   All workloads are seeded; output is deterministic (except host times). *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Prng = Hppa_dist.Prng
module Operand_dist = Hppa_dist.Operand_dist
module Obs = Hppa_obs.Obs
open Hppa

let header title =
  Printf.printf "\n==== %s ====\n" title

let mach = lazy (Millicode.machine ())

(* A trap or fuel exhaustion inside a benchmark means a broken routine or
   a broken harness; fail the run loudly rather than folding it into a
   bogus cycle count. *)
let cycles_exn ~what m entry args =
  match Machine.call_cycles m entry ~args with
  | Machine.Halted, c -> c
  | Machine.Trapped t, _ ->
      Printf.eprintf "bench: %s: %s trapped: %s\n%!" what entry
        (Hppa_machine.Trap.to_string t);
      exit 1
  | Machine.Fuel_exhausted, _ ->
      Printf.eprintf "bench: %s: %s exhausted its fuel\n%!" what entry;
      exit 1

let cycles entry args = cycles_exn ~what:"millicode" (Lazy.force mach) entry args

(* ------------------------------------------------------------------ *)
(* Figure 1: least n such that l(n) = r                                *)

let fig1 ~deep () =
  header "Figure 1: least values of n with l(n) = r";
  Printf.printf "paper rows:\n";
  List.iter
    (fun (r, row) -> Printf.printf "  r=%d: %s\n" r row)
    [
      (1, "2,3,4,5,8,9,16,32,64,128,256,512");
      (2, "6,7,10,11,12,13,15,17,18,19,20,21");
      (3, "14,22,23,26,28,29,30,35,38,39,42");
      (4, "58,78,86,92,106,110,114,115,116");
      (5, "466,474,618,622,678,683,686,687");
      (6, "3802,4838,5326,5519,5534,5550");
    ];
  Printf.printf "measured (exhaustive to depth %d):\n%!" (if deep then 6 else 5);
  let max_len, limit = if deep then (6, 5600) else (5, 700) in
  let ex =
    Chain_search.lengths_table ~max_len ~limit
      ~domains:(Hppa_machine.Sweep.default_domains ())
      ()
  in
  for r = 1 to max_len do
    let hits = ref [] and count = ref 0 in
    let n = ref 2 in
    while !count < 12 && !n <= limit do
      (match Chain_search.length_of ex !n with
      | Some l when l = r ->
          hits := !n :: !hits;
          incr count
      | Some _ | None -> ());
      incr n
    done;
    Printf.printf "  r=%d: %s\n" r
      (String.concat "," (List.rev_map string_of_int !hits))
  done;
  (* The paper's closing conjecture: c(r), the first n with l(n) = r,
     grows at least exponentially and perhaps faster. *)
  let firsts =
    List.filter_map
      (fun r -> Chain_stats.first_with_length ex r)
      (List.init (max_len + 1) (fun i -> i + 1))
  in
  Printf.printf "  c(r) growth ratios (conjectured super-exponential): %s\n"
    (String.concat ", "
       (List.map2
          (fun a b -> Printf.sprintf "%.1f" (float_of_int b /. float_of_int a))
          (List.filteri (fun i _ -> i < List.length firsts - 1) firsts)
          (List.tl firsts)));
  if not deep then
    Printf.printf
      "  r=6: (needs the depth-6 closure: run with --deep, ~10 minutes;\n\
      \        the certified run in EXPERIMENTS.md matches the paper exactly:\n\
      \        3802,4838,5326,5519,5534,5550 with first l=6 at 3802)\n"

(* ------------------------------------------------------------------ *)
(* Figures 2-4: the multiply ladder                                    *)

let avg_cycles entry ~n sample =
  let g = Prng.create 0x1234L in
  let tot = ref 0 in
  for _ = 1 to n do
    let x, y = sample g in
    tot := !tot + cycles entry [ x; y ]
  done;
  float_of_int !tot /. float_of_int n

let log_uniform_pair g =
  (Operand_dist.log_uniform g, Operand_dist.log_uniform g)

let fig2 () =
  header "Figure 2: the naive one-bit-per-iteration multiply";
  let worst = cycles "mul_naive" [ 99l; Int32.min_int ] in
  Printf.printf "  worst case:   paper 167, measured %d\n" worst;
  let avg = avg_cycles "mul_naive" ~n:2000 log_uniform_pair in
  Printf.printf "  log-uniform:  measured %.0f (data-independent by design)\n" avg;
  Printf.printf "\nthe simple optimization (early exit on exhausted multiplier):\n";
  let worst = cycles "mul_naive_early" [ 99l; Int32.min_int ] in
  Printf.printf "  worst case:   paper 192, measured %d\n" worst;
  let avg = avg_cycles "mul_naive_early" ~n:2000 log_uniform_pair in
  Printf.printf "  log-uniform:  paper ~103, measured %.0f\n" avg

let fig3 () =
  header "Figure 3: four bits per iteration via shift-and-add";
  let worst = cycles "mul_nibble" [ 99l; Int32.min_int ] in
  Printf.printf "  loop body:    paper 13 instructions, measured %d\n"
    (cycles "mul_nibble" [ 99l; 0xFFl ] - cycles "mul_nibble" [ 99l; 0xFl ]);
  Printf.printf "  worst case:   paper 107, measured %d\n" worst;
  let avg = avg_cycles "mul_nibble" ~n:2000 log_uniform_pair in
  Printf.printf "  log-uniform:  paper ~55, measured %.0f\n" avg

let fig4 () =
  header "Figure 4: the 16-way case-table multiply";
  let worst = cycles "mul_switch" [ 99l; Int32.min_int ] in
  Printf.printf "  worst case:   measured %d\n" worst;
  let avg = avg_cycles "mul_switch" ~n:2000 log_uniform_pair in
  Printf.printf "  log-uniform:  measured %.0f (vs %.0f for Figure 3)\n" avg
    (avg_cycles "mul_nibble" ~n:2000 log_uniform_pair)

(* ------------------------------------------------------------------ *)
(* Figure 5: the final algorithm by operand bucket                     *)

let fig5 () =
  header "Figure 5: final algorithm, cycles by min(|x|,|y|) bucket";
  Printf.printf
    "  %-14s %28s %30s\n" "min(|x|,|y|)" "paper best/avg/worst (%)"
    "measured best/avg/worst (%)";
  let g = Prng.create 0x777L in
  let samples = 20000 in
  let buckets = Array.make 4 [] in
  for _ = 1 to samples do
    let x, y = Operand_dist.figure5_pair g in
    let c = cycles "mul_final" [ x; y ] in
    match Operand_dist.bucket_of_pair x y with
    | Some b ->
        List.iteri
          (fun i b' -> if b == b' then buckets.(i) <- c :: buckets.(i))
          Operand_dist.figure5_buckets
    | None -> ()
  done;
  let paper =
    [ ("0-15", "10 / 15 / 23  (60%)"); ("16-255", "20 / 24 / 34  (20%)");
      ("256-4095", "28 / 34 / 45  (10%)"); ("4096-46340", "36 / 44 / 56  (10%)") ]
  in
  let weighted = ref 0.0 in
  List.iteri
    (fun i (range, paper_row) ->
      let cs = buckets.(i) in
      let n = List.length cs in
      let best = List.fold_left min max_int cs in
      let worst = List.fold_left max 0 cs in
      let avg = float_of_int (List.fold_left ( + ) 0 cs) /. float_of_int (max n 1) in
      let b = List.nth Operand_dist.figure5_buckets i in
      weighted := !weighted +. (b.Operand_dist.weight *. avg);
      Printf.printf "  %-14s %28s %17d / %.0f / %d  (%.0f%%)\n" range paper_row
        best avg worst
        (100.0 *. float_of_int n /. float_of_int samples))
    paper;
  Printf.printf
    "  distribution-weighted average: paper < 20, measured %.1f\n" !weighted;
  Printf.printf "  Booth multiply-step machine (rejected hardware): %d cycles\n"
    (Hppa_baselines.Booth.cycles ())

(* ------------------------------------------------------------------ *)
(* Figure 6: derived constant-division parameters                      *)

let fig6 () =
  header "Figure 6: derived parameters for odd divisors";
  Printf.printf "  (paper values identical — checked exactly by the test suite)\n";
  Printf.printf "  %3s  %5s  %3s  %-10s %-10s\n" "y" "z" "r" "a" "(K+1)y";
  List.iter
    (fun (t : Div_magic.t) ->
      Printf.printf "  %3ld  2^%-3d %3Ld  %-10LX %-10LX\n" t.y t.s t.r t.a
        t.coverage)
    (Div_magic.figure6 ())

(* ------------------------------------------------------------------ *)
(* Figure 7: division by 3                                             *)

let fig7 () =
  header "Figure 7: unsigned division by 3";
  let plan = Div_const.plan_unsigned 3l in
  Format.printf "%a@." Program.pp_source plan.source;
  let m =
    Machine.create
      (Program.resolve_exn (Program.concat [ plan.source; Div_gen.source ]))
  in
  let c = cycles_exn ~what:"fig7 divide-by-3" m plan.entry [ 1_000_000l ] in
  let general = cycles "divU" [ 1_000_000l; 3l ] in
  Printf.printf "  sequence length: paper 17 instructions, measured %d cycles\n" c;
  Printf.printf
    "  vs general divide: paper \"factor of 3.5\", measured %d/%d = %.1fx\n"
    general c
    (float_of_int general /. float_of_int c);
  let plan_s = Div_const.plan_signed 3l in
  let m =
    Machine.create
      (Program.resolve_exn (Program.concat [ plan_s.source; Div_gen.source ]))
  in
  let run x = cycles_exn ~what:"fig7 signed divide-by-3" m plan_s.entry [ x ] in
  Printf.printf
    "  signed: paper 17 cycles positive / 19 negative, measured %d / %d\n"
    (run 1_000_000l) (run (-1_000_000l))

(* ------------------------------------------------------------------ *)
(* Section 7 performance: divisor sweeps                               *)

let div_perf () =
  header "Section 7: division performance by divisor";
  Printf.printf
    "  constant divisors (paper: 1 to 27 cycles for y < 20):\n  %-4s %-22s %-8s %-8s\n"
    "y" "strategy" "cycles" "dispatch";
  let g = Prng.create 0xBEEFL in
  for y = 1 to 19 do
    let y32 = Int32.of_int y in
    let plan = Div_const.plan_unsigned y32 in
    let m =
      Machine.create
        (Program.resolve_exn (Program.concat [ plan.source; Div_gen.source ]))
    in
    let x = Word.of_int (Prng.int_range g 0 0x0fff_ffff) in
    let c = cycles_exn ~what:"div_perf constant divisor" m plan.entry [ x ] in
    let via_dispatch = cycles "divU_small" [ x; y32 ] in
    let strat =
      match plan.strategy with
      | Div_const.Trivial -> "copy"
      | Power_of_two k -> Printf.sprintf "shift >> %d" k
      | Reciprocal (p, ch) ->
          Printf.sprintf "reciprocal z=2^%d c=%d" p.Div_magic.s (Chain.length ch)
      | Even_split (k, _) -> Printf.sprintf "shift %d + reciprocal" k
      | General_fallback -> "general (no 2-word code)"
    in
    Printf.printf "  %-4d %-22s %-8d %-8d\n" y strat c via_dispatch
  done;
  Printf.printf
    "\n  variable divisors via runtime dispatch (paper: 10 to 36 cycles):\n";
  let cmin = ref max_int and cmax = ref 0 and tot = ref 0 in
  let n = 4000 in
  for _ = 1 to n do
    let x = Word.of_int (Prng.int_range g 0 0x3fff_ffff) in
    let y = Operand_dist.small_divisor g in
    let c = cycles "divU_small" [ x; y ] in
    cmin := min !cmin c;
    cmax := max !cmax c;
    tot := !tot + c
  done;
  Printf.printf "  measured %d..%d, average %.1f (y=11 falls back to the general divide)\n"
    !cmin !cmax
    (float_of_int !tot /. float_of_int n);
  Printf.printf "\n  remainder by constant (x - (x/y)*y with an inline chain):\n  ";
  List.iter
    (fun y ->
      let plan = Div_const.plan_rem_unsigned (Int32.of_int y) in
      let m =
        Machine.create
          (Program.resolve_exn (Program.concat [ plan.source; Div_gen.source ]))
      in
      let c = cycles_exn ~what:"div_perf remainder" m plan.entry [ 123456789l ] in
      Printf.printf "mod %d: %d   " y c)
    [ 3; 7; 8; 10; 13 ];
  Printf.printf "(vs %d for the general remU)\n"
    (cycles "remU" [ 123456789l; 7l ]);
  Printf.printf "\n  general-purpose divide (paper: ~80 cycles average):\n";
  Printf.printf "  divU %d cycles, divI %d (positive) / %d (negative operands)\n"
    (cycles "divU" [ 123456789l; 1097l ])
    (cycles "divI" [ 123456789l; 1097l ])
    (cycles "divI" [ -123456789l; 1097l ]);
  Printf.printf "\n  section 2 baselines (modelled single-cycle operations):\n";
  let r = Hppa_baselines.Shift_sub_div.restoring 123456789l 1097l in
  let nr = Hppa_baselines.Shift_sub_div.non_restoring 123456789l 1097l in
  Printf.printf
    "  restoring: %d add/subs, %d cycles; non-restoring: %d add/subs, %d cycles\n"
    r.add_sub_ops r.cycles nr.add_sub_ops nr.cycles

(* ------------------------------------------------------------------ *)
(* Section 5 extras: register use and overflow chains                  *)

let reguse () =
  header "Section 5: constants below 100 needing a temporary register";
  (* A constant needs a temporary iff no minimal chain reads only the
     previous element, the operand and zero: compare the minimal length
     (exhaustive) with the best no-temporary chain. *)
  let ex = Chain_search.lengths_table ~max_len:4 ~limit:100 () in
  let nt = Chain_rules.table No_temp ~limit:100 in
  let needs = ref [] in
  for n = 2 to 99 do
    match (Chain_search.length_of ex n, Chain_rules.cost nt n) with
    | Some l, Some l_nt when l_nt > l -> needs := n :: !needs
    | _, _ -> ()
  done;
  Printf.printf "  paper:    59, 87, 94\n  measured: %s\n"
    (String.concat ", " (List.rev_map string_of_int !needs));
  Printf.printf
    "  (and in-place chains exist exactly for smooth 2^i 3^j 5^k shapes,\n\
    \   e.g. %s)\n"
    (String.concat ", "
       (List.filter_map
          (fun n ->
            match (Chain_search.length_of ex n, Chain_rules.cost nt n) with
            | Some l, Some l_nt when l_nt = l -> Some (string_of_int n)
            | _ -> None)
          [ 10; 15; 30; 60; 90 ]))

let overflow_bench () =
  header "Section 5: the overflow-detection (monotonic chain) penalty";
  let f = Chain_rules.table Fast ~limit:1024 in
  let m = Chain_rules.table Monotonic ~limit:1024 in
  let hist = Hashtbl.create 8 in
  for n = 1 to 1024 do
    match (Chain_rules.cost f n, Chain_rules.cost m n) with
    | Some a, Some b ->
        let d = b - a in
        Hashtbl.replace hist d (1 + Option.value ~default:0 (Hashtbl.find_opt hist d))
    | _ -> ()
  done;
  Printf.printf "  paper example: 31 costs 2 fast, 3 monotonic — measured %d and %d\n"
    (Option.get (Chain_rules.cost f 31))
    (Option.get (Chain_rules.cost m 31));
  Printf.printf "  penalty histogram over n = 1..1024 (steps added for checking):\n";
  List.iter
    (fun d ->
      match Hashtbl.find_opt hist d with
      | Some c -> Printf.printf "    +%d steps: %4d constants\n" d c
      | None -> ())
    [ 0; 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Section 3: operand frequency analysis                               *)

let operands () =
  header "Section 3: operand frequency analysis (synthetic trace)";
  Printf.printf
    "  the paper's bullets vs our trace model (generator parameters from\n\
    \  the studies the paper cites; the analyzer re-derives them):\n\n";
  let g = Prng.create 0x0B5E7L in
  let events = Hppa_dist.Trace.generate g ~n:50000 in
  let s = Hppa_dist.Trace.analyze events in
  Printf.printf "  [Neu79] \"91%% of multiplications include one constant\":  %.1f%%\n"
    s.Hppa_dist.Trace.const_operand_pct;
  Printf.printf "  §6 \"lesser operand < 16 more than half the time\":     %.1f%%\n"
    s.min_operand_lt16_pct;
  Printf.printf "  §6 \"operands nearly always positive\":                 %.1f%%\n"
    s.both_positive_pct;
  Printf.printf "  Figure 5 bucket mix (60/20/10/10):                    %s\n"
    (String.concat " / "
       (List.map (Printf.sprintf "%.1f%%") s.bucket_pcts));
  Printf.printf "  §7 divisors below twenty:                             %.1f%%\n"
    s.small_divisor_pct;
  Format.printf "@.full analyzer output:@.%a@." Hppa_dist.Trace.pp_summary s

(* ------------------------------------------------------------------ *)
(* Section 8 summary numbers                                           *)

let summary () =
  header "Section 8: summary claims";
  (* Constant multiplies: "generally four or fewer" is a claim about the
     constants programs use, which are small. *)
  let t = Chain_rules.table Fast ~limit:10000 in
  let le4 lo hi =
    let c = ref 0 in
    for n = lo to hi do
      match Chain_rules.cost t n with Some l when l <= 4 -> incr c | _ -> ()
    done;
    100.0 *. float_of_int !c /. float_of_int (hi - lo + 1)
  in
  Printf.printf
    "  \"multiplications by constants generally <= 4 instructions\":\n\
    \    1..100: %.0f%%   1..1000: %.1f%%   1..10000: %.1f%%\n"
    (le4 1 100) (le4 1 1000) (le4 1 10000);
  (* Average multiply/divide over the trace model: 91 % constant-operand
     (chain or constant-divide cost), the rest through the millicode. *)
  let averages ~small_divisor_fraction =
    let config =
      { Hppa_dist.Trace.default_config with small_divisor_fraction }
    in
    let g = Prng.create 0xACEL in
    let events = Hppa_dist.Trace.generate ~config g ~n:8000 in
    let mul_tot = ref 0.0 and mul_n = ref 0 in
    let div_tot = ref 0.0 and div_n = ref 0 in
    List.iter
      (fun (e : Hppa_dist.Trace.event) ->
        match e.op with
        | Hppa_dist.Trace.Mul ->
            incr mul_n;
            let c =
              if e.y_is_constant && not (Word.equal e.y Int32.min_int) then
                let mag = Int32.to_int (Word.abs e.y) in
                match Chain_rules.find (max mag 1) with
                | Some chain -> Chain.length chain + if Word.is_neg e.y then 1 else 0
                | None -> cycles "mulI" [ e.x; e.y ]
              else cycles "mulI" [ e.x; e.y ]
            in
            mul_tot := !mul_tot +. float_of_int c
        | Hppa_dist.Trace.Div ->
            incr div_n;
            let c =
              if e.y_is_constant then begin
                let plan = Div_const.plan_signed e.y in
                let m =
                  Machine.create
                    (Program.resolve_exn
                       (Program.concat [ plan.source; Div_gen.source ]))
                in
                match Machine.call_cycles m plan.entry ~args:[ e.x ] with
                | Machine.Halted, c -> c
                | _ -> 0
              end
              else cycles "divI_small" [ e.x; e.y ]
            in
            div_tot := !div_tot +. float_of_int c)
      events;
    ( !mul_tot /. float_of_int !mul_n,
      !div_tot /. float_of_int !div_n )
  in
  let mul_avg, div_avg = averages ~small_divisor_fraction:0.7 in
  Printf.printf
    "  \"the average multiply requires about six cycles\":   measured %.1f\n"
    mul_avg;
  Printf.printf
    "  \"the average divide takes about 40\":                measured %.1f\n"
    div_avg;
  (* The paper does not state its divisor mix; show the sensitivity. *)
  List.iter
    (fun f ->
      let _, d = averages ~small_divisor_fraction:f in
      Printf.printf
        "     (with %.0f%% of divisors below twenty: %.1f)\n" (100.0 *. f) d)
    [ 0.5; 0.3 ];
  (* Program-level impact under instruction mixes. *)
  Printf.printf "\n  program-level CPI (1-cycle base instructions):\n";
  List.iter
    (fun (mix : Hppa_dist.Gibson.mix) ->
      let soft =
        Hppa_dist.Gibson.cpi mix ~mul_cycles:mul_avg ~div_cycles:div_avg
      in
      let naive = Hppa_dist.Gibson.cpi mix ~mul_cycles:168.0 ~div_cycles:108.0 in
      Printf.printf
        "    %-16s naive routines %.3f, this paper's %.3f  (%.1f%% speedup)\n"
        mix.name naive soft
        (100.0 *. ((naive /. soft) -. 1.0)))
    Hppa_dist.Gibson.all

(* ------------------------------------------------------------------ *)
(* Ablation: 1987 floor method vs modern round-up magic                *)

let ablation_magic () =
  header "Ablation: the paper's floor reciprocal vs the round-up method";
  Printf.printf
    "  %-4s %-26s %-30s\n" "y" "paper (floor + b adjust)" "modern (round-up, 1994-style)";
  List.iter
    (fun y ->
      let y32 = Int32.of_int y in
      let paper_desc =
        let t = Div_magic.derive y32 in
        if t.a >= 0x1_0000_0000L then "a needs 33 bits -> fallback"
        else
          match Chain_rules.find (Int64.to_int t.a) with
          | Some c -> Printf.sprintf "z=2^%d chain=%d" t.s (Chain.length c)
          | None -> "no chain"
      in
      let modern = Div_magic_modern.derive y32 in
      let modern_desc =
        if modern.add_fixup then Printf.sprintf "p=%d m=33 bits (fixup +4)" modern.p
        else
          match Div_magic_modern.chain_cost modern with
          | Some c -> Printf.sprintf "p=%d chain=%d" modern.p c
          | None -> Printf.sprintf "p=%d (no word-safe chain)" modern.p
      in
      Printf.printf "  %-4d %-26s %-30s\n" y paper_desc modern_desc)
    [ 3; 5; 7; 9; 11; 13; 15; 17; 19 ];
  Printf.printf
    "  note: the floor method loses y=11 over the full unsigned range\n\
    \  (coverage (K+1)y), the round-up method covers every divisor but\n\
    \  pays a 33-bit multiplier on y=7 and y=19.\n"

(* ------------------------------------------------------------------ *)
(* Booth comparison                                                    *)

let booth () =
  header "The rejected Multiply Step hardware vs the software ladder";
  let g = Prng.create 0xB007L in
  let n = 4000 in
  let avg entry =
    let tot = ref 0 in
    for _ = 1 to n do
      let x, y = Operand_dist.figure5_pair g in
      tot := !tot + cycles entry [ x; y ]
    done;
    float_of_int !tot /. float_of_int n
  in
  Printf.printf "  Booth multiply-step machine:  %d cycles (fixed)\n"
    (Hppa_baselines.Booth.cycles ());
  List.iter
    (fun e -> Printf.printf "  %-28s %.1f cycles (figure-5 operands)\n" (e ^ ":") (avg e))
    [ "mul_naive"; "mul_nibble"; "mul_switch"; "mul_final" ];
  Printf.printf
    "  the paper's claim: the final algorithm \"compares favorably with\n\
    \  Booth's algorithm implemented with a Multiply Step\" at no hardware cost.\n"

(* ------------------------------------------------------------------ *)
(* Pipeline models: ideal vs delay slots, scheduled and not            *)

let delay_bench () =
  header "Delay slots: what HP's millicode scheduling was worth";
  let naive_m =
    Machine.create ~delay_slots:true
      (Program.resolve_exn (Delay.naive Millicode.source))
  in
  let sched_src = Delay.schedule Millicode.source in
  let sched_m =
    Machine.create ~delay_slots:true (Program.resolve_exn sched_src)
  in
  let st = Delay.stats_of sched_src in
  Printf.printf
    "  scheduler filled %d of %d branch slots in the millicode (%.0f%%)\n\n"
    st.Delay.filled st.Delay.branches
    (100.0 *. float_of_int st.Delay.filled /. float_of_int st.Delay.branches);
  Printf.printf "  %-12s %18s %18s %18s\n" "entry" "ideal pipeline"
    "delay, unscheduled" "delay, scheduled";
  let measure m entry args = cycles_exn ~what:"delay pipeline" m entry args in
  List.iter
    (fun (entry, args) ->
      let c0 = cycles entry args in
      let c1 = measure naive_m entry args in
      let c2 = measure sched_m entry args in
      Printf.printf "  %-12s %18d %18d %18d\n" entry c0 c1 c2)
    [
      ("mul_final", [ 123456l; 789l ]);
      ("mul_nibble", [ 123456l; 789l ]);
      ("divU", [ 123456789l; 1097l ]);
      ("divU_small", [ 123456789l; 7l ]);
      ("mulU64", [ 0xDEADBEEFl; 0xCAFEBABEl ]);
    ];
  Printf.printf
    "\n  the paper counts instructions on scheduled code, so its numbers\n\
    \  track the ideal-pipeline column; unscheduled code pays one cycle\n\
    \  per taken branch — the gap the scheduler recovers.\n"

(* ------------------------------------------------------------------ *)
(* Instruction-cache footprint (the section 6 size concern)            *)

let icache_bench () =
  header "Section 6: instruction-cache cost of the multiply routines";
  Printf.printf
    "  (the paper kept case-table entries at two instructions \"to reduce\n\
    \   the algorithm's size (and the instruction cache misses suffered)\")\n\n";
  let m = Lazy.force mach in
  let cache = Hppa_machine.Icache.create ~line_words:8 ~lines:64 () in
  Machine.set_icache m (Some cache);
  let penalty = 10 in
  Printf.printf "  %-16s %14s %14s %22s\n" "routine" "cold misses"
    "warm misses" (Printf.sprintf "cold cycles (+%d/miss)" penalty);
  List.iter
    (fun entry ->
      Hppa_machine.Icache.reset cache;
      let c = cycles entry [ 123456l; 7890l ] in
      let cold = Hppa_machine.Icache.misses cache in
      let h0 = Hppa_machine.Icache.hits cache in
      ignore h0;
      (* Second call: everything resident. *)
      let before = Hppa_machine.Icache.misses cache in
      ignore (cycles entry [ 654321l; 1234l ]);
      let warm = Hppa_machine.Icache.misses cache - before in
      Printf.printf "  %-16s %14d %14d %22d\n" entry cold warm
        (c + (penalty * cold)))
    [ "mul_naive"; "mul_nibble"; "mul_switch"; "mul_final" ];
  Machine.set_icache m None;
  Printf.printf
    "  the case table buys warm-cache speed at a cold-start cost — the\n\
    \  trade the paper navigated by keeping entries two instructions wide.\n"

(* ------------------------------------------------------------------ *)
(* Compiled loop kernels (section 2's motivation, measured)            *)

let kernels () =
  header "Section 2: compiled kernels before/after strength reduction";
  let open Hppa_compiler in
  let run prog entry args =
    let m = Machine.create prog in
    let c = cycles_exn ~what:"compiled kernel" m entry args in
    (Machine.get m Reg.ret0, c)
  in
  let compile ?preheader l inputs =
    let u = Lower_loop.compile ~entry:"k" ~inputs ~result:"j" ?preheader l in
    Program.resolve_exn (Program.concat [ u.source; Millicode.source ])
  in
  let body stmts = List.map (fun (v, e) -> Loop_ir.Assign (v, e)) stmts in
  let trips = 500l in
  let loop stmts =
    Loop_ir.{ counter = "i"; start = 1l; stop = trips; step = 1l; body = body stmts }
  in
  let measure name inputs args l =
    let before = compile l inputs in
    let r = Strength.reduce l in
    let after = compile ~preheader:r.preheader r.loop inputs in
    let v1, c1 = run before "k" args in
    let v2, c2 = run after "k" args in
    assert (Word.equal v1 v2);
    Printf.printf "  %-44s %7d -> %7d cycles (%.2fx)\n" name c1 c2
      (float_of_int c1 /. float_of_int c2);
    (c1, c2)
  in
  (* Address arithmetic: the multiply reduces away. *)
  let addressing =
    loop [ ("j", Expr.Add (Var "j", Expr.Mul (Var "i", Var "stride"))) ]
  in
  let _ = measure "array addressing  j += i*stride" [ "stride" ] [ 12l ] addressing in
  (* Mixed: the same multiply next to a division the optimizer can never
     remove. *)
  let mixed =
    loop
      [
        ("j", Expr.Add (Var "j", Expr.Mul (Var "i", Var "stride")));
        ("j", Expr.Add (Var "j", Expr.Div (Var "n", Var "i")));
      ]
  in
  let c1, c2 = measure "mixed            + j += n/i" [ "stride"; "n" ] [ 12l; 5040l ] mixed in
  (* Estimate the divide share: the divides cost what the mixed kernel
     pays over the addressing kernel after reduction. *)
  let div_only =
    loop [ ("j", Expr.Add (Var "j", Expr.Div (Var "n", Var "i"))) ]
  in
  let _, cdiv = run (compile div_only [ "stride"; "n" ]) "k" [ 12l; 5040l ] in
  let overhead = 4 * Int32.to_int trips in
  let share c = 100.0 *. float_of_int (cdiv - overhead) /. float_of_int c in
  Printf.printf
    "  divide share of the mixed kernel: %.0f%% before, %.0f%% after reduction\n"
    (share c1) (share c2);
  Printf.printf
    "  — \"the percent of the time a program spends doing divisions may\n\
    \     actually increase\" as optimization removes everything else (section 2).\n";
  (* Horner polynomial evaluation: multiplies by a non-invariant value
     stay in the millicode whatever the optimizer does. *)
  let horner =
    loop [ ("j", Expr.Add (Expr.Mul (Var "j", Var "x"), Var "i")) ]
  in
  let _ = measure "Horner           j = j*x + i" [ "x" ] [ 3l ] horner in
  ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (host time)                               *)

let bechamel_suite () =
  let open Bechamel in
  let mul_pair =
    let g = Prng.create 1L in
    fun () -> Operand_dist.figure5_pair g
  in
  let test_sim name entry =
    Test.make ~name
      (Staged.stage (fun () ->
           let x, y = mul_pair () in
           ignore (cycles entry [ x; y ])))
  in
  let tests =
    [
      test_sim "sim/mul_final" "mul_final";
      test_sim "sim/mul_naive" "mul_naive";
      test_sim "sim/divU" "divU";
      Test.make ~name:"chains/rule-table-1k"
        (Staged.stage (fun () -> ignore (Chain_rules.table Fast ~limit:1000)));
      Test.make ~name:"chains/exhaustive-d3"
        (Staged.stage (fun () ->
             ignore (Chain_search.lengths_table ~max_len:3 ~limit:100 ())));
      Test.make ~name:"divmagic/derive-19"
        (Staged.stage (fun () -> ignore (Div_magic.derive 19l)));
      Test.make ~name:"divconst/plan-7"
        (Staged.stage (fun () -> ignore (Div_const.plan_unsigned 7l)));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  List.concat_map
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.fold
        (fun name result acc ->
          let est =
            match Bechamel.Analyze.OLS.estimates result with
            | Some [ est ] -> Some est
            | Some _ | None -> None
          in
          (name, est) :: acc)
        results [])
    tests

let bechamel_print () =
  header "Bechamel micro-benchmarks (host nanoseconds per run)";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.printf "  %-26s %12.1f ns/run\n" name est
      | None -> Printf.printf "  %-26s (no estimate)\n" name)
    (bechamel_suite ())

(* ------------------------------------------------------------------ *)
(* BENCH_PLANS.json: the kernel-strategy autotune gate                  *)

module Strategy = Hppa_plan.Strategy
module Autotune = Hppa_plan.Autotune

(* The constant set covers every Div_const strategy shape (trivial,
   shift, reciprocal, even split, general fallback via 625) and chain
   lengths 1..4+, plus the variable requests the millicode serves. *)
let plan_requests ~fast =
  let muls =
    if fast then [ 3l; 15l; 625l ]
    else [ 2l; 3l; 5l; 6l; 10l; 15l; 25l; 31l; 100l; 625l; 1000l ]
  in
  let divs =
    if fast then [ 3l; 7l; 16l ]
    else [ 1l; 3l; 5l; 7l; 9l; 10l; 11l; 13l; 16l; 19l; 625l ]
  in
  List.map (fun c -> Strategy.mul_const c) muls
  @ List.map (fun c -> Strategy.div_const Strategy.Unsigned c) divs
  @ [ Strategy.mul_var (); Strategy.div_var Strategy.Unsigned ]

(* The full double-word family: the variable-operand entries plus the
   128/64 divide (divU128by64). *)
let w64_requests =
  [
    Strategy.w64_mul Strategy.Unsigned; Strategy.w64_mul Strategy.Signed;
    Strategy.w64_div Strategy.Unsigned; Strategy.w64_div Strategy.Signed;
    Strategy.w64_rem Strategy.Unsigned; Strategy.w64_rem Strategy.Signed;
    Strategy.w64_divl;
  ]

(* Measure every candidate for every request; errors count as failures
   in [plans] mode (a request the registry cannot serve is a bug). *)
let tune_reports ~obs ~store ~workload reqs =
  let errors = ref 0 in
  let reports =
    List.filter_map
      (fun req ->
        match Autotune.tune ~store ~obs workload req with
        | Ok r -> Some r
        | Error msg ->
            Printf.eprintf "bench plans: %s: %s\n%!"
              (Strategy.request_id req) msg;
            incr errors;
            None)
      reqs
  in
  (reports, !errors)

(* Per-strategy aggregation over a report set: how often each strategy
   was measured, its average mean cycles, how often it measured best. *)
let strategy_table reports =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r : Autotune.report) ->
      List.iter
        (fun (name, m) ->
          match m with
          | Ok (m : Autotune.measurement) ->
              let n, tot, wins =
                Option.value ~default:(0, 0.0, 0) (Hashtbl.find_opt tbl name)
              in
              Hashtbl.replace tbl name
                ( n + 1,
                  tot +. m.Autotune.mean_cycles,
                  wins + if r.Autotune.best = name then 1 else 0 )
          | Error _ -> ())
        r.Autotune.measurements)
    reports;
  Hashtbl.fold (fun name (n, tot, wins) acc ->
      (name, n, tot /. float_of_int (max n 1), wins) :: acc)
    tbl []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)

let print_strategy_table rows =
  Printf.printf "\n  per-strategy comparison:\n";
  Printf.printf "  %-24s %9s %12s %6s\n" "strategy" "measured" "mean cyc"
    "wins";
  List.iter
    (fun (name, n, mean, wins) ->
      Printf.printf "  %-24s %9d %12.1f %6d\n" name n mean wins)
    rows

let bench_plans ~fast ~out () =
  header "Kernel-strategy autotune (lib/plan): selector vs measured cycles";
  let obs = Obs.Registry.create () in
  let store = Autotune.Store.create () in
  let samples = if fast then 32 else 128 in
  let workload = Autotune.Figure5 { samples; seed = 0x5EEDL } in
  let reports, failures = tune_reports ~obs ~store ~workload (plan_requests ~fast) in
  let failures = ref failures in
  (* The W64 family tunes over its own 64-bit operand models: the
     high-word-zero mix plus (slow path) fully-64-bit uniform pairs. *)
  let w64_samples = if fast then 16 else 64 in
  let w64_reports, w64_failures =
    tune_reports ~obs ~store
      ~workload:(Autotune.Hw0 { samples = w64_samples; seed = 0x5EED64L })
      w64_requests
  in
  failures := !failures + w64_failures;
  let u64_reports, u64_failures =
    if fast then ([], 0)
    else
      tune_reports ~obs ~store
        ~workload:(Autotune.Uniform64 { samples = w64_samples; seed = 0x64L })
        [ Strategy.w64_mul Strategy.Unsigned; Strategy.w64_div Strategy.Unsigned ]
  in
  failures := !failures + u64_failures;
  let reports = reports @ w64_reports @ u64_reports in
  Printf.printf "  %-14s %-18s %10s %10s  %s\n" "request" "chosen"
    "mean cyc" "fallback" "gate";
  List.iter
    (fun (r : Autotune.report) ->
      let fb =
        match r.Autotune.fallback with
        | Some f -> Printf.sprintf "%.1f" f.Autotune.mean_cycles
        | None -> "-"
      in
      Printf.printf "  %-14s %-18s %10.1f %10s  %s\n"
        r.Autotune.chosen.Autotune.request
        r.Autotune.chosen.Autotune.strategy
        r.Autotune.chosen.Autotune.mean_cycles fb
        (if r.Autotune.gate_ok then "ok" else "FAIL: slower than millicode");
      if not r.Autotune.gate_ok then incr failures)
    reports;
  print_strategy_table (strategy_table reports);
  (match Autotune.Store.save store out with
  | Ok () -> Printf.printf "\nwrote %s (%d measurements)\n" out
               (Autotune.Store.length store)
  | Error msg ->
      Printf.eprintf "bench plans: cannot write %s: %s\n" out msg;
      incr failures);
  if !failures > 0 then begin
    Printf.eprintf
      "bench plans: %d gate violation(s): the selector chose a plan that \
       measures slower than the millicode fallback\n"
      !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* certify: run the division certifier over every divide strategy      *)

(* Closed-form certification sweep: every selector arbitration below
   runs with [~require_certified:true], so a divisor only passes when
   some emitting strategy carries a machine-checked proof (reciprocal
   coverage bound, power-of-two shift identity, or the divide-step
   schema of the millicode fallback). No dividends are sampled. *)
let bench_certify ~fast () =
  header "division certifier (closed-form, all dividends)";
  let obs = Obs.Registry.create () in
  let limit = if fast then 256 else 4096 in
  let failures = ref 0 in
  let t0 = Unix.gettimeofday () in
  (* Figure 6 first: each paper row's derived plan must certify. *)
  List.iter
    (fun (t : Div_magic.t) ->
      let req = Strategy.div_const Strategy.Unsigned t.Div_magic.y in
      match Hppa_plan.Selector.choose ~obs ~require_certified:true req with
      | Ok _ -> ()
      | Error msg ->
          Printf.eprintf "bench certify: figure6 y=%ld: %s\n%!" t.Div_magic.y
            msg;
          incr failures)
    (Div_magic.figure6 ());
  Printf.printf "  figure6 rows: %d certified\n%!"
    (List.length (Div_magic.figure6 ()) - !failures);
  (* Then the sweep: unsigned and signed divide and remainder for every
     divisor up to the limit (signed also on the negative divisor). *)
  let shapes d =
    [
      Strategy.div_const Strategy.Unsigned d;
      Strategy.div_const Strategy.Signed d;
      Strategy.div_const Strategy.Signed (Int32.neg d);
      Strategy.rem_const Strategy.Unsigned d;
      Strategy.rem_const Strategy.Signed d;
    ]
  in
  for d = 1 to limit do
    List.iter
      (fun req ->
        match
          Hppa_plan.Selector.choose ~obs ~require_certified:true req
        with
        | Ok _ -> ()
        | Error msg ->
            Printf.eprintf "bench certify: %s: %s\n%!"
              (Strategy.request_id req) msg;
            incr failures)
      (shapes (Int32.of_int d))
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let total = (limit * 5) + List.length (Div_magic.figure6 ()) in
  Printf.printf
    "  divisors 1..%d x {divU, divI, divI(-d), remU, remI}: %d plans, %d \
     failure(s) in %.1fs\n"
    limit total !failures dt;
  (* The double-word family: every W64 entry must certify against the
     canonical millicode image (body equivalence). *)
  let w64_ok = ref 0 in
  List.iter
    (fun req ->
      match Hppa_plan.Selector.choose ~obs ~require_certified:true req with
      | Ok _ -> incr w64_ok
      | Error msg ->
          Printf.eprintf "bench certify: %s: %s\n%!"
            (Strategy.request_id req) msg;
          incr failures)
    w64_requests;
  Printf.printf "  w64 family: %d of %d certified\n%!" !w64_ok
    (List.length w64_requests);
  (* The counters the server exports under the same name. *)
  List.iter
    (fun (s : Obs.sample) ->
      if s.Obs.name = "hppa_verify_certified_total" then
        match s.Obs.value with
        | Obs.Counter_v n ->
            Printf.printf "  %s{%s} = %d\n" s.Obs.name
              (String.concat ","
                 (List.map (fun (k, v) -> k ^ "=" ^ v) s.Obs.labels))
              n
        | _ -> ())
    (Obs.Registry.snapshot obs);
  if !failures > 0 then begin
    Printf.eprintf "bench certify: %d uncertified divide plan(s)\n" !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* w64: the double-word kernel family, measured                         *)

(* Per-entry cycle statistics over the high-word-zero operand mix, next
   to a reference scale stated in per-word millicode calls: a 128-bit
   product is four 32x32 [mulU64] partial products, and a normalized
   64/64 divide runs the 64/32 [divU64] core at least once. The ratio
   column shows what the frame spills, reloads, sign handling and
   normalization glue cost relative to that scale; the multiplies can
   land below 1.0x because the shift-and-add ladder is data-dependent
   and partial products with small high words are cheap. *)
let bench_w64 ~fast () =
  header "64-bit kernel family (lib/w64): measured cycles vs per-word calls";
  let m = Lazy.force mach in
  let n = if fast then 400 else 2000 in
  let block entry args_of =
    let g = Prng.create 0x5EED64L in
    let tot = ref 0 in
    for _ = 1 to n do
      let x, y = Operand_dist.w64_pair g in
      tot := !tot + cycles entry (args_of x y)
    done;
    float_of_int !tot /. float_of_int n
  in
  let mul64_mean =
    block "mulU64" (fun x y -> [ Hppa_w64.lo32 x; Hppa_w64.lo32 y ])
  in
  let div64_mean =
    block "divU64" (fun x y ->
        let d = Hppa_w64.lo32 y in
        let d = if Word.equal d 0l then 1l else d in
        [ 0l; Hppa_w64.lo32 x; d ])
  in
  Printf.printf
    "  building blocks (same stream, low words): mulU64 %.1f cycles, divU64 \
     %.1f cycles\n\n"
    mul64_mean div64_mean;
  Printf.printf "  %-10s %6s %7s %6s %8s %-12s %6s\n" "entry" "min" "mean"
    "max" "ref" "(per-word)" "ratio";
  List.iter
    (fun entry ->
      let g = Prng.create 0x5EED64L in
      let cmin = ref max_int and cmax = ref 0 and tot = ref 0 in
      for _ = 1 to n do
        let x, y = Operand_dist.w64_pair g in
        match Hppa_w64.call_cycles m entry ~x ~y with
        | Hppa_w64.Value _, c ->
            cmin := min !cmin c;
            cmax := max !cmax c;
            tot := !tot + c
        | Hppa_w64.Trap t, _ ->
            Printf.eprintf "bench w64: %s trapped: %s\n%!" entry
              (Hppa_machine.Trap.to_string t);
            exit 1
        | Hppa_w64.Fuel, _ ->
            Printf.eprintf "bench w64: %s exhausted its fuel\n%!" entry;
            exit 1
      done;
      let mean = float_of_int !tot /. float_of_int n in
      let bound, what =
        match Hppa_w64.op_of_entry entry with
        | Hppa_w64.Mul -> (4.0 *. mul64_mean, "4 x mulU64")
        | Hppa_w64.Div | Hppa_w64.Rem -> (div64_mean, "1 x divU64")
      in
      Printf.printf "  %-10s %6d %7.1f %6d %8.1f %-12s %5.2fx\n" entry !cmin
        mean !cmax bound what (mean /. bound))
    Hppa_w64.entries

(* ------------------------------------------------------------------ *)
(* BENCH_SIM.json: machine-readable performance snapshot                *)

(* Simulated instructions per host second for one millicode entry,
   measured on a private machine with the threaded engine forced on or
   off. The first call is a warm-up so translation cost stays out of the
   engine numbers. Each machine publishes into [obs] under a
   kernel/engine label pair so BENCH_SIM.json records exactly what ran. *)
let sim_throughput ~obs ~engine ~iters entry args_of =
  let config =
    {
      Machine.Config.default with
      engine;
      obs = Some obs;
      obs_labels =
        [ ("kernel", entry); ("engine", string_of_bool engine) ];
    }
  in
  let m = Millicode.machine ~config () in
  ignore (cycles_exn ~what:"json warmup" m entry (args_of 0));
  let t0 = Unix.gettimeofday () in
  let cyc = ref 0 in
  for i = 1 to iters do
    cyc := !cyc + cycles_exn ~what:"json throughput" m entry (args_of i)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (float_of_int !cyc /. dt, !cyc, Machine.used_engine m)

(* Simulated instructions per host second for one millicode entry on
   the batched SoA engine at a given lane width: the same operand
   stream as [sim_throughput], fed [width] call-sites at a time. The
   batch machine publishes its aggregate stats and the
   [hppa_machine_batch_*] counters under a kernel/width label pair. *)
let batch_throughput ~obs ~iters ~width entry args_of =
  let b =
    Machine.Batch.create ~obs
      ~obs_labels:[ ("kernel", entry); ("width", string_of_int width) ]
      ~lanes:width (Millicode.resolved ())
  in
  let die fmt =
    Printf.eprintf "bench batch: %s: " entry;
    Printf.kfprintf (fun oc -> output_char oc '\n'; exit 1) stderr fmt
  in
  (* Warm-up batch: translation cost stays out of the timing. *)
  Machine.Batch.call b entry ~args:(Array.init width (fun _ -> args_of 0));
  let t0 = Unix.gettimeofday () in
  let cyc = ref 0 in
  let i = ref 1 in
  while !i <= iters do
    let k = min width (iters - !i + 1) in
    let base = !i in
    Machine.Batch.call b entry
      ~args:(Array.init k (fun j -> args_of (base + j)));
    for l = 0 to k - 1 do
      (match Machine.Batch.outcome b ~lane:l with
      | Machine.Halted -> ()
      | Machine.Trapped t ->
          die "lane %d trapped: %s" l (Hppa_machine.Trap.to_string t)
      | Machine.Fuel_exhausted -> die "lane %d exhausted its fuel" l);
      cyc := !cyc + Machine.Batch.cycles b ~lane:l
    done;
    i := !i + k
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (float_of_int !cyc /. dt, !cyc)

let batch_widths = [ 1; 4; 16; 64; 256 ]

let closure_wall ?obs ~domains ~max_len ~limit () =
  let t0 = Unix.gettimeofday () in
  ignore (Chain_search.lengths_table ?obs ~domains ~max_len ~limit ());
  Unix.gettimeofday () -. t0

let bench_json ?(batch = false) ~fast ~out () =
  let obs = Obs.Registry.create () in
  let iters = if fast then 4000 else 20000 in
  let sim_kernel_args =
    [
      ("mul_final", fun i -> [ Int32.of_int ((i land 0xffff) + 1); 12345l ]);
      ("mul_naive", fun i -> [ Int32.of_int ((i land 0xffff) + 1); 0x12345l ]);
      ("divU", fun i -> [ Int32.of_int ((i * 7919) land 0x3fff_ffff); 1097l ]);
    ]
  in
  let sim_kernels =
    List.map
      (fun (name, args_of) ->
        let eng, sim_insns, eng_used =
          sim_throughput ~obs ~engine:true ~iters name args_of
        in
        let itp, _, _ = sim_throughput ~obs ~engine:false ~iters name args_of in
        (name, eng, itp, sim_insns, eng_used))
      sim_kernel_args
  in
  (* The `batch` mode is `json` plus a width sweep of the SoA engine
     over the same kernels and operand streams, gated against the
     scalar engine numbers measured above. *)
  let batch_rows =
    if not batch then []
    else
      List.map
        (fun (name, args_of) ->
          let scalar =
            let _, eng, _, _, _ =
              List.find (fun (n, _, _, _, _) -> n = name) sim_kernels
            in
            eng
          in
          let widths =
            List.map
              (fun w ->
                let ips, _ = batch_throughput ~obs ~iters ~width:w name args_of in
                (w, ips))
              batch_widths
          in
          (name, scalar, widths))
        sim_kernel_args
  in
  let max_len, limit = if fast then (4, 300) else (5, 700) in
  let seq = closure_wall ~obs ~domains:1 ~max_len ~limit () in
  let domains = Hppa_machine.Sweep.default_domains () in
  let par = closure_wall ~obs ~domains ~max_len ~limit () in
  (* A small autotune pass so the snapshot carries the per-strategy
     comparison (full sweep: the [plans] mode). *)
  let plan_rows =
    let store = Autotune.Store.create () in
    let reports, _ =
      tune_reports ~obs ~store
        ~workload:(Autotune.Figure5 { samples = 32; seed = 0x5EEDL })
        [
          Strategy.mul_const 625l;
          Strategy.div_const Strategy.Unsigned 10l;
          Strategy.mul_var ();
        ]
    in
    strategy_table reports
  in
  let bech = bechamel_suite () in
  let path = out in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"hppa-bench-sim/1\",\n";
  out "  \"fast\": %b,\n" fast;
  out "  \"meta\": {\"domains\": %d, \"engine_default\": %b},\n" domains
    (Machine.Config.default.engine);
  out "  \"sim_kernels\": [\n";
  List.iteri
    (fun i (name, eng, itp, sim_insns, eng_used) ->
      out
        "    {\"name\": %S, \"engine_insns_per_sec\": %.0f, \
         \"interp_insns_per_sec\": %.0f, \"speedup\": %.2f, \
         \"sim_insns\": %d, \"used_engine\": %b}%s\n"
        name eng itp (eng /. itp) sim_insns eng_used
        (if i < List.length sim_kernels - 1 then "," else ""))
    sim_kernels;
  out "  ],\n";
  if batch_rows <> [] then begin
    out "  \"batch_kernels\": [\n";
    List.iteri
      (fun i (name, scalar, widths) ->
        out
          "    {\"name\": %S, \"scalar_insns_per_sec\": %.0f, \
           \"widths\": [%s]}%s\n"
          name scalar
          (String.concat ", "
             (List.map
                (fun (w, ips) ->
                  Printf.sprintf
                    "{\"width\": %d, \"insns_per_sec\": %.0f, \
                     \"speedup_vs_scalar\": %.2f}"
                    w ips (ips /. scalar))
                widths))
          (if i < List.length batch_rows - 1 then "," else ""))
      batch_rows;
    out "  ],\n"
  end;
  out "  \"plan_strategies\": [\n";
  List.iteri
    (fun i (name, n, mean, wins) ->
      out
        "    {\"strategy\": %S, \"measured\": %d, \"mean_cycles\": %.1f, \
         \"wins\": %d}%s\n"
        name n mean wins
        (if i < List.length plan_rows - 1 then "," else ""))
    plan_rows;
  out "  ],\n";
  out "  \"obs\": %s,\n" (Obs.Export.json (Obs.Registry.snapshot obs));
  out "  \"lengths_table\": {\"max_len\": %d, \"limit\": %d, \
       \"seq_seconds\": %.3f, \"par_seconds\": %.3f, \"domains\": %d, \
       \"parallel_speedup\": %.2f},\n"
    max_len limit seq par domains (seq /. par);
  out "  \"bechamel_ns_per_run\": {\n";
  List.iteri
    (fun i (name, est) ->
      out "    %S: %s%s\n" name
        (match est with Some e -> Printf.sprintf "%.1f" e | None -> "null")
        (if i < List.length bech - 1 then "," else ""))
    bech;
  out "  }\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path;
  List.iter
    (fun (name, eng, itp, _, _) ->
      Printf.printf "  %-10s engine %.1fM insns/s, interpreter %.1fM, %.1fx\n"
        name (eng /. 1e6) (itp /. 1e6) (eng /. itp))
    sim_kernels;
  Printf.printf
    "  lengths_table depth %d: %.2fs sequential, %.2fs on %d domain(s) (%.2fx)\n"
    max_len seq par domains (seq /. par);
  print_strategy_table plan_rows;
  (* Gate: the batch engine must beat the scalar engine on the two
     kernels the paper's throughput story rests on. *)
  let batch_fail = ref false in
  List.iter
    (fun (name, scalar, widths) ->
      let best_w, best =
        List.fold_left
          (fun (bw, b) (w, ips) -> if ips > b then (w, ips) else (bw, b))
          (0, 0.0) widths
      in
      Printf.printf "  %-10s batch:" name;
      List.iter (fun (w, ips) -> Printf.printf " w%d %.1fM" w (ips /. 1e6)) widths;
      Printf.printf "  best w%d = %.2fx scalar\n" best_w (best /. scalar);
      if (name = "mul_naive" || name = "divU") && best <= scalar then begin
        Printf.eprintf
          "bench batch: %s best width w%d (%.1fM insns/s) does not beat the \
           scalar engine (%.1fM)\n"
          name best_w (best /. 1e6) (scalar /. 1e6);
        batch_fail := true
      end)
    batch_rows;
  if !batch_fail then exit 1

(* ------------------------------------------------------------------ *)

let all_figures =
  [
    ("fig1", fun ~deep () -> fig1 ~deep ());
    ("fig2", fun ~deep:_ () -> fig2 ());
    ("fig3", fun ~deep:_ () -> fig3 ());
    ("fig4", fun ~deep:_ () -> fig4 ());
    ("fig5", fun ~deep:_ () -> fig5 ());
    ("fig6", fun ~deep:_ () -> fig6 ());
    ("operands", fun ~deep:_ () -> operands ());
    ("fig7", fun ~deep:_ () -> fig7 ());
    ("div_perf", fun ~deep:_ () -> div_perf ());
    ("reguse", fun ~deep:_ () -> reguse ());
    ("overflow", fun ~deep:_ () -> overflow_bench ());
    ("summary", fun ~deep:_ () -> summary ());
    ("kernels", fun ~deep:_ () -> kernels ());
    ("icache", fun ~deep:_ () -> icache_bench ());
    ("delay", fun ~deep:_ () -> delay_bench ());
    ("ablation_magic", fun ~deep:_ () -> ablation_magic ());
    ("booth", fun ~deep:_ () -> booth ());
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* `json --out PATH` / `plans --out PATH` redirect the artifact (so CI
     can write outside the checkout); everything else is a figure
     selection. The default depends on the mode: BENCH_SIM.json for
     `json`, BENCH_PLANS.json for `plans`. *)
  let out, args =
    let rec go acc = function
      | "--out" :: path :: rest -> (Some path, List.rev_append acc rest)
      | a :: rest -> go (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let deep = List.mem "--deep" args in
  let fast = List.mem "--fast" args in
  let selected =
    List.filter (fun a -> a <> "--deep" && a <> "--fast") args
  in
  if List.mem "bechamel" selected then bechamel_print ()
  else if List.mem "json" selected then
    bench_json ~fast ~out:(Option.value out ~default:"BENCH_SIM.json") ()
  else if List.mem "batch" selected then
    bench_json ~batch:true ~fast
      ~out:(Option.value out ~default:"BENCH_SIM.json") ()
  else if List.mem "plans" selected then
    bench_plans ~fast ~out:(Option.value out ~default:"BENCH_PLANS.json") ()
  else if List.mem "certify" selected then bench_certify ~fast ()
  else if List.mem "w64" selected then bench_w64 ~fast ()
  else begin
    let to_run =
      if selected = [] then all_figures
      else
        List.filter (fun (name, _) -> List.mem name selected) all_figures
    in
    if to_run = [] then begin
      Printf.printf
        "unknown selection; available: %s bechamel json batch plans certify \
         w64\n"
        (String.concat " " (List.map fst all_figures));
      exit 2
    end;
    Printf.printf
      "Integer Multiplication and Division on the HP Precision Architecture\n\
       (ASPLOS 1987) — reproduction harness. Paper values vs this simulator.\n";
    List.iter (fun (_, f) -> f ~deep ()) to_run
  end
