(* Tests for the kernel-strategy layer (lib/plan): every selected plan
   is lint-clean and round-trips through the encoder; the selector
   agrees with the compiler's inline threshold; differential coverage
   against the Cpu reference and the millicode fallback over all
   divisors 1..4096 and 1k seeded multipliers, with the measured-cycle
   gate; the autotune store round-trips through BENCH_PLANS.json. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Plan = Hppa_plan.Strategy
module Selector = Hppa_plan.Selector
module Autotune = Hppa_plan.Autotune
module Obs = Hppa_obs.Obs
module Dist = Hppa_dist.Operand_dist
module Prng = Hppa_dist.Prng
open Hppa

let choose_exn ?ctx req =
  match Selector.choose ?ctx req with
  | Ok c -> c
  | Error e ->
      Alcotest.failf "no plan for %s: %s" (Plan.request_id req) e

let machine_of emission =
  match Plan.link emission with
  | Ok prog -> Machine.create prog
  | Error e -> Alcotest.failf "link %s: %s" emission.Plan.entry e

let milli = lazy (Millicode.machine ())

let call_ret0 mach entry args =
  match Machine.call_cycles mach entry ~args with
  | Machine.Halted, cycles -> (Machine.get mach Reg.ret0, cycles)
  | Machine.Trapped t, _ ->
      Alcotest.failf "%s trapped: %s" entry (Hppa_machine.Trap.to_string t)
  | Machine.Fuel_exhausted, _ -> Alcotest.failf "%s ran out of fuel" entry

(* ------------------------------------------------------------------ *)
(* Requests round-trip; the CLI parser                                 *)

let test_request_parse () =
  let ok s expect =
    match Plan.request_of_string s with
    | Ok r -> Alcotest.(check string) s expect (Plan.request_id r)
    | Error e -> Alcotest.failf "%S: %s" s e
  in
  ok "mul 625" "mul.c625.s";
  ok "mulo 31" "mul.c31.s.trap";
  ok "mul x" "mul.var.s";
  ok "divu 10" "div.c10.u";
  ok "divi -7" "div.c-7.s";
  ok "remi var" "rem.var.s";
  ok "  remu   3 " "rem.c3.u";
  let bad s =
    match Plan.request_of_string s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error _ -> ()
  in
  bad "";
  bad "mul";
  bad "frob 3";
  bad "mul 3 4";
  bad "divu 99999999999"

(* ------------------------------------------------------------------ *)
(* Acceptance: every selected plan is lint-clean and encodable         *)

let matrix_requests =
  let consts = [ 1l; 2l; 3l; 5l; 7l; 10l; 11l; 60l; 625l; 641l; 1000l ] in
  List.concat
    [
      List.map Plan.mul_const consts;
      List.map (Plan.mul_const ~trap_overflow:true) [ 3l; 31l; 625l ];
      List.map Plan.mul_const [ -7l; -625l; Int32.min_int ];
      [ Plan.mul_var (); Plan.mul_var ~trap_overflow:true () ];
      List.map (Plan.div_const Plan.Unsigned) consts;
      List.map (Plan.div_const Plan.Signed) (consts @ [ -3l; -10l ]);
      List.map (Plan.rem_const Plan.Unsigned) [ 3l; 7l; 10l ];
      List.map (Plan.rem_const Plan.Signed) [ 3l; 7l; 10l; -7l ];
      [
        Plan.div_var Plan.Unsigned; Plan.div_var Plan.Signed;
        Plan.rem_var Plan.Unsigned; Plan.rem_var Plan.Signed;
      ];
    ]

let test_matrix_verified () =
  List.iter
    (fun req ->
      List.iter
        (fun ctx ->
          let id = Plan.request_id req in
          let choice = choose_exn ~ctx req in
          let em = choice.Selector.emission in
          (match Plan.verify em with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s not lint-clean: %s" id em.Plan.entry e);
          (match Plan.encoded em with
          | Ok words ->
              Alcotest.(check bool)
                (id ^ " encodes") true
                (Array.length words > 0)
          | Error e -> Alcotest.failf "%s: encode: %s" id e);
          match Plan.digest em with
          | Ok d -> Alcotest.(check int) (id ^ " md5 hex") 32 (String.length d)
          | Error e -> Alcotest.failf "%s: digest: %s" id e)
        [ Plan.standalone; Plan.compiler (); Plan.compiler ~small_divisor_dispatch:true () ])
    matrix_requests

(* The selector and the compiler agree on what gets inlined. *)
let test_inline_threshold_agreement () =
  for c = 1 to 512 do
    let req = Plan.mul_const (Int32.of_int c) in
    let choice = choose_exn ~ctx:(Plan.compiler ()) req in
    let len = Chain.length (Chain_rules.find_exn c) in
    let expect = if len <= 6 then "mul_const_chain" else "mul_millicode" in
    Alcotest.(check string)
      (Printf.sprintf "c=%d (chain %d)" c len)
      expect choice.Selector.chosen.Plan.name
  done

(* ------------------------------------------------------------------ *)
(* Differential: all divisors 1..4096 against Cpu reference + divU     *)

let test_differential_divisors () =
  let prng = Prng.create 0x5eedL in
  let milli = Lazy.force milli in
  for d = 1 to 4096 do
    let dw = Word.of_int d in
    let choice = choose_exn (Plan.div_const Plan.Unsigned dw) in
    let em = choice.Selector.emission in
    let mach = machine_of em in
    let dividends =
      [ 0l; 1l; dw; Word.max_unsigned ]
      @ List.init 4 (fun _ ->
            let x = Dist.log_uniform ~bits:32 prng in
            if Word.equal x 0l then 7l else x)
    in
    let chosen_cycles = ref 0 and fallback_cycles = ref 0 in
    let ldi_len = List.length (Emit.ldi dw Reg.arg1) in
    List.iter
      (fun x ->
        let expect, _ = Word.divmod_u x dw in
        let got, cycles = call_ret0 mach em.Plan.entry [ x ] in
        if not (Word.equal got expect) then
          Alcotest.failf "d=%d x=%ld: %s gave %ld, reference %ld" d x
            em.Plan.entry got expect;
        let milli_q, milli_cycles = call_ret0 milli "divU" [ x; dw ] in
        if not (Word.equal milli_q expect) then
          Alcotest.failf "d=%d x=%ld: divU gave %ld, reference %ld" d x
            milli_q expect;
        chosen_cycles := !chosen_cycles + cycles;
        fallback_cycles := !fallback_cycles + milli_cycles + ldi_len + 1)
      dividends;
    (* The cycle gate: over the sample set, the selected plan is never
       slower than materialising the divisor and calling divU. *)
    if !chosen_cycles > !fallback_cycles then
      Alcotest.failf "d=%d: chosen %s cost %d cycles, divU fallback %d" d
        choice.Selector.chosen.Plan.name !chosen_cycles !fallback_cycles
  done

(* Differential: 1k seeded multipliers against mul_lo + mulI.  The
   cycle gate here is aggregate: individual tiny multipliers can hit
   mulI's early exits, but over the seeded set the selected plans must
   not lose to the millicode call. *)
let test_differential_multipliers () =
  let prng = Prng.create 0x1234L in
  let milli = Lazy.force milli in
  let chosen_total = ref 0 and fallback_total = ref 0 in
  for i = 1 to 1000 do
    let c =
      let raw = Dist.log_uniform ~bits:31 prng in
      let raw = if Word.equal raw 0l then 3l else raw in
      if i mod 4 = 0 then Word.neg raw else raw
    in
    let choice = choose_exn (Plan.mul_const c) in
    let em = choice.Selector.emission in
    let mach = machine_of em in
    let ldi_len = List.length (Emit.ldi c Reg.arg1) in
    let xs =
      List.init 3 (fun _ ->
          let x = Dist.log_uniform ~bits:16 prng in
          if i mod 2 = 0 then Word.neg x else x)
    in
    List.iter
      (fun x ->
        let expect = Word.mul_lo x c in
        let got, cycles = call_ret0 mach em.Plan.entry [ x ] in
        if not (Word.equal got expect) then
          Alcotest.failf "c=%ld x=%ld: %s gave %ld, mul_lo %ld" c x
            em.Plan.entry got expect;
        let milli_p, milli_cycles = call_ret0 milli "mulI" [ x; c ] in
        if not (Word.equal milli_p expect) then
          Alcotest.failf "c=%ld x=%ld: mulI gave %ld, mul_lo %ld" c x milli_p
            expect;
        chosen_total := !chosen_total + cycles;
        fallback_total := !fallback_total + milli_cycles + ldi_len + 1)
      xs
  done;
  if !chosen_total > !fallback_total then
    Alcotest.failf "selected multiply plans cost %d cycles, mulI fallback %d"
      !chosen_total !fallback_total

(* ------------------------------------------------------------------ *)
(* Variable-operand selection sanity                                   *)

let test_variable_selection () =
  let choice = choose_exn (Plan.mul_var ()) in
  Alcotest.(check string) "mul var" "mul_millicode"
    choice.Selector.chosen.Plan.name;
  let choice = choose_exn (Plan.div_var Plan.Unsigned) in
  Alcotest.(check string) "div var" "div_millicode"
    choice.Selector.chosen.Plan.name;
  (* Under a small-divisor operand model the §7 dispatch wins. *)
  let ctx = Plan.compiler ~small_divisor_dispatch:true () in
  let choice = choose_exn ~ctx (Plan.div_var Plan.Signed) in
  Alcotest.(check string) "small-divisor div var" "div_small"
    choice.Selector.chosen.Plan.name;
  (* Modelled baselines appear as candidates but are never chosen. *)
  let cands = Selector.candidates (Plan.mul_var ()) in
  Alcotest.(check bool) "booth is a candidate" true
    (List.exists
       (fun c -> c.Selector.strategy.Plan.name = "baseline_booth")
       cands)

(* ------------------------------------------------------------------ *)
(* Certified-only selection                                            *)

let test_certified_selection () =
  let obs = Obs.Registry.create () in
  List.iter
    (fun req ->
      let id = Plan.request_id req in
      (* Unproved selection carries no certificate. *)
      let plain = choose_exn req in
      Alcotest.(check bool) (id ^ " unproved") true
        (plain.Selector.certificate = None);
      match Selector.choose ~obs ~require_certified:true req with
      | Error e -> Alcotest.failf "%s: no certified strategy: %s" id e
      | Ok choice -> (
          match choice.Selector.certificate with
          | None -> Alcotest.failf "%s: certified choice without certificate" id
          | Some cert ->
              Alcotest.(check int) (id ^ " cert digest hex") 32
                (String.length cert.Hppa_verify.Certificate.digest);
              (* The table prints the winner's proof. *)
              let table =
                Format.asprintf "%a" Selector.pp_choice choice
              in
              let contains needle =
                let n = String.length needle and h = String.length table in
                let rec go i =
                  i + n <= h && (String.sub table i n = needle || go (i + 1))
                in
                go 0
              in
              Alcotest.(check bool) (id ^ " table shows certificate") true
                (contains "certified:")))
    [
      Plan.mul_const 625l;
      Plan.mul_const (-7l);
      Plan.div_const Plan.Unsigned 7l;
      Plan.div_const Plan.Signed (-10l);
      Plan.rem_const Plan.Unsigned 10l;
      Plan.div_var Plan.Unsigned;
      Plan.rem_var Plan.Signed;
    ];
  (* The per-kind counter landed. *)
  let text = Obs.Export.prometheus (Obs.Registry.snapshot obs) in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "hppa_verify_certified_total exported" true
    (contains "hppa_verify_certified_total")

(* No certifier covers a variable multiply (the nibble loop has no
   linear form), so certified-only selection must fail — with the
   rejection spelled out, not a bare "no strategy". *)
let test_certified_rejects_variable_multiply () =
  match Selector.choose ~require_certified:true (Plan.mul_var ()) with
  | Ok c ->
      Alcotest.failf "variable multiply certified as %s"
        c.Selector.chosen.Plan.name
  | Error e ->
      let contains needle =
        let n = String.length needle and h = String.length e in
        let rec go i = i + n <= h && (String.sub e i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("reason names certification: " ^ e) true
        (contains "not certified")

(* ------------------------------------------------------------------ *)
(* Autotune: measurement, gate, store round trip, metrics              *)

let test_autotune_report () =
  let store = Autotune.Store.create () in
  let obs = Obs.Registry.create () in
  let workload = Autotune.Figure5 { samples = 40; seed = 7L } in
  let report =
    match Autotune.tune ~store ~obs workload (Plan.mul_const 625l) with
    | Ok r -> r
    | Error e -> Alcotest.failf "tune: %s" e
  in
  Alcotest.(check bool) "gate holds for 625" true report.Autotune.gate_ok;
  Alcotest.(check string) "chain chosen" "mul_const_chain"
    report.Autotune.choice.Selector.chosen.Plan.name;
  Alcotest.(check bool) "fallback measured" true
    (report.Autotune.fallback <> None);
  Alcotest.(check bool) "engine used" true
    report.Autotune.chosen.Autotune.used_engine;
  (* Booth's model shows up as a measurement of the variable multiply. *)
  let vreport =
    match Autotune.tune ~store ~obs workload (Plan.mul_var ()) with
    | Ok r -> r
    | Error e -> Alcotest.failf "tune var: %s" e
  in
  Alcotest.(check bool) "booth measured" true
    (List.mem_assoc "baseline_booth" vreport.Autotune.measurements);
  (* Metrics landed in the registry. *)
  let text = Obs.Export.prometheus (Obs.Registry.snapshot obs) in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains needle))
    [
      "hppa_plan_selections_total";
      "hppa_plan_candidates_total";
      "hppa_plan_measured_total";
      "hppa_plan_wins_total";
      "hppa_plan_store_entries";
    ]

let test_store_round_trip () =
  let store = Autotune.Store.create () in
  let obs = Obs.Registry.create () in
  let workload = Autotune.Fixed [ (100l, 0l); (12345l, 0l); (7l, 0l) ] in
  List.iter
    (fun req ->
      match Autotune.tune ~store ~obs workload req with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "tune %s: %s" (Plan.request_id req) e)
    [ Plan.mul_const 60l; Plan.div_const Plan.Unsigned 10l ];
  let n = Autotune.Store.length store in
  Alcotest.(check bool) "store populated" true (n > 0);
  let path = Filename.temp_file "bench_plans" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Autotune.Store.save store path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save: %s" e);
      match Autotune.Store.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok loaded ->
          Alcotest.(check int) "same size" n (Autotune.Store.length loaded);
          Alcotest.(check bool) "same entries" true
            (Autotune.Store.entries loaded = Autotune.Store.entries store);
          (* A warm store short-circuits measurement: re-tuning only
             produces store hits, no new entries. *)
          (match
             Autotune.tune ~store:loaded ~obs workload (Plan.mul_const 60l)
           with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "warm tune: %s" e);
          Alcotest.(check int) "no growth on warm tune" n
            (Autotune.Store.length loaded))

(* Certificates ride along in BENCH_PLANS.json (schema
   hppa-bench-plans/2): measuring a certifiable division attaches the
   certificate kind and digest, and both survive a save/load cycle. *)
let test_store_cert_round_trip () =
  let store = Autotune.Store.create () in
  let workload = Autotune.Fixed [ (100l, 0l); (7l, 0l) ] in
  (match Autotune.tune ~store workload (Plan.div_const Plan.Unsigned 7l) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "tune: %s" e);
  let certified =
    List.filter
      (fun (m : Autotune.measurement) -> m.Autotune.cert_kind <> None)
      (Autotune.Store.entries store)
  in
  Alcotest.(check bool) "some measurements carry certificates" true
    (certified <> []);
  List.iter
    (fun (m : Autotune.measurement) ->
      match m.Autotune.cert_digest with
      | Some d -> Alcotest.(check int) "cert digest hex" 32 (String.length d)
      | None -> Alcotest.fail "cert_kind without cert_digest")
    certified;
  let json = Autotune.Store.to_json store in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema v2" true (contains "hppa-bench-plans/2");
  Alcotest.(check bool) "cert_kind serialized" true (contains "cert_kind");
  match Autotune.Store.of_json json with
  | Error e -> Alcotest.failf "reload: %s" e
  | Ok loaded ->
      Alcotest.(check bool) "cert fields survive round trip" true
        (Autotune.Store.entries loaded = Autotune.Store.entries store)

(* Batched measurement is a pure perf optimization: the verdict —
   every cycle aggregate — must be identical at any batch width, and
   the width used must survive the BENCH_PLANS.json round trip. *)
let test_measure_batch_parity () =
  let workload = Autotune.Figure5 { samples = 37; seed = 11L } in
  let req = Plan.mul_const 625l in
  let strategy =
    match Selector.choose req with
    | Ok c -> c.Selector.chosen
    | Error e -> Alcotest.failf "choose: %s" e
  in
  let verdict width =
    match Autotune.measure ~batch_width:width workload req strategy with
    | Ok m -> m
    | Error e -> Alcotest.failf "measure width %d: %s" width e
  in
  let scalar = verdict 1 in
  Alcotest.(check int) "scalar records width 1" 1 scalar.Autotune.batch_width;
  List.iter
    (fun width ->
      let m = verdict width in
      Alcotest.(check int)
        (Printf.sprintf "width %d records its width" width)
        (min width 37) m.Autotune.batch_width;
      Alcotest.(check int)
        (Printf.sprintf "width %d total cycles" width)
        scalar.Autotune.total_cycles m.Autotune.total_cycles;
      Alcotest.(check int)
        (Printf.sprintf "width %d min cycles" width)
        scalar.Autotune.min_cycles m.Autotune.min_cycles;
      Alcotest.(check int)
        (Printf.sprintf "width %d max cycles" width)
        scalar.Autotune.max_cycles m.Autotune.max_cycles;
      Alcotest.(check int)
        (Printf.sprintf "width %d samples" width)
        scalar.Autotune.samples m.Autotune.samples)
    [ 4; 16; 256 ];
  (* batch_width survives serialization; width-1 entries serialize
     byte-identically to pre-batch stores (no field emitted). *)
  let store = Autotune.Store.create () in
  Autotune.Store.add store (verdict 16);
  let json = Autotune.Store.to_json store in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "batch_width serialized" true
    (contains "\"batch_width\":16");
  (match Autotune.Store.of_json json with
  | Error e -> Alcotest.failf "reload: %s" e
  | Ok loaded ->
      Alcotest.(check bool) "batched entry round trips" true
        (Autotune.Store.entries loaded = Autotune.Store.entries store));
  let scalar_store = Autotune.Store.create () in
  Autotune.Store.add scalar_store scalar;
  Alcotest.(check bool) "width 1 omits the field" false
    (let json = Autotune.Store.to_json scalar_store in
     let n = String.length "batch_width" and h = String.length json in
     let rec go i =
       i + n <= h && (String.sub json i n = "batch_width" || go (i + 1))
     in
     go 0)

(* ------------------------------------------------------------------ *)
(* The W64 (double-word) family through the same layers                *)

let w64_requests =
  [
    Plan.w64_mul Plan.Unsigned; Plan.w64_mul Plan.Signed;
    Plan.w64_div Plan.Unsigned; Plan.w64_div Plan.Signed;
    Plan.w64_rem Plan.Unsigned; Plan.w64_rem Plan.Signed;
  ]

let test_w64_request_parse () =
  let ok s expect =
    match Plan.request_of_string s with
    | Ok r -> Alcotest.(check string) s expect (Plan.request_id r)
    | Error e -> Alcotest.failf "%S: %s" s e
  in
  ok "w64mulu x" "mul.var.u.w64";
  ok "w64muli x" "mul.var.s.w64";
  ok "w64divu x" "div.var.u.w64";
  ok "w64divi x" "div.var.s.w64";
  ok "w64remu x" "rem.var.u.w64";
  ok "w64remi x" "rem.var.s.w64";
  ok "w64divl x" "divl.var.u.w64";
  (* The two-operand w64 forms accept full 64-bit constants. *)
  ok "w64mulu 3" "mul.c3.u.w64";
  ok "w64muli -15" "mul.c-15.s.w64";
  ok "w64divu 10" "div.c10.u.w64";
  ok "w64remi 7" "rem.c7.s.w64";
  ok "w64mulu 0x100000001" "mul.c4294967297.u.w64";
  let bad s =
    match Plan.request_of_string s with
    | Ok r -> Alcotest.failf "%S should not parse (got %s)" s (Plan.request_id r)
    | Error _ -> ()
  in
  (* The 128/64 divide takes all three operands at run time. *)
  bad "w64divl 5";
  bad "w64divu";
  bad "w64frob x"

(* Every W64 request selects its millicode strategy, and the emission
   passes the same acceptance bar as the 32-bit matrix: lint-clean,
   encodable, digestible — and behaviourally pinned to the two-word
   reference through the linked image. *)
let test_w64_selection () =
  List.iter2
    (fun req expect ->
      let id = Plan.request_id req in
      let choice = choose_exn req in
      Alcotest.(check string) id expect choice.Selector.chosen.Plan.name;
      let em = choice.Selector.emission in
      (match Plan.verify em with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: not lint-clean: %s" id e);
      (match Plan.digest em with
      | Ok d -> Alcotest.(check int) (id ^ " md5 hex") 32 (String.length d)
      | Error e -> Alcotest.failf "%s: digest: %s" id e);
      let target =
        match em.Plan.detail with
        | Plan.Millicode t -> t
        | Plan.Mul_plan _ | Plan.Div_plan _ | Plan.Pair_chain _ ->
            Alcotest.failf "%s: w64 emission is not millicode" id
      in
      let mach = machine_of em in
      List.iter
        (fun (x, y) ->
          let got = Hppa_w64.call mach target ~x ~y in
          let want = Hppa_w64.reference target x y in
          if not (Hppa_w64.outcome_equal got want) then
            Alcotest.failf "%s 0x%Lx 0x%Lx: %a want %a" id x y
              Hppa_w64.pp_outcome got Hppa_w64.pp_outcome want)
        [ (0x123456789L, 0x7fedcba98L); (-7L, 3L); (5L, 0L) ])
    w64_requests
    [
      "w64_mul_millicode"; "w64_mul_millicode"; "w64_div_millicode";
      "w64_div_millicode"; "w64_div_millicode"; "w64_div_millicode";
    ]

(* Certified-only serving: every W64 plan carries a body-equivalence
   certificate against the canonical library image. *)
let test_w64_certified_selection () =
  let obs = Obs.Registry.create () in
  List.iter
    (fun req ->
      let id = Plan.request_id req in
      match Selector.choose ~obs ~require_certified:true req with
      | Error e -> Alcotest.failf "%s: %s" id e
      | Ok choice -> (
          match choice.Selector.certificate with
          | None -> Alcotest.failf "%s: certified choice without certificate" id
          | Some cert ->
              Alcotest.(check string) (id ^ " kind") "body_equiv"
                (Hppa_verify.Certificate.kind_label
                   cert.Hppa_verify.Certificate.kind);
              Alcotest.(check int) (id ^ " digest hex") 32
                (String.length cert.Hppa_verify.Certificate.digest)))
    w64_requests

(* Autotune over the 64-bit operand models: the gate holds for every
   entry, batched measurement agrees with scalar, and mismatched
   request/workload pairings are explicit errors. *)
let test_w64_autotune () =
  let store = Autotune.Store.create () in
  let obs = Obs.Registry.create () in
  let workload = Autotune.Hw0 { samples = 24; seed = 9L } in
  List.iter
    (fun req ->
      match Autotune.tune ~store ~obs workload req with
      | Ok r ->
          Alcotest.(check bool)
            (Plan.request_id req ^ " gate") true r.Autotune.gate_ok
      | Error e -> Alcotest.failf "tune %s: %s" (Plan.request_id req) e)
    w64_requests;
  let req = Plan.w64_div Plan.Unsigned in
  let strategy = (choose_exn req).Selector.chosen in
  let verdict width =
    match Autotune.measure ~batch_width:width workload req strategy with
    | Ok m -> m
    | Error e -> Alcotest.failf "measure width %d: %s" width e
  in
  let scalar = verdict 1 and batched = verdict 8 in
  Alcotest.(check int) "total cycles" scalar.Autotune.total_cycles
    batched.Autotune.total_cycles;
  Alcotest.(check int) "min cycles" scalar.Autotune.min_cycles
    batched.Autotune.min_cycles;
  Alcotest.(check int) "max cycles" scalar.Autotune.max_cycles
    batched.Autotune.max_cycles;
  (* A 32-bit workload widens for a w64 request (the kernels accept any
     operand model); the reverse pairing has no 32-bit reading and must
     be an explicit error, not an empty measurement. *)
  (match
     Autotune.measure (Autotune.Figure5 { samples = 8; seed = 1L }) req strategy
   with
  | Ok m -> Alcotest.(check int) "widened samples" 8 m.Autotune.samples
  | Error e -> Alcotest.failf "widened 32-bit workload: %s" e);
  let req32 = Plan.mul_const 7l in
  match Autotune.measure workload req32 (choose_exn req32).Selector.chosen with
  | Ok _ -> Alcotest.fail "64-bit workload accepted for a 32-bit request"
  | Error _ -> ()

let test_store_rejects_garbage () =
  (match Autotune.Store.of_json "" with
  | Ok _ -> Alcotest.fail "empty input accepted"
  | Error _ -> ());
  (match Autotune.Store.of_json "{\"schema\":\"wrong/9\",\"entries\":[]}" with
  | Ok _ -> Alcotest.fail "wrong schema accepted"
  | Error _ -> ());
  match
    Autotune.Store.of_json
      "{\"schema\":\"hppa-bench-plans/1\",\"entries\":[{\"digest\":\"d\"}]}"
  with
  | Ok _ -> Alcotest.fail "truncated entry accepted"
  | Error _ -> ()

let suite =
  [
    ( "plan:request",
      [ Alcotest.test_case "parse / id" `Quick test_request_parse ] );
    ( "plan:selector",
      [
        Alcotest.test_case "matrix is lint-clean + encodable" `Quick
          test_matrix_verified;
        Alcotest.test_case "inline threshold agreement" `Quick
          test_inline_threshold_agreement;
        Alcotest.test_case "variable-operand selection" `Quick
          test_variable_selection;
        Alcotest.test_case "certified-only selection" `Quick
          test_certified_selection;
        Alcotest.test_case "certified rejects variable multiply" `Quick
          test_certified_rejects_variable_multiply;
      ] );
    ( "plan:differential",
      [
        Alcotest.test_case "divisors 1..4096 vs divU" `Slow
          test_differential_divisors;
        Alcotest.test_case "1k multipliers vs mulI" `Slow
          test_differential_multipliers;
      ] );
    ( "plan:autotune",
      [
        Alcotest.test_case "report + gate + metrics" `Quick
          test_autotune_report;
        Alcotest.test_case "store round trip" `Quick test_store_round_trip;
        Alcotest.test_case "store certificate round trip" `Quick
          test_store_cert_round_trip;
        Alcotest.test_case "batch measurement parity" `Quick
          test_measure_batch_parity;
        Alcotest.test_case "store rejects garbage" `Quick
          test_store_rejects_garbage;
      ] );
    ( "plan:w64",
      [
        Alcotest.test_case "request parse / id" `Quick test_w64_request_parse;
        Alcotest.test_case "selection + acceptance + differential" `Quick
          test_w64_selection;
        Alcotest.test_case "certified selection (body_equiv)" `Quick
          test_w64_certified_selection;
        Alcotest.test_case "autotune gate + batch parity + pairing errors"
          `Quick test_w64_autotune;
      ] );
  ]
