(* Tests for the mini-compiler: expression lowering against the
   interpreter, the cost-model decisions, and strength reduction. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Trap = Hppa_machine.Trap
open Util
open Hppa_compiler

(* ------------------------------------------------------------------ *)
(* Expression generator: well-typed, division-safe expressions over up
   to two variables. Constant divisors are kept nonzero; variable
   divisors are avoided so lowering and interpretation cannot disagree
   about trap behaviour (explicit traps are tested separately). *)

let gen_expr : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_const = map (fun i -> Expr.Const (Int32.of_int i)) (int_range (-5000) 5000) in
  let gen_divisor =
    map
      (fun i -> Expr.Const (Int32.of_int (if i >= 0 then i + 1 else i)))
      (int_range (-500) 500)
  in
  let gen_leaf = oneof [ gen_const; oneofl [ Expr.Var "x"; Expr.Var "y" ] ] in
  fix
    (fun self depth ->
      if depth = 0 then gen_leaf
      else
        frequency
          [
            (2, gen_leaf);
            ( 2,
              map2 (fun a b -> Expr.Add (a, b)) (self (depth - 1)) (self (depth - 1)) );
            ( 2,
              map2 (fun a b -> Expr.Sub (a, b)) (self (depth - 1)) (self (depth - 1)) );
            ( 2,
              map2 (fun a b -> Expr.Mul (a, b)) (self (depth - 1)) (self (depth - 1)) );
            (1, map2 (fun a d -> Expr.Div (a, d)) (self (depth - 1)) gen_divisor);
            (1, map2 (fun a d -> Expr.Rem (a, d)) (self (depth - 1)) gen_divisor);
            (1, map (fun a -> Expr.Neg a) (self (depth - 1)));
          ])
    3

let arb_expr = QCheck.make ~print:(Format.asprintf "%a" Expr.pp) gen_expr

let run_compiled prog entry x y =
  let mach = Machine.create prog in
  match Machine.call mach entry ~args:[ x; y ] with
  | Machine.Halted -> Ok (Machine.get mach Reg.ret0)
  | Machine.Trapped t -> Error t
  | Machine.Fuel_exhausted -> Error (Trap.Break 31)

let prop_lowering_matches_interpreter =
  QCheck.Test.make ~name:"compiled code = interpreter" ~count:300
    (QCheck.triple arb_expr arb_word arb_word) (fun (e, x, y) ->
      let env v = if v = "x" then x else y in
      let prog = Lower.compile_and_link ~entry:"f" ~params:[ "x"; "y" ] e in
      match run_compiled prog "f" x y with
      | Ok got -> Word.equal got (Expr.eval ~env e)
      | Error _ -> false)

let prop_small_divisor_dispatch_mode =
  QCheck.Test.make ~name:"divI_small lowering agrees" ~count:150
    (QCheck.triple arb_expr arb_word arb_word) (fun (e, x, y) ->
      let env v = if v = "x" then x else y in
      let prog =
        Lower.compile_and_link ~entry:"f" ~small_divisor_dispatch:true
          ~params:[ "x"; "y" ] e
      in
      match run_compiled prog "f" x y with
      | Ok got -> Word.equal got (Expr.eval ~env e)
      | Error _ -> false)

let test_constant_multiplies_inline () =
  let e = Expr.Mul (Var "x", Const 10l) in
  let unit_ = Lower.compile ~entry:"f" ~params:[ "x" ] e in
  Alcotest.(check int) "inlined" 1 unit_.inline_multiplies;
  Alcotest.(check int) "no calls" 0 unit_.millicode_calls;
  let e = Expr.Mul (Var "x", Var "y") in
  let unit_ = Lower.compile ~entry:"f" ~params:[ "x"; "y" ] e in
  Alcotest.(check int) "variable multiply calls" 1 unit_.millicode_calls;
  Alcotest.(check int) "nothing inline" 0 unit_.inline_multiplies

let test_mul_zero_and_min_int () =
  List.iter
    (fun c ->
      let e = Expr.Mul (Var "x", Const c) in
      let prog = Lower.compile_and_link ~entry:"f" ~params:[ "x" ] e in
      List.iter
        (fun x ->
          match run_compiled prog "f" x 0l with
          | Ok got ->
              Alcotest.check word
                (Printf.sprintf "%ld * %ld" x c)
                (Word.mul_lo x c) got
          | Error t -> Alcotest.failf "trap: %s" (Trap.to_string t))
        [ 0l; 1l; -1l; 123l; Int32.min_int ])
    [ 0l; 1l; -1l; Int32.min_int; 625l; -625l ]

let test_division_by_zero_constant_rejected_at_runtime () =
  (* Variable divisor that happens to be zero must BREAK. *)
  let e = Expr.Div (Var "x", Var "y") in
  let prog = Lower.compile_and_link ~entry:"f" ~params:[ "x"; "y" ] e in
  match run_compiled prog "f" 5l 0l with
  | Error (Trap.Break 0) -> ()
  | Error t -> Alcotest.failf "wrong trap: %s" (Trap.to_string t)
  | Ok _ -> Alcotest.fail "no trap"

let test_trap_overflow_mode () =
  let e = Expr.Mul (Var "x", Var "y") in
  let prog =
    Lower.compile_and_link ~entry:"f" ~trap_overflow:true ~params:[ "x"; "y" ] e
  in
  (match run_compiled prog "f" 70000l 70000l with
  | Error Trap.Overflow -> ()
  | Error t -> Alcotest.failf "wrong trap %s" (Trap.to_string t)
  | Ok v -> Alcotest.failf "no trap, got %ld" v);
  match run_compiled prog "f" 3l 5l with
  | Ok v -> Alcotest.check word "in range" 15l v
  | Error t -> Alcotest.failf "spurious trap %s" (Trap.to_string t)

let test_trap_overflow_constant_chain () =
  let e = Expr.Mul (Var "x", Const 15l) in
  let prog =
    Lower.compile_and_link ~entry:"f" ~trap_overflow:true ~params:[ "x" ] e
  in
  (match run_compiled prog "f" 0x10000000l 0l with
  | Error Trap.Overflow -> ()
  | Error t -> Alcotest.failf "wrong trap %s" (Trap.to_string t)
  | Ok v -> Alcotest.failf "no trap, got %ld" v);
  match run_compiled prog "f" 1000l 0l with
  | Ok v -> Alcotest.check word "in range" 15000l v
  | Error t -> Alcotest.failf "spurious trap %s" (Trap.to_string t)

let test_too_complex_rejected () =
  (* Deeply right-nested multiplies exhaust the 12 temporaries. *)
  let rec deep n = if n = 0 then Expr.Var "x" else Expr.Add (deep (n - 1), Expr.Var "x") in
  (* Left-leaning additions reuse registers; build a pathological case by
     keeping many live partial results instead. *)
  let rec wide n = if n = 0 then Expr.Var "x" else Expr.Add (wide (n - 1), wide (n - 1)) in
  ignore (deep 40);
  match Lower.compile ~entry:"f" ~params:[ "x" ] (wide 6) with
  | exception Lower.Unsupported _ -> ()
  | _ ->
      (* wide 6 keeps at most ~6 live temps; it may well compile. The
         truly pathological width must fail. *)
      (match Lower.compile ~entry:"f" ~params:[ "x" ] (wide 14) with
      | exception Lower.Unsupported _ -> ()
      | _ -> Alcotest.fail "register exhaustion not detected")

(* ------------------------------------------------------------------ *)
(* Loop compilation                                                    *)

let run_kernel prog entry args =
  let mach = Machine.create prog in
  match Machine.call_cycles mach entry ~args with
  | Machine.Halted, c -> Ok (Machine.get mach Reg.ret0, c)
  | Machine.Trapped t, _ -> Error (Trap.to_string t)
  | Machine.Fuel_exhausted, _ -> Error "fuel"

let paper_loop =
  Loop_ir.
    {
      counter = "i";
      start = 0l;
      stop = 10l;
      step = 1l;
      body = [ Assign ("j", Expr.Add (Var "j", Expr.Mul (Var "i", Const 15l))) ];
    }

let test_loop_compiles_and_runs () =
  let prog =
    Lower_loop.compile_and_link ~entry:"k" ~inputs:[] ~result:"j" paper_loop
  in
  match run_kernel prog "k" [] with
  | Ok (v, _) -> Alcotest.check word "j after the paper's loop" 675l v
  | Error e -> Alcotest.fail e

let test_loop_with_inputs () =
  (* sum of (n/i) for i in 1..10: divisions survive any optimizer. *)
  let l =
    Loop_ir.
      {
        counter = "i";
        start = 1l;
        stop = 11l;
        step = 1l;
        body = [ Assign ("s", Expr.Add (Var "s", Expr.Div (Var "n", Var "i"))) ];
      }
  in
  let prog = Lower_loop.compile_and_link ~entry:"k" ~inputs:[ "n" ] ~result:"s" l in
  let expect =
    List.assoc "s" (Loop_ir.eval l ~init:[ ("n", 5040l); ("s", 0l) ])
  in
  match run_kernel prog "k" [ 5040l ] with
  | Ok (v, _) -> Alcotest.check word "harmonic-ish sum" expect v
  | Error e -> Alcotest.fail e

let measure_reduction l inputs args =
  let before = Lower_loop.compile_and_link ~entry:"k" ~inputs ~result:"j" l in
  let reduced = Strength.reduce l in
  let after_unit = Lower_loop.compile_reduced ~entry:"k" ~inputs ~result:"j" reduced in
  let after =
    Program.resolve_exn (Program.concat [ after_unit.source; Hppa.Millicode.source ])
  in
  match (run_kernel before "k" args, run_kernel after "k" args) with
  | Ok (v1, c1), Ok (v2, c2) ->
      Alcotest.check word "same result" v1 v2;
      (c1, c2)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_strength_reduction_saves_cycles_on_machine () =
  (* The payoff measured in simulated cycles. A *variable* multiplier goes
     through the ~16-20-cycle millicode each iteration, so reduction wins
     big — the case the paper's FORTRAN discussion worries about. *)
  let l =
    Loop_ir.
      {
        counter = "i";
        start = 0l;
        stop = 1000l;
        step = 1l;
        body = [ Assign ("j", Expr.Add (Var "j", Expr.Mul (Var "i", Var "n"))) ];
      }
  in
  let c1, c2 = measure_reduction l [ "n" ] [ 15l ] in
  if not (c2 * 2 < c1) then
    Alcotest.failf "variable multiplier: expected >2x, got %d -> %d" c1 c2;
  (* A *constant* multiplier is already a two-instruction chain on this
     architecture, so reduction roughly breaks even — an architectural
     point the paper's section 5 makes possible. *)
  let c1, c2 = measure_reduction { paper_loop with stop = 1000l } [] [] in
  if c2 > c1 * 3 / 2 then
    Alcotest.failf "constant multiplier: reduction much slower (%d -> %d)" c1 c2

(* ------------------------------------------------------------------ *)
(* Strength reduction                                                  *)

let gen_loop : Loop_ir.t QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_body_expr =
    frequency
      [
        ( 3,
          map
            (fun c -> Expr.Mul (Var "i", Const (Int32.of_int c)))
            (int_range (-100) 100) );
        ( 2,
          map
            (fun c -> Expr.Add (Var "acc", Expr.Mul (Var "i", Const (Int32.of_int c))))
            (int_range (-100) 100) );
        (1, map (fun c -> Expr.Mul (Const (Int32.of_int c), Var "i")) (int_range 1 50));
        (1, return (Expr.Mul (Var "i", Var "acc")));
        (1, map (fun c -> Expr.Add (Var "i", Const (Int32.of_int c))) (int_range 0 9));
      ]
  in
  int_range (-50) 50 >>= fun start ->
  int_range 0 40 >>= fun trip ->
  int_range 1 3 >>= fun step ->
  list_size (int_range 1 3) gen_body_expr >>= fun body ->
  return
    Loop_ir.
      {
        counter = "i";
        start = Int32.of_int start;
        stop = Int32.of_int (start + (trip * step));
        step = Int32.of_int step;
        body = List.map (fun e -> Loop_ir.Assign ("acc", e)) body;
      }

let arb_loop =
  QCheck.make ~print:(fun l -> Format.asprintf "%a" Loop_ir.pp l) gen_loop

let prop_loop_matches_interpreter =
  QCheck.Test.make ~name:"compiled loops = interpreter" ~count:100 arb_loop
    (fun l ->
      QCheck.assume (Loop_ir.trip_count l <= 60);
      let expect =
        List.assoc "acc" (Loop_ir.eval l ~init:[ ("acc", 3l); ("n", 7l) ])
      in
      let prog =
        Lower_loop.compile_and_link ~entry:"k" ~inputs:[ "acc"; "n" ] ~result:"acc" l
      in
      match run_kernel prog "k" [ 3l; 7l ] with
      | Ok (v, _) -> Word.equal v expect
      | Error _ -> false)

let prop_reduced_loop_matches_interpreter =
  QCheck.Test.make ~name:"compiled reduced loops = interpreter" ~count:100
    arb_loop (fun l ->
      QCheck.assume (Loop_ir.trip_count l <= 60);
      let reduced = Strength.reduce l in
      let expect =
        List.assoc "acc"
          (Strength.eval_reduced reduced ~init:[ ("acc", 3l); ("n", 7l) ])
      in
      let unit_ =
        Lower_loop.compile_reduced ~entry:"k" ~inputs:[ "acc"; "n" ] ~result:"acc"
          reduced
      in
      let prog =
        Program.resolve_exn
          (Program.concat [ unit_.source; Hppa.Millicode.source ])
      in
      match run_kernel prog "k" [ 3l; 7l ] with
      | Ok (v, _) -> Word.equal v expect
      | Error _ -> false)


let prop_strength_preserves_semantics =
  QCheck.Test.make ~name:"strength reduction preserves loop semantics"
    ~count:500 arb_loop (fun l ->
      let r = Strength.reduce l in
      Loop_ir.eval l ~init:[ ("acc", 1l) ]
      = Strength.eval_reduced r ~init:[ ("acc", 1l) ])

let prop_strength_removes_counter_multiplies =
  QCheck.Test.make ~name:"no counter-times-constant multiplies survive"
    ~count:300 arb_loop (fun l ->
      let r = Strength.reduce l in
      let survives =
        List.exists
          (fun (Loop_ir.Assign (_, e)) ->
            let rec bad : Expr.t -> bool = function
              | Mul (Var "i", Const _) | Mul (Const _, Var "i") -> true
              | Var _ | Const _ | Const64 _ -> false
              | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Rem (a, b) ->
                  bad a || bad b
              | Neg a -> bad a
            in
            bad e)
          r.loop.body
      in
      not survives)

let test_paper_example () =
  (* for (i = 0; i < 10; i++) j += i * 15  ==>  j = 675 *)
  let l =
    Loop_ir.
      {
        counter = "i";
        start = 0l;
        stop = 10l;
        step = 1l;
        body = [ Assign ("j", Expr.Add (Var "j", Expr.Mul (Var "i", Const 15l))) ];
      }
  in
  let r = Strength.reduce l in
  Alcotest.(check int) "one multiply removed" 1 r.multiplies_removed;
  let final = Strength.eval_reduced r ~init:[ ("j", 0l) ] in
  Alcotest.check word "j" 675l (List.assoc "j" final);
  (* Dynamic multiply count drops to zero. *)
  let m, _ = Loop_ir.dynamic_mul_div r.loop in
  Alcotest.(check int) "no dynamic multiplies" 0 m

let test_cheap_threshold_spares_cheap_multipliers () =
  (* With [cheap_threshold], the selector keeps one-instruction chains
     (here i*2) inline and only hoists the expensive multiplier. *)
  let l =
    Loop_ir.
      {
        counter = "i";
        start = 0l;
        stop = 10l;
        step = 1l;
        body =
          [
            Assign ("j", Expr.Add (Var "j", Expr.Mul (Var "i", Const 2l)));
            Assign ("k", Expr.Add (Var "k", Expr.Mul (Var "i", Const 625l)));
          ];
      }
  in
  let all = Strength.reduce l in
  Alcotest.(check int) "default removes both" 2 all.multiplies_removed;
  let r = Strength.reduce ~cheap_threshold:1 l in
  Alcotest.(check int) "only the expensive multiply removed" 1
    r.multiplies_removed;
  let init = [ ("j", 0l); ("k", 0l) ] in
  let expect = Loop_ir.eval l ~init in
  let got = Strength.eval_reduced r ~init in
  Alcotest.check word "j" (List.assoc "j" expect) (List.assoc "j" got);
  Alcotest.check word "k" (List.assoc "k" expect) (List.assoc "k" got)

let test_divisions_not_removed () =
  (* Section 2: "there is rarely an opportunity for an optimizer to remove
     a division". *)
  let l =
    Loop_ir.
      {
        counter = "i";
        start = 1l;
        stop = 11l;
        step = 1l;
        body = [ Assign ("j", Expr.Add (Var "j", Expr.Div (Const 5040l, Var "i"))) ];
      }
  in
  let r = Strength.reduce l in
  let _, d_before = Loop_ir.dynamic_mul_div l in
  let _, d_after = Loop_ir.dynamic_mul_div r.loop in
  Alcotest.(check int) "divisions unchanged" d_before d_after;
  Alcotest.(check bool) "some divisions present" true (d_before > 0)

let test_loop_validation () =
  let bad =
    Loop_ir.
      { counter = "i"; start = 0l; stop = 5l; step = 0l; body = [] }
  in
  match Loop_ir.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero step accepted"

let suite =
  [
    ( "compiler:unit",
      [
        Alcotest.test_case "constant multiplies inline" `Quick test_constant_multiplies_inline;
        Alcotest.test_case "mul zero / min_int" `Quick test_mul_zero_and_min_int;
        Alcotest.test_case "div by zero traps" `Quick test_division_by_zero_constant_rejected_at_runtime;
        Alcotest.test_case "trap_overflow mode" `Quick test_trap_overflow_mode;
        Alcotest.test_case "trap_overflow chains" `Quick test_trap_overflow_constant_chain;
        Alcotest.test_case "register exhaustion" `Quick test_too_complex_rejected;
        Alcotest.test_case "paper loop example" `Quick test_paper_example;
        Alcotest.test_case "divisions not removed" `Quick test_divisions_not_removed;
        Alcotest.test_case "cheap_threshold spares cheap multipliers" `Quick
          test_cheap_threshold_spares_cheap_multipliers;
        Alcotest.test_case "loop validation" `Quick test_loop_validation;
        Alcotest.test_case "loop compiles and runs" `Quick test_loop_compiles_and_runs;
        Alcotest.test_case "loop with inputs" `Quick test_loop_with_inputs;
        Alcotest.test_case "strength reduction saves cycles" `Quick
          test_strength_reduction_saves_cycles_on_machine;
      ] );
    qsuite "compiler:props"
      [
        prop_lowering_matches_interpreter;
        prop_small_divisor_dispatch_mode;
        prop_strength_preserves_semantics;
        prop_strength_removes_counter_multiplies;
        prop_loop_matches_interpreter;
        prop_reduced_loop_matches_interpreter;
      ];
  ]
