(* High-level interface to the double-word (W64) millicode family. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Trap = Hppa_machine.Trap

type op = Mul | Div | Rem

let entry ~signed = function
  | Mul -> if signed then "mulI128" else "mulU128"
  | Div -> if signed then "divI64w" else "divU64w"
  | Rem -> if signed then "remI64w" else "remU64w"

let entries = Hppa.Mul_w64.entries @ Hppa.Div_w64.entries

let op_of_entry = function
  | "mulU128" | "mulI128" -> Mul
  | "divU64w" | "divI64w" -> Div
  | "remU64w" | "remI64w" -> Rem
  | e -> invalid_arg ("Hppa_w64.op_of_entry: " ^ e)

let signed_entry = function
  | "mulI128" | "divI64w" | "remI64w" -> true
  | "mulU128" | "divU64w" | "remU64w" -> false
  | e -> invalid_arg ("Hppa_w64.signed_entry: " ^ e)

(* -- register pairs ------------------------------------------------- *)

let hi32 x = Word.of_int64 (Int64.shift_right_logical x 32)
let lo32 x = Word.of_int64 x

let join hi lo =
  Int64.logor
    (Int64.shift_left (Word.to_int64_u hi) 32)
    (Word.to_int64_u lo)

let operands x y = [ hi32 x; lo32 x; hi32 y; lo32 y ]

(* The 128/64 divide takes a third operand dword: the 128-bit dividend
   rides in both arg pairs and the divisor in (ret0:ret1), which is
   where Machine.call puts a fifth and sixth argument word. *)
let divl_entry = "divU128by64"
let operands_divl ~xhi ~xlo y = operands xhi xlo @ [ hi32 y; lo32 y ]

(* -- reference model and execution ---------------------------------- *)

(* Every entry leaves two architectural result dwords: [ret] in
   (ret0:ret1) — the product's high dword, the quotient, or the
   remainder — and [arg] in (arg0:arg1) — the product's low dword for
   the multiplies, the remainder for the divide/rem entries. *)
type outcome =
  | Value of { ret : int64; arg : int64 }
  | Trap of Trap.t
  | Fuel

let outcome_equal a b =
  match (a, b) with
  | Value a, Value b -> Int64.equal a.ret b.ret && Int64.equal a.arg b.arg
  | Trap a, Trap b -> Trap.equal a b
  | Fuel, Fuel -> true
  | _ -> false

let pp_outcome ppf = function
  | Value { ret; arg } -> Format.fprintf ppf "0x%016Lx/0x%016Lx" ret arg
  | Trap t -> Format.fprintf ppf "trap:%s" (Trap.to_string t)
  | Fuel -> Format.pp_print_string ppf "fuel-exhausted"

let div_trap x y =
  if Int64.equal y 0L then Trap (Trap.Break Trap.divide_by_zero_code)
  else if Int64.equal x Int64.min_int && Int64.equal y (-1L) then
    Trap (Trap.Break Hppa.Div_ext.overflow_break_code)
  else invalid_arg "Hppa_w64.reference: reference refused a dividable pair"

let reference name x y =
  match name with
  | "mulU128" ->
      let hi, lo = Hppa.Mul_w64.reference_unsigned x y in
      Value { ret = hi; arg = lo }
  | "mulI128" ->
      let hi, lo = Hppa.Mul_w64.reference_signed x y in
      Value { ret = hi; arg = lo }
  | "divU64w" | "remU64w" -> (
      match Hppa.Div_w64.reference_unsigned x y with
      | Some (q, r) ->
          if String.equal name "divU64w" then Value { ret = q; arg = r }
          else Value { ret = r; arg = r }
      | None -> div_trap x y)
  | "divI64w" | "remI64w" -> (
      match Hppa.Div_w64.reference_signed x y with
      | Some (q, r) ->
          if String.equal name "divI64w" then Value { ret = q; arg = r }
          else Value { ret = r; arg = r }
      | None -> div_trap x y)
  | e -> invalid_arg ("Hppa_w64.reference: " ^ e)

let reference_divl ~xhi ~xlo y =
  match Hppa.Div_u128.reference { Hppa_word.U128.hi = xhi; lo = xlo } y with
  | Some (q, r) -> Value { ret = q; arg = r }
  | None ->
      if Int64.equal y 0L then Trap (Trap.Break Trap.divide_by_zero_code)
      else Trap (Trap.Break Hppa.Div_ext.overflow_break_code)

let read_outcome ~get = function
  | Hppa_machine.Cpu.Halted ->
      Value
        {
          ret = join (get Reg.ret0) (get Reg.ret1);
          arg = join (get Reg.arg0) (get Reg.arg1);
        }
  | Hppa_machine.Cpu.Trapped t -> Trap t
  | Hppa_machine.Cpu.Fuel_exhausted -> Fuel

let call ?fuel m name ~x ~y =
  read_outcome ~get:(Machine.get m) (Machine.call ?fuel m name ~args:(operands x y))

let call_cycles ?fuel m name ~x ~y =
  let o, c = Machine.call_cycles ?fuel m name ~args:(operands x y) in
  (read_outcome ~get:(Machine.get m) o, c)

let call_divl ?fuel m ~xhi ~xlo y =
  read_outcome ~get:(Machine.get m)
    (Machine.call ?fuel m divl_entry ~args:(operands_divl ~xhi ~xlo y))

let call_divl_cycles ?fuel m ~xhi ~xlo y =
  let o, c =
    Machine.call_cycles ?fuel m divl_entry ~args:(operands_divl ~xhi ~xlo y)
  in
  (read_outcome ~get:(Machine.get m) o, c)

let batch_outcome b ~lane =
  read_outcome
    ~get:(Machine.Batch.get_reg b ~lane)
    (Machine.Batch.outcome b ~lane)
