module Word = Hppa_word.Word

type step =
  | Add of int * int
  | Shadd of int * int * int
  | Sub of int * int
  | Shl of int * int

type t = step list

let length = List.length

(* Generic evaluator shared by the int model and the 32-bit model. *)
let fold ~zero ~one ~add ~sub ~shl steps =
  let exception Bad of string in
  try
    let n = List.length steps + 2 in
    let a = Array.make n zero in
    a.(1) <- one;
    let elt i j =
      if j < 0 || j >= i then raise (Bad (Printf.sprintf "step %d references element %d" i j))
      else a.(j)
    in
    let check_shift i m lo hi =
      if m < lo || m > hi then
        raise (Bad (Printf.sprintf "step %d: shift amount %d not in %d..%d" i m lo hi))
    in
    List.iteri
      (fun idx step ->
        let i = idx + 2 in
        a.(i) <-
          (match step with
          | Add (j, k) -> add (elt i j) (elt i k)
          | Shadd (m, j, k) ->
              check_shift i m 1 3;
              add (shl (elt i j) m) (elt i k)
          | Sub (j, k) -> sub (elt i j) (elt i k)
          | Shl (j, m) ->
              check_shift i m 1 31;
              shl (elt i j) m))
      steps;
    Ok a
  with Bad msg -> Error msg

let values steps =
  let add x y = x + y and sub x y = x - y in
  let shl x m =
    let r = x lsl m in
    (* Reject chains that escape the exact-integer range used for search. *)
    if m >= 62 || Int.abs x > max_int asr (m + 1) then
      invalid_arg "Chain.values: overflow"
    else r
  in
  try fold ~zero:0 ~one:1 ~add ~sub ~shl steps
  with Invalid_argument msg -> Error msg

let values_exn steps =
  match values steps with
  | Ok a -> a
  | Error msg -> invalid_arg ("Chain.values_exn: " ^ msg)

let target steps =
  Result.map (fun a -> a.(Array.length a - 1)) (values steps)

let target_exn steps =
  match target steps with
  | Ok n -> n
  | Error msg -> invalid_arg ("Chain.target_exn: " ^ msg)

let is_monotonic steps =
  match values steps with
  | Error _ -> false
  | Ok a ->
      let ok = ref true in
      for i = 2 to Array.length a - 1 do
        if a.(i) <= a.(i - 1) then ok := false
      done;
      !ok

let is_overflow_safe steps =
  is_monotonic steps
  && List.for_all
       (function Add _ | Shadd _ -> true | Sub _ | Shl _ -> false)
       steps

let eval_word steps s =
  match
    fold ~zero:Word.zero ~one:s ~add:Word.add ~sub:Word.sub ~shl:Word.shl steps
  with
  | Ok a -> a.(Array.length a - 1)
  | Error msg -> invalid_arg ("Chain.eval_word: " ^ msg)

let pp ppf steps =
  let elt ppf j = Format.fprintf ppf "a%d" j in
  let pp_step i ppf = function
    | Add (j, k) -> Format.fprintf ppf "a%d = %a + %a" i elt j elt k
    | Shadd (m, j, k) -> Format.fprintf ppf "a%d = %d*%a + %a" i (1 lsl m) elt j elt k
    | Sub (j, k) -> Format.fprintf ppf "a%d = %a - %a" i elt j elt k
    | Shl (j, m) -> Format.fprintf ppf "a%d = %a << %d" i elt j m
  in
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun idx step ->
      if idx > 0 then Format.pp_print_cut ppf ();
      pp_step (idx + 2) ppf step)
    steps;
  Format.pp_close_box ppf ()
