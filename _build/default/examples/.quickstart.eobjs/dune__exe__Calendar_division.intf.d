examples/calendar_division.mli:
