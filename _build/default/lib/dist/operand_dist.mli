(** Operand distributions for multiply/divide workloads.

    The paper's averages are expectations over measured operand statistics
    (§3 "Operand Frequency Analysis", §6 "An Observation", Figure 5). HP's
    traces are proprietary, so this module provides the synthetic models
    the text describes:

    - {!log_uniform}: magnitudes log-uniformly distributed — the paper's
      "pessimistic guess" used to analyse Figures 2 and 3;
    - {!figure5_pair}: operand pairs whose smaller magnitude falls in the
      Figure 5 buckets with the stated 60/20/10/10 weights, both operands
      positive ~90 % of the time, and the product constrained to be
      representable (the paper explicitly discounts overflowing
      multiplies);
    - {!small_divisor}: divisors for the §7 "divisors less than twenty"
      studies. *)

val log_uniform : ?bits:int -> Prng.t -> Hppa_word.Word.t
(** Non-negative; bit-length uniform in [0 .. bits] (default 31), then
    uniform among values of that length. *)

type bucket = { lo : int; hi : int; weight : float }

val figure5_buckets : bucket list
(** [0-15 @ 60%; 16-255 @ 20%; 256-4095 @ 10%; 4096-46340 @ 10%] — the
    paper's Figure 5 rows and the operand-distribution column. *)

val bucket_of_pair : Hppa_word.Word.t -> Hppa_word.Word.t -> bucket option
(** The Figure 5 row that [min (|x|, |y|)] falls into. *)

val figure5_pair :
  ?positive_fraction:float -> Prng.t -> Hppa_word.Word.t * Hppa_word.Word.t
(** A multiply operand pair per the Figure 5 model. [positive_fraction]
    (default 0.9) is the probability that both operands are positive;
    otherwise signs are random. The signed product always fits 32 bits. *)

val small_divisor : Prng.t -> Hppa_word.Word.t
(** Uniform in [1 .. 19]. *)
