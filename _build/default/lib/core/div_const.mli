(** Code generation for division by compile-time constants (§7).

    Strategy selection follows the paper:

    - powers of two: one [EXTRU] unsigned; three instructions signed for
      small powers, four for large ones (§7 opening);
    - even divisors: divide out the largest power of two first, then the
      odd factor (§7 "we also restricted ourselves to odd y");
    - odd divisors: the derived reciprocal method — compute
      [(x+1)*a + (r-1)] in double precision with a shift-and-add chain for
      the 32-bit constant [a] and take the high bits (Figure 7); for y = 3
      the rule program finds exactly the paper's doubling chain
      [5 * 17 * 257 * 65537];
    - divisors whose derived [a] does not fit 32 bits (the paper's [y = 11]
      caveat) or whose chain would overflow two-word precision: fall back
      to the general millicode divide ([b divU] tail call), unless the
      signed-only range ([x <= 2^31]) shrinks [a] enough — it usually does.

    Signed routines negate a negative dividend, run the unsigned sequence,
    and negate the quotient back (two extra executed instructions, as in
    the paper's "signed division by 3 takes 17, or 19 when negative").

    Generated routines take the dividend in [arg0] and return the quotient
    in [ret0]. Fallback plans branch to ["divU"], so they must be linked
    with {!Div_gen.source} (as {!Millicode.source} does). *)

type strategy =
  | Trivial  (** y = ±1, or the signed y = min_int test *)
  | Power_of_two of int
  | Reciprocal of Div_magic.t * Chain.t
      (** the derived method; the chain multiplies by [a] *)
  | Even_split of int * strategy  (** shift count and odd-part strategy *)
  | General_fallback  (** tail call to the millicode [divU]/[divI] *)

type plan = {
  divisor : int32;
  signed : bool;
  entry : string;
  source : Program.source;
  static_instructions : int;
  strategy : strategy;
}

val plan_unsigned : ?entry:string -> int32 -> plan
(** Unsigned division by [y >= 1], valid over the full 32-bit dividend
    range. Default entry ["divu_c<y>"]. *)

val plan_signed : ?entry:string -> int32 -> plan
(** Signed truncating division by [y <> 0]. Default entry ["divi_c<y>"]
    (negative divisors spell ["m<|y|>"]). *)

val plan_rem_unsigned : ?entry:string -> int32 -> plan
(** Remainder by a constant: [x mod y] for unsigned [x]. Power-of-two
    divisors are a single field extract; otherwise the quotient sequence is
    followed by an inline multiply-back chain and a subtract
    ([x - (x/y)*y]). Default entry ["remu_c<y>"]. *)

val plan_rem_signed : ?entry:string -> int32 -> plan
(** C-semantics signed remainder (sign follows the dividend). Default
    entry ["remi_c<y>"]. *)

val needs_millicode : plan -> bool
(** True when the plan tail-calls the general divide. *)
