(* hppa-chainc: search multiply-by-constant chains and emit code.

   Example:
     hppa-chainc 625
     hppa-chainc --overflow --code 31
     hppa-chainc --exhaustive 59 *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine

(* --width 64: the same constant through the width-polymorphic pipeline.
   The plan table shows the W64 arbitration (inline register-pair chain
   vs the mulI128 call-through); --code lowers [x * n] at Expr.W64 with
   the operand in (arg0:arg1) and the wrapped 64-bit product returned in
   (ret0:ret1); --verify sweeps the compiled routine against
   [Int64.mul]. *)
let show64 n overflow exhaustive code verify no_engine plan certified =
  let n64 = Int64.of_int n in
  if plan || certified then begin
    let req = Hppa_plan.Strategy.w64_mul_const ~trap_overflow:overflow n64 in
    match Hppa_plan.Selector.choose ~require_certified:certified req with
    | Ok choice -> Format.printf "%a@." Hppa_plan.Selector.pp_choice choice
    | Error msg -> Format.printf "plan: %s@." msg
  end;
  let chain =
    if exhaustive then Hppa.Chain_search.find ~max_len:6 (abs n)
    else
      Hppa.Chain_rules.find
        ~mode:(if overflow then Hppa.Chain_rules.Monotonic else Hppa.Chain_rules.Fast)
        (abs n)
  in
  (match chain with
  | None -> Format.printf "%d: no chain found within the search bounds@." n
  | Some c ->
      Format.printf "@[<v>chain for %d (%d step%s, as dword pairs):@,%a@]@."
        (abs n) (Hppa.Chain.length c)
        (if Hppa.Chain.length c = 1 then "" else "s")
        Hppa.Chain.pp c);
  if code || verify then begin
    let compiled =
      Hppa_compiler.Lower.compile ~width:Hppa_compiler.Expr.W64
        ~params:[ "x" ]
        (Hppa_compiler.Expr.Mul
           (Hppa_compiler.Expr.Var "x", Hppa_compiler.Expr.Const64 n64))
    in
    if code then
      Format.printf "@,%a@.(%d inline multiply%s, %d millicode call%s)@."
        Program.pp_source compiled.Hppa_compiler.Lower.source
        compiled.Hppa_compiler.Lower.inline_multiplies
        (if compiled.Hppa_compiler.Lower.inline_multiplies = 1 then ""
         else "s")
        compiled.Hppa_compiler.Lower.millicode_calls
        (if compiled.Hppa_compiler.Lower.millicode_calls = 1 then "" else "s");
    if verify then begin
      let prog =
        Hppa_compiler.Lower.compile_and_link ~width:Hppa_compiler.Expr.W64
          ~params:[ "x" ]
          (Hppa_compiler.Expr.Mul
             (Hppa_compiler.Expr.Var "x", Hppa_compiler.Expr.Const64 n64))
      in
      let config = { Machine.Config.default with engine = not no_engine } in
      let mach = Machine.create ~config prog in
      let bad = ref 0 in
      for x = -1000 to 1000 do
        let xw = Int64.of_int x in
        Machine.reset mach;
        match
          Machine.call mach compiled.Hppa_compiler.Lower.entry
            ~args:[ Hppa_w64.hi32 xw; Hppa_w64.lo32 xw ]
        with
        | Machine.Halted ->
            let got =
              Int64.logor
                (Int64.shift_left
                   (Int64.of_int32 (Machine.get mach Reg.ret0))
                   32)
                (Int64.logand
                   (Int64.of_int32 (Machine.get mach Reg.ret1))
                   0xFFFFFFFFL)
            in
            if not (Int64.equal got (Int64.mul xw n64)) then incr bad
        | Machine.Trapped _ | Machine.Fuel_exhausted -> incr bad
      done;
      Format.printf
        "simulation over [-1000, 1000] at width 64: %s (used_engine = %b)@."
        (if !bad = 0 then "ok" else Printf.sprintf "%d failures" !bad)
        (Machine.used_engine mach)
    end
  end;
  0

let show n width overflow exhaustive code verify no_engine plan certified =
  if width = 64 then
    show64 n overflow exhaustive code verify no_engine plan certified
  else if width <> 32 then begin
    Format.eprintf "hppa-chainc: --width must be 32 or 64@.";
    2
  end
  else begin
  let n32 = Int32.of_int n in
  if plan || certified then begin
    (* The kernel-strategy view: every applicable strategy with its cost
       or rejection reason, and which one the selector picks. *)
    let req = Hppa_plan.Strategy.mul_const ~trap_overflow:overflow n32 in
    match Hppa_plan.Selector.choose ~require_certified:certified req with
    | Ok choice ->
        Format.printf "%a@." Hppa_plan.Selector.pp_choice choice
    | Error msg -> Format.printf "plan: %s@." msg
  end;
  let chain =
    if exhaustive then Hppa.Chain_search.find ~max_len:6 (abs n)
    else
      Hppa.Chain_rules.find
        ~mode:(if overflow then Hppa.Chain_rules.Monotonic else Hppa.Chain_rules.Fast)
        (abs n)
  in
  (match chain with
  | None -> Format.printf "%d: no chain found within the search bounds@." n
  | Some c ->
      Format.printf "@[<v>chain for %d (%d step%s%s):@,%a@]@." (abs n)
        (Hppa.Chain.length c)
        (if Hppa.Chain.length c = 1 then "" else "s")
        (if Hppa.Chain.is_overflow_safe c then ", overflow-safe" else "")
        Hppa.Chain.pp c);
  if code || verify then begin
    let plan = Hppa.Mul_const.plan ~overflow n32 in
    if code then
      Format.printf "@,%a@.(%d instruction%s, %d temporar%s)@."
        Program.pp_source plan.source plan.static_instructions
        (if plan.static_instructions = 1 then "" else "s")
        plan.temporaries
        (if plan.temporaries = 1 then "y" else "ies");
    if verify then begin
      let prog = Program.resolve_exn plan.source in
      (* Static pass: lint the routine and certify the abstract result
         for every input at once; the simulator sweep below then spot
         checks the same claim dynamically. *)
      let findings =
        Hppa_verify.Driver.check ~entries:[ plan.entry ] prog
      in
      if findings <> [] then
        Format.printf "@[<v>static lint:@,%a@]@."
          Hppa_verify.Findings.pp_list findings
      else Format.printf "static lint: clean@.";
      Format.printf "static certification: %a@." Hppa_verify.Linear.pp_verdict
        (Hppa_verify.Driver.certify prog ~entry:plan.entry ~multiplier:n32);
      let config =
        { Machine.Config.default with engine = not no_engine }
      in
      let mach = Machine.create ~config prog in
      let bad = ref 0 in
      for x = -1000 to 1000 do
        let xw = Word.of_int x in
        match Machine.call mach plan.entry ~args:[ xw ] with
        | Machine.Halted ->
            if not (Word.equal (Machine.get mach Reg.ret0) (Word.mul_lo xw n32))
            then incr bad
        | Machine.Trapped _ when overflow && Word.mul_overflows_s xw n32 -> ()
        | Machine.Trapped _ | Machine.Fuel_exhausted -> incr bad
      done;
      Format.printf "simulation over [-1000, 1000]: %s (used_engine = %b)@."
        (if !bad = 0 then "ok" else Printf.sprintf "%d failures" !bad)
        (Machine.used_engine mach)
    end
  end;
  0
  end

open Cmdliner

let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N")

let width =
  Arg.(value & opt int 32
       & info [ "w"; "width" ] ~docv:"BITS"
           ~doc:"Compilation width: 32 (default) or 64. At 64 the plan \
                 table arbitrates between an inline register-pair chain \
                 and the mulI128 millicode call-through; $(b,--code) and \
                 $(b,--verify) lower x * N through the W64 pipeline.")

let overflow =
  Arg.(value & flag & info [ "o"; "overflow" ]
         ~doc:"Use monotonic, overflow-detecting chains (section 5, Overflow).")

let exhaustive =
  Arg.(value & flag & info [ "x"; "exhaustive" ]
         ~doc:"Exhaustive minimal-chain search (depth <= 6) instead of the rule program.")

let code = Arg.(value & flag & info [ "c"; "code" ] ~doc:"Print the generated routine.")
let verify =
  Arg.(value & flag & info [ "v"; "verify" ]
         ~doc:"Verify the routine: static lint and linear-form certification \
               (every input at once), then a simulator sweep.")

let no_engine =
  Arg.(value & flag & info [ "no-engine" ]
         ~doc:"Run the verification sweep on the reference interpreter \
               instead of the threaded-code engine.")

let plan =
  Arg.(value & flag & info [ "p"; "plan" ]
         ~doc:"Print the kernel-strategy selection table for multiplying \
               by $(docv): the chosen strategy, every candidate's cost and \
               why rejected ones lost.")

let certified =
  Arg.(value & flag & info [ "certified" ]
         ~doc:"Like $(b,--plan), but only certified strategies may win: \
               the table shows the winner's certificate digest and a \
               'not certified' rejection for candidates whose emission \
               the certifier cannot prove.")

let cmd =
  Cmd.v
    (Cmd.info "hppa-chainc"
       ~doc:"Search shift-and-add chains for multiplication by constants")
    Term.(const show $ n $ width $ overflow $ exhaustive $ code $ verify
          $ no_engine $ plan $ certified)

let () = exit (Cmd.eval' cmd)
