(** Machine traps.

    The architecture of the paper takes traps for signed overflow (the [,o]
    instruction completers), for the [BREAK] instruction (used by the
    millicode for division by zero, mirroring the HP convention), and for
    machine-level errors that a real PSW would turn into interruptions. *)

type t =
  | Overflow  (** signed overflow from a trapping arithmetic instruction *)
  | Break of int  (** [BREAK code]; code 0 is the divide-by-zero break *)
  | Unaligned of int32  (** misaligned word access *)
  | Bad_address of int32  (** load/store outside memory *)
  | Bad_pc of int  (** control transfer outside the program image *)

val divide_by_zero_code : int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val name : t -> string
(** Stable short identifier ([overflow], [divide_by_zero], [break],
    [unaligned], [bad_address], [bad_pc]) used as the [trap] label on the
    [hppa_sim_traps_total] observability counter. *)
