(* Request metrics on the shared observability registry (Hppa_obs).

   One Metrics.t owns three always-present instruments — the request and
   error counters and the aggregate latency histogram — plus one latency
   histogram per verb, created lazily the first time that verb is
   recorded. All of them live in the registry, so the METRICS scrape,
   the STATS payload and the shutdown dump read the same cells. *)

module Obs = Hppa_obs.Obs

type t = {
  registry : Obs.Registry.t;
  requests : Obs.Counter.t;
  errors : Obs.Counter.t;
  latency : Obs.Histogram.t;
  verb_lock : Mutex.t;
  verbs : (string, Obs.Histogram.t) Hashtbl.t;
}

let create ?registry () =
  let registry =
    match registry with Some r -> r | None -> Obs.Registry.create ()
  in
  {
    registry;
    requests =
      Obs.Registry.counter registry ~help:"Requests handled"
        "hppa_serve_requests_total";
    errors =
      Obs.Registry.counter registry ~help:"Requests answered with ERR"
        "hppa_serve_errors_total";
    latency =
      Obs.Registry.histogram registry
        ~help:"Request handling latency (log2 us buckets)"
        "hppa_serve_latency_us";
    verb_lock = Mutex.create ();
    verbs = Hashtbl.create 8;
  }

let registry t = t.registry

let verb_histogram t verb =
  Mutex.lock t.verb_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.verb_lock)
    (fun () ->
      match Hashtbl.find_opt t.verbs verb with
      | Some h -> h
      | None ->
          let h =
            Obs.Registry.histogram t.registry
              ~help:"Request handling latency by verb (log2 us buckets)"
              ~labels:[ ("verb", verb) ] "hppa_serve_verb_latency_us"
          in
          Hashtbl.add t.verbs verb h;
          h)

let record ?verb t ~error ~us =
  Obs.Counter.incr t.requests;
  if error then Obs.Counter.incr t.errors;
  Obs.Histogram.observe t.latency us;
  match verb with
  | None -> ()
  | Some v -> Obs.Histogram.observe (verb_histogram t v) us

let requests t = Obs.Counter.get t.requests
let errors t = Obs.Counter.get t.errors

let reset t =
  Obs.Counter.reset t.requests;
  Obs.Counter.reset t.errors;
  Obs.Histogram.reset t.latency;
  Mutex.lock t.verb_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.verb_lock)
    (fun () -> Hashtbl.iter (fun _ h -> Obs.Histogram.reset h) t.verbs)

(* [q] is a fraction (0.99), Obs percentiles take 0..100. *)
let percentile_us t q = Obs.Histogram.percentile t.latency (q *. 100.0)

(* A percentile that falls in the histogram's overflow bucket is
   [infinity]; render it the Prometheus way rather than as "inf". *)
let us_str f = if Float.is_finite f then Printf.sprintf "%.0f" f else "+Inf"

let render t =
  Printf.sprintf "requests=%d errors=%d p50_us=%s p99_us=%s" (requests t)
    (errors t)
    (us_str (percentile_us t 0.5))
    (us_str (percentile_us t 0.99))

let pp_dump ppf t =
  Format.fprintf ppf "@[<v>requests: %d@,errors: %d@,p50: <= %s us@,p99: <= %s us"
    (requests t) (errors t)
    (us_str (percentile_us t 0.5))
    (us_str (percentile_us t 0.99));
  Array.iteri
    (fun b n ->
      if n > 0 then
        let up = Obs.Histogram.bucket_upper b in
        if Float.is_finite up then
          Format.fprintf ppf "@,latency < %6.0f us: %d" up n
        else
          Format.fprintf ppf "@,latency >= %6.0f us: %d"
            (Obs.Histogram.bucket_upper (b - 1))
            n)
    (Obs.Histogram.bucket_counts t.latency);
  Format.fprintf ppf "@]"
