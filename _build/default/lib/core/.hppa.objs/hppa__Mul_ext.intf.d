lib/core/mul_ext.mli: Hppa_word Program
