(** Instructions of the simulated HP Precision Architecture subset.

    The type is parameterised by the branch-target representation: the
    assembler produces [string t] (symbolic labels) and {!Program.resolve}
    turns them into [int t] (absolute instruction indices) for execution.

    Cost model: every instruction, including a nullified one, costs one
    cycle. Taken branches cost one cycle (the real machine's delay slot is
    assumed filled or nullified at no net cost, matching how the paper counts
    "single-cycle instructions along the dynamic path").

    Differences from the real instruction set are deliberate simplifications
    and are documented in DESIGN.md: instruction addresses are in instruction
    units (not bytes), [Ldaddr] stands in for the LDIL/LDO address formation,
    and [Ds] has the documented one-bit non-restoring semantics of
    {!Machine.Exec}. *)

type reg = Reg.t

(** Three-register ALU operations. [SH1ADD]..[SH3ADD] are the pre-shifter
    shift-and-add forms; the [trap_ov] variants ([ADDO], [SH2ADDO], ...) trap
    on signed overflow, where shift-and-add overflow is detected by the cheap
    sign-comparison circuit of §4. *)
type alu =
  | Add
  | Addc (** add with the PSW carry bit *)
  | Sub
  | Subb (** subtract with the PSW borrow bit *)
  | Shadd of int (** shift left by 1..3 then add *)
  | And
  | Or
  | Xor
  | Andcm (** a AND NOT b *)

type 'lbl t =
  | Alu of { op : alu; a : reg; b : reg; t : reg; trap_ov : bool }
  | Ds of { a : reg; b : reg; t : reg }
      (** Divide step: one bit of non-restoring division (see DESIGN.md). *)
  | Addi of { imm : int32; a : reg; t : reg; trap_ov : bool }
      (** [t := a + imm], 14-bit signed immediate. *)
  | Subi of { imm : int32; a : reg; t : reg; trap_ov : bool }
      (** [t := imm - a], 11-bit signed immediate (PA-RISC SUBI order). *)
  | Comclr of { cond : Cond.t; a : reg; b : reg; t : reg }
      (** Compare [a] with [b]; set [t := 0]; nullify the next instruction if
          the condition holds. *)
  | Comiclr of { cond : Cond.t; imm : int32; a : reg; t : reg }
      (** As [Comclr] with an 11-bit immediate left operand. *)
  | Extr of {
      signed : bool;
      r : reg;
      pos : int;
      len : int;
      t : reg;
      cond : Cond.t;
    }
      (** Extract the [len]-bit field at LSB position [pos] (EXTRU/EXTRS).
          Logical and arithmetic right shifts are the [len = 32 - pos]
          cases. [cond] is the PA-RISC unit-instruction completer: the next
          instruction is nullified when the extracted result satisfies it
          against zero ([Never] = no completer). The paper's nibble loop
          tests a multiplier bit with [extru,= mpy, k, 1, r1]. *)
  | Zdep of { r : reg; pos : int; len : int; t : reg }
      (** Zero [t] and deposit the low [len] bits of [r] at position [pos];
          shift-left-immediate is the [len = 32 - pos] case. *)
  | Shd of { a : reg; b : reg; sa : int; t : reg }
      (** Double shift: [t] gets bits [sa .. sa+31] of the 64-bit value
          [a:b] ([a] high). [sa] in 0..31. *)
  | Ldil of { imm : int32; t : reg }  (** Load the top 21 bits. *)
  | Ldo of { imm : int32; base : reg; t : reg }
      (** Load offset: [t := base + imm] (14-bit); also serves as
          load-immediate and copy. Never traps. *)
  | Ldw of { disp : int32; base : reg; t : reg }
  | Stw of { r : reg; disp : int32; base : reg }
  | Ldaddr of { target : 'lbl; t : reg }
      (** Pseudo: load the address of a label (LDIL/LDO pair on the real
          machine; counted as one cycle here — noted in DESIGN.md). *)
  | Comb of { cond : Cond.t; a : reg; b : reg; target : 'lbl; n : bool }
      (** Compare and branch. On every branch, [n] is the [,n] completer:
          in delay-slot machine mode it nullifies the slot when the branch
          is taken (no effect in the default mode). *)
  | Comib of { cond : Cond.t; imm : int32; a : reg; target : 'lbl; n : bool }
      (** Compare immediate (5-bit signed, the {e left} operand) and
          branch. *)
  | Addib of { cond : Cond.t; imm : int32; a : reg; target : 'lbl; n : bool }
      (** [a := a + imm] (5-bit signed); branch if the {e result} satisfies
          [cond] against zero. *)
  | B of { target : 'lbl; n : bool }
  | Bl of { target : 'lbl; t : reg; n : bool }  (** Branch and link. *)
  | Blr of { x : reg; t : reg; n : bool }
      (** Branch vectored: jump to [pc + 1 + 2*x] — the two-instruction-slot
          case table of §6 — linking in [t]. *)
  | Bv of { x : reg; base : reg; n : bool }
      (** Branch to [base + 2*x]; [Bv r0 base] is the procedure return. *)
  | Break of { code : int }
  | Nop

val map_target : ('a -> 'b) -> 'a t -> 'b t
val target : 'lbl t -> 'lbl option
val equal : ('lbl -> 'lbl -> bool) -> 'lbl t -> 'lbl t -> bool

val is_branch : 'lbl t -> bool
(** True for every control-transfer instruction, including [Blr]/[Bv]. *)

val writes : 'lbl t -> reg option
(** The general register written, if any (before the [r0]-discard rule). *)

val reads : 'lbl t -> reg list
(** General registers the instruction reads (for the delay-slot
    scheduler's dependence check and the dataflow passes of
    [Hppa_verify]).

    Contract: the list enumerates {e operand positions}, so a register
    appearing in two source positions appears {e twice} — [add r5, r5, t]
    reads [[r5; r5]], and [bv r0(rp)] reads [[r0; rp]]. Order follows the
    operand order of the instruction form. Membership-style consumers
    ([List.exists], set union) are unaffected; anything counting
    occurrences must use {!reads_distinct} instead. A unit test pins this
    behaviour. *)

val reads_distinct : 'lbl t -> reg list
(** {!reads} with duplicates removed, preserving first-occurrence order. *)

val set_n : bool -> 'lbl t -> 'lbl t
(** Set the [,n] completer; identity on non-branches. *)

val get_n : 'lbl t -> bool

val validate : 'lbl t -> (unit, string) result
(** Check immediate ranges and field bounds; the assembler and the code
    generators run this on every emitted instruction. *)

val mnemonic : 'lbl t -> string
val pp : (Format.formatter -> 'lbl -> unit) -> Format.formatter -> 'lbl t -> unit
(** Assembler syntax, e.g. [sh2add,o r5, r3, r4] or [comb,<< r1, r2, loop]. *)
