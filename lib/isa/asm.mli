(** Two-pass textual assembler.

    Syntax follows the PA-RISC assembler closely: one instruction per line,
    sources before destination, conditions attached to the mnemonic with a
    comma, [;] or [#] comments, and [label:] definitions (alone on a line or
    prefixing an instruction).

    {[
      ; unsigned divide fragment
      divu:   comib,=  0, r25, div0   ; trap on zero divisor
              ds       r19, r25, r19
              addib,>  -1, r22, divu
              bv       r0(rp)
    ]}

    Pseudo-instructions accepted on input: [shl]/[shr]/[sar] (immediate
    shifts), [copy], and [ldi] (which may expand to an [ldil]/[ldo] pair). *)

val parse : string -> (Program.source, string) result
(** Parse a whole file. Every error message carries the 1-based source
    line and, when one operand is at fault, the offending token —
    e.g. ["line 3: expected a register, got \"42\""]. *)

val parse_exn : string -> Program.source

val print : Program.source -> string
(** Canonical listing; [parse (print p)] resolves to the same image. *)
