(** The Booth multiply-step baseline (§2, §3).

    Early drafts of the Precision architecture had a Multiply Step
    instruction implementing two-bit Booth encoding — it was removed
    because it demanded a three-read-port register file or a special HL
    register pair ([Jou81]). This module models the machine HP decided
    {e not} to build, so the software multiply can be compared against it
    (the paper: "compares favorably with Booth's algorithm implemented
    with a Multiply Step").

    The model is the standard radix-4 (two-bit) Booth recoding: 16 steps
    for a 32x32 multiply, each retiring one digit from {-2,-1,0,+1,+2},
    one cycle per step, plus the setup and signed-correction cycles a real
    multiply-step sequence needs. *)

val steps : int
(** 16: multiplier bits retired two per step. *)

val multiply : Hppa_word.Word.t -> Hppa_word.Word.t -> Hppa_word.Word.t * Hppa_word.Word.t
(** Full signed 64-bit product as [(hi, lo)], computed by executing the 16
    Booth steps (not by a host multiply) — the test suite checks it against
    {!Hppa_word.Word.mul_wide_s}. *)

val cycles : unit -> int
(** Dynamic cost of one multiply on the hypothetical multiply-step
    machine: 16 steps + 4 setup/correction = 20 cycles, the figure the
    paper's §6 comparison implies. *)
