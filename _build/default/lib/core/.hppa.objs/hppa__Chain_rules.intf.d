lib/core/chain_rules.mli: Chain
