(** Batched (structure-of-arrays) execution engine.

    Translates a program once and runs it over a vector of lanes — one
    independent machine per lane — with every per-instruction cost
    (closure dispatch, mnemonic bookkeeping, branch checks) paid once
    per instruction per cohort of lanes instead of once per lane.
    Register state is one unboxed [int array] per architectural
    register; per-lane memory images are allocated only when the program
    loads or stores.

    Divergent lanes are scheduled as min-PC cohorts and reconverge by PC
    order; a lane that traps or exhausts fuel records its own outcome
    and is masked out while its neighbours proceed. Every lane observes
    exactly the scalar {!Engine} semantics — outcome, registers, PSW
    C/V, PC, memory and per-lane cycle counts — which the differential
    test suite pins against both the scalar engine and the {!Cpu}
    reference over all millicode entries.

    Instances are not thread-safe; give each domain its own. *)

type t

val create :
  ?mem_bytes:int ->
  ?obs:Hppa_obs.Obs.Registry.t ->
  ?obs_labels:(string * string) list ->
  lanes:int ->
  Program.resolved ->
  t
(** Translate [prog] for a batch of [lanes] lanes. [mem_bytes] (default
    64 KiB) sizes each lane's private memory image, allocated only when
    the program contains loads or stores. When [obs] is given, the
    aggregate [hppa_sim_*] statistics and the
    [hppa_machine_batch_lanes_total] / [hppa_machine_batch_lanes_trapped_total]
    / [hppa_machine_batch_dispatches_total] counters are published under
    [obs_labels]. Raises [Invalid_argument] if [lanes <= 0]. *)

val lanes : t -> int
(** The translated batch capacity. *)

val width : t -> int
(** Lanes active in the most recent {!call} (0 before the first). *)

val program : t -> Program.resolved

val call : ?fuel:int -> t -> string -> args:Hppa_word.Word.t list array -> unit
(** [call t entry ~args] runs one batch: lane [l] gets the argument list
    [args.(l)] loaded into [arg0..arg3], [rp]/[mrp] planted with the
    halt sentinel, and starts at [entry]; [Array.length args] lanes run
    (at most {!lanes}). Each lane's fuel budget is [fuel] (default
    1_000_000; negative = unlimited), consumed independently. Registers,
    PSW bits and memory persist across calls, like reusing a scalar
    machine. Results are read per lane with the accessors below.
    Raises [Invalid_argument] on an unknown entry, an empty batch, more
    lanes than {!lanes}, or more than 6 arguments for a lane. *)

val outcome : t -> lane:int -> Cpu.outcome
(** The lane's outcome after the last {!call}. *)

val get_reg : t -> lane:int -> Reg.t -> Hppa_word.Word.t
val set_reg : t -> lane:int -> Reg.t -> Hppa_word.Word.t -> unit
(** Writes to [r0] are discarded, as on the hardware. *)

val carry : t -> lane:int -> bool
val v_bit : t -> lane:int -> bool

val pc : t -> lane:int -> int
(** After [Halted] the PC past the halting branch; after [Trapped] the
    trapping instruction; after [Fuel_exhausted] the next instruction —
    the same convention as {!Machine.pc}. *)

val cycles : t -> lane:int -> int
(** Cycles (executed + nullified) this lane spent in the last {!call};
    equals the scalar engine's {!Machine.call_cycles} delta. *)

val load_word : t -> lane:int -> int32 -> (Hppa_word.Word.t, Trap.t) result

val stats : t -> Stats.t
(** Aggregate statistics across all lanes and calls: equals the sum of
    the corresponding scalar runs (the differential suite pins this). *)

(** Monotonic batch-dispatch counters, also published as
    [hppa_machine_batch_*] when a registry is attached: total lanes run,
    lanes that ended in a trap, and cohort dispatches (each one
    superblock or single instruction executed for a whole cohort). *)
type counters = { lanes_run : int; lanes_trapped : int; dispatches : int }

val counters : t -> counters
