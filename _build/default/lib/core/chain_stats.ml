let figure1_rows ex ~max_entries =
  let max_len = Chain_search.max_len ex in
  let limit = Chain_search.limit ex in
  List.init max_len (fun i ->
      let r = i + 1 in
      let hits = ref [] and count = ref 0 and n = ref 2 in
      while !count < max_entries && !n <= limit do
        (match Chain_search.length_of ex !n with
        | Some l when l = r ->
            hits := !n :: !hits;
            incr count
        | Some _ | None -> ());
        incr n
      done;
      (r, List.rev !hits))

let first_with_length ex r =
  let limit = Chain_search.limit ex in
  let depth = Chain_search.max_len ex in
  let matches n =
    match Chain_search.length_of ex n with
    | Some l -> l = r
    | None -> r = depth + 1 (* unreachable at depth => l >= depth + 1 *)
  in
  let rec go n =
    if n > limit then None else if matches n then Some n else go (n + 1)
  in
  if r > depth + 1 then None else go 2

type exception_report = {
  total : int;
  exceptions : (int * int * int) list;
}

let rule_exceptions rules ex =
  let limit = min (Chain_rules.table_limit rules) (Chain_search.limit ex) in
  let total = ref 0 and exceptions = ref [] in
  for n = 2 to limit do
    match (Chain_search.length_of ex n, Chain_rules.cost rules n) with
    | Some l, Some r ->
        incr total;
        if r > l then exceptions := (n, l, r) :: !exceptions
    | _, _ -> ()
  done;
  { total = !total; exceptions = List.rev !exceptions }

let fraction_within rules ~upto ~max_cost =
  let hits = ref 0 in
  for n = 1 to upto do
    match Chain_rules.cost rules n with
    | Some c when c <= max_cost -> incr hits
    | Some _ | None -> ()
  done;
  float_of_int !hits /. float_of_int upto

let needing_temporary ~limit =
  let ex = Chain_search.lengths_table ~max_len:4 ~limit () in
  let nt = Chain_rules.table No_temp ~limit in
  let needs = ref [] in
  for n = 2 to limit do
    match (Chain_search.length_of ex n, Chain_rules.cost nt n) with
    | Some l, Some l_nt when l_nt > l -> needs := n :: !needs
    | _, _ -> ()
  done;
  List.rev !needs
