type t = { hi : Word.t; lo : Word.t }

let zero = { hi = 0l; lo = 0l }
let make ~hi ~lo = { hi; lo }
let of_word_u w = { hi = 0l; lo = w }
let of_word_s w = { hi = (if Word.is_neg w then -1l else 0l); lo = w }

let of_int64 x =
  { hi = Int64.to_int32 (Int64.shift_right_logical x 32); lo = Int64.to_int32 x }

let to_int64 { hi; lo } =
  Int64.logor (Int64.shift_left (Word.to_int64_u hi) 32) (Word.to_int64_u lo)

let add a b =
  let lo, carry = Word.add_carry a.lo b.lo ~carry_in:false in
  let hi, _ = Word.add_carry a.hi b.hi ~carry_in:carry in
  { hi; lo }

let add_word_u a w = add a (of_word_u w)
let shl a k = of_int64 (Int64.shift_left (to_int64 a) (k land 63))
let shr_u a k = of_int64 (Int64.shift_right_logical (to_int64 a) (k land 63))

let sh_add k a b =
  assert (k >= 0 && k <= 3);
  add (shl a k) b

let equal a b = Word.equal a.hi b.hi && Word.equal a.lo b.lo

let compare_u a b =
  match Word.compare_u a.hi b.hi with 0 -> Word.compare_u a.lo b.lo | c -> c

let pp ppf a = Format.fprintf ppf "%lx_%08lx" a.hi a.lo
