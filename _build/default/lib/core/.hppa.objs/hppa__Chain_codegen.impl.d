lib/core/chain_codegen.ml: Array Builder Chain Emit List Reg
