lib/compiler/strength.ml: Expr Hashtbl Hppa_word List Loop_ir Printf String
