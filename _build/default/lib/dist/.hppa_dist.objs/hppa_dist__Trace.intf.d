lib/dist/trace.mli: Format Hppa_word Prng
