(** Operand distributions for multiply/divide workloads.

    The paper's averages are expectations over measured operand statistics
    (§3 "Operand Frequency Analysis", §6 "An Observation", Figure 5). HP's
    traces are proprietary, so this module provides the synthetic models
    the text describes:

    - {!log_uniform}: magnitudes log-uniformly distributed — the paper's
      "pessimistic guess" used to analyse Figures 2 and 3;
    - {!figure5_pair}: operand pairs whose smaller magnitude falls in the
      Figure 5 buckets with the stated 60/20/10/10 weights, both operands
      positive ~90 % of the time, and the product constrained to be
      representable (the paper explicitly discounts overflowing
      multiplies);
    - {!small_divisor}: divisors for the §7 "divisors less than twenty"
      studies. *)

val log_uniform : ?bits:int -> Prng.t -> Hppa_word.Word.t
(** Non-negative; bit-length uniform in [0 .. bits] (default 31), then
    uniform among values of that length. *)

type bucket = { lo : int; hi : int; weight : float }

val figure5_buckets : bucket list
(** [0-15 @ 60%; 16-255 @ 20%; 256-4095 @ 10%; 4096-46340 @ 10%] — the
    paper's Figure 5 rows and the operand-distribution column. *)

val bucket_of_pair : Hppa_word.Word.t -> Hppa_word.Word.t -> bucket option
(** The Figure 5 row that [min (|x|, |y|)] falls into. *)

val figure5_pair :
  ?positive_fraction:float -> Prng.t -> Hppa_word.Word.t * Hppa_word.Word.t
(** A multiply operand pair per the Figure 5 model. [positive_fraction]
    (default 0.9) is the probability that both operands are positive;
    otherwise signs are random. The signed product always fits 32 bits. *)

val small_divisor : Prng.t -> Hppa_word.Word.t
(** Uniform in [1 .. 19]. *)

(** {1 64-bit operands}

    Models for the W64 (double-word) kernel family. The serve workloads
    want both the heavy-head key statistics of a zipf popularity model
    and a controlled mix of "really 64-bit" divisors (high word
    non-zero, exercising the normalization path of the 64/64 divide)
    against divisors that degenerate to the 32-bit path. *)

val uniform64 : Prng.t -> int64
(** Uniform over all 2{^64} bit patterns. *)

val log_uniform64 : ?bits:int -> Prng.t -> int64
(** Non-negative as a bit pattern; bit-length uniform in [0 .. bits]
    (default 63), then uniform among values of that length — the
    64-bit analogue of {!log_uniform}. *)

val zipf_rank : ?support:int -> Prng.t -> int
(** A rank in [0 .. support-1] (default 1000) under a zipf law with
    exponent 1.1 — rank 0 is the most popular. The CDF is memoized per
    support. *)

val zipf64_divisor : ?support:int -> Prng.t -> int64
(** A zipf-popular 64-bit divisor: draws a {!zipf_rank} and maps it
    bijectively to a divisor whose high word is [rank + 1] (always
    non-zero, so the full 64/64 normalization path runs) and whose low
    word is a mixed function of the rank. Repeated draws repeat
    divisors with the zipf head weights. *)

val w64_pair : ?hw0:float -> Prng.t -> int64 * int64
(** A (dividend, divisor) pair for the W64 divides: the dividend is
    {!log_uniform64}; with probability [hw0] (default 0.5) the divisor's
    high word is zero (degenerating to the 32-bit divide path),
    otherwise it is {!log_uniform64}. The divisor is never zero. *)
