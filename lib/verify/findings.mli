(** Findings reported by the static verifier.

    Every pass produces a flat list of these; an empty list is the
    verifier's certificate that the program satisfies the checked
    property. [Error] findings are miscompiles or convention violations
    (the CI gate fails on them); [Warning]s are suspicious but not
    provably wrong (dead writes, meaningless completers). *)

type check =
  | Structure  (** CFG anomalies: unresolvable indirect branches, falling
                   off the image, branch targets outside the image *)
  | Use_before_def  (** a register read on a path with no prior definition *)
  | Psw_before_def
      (** ADDC/SUBB/DS consuming PSW carry (or V) on a path where no
          instruction has set it *)
  | Dead_write  (** a side-effect-free write never observed on any path *)
  | Delay_hazard  (** delay-slot invariant violation (see {!Hazards}) *)
  | Convention  (** millicode calling-convention violation *)
  | Pair
      (** register-pair (64-bit dword) calling-convention violation
          ({!Pairs}): non-canonical pair slots, a result pair half left
          undefined on a return path, or an argument pair half never
          consumed *)
  | Certify
      (** a certifier could not certify, or refuted, a routine's claim —
          the linear interpreter for constant multiplies ({!Linear}), the
          reciprocal/divide-step/dispatch certifiers for divisions
          ({!Reciprocal}, {!Divstep}) *)

type severity = Error | Warning

type t = {
  check : check;
  severity : severity;
  routine : string option;  (** entry point being analyzed, if any *)
  addr : int option;  (** instruction index in the resolved image *)
  message : string;
}

val v :
  ?severity:severity -> ?routine:string -> ?addr:int -> check -> string -> t
(** [severity] defaults to [Error]. *)

val check_name : check -> string
val errors : t list -> t list
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
