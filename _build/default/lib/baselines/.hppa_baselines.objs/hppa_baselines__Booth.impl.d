lib/baselines/booth.ml: Hppa_word Int64
