lib/baselines/shift_sub_div.mli: Hppa_word
