lib/baselines/booth.mli: Hppa_word
