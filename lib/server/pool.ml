(* FIFO job queue guarded by a mutex/condition pair; workers are domains
   looping dequeue-run. A job is a closure over its own result cell, so
   the queue is monomorphic while [submit] stays polymorphic. *)

module Obs = Hppa_obs.Obs

type instruments = {
  jobs : Obs.Counter.t;
  exceptions : Obs.Counter.t;
  wait : Obs.Histogram.t;
}

type 'ctx t = {
  queue : ('ctx -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  n_workers : int;
  ins : instruments option;
}

let worker_loop t init () =
  let ctx = init () in
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue && t.closed then Mutex.unlock t.lock
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.lock;
      job ctx;
      loop ()
    end
  in
  loop ()

let create ?obs ?(obs_labels = []) ~workers ~init () =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let labels = obs_labels in
  let ins =
    Option.map
      (fun reg ->
        {
          jobs =
            Obs.Registry.counter reg ~labels
              ~help:"Jobs run by pool workers" "hppa_pool_jobs_total";
          exceptions =
            Obs.Registry.counter reg ~labels ~help:"Jobs that raised"
              "hppa_pool_job_exceptions_total";
          wait =
            Obs.Registry.histogram reg ~labels
              ~help:"Queue wait, submit to job start (log2 us buckets)"
              "hppa_pool_wait_us";
        })
      obs
  in
  let t =
    {
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      domains = [];
      n_workers = workers;
      ins;
    }
  in
  (match obs with
  | None -> ()
  | Some reg ->
      Obs.Registry.fn_gauge reg ~labels
        ~help:"Jobs waiting in the pool queue" "hppa_pool_queue_depth"
        (fun () ->
          Mutex.lock t.lock;
          let n = Queue.length t.queue in
          Mutex.unlock t.lock;
          float_of_int n));
  t.domains <-
    List.init workers (fun _ -> Domain.spawn (worker_loop t init));
  t

let workers t = t.n_workers

let submit t f =
  let cell = ref None in
  let done_lock = Mutex.create () in
  let done_cond = Condition.create () in
  let submitted = Unix.gettimeofday () in
  let job ctx =
    (match t.ins with
    | None -> ()
    | Some ins ->
        Obs.Counter.incr ins.jobs;
        Obs.Histogram.observe ins.wait
          ((Unix.gettimeofday () -. submitted) *. 1e6));
    let result =
      try Ok (f ctx)
      with exn ->
        (match t.ins with
        | None -> ()
        | Some ins -> Obs.Counter.incr ins.exceptions);
        Error exn
    in
    Mutex.lock done_lock;
    cell := Some result;
    Condition.signal done_cond;
    Mutex.unlock done_lock
  in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock;
  Mutex.lock done_lock;
  while Option.is_none !cell do
    Condition.wait done_cond done_lock
  done;
  Mutex.unlock done_lock;
  match Option.get !cell with Ok v -> v | Error exn -> raise exn

let post t f =
  let job ctx =
    (match t.ins with
    | None -> ()
    | Some ins -> Obs.Counter.incr ins.jobs);
    try f ctx
    with _ -> (
      match t.ins with
      | None -> ()
      | Some ins -> Obs.Counter.incr ins.exceptions)
  in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.post: pool is shut down"
  end;
  Queue.push job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  if not was_closed then List.iter Domain.join t.domains
