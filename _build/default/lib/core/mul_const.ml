module Word = Hppa_word.Word

type plan = {
  multiplier : int32;
  chain : Chain.t option;
  entry : string;
  source : Program.source;
  static_instructions : int;
  temporaries : int;
  overflow : bool;
}

let default_entry n =
  if n >= 0l then Printf.sprintf "mulc_%ld" n
  else Printf.sprintf "mulc_m%ld" (Int32.neg n)

let finish ~n ~chain ~entry ~overflow b info =
  Builder.insn b Emit.mret;
  {
    multiplier = n;
    chain;
    entry;
    source = Builder.to_source b;
    static_instructions = info.Chain_codegen.instructions;
    temporaries = info.Chain_codegen.temporaries;
    overflow;
  }

let plan ?(overflow = false) ?entry (n : int32) =
  let entry = match entry with Some e -> e | None -> default_entry n in
  let simple insns =
    let b = Builder.create ~prefix:entry () in
    Builder.label b entry;
    List.iter (Builder.insn b) insns;
    let count = Builder.length b in
    Builder.insn b Emit.mret;
    {
      multiplier = n;
      chain = None;
      entry;
      source = Builder.to_source b;
      static_instructions = count;
      temporaries = 0;
      overflow;
    }
  in
  if Word.equal n 0l then simple [ Emit.copy Reg.r0 Reg.ret0 ]
  else if Word.equal n Int32.min_int then
    if not overflow then simple [ Emit.shl Reg.arg0 31 Reg.ret0 ]
    else begin
      (* Only 0 * min_int and 1 * min_int are representable; anything else
         must trap, which a guaranteed-overflowing ADDO provides. *)
      let b = Builder.create ~prefix:entry () in
      let zero = entry ^ "$zero" in
      Builder.label b entry;
      Builder.insns b
        [
          Emit.comib Cond.Eq 0l Reg.arg0 zero;
          Emit.comib Cond.Neq 1l Reg.arg0 (entry ^ "$trap");
          Emit.ldil Int32.min_int Reg.ret0;
          Emit.mret;
        ];
      Builder.label b (entry ^ "$trap");
      Builder.insns b
        [
          Emit.ldil 0x4000_0000l Reg.t2;
          Emit.add ~ov:true Reg.t2 Reg.t2 Reg.r0;
        ];
      Builder.label b zero;
      Builder.insns b [ Emit.copy Reg.r0 Reg.ret0; Emit.mret ];
      {
        multiplier = n;
        chain = None;
        entry;
        source = Builder.to_source b;
        static_instructions = 4;
        temporaries = 1;
        overflow;
      }
    end
  else begin
    let negate = Word.is_neg n in
    let magnitude = Int32.to_int (Word.abs n) in
    let mode = if overflow then Chain_rules.Monotonic else Chain_rules.Fast in
    let chain = Chain_rules.find_exn ~mode magnitude in
    let b = Builder.create ~prefix:entry () in
    Builder.label b entry;
    let info = Chain_codegen.body ~overflow ~negate chain b in
    finish ~n ~chain:(Some chain) ~entry ~overflow b info
  end

let cost ?overflow n = (plan ?overflow n).static_instructions
