(* mulI / muloI are aliases of the final-algorithm routines; a label-only
   compilation unit placed right before each target would also work, but
   explicit single-instruction trampolines keep every entry independent of
   layout. *)
let aliases =
  let b = Builder.create ~prefix:"aliases" () in
  Builder.label b "mulI";
  Builder.insn b (Emit.b "mul_final");
  Builder.label b "muloI";
  Builder.insn b (Emit.b "mulo");
  Builder.to_source b

let source =
  Program.concat
    [
      aliases; Mul_var.all; Mul_ext.source; Div_gen.source; Div_ext.source;
      Div_small.source;
    ]

let resolved () = Program.resolve_exn source
let machine ?config () = Hppa_machine.Machine.create ?config (resolved ())
let scheduled_source () = Delay.schedule source

let scheduled_machine () =
  Hppa_machine.Machine.create ~delay_slots:true
    (Program.resolve_exn (scheduled_source ()))

let entries =
  [ "mulI"; "muloI" ] @ Mul_var.entries @ Mul_ext.entries @ Div_gen.entries
  @ Div_ext.entries @ Div_small.entries

let mulI = "mulI"
let muloI = "muloI"

(* Declared register interfaces of every entry, for the static checker:
   everything takes arg0/arg1 (arg2 for the 64/32 divides) and clobbers
   only the scratch set; the 64-bit routines and the divides also
   document ret1 (high word / remainder). *)
let conventions =
  let spec ?(args = [ Reg.arg0; Reg.arg1 ]) ~results name =
    { Hppa_verify.Cfg.name; args; results; clobbers = Hppa_verify.Cfg.scratch }
  in
  let r1 = [ Reg.ret0 ] and r2 = [ Reg.ret0; Reg.ret1 ] in
  List.map (spec ~results:r1)
    [
      "mulI"; "muloI"; "mul_naive"; "mul_naive_early"; "mul_nibble";
      "mul_switch"; "mul_final"; "mulo"; "divU_small"; "divI_small";
    ]
  @ List.map (spec ~results:r2) [ "mulU64"; "mulI64"; "divU"; "divI"; "remU"; "remI" ]
  @ List.map
      (spec ~args:[ Reg.arg0; Reg.arg1; Reg.arg2 ] ~results:r2)
      [ "divU64"; "divI64" ]

let lint ?(scheduled = false) () =
  let src = if scheduled then scheduled_source () else source in
  let options =
    {
      Hppa_verify.Cfg.mode =
        (if scheduled then Hppa_verify.Cfg.Delay_slot else Hppa_verify.Cfg.Simple);
      blr_slots = Div_small.threshold;
    }
  in
  match
    Hppa_verify.Driver.check_source ~options ~specs:conventions ~entries src
  with
  | Ok findings -> findings
  | Error msg -> [ Hppa_verify.Findings.v Hppa_verify.Findings.Structure msg ]
