lib/core/div_gen.ml: Builder Cond Emit Hppa_machine Hppa_word Program Reg
