(* Body-equivalence certifier.

   The W64 routines are too far from a closed algebraic form for the
   reciprocal/divide-step certifiers (their correctness argument is the
   normalization theorem plus the differential suite), so a served W64
   plan is certified the way a distribution is: by proving the program
   it executes IS the canonical library routine. The certifier walks
   both images in lockstep from the entry label — following branch
   targets, call targets and fall-through, so transitively called
   millicode is covered — requiring every instruction pair to be
   structurally identical and the branch-target correspondence to be a
   consistent map. A successful walk is a simulation argument: every
   execution of the candidate body is an execution of the canonical
   body, whose behaviour the differential suite pins against the
   two-word reference. *)

let no_fallthrough : int Insn.t -> bool = function
  | Insn.B _ | Insn.Bv _ | Insn.Blr _ | Insn.Break _ -> true
  | _ -> false

(* [Some 2^len] when the instruction before the [blr] at [addr] is a
   plain unconditional unsigned extract into the index register — the
   only vectored-table shape whose index the walk can bound. *)
let bounded_index (code : int Insn.t array) addr x =
  if addr <= 0 || addr > Array.length code then None
  else
    match code.(addr - 1) with
    | Insn.Extr { signed = false; r = _; pos = _; len; t; cond = Cond.Never }
      when Reg.equal t x && len >= 1 && len <= 8 ->
        Some (1 lsl len)
    | _ -> None

(* The bounded-index argument needs the [extru] to dominate its [blr]:
   control must only arrive at the branch by falling through the
   extract. [fall_through_only img] answers that per address by marking
   everything control can reach some other way — labels, branch
   targets, call-return points, vectored-table slots (the whole image
   tail for a table the certifier cannot bound) and nullifier skips —
   mirroring the marking in {!Cfg.make}. *)
let fall_through_only (img : Program.resolved) =
  let code = img.Program.code in
  let n = Array.length code in
  let marks = Array.make n false in
  let mark a = if a >= 0 && a < n then marks.(a) <- true in
  Hashtbl.iter (fun _ a -> mark a) img.Program.symbols;
  Array.iteri
    (fun addr i ->
      (match Insn.target i with Some a -> mark a | None -> ());
      (match (i : int Insn.t) with
      | Insn.Blr { x; _ } ->
          let slots =
            match bounded_index code addr x with
            | Some k -> k
            | None -> ((n - addr) / 2) + 1
          in
          for k = 0 to slots - 1 do
            mark (addr + 1 + (2 * k))
          done
      | Insn.Bl _ -> mark (addr + 1)
      | _ -> ());
      if Delay.is_nullifier i then mark (addr + 2))
    code;
  fun a -> a >= 0 && a < n && not marks.(a)

let is_return = function
  | Insn.Bv { x; base; n = _ } ->
      Reg.equal x Reg.r0 && (Reg.equal base Reg.rp || Reg.equal base Reg.mrp)
  | _ -> false

let certify ~canonical ~entry prog =
  match (Program.symbol canonical entry, Program.symbol prog entry) with
  | None, _ -> Reciprocal.Unknown (Printf.sprintf "no canonical label %S" entry)
  | _, None -> Reciprocal.Unknown (Printf.sprintf "no label %S" entry)
  | Some c0, Some p0 -> (
      let fetch (img : Program.resolved) a =
        if a >= 0 && a < Array.length img.Program.code then
          Some img.Program.code.(a)
        else None
      in
      let dominated = fall_through_only canonical in
      let map = Hashtbl.create 256 in
      let visited = Hashtbl.create 256 in
      let work = Queue.create () in
      let exception Stop of Reciprocal.verdict in
      let pair c p =
        match Hashtbl.find_opt map c with
        | Some p' when p' <> p ->
            raise
              (Stop
                 (Reciprocal.Refuted
                    (Printf.sprintf
                       "inconsistent target map: canonical +%d reached at both \
                        +%d and +%d"
                       c p' p)))
        | Some _ -> ()
        | None ->
            Hashtbl.replace map c p;
            Queue.add (c, p) work
      in
      try
        pair c0 p0;
        while not (Queue.is_empty work) do
          let c, p = Queue.pop work in
          if not (Hashtbl.mem visited c) then begin
            Hashtbl.replace visited c ();
            match (fetch canonical c, fetch prog p) with
            | None, _ | _, None ->
                raise
                  (Stop
                     (Reciprocal.Unknown
                        (Printf.sprintf "walk left the image at +%d/+%d" c p)))
            | Some ic, Some ip ->
                if not (Insn.equal (fun _ _ -> true) ic ip) then
                  raise
                    (Stop
                       (Reciprocal.Refuted
                          (Printf.sprintf "+%d: %s differs from canonical %s" p
                             (Insn.mnemonic ip) (Insn.mnemonic ic))));
                (match ic with
                | Insn.Blr { x; n = false; t = _ }
                  when bounded_index canonical.Program.code c x <> None
                       && dominated c ->
                    (* A bounded vectored table: the adjacent extract
                       dominates the branch, so the index — equal in
                       both executions by the lockstep induction — is
                       below [2^len] and every slot can be paired. *)
                    let slots =
                      Option.get (bounded_index canonical.Program.code c x)
                    in
                    for k = 0 to slots - 1 do
                      pair (c + 1 + (2 * k)) (p + 1 + (2 * k))
                    done
                | Insn.Ldaddr _ | Insn.Blr _ ->
                    (* A materialized code address or an unbounded
                       vectored table: the walk cannot bound where
                       control goes. *)
                    raise
                      (Stop
                         (Reciprocal.Unknown
                            (Printf.sprintf "+%d: %s is beyond the walk" c
                               (Insn.mnemonic ic))))
                | Insn.Bv _ when not (is_return ic) ->
                    raise
                      (Stop
                         (Reciprocal.Unknown
                            (Printf.sprintf "+%d: indirect branch" c)))
                | _ -> ());
                (match (Insn.target ic, Insn.target ip) with
                | Some tc, Some tp -> pair tc tp
                | None, None -> ()
                | _ ->
                    (* unreachable: Insn.equal matched the constructors *)
                    assert false);
                if not (no_fallthrough ic) then pair (c + 1) (p + 1)
          end
        done;
        let insns = Hashtbl.length visited in
        Reciprocal.Certified
          (Certificate.v
             (Certificate.Body_equiv { entry; insns })
             [
               Printf.sprintf
                 "lockstep walk over %d reachable instructions from %S: every \
                  instruction equals its canonical counterpart under a \
                  consistent branch-target map"
                 insns entry;
               Printf.sprintf
                 "canonical behaviour is pinned by the W64 differential suite \
                  (boundary sweep, seeded sweep, QCheck, three engines)";
             ])
      with Stop v -> v)
