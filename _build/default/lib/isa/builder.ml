type t = {
  prefix : string;
  mutable rev_items : Program.item list;
  mutable next : int;
  mutable count : int;
}

let create ?(prefix = "L") () = { prefix; rev_items = []; next = 0; count = 0 }

let insn b i =
  b.rev_items <- Program.Insn i :: b.rev_items;
  b.count <- b.count + 1

let insns b is = List.iter (insn b) is
let label b l = b.rev_items <- Program.Label l :: b.rev_items

let fresh b stem =
  let l = Printf.sprintf "%s$%s%d" b.prefix stem b.next in
  b.next <- b.next + 1;
  l

let here b =
  let l = fresh b "here" in
  label b l;
  l

let length b = b.count
let to_source b = List.rev b.rev_items
