lib/core/mul_model.mli: Hppa_word
