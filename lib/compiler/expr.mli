(** Integer expressions — the input language of the mini-compiler.

    Just enough of a C-like expression language to reproduce the paper's
    §2 motivation: array/struct addressing that implies multiplications
    ([structureA[x][y]] needs [x * dim * size + y * size]), pointer
    differences that imply divisions, and loops amenable to strength
    reduction. Semantics are C at the compilation {!width}: wrap-around
    [+], [-], [*] over single words (W32) or double words (W64);
    division truncates toward zero and traps on zero divisors. *)

type width = W32 | W64
(** The width an expression is compiled and evaluated at. The paper's
    architecture is a 32-bit machine, so W64 values live in (hi:lo)
    register pairs and lower through the double-word kernel family. *)

type t =
  | Var of string
  | Const of int32
      (** valid at both widths; sign-extended when evaluated at W64 *)
  | Const64 of int64  (** a double-word constant; W64 only *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Rem of t * t
  | Neg of t

val eval : env:(string -> Hppa_word.Word.t) -> t -> Hppa_word.Word.t
(** Single-word (W32) reference semantics. Raises [Division_by_zero];
    unknown variables raise [Not_found] from [env]; [Const64] raises
    [Invalid_argument]. *)

val eval64 : env:(string -> int64) -> t -> int64
(** Double-word (W64) reference semantics: arithmetic wraps mod 2{^64},
    division truncates toward zero and raises [Division_by_zero] on a
    zero divisor. [-2{^63} / -1] evaluates to [-2{^63}] ([Int64.div]'s
    pinning); the compiled code's divI64w call traps there instead,
    which the differential suites assert separately. *)

val vars : t -> string list
(** Free variables, each once, in first-use order. *)

val mul_div_count : t -> int * int
(** Static (multiplies, divides) — the quantities strength reduction and
    the §2 discussion care about. *)

val pp : Format.formatter -> t -> unit
