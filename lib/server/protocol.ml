(* Wire protocol: total parsing of one request line. Random bytes, huge
   numbers, wrong arities — everything maps to Error, never an
   exception (the fuzz suite pins this). *)

module Word = Hppa_word.Word

type w64_op = W64_mul | W64_div | W64_rem

type request =
  | Mul of int32
  | Div of int32
  | Mulb of int32 list
  | Divb of int32 list
  | W64 of { op : w64_op; signed : bool; x : int64; y : int64 }
  | W64b of { op : w64_op; signed : bool; pairs : (int64 * int64) list }
  | Eval of string * Word.t list
  | Stats
  | Metrics
  | Ping
  | Quit

let w64_verb = function
  | W64_mul -> "W64MUL"
  | W64_div -> "W64DIV"
  | W64_rem -> "W64REM"

let verb = function
  | Mul _ -> "MUL"
  | Div _ -> "DIV"
  | Mulb _ -> "MULB"
  | Divb _ -> "DIVB"
  | W64 { op; _ } -> w64_verb op
  | W64b { op; _ } -> w64_verb op ^ "B"
  | Eval _ -> "EVAL"
  | Stats -> "STATS"
  | Metrics -> "METRICS"
  | Ping -> "PING"
  | Quit -> "QUIT"

let max_line_bytes = 1024

(* 64 operands of up to 11 characters plus separators and the verb fit
   comfortably inside [max_line_bytes]. *)
let max_batch_operands = 64

(* int64 decimal tokens run to 20 characters; 16 pairs (32 tokens) plus
   the signedness and the verb still fit in [max_line_bytes]. *)
let max_w64_batch_pairs = 16

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let ok payload = "OK " ^ one_line payload
let err detail = "ERR " ^ one_line detail

let is_ok s = String.length s >= 3 && String.sub s 0 3 = "OK "
let is_err s = String.length s >= 4 && String.sub s 0 4 = "ERR "

(* Printable excerpt of hostile input for error messages. *)
let excerpt s =
  let n = min (String.length s) 32 in
  let b = Buffer.create n in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if c >= ' ' && c <= '~' && c <> '"' then Buffer.add_char b c
    else Buffer.add_char b '?'
  done;
  if String.length s > n then Buffer.add_string b "...";
  Buffer.contents b

let int32_of_token tok =
  match Int64.of_string_opt tok with
  | None -> Error (Printf.sprintf "parse bad integer \"%s\"" (excerpt tok))
  | Some v ->
      if v < -0x8000_0000L || v > 0xFFFF_FFFFL then
        Error (Printf.sprintf "range %s does not fit in 32 bits" (excerpt tok))
      else Ok (Int64.to_int32 v)

(* W64 operands are full 64-bit values; decimal literals must fit int64
   (hex literals wrap like OCaml's [Int64.of_string]). *)
let int64_of_token tok =
  match Int64.of_string_opt tok with
  | None -> Error (Printf.sprintf "parse bad integer \"%s\"" (excerpt tok))
  | Some v -> Ok v

let signedness_of_token = function
  | "u" | "U" -> Ok false
  | "s" | "S" -> Ok true
  | tok ->
      Error
        (Printf.sprintf "parse bad signedness \"%s\" (expected u or s)"
           (excerpt tok))

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let label_ok s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_')
       s

(* Batch verbs take 1..max_batch_operands integers; one bad operand
   rejects the whole request (a partial batch would desynchronize the
   lane-indexed reply). *)
let batch name mk args =
  if args = [] then
    Error (Printf.sprintf "parse %s needs at least one integer" name)
  else if List.length args > max_batch_operands then
    Error
      (Printf.sprintf "parse %s takes at most %d integers" name
         max_batch_operands)
  else
    let rec convert acc = function
      | [] -> Ok (mk (List.rev acc))
      | tok :: rest -> (
          match int32_of_token tok with
          | Ok w -> convert (w :: acc) rest
          | Error e -> Error e)
    in
    convert [] args

let w64_scalar op = function
  | [ sign; x; y ] ->
      Result.bind (signedness_of_token sign) (fun signed ->
          Result.bind (int64_of_token x) (fun x ->
              Result.map
                (fun y -> W64 { op; signed; x; y })
                (int64_of_token y)))
  | _ ->
      Error
        (Printf.sprintf "parse %s takes a signedness and two integers"
           (w64_verb op))

(* Like MULB/DIVB, one bad token rejects the whole batch — and so does
   an odd operand count, which would leave a dangling half-pair. *)
let w64_batch op = function
  | [] ->
      Error
        (Printf.sprintf "parse %sB needs a signedness and operand pairs"
           (w64_verb op))
  | sign :: args ->
      Result.bind (signedness_of_token sign) (fun signed ->
          let n = List.length args in
          if n = 0 then
            Error
              (Printf.sprintf "parse %sB needs at least one operand pair"
                 (w64_verb op))
          else if n mod 2 <> 0 then
            Error
              (Printf.sprintf
                 "parse %sB takes x y operand pairs (odd operand count)"
                 (w64_verb op))
          else if n / 2 > max_w64_batch_pairs then
            Error
              (Printf.sprintf "parse %sB takes at most %d operand pairs"
                 (w64_verb op) max_w64_batch_pairs)
          else
            let rec convert acc = function
              | [] -> Ok (W64b { op; signed; pairs = List.rev acc })
              | x :: y :: rest -> (
                  match int64_of_token x with
                  | Error e -> Error e
                  | Ok x -> (
                      match int64_of_token y with
                      | Error e -> Error e
                      | Ok y -> convert ((x, y) :: acc) rest))
              | [ _ ] -> Error "parse internal odd operand count"
            in
            convert [] args)

let parse line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.length line > max_line_bytes then
    Error
      (Printf.sprintf "oversized request exceeds %d bytes" max_line_bytes)
  else
    match tokens line with
    | [] -> Error "parse empty request"
    | cmd :: rest -> (
        match (String.uppercase_ascii cmd, rest) with
        | "MUL", [ n ] -> Result.map (fun n -> Mul n) (int32_of_token n)
        | "MUL", _ -> Error "parse MUL takes exactly one integer"
        | "DIV", [ d ] -> Result.map (fun d -> Div d) (int32_of_token d)
        | "DIV", _ -> Error "parse DIV takes exactly one integer"
        | "MULB", args -> batch "MULB" (fun ns -> Mulb ns) args
        | "DIVB", args -> batch "DIVB" (fun ds -> Divb ds) args
        | "W64MUL", args -> w64_scalar W64_mul args
        | "W64DIV", args -> w64_scalar W64_div args
        | "W64REM", args -> w64_scalar W64_rem args
        | "W64MULB", args -> w64_batch W64_mul args
        | "W64DIVB", args -> w64_batch W64_div args
        | "W64REMB", args -> w64_batch W64_rem args
        | "EVAL", entry :: args ->
            if not (label_ok entry) then
              Error
                (Printf.sprintf "parse bad entry label \"%s\"" (excerpt entry))
            else if List.length args > 4 then
              Error "parse EVAL takes at most four arguments"
            else
              let rec convert acc = function
                | [] -> Ok (Eval (entry, List.rev acc))
                | tok :: rest -> (
                    match int32_of_token tok with
                    | Ok w -> convert (w :: acc) rest
                    | Error e -> Error e)
              in
              convert [] args
        | "EVAL", [] -> Error "parse EVAL needs an entry label"
        | "STATS", [] -> Ok Stats
        | "STATS", _ -> Error "parse STATS takes no arguments"
        | "METRICS", [] -> Ok Metrics
        | "METRICS", _ -> Error "parse METRICS takes no arguments"
        | "PING", [] -> Ok Ping
        | "PING", _ -> Error "parse PING takes no arguments"
        | "QUIT", [] -> Ok Quit
        | "QUIT", _ -> Error "parse QUIT takes no arguments"
        | _ ->
            Error (Printf.sprintf "parse unknown command \"%s\"" (excerpt cmd)))

let pp_request ppf = function
  | Mul n -> Format.fprintf ppf "MUL %ld" n
  | Div d -> Format.fprintf ppf "DIV %ld" d
  | Mulb ns ->
      Format.fprintf ppf "MULB";
      List.iter (fun n -> Format.fprintf ppf " %ld" n) ns
  | Divb ds ->
      Format.fprintf ppf "DIVB";
      List.iter (fun d -> Format.fprintf ppf " %ld" d) ds
  | W64 { op; signed; x; y } ->
      Format.fprintf ppf "%s %s %Ld %Ld" (w64_verb op)
        (if signed then "s" else "u")
        x y
  | W64b { op; signed; pairs } ->
      Format.fprintf ppf "%sB %s" (w64_verb op) (if signed then "s" else "u");
      List.iter (fun (x, y) -> Format.fprintf ppf " %Ld %Ld" x y) pairs
  | Eval (e, args) ->
      Format.fprintf ppf "EVAL %s" e;
      List.iter (fun w -> Format.fprintf ppf " %ld" w) args
  | Stats -> Format.pp_print_string ppf "STATS"
  | Metrics -> Format.pp_print_string ppf "METRICS"
  | Ping -> Format.pp_print_string ppf "PING"
  | Quit -> Format.pp_print_string ppf "QUIT"
