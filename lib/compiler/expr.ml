module Word = Hppa_word.Word

type width = W32 | W64

type t =
  | Var of string
  | Const of int32
  | Const64 of int64
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Rem of t * t
  | Neg of t

let rec eval ~env = function
  | Var v -> env v
  | Const c -> c
  | Const64 _ ->
      invalid_arg "Expr.eval: 64-bit constant in a single-word evaluation"
  | Add (a, b) -> Word.add (eval ~env a) (eval ~env b)
  | Sub (a, b) -> Word.sub (eval ~env a) (eval ~env b)
  | Mul (a, b) -> Word.mul_lo (eval ~env a) (eval ~env b)
  | Div (a, b) -> fst (Word.divmod_trunc_s (eval ~env a) (eval ~env b))
  | Rem (a, b) -> snd (Word.divmod_trunc_s (eval ~env a) (eval ~env b))
  | Neg a -> Word.neg (eval ~env a)

(* Double-word reference semantics: [Int64] arithmetic is exactly
   wrap-around mod 2^64, and [Int64.div]/[Int64.rem] truncate toward
   zero (OCaml pins [min_int / -1] to [min_int] rather than trapping;
   the machine's divI64w breaks there — the differential suites assert
   that trap separately). *)
let rec eval64 ~env = function
  | Var v -> env v
  | Const c -> Int64.of_int32 c
  | Const64 c -> c
  | Add (a, b) -> Int64.add (eval64 ~env a) (eval64 ~env b)
  | Sub (a, b) -> Int64.sub (eval64 ~env a) (eval64 ~env b)
  | Mul (a, b) -> Int64.mul (eval64 ~env a) (eval64 ~env b)
  | Div (a, b) -> Int64.div (eval64 ~env a) (eval64 ~env b)
  | Rem (a, b) -> Int64.rem (eval64 ~env a) (eval64 ~env b)
  | Neg a -> Int64.neg (eval64 ~env a)

let vars e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          out := v :: !out
        end
    | Const _ | Const64 _ -> ()
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Rem (a, b) ->
        go a;
        go b
    | Neg a -> go a
  in
  go e;
  List.rev !out

let mul_div_count e =
  let rec go (m, d) = function
    | Var _ | Const _ | Const64 _ -> (m, d)
    | Mul (a, b) -> go (go (m + 1, d) a) b
    | Div (a, b) | Rem (a, b) -> go (go (m, d + 1) a) b
    | Add (a, b) | Sub (a, b) -> go (go (m, d) a) b
    | Neg a -> go (m, d) a
  in
  go (0, 0) e

let rec pp ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const c -> Format.fprintf ppf "%ld" c
  | Const64 c -> Format.fprintf ppf "%LdL" c
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Rem (a, b) -> Format.fprintf ppf "(%a %% %a)" pp a pp b
  | Neg a -> Format.fprintf ppf "(-%a)" pp a
