type stats = { branches : int; filled : int; nullified : int }

(* An instruction that may nullify its successor: moving its successor, or
   parking a branch in its shadow, changes which instruction it annuls. *)
let is_nullifier : type lbl. lbl Insn.t -> bool = function
  | Comclr _ | Comiclr _ -> true
  | Extr { cond; _ } -> not (Cond.equal cond Cond.Never)
  | _ -> false

(* Instructions that may trap keep their program position so trap PCs and
   pre-trap architectural state stay exact. *)
let may_trap : type lbl. lbl Insn.t -> bool = function
  | Alu { trap_ov; _ } | Addi { trap_ov; _ } | Subi { trap_ov; _ } -> trap_ov
  | Ldw _ | Stw _ | Break _ -> true
  | _ -> false

let writes_real i =
  match Insn.writes i with
  | Some r when Reg.equal r Reg.r0 -> None
  | w -> w

(* May instruction [p] move into the delay slot of branch [b]? [q] is the
   item preceding [p] (its nullification shadow and fallthrough source). *)
let movable ~q ~p ~b =
  let ok_q =
    match q with
    | None | Some (Program.Label _) -> true
    | Some (Program.Insn qi) -> not (is_nullifier qi || Insn.is_branch qi)
  in
  ok_q
  && (not (Insn.is_branch p))
  && (not (is_nullifier p))
  && (not (may_trap p))
  && p <> Insn.Nop
  &&
  let br = Insn.reads b and pr = Insn.reads p in
  let bw = writes_real b and pw = writes_real p in
  (match pw with
  | Some w -> not (List.exists (Reg.equal w) br)
  | None -> true)
  && (match bw with
     | Some w ->
         (not (List.exists (Reg.equal w) pr))
         && not (match pw with Some w' -> Reg.equal w w' | None -> false)
     | None -> true)

(* Linking branches put their return point (or case table) two
   instructions ahead, so their slot must be materialised even when
   nothing fills it — otherwise the return would skip the instruction the
   simple-model code placed right after the call. *)
let needs_slot_insn : string Insn.t -> bool = function
  | Blr _ | Bl _ -> true
  | _ -> false

let transform ~fill (src : Program.source) : Program.source =
  let arr = Array.of_list src in
  let n = Array.length arr in
  (* claimed.(i): instruction i moves into the slot of the branch at i+1. *)
  let claimed = Array.make n false in
  if fill then
    for i = 0 to n - 1 do
      match arr.(i) with
      | Program.Insn b when Insn.is_branch b && i > 0 && not claimed.(i - 1) -> (
          match arr.(i - 1) with
          | Program.Insn p ->
              let q = if i >= 2 then Some arr.(i - 2) else None in
              if movable ~q ~p ~b then claimed.(i - 1) <- true
          | Program.Label _ -> ())
      | Program.Insn _ | Program.Label _ -> ()
    done;
  let out = ref [] in
  let emit item = out := item :: !out in
  Array.iteri
    (fun i item ->
      match item with
      | Program.Label _ -> emit item
      | Program.Insn insn when claimed.(i) -> ignore insn (* emitted after its branch *)
      | Program.Insn b when Insn.is_branch b ->
          let filled = i > 0 && claimed.(i - 1) in
          if filled then begin
            emit (Program.Insn (Insn.set_n false b));
            match arr.(i - 1) with
            | Program.Insn p -> emit (Program.Insn p)
            | Program.Label _ -> assert false
          end
          else begin
            emit (Program.Insn (Insn.set_n true b));
            if needs_slot_insn b then emit (Program.Insn Insn.Nop)
          end
      | Program.Insn _ -> emit item)
    arr;
  (* A trailing branch still fetches its slot: give it one. *)
  let ends_with_branch =
    match !out with
    | Program.Insn i :: _ -> Insn.is_branch i
    | _ -> false
  in
  if ends_with_branch then emit (Program.Insn Insn.Nop);
  List.rev !out

let naive src = transform ~fill:false src
let schedule src = transform ~fill:true src

let stats_of (src : Program.source) =
  List.fold_left
    (fun acc item ->
      match item with
      | Program.Insn i when Insn.is_branch i ->
          if Insn.get_n i then
            { acc with branches = acc.branches + 1; nullified = acc.nullified + 1 }
          else { acc with branches = acc.branches + 1; filled = acc.filled + 1 }
      | Program.Insn _ | Program.Label _ -> acc)
    { branches = 0; filled = 0; nullified = 0 }
    src
