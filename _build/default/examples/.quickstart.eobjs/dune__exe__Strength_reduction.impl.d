examples/strength_reduction.ml: Expr Format Hppa Hppa_compiler Hppa_machine Hppa_word List Loop_ir Lower_loop Program Reg Strength
