type t = { hi : int64; lo : int64 }

let zero = { hi = 0L; lo = 0L }
let of_int64 lo = { hi = 0L; lo }

let add a b =
  let lo = Int64.add a.lo b.lo in
  let carry = if Int64.unsigned_compare lo a.lo < 0 then 1L else 0L in
  { hi = Int64.add (Int64.add a.hi b.hi) carry; lo }

let mul_64_64 x y =
  (* Schoolbook with 32-bit limbs. *)
  let mask = 0xffff_ffffL in
  let xl = Int64.logand x mask and xh = Int64.shift_right_logical x 32 in
  let yl = Int64.logand y mask and yh = Int64.shift_right_logical y 32 in
  let ll = Int64.mul xl yl in
  let lh = Int64.mul xl yh in
  let hl = Int64.mul xh yl in
  let hh = Int64.mul xh yh in
  let mid = Int64.add lh hl in
  let mid_carry = if Int64.unsigned_compare mid lh < 0 then 0x1_0000_0000L else 0L in
  let lo = Int64.add ll (Int64.shift_left mid 32) in
  let lo_carry = if Int64.unsigned_compare lo ll < 0 then 1L else 0L in
  let hi =
    Int64.add
      (Int64.add hh (Int64.shift_right_logical mid 32))
      (Int64.add mid_carry lo_carry)
  in
  { hi; lo }

let sub a b =
  let lo = Int64.sub a.lo b.lo in
  let borrow = if Int64.unsigned_compare a.lo b.lo < 0 then 1L else 0L in
  { hi = Int64.sub (Int64.sub a.hi b.hi) borrow; lo }

let shift_left a k =
  assert (k >= 0 && k < 128);
  if k = 0 then a
  else if k < 64 then
    {
      hi =
        Int64.logor (Int64.shift_left a.hi k)
          (Int64.shift_right_logical a.lo (64 - k));
      lo = Int64.shift_left a.lo k;
    }
  else { hi = Int64.shift_left a.lo (k - 64); lo = 0L }

let shift_right a k =
  assert (k >= 0 && k < 128);
  if k = 0 then a
  else if k < 64 then
    {
      hi = Int64.shift_right_logical a.hi k;
      lo =
        Int64.logor
          (Int64.shift_right_logical a.lo k)
          (Int64.shift_left a.hi (64 - k));
    }
  else { hi = 0L; lo = Int64.shift_right_logical a.hi (k - 64) }

let to_int64 a = a.lo
let fits_int64 a = a.hi = 0L

let compare a b =
  match Int64.unsigned_compare a.hi b.hi with
  | 0 -> Int64.unsigned_compare a.lo b.lo
  | c -> c

let equal a b = a.hi = b.hi && a.lo = b.lo

(* Restoring shift-subtract loop: obviously correct, and only used as
   the OCaml reference the 128/64 millicode divide is checked against,
   so simplicity beats speed. Requires [y <> 0] and, for the quotient
   to fit one dword, callers additionally require [x.hi <
   unsigned y]. *)
let divmod_64 x y =
  if y = 0L then invalid_arg "U128.divmod_64: divide by zero";
  let q = ref zero and r = ref zero in
  for i = 127 downto 0 do
    (* r = 2r + bit i of x *)
    let bit =
      if i >= 64 then Int64.logand (Int64.shift_right_logical x.hi (i - 64)) 1L
      else Int64.logand (Int64.shift_right_logical x.lo i) 1L
    in
    r := add (shift_left !r 1) { hi = 0L; lo = bit };
    q := shift_left !q 1;
    if compare !r { hi = 0L; lo = y } >= 0 then begin
      r := sub !r { hi = 0L; lo = y };
      q := add !q { hi = 0L; lo = 1L }
    end
  done;
  (!q, (!r).lo)
let pp ppf a = Format.fprintf ppf "0x%Lx_%016Lx" a.hi a.lo
