lib/isa/insn.ml: Cond Format Int32 Printf Reg
