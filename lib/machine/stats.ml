type t = {
  mutable executed : int;
  mutable nullified : int;
  mutable branches_taken : int;
  histogram : (string, int) Hashtbl.t;
}

let create () =
  { executed = 0; nullified = 0; branches_taken = 0; histogram = Hashtbl.create 32 }

let reset t =
  t.executed <- 0;
  t.nullified <- 0;
  t.branches_taken <- 0;
  Hashtbl.reset t.histogram

let record t ~nullified ~mnemonic =
  if nullified then t.nullified <- t.nullified + 1
  else begin
    t.executed <- t.executed + 1;
    let prev = Option.value ~default:0 (Hashtbl.find_opt t.histogram mnemonic) in
    Hashtbl.replace t.histogram mnemonic (prev + 1)
  end

let record_branch_taken t = t.branches_taken <- t.branches_taken + 1

(* Bulk variants for the threaded engine, which counts locally during a run
   and settles the totals once on exit. *)
let add_executed t ~mnemonic n =
  if n > 0 then begin
    t.executed <- t.executed + n;
    let prev = Option.value ~default:0 (Hashtbl.find_opt t.histogram mnemonic) in
    Hashtbl.replace t.histogram mnemonic (prev + n)
  end

let add_nullified t n = if n > 0 then t.nullified <- t.nullified + n
let add_branches_taken t n = if n > 0 then t.branches_taken <- t.branches_taken + n
let cycles t = t.executed + t.nullified
let executed t = t.executed
let nullified t = t.nullified
let branches_taken t = t.branches_taken

let by_mnemonic t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.histogram []
  |> List.sort (fun (k1, v1) (k2, v2) ->
         match compare v2 v1 with 0 -> compare k1 k2 | c -> c)

let diff ~before ~after = cycles after - cycles before

let snapshot t =
  {
    executed = t.executed;
    nullified = t.nullified;
    branches_taken = t.branches_taken;
    histogram = Hashtbl.copy t.histogram;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>cycles: %d (executed %d, nullified %d, taken branches %d)"
    (cycles t) t.executed t.nullified t.branches_taken;
  List.iter (fun (m, n) -> Format.fprintf ppf "@,  %-12s %d" m n) (by_mnemonic t);
  Format.fprintf ppf "@]"
