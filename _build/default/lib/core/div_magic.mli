(** The derived method for division by constants (§7).

    For a known divisor [y], choose [z = 2^s] and derive [a = floor(z/y)]
    and an adjustment [b] such that [q'(x) = (a*x + b) / z] truncates to
    [floor (x/y)] for all [x] in [0 .. (K+1)*y - 1]. The module follows the
    paper's derivation exactly: [r = z - a*y]; if [r = 0] then [b = 0] and
    the range is unbounded, otherwise [b = a + r - 1] maximises the covered
    range, with [K = floor (b/r)]. [s] is the smallest exponent ([>= 32])
    whose coverage reaches the requested dividend range.

    [b = a + r - 1] means [a*x + b = a*(x+1) + (r - 1)], the form the
    generated code uses — when [r = 1] the final addition disappears
    (paper, Figure 6 discussion). *)

type t = {
  y : int32;  (** odd divisor >= 3 *)
  s : int;  (** z = 2^s *)
  a : int64;  (** floor(z/y); may exceed 32 bits (e.g. y = 11) *)
  r : int64;  (** z - a*y *)
  b : int64;  (** the adjustment; 0 when r = 0 *)
  coverage : int64;
      (** (K+1)*y — exact division holds for x < coverage;
          [Int64.max_int] when r = 0 *)
}

val derive : ?range:int64 -> int32 -> t
(** [derive y] for odd [y >= 3]. [range] (default [2^32]) is the dividend
    range that must be covered; pass [2^31] for signed-only divisions,
    which can shrink [a] below 33 bits (the paper's [y = 11] remark).
    Raises [Invalid_argument] on even or trivial divisors. *)

val eval : t -> Hppa_word.Word.t -> Hppa_word.Word.t
(** Reference evaluation of the truncated [q'] on an unsigned dividend,
    computed in 128-bit arithmetic. For in-range [x] this equals
    [Word.divmod_u x y |> fst] — the theorem the tests check. *)

val figure6 : unit -> t list
(** The paper's Figure 6 rows: [y] in {3, 5, 7, 9, 11, 13, 15, 17, 19}. *)

val pp : Format.formatter -> t -> unit
(** One Figure 6 row: y, z, r, a, (K+1)y with hex fields as printed
    there. *)
