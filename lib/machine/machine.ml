(* Public facade over the machine state ({!Cpu}) and the two execution
   engines: the per-instruction reference interpreter and the
   closure-threaded engine ({!Engine}). [run] picks the engine
   transparently whenever the requested semantics are within its reach,
   so callers — bench, chainc, hppa_run — get the fast path for free. *)

include Cpu

(* The threaded engine implements the default branch model with no
   observation hooks; everything else stays on the reference
   interpreter. [pending] is always [None] outside delay-slot mode, but
   check it anyway so a hand-stepped machine can never be mis-entered. *)
let engine_eligible t =
  t.engine_enabled && (not t.delay)
  && (match t.trace with None -> true | Some _ -> false)
  && (match t.icache with None -> true | Some _ -> false)
  && (match t.pending with None -> true | Some _ -> false)
  && t.pc >= 0
  && t.pc < Array.length t.prog.code

let run ?(fuel = 1_000_000) t =
  if t.halted then Halted
  else if engine_eligible t then begin
    t.used_engine <- true;
    let eng =
      match t.engine with
      | Some e -> e
      | None ->
          let e = Engine.make t in
          t.engine <- Some e;
          e
    in
    eng fuel
  end
  else begin
    t.used_engine <- false;
    Cpu.run ~fuel t
  end

let set_engine t enabled = t.engine_enabled <- enabled
let engine_enabled t = t.engine_enabled
let used_engine t = t.used_engine

let arg_regs = [ Reg.arg0; Reg.arg1; Reg.arg2; Reg.arg3 ]

let call ?fuel t name ~args =
  let entry =
    match Program.symbol t.prog name with
    | Some a -> a
    | None -> invalid_arg (Printf.sprintf "Machine.call: no entry point %S" name)
  in
  if List.length args > 4 then invalid_arg "Machine.call: more than 4 arguments";
  List.iteri (fun i v -> set t (List.nth arg_regs i) v) args;
  set t Reg.rp halt_sentinel;
  set t Reg.mrp halt_sentinel;
  t.halted <- false;
  t.nullify <- false;
  t.pending <- None;
  t.pc <- entry;
  run ?fuel t

let call_cycles ?fuel t name ~args =
  let before = Stats.cycles t.stats in
  let outcome = call ?fuel t name ~args in
  (outcome, Stats.cycles t.stats - before)
