(* hppa-serve: the millicode plan service and its load generator.

   Examples:
     hppa-serve serve --socket /tmp/hppa.sock --shards 4
     hppa-serve serve --port 7117 --trace-json serve-trace.jsonl
     hppa-serve load --socket /tmp/hppa.sock --requests 50000 --conns 4 \
       --dist zipf --min-hit-rate 0.9 --out BENCH_SERVE.json
     hppa-serve load --socket /tmp/hppa.sock --requests 1000000 --conns 8 \
       --dist zipf --rate 50000
     hppa-serve metrics --socket /tmp/hppa.sock --min-hit-rate 0.9 \
       --max-p99-us 200000

   Protocol (one line in, one line out; pipelining allowed): MUL <n>,
   DIV <d>, W64MUL/W64DIV/W64REM, their batch forms, EVAL <entry>
   <args...>, STATS, METRICS, PING, QUIT — see README "Serving". *)

module Server = Hppa_server.Server
module Load_gen = Hppa_server.Load_gen
module Obs = Hppa_obs.Obs

let endpoint socket port host =
  match port with
  | Some p -> Server.Config.Tcp (host, p)
  | None -> Server.Config.Unix_socket socket

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let serve socket port host shards cache fuel pipeline_depth trace_json plans
    certified =
  let shards =
    match shards with
    | Some s -> s
    | None -> max 2 (Hppa_machine.Sweep.default_domains ())
  in
  let cfg =
    {
      Server.Config.default with
      Server.Config.endpoint = endpoint socket port host;
      shards;
      cache_capacity = cache;
      fuel;
      pipeline_depth;
      trace_path = trace_json;
      plans_path = plans;
      certified;
    }
  in
  let srv =
    match Server.create cfg with
    | srv -> srv
    | exception Invalid_argument msg ->
        Printf.eprintf "hppa-serve: %s\n%!" msg;
        exit 2
  in
  let where =
    match cfg.Server.Config.endpoint with
    | Server.Config.Unix_socket p -> Printf.sprintf "unix:%s" p
    | Server.Config.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p
  in
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> Server.stop srv)))
    [ Sys.sigint; Sys.sigterm ];
  Printf.eprintf
    "hppa-serve: listening on %s (%d shards, cache %d, fuel %d, pipeline \
     depth %d%s)\n\
     %!"
    where shards cache fuel pipeline_depth
    (if certified then ", certified-only" else "");
  (match Server.run srv with
  | () -> ()
  | exception Unix.Unix_error (e, _, arg) ->
      Printf.eprintf "hppa-serve: cannot listen on %s: %s %s\n%!" where
        (Unix.error_message e) arg;
      exit 2);
  Format.eprintf "%a@." Server.pp_dump srv;
  0

(* ------------------------------------------------------------------ *)
(* load                                                                *)

let load socket port host requests conns dist seed out min_hit_rate
    allow_errors batch_width rate =
  match Load_gen.dist_of_string dist with
  | Error msg ->
      Printf.eprintf "hppa-serve load: %s\n" msg;
      2
  | Ok dist -> (
      let endpoint = endpoint socket port host in
      let rate =
        match rate with Some r when r > 0.0 -> Some r | _ -> None
      in
      match
        Load_gen.run ~batch_width ?rate ~endpoint ~requests ~conns ~dist
          ~seed:(Int64.of_int seed) ()
      with
      | Error msg ->
          Printf.eprintf "hppa-serve load: %s\n" msg;
          2
      | Ok summary ->
          Format.printf "%a@." Load_gen.pp_summary summary;
          Load_gen.write_json ~path:out summary;
          Printf.printf "wrote %s\n" out;
          let hit_rate_failed =
            match min_hit_rate with
            | None -> false
            | Some floor -> (
                match Load_gen.hit_rate summary with
                | Some r when r >= floor -> false
                | Some r ->
                    Printf.eprintf
                      "hppa-serve load: cache hit rate %.4f below required \
                       %.4f\n"
                      r floor;
                    true
                | None ->
                    Printf.eprintf
                      "hppa-serve load: server reported no cache_hit_rate\n";
                    true)
          in
          let errors_failed =
            (not allow_errors) && summary.Load_gen.errors > 0
          in
          if errors_failed then
            Printf.eprintf
              "hppa-serve load: %d protocol error(s) (pass --allow-errors \
               to tolerate)\n"
              summary.Load_gen.errors;
          let batch_failed = summary.Load_gen.batch_mismatches > 0 in
          if batch_failed then
            Printf.eprintf
              "hppa-serve load: %d batch lane(s) not byte-identical to the \
               scalar reply\n"
              summary.Load_gen.batch_mismatches;
          if hit_rate_failed || errors_failed || batch_failed then 1 else 0)

(* ------------------------------------------------------------------ *)
(* metrics                                                             *)

(* p99 of the served-request latency histogram, recomputed from the
   scraped cumulative [hppa_serve_latency_us_bucket{le=...}] series with
   the same semantics as [Obs.Histogram.percentile]: rank =
   ceil(q/100 * count) clamped to [1, count], report the upper bound of
   the first bucket whose cumulative count reaches the rank. *)
let scrape_p99 samples =
  let buckets =
    List.filter_map
      (fun (name, labels, v) ->
        if String.equal name "hppa_serve_latency_us_bucket" then
          match List.assoc_opt "le" labels with
          | Some "+Inf" -> Some (infinity, v)
          | Some le -> (
              match float_of_string_opt le with
              | Some bound -> Some (bound, v)
              | None -> None)
          | None -> None
        else None)
      samples
  in
  match buckets with
  | [] -> None
  | buckets ->
      let buckets =
        List.sort (fun (a, _) (b, _) -> Float.compare a b) buckets
      in
      let total =
        List.fold_left (fun acc (_, c) -> Float.max acc c) 0.0 buckets
      in
      if total <= 0.0 then Some 0.0
      else begin
        let rank =
          Float.max 1.0 (Float.min total (Float.ceil (0.99 *. total)))
        in
        let hit =
          List.find_opt (fun (_, cumulative) -> cumulative >= rank) buckets
        in
        match hit with
        | Some (bound, _) -> Some bound
        | None -> Some infinity
      end

(* Scrape a running daemon: send METRICS, read until the "# EOF"
   terminator, check the text parses, optionally gate on the cache hit
   rate and the p99 latency — the shell side of CI stays a one-liner. *)
let metrics socket port host min_hit_rate max_p99_us out =
  let addr =
    match endpoint socket port host with
    | Server.Config.Unix_socket p -> Unix.ADDR_UNIX p
    | Server.Config.Tcp (h, p) ->
        let a =
          try (Unix.gethostbyname h).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback
        in
        Unix.ADDR_INET (a, p)
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | exception Unix.Unix_error (e, _, arg) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Printf.eprintf "hppa-serve metrics: cannot connect: %s %s\n"
        (Unix.error_message e) arg;
      2
  | () -> (
      let finish code =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        code
      in
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc "METRICS\n";
      flush oc;
      let buf = Buffer.create 4096 in
      let rec read_scrape () =
        match input_line ic with
        | "# EOF" ->
            Buffer.add_string buf "# EOF\n";
            true
        | line ->
            Buffer.add_string buf line;
            Buffer.add_char buf '\n';
            read_scrape ()
        | exception End_of_file -> false
      in
      let complete = read_scrape () in
      let text = Buffer.contents buf in
      if not complete then begin
        Printf.eprintf
          "hppa-serve metrics: connection closed before \"# EOF\"\n";
        finish 2
      end
      else begin
        (match out with
        | None -> print_string text
        | Some path ->
            let file = open_out path in
            output_string file text;
            close_out file;
            Printf.printf "wrote %s\n" path);
        match Obs.Export.parse_prometheus text with
        | Error msg ->
            Printf.eprintf "hppa-serve metrics: scrape does not parse: %s\n"
              msg;
            finish 1
        | Ok samples ->
            Printf.printf "scrape ok: %d samples\n" (List.length samples);
            let hit_rate_failed =
              match min_hit_rate with
              | None -> false
              | Some floor -> (
                  match
                    Obs.Export.find samples "hppa_serve_cache_hit_rate"
                  with
                  | Some r when r >= floor ->
                      Printf.printf "cache_hit_rate %.4f >= %.4f\n" r floor;
                      false
                  | Some r ->
                      Printf.eprintf
                        "hppa-serve metrics: cache hit rate %.4f below \
                         required %.4f\n"
                        r floor;
                      true
                  | None ->
                      Printf.eprintf
                        "hppa-serve metrics: no hppa_serve_cache_hit_rate \
                         in scrape\n";
                      true)
            in
            let p99_failed =
              match max_p99_us with
              | None -> false
              | Some ceiling -> (
                  match scrape_p99 samples with
                  | Some p99 when p99 <= ceiling ->
                      Printf.printf "latency p99 %.0fus <= %.0fus\n" p99
                        ceiling;
                      false
                  | Some p99 ->
                      Printf.eprintf
                        "hppa-serve metrics: latency p99 %.0fus above \
                         allowed %.0fus\n"
                        p99 ceiling;
                      true
                  | None ->
                      Printf.eprintf
                        "hppa-serve metrics: no hppa_serve_latency_us \
                         histogram in scrape\n";
                      true)
            in
            if hit_rate_failed || p99_failed then finish 1 else finish 0
      end)

(* ------------------------------------------------------------------ *)

open Cmdliner

let socket =
  Arg.(
    value
    & opt string "hppa-serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path.")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"Listen on (or connect to) TCP $(docv) instead of the Unix socket.")

let host =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with $(b,--port)).")

let serve_cmd =
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info
          [ "shards"; "w"; "workers" ]
          ~docv:"N"
          ~doc:
            "Cache/compute shards, each owning one worker domain and a \
             slice of the plan cache ($(b,--workers) is kept as an alias; \
             default: the machine's recommended domain count, at least 2).")
  in
  let cache =
    Arg.(
      value & opt int 4096
      & info [ "cache" ] ~docv:"N"
          ~doc:"Plan-cache capacity in entries, split across shards.")
  in
  let fuel =
    Arg.(
      value & opt int 1_000_000
      & info [ "fuel" ] ~docv:"CYCLES"
          ~doc:"Per-EVAL simulated-cycle budget.")
  in
  let pipeline_depth =
    Arg.(
      value
      & opt int Server.Config.default.Server.Config.pipeline_depth
      & info [ "pipeline-depth" ] ~docv:"N"
          ~doc:
            "Maximum requests in flight per connection; further input \
             stays in the socket buffer (back-pressure).")
  in
  let trace_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-json" ] ~docv:"PATH"
          ~doc:
            "Keep a bounded per-request event trace and write it as JSON \
             Lines to $(docv) at shutdown.")
  in
  let plans =
    Arg.(
      value
      & opt (some string) None
      & info [ "plans" ] ~docv:"PATH"
          ~doc:
            "Warm-start from a $(docv) BENCH_PLANS.json store (written by \
             $(b,bench plans)): every measured MUL/DIV request is \
             pre-computed into the plan cache before the socket opens.")
  in
  let certified =
    Arg.(
      value & flag
      & info [ "certified" ]
          ~doc:
            "Certified-only serving: every MUL/DIV plan must carry a \
             machine-checked certificate (linear-form proof for multiply \
             chains, reciprocal coverage bound for constant divides, \
             divide-step schema for the millicode fallback). Strategies \
             the certifier cannot prove are passed over; reply bytes are \
             unchanged.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the plan daemon until SIGINT/SIGTERM, then drain in-flight \
          requests, dump statistics and exit.")
    Term.(
      const serve $ socket $ port $ host $ shards $ cache $ fuel
      $ pipeline_depth $ trace_json $ plans $ certified)

let load_cmd =
  let requests =
    Arg.(
      value & opt int 10_000
      & info [ "n"; "requests" ] ~docv:"N" ~doc:"Total requests to send.")
  in
  let conns =
    Arg.(
      value & opt int 4
      & info [ "c"; "conns" ] ~docv:"K" ~doc:"Concurrent connections.")
  in
  let dist =
    Arg.(
      value & opt string "figure5"
      & info [ "dist" ] ~docv:"DIST"
          ~doc:
            "Request distribution: $(b,figure5) (EVAL with the paper's \
             operand model), $(b,zipf) (Zipf-skewed MUL/DIV constants), \
             $(b,smalldiv), $(b,mixed), or $(b,w64mix) (Zipf MUL/DIV \
             with double-word W64MUL/W64DIV/W64REM traffic mixed in).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for the request stream.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_SERVE.json"
      & info [ "out" ] ~docv:"PATH" ~doc:"Where to write the JSON summary.")
  in
  let min_hit_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-hit-rate" ] ~docv:"R"
          ~doc:
            "Fail (exit 1) unless the server-reported cache hit rate is at \
             least $(docv).")
  in
  let allow_errors =
    Arg.(
      value & flag
      & info [ "allow-errors" ]
          ~doc:"Do not fail when some requests draw ERR replies.")
  in
  let batch_width =
    Arg.(
      value & opt int 1
      & info [ "batch-width" ] ~docv:"W"
          ~doc:
            "Coalesce each window of $(docv) requests into MULB/DIVB \
             batch lines (1 = all-scalar). The first batch per \
             connection is cross-checked byte-for-byte against scalar \
             replies; any mismatch fails the run.")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:
            "Open-loop mode: offer $(docv) requests per second in total \
             (split across connections) on a seeded Poisson arrival \
             schedule, pipelining into the server when replies lag, and \
             measure latency from each request's scheduled arrival \
             (coordinated-omission-free). 0 or absent = closed loop.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive a running daemon with a seeded workload and write \
          BENCH_SERVE.json. Exits non-zero on any protocol error (unless \
          $(b,--allow-errors)), an unmet $(b,--min-hit-rate), or any \
          batch/scalar reply mismatch under $(b,--batch-width).")
    Term.(
      const load $ socket $ port $ host $ requests $ conns $ dist $ seed
      $ out $ min_hit_rate $ allow_errors $ batch_width $ rate)

let metrics_cmd =
  let min_hit_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-hit-rate" ] ~docv:"R"
          ~doc:
            "Fail (exit 1) unless the scraped \
             $(b,hppa_serve_cache_hit_rate) gauge is at least $(docv).")
  in
  let max_p99_us =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-p99-us" ] ~docv:"US"
          ~doc:
            "Fail (exit 1) unless the p99 of the scraped \
             $(b,hppa_serve_latency_us) histogram (recomputed from the \
             cumulative buckets) is at most $(docv) microseconds.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PATH"
          ~doc:"Write the scrape text to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Scrape a running daemon's METRICS endpoint, verify the \
          Prometheus text parses, and optionally gate on the cache hit \
          rate and p99 latency.")
    Term.(const metrics $ socket $ port $ host $ min_hit_rate $ max_p99_us $ out)

let cmd =
  Cmd.group
    (Cmd.info "hppa-serve"
       ~doc:
         "Concurrent millicode plan service: addition-chain multiply plans, \
          constant-divide plans and simulator evaluations over a \
          pipelined line-oriented socket protocol")
    [ serve_cmd; load_cmd; metrics_cmd ]

let () = exit (Cmd.eval' cmd)
