lib/core/div_gen.mli: Hppa_word Program
