(** Measure candidate strategies on the simulator and remember verdicts.

    The paper's cycle counts are measured, not modelled: §6 walks the
    multiply ladder by running each algorithm over an operand mix
    (Figure 5), and §7's "worth it" caveats (the [y = 11] reciprocal
    that loses to [divU]) come from the same discipline. This pass
    replays that: every candidate for a request is run on the threaded
    engine ({!Hppa_machine.Machine} with [Config.engine]) over a seeded
    operand workload, verdicts are cached in a content-addressed
    {!Store} keyed by the digest of the encoded binary (so a plan that
    re-emits byte-identically is never re-measured), and the store
    serializes to/from [BENCH_PLANS.json] so [hppa-serve] can
    warm-start. *)

module Word = Hppa_word.Word

(** Seeded operand workloads (the {!Hppa_dist.Operand_dist} models).
    For a [Constant c] request the second operand is pinned to [c];
    zero run-time divisors are nudged to one. *)
type workload =
  | Figure5 of { samples : int; seed : int64 }
      (** the paper's multiply operand mix *)
  | Log_uniform of { samples : int; seed : int64 }
  | Small_divisors of { samples : int; seed : int64 }
      (** dividend log-uniform, divisor uniform in [1..19] *)
  | Fixed of (Word.t * Word.t) list
  | Uniform64 of { samples : int; seed : int64 }
      (** both operands uniform over 64 bits *)
  | Zipf64 of { samples : int; seed : int64 }
      (** dividend log-uniform over 64 bits, divisor
          {!Hppa_dist.Operand_dist.zipf64_divisor} (heavy-head, high
          word always non-zero) *)
  | Hw0 of { samples : int; seed : int64 }
      (** {!Hppa_dist.Operand_dist.w64_pair}: half the divisors have a
          zero high word, degenerating to the 32-bit divide path *)

val workload_tag : workload -> string
(** Stable identifier (part of the store key). *)

val operands : workload -> Strategy.request -> (Word.t * Word.t) list
(** 32-bit operand pairs; the 64-bit workloads yield []. *)

val raw_pairs64 : workload -> (int64 * int64) list
(** The workload as 64-bit pairs: 64-bit workloads generate directly,
    32-bit workloads zero-extend (covering the W64 routines' degenerate
    high-word-zero path). *)

val operand_lists :
  workload ->
  Strategy.request ->
  ((Word.t list * string) list, string) result
(** Resolved per-call argument lists with a diagnostic label: one or
    two words for a W32 request, the two (hi:lo) register pairs for
    W64. [Error] on a 64-bit workload with a W32 request. *)

(** One measured verdict. [digest] is the emission's content address —
    ["model:<name>"] for modelled baselines. [cert_kind]/[cert_digest]
    carry the {!Hppa_verify.Certificate} attached when a certifier
    covers the emission's shape ({!Strategy.certify}); both [None] for
    modelled baselines and uncertifiable emissions. *)
type measurement = {
  strategy : string;
  request : string;  (** {!Strategy.request_id} *)
  entry : string;
  digest : string;
  workload : string;  (** {!workload_tag} *)
  samples : int;
  total_cycles : int;
  mean_cycles : float;  (** [total_cycles /. samples] *)
  min_cycles : int;
  max_cycles : int;
  used_engine : bool;
  batch_width : int;
      (** lanes per {!Hppa_machine.Machine.Batch} dispatch during
          measurement; [1] = scalar execution (and the implied default
          when the JSON field is absent — older stores load
          unchanged) *)
  cert_kind : string option;  (** {!Hppa_verify.Certificate.kind_label} *)
  cert_digest : string option;
}

(** Content-addressed verdict cache, keyed by (digest, workload tag).
    [to_json]/[of_json] speak the [BENCH_PLANS.json] format (schema
    ["hppa-bench-plans/2"], which added the optional certificate
    fields; documented in the README). *)
module Store : sig
  type t

  val create : unit -> t
  val length : t -> int
  val find : t -> digest:string -> workload:string -> measurement option
  val add : t -> measurement -> unit
  val entries : t -> measurement list
  (** All measurements, sorted by (digest, workload). *)

  val find_digest : t -> string -> measurement list
  val to_json : t -> string
  val of_json : string -> (t, string) result
  val save : t -> string -> (unit, string) result
  val load : string -> (t, string) result
end

val measure :
  ?store:Store.t ->
  ?obs:Hppa_obs.Obs.Registry.t ->
  ?fuel:int ->
  ?batch_width:int ->
  workload ->
  Strategy.request ->
  Strategy.t ->
  (measurement, string) result
(** Run one strategy over the workload: emitted code executes on the
    simulator ([Error] on any trap or fuel exhaustion), modelled
    baselines evaluate their cycle model. A store hit skips execution
    entirely.

    [batch_width] (default 256, clamped to the workload size) selects
    the execution engine: widths above one run the workload in chunks
    on the batched SoA engine ({!Hppa_machine.Machine.Batch}), whose
    per-lane cycle counts are pinned equal to the scalar engine's — the
    verdict is identical, only measured faster. [batch_width 1] forces
    the scalar threaded engine. The width used is recorded in the
    measurement (and in [BENCH_PLANS.json] when above one).

    [obs] feeds [hppa_plan_measured_total{strategy=}],
    [hppa_plan_measured_cycles_total{strategy=}], the
    [hppa_plan_store_hits_total]/[hppa_plan_store_misses_total]
    counters and the [hppa_plan_store_entries] gauge. *)

(** {!Selector.choose} plus a measurement of every candidate. *)
type report = {
  choice : Selector.choice;
  measurements : (string * (measurement, string) result) list;
      (** by strategy name, in candidate order *)
  chosen : measurement;
  best : string;  (** strategy with the lowest measured mean *)
  fallback : measurement option;
      (** the millicode call-through ([mul_millicode]/[div_millicode]) *)
  gate_ok : bool;
      (** chosen mean cycles over the workload do not exceed the
          fallback's — the CI gate *)
}

val tune :
  ?ctx:Strategy.context ->
  ?store:Store.t ->
  ?obs:Hppa_obs.Obs.Registry.t ->
  ?fuel:int ->
  ?require_certified:bool ->
  workload ->
  Strategy.request ->
  (report, string) result
(** Select, then measure every candidate. [Error] if selection fails or
    the chosen strategy fails to measure. [require_certified] is passed
    through to {!Selector.choose}. Bumps
    [hppa_plan_wins_total{strategy=}] for the measured-best strategy. *)

val pp_report : Format.formatter -> report -> unit
