module Word = Hppa_word.Word
module Cfg = Hppa_verify.Cfg
open Hppa

type op = Mul | Div | Rem | Divl
type operand = Constant of int32 | Constant64 of int64 | Variable
type signedness = Unsigned | Signed
type width = W32 | W64

type request = {
  op : op;
  operand : operand;
  signedness : signedness;
  trap_overflow : bool;
  width : width;
}

let mul_const ?(trap_overflow = false) c =
  {
    op = Mul;
    operand = Constant c;
    signedness = Signed;
    trap_overflow;
    width = W32;
  }

let mul_var ?(trap_overflow = false) () =
  {
    op = Mul;
    operand = Variable;
    signedness = Signed;
    trap_overflow;
    width = W32;
  }

let div_const signedness c =
  { op = Div; operand = Constant c; signedness; trap_overflow = false; width = W32 }

let div_var signedness =
  { op = Div; operand = Variable; signedness; trap_overflow = false; width = W32 }

let rem_const signedness c =
  { op = Rem; operand = Constant c; signedness; trap_overflow = false; width = W32 }

let rem_var signedness =
  { op = Rem; operand = Variable; signedness; trap_overflow = false; width = W32 }

(* The W64 family: double-word operands always arrive in register pairs
   at run time, so the operand is necessarily [Variable]. *)
let w64 op signedness =
  { op; operand = Variable; signedness; trap_overflow = false; width = W64 }

let w64_mul signedness = w64 Mul signedness
let w64_div signedness = w64 Div signedness
let w64_rem signedness = w64 Rem signedness

(* The 128/64 divide: three run-time operand dwords (dividend high, low,
   divisor), unsigned only. *)
let w64_divl = w64 Divl Unsigned

(* Double-word constant forms: the run-time operand pair arrives in
   (arg0:arg1), the 64-bit constant is materialized by the emission. *)
let w64_mul_const ?(trap_overflow = false) c =
  {
    op = Mul;
    operand = Constant64 c;
    signedness = Signed;
    trap_overflow;
    width = W64;
  }

let w64_div_const signedness c =
  {
    op = Div;
    operand = Constant64 c;
    signedness;
    trap_overflow = false;
    width = W64;
  }

let w64_rem_const signedness c =
  {
    op = Rem;
    operand = Constant64 c;
    signedness;
    trap_overflow = false;
    width = W64;
  }

let op_name = function
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Divl -> "divl"

let pp_request ppf r =
  Format.fprintf ppf "%s%s %s (%s%s)"
    (match r.width with W32 -> "" | W64 -> "64-bit ")
    (match r.op with
    | Mul -> "multiply"
    | Div -> "divide"
    | Rem -> "remainder"
    | Divl -> "128/64 divide")
    (match r.operand with
    | Constant c -> Printf.sprintf "by constant %ld" c
    | Constant64 c -> Printf.sprintf "by constant %Ld" c
    | Variable -> "by a run-time operand")
    (match r.signedness with Signed -> "signed" | Unsigned -> "unsigned")
    (if r.trap_overflow then ", trapping overflow" else "")

let request_id r =
  Printf.sprintf "%s.%s.%s%s%s" (op_name r.op)
    (match r.operand with
    | Constant c -> Printf.sprintf "c%ld" c
    | Constant64 c -> Printf.sprintf "c%Ld" c
    | Variable -> "var")
    (match r.signedness with Signed -> "s" | Unsigned -> "u")
    (if r.trap_overflow then ".trap" else "")
    (match r.width with W32 -> "" | W64 -> ".w64")

let request_of_string s =
  let parts =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun p -> p <> "")
  in
  match parts with
  | [ op; operand ] -> (
      let is_var =
        match String.lowercase_ascii operand with
        | "x" | "var" | "_" -> true
        | _ -> false
      in
      let w32 op signedness trap_overflow =
        if is_var then
          Ok { op; operand = Variable; signedness; trap_overflow; width = W32 }
        else
          match Int32.of_string_opt operand with
          | Some c ->
              Ok
                { op; operand = Constant c; signedness; trap_overflow; width = W32 }
          | None ->
              Error
                (Printf.sprintf
                   "bad operand %S (expected a 32-bit constant or \"x\")"
                   operand)
      in
      (* The two-operand w64 forms accept a run-time operand or a full
         64-bit constant; the three-operand divl necessarily takes its
         operands at run time. *)
      let wide op signedness =
        if is_var then Ok (w64 op signedness)
        else
          match Int64.of_string_opt operand with
          | Some c ->
              Ok
                {
                  op;
                  operand = Constant64 c;
                  signedness;
                  trap_overflow = false;
                  width = W64;
                }
          | None ->
              Error
                (Printf.sprintf
                   "bad operand %S (expected a 64-bit constant or \"x\")"
                   operand)
      in
      match String.lowercase_ascii op with
      | "mul" -> w32 Mul Signed false
      | "mulo" -> w32 Mul Signed true
      | "divu" -> w32 Div Unsigned false
      | "divi" -> w32 Div Signed false
      | "remu" -> w32 Rem Unsigned false
      | "remi" -> w32 Rem Signed false
      | "w64mulu" -> wide Mul Unsigned
      | "w64muli" -> wide Mul Signed
      | "w64divu" -> wide Div Unsigned
      | "w64divi" -> wide Div Signed
      | "w64remu" -> wide Rem Unsigned
      | "w64remi" -> wide Rem Signed
      | "w64divl" ->
          if is_var then Ok w64_divl
          else Error "w64divl takes run-time operands only (use \"x\")"
      | tok ->
          Error
            (Printf.sprintf
               "bad operation %S (expected mul, mulo, divu, divi, remu, remi \
                or a w64 form: w64mulu, w64muli, w64divu, w64divi, w64remu, \
                w64remi, w64divl)"
               tok))
  | _ -> Error "expected \"<op> <operand>\", e.g. \"mul 625\" or \"divu x\""

(* ------------------------------------------------------------------ *)
(* Contexts                                                            *)

type purpose = Standalone | Inline_expansion

type context = {
  purpose : purpose;
  inline_mul_threshold : int;
  small_divisor_dispatch : bool;
  millicode_mul_cycles : int;
  millicode_div_cycles : int;
}

(* The modelled averages are the paper's: the final multiply comes in
   "generally under 20" cycles over the Figure 5 mix, the general divide
   "about 80". *)
let standalone =
  {
    purpose = Standalone;
    inline_mul_threshold = max_int;
    small_divisor_dispatch = false;
    millicode_mul_cycles = 20;
    millicode_div_cycles = 80;
  }

let compiler ?(small_divisor_dispatch = false) () =
  {
    standalone with
    purpose = Inline_expansion;
    inline_mul_threshold = 6;
    small_divisor_dispatch;
  }

(* ------------------------------------------------------------------ *)
(* Emissions                                                           *)

type detail =
  | Mul_plan of Mul_const.plan
  | Div_plan of Div_const.plan
  | Millicode of string
  | Pair_chain of Chain.t

type emission = {
  entry : string;
  source : Program.source;
  spec : Cfg.spec;
  deps : Program.source list;
  callee_specs : Cfg.spec list;
  static_instructions : int;
  detail : detail;
}

let link em = Program.resolve (Program.concat (em.source :: em.deps))

let verify em =
  match link em with
  | Error e -> Error e
  | Ok prog -> (
      let options =
        { Cfg.mode = Cfg.Simple; blr_slots = Div_small.threshold }
      in
      let specs = em.spec :: em.callee_specs in
      match
        Hppa_verify.Driver.check ~options ~specs ~entries:[ em.entry ] prog
      with
      | [] -> Ok ()
      | findings ->
          Error
            (Format.asprintf "@[<v>%a@]" Hppa_verify.Findings.pp_list findings))

let encoded em =
  match link em with
  | Error e -> Error e
  | Ok prog -> (
      match Encode.encode_program prog with
      | Error e -> Error e
      | Ok words -> (
          match Encode.decode_program words with
          | Error e -> Error ("decode: " ^ e)
          | Ok insns ->
              if insns = prog.Program.code then Ok words
              else Error "encode/decode round-trip mismatch"))

let digest em =
  match encoded em with
  | Error e -> Error e
  | Ok words ->
      let b = Bytes.create (4 * Array.length words) in
      Array.iteri (fun i w -> Bytes.set_int32_le b (i * 4) w) words;
      Ok (Digest.to_hex (Digest.bytes b))

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)

type kind = Emits | Modelled
type cost = { score : int; note : string }

type t = {
  name : string;
  description : string;
  kind : kind;
  applies : request -> bool;
  cost : context -> request -> (cost, string) result;
  emit : request -> (emission, string) result;
  model : (request -> Word.t -> Word.t -> int option) option;
}

let constant_of req =
  match req.operand with
  | Constant c -> Some c
  | Constant64 _ | Variable -> None

let constant64_of req =
  match req.operand with
  | Constant64 c -> Some c
  | Constant _ | Variable -> None

let guard f = try f () with exn -> Error (Printexc.to_string exn)

let routine_spec ?(results = [ Reg.ret0 ]) req entry =
  {
    Cfg.name = entry;
    args =
      (match (req.width, req.operand) with
      | W64, Variable when req.op = Divl ->
          (* three operand dwords: dividend in both arg pairs, divisor
             in (ret0:ret1) *)
          [ Reg.arg0; Reg.arg1; Reg.arg2; Reg.arg3; Reg.ret0; Reg.ret1 ]
      | W64, Variable -> [ Reg.arg0; Reg.arg1; Reg.arg2; Reg.arg3 ]
      | W64, (Constant _ | Constant64 _) ->
          (* the run-time pair; the constant pair is materialized *)
          [ Reg.arg0; Reg.arg1 ]
      | W32, (Constant _ | Constant64 _) -> [ Reg.arg0 ]
      | W32, Variable -> [ Reg.arg0; Reg.arg1 ]);
    results;
    clobbers = Cfg.scratch;
  }

let millicode_spec name =
  List.find (fun (s : Cfg.spec) -> s.Cfg.name = name) Millicode.conventions

(* -- multiply by a constant: §5 addition chains ---------------------- *)

let w32_only r = r.width = W32

let mul_const_chain =
  let applies r = w32_only r && r.op = Mul && constant_of r <> None in
  let cost ctx r =
    match constant_of r with
    | None -> Error "not a constant multiply"
    | Some c -> (
        match ctx.purpose with
        | Standalone ->
            guard (fun () ->
                Ok
                  {
                    score = Mul_const.cost ~overflow:r.trap_overflow c;
                    note = "static instructions";
                  })
        | Inline_expansion ->
            if Word.equal c 0l then Error "multiply by zero folds away"
            else if Word.equal c Int32.min_int then
              Error "no inline chain for min_int"
            else
              let mode =
                if r.trap_overflow then Chain_rules.Monotonic
                else Chain_rules.Fast
              in
              (match Chain_rules.find ~mode (Int32.to_int (Word.abs c)) with
              | None -> Error "no chain within the rule program's bounds"
              | Some chain ->
                  let len = Chain.length chain in
                  if len > ctx.inline_mul_threshold then
                    Error
                      (Printf.sprintf
                         "chain length %d exceeds inline threshold %d" len
                         ctx.inline_mul_threshold)
                  else Ok { score = len; note = "inline chain steps" }))
  in
  let emit r =
    match constant_of r with
    | None -> Error "not a constant multiply"
    | Some c ->
        guard (fun () ->
            let plan = Mul_const.plan ~overflow:r.trap_overflow c in
            Ok
              {
                entry = plan.Mul_const.entry;
                source = plan.Mul_const.source;
                spec = routine_spec r plan.Mul_const.entry;
                deps = [];
                callee_specs = [];
                static_instructions = plan.Mul_const.static_instructions;
                detail = Mul_plan plan;
              })
  in
  {
    name = "mul_const_chain";
    description = "shift-and-add chain for a compile-time multiplier (section 5)";
    kind = Emits;
    applies;
    cost;
    emit;
    model = None;
  }

(* -- millicode call-through wrappers --------------------------------- *)

let constant_label c =
  (* Int64 so min_int renders as a valid label ("cm2147483648"). *)
  if c >= 0l then Printf.sprintf "c%ld" c
  else Printf.sprintf "cm%Ld" (Int64.neg (Int64.of_int32 c))

let constant_label64 c =
  (* %Lu so Int64.min_int (its own negation) renders unsigned. *)
  if c >= 0L then Printf.sprintf "c%Ld" c
  else Printf.sprintf "cm%Lu" (Int64.neg c)

let dword_hi c = Int64.to_int32 (Int64.shift_right_logical c 32)
let dword_lo c = Int64.to_int32 c

let wrapper ~target req =
  let entry =
    match req.operand with
    | Variable -> "via_" ^ target
    | Constant c -> Printf.sprintf "via_%s_%s" target (constant_label c)
    | Constant64 c -> Printf.sprintf "via_%s_%s" target (constant_label64 c)
  in
  let b = Builder.create ~prefix:entry () in
  Builder.label b entry;
  (match req.operand with
  | Constant c -> Builder.insns b (Emit.ldi c Reg.arg1)
  | Constant64 c ->
      (* the W64 second operand pair: (arg2:arg3) = (hi:lo) *)
      Builder.insns b (Emit.ldi (dword_hi c) Reg.arg2);
      Builder.insns b (Emit.ldi (dword_lo c) Reg.arg3)
  | Variable -> ());
  Builder.insn b (Emit.b target);
  let target_spec = millicode_spec target in
  {
    entry;
    source = Builder.to_source b;
    spec = routine_spec ~results:target_spec.Cfg.results req entry;
    deps = [ Millicode.source ];
    callee_specs = Millicode.conventions;
    static_instructions = Builder.length b;
    detail = Millicode target;
  }

let mul_millicode =
  let target r = if r.trap_overflow then Millicode.muloI else Millicode.mulI in
  {
    name = "mul_millicode";
    description =
      "branch to the production variable multiply (mulI, the section 6 final \
       algorithm; muloI when trapping)";
    kind = Emits;
    applies = (fun r -> w32_only r && r.op = Mul);
    cost =
      (fun ctx _ ->
        Ok
          {
            score = ctx.millicode_mul_cycles;
            note = "modelled average cycles (mulI)";
          });
    emit = (fun r -> guard (fun () -> Ok (wrapper ~target:(target r) r)));
    model = None;
  }

let ladder ~name ~score ~note ~description =
  {
    name;
    description;
    kind = Emits;
    applies =
      (fun r ->
        w32_only r && r.op = Mul && r.operand = Variable
        && not r.trap_overflow);
    cost = (fun _ _ -> Ok { score; note });
    emit = (fun r -> guard (fun () -> Ok (wrapper ~target:name r)));
    model = None;
  }

let mul_naive =
  ladder ~name:"mul_naive" ~score:167
    ~note:"modelled cycles (figure 2, data-independent)"
    ~description:"the naive one-bit-per-iteration multiply (figure 2)"

let mul_nibble =
  ladder ~name:"mul_nibble" ~score:55
    ~note:"modelled average cycles (figure 3, log-uniform operands)"
    ~description:"four multiplier bits per iteration (figure 3)"

let mul_switch =
  ladder ~name:"mul_switch" ~score:45
    ~note:"modelled average cycles (figure 4)"
    ~description:"the 16-way case-table multiply (figure 4)"

let baseline_booth =
  {
    name = "baseline_booth";
    description =
      "the rejected Multiply Step hardware (radix-4 Booth; model only)";
    kind = Modelled;
    applies =
      (fun r ->
        w32_only r && r.op = Mul && r.operand = Variable
        && not r.trap_overflow);
    cost =
      (fun _ _ ->
        Ok
          {
            score = Hppa_baselines.Booth.cycles ();
            note = "modelled multiply-step machine (16 steps + setup)";
          });
    emit = (fun _ -> Error "modelled baseline only: no Precision code");
    model = Some (fun _ _ _ -> Some (Hppa_baselines.Booth.cycles ()));
  }

(* -- division -------------------------------------------------------- *)

let div_gen_specs =
  List.filter
    (fun (s : Cfg.spec) ->
      List.mem s.Cfg.name [ "divU"; "divI"; "remU"; "remI" ])
    Millicode.conventions

let div_const_plan r c =
  match (r.op, r.signedness) with
  | Div, Unsigned -> Div_const.plan_unsigned c
  | Div, Signed -> Div_const.plan_signed c
  | Rem, Unsigned -> Div_const.plan_rem_unsigned c
  | Rem, Signed -> Div_const.plan_rem_signed c
  | (Mul | Divl), _ -> invalid_arg "div_const_plan: not a divide"

let div_const_strategy =
  let applies r =
    w32_only r
    && (r.op = Div || r.op = Rem)
    && (match constant_of r with
       | None -> false
       | Some c -> (
           match r.signedness with
           | Signed -> not (Word.equal c 0l)
           | Unsigned -> Word.lt_s 0l c))
  in
  let cost ctx r =
    match constant_of r with
    | None -> Error "not a constant divide"
    | Some c ->
        guard (fun () ->
            let plan = div_const_plan r c in
            if Div_const.needs_millicode plan then
              Ok
                {
                  score =
                    ctx.millicode_div_cycles
                    + plan.Div_const.static_instructions;
                  note = "tail-calls the general divide (the paper's y = 11 caveat)";
                }
            else
              Ok
                {
                  score = plan.Div_const.static_instructions;
                  note = "static instructions";
                })
  in
  let emit r =
    match constant_of r with
    | None -> Error "not a constant divide"
    | Some c ->
        guard (fun () ->
            let plan = div_const_plan r c in
            Ok
              {
                entry = plan.Div_const.entry;
                source = plan.Div_const.source;
                spec = routine_spec r plan.Div_const.entry;
                deps =
                  (if Div_const.needs_millicode plan then [ Div_gen.source ]
                   else []);
                callee_specs =
                  (if Div_const.needs_millicode plan then div_gen_specs
                   else []);
                static_instructions = plan.Div_const.static_instructions;
                detail = Div_plan plan;
              })
  in
  {
    name = "div_const";
    description =
      "reciprocal / power-of-two / even-split code for a compile-time \
       divisor (section 7)";
    kind = Emits;
    applies;
    cost;
    emit;
    model = None;
  }

let div_small_dispatch =
  let target r =
    match r.signedness with Unsigned -> "divU_small" | Signed -> "divI_small"
  in
  {
    name = "div_small";
    description =
      "vectored dispatch to constant-divisor routines for run-time divisors \
       below twenty (section 7, Performance)";
    kind = Emits;
    applies = (fun r -> w32_only r && r.op = Div && r.operand = Variable);
    cost =
      (fun ctx _ ->
        if ctx.small_divisor_dispatch then
          Ok
            {
              score = 23;
              note =
                "modelled average under a small-divisor operand model \
                 (paper: 10 to 36 cycles)";
            }
        else
          Ok
            {
              score = ctx.millicode_div_cycles + 3;
              note =
                "dispatch overhead atop the general divide (no small-divisor \
                 operand model in this context)";
            });
    emit = (fun r -> guard (fun () -> Ok (wrapper ~target:(target r) r)));
    model = None;
  }

let div_millicode =
  let target r =
    match (r.op, r.signedness) with
    | Div, Unsigned -> "divU"
    | Div, Signed -> "divI"
    | Rem, Unsigned -> "remU"
    | Rem, Signed -> "remI"
    | (Mul | Divl), _ -> assert false
  in
  let applies r =
    w32_only r
    && (r.op = Div || r.op = Rem)
    && (match constant_of r with
       | Some c -> not (Word.equal c 0l)
       | None -> true)
  in
  {
    name = "div_millicode";
    description = "the general divide-step millicode (section 4)";
    kind = Emits;
    applies;
    cost =
      (fun ctx _ ->
        Ok
          {
            score = ctx.millicode_div_cycles;
            note = "modelled average cycles (divU/divI)";
          });
    emit = (fun r -> guard (fun () -> Ok (wrapper ~target:(target r) r)));
    model = None;
  }

let shift_sub ~name ~score ~note ~description run =
  let divisor_of req y =
    match constant_of req with Some c -> c | None -> y
  in
  {
    name;
    description;
    kind = Modelled;
    applies =
      (fun r ->
        w32_only r
        && (r.op = Div || r.op = Rem)
        && r.signedness = Unsigned
        && (match constant_of r with
           | Some c -> not (Word.equal c 0l)
           | None -> true));
    cost = (fun _ _ -> Ok { score; note });
    emit = (fun _ -> Error "modelled baseline only: no Precision code");
    model =
      Some
        (fun req x y ->
          let d = divisor_of req y in
          if Word.equal d 0l then None
          else Some (run x d : Hppa_baselines.Shift_sub_div.result).cycles);
  }

let baseline_restoring =
  shift_sub ~name:"baseline_restoring" ~score:128
    ~note:"modelled (section 2: up to an add and a subtract per bit)"
    ~description:"restoring shift-and-subtract division (section 2 baseline)"
    Hppa_baselines.Shift_sub_div.restoring

let baseline_nonrestoring =
  shift_sub ~name:"baseline_nonrestoring" ~score:96
    ~note:"modelled (section 2: one add-or-subtract per bit)"
    ~description:
      "non-restoring shift-and-subtract division (section 2 baseline)"
    Hppa_baselines.Shift_sub_div.non_restoring

(* -- the 64-bit (double-word) family --------------------------------- *)

let w64_target r =
  match (r.op, r.signedness) with
  | Mul, Unsigned -> "mulU128"
  | Mul, Signed -> "mulI128"
  | Div, Unsigned -> "divU64w"
  | Div, Signed -> "divI64w"
  | Rem, Unsigned -> "remU64w"
  | Rem, Signed -> "remI64w"
  | Divl, _ -> "divU128by64"

(* Standalone pair-chain routine pool: product in (ret0:ret1),
   intermediates in the remaining caller-saved pairs; the operand pair
   (arg0:arg1) is left untouched, millicode style. *)
let w64_chain_pool =
  [|
    (Reg.ret0, Reg.ret1);
    (Reg.t2, Reg.t3);
    (Reg.t4, Reg.t5);
    (Reg.arg2, Reg.arg3);
  |]

let w64_chain_for c =
  if Int64.equal c 0L then Error "multiply by zero folds away"
  else
    let abs = Int64.abs c in
    if Int64.compare abs 0L < 0 (* Int64.min_int *)
       || Int64.compare abs 0x7fff_ffffL > 0
    then Error "no chain within the rule program's bounds (constant too wide)"
    else
      match Chain_rules.find ~mode:Chain_rules.Fast (Int64.to_int abs) with
      | None -> Error "no chain within the rule program's bounds"
      | Some chain -> Ok chain

let w64_mul_const_chain =
  let applies r =
    r.width = W64 && r.op = Mul && constant64_of r <> None
    && not r.trap_overflow
  in
  let emit r =
    match constant64_of r with
    | None -> Error "not a 64-bit constant multiply"
    | Some c ->
        Result.bind (w64_chain_for c) (fun chain ->
            guard (fun () ->
                let entry = "mul64_" ^ constant_label64 c in
                let b = Builder.create ~prefix:entry () in
                Builder.label b entry;
                let info =
                  Chain_codegen.body_at_pair
                    ~negate:(Int64.compare c 0L < 0)
                    ~src:(Reg.arg0, Reg.arg1) ~pool:w64_chain_pool chain b
                in
                Builder.insn b Emit.mret;
                Ok
                  {
                    entry;
                    source = Builder.to_source b;
                    spec =
                      routine_spec ~results:[ Reg.ret0; Reg.ret1 ] r entry;
                    deps = [];
                    callee_specs = [];
                    static_instructions = info.Chain_codegen.instructions;
                    detail = Pair_chain chain;
                  }))
  in
  let cost ctx r =
    match constant64_of r with
    | None -> Error "not a 64-bit constant multiply"
    | Some c ->
        Result.bind (w64_chain_for c) (fun chain ->
            match ctx.purpose with
            | Standalone ->
                Result.map
                  (fun em ->
                    {
                      score = em.static_instructions;
                      note = "static instructions (pair carry chains)";
                    })
                  (emit r)
            | Inline_expansion ->
                let len = Chain.length chain in
                if len > ctx.inline_mul_threshold then
                  Error
                    (Printf.sprintf
                       "chain length %d exceeds inline threshold %d" len
                       ctx.inline_mul_threshold)
                else Ok { score = len; note = "inline pair-chain steps" })
  in
  {
    name = "w64_mul_const_chain";
    description =
      "double-word shift-and-add chain for a compile-time multiplier: each \
       section 5 step as an SHD/SHxADD/ADDC carry-chain sequence over \
       register pairs";
    kind = Emits;
    applies;
    cost;
    emit;
    model = None;
  }

let w64_mul_millicode =
  {
    name = "w64_mul_millicode";
    description =
      "the double-word multiply millicode: four 32x32->64 partial products \
       over mulU64, recombined with carry chains (mulU128 / mulI128)";
    kind = Emits;
    applies = (fun r -> r.width = W64 && r.op = Mul && not r.trap_overflow);
    cost =
      (fun ctx _ ->
        Ok
          {
            (* four partial products, each itself a split multiply about
               twice the standard routine, plus recombination *)
            score = (8 * ctx.millicode_mul_cycles) + 40;
            note = "modelled: four mulU64 partial products + recombination";
          });
    emit = (fun r -> guard (fun () -> Ok (wrapper ~target:(w64_target r) r)));
    model = None;
  }

let w64_div_millicode =
  {
    name = "w64_div_millicode";
    description =
      "the double-word divide/remainder millicode: normalization plus 64/32 \
       divU64 steps with quotient correction (divU64w / divI64w / remU64w / \
       remI64w)";
    kind = Emits;
    applies =
      (fun r ->
        r.width = W64
        && (r.op = Div || r.op = Rem)
        && (match constant64_of r with
           | Some c -> not (Int64.equal c 0L)
           | None -> true));
    cost =
      (fun ctx _ ->
        Ok
          {
            score = (2 * ctx.millicode_div_cycles) + 40;
            note = "modelled: two 64/32 divide steps + correction";
          });
    emit = (fun r -> guard (fun () -> Ok (wrapper ~target:(w64_target r) r)));
    model = None;
  }

let w64_divl_millicode =
  {
    name = "w64_divl_millicode";
    description =
      "the 128/64 divide millicode: normalization plus two 64/32 \
       estimate-and-correct steps (divU128by64)";
    kind = Emits;
    applies =
      (fun r ->
        r.width = W64 && r.op = Divl && r.signedness = Unsigned
        && r.operand = Variable && not r.trap_overflow);
    cost =
      (fun ctx _ ->
        Ok
          {
            score = (2 * ctx.millicode_div_cycles) + 60;
            note =
              "modelled: normalization + two 64/32 estimate-and-correct steps";
          });
    emit = (fun r -> guard (fun () -> Ok (wrapper ~target:(w64_target r) r)));
    model = None;
  }

(* ------------------------------------------------------------------ *)
(* Certification                                                       *)

module Reciprocal = Hppa_verify.Reciprocal
module Certificate = Hppa_verify.Certificate

let verify_options = { Cfg.mode = Cfg.Simple; blr_slots = Div_small.threshold }

let certificate_of = function
  | Reciprocal.Certified c -> Ok c
  | Reciprocal.Refuted m -> Error ("refuted: " ^ m)
  | Reciprocal.Unknown m -> Error m

(* The trusted image the body-equivalence certifier compares against:
   the canonical millicode library, whose W64 routines the differential
   suite pins on all three engines. *)
let canonical = lazy (Millicode.resolved ())

let certify req em =
  match link em with
  | Error e -> Error ("link: " ^ e)
  | Ok prog when req.width = W64 -> (
      match em.detail with
      | Millicode target ->
          certificate_of
            (Hppa_verify.Driver.certify_body ~canonical:(Lazy.force canonical)
               prog ~entry:target)
      | Mul_plan _ | Div_plan _ | Pair_chain _ ->
          Error "no certifier covers this W64 emission")
  | Ok prog -> (
      let signed = req.signedness = Signed in
      match (req.op, em.detail) with
      | Mul, _ -> (
          match constant_of req with
          | None -> Error "no certifier covers the variable multiply"
          | Some c -> (
              match
                Hppa_verify.Driver.certify ~options:verify_options prog
                  ~entry:em.entry ~multiplier:c
              with
              | Hppa_verify.Linear.Certified ->
                  Ok
                    (Certificate.v (Certificate.Linear_mul c)
                       [
                         Printf.sprintf
                           "linear-form abstract interpretation: every \
                            return path of %s computes %ld * x (mod 2^32)"
                           em.entry c;
                       ])
              | Hppa_verify.Linear.Refuted m -> Error ("refuted: " ^ m)
              | Hppa_verify.Linear.Unknown m -> Error m))
      | (Div | Rem), Millicode (("divU_small" | "divI_small") as target) ->
          certificate_of
            (Hppa_verify.Driver.certify_dispatch ~options:verify_options prog
               ~entry:target ~signed)
      | (Div | Rem), _ -> (
          match constant_of req with
          | Some c ->
              certificate_of
                (Hppa_verify.Driver.certify_division ~options:verify_options
                   prog ~entry:em.entry
                   ~claim:
                     {
                       Reciprocal.op = (if req.op = Div then `Div else `Rem);
                       signed;
                       divisor = c;
                     })
          | None -> (
              match em.detail with
              | Millicode (("divU" | "divI" | "remU" | "remI") as target) ->
                  (* the wrapper is a bare branch; the certificate is the
                     target's divide-step proof, valid for every divisor *)
                  certificate_of
                    (Hppa_verify.Driver.certify_divstep
                       ~options:verify_options prog ~entry:target ~signed
                       ~want_rem:(req.op = Rem))
              | _ -> Error "no certifier covers this emission"))
      | Divl, _ -> Error "divl is a W64-only operation")

let all =
  [
    mul_const_chain;
    mul_millicode;
    mul_nibble;
    mul_switch;
    mul_naive;
    baseline_booth;
    div_const_strategy;
    div_small_dispatch;
    div_millicode;
    baseline_nonrestoring;
    baseline_restoring;
    w64_mul_const_chain;
    w64_mul_millicode;
    w64_div_millicode;
    w64_divl_millicode;
  ]

let find name = List.find_opt (fun s -> s.name = name) all
