lib/core/div_magic_modern.mli: Hppa_word
