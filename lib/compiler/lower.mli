(** Lowering expressions to Precision code — the compiler decisions of
    §2, §5 and §7.

    A compiled procedure takes its parameters in [arg0..arg3], returns in
    [ret0] and returns via [bv r0(rp)]. Multiplications and divisions
    lower according to the paper's cost model:

    - multiply by constant: inline shift-and-add chain when its length is
      within {!inline_mul_threshold}, otherwise a millicode call
      ([bl mulI, mrp] — the [,o] variant when [trap_overflow] is set
      lowers through monotonic chains or [muloI]);
    - multiply by variable: millicode [mulI] / [muloI];
    - divide by constant: the per-constant routine from {!Hppa.Div_const}
      is linked into the unit and called (HP practice: short sequences
      inline, the rest millicode — a call costs one [bl] here);
    - divide by variable: millicode [divI], or [divI_small] when
      [small_divisor_dispatch] is set;
    - remainder by constant [c]: composed as [x - (x/c)*c] from the
      constant-divide routine and an inline chain.

    The emitted unit references millicode entry points; link it with
    {!Hppa.Millicode.source} (see {!compile_and_link}). *)

type t = {
  entry : string;
  params : string list;
  source : Program.source;  (** procedure + any per-constant routines *)
  millicode_calls : int;  (** static count of [bl] sites *)
  inline_multiplies : int;  (** constant multiplies lowered to chains *)
}

val inline_mul_threshold : int
(** Chains at most this long (6) are inlined. *)

exception Unsupported of string
(** Raised when lowering runs out of resources or is asked for an
    unsupported combination; the message names the offending
    sub-expression and the exhausted pool (12 single-word temporaries at
    W32, 6 register pairs at W64; 4 parameters at W32, 2 at W64;
    [trap_overflow] at W64). *)

val compile :
  ?entry:string ->
  ?trap_overflow:bool ->
  ?small_divisor_dispatch:bool ->
  ?require_certified:bool ->
  ?width:Expr.width ->
  params:string list ->
  Expr.t ->
  t
(** [require_certified] (default [false]) makes every selector
    arbitration demand a machine-checked certificate
    ({!Hppa_plan.Selector.choose} with [~require_certified:true]):
    uncertifiable strategies are passed over in favour of the certified
    millicode call-through (at W64 this rules out inline pair chains —
    every multiply/divide becomes a certified millicode call).

    [width] (default {!Expr.W32}) selects the lowering width. At
    {!Expr.W64} values are (hi:lo) register pairs: parameters arrive in
    (arg0:arg1)/(arg2:arg3) and are moved to the preserved pairs
    (r3:r4)/(r5:r6), temporaries take the six pairs over r7..r18, the
    result is returned in (ret0:ret1). Add/sub/neg lower to PSW carry
    chains; constant multiplies arbitrate between inline pair chains and
    mulI128, divides/remainders call the double-word millicode
    (divI64w/remI64w). [trap_overflow] is W32-only. *)

val compile_and_link :
  ?entry:string ->
  ?trap_overflow:bool ->
  ?small_divisor_dispatch:bool ->
  ?require_certified:bool ->
  ?width:Expr.width ->
  params:string list ->
  Expr.t ->
  Program.resolved
(** [compile] plus the millicode library, resolved and ready to run. *)

(**/**)

(** Internal machinery shared with {!Lower_loop}; subject to change. *)
module Internal : sig
  type state
  type state64

  val make_state :
    ?require_certified:bool ->
    Builder.t ->
    vars:(string * Reg.t) list ->
    temps:Reg.t list ->
    trap_overflow:bool ->
    small_divisor_dispatch:bool ->
    state

  val emit_expr : state -> Expr.t -> Reg.t
  val release : state -> Reg.t -> unit
  val plans : state -> Program.source list
  val millicode_calls : state -> int
  val inline_multiplies : state -> int
  val callee_saved : Reg.t list
  (** r3..r18: registers every millicode routine preserves. *)

  val make_state64 :
    ?require_certified:bool ->
    Builder.t ->
    vars:(string * (Reg.t * Reg.t)) list ->
    temps:(Reg.t * Reg.t) list ->
    small_divisor_dispatch:bool ->
    state64

  val emit_expr64 : state64 -> Expr.t -> Reg.t * Reg.t
  val release64 : state64 -> Reg.t * Reg.t -> unit
  val millicode_calls64 : state64 -> int
  val inline_multiplies64 : state64 -> int

  val callee_saved_pairs : (Reg.t * Reg.t) list
  (** The eight (hi:lo) pairs over r3..r18. *)
end
