(* Tests for the simulator: per-instruction semantics, PSW behaviour,
   nullification, traps, control transfer and statistics. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Stats = Hppa_machine.Stats
module Trap = Hppa_machine.Trap
open Util

(* Run a one-off assembly routine with up to 4 args and give back ret0. *)
let run ?(entry = "main") text args =
  let mach = Machine.create (Program.resolve_exn (Asm.parse_exn text)) in
  (Machine.call mach entry ~args, mach)

let expect_ret0 name text args expected =
  let outcome, mach = run text args in
  match outcome with
  | Machine.Halted -> Alcotest.check word name expected (Machine.get mach Reg.ret0)
  | Machine.Trapped t -> Alcotest.failf "%s: trap %s" name (Trap.to_string t)
  | Machine.Fuel_exhausted -> Alcotest.failf "%s: fuel" name

let expect_trap name text args trap =
  let outcome, _ = run text args in
  match outcome with
  | Machine.Trapped t when Trap.equal t trap -> ()
  | Machine.Trapped t -> Alcotest.failf "%s: wrong trap %s" name (Trap.to_string t)
  | Machine.Halted -> Alcotest.failf "%s: no trap" name
  | Machine.Fuel_exhausted -> Alcotest.failf "%s: fuel" name

(* ------------------------------------------------------------------ *)

let test_r0_hardwired () =
  expect_ret0 "writes to r0 discarded"
    {| main: ldo 5(r0), r0
             copy r0, ret0
             bv r0(rp) |}
    [] 0l

let test_alu_basics () =
  expect_ret0 "add" {| main: add arg0, arg1, ret0
                             bv r0(rp) |} [ 2l; 3l ] 5l;
  expect_ret0 "sub" {| main: sub arg0, arg1, ret0
                             bv r0(rp) |} [ 2l; 3l ] (-1l);
  expect_ret0 "sh3add" {| main: sh3add arg0, arg1, ret0
                                bv r0(rp) |} [ 5l; 1l ] 41l;
  expect_ret0 "andcm" {| main: andcm arg0, arg1, ret0
                               bv r0(rp) |} [ 0xffl; 0x0fl ] 0xf0l;
  expect_ret0 "xor" {| main: xor arg0, arg1, ret0
                             bv r0(rp) |} [ 0xffl; 0x0fl ] 0xf0l

let test_carry_across_addc () =
  (* 64-bit addition: (arg0:arg1) + (arg2:arg3), high word out. *)
  expect_ret0 "addc picks up carry"
    {| main: add  arg1, arg3, r1
             addc arg0, arg2, ret0
             bv r0(rp) |}
    [ 1l; 0xffffffffl; 2l; 1l ] 4l

let test_sub_sets_not_borrow () =
  (* SUBB after a non-borrowing SUB must not deduct an extra one. *)
  expect_ret0 "subb no borrow"
    {| main: sub  arg1, arg3, r1
             subb arg0, arg2, ret0
             bv r0(rp) |}
    [ 5l; 3l; 2l; 1l ] 3l;
  expect_ret0 "subb with borrow"
    {| main: sub  arg1, arg3, r1
             subb arg0, arg2, ret0
             bv r0(rp) |}
    [ 5l; 1l; 2l; 3l ] 2l

let test_overflow_traps () =
  expect_trap "addo traps"
    {| main: ldil 0x7ffff800, r4
             ldo 2047(r4), r4
             addi,o 1, r4, ret0
             bv r0(rp) |}
    [] Trap.Overflow;
  expect_ret0 "add does not trap"
    {| main: ldil 0x7ffff800, r4
             ldo 2047(r4), r4
             addi 1, r4, ret0
             bv r0(rp) |}
    [] Word.min_signed;
  expect_trap "sh2add,o traps on shift loss"
    {| main: ldil 0x40000000, r4
             sh2add,o r4, r0, ret0
             bv r0(rp) |}
    [] Trap.Overflow

let test_comclr_nullify () =
  expect_ret0 "comclr skips next when true"
    {| main: ldi 7, ret0
             comclr,= arg0, arg1, r1
             ldi 9, ret0
             bv r0(rp) |}
    [ 4l; 4l ] 7l;
  expect_ret0 "comclr lets next run when false"
    {| main: ldi 7, ret0
             comclr,= arg0, arg1, r1
             ldi 9, ret0
             bv r0(rp) |}
    [ 4l; 5l ] 9l;
  (* comclr also zeroes its target. *)
  expect_ret0 "comclr zeroes target"
    {| main: ldi 3, ret0
             comclr,never r0, r0, ret0
             bv r0(rp) |}
    [] 0l

let test_extr_completer () =
  expect_ret0 "extru,= nullifies on zero field"
    {| main: ldi 1, ret0
             extru,= arg0, 0, 1, r1
             ldi 2, ret0
             bv r0(rp) |}
    [ 4l ] 1l;
  expect_ret0 "extru,= passes on set bit"
    {| main: ldi 1, ret0
             extru,= arg0, 0, 1, r1
             ldi 2, ret0
             bv r0(rp) |}
    [ 5l ] 2l

let test_shd () =
  expect_ret0 "shd concatenates"
    {| main: shd arg0, arg1, 4, ret0
             bv r0(rp) |}
    [ 0xAl; 0xB000000Cl ] 0xAB000000l

let test_zdep_shl () =
  expect_ret0 "shl pseudo"
    {| main: shl arg0, 4, ret0
             bv r0(rp) |}
    [ 0x0F0F0F0Fl ] 0xF0F0F0F0l;
  expect_ret0 "sar pseudo"
    {| main: sar arg0, 8, ret0
             bv r0(rp) |}
    [ 0x80000000l ] 0xFF800000l

let test_branches () =
  expect_ret0 "comb taken"
    {| main:  comb,<< arg0, arg1, less
              ldi 0, ret0
              bv r0(rp)
       less:  ldi 1, ret0
              bv r0(rp) |}
    [ 3l; 5l ] 1l;
  expect_ret0 "addib loop counts"
    {| main:  ldi 5, r4
              copy r0, ret0
       loop:  addi 1, ret0, ret0
              addib,> -1, r4, loop
              bv r0(rp) |}
    [] 5l;
  expect_ret0 "bl links and bv returns"
    {| main:  bl sub1, mrp
              addi 10, ret0, ret0
              bv r0(rp)
       sub1:  ldi 7, ret0
              bv r0(mrp) |}
    [] 17l

let test_blr_vector () =
  expect_ret0 "blr indexes two-instruction slots"
    {| main:  blr arg0, r0
       s0:    ldi 10, ret0
              bv r0(rp)
       s1:    ldi 11, ret0
              bv r0(rp)
       s2:    ldi 12, ret0
              bv r0(rp) |}
    [ 2l ] 12l

let test_memory () =
  expect_ret0 "store/load roundtrip"
    {| main: ldi 0x100, r4
             stw arg0, 8(r4)
             ldw 8(r4), ret0
             bv r0(rp) |}
    [ 0xDEADBEEFl ] 0xDEADBEEFl;
  expect_trap "unaligned access traps"
    {| main: ldw 2(r0), ret0
             bv r0(rp) |}
    [] (Trap.Unaligned 2l);
  expect_trap "out of range traps"
    {| main: ldil 0x7ffff800, r4
             ldw 0(r4), ret0
             bv r0(rp) |}
    [] (Trap.Bad_address 0x7ffff800l)

let test_break_and_bad_pc () =
  expect_trap "break" {| main: break 3 |} [] (Trap.Break 3);
  let outcome, _ =
    run {| main: bv arg0(arg1) |} [ 1000l; 1000l ]
  in
  match outcome with
  | Machine.Trapped (Trap.Bad_pc _) -> ()
  | _ -> Alcotest.fail "expected bad pc trap"

let test_stats () =
  let text =
    {| main: comclr,= r0, r0, r1
             ldi 9, ret0
             ldi 1, r4
             bv r0(rp) |}
  in
  let mach = Machine.create (Program.resolve_exn (Asm.parse_exn text)) in
  (match Machine.call mach "main" ~args:[] with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "halted expected");
  let s = Machine.stats mach in
  Alcotest.(check int) "cycles" 4 (Stats.cycles s);
  Alcotest.(check int) "nullified" 1 (Stats.nullified s);
  Alcotest.(check int) "executed" 3 (Stats.executed s);
  Alcotest.(check bool) "ret0 untouched by nullified ldi" true
    (Word.equal (Machine.get mach Reg.ret0) 0l)

let test_fuel () =
  let outcome, _ =
    let mach =
      Machine.create (Program.resolve_exn (Asm.parse_exn {| main: b main |}))
    in
    (Machine.call ~fuel:100 mach "main" ~args:[], mach)
  in
  match outcome with
  | Machine.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

(* ------------------------------------------------------------------ *)
(* DS: the divide-step contract                                        *)

(* One (ADDC; DS) step pair must implement one bit of non-restoring
   division; 32 of them divide. Checked here against a small direct
   non-restoring interpreter over random operands (the full millicode is
   tested in test_div.ml). *)
let ds_program =
  {| divu32: add  r0, r0, r0
             copy arg0, r19
             copy r0, r20
             ldi  32, r21
     loop:   addc r19, r19, r19
             ds   r20, arg1, r20
             addib,> -1, r21, loop
             addc r0, r0, r22
             sh1add r19, r22, ret0
             comiclr,<> 0, r22, r0
             add  r20, arg1, r20
             copy r20, ret1
             bv   r0(rp) |}

let prop_ds_division =
  let mach = Machine.create (Program.resolve_exn (Asm.parse_exn ds_program)) in
  QCheck.Test.make ~name:"(ADDC;DS)x32 divides" ~count:2000
    (QCheck.pair arb_word arb_word) (fun (x, y) ->
      QCheck.assume (not (Word.equal y 0l));
      let q = call_exn mach "divu32" [ x; y ] in
      let r = Machine.get mach Reg.ret1 in
      let q', r' = Word.divmod_u x y in
      Word.equal q q' && Word.equal r r')

let test_v_bit_initialised_by_add () =
  (* Pollute V with a DS, then check that a plain ADD clears it so the
     canonical initialiser works. *)
  let text =
    {| main: ldi 1, r4
             ldi 3, r5
             ds  r4, r5, r4      ; leaves V set (1 - 3 < 0)
             add r0, r0, r0      ; must clear C and V
  |}
    ^ ds_program
  in
  let mach = Machine.create (Program.resolve_exn (Asm.parse_exn text)) in
  (* Run main through to the add, then check V. *)
  Machine.set_pc mach 0;
  for _ = 1 to 3 do ignore (Machine.step mach) done;
  Alcotest.(check bool) "V set by ds" true (Machine.v_bit mach);
  ignore (Machine.step mach);
  Alcotest.(check bool) "V cleared by add" false (Machine.v_bit mach);
  Alcotest.(check bool) "C cleared by add" false (Machine.carry mach)

(* A nullified taken branch must not be taken. *)
let test_nullified_branch () =
  expect_ret0 "comclr kills the branch"
    {| main: ldi 5, ret0
             comclr,= r0, r0, r1
             b elsewhere
             bv r0(rp)
       elsewhere: ldi 9, ret0
             bv r0(rp) |}
    [] 5l

let test_blr_link_value () =
  (* BLR links the address of the following instruction. *)
  expect_ret0 "blr link"
    {| main:  blr r0, ret0
       slot:  bv r0(rp)
              nop |}
    [] 1l

let test_ldaddr_bv () =
  expect_ret0 "ldaddr + bv computed jump"
    {| main:  ldaddr there, r4
              bv r0(r4)
              ldi 1, ret0
       there: ldi 2, ret0
              bv r0(rp) |}
    [] 2l

let test_call_arity () =
  let mach = Machine.create (Program.resolve_exn (Asm.parse_exn {| main: bv r0(rp) |})) in
  Alcotest.check_raises "7 args rejected"
    (Invalid_argument "Machine.call: more than 6 arguments") (fun () ->
      ignore (Machine.call mach "main" ~args:[ 1l; 2l; 3l; 4l; 5l; 6l; 7l ]))

let test_shadd_sets_carry () =
  (* SHxADD writes the carry of its 32-bit add (the dword chains rely on
     it): the pre-shifter's lost bits do NOT enter the carry, only the
     addition of the already-shifted operand does. *)
  expect_ret0 "sh1add add carry out"
    {| main: ldil 0x60000000, r4
             sh1add r4, r4, r5      ; 0xC0000000 + 0x60000000 carries
             addc r0, r0, ret0
             bv r0(rp) |}
    [] 1l;
  expect_ret0 "pre-shifter loss is not carry"
    {| main: ldil 0xc0000000, r4
             sh1add r4, r0, r5      ; 0x80000000 + 0: no add carry
             addc r0, r0, ret0
             bv r0(rp) |}
    [] 0l

(* ------------------------------------------------------------------ *)
(* Instruction cache model                                             *)

let test_icache_mapping () =
  let c = Hppa_machine.Icache.create ~line_words:4 ~lines:2 () in
  (* Same line: one miss then hits. *)
  Alcotest.(check bool) "first access misses" false (Hppa_machine.Icache.access c 0);
  Alcotest.(check bool) "same line hits" true (Hppa_machine.Icache.access c 3);
  (* Conflicting lines 0 and 2 map to the same set. *)
  Alcotest.(check bool) "line 2 misses" false (Hppa_machine.Icache.access c 8);
  Alcotest.(check bool) "line 0 evicted" false (Hppa_machine.Icache.access c 0);
  Alcotest.(check int) "misses" 3 (Hppa_machine.Icache.misses c);
  Alcotest.(check int) "hits" 1 (Hppa_machine.Icache.hits c);
  Alcotest.(check int) "footprint" 1 (Hppa_machine.Icache.footprint_lines c);
  Hppa_machine.Icache.reset c;
  Alcotest.(check int) "reset misses" 0 (Hppa_machine.Icache.misses c);
  Alcotest.(check int) "reset footprint" 0 (Hppa_machine.Icache.footprint_lines c)

let test_icache_counts_fetches () =
  (* Every fetch is looked up, nullified slots included: 4 instructions
     in one line = 1 miss + 3 hits. *)
  let text =
    {| main: comclr,= r0, r0, r1
             ldi 9, ret0
             ldi 1, r4
             bv r0(rp) |}
  in
  let mach = Machine.create (Program.resolve_exn (Asm.parse_exn text)) in
  let c = Hppa_machine.Icache.create ~line_words:8 ~lines:4 () in
  Machine.set_icache mach (Some c);
  (match Machine.call mach "main" ~args:[] with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "halt expected");
  Alcotest.(check int) "accesses = cycles" 4
    (Hppa_machine.Icache.hits c + Hppa_machine.Icache.misses c);
  Alcotest.(check int) "one line" 1 (Hppa_machine.Icache.misses c)

let test_icache_create_validation () =
  Alcotest.check_raises "line_words must be a power of two"
    (Invalid_argument "Icache.create: line_words must be a positive power of two")
    (fun () -> ignore (Hppa_machine.Icache.create ~line_words:3 ()))

(* Failure injection: the DS contract requires the C/V initialiser; a
   poisoned V must be able to corrupt a division, which is exactly why the
   millicode starts with add r0, r0, r0. *)
let test_ds_requires_initialiser () =
  let uninit =
    {| divu32x: copy arg0, r19
                copy r0, r20
                ldi  32, r21
       xloop:   addc r19, r19, r19
                ds   r20, arg1, r20
                addib,> -1, r21, xloop
                addc r0, r0, r22
                sh1add r19, r22, ret0
                bv   r0(rp)
       poison:  ldi 1, r4
                ldi 3, r5
                ds  r4, r5, r4
                b   divu32x |}
  in
  let mach = Machine.create (Program.resolve_exn (Asm.parse_exn uninit)) in
  let divide ~poisoned x y =
    Machine.reset mach;
    match
      Machine.call mach (if poisoned then "poison" else "divu32x") ~args:[ x; y ]
    with
    | Machine.Halted -> Machine.get mach Reg.ret0
    | _ -> Alcotest.fail "halt expected"
  in
  (* Clean PSW (fresh machine): correct. *)
  Alcotest.check word "clean divide" 14l (divide ~poisoned:false 100l 7l);
  (* Poisoned V flips the first divide step. *)
  let corrupted = divide ~poisoned:true 100l 7l in
  Alcotest.(check bool) "poisoned V corrupts the quotient" true
    (not (Word.equal corrupted 14l))

let suite =
  [
    ( "machine:unit",
      [
        Alcotest.test_case "r0 hardwired" `Quick test_r0_hardwired;
        Alcotest.test_case "alu basics" `Quick test_alu_basics;
        Alcotest.test_case "carry across addc" `Quick test_carry_across_addc;
        Alcotest.test_case "borrow convention" `Quick test_sub_sets_not_borrow;
        Alcotest.test_case "overflow traps" `Quick test_overflow_traps;
        Alcotest.test_case "comclr nullify" `Quick test_comclr_nullify;
        Alcotest.test_case "extr completer" `Quick test_extr_completer;
        Alcotest.test_case "shd" `Quick test_shd;
        Alcotest.test_case "zdep/sar pseudos" `Quick test_zdep_shl;
        Alcotest.test_case "branches" `Quick test_branches;
        Alcotest.test_case "blr vectoring" `Quick test_blr_vector;
        Alcotest.test_case "memory" `Quick test_memory;
        Alcotest.test_case "break and bad pc" `Quick test_break_and_bad_pc;
        Alcotest.test_case "statistics" `Quick test_stats;
        Alcotest.test_case "fuel" `Quick test_fuel;
        Alcotest.test_case "V bit lifecycle" `Quick test_v_bit_initialised_by_add;
        Alcotest.test_case "nullified branch" `Quick test_nullified_branch;
        Alcotest.test_case "blr link value" `Quick test_blr_link_value;
        Alcotest.test_case "ldaddr + bv" `Quick test_ldaddr_bv;
        Alcotest.test_case "call arity" `Quick test_call_arity;
        Alcotest.test_case "shadd carry" `Quick test_shadd_sets_carry;
        Alcotest.test_case "icache mapping" `Quick test_icache_mapping;
        Alcotest.test_case "icache counts fetches" `Quick test_icache_counts_fetches;
        Alcotest.test_case "icache validation" `Quick test_icache_create_validation;
        Alcotest.test_case "ds needs initialiser" `Quick test_ds_requires_initialiser;
      ] );
    qsuite "machine:props" [ prop_ds_division ];
  ]
