(* Unit and property tests for the fixed-width word substrate. *)

module Word = Hppa_word.Word
module Dword = Hppa_word.Dword
module U128 = Hppa_word.U128
open Util

let i64 = Word.to_int64_s
let u64 = Word.to_int64_u

(* ------------------------------------------------------------------ *)
(* Unit cases                                                          *)

let test_constants () =
  Alcotest.(check int) "max_signed" 0x7fffffff (Word.to_int_u Word.max_signed);
  Alcotest.(check int) "min_signed" 0x80000000 (Word.to_int_u Word.min_signed);
  Alcotest.(check int) "max_unsigned" 0xffffffff (Word.to_int_u Word.max_unsigned);
  Alcotest.(check int) "minus_one signed" (-1) (Word.to_int_s Word.minus_one)

let test_carry_chain () =
  let sum, c = Word.add_carry Word.max_unsigned 1l ~carry_in:false in
  Alcotest.check word "wraps to zero" 0l sum;
  Alcotest.(check bool) "carry out" true c;
  let sum, c = Word.add_carry Word.max_unsigned Word.max_unsigned ~carry_in:true in
  Alcotest.check word "ff+ff+1" Word.max_unsigned sum;
  Alcotest.(check bool) "carry out" true c;
  let sum, c = Word.add_carry 1l 2l ~carry_in:false in
  Alcotest.check word "no wrap" 3l sum;
  Alcotest.(check bool) "no carry" false c

let test_borrow_chain () =
  let d, b = Word.sub_borrow 0l 1l ~borrow_in:false in
  Alcotest.check word "0-1 wraps" Word.max_unsigned d;
  Alcotest.(check bool) "borrow" true b;
  let d, b = Word.sub_borrow 5l 3l ~borrow_in:true in
  Alcotest.check word "5-3-1" 1l d;
  Alcotest.(check bool) "no borrow" false b

let test_overflow_predicates () =
  Alcotest.(check bool) "max+1 overflows" true
    (Word.add_overflows_s Word.max_signed 1l);
  Alcotest.(check bool) "min-1 overflows" true
    (Word.sub_overflows_s Word.min_signed 1l);
  Alcotest.(check bool) "1+1 fine" false (Word.add_overflows_s 1l 1l);
  Alcotest.(check bool) "min + min overflows" true
    (Word.add_overflows_s Word.min_signed Word.min_signed);
  Alcotest.(check bool) "abs(min) = min" true
    (Word.equal (Word.abs Word.min_signed) Word.min_signed)

let test_extract_deposit () =
  Alcotest.check word "extract_u mid" 0xABl
    (Word.extract_u 0xAB00l ~pos:8 ~len:8);
  Alcotest.check word "extract_s sign" (-1l)
    (Word.extract_s 0x8000_0000l ~pos:31 ~len:1);
  Alcotest.check word "extract_u full" 0xDEADBEEFl
    (Word.extract_u 0xDEADBEEFl ~pos:0 ~len:32);
  Alcotest.check word "deposit" 0x00F0l
    (Word.deposit 0xFl ~into:0l ~pos:4 ~len:4);
  Alcotest.check word "deposit keeps rest" 0xA0FBl
    (Word.deposit 0xFl ~into:0xA00Bl ~pos:4 ~len:4)

let test_sh_add_hw_circuit () =
  (* Same-sign operands: the cheap circuit must agree with exact overflow
     (section 4 says disagreement is possible only for mixed signs). *)
  let check_same_sign a b k =
    if Word.is_neg a = Word.is_neg b then
      Alcotest.(check bool)
        (Printf.sprintf "hw=exact for %ld<<%d + %ld" a k b)
        (Word.sh_add_overflows k a b)
        (Word.sh_add_overflows_hw k a b)
  in
  List.iter
    (fun (a, b) -> List.iter (check_same_sign a b) [ 1; 2; 3 ])
    [
      (1l, 1l); (0x2000_0000l, 0x1000_0000l); (-5l, -7l);
      (0x7fff_ffffl, 0x7fff_ffffl); (Word.min_signed, -1l); (0l, 0l);
    ]

let test_divmod_semantics () =
  let q, r = Word.divmod_trunc_s (-7l) 2l in
  Alcotest.check word "-7/2 truncates toward 0" (-3l) q;
  Alcotest.check word "-7 mod 2" (-1l) r;
  let q, r = Word.divmod_trunc_s 7l (-2l) in
  Alcotest.check word "7/-2" (-3l) q;
  Alcotest.check word "7 mod -2" 1l r;
  let q, r = Word.divmod_trunc_s Word.min_signed (-1l) in
  Alcotest.check word "min/-1 wraps" Word.min_signed q;
  Alcotest.check word "min mod -1" 0l r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Word.divmod_u 1l 0l))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_add_matches_int64 =
  QCheck.Test.make ~name:"add = int64 add mod 2^32" ~count:2000
    (QCheck.pair arb_word arb_word) (fun (a, b) ->
      i64 (Word.add a b) = Int64.of_int32 (Int64.to_int32 (Int64.add (u64 a) (u64 b))))

let prop_add_carry_exact =
  QCheck.Test.make ~name:"add_carry reconstructs the 33-bit sum" ~count:2000
    (QCheck.triple arb_word arb_word QCheck.bool) (fun (a, b, cin) ->
      let sum, cout = Word.add_carry a b ~carry_in:cin in
      let wide = Int64.add (Int64.add (u64 a) (u64 b)) (if cin then 1L else 0L) in
      u64 sum = Int64.logand wide 0xffff_ffffL
      && cout = (Int64.shift_right_logical wide 32 = 1L))

let prop_sub_borrow_exact =
  QCheck.Test.make ~name:"sub_borrow reconstructs the wide difference" ~count:2000
    (QCheck.triple arb_word arb_word QCheck.bool) (fun (a, b, bin) ->
      let d, bout = Word.sub_borrow a b ~borrow_in:bin in
      let wide = Int64.sub (Int64.sub (u64 a) (u64 b)) (if bin then 1L else 0L) in
      u64 d = Int64.logand wide 0xffff_ffffL && bout = (wide < 0L))

let prop_overflow_iff_wide =
  QCheck.Test.make ~name:"add_overflows_s iff wide sum unrepresentable" ~count:2000
    (QCheck.pair arb_word arb_word) (fun (a, b) ->
      let wide = Int64.add (i64 a) (i64 b) in
      Word.add_overflows_s a b = (wide < -0x8000_0000L || wide > 0x7fff_ffffL))

let prop_sh_add =
  QCheck.Test.make ~name:"sh_add = (a<<k) + b mod 2^32" ~count:2000
    (QCheck.triple arb_word arb_word (QCheck.int_range 1 3)) (fun (a, b, k) ->
      Word.equal (Word.sh_add k a b) (Word.add (Word.shl a k) b))

let prop_sh_add_hw_sound =
  QCheck.Test.make
    ~name:"hw overflow circuit exact when operand signs agree" ~count:2000
    (QCheck.triple arb_word arb_word (QCheck.int_range 1 3)) (fun (a, b, k) ->
      Word.is_neg a <> Word.is_neg b
      || Word.sh_add_overflows_hw k a b = Word.sh_add_overflows k a b)

let prop_extract_roundtrip =
  QCheck.Test.make ~name:"deposit inverts extract_u" ~count:2000
    (QCheck.triple arb_word (QCheck.int_range 0 31) (QCheck.int_range 1 32))
    (fun (w, pos, len) ->
      QCheck.assume (pos + len <= 32);
      let field = Word.extract_u w ~pos ~len in
      Word.equal (Word.deposit field ~into:w ~pos ~len) w)

let prop_extract_s_sign_extends =
  QCheck.Test.make ~name:"extract_s = sign-extended extract_u" ~count:2000
    (QCheck.triple arb_word (QCheck.int_range 0 31) (QCheck.int_range 1 32))
    (fun (w, pos, len) ->
      QCheck.assume (pos + len <= 32);
      let u = Word.extract_u w ~pos ~len in
      let s = Word.extract_s w ~pos ~len in
      if len = 32 || not (Word.bit w (pos + len - 1)) then Word.equal s u
      else Word.equal s (Word.logor u (Word.shl (-1l) len)))

let prop_mul_wide =
  QCheck.Test.make ~name:"mul_wide_s splits the int64 product" ~count:2000
    (QCheck.pair arb_word arb_word) (fun (a, b) ->
      let hi, lo = Word.mul_wide_s a b in
      let p = Int64.mul (i64 a) (i64 b) in
      u64 lo = Int64.logand p 0xffff_ffffL
      && Word.equal hi (Int64.to_int32 (Int64.shift_right p 32)))

let prop_divmod_u =
  QCheck.Test.make ~name:"divmod_u: x = q*y + r, r < y" ~count:2000
    (QCheck.pair arb_word arb_word) (fun (x, y) ->
      QCheck.assume (not (Word.equal y 0l));
      let q, r = Word.divmod_u x y in
      Word.lt_u r y
      && u64 x = Int64.add (Int64.mul (u64 q) (u64 y)) (u64 r))

let prop_divmod_trunc =
  QCheck.Test.make ~name:"divmod_trunc_s: C semantics identity" ~count:2000
    (QCheck.pair arb_word arb_word) (fun (x, y) ->
      QCheck.assume (not (Word.equal y 0l));
      QCheck.assume (not (Word.equal x Word.min_signed && Word.equal y (-1l)));
      let q, r = Word.divmod_trunc_s x y in
      i64 x = Int64.add (Int64.mul (i64 q) (i64 y)) (i64 r)
      && Int64.abs (i64 r) < Int64.abs (i64 y)
      && (Word.equal r 0l || Word.is_neg r = Word.is_neg x))

(* ------------------------------------------------------------------ *)
(* Dword and U128                                                      *)

let prop_dword_add =
  QCheck.Test.make ~name:"Dword.add = int64 add" ~count:2000
    (QCheck.pair (QCheck.pair arb_word arb_word) (QCheck.pair arb_word arb_word))
    (fun ((ah, al), (bh, bl)) ->
      let a = Dword.make ~hi:ah ~lo:al and b = Dword.make ~hi:bh ~lo:bl in
      Dword.to_int64 (Dword.add a b)
      = Int64.add (Dword.to_int64 a) (Dword.to_int64 b))

let prop_dword_sh_add =
  QCheck.Test.make ~name:"Dword.sh_add = shifted int64 add" ~count:2000
    (QCheck.triple (QCheck.pair arb_word arb_word)
       (QCheck.pair arb_word arb_word) (QCheck.int_range 1 3))
    (fun ((ah, al), (bh, bl), k) ->
      let a = Dword.make ~hi:ah ~lo:al and b = Dword.make ~hi:bh ~lo:bl in
      Dword.to_int64 (Dword.sh_add k a b)
      = Int64.add (Int64.shift_left (Dword.to_int64 a) k) (Dword.to_int64 b))

let prop_u128_mul =
  QCheck.Test.make ~name:"U128.mul_64_64 exact on 32-bit factors" ~count:2000
    (QCheck.pair arb_word arb_word) (fun (a, b) ->
      let p = U128.mul_64_64 (u64 a) (u64 b) in
      U128.fits_int64 p && U128.to_int64 p = Int64.mul (u64 a) (u64 b))

let prop_u128_mul_large =
  QCheck.Test.make ~name:"U128 high limb via shifted factors" ~count:2000
    (QCheck.pair arb_word arb_word) (fun (a, b) ->
      (* (a << 32) * (b << 32) has low limb 0 and high limb a*b. *)
      let p =
        U128.mul_64_64 (Int64.shift_left (u64 a) 32) (Int64.shift_left (u64 b) 32)
      in
      U128.to_int64 p = 0L
      && p.U128.hi = Int64.mul (u64 a) (u64 b))

let prop_u128_shift =
  QCheck.Test.make ~name:"U128 shift_right consistent with mul by 2^k" ~count:500
    (QCheck.triple arb_word arb_word (QCheck.int_range 0 63))
    (fun (a, b, k) ->
      let p = U128.mul_64_64 (u64 a) (u64 b) in
      let q = U128.shift_right p k in
      U128.to_int64 q
      = Int64.shift_right_logical (Int64.mul (u64 a) (u64 b)) k)

let suite =
  [
    ( "word:unit",
      [
        Alcotest.test_case "constants" `Quick test_constants;
        Alcotest.test_case "carry chain" `Quick test_carry_chain;
        Alcotest.test_case "borrow chain" `Quick test_borrow_chain;
        Alcotest.test_case "overflow predicates" `Quick test_overflow_predicates;
        Alcotest.test_case "extract/deposit" `Quick test_extract_deposit;
        Alcotest.test_case "sh_add hw circuit" `Quick test_sh_add_hw_circuit;
        Alcotest.test_case "divmod semantics" `Quick test_divmod_semantics;
      ] );
    qsuite "word:props"
      [
        prop_add_matches_int64;
        prop_add_carry_exact;
        prop_sub_borrow_exact;
        prop_overflow_iff_wide;
        prop_sh_add;
        prop_sh_add_hw_sound;
        prop_extract_roundtrip;
        prop_extract_s_sign_extends;
        prop_mul_wide;
        prop_divmod_u;
        prop_divmod_trunc;
        prop_dword_add;
        prop_dword_sh_add;
        prop_u128_mul;
        prop_u128_mul_large;
        prop_u128_shift;
      ];
  ]
