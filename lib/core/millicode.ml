(* mulI / muloI are aliases of the final-algorithm routines; a label-only
   compilation unit placed right before each target would also work, but
   explicit single-instruction trampolines keep every entry independent of
   layout. *)
let aliases =
  let b = Builder.create ~prefix:"aliases" () in
  Builder.label b "mulI";
  Builder.insn b (Emit.b "mul_final");
  Builder.label b "muloI";
  Builder.insn b (Emit.b "mulo");
  Builder.to_source b

let source =
  Program.concat
    [
      aliases; Mul_var.all; Mul_ext.source; Div_gen.source; Div_ext.source;
      Div_small.source; Mul_w64.source; Div_w64.source; Div_u128.source;
    ]

let resolved () = Program.resolve_exn source
let machine ?config () = Hppa_machine.Machine.create ?config (resolved ())
let scheduled_source () = Delay.schedule source

let scheduled_machine () =
  Hppa_machine.Machine.create ~delay_slots:true
    (Program.resolve_exn (scheduled_source ()))

let entries =
  [ "mulI"; "muloI" ] @ Mul_var.entries @ Mul_ext.entries @ Div_gen.entries
  @ Div_ext.entries @ Div_small.entries @ Mul_w64.entries @ Div_w64.entries
  @ Div_u128.entries

let mulI = "mulI"
let muloI = "muloI"

(* Declared register interfaces of every entry, for the static checker:
   everything takes arg0/arg1 (arg2 for the 64/32 divides) and clobbers
   only the scratch set; the 64-bit routines and the divides also
   document ret1 (high word / remainder). *)
let conventions =
  let spec ?(args = [ Reg.arg0; Reg.arg1 ]) ~results name =
    { Hppa_verify.Cfg.name; args; results; clobbers = Hppa_verify.Cfg.scratch }
  in
  let r1 = [ Reg.ret0 ] and r2 = [ Reg.ret0; Reg.ret1 ] in
  List.map (spec ~results:r1)
    [
      "mulI"; "muloI"; "mul_naive"; "mul_naive_early"; "mul_nibble";
      "mul_switch"; "mul_final"; "mulo"; "divU_small"; "divI_small";
    ]
  @ List.map (spec ~results:r2) [ "mulU64"; "mulI64"; "divU"; "divI"; "remU"; "remI" ]
  @ List.map
      (spec ~args:[ Reg.arg0; Reg.arg1; Reg.arg2 ] ~results:r2)
      [ "divU64"; "divI64" ]
  @
  (* The W64 family takes both operands as register pairs. The 128-bit
     multiplies also return the low result dword in (arg0:arg1); the
     divide cores return the remainder dword there. *)
  let w64_args = [ Reg.arg0; Reg.arg1; Reg.arg2; Reg.arg3 ] in
  let r4 = [ Reg.ret0; Reg.ret1; Reg.arg0; Reg.arg1 ] in
  List.map (spec ~args:w64_args ~results:r4)
    [ "mulU128"; "mulI128"; "w64$udivmod"; "w64$sdivmod" ]
  @ List.map (spec ~args:w64_args ~results:r2) Div_w64.entries
  @
  (* The 128/64 divide takes three operand dwords — the divisor rides
     in (ret0:ret1) — and its estimate-and-correct step additionally
     takes a scalar limb in ret0. *)
  [
    spec
      ~args:(w64_args @ [ Reg.ret0; Reg.ret1 ])
      ~results:r4 "divU128by64";
    spec
      ~args:(w64_args @ [ Reg.ret0 ])
      ~results:[ Reg.ret0; Reg.arg0; Reg.arg1 ]
      "w64$divlstep";
  ]

(* The pair-level view of the W64 interface: both operands are 64-bit
   (hi:lo) pairs everywhere; the multiplies and the divide cores return
   two result dwords, the public divide/rem wrappers one. *)
let pair_conventions =
  let xy = [ (Reg.arg0, Reg.arg1); (Reg.arg2, Reg.arg3) ] in
  let both = [ (Reg.ret0, Reg.ret1); (Reg.arg0, Reg.arg1) ] in
  let ret = [ (Reg.ret0, Reg.ret1) ] in
  List.map
    (fun name ->
      { Hppa_verify.Pairs.name; arg_pairs = xy; result_pairs = both })
    [ "mulU128"; "mulI128"; "w64$udivmod"; "w64$sdivmod" ]
  @ List.map
      (fun name ->
        { Hppa_verify.Pairs.name; arg_pairs = xy; result_pairs = ret })
      Div_w64.entries
  @ [
      (* divU128by64: dividend in both arg slots, divisor in the
         (ret0:ret1) slot; quotient and remainder dwords back in the
         canonical result pairs. *)
      {
        Hppa_verify.Pairs.name = "divU128by64";
        arg_pairs = Hppa_verify.Pairs.arg_slots;
        result_pairs = both;
      };
      (* The step's chunk rides in (arg0:arg1) and its remainder comes
         back there; the scalar limbs are outside the pair view. *)
      {
        Hppa_verify.Pairs.name = "w64$divlstep";
        arg_pairs = [ (Reg.arg0, Reg.arg1) ];
        result_pairs = [ (Reg.arg0, Reg.arg1) ];
      };
    ]

let lint ?(scheduled = false) () =
  let src = if scheduled then scheduled_source () else source in
  let options =
    {
      Hppa_verify.Cfg.mode =
        (if scheduled then Hppa_verify.Cfg.Delay_slot else Hppa_verify.Cfg.Simple);
      blr_slots = Div_small.threshold;
    }
  in
  match
    Hppa_verify.Driver.check_source ~options ~specs:conventions
      ~pairs:pair_conventions ~entries src
  with
  | Ok findings -> findings
  | Error msg -> [ Hppa_verify.Findings.v Hppa_verify.Findings.Structure msg ]
