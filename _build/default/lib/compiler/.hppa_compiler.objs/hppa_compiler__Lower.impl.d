lib/compiler/lower.ml: Array Builder Chain Chain_codegen Chain_rules Div_const Div_small Emit Expr Hppa_word Int32 List Millicode Option Printf Program Reg
