(** Rule-based search for multiply-by-constant chains (§5).

    The paper's rule program derives a chain for [n] from chains for smaller
    numbers: one more step reaches [2^k*n], [3n], [5n], [9n], [n-1], [n+1],
    [n+2], [n+4], [n+8], [2n+1], [4n+1] and [8n+1]; two more reach
    [(2^k - 1)n] and [(2^k + 1)n]; and chains compose over factorisations
    ([cost (p*q) <= cost p + cost q]). This module implements those rules as
    a shortest-path relaxation over target values seeded with the exact
    exhaustive closure to depth 3 (the value-level rules cannot express
    chains that reuse an intermediate twice — the paper's 59 — so, like the
    paper, the program "remembers" those cases). The result is fast and —
    as the paper reports for its own rule program — minimal for the large
    majority of constants, with every observed exception a single step
    from optimal ({!Chain_stats} quantifies this against exhaustive
    search).

    Three rule sets are provided. [Fast] uses every rule. [Monotonic]
    restricts to rules that keep the chain strictly increasing and built
    from ADD/SHmADD only, so the generated code detects overflow (§5
    "Overflow"); such chains are sometimes one step longer (the paper's
    example: 31 goes from 2 to 3 steps). [No_temp] restricts to steps that
    read only the previous element, the operand and zero — chains that
    compile without a temporary register (§5 "Register Use"); comparing its
    costs with exhaustive lengths identifies the constants that {e must}
    spend a temporary (the paper: 59, 87 and 94 below 100). *)

type mode = Fast | Monotonic | No_temp

type table
(** Costs and reconstruction data for every target in [0 .. limit]. *)

val table : mode -> limit:int -> table
val table_limit : table -> int

val cost : table -> int -> int option
(** Chain length for a target in range; [None] when the rule set cannot
    reach it within the internal cost cap (does not happen for [Fast]). *)

val chain : table -> int -> Chain.t option
(** Reconstruct a chain realising [cost]. *)

val find : ?mode:mode -> int -> Chain.t option
(** Chain for one constant [n >= 1] of any magnitude up to [2^31 - 1]: uses
    a lazily built shared table for small [n] and a budgeted recursive
    descent for large [n]. [None] only in [Monotonic] mode when the cap is
    exceeded. Results are memoised. *)

val find_exn : ?mode:mode -> int -> Chain.t
