module Word = Hppa_word.Word
module Obs = Hppa_obs.Obs
module Machine = Hppa_machine.Machine
module Trap = Hppa_machine.Trap
module Dist = Hppa_dist.Operand_dist
module Prng = Hppa_dist.Prng

type workload =
  | Figure5 of { samples : int; seed : int64 }
  | Log_uniform of { samples : int; seed : int64 }
  | Small_divisors of { samples : int; seed : int64 }
  | Fixed of (Word.t * Word.t) list
  | Uniform64 of { samples : int; seed : int64 }
  | Zipf64 of { samples : int; seed : int64 }
  | Hw0 of { samples : int; seed : int64 }

(* FNV-1a over the operand words: Fixed workloads get a content-derived
   tag so the store key does not depend on list identity. *)
let fixed_hash pairs =
  let h = ref 0xcbf29ce484222325L in
  let mix w =
    for shift = 0 to 3 do
      let byte = Int32.to_int (Int32.shift_right_logical w (8 * shift)) land 0xff in
      h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) 0x100000001b3L
    done
  in
  List.iter (fun (x, y) -> mix x; mix y) pairs;
  Printf.sprintf "%016Lx" !h

let workload_tag = function
  | Figure5 { samples; seed } -> Printf.sprintf "figure5:%d:%Ld" samples seed
  | Log_uniform { samples; seed } ->
      Printf.sprintf "loguniform:%d:%Ld" samples seed
  | Small_divisors { samples; seed } ->
      Printf.sprintf "smalldiv:%d:%Ld" samples seed
  | Fixed pairs -> Printf.sprintf "fixed:%d:%s" (List.length pairs) (fixed_hash pairs)
  | Uniform64 { samples; seed } -> Printf.sprintf "uniform64:%d:%Ld" samples seed
  | Zipf64 { samples; seed } -> Printf.sprintf "zipf64:%d:%Ld" samples seed
  | Hw0 { samples; seed } -> Printf.sprintf "hw0:%d:%Ld" samples seed

let is_w64_workload = function
  | Uniform64 _ | Zipf64 _ | Hw0 _ -> true
  | Figure5 _ | Log_uniform _ | Small_divisors _ | Fixed _ -> false

let raw_pairs = function
  | Uniform64 _ | Zipf64 _ | Hw0 _ -> []
  | Fixed pairs -> pairs
  | Figure5 { samples; seed } ->
      let prng = Prng.create seed in
      List.init samples (fun _ -> Dist.figure5_pair prng)
  | Log_uniform { samples; seed } ->
      let prng = Prng.create seed in
      List.init samples (fun _ ->
          let x = Dist.log_uniform prng in
          let y = Dist.log_uniform prng in
          (x, y))
  | Small_divisors { samples; seed } ->
      let prng = Prng.create seed in
      List.init samples (fun _ ->
          let x = Dist.log_uniform prng in
          let y = Dist.small_divisor prng in
          (x, y))

let operands workload (req : Strategy.request) =
  let divide = req.op = Div || req.op = Rem in
  raw_pairs workload
  |> List.map (fun (x, y) ->
         match req.operand with
         | Strategy.Constant c -> (x, c)
         | Strategy.Constant64 _ -> (x, y) (* unreachable: W32-guarded *)
         | Strategy.Variable ->
             if divide && Word.equal y 0l then (x, Word.one) else (x, y))

(* 64-bit pairs: the 64-bit workloads generate them directly; the 32-bit
   workloads zero-extend (covering the degenerate high-word-zero path of
   the W64 routines). *)
let raw_pairs64 = function
  | Uniform64 { samples; seed } ->
      let prng = Prng.create seed in
      List.init samples (fun _ ->
          let x = Dist.uniform64 prng in
          let y = Dist.uniform64 prng in
          (x, y))
  | Zipf64 { samples; seed } ->
      let prng = Prng.create seed in
      List.init samples (fun _ ->
          let x = Dist.log_uniform64 prng in
          let y = Dist.zipf64_divisor prng in
          (x, y))
  | Hw0 { samples; seed } ->
      let prng = Prng.create seed in
      List.init samples (fun _ -> Dist.w64_pair prng)
  | (Figure5 _ | Log_uniform _ | Small_divisors _ | Fixed _) as w ->
      raw_pairs w
      |> List.map (fun (x, y) -> (Word.to_int64_u x, Word.to_int64_u y))

(* Resolved argument lists for one call, with a label for error
   messages: one or two words for W32, the two (hi:lo) register pairs
   for W64. *)
let operand_lists workload (req : Strategy.request) =
  match req.width with
  | Strategy.W32 -> (
      match req.operand with
      | Strategy.Constant64 _ -> Error "64-bit constant requires a w64 request"
      | Strategy.Constant _ | Strategy.Variable ->
          if is_w64_workload workload then
            Error "64-bit workload requires a w64 request"
          else
            Ok
              (operands workload req
              |> List.map (fun (x, y) ->
                     let args =
                       match req.operand with
                       | Strategy.Constant _ | Strategy.Constant64 _ -> [ x ]
                       | Strategy.Variable -> [ x; y ]
                     in
                     (args, Printf.sprintf "x=%ld y=%ld" x y))))
  | Strategy.W64 ->
      let divide =
        match req.op with Div | Rem | Divl -> true | Mul -> false
      in
      Ok
        (raw_pairs64 workload
        |> List.map (fun (x, y) ->
               let y = if divide && Int64.equal y 0L then 1L else y in
               match (req.op, req.operand) with
               | Strategy.Divl, _ ->
                   (* keep the quotient representable: the dividend's
                      high dword reduced below the divisor *)
                   let xhi = Int64.unsigned_rem x y in
                   ( Hppa_w64.operands_divl ~xhi ~xlo:x y,
                     Printf.sprintf "x=%Ld:%Ld y=%Ld" xhi x y )
               | _, Strategy.Constant64 _ ->
                   ( [ Hppa_w64.hi32 x; Hppa_w64.lo32 x ],
                     Printf.sprintf "x=%Ld" x )
               | _, (Strategy.Constant _ | Strategy.Variable) ->
                   (Hppa_w64.operands x y, Printf.sprintf "x=%Ld y=%Ld" x y)))

type measurement = {
  strategy : string;
  request : string;
  entry : string;
  digest : string;
  workload : string;
  samples : int;
  total_cycles : int;
  mean_cycles : float;
  min_cycles : int;
  max_cycles : int;
  used_engine : bool;
  batch_width : int;
  cert_kind : string option;
  cert_digest : string option;
}

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader for our own output (no JSON library in the
   dependency set).                                                    *)

module Json = struct
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Num of float
    | Bool of bool
    | Null

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; value)
      else fail (Printf.sprintf "expected %s" word)
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance (); Buffer.contents buf
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some (('"' | '\\' | '/') as c) -> advance (); Buffer.add_char buf c; go ()
            | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
            | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
            | _ -> fail "unsupported escape")
        | Some c -> advance (); Buffer.add_char buf c; go ()
      in
      go ()
    in
    let number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      let span = String.sub s start (!pos - start) in
      match float_of_string_opt span with
      | Some f -> f
      | None -> fail (Printf.sprintf "bad number %S" span)
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (advance (); Obj [])
          else
            let rec members acc =
              skip_ws ();
              let key = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); members ((key, v) :: acc)
              | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
              | _ -> fail "expected , or } in object"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (advance (); Arr [])
          else
            let rec elems acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); elems (v :: acc)
              | Some ']' -> advance (); Arr (List.rev (v :: acc))
              | _ -> fail "expected , or ] in array"
            in
            elems []
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number ())
      | None -> fail "unexpected end of input"
    in
    try
      let v = value () in
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing bytes at %d" !pos)
      else Ok v
    with Bad msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let to_string = function Str s -> Some s | _ -> None
  let to_int = function Num f -> Some (int_of_float f) | _ -> None
  let to_bool = function Bool b -> Some b | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Store                                                               *)

let schema = "hppa-bench-plans/2"

module Store = struct
  type t = (string * string, measurement) Hashtbl.t

  let create () : t = Hashtbl.create 64
  let length = Hashtbl.length
  let find t ~digest ~workload = Hashtbl.find_opt t (digest, workload)
  let add t m = Hashtbl.replace t (m.digest, m.workload) m

  let entries t =
    Hashtbl.fold (fun _ m acc -> m :: acc) t []
    |> List.sort (fun a b ->
           compare (a.digest, a.workload, a.strategy)
             (b.digest, b.workload, b.strategy))

  let find_digest t digest =
    entries t |> List.filter (fun m -> m.digest = digest)

  let escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let entry_json m =
    let cert =
      match (m.cert_kind, m.cert_digest) with
      | Some k, Some d ->
          Printf.sprintf ",\"cert_kind\":\"%s\",\"cert_digest\":\"%s\""
            (escape k) (escape d)
      | _ -> ""
    in
    (* Scalar measurements stay byte-identical to older stores: the
       field only appears when batching was actually used. *)
    let batch =
      if m.batch_width > 1 then
        Printf.sprintf ",\"batch_width\":%d" m.batch_width
      else ""
    in
    Printf.sprintf
      "{\"digest\":\"%s\",\"workload\":\"%s\",\"strategy\":\"%s\",\"request\":\"%s\",\"entry\":\"%s\",\"samples\":%d,\"total_cycles\":%d,\"min_cycles\":%d,\"max_cycles\":%d,\"used_engine\":%b%s%s}"
      (escape m.digest) (escape m.workload) (escape m.strategy)
      (escape m.request) (escape m.entry) m.samples m.total_cycles m.min_cycles
      m.max_cycles m.used_engine batch cert

  let to_json t =
    Printf.sprintf "{\"schema\":\"%s\",\"entries\":[%s]}\n" schema
      (String.concat "," (List.map entry_json (entries t)))

  let measurement_of_json j =
    let str key = Option.bind (Json.member key j) Json.to_string in
    let int key = Option.bind (Json.member key j) Json.to_int in
    let bool key = Option.bind (Json.member key j) Json.to_bool in
    match
      (str "digest", str "workload", str "strategy", str "request", str "entry",
       int "samples", int "total_cycles", int "min_cycles", int "max_cycles",
       bool "used_engine")
    with
    | ( Some digest, Some workload, Some strategy, Some request, Some entry,
        Some samples, Some total_cycles, Some min_cycles, Some max_cycles,
        Some used_engine ) when samples > 0 ->
        Ok
          {
            strategy; request; entry; digest; workload; samples; total_cycles;
            mean_cycles = float_of_int total_cycles /. float_of_int samples;
            min_cycles; max_cycles; used_engine;
            (* optional since the batched engine landed; absent in older
               stores = scalar measurement *)
            batch_width = Option.value (int "batch_width") ~default:1;
            cert_kind = str "cert_kind";
            cert_digest = str "cert_digest";
          }
    | _ -> Error "entry is missing a required field"

  let of_json text =
    match Json.parse text with
    | Error e -> Error ("bad JSON: " ^ e)
    | Ok j -> (
        match Option.bind (Json.member "schema" j) Json.to_string with
        | Some s when s = schema -> (
            match Json.member "entries" j with
            | Some (Json.Arr items) ->
                let t = create () in
                let rec go = function
                  | [] -> Ok t
                  | item :: rest -> (
                      match measurement_of_json item with
                      | Ok m -> add t m; go rest
                      | Error _ as e -> e)
                in
                go items
            | _ -> Error "missing \"entries\" array")
        | Some other ->
            Error (Printf.sprintf "schema %S (expected %S)" other schema)
        | None -> Error "missing \"schema\"")

  let save t path =
    try
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc (to_json t));
      Ok ()
    with Sys_error e -> Error e

  let load path =
    try
      let ic = open_in_bin path in
      let text =
        Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
            really_input_string ic (in_channel_length ic))
      in
      of_json text
    with Sys_error e -> Error e
end

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)

let counter obs ?labels name =
  Option.map (fun reg -> Obs.Registry.counter reg ?labels name) obs

let bump obs ?labels name = Option.iter Obs.Counter.incr (counter obs ?labels name)

let bump_by obs ?labels name v =
  Option.iter (fun c -> Obs.Counter.add c v) (counter obs ?labels name)

let set_entries_gauge obs store =
  match (obs, store) with
  | Some reg, Some st ->
      Obs.Gauge.set
        (Obs.Registry.gauge reg "hppa_plan_store_entries")
        (float_of_int (Store.length st))
  | _ -> ()

let aggregate ?cert ?(batch_width = 1) ~strategy ~request ~entry ~digest
    ~workload cycles ~used_engine =
  let samples = List.length cycles in
  let total = List.fold_left ( + ) 0 cycles in
  {
    strategy;
    request;
    entry;
    digest;
    workload;
    samples;
    total_cycles = total;
    mean_cycles = float_of_int total /. float_of_int samples;
    min_cycles = List.fold_left min max_int cycles;
    max_cycles = List.fold_left max 0 cycles;
    used_engine;
    batch_width;
    cert_kind =
      Option.map
        (fun (c : Hppa_verify.Certificate.t) ->
          Hppa_verify.Certificate.kind_label c.Hppa_verify.Certificate.kind)
        cert;
    cert_digest =
      Option.map
        (fun (c : Hppa_verify.Certificate.t) -> c.Hppa_verify.Certificate.digest)
        cert;
  }

let record obs store m =
  let labels = [ ("strategy", m.strategy) ] in
  bump obs ~labels "hppa_plan_measured_total";
  bump_by obs ~labels "hppa_plan_measured_cycles_total" m.total_cycles;
  Option.iter (fun st -> Store.add st m) store;
  set_entries_gauge obs store;
  m

let measure ?store ?obs ?(fuel = 2_000_000) ?(batch_width = 256) workload
    (req : Strategy.request) (s : Strategy.t) =
  let tag = workload_tag workload in
  let request = Strategy.request_id req in
  match s.Strategy.kind with
  | Strategy.Modelled ->
      if req.Strategy.width = Strategy.W64 then
        Error (s.Strategy.name ^ ": modelled strategies cover 32-bit requests only")
      else if is_w64_workload workload then
        Error "64-bit workload requires a w64 request"
      else
        let pairs = operands workload req in
        if pairs = [] then Error "empty workload"
        else (
          match s.Strategy.model with
          | None -> Error (s.Strategy.name ^ ": modelled strategy has no model")
          | Some model ->
              let rec go acc = function
                | [] -> Ok (List.rev acc)
                | (x, y) :: rest -> (
                    match model req x y with
                    | Some c -> go (c :: acc) rest
                    | None ->
                        Error
                          (Printf.sprintf "%s: model undefined for x=%ld y=%ld"
                             s.Strategy.name x y))
              in
              Result.map
                (fun cycles ->
                  record obs store
                    (aggregate ~strategy:s.Strategy.name ~request ~entry:""
                       ~digest:("model:" ^ s.Strategy.name) ~workload:tag cycles
                       ~used_engine:false))
                (go [] pairs))
  | Strategy.Emits -> (
      match operand_lists workload req with
      | Error e -> Error e
      | Ok [] -> Error "empty workload"
      | Ok calls -> (
          match s.Strategy.emit req with
          | Error e -> Error e
          | Ok em -> (
              match Strategy.digest em with
              | Error e -> Error e
              | Ok digest -> (
                  match
                    Option.bind store (fun st ->
                        Store.find st ~digest ~workload:tag)
                  with
                  | Some m ->
                      bump obs "hppa_plan_store_hits_total";
                      Ok m
                  | None -> (
                      bump obs "hppa_plan_store_misses_total";
                      match Strategy.link em with
                      | Error e -> Error e
                      | Ok prog ->
                          (* attach the proof when a certifier covers the
                             shape; measurements of uncertifiable emissions
                             simply carry no certificate *)
                          let cert = Result.to_option (Strategy.certify req em) in
                          let entry = em.Strategy.entry in
                          let bw = max 1 (min batch_width (List.length calls)) in
                          let run_scalar () =
                            let config =
                              { Machine.Config.default with engine = true; fuel }
                            in
                            let mach = Machine.create ~config prog in
                            let rec go acc = function
                              | [] -> Ok (List.rev acc, Machine.used_engine mach)
                              | (args, label) :: rest -> (
                                  match
                                    Machine.call_cycles mach entry ~args
                                  with
                                  | Machine.Halted, cycles ->
                                      go (cycles :: acc) rest
                                  | Machine.Trapped t, _ ->
                                      Error
                                        (Printf.sprintf "%s: trap %s on %s"
                                           entry (Trap.name t) label)
                                  | Machine.Fuel_exhausted, _ ->
                                      Error
                                        (Printf.sprintf
                                           "%s: fuel exhausted on %s" entry
                                           label))
                            in
                            go [] calls
                          in
                          (* Per-lane cycle counts from the batched engine
                             equal the scalar engine's call_cycles deltas
                             (pinned by the differential suite), so the
                             measurement is identical — only faster. *)
                          let run_batched () =
                            let b = Machine.Batch.create ~lanes:bw prog in
                            let take n xs =
                              let rec go n acc = function
                                | x :: tl when n > 0 ->
                                    go (n - 1) (x :: acc) tl
                                | tl -> (List.rev acc, tl)
                              in
                              go n [] xs
                            in
                            let rec go acc = function
                              | [] -> Ok (List.rev acc, true)
                              | rest -> (
                                  let chunk, rest = take bw rest in
                                  let lane_args =
                                    Array.of_list (List.map fst chunk)
                                  in
                                  Machine.Batch.call ~fuel b entry
                                    ~args:lane_args;
                                  let rec lanes l acc = function
                                    | [] -> Ok acc
                                    | (_, label) :: tl -> (
                                        match
                                          Machine.Batch.outcome b ~lane:l
                                        with
                                        | Machine.Halted ->
                                            lanes (l + 1)
                                              (Machine.Batch.cycles b ~lane:l
                                              :: acc)
                                              tl
                                        | Machine.Trapped t ->
                                            Error
                                              (Printf.sprintf
                                                 "%s: trap %s on %s" entry
                                                 (Trap.name t) label)
                                        | Machine.Fuel_exhausted ->
                                            Error
                                              (Printf.sprintf
                                                 "%s: fuel exhausted on %s"
                                                 entry label))
                                  in
                                  match lanes 0 acc chunk with
                                  | Ok acc -> go acc rest
                                  | Error _ as e -> e)
                            in
                            go [] calls
                          in
                          Result.map
                            (fun (cycles, used_engine) ->
                              record obs store
                                (aggregate ?cert ~batch_width:bw
                                   ~strategy:s.Strategy.name ~request ~entry
                                   ~digest ~workload:tag cycles ~used_engine))
                            (if bw > 1 then run_batched () else run_scalar ()))))))

(* ------------------------------------------------------------------ *)
(* Tuning                                                              *)

type report = {
  choice : Selector.choice;
  measurements : (string * (measurement, string) result) list;
  chosen : measurement;
  best : string;
  fallback : measurement option;
  gate_ok : bool;
}

let fallback_name (req : Strategy.request) =
  match (req.width, req.op) with
  | _, Strategy.Divl -> "w64_divl_millicode"
  | Strategy.W64, Strategy.Mul -> "w64_mul_millicode"
  | Strategy.W64, (Strategy.Div | Strategy.Rem) -> "w64_div_millicode"
  | Strategy.W32, Strategy.Mul -> "mul_millicode"
  | Strategy.W32, (Strategy.Div | Strategy.Rem) -> "div_millicode"

let tune ?ctx ?store ?obs ?fuel ?require_certified workload req =
  match Selector.choose ?ctx ?obs ?require_certified req with
  | Error e -> Error e
  | Ok choice -> (
      let measurements =
        List.map
          (fun (c : Selector.candidate) ->
            ( c.strategy.Strategy.name,
              measure ?store ?obs ?fuel workload req c.strategy ))
          choice.Selector.candidates
      in
      match List.assoc_opt choice.Selector.chosen.Strategy.name measurements with
      | None | Some (Error _) ->
          let detail =
            match
              List.assoc_opt choice.Selector.chosen.Strategy.name measurements
            with
            | Some (Error e) -> e
            | _ -> "not measured"
          in
          Error
            (Printf.sprintf "chosen strategy %s failed to measure: %s"
               choice.Selector.chosen.Strategy.name detail)
      | Some (Ok chosen) ->
          let ok_measurements =
            List.filter_map
              (fun (name, r) ->
                match r with Ok m -> Some (name, m) | Error _ -> None)
              measurements
          in
          let best =
            List.fold_left
              (fun acc (name, m) ->
                match acc with
                | None -> Some (name, m)
                | Some (_, b) when m.mean_cycles < b.mean_cycles -> Some (name, m)
                | some -> some)
              None ok_measurements
            |> Option.map fst
            |> Option.value ~default:chosen.strategy
          in
          bump obs ~labels:[ ("strategy", best) ] "hppa_plan_wins_total";
          let fallback =
            List.assoc_opt (fallback_name req) ok_measurements
          in
          let gate_ok =
            match fallback with
            | None -> true
            | Some f ->
                (* Same workload on both sides: compare exact totals. *)
                chosen.total_cycles <= f.total_cycles
          in
          Ok { choice; measurements; chosen; best; fallback; gate_ok })

let pp_report ppf r =
  let open Format in
  fprintf ppf "@[<v>%a@," Selector.pp_choice r.choice;
  fprintf ppf "measured (workload %s):" r.chosen.workload;
  List.iter
    (fun (name, m) ->
      match m with
      | Ok m ->
          fprintf ppf "@,  %-24s mean %8.2f  min %4d  max %4d  (%d samples%s)"
            name m.mean_cycles m.min_cycles m.max_cycles m.samples
            (if m.used_engine then ", engine" else "")
      | Error e -> fprintf ppf "@,  %-24s unmeasured: %s" name e)
    r.measurements;
  fprintf ppf "@,best measured: %s" r.best;
  (match r.fallback with
  | Some f ->
      fprintf ppf "@,gate: chosen %.2f <= fallback %.2f cycles: %s"
        r.chosen.mean_cycles f.mean_cycles
        (if r.gate_ok then "ok" else "VIOLATED")
  | None -> fprintf ppf "@,gate: no millicode fallback measured");
  fprintf ppf "@]"
