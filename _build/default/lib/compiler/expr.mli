(** Integer expressions — the input language of the mini-compiler.

    Just enough of a C-like expression language to reproduce the paper's
    §2 motivation: array/struct addressing that implies multiplications
    ([structureA[x][y]] needs [x * dim * size + y * size]), pointer
    differences that imply divisions, and loops amenable to strength
    reduction. Semantics are C on a 32-bit machine: wrap-around [+], [-],
    [*]; division truncates toward zero and traps on zero divisors. *)

type t =
  | Var of string
  | Const of int32
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Rem of t * t
  | Neg of t

val eval : env:(string -> Hppa_word.Word.t) -> t -> Hppa_word.Word.t
(** Raises [Division_by_zero]; unknown variables raise [Not_found] from
    [env]. *)

val vars : t -> string list
(** Free variables, each once, in first-use order. *)

val mul_div_count : t -> int * int
(** Static (multiplies, divides) — the quantities strength reduction and
    the §2 discussion care about. *)

val pp : Format.formatter -> t -> unit
