(** Synthetic operand traces and their frequency analysis.

    Reproduces the loop the paper describes in §3: published studies report
    operand statistics (91 % of multiplies have a compile-time-constant
    operand [Neu79]; operand values tend to be small [Hen82, Luk86]); HP
    "performed our own trace analyses for independent confirmation". Here
    the generator synthesises a trace from those published parameters and
    the analyser re-derives the statistics, which the tests then compare
    to the §3 bullets. *)

type op = Mul | Div

type event = {
  op : op;
  x : Hppa_word.Word.t;
  y : Hppa_word.Word.t;
  y_is_constant : bool;  (** operand known at compile time *)
}

type config = {
  const_operand_fraction : float;  (** default 0.91 [Neu79] *)
  positive_fraction : float;  (** default 0.9 *)
  div_fraction : float;  (** divide share of mul+div events, default 0.25 *)
  small_divisor_fraction : float;
      (** share of divides whose divisor is below 20, default 0.7 — the
          paper emphasises small divisors but reports no number, so the
          summary bench sweeps this *)
}

val default_config : config
val generate : ?config:config -> Prng.t -> n:int -> event list

type summary = {
  events : int;
  muls : int;
  divs : int;
  const_operand_pct : float;
  min_operand_lt16_pct : float;
      (** §6: "the lesser of the two operands was less than 16 more than
          half the time" *)
  both_positive_pct : float;
  bucket_pcts : float list;  (** per Figure 5 bucket, multiplies only *)
  small_divisor_pct : float;  (** divides with divisor < 20 *)
}

val analyze : event list -> summary
val pp_summary : Format.formatter -> summary -> unit
