lib/compiler/loop_ir.mli: Expr Format
