(** Deterministic plan rendering for the service.

    Each function turns one request into the reply {e payload} (the text
    after ["OK "]) or an error detail (the text after ["ERR "]). The
    renderings are pure functions of their arguments — no timestamps, no
    addresses, no cache or worker identity — which is what makes the
    plan cache transparent and the worker pool size unobservable
    (the "identical plan bytes" guarantee).

    MUL and DIV dispatch through the kernel-strategy layer
    ({!Hppa_plan.Selector}): alongside the payload they return an
    {!artifact} recording what the selector chose, and when [obs] is the
    server's registry the per-strategy [hppa_plan_*] counters become
    visible in the [METRICS] scrape. The payload itself is rendered from
    the planner record carried by the chosen emission and stays
    byte-identical to the pre-selector renderings. *)

(** What the selector decided for one cached plan: strategy name, entry
    label, static size, context score and the content address (MD5 of
    the encoded binary) when the emission links. Under certified-only
    serving ([require_certified]) the winner's proof rides along as
    [cert_kind] ({!Hppa_verify.Certificate.kind_label}) and
    [cert_digest] (MD5 of the certificate transcript). *)
type artifact = {
  strategy : string;
  entry : string;
  static_instructions : int;
  score : int;
  digest : string option;
  cert_kind : string option;
  cert_digest : string option;
}

val render_artifact : artifact -> string
(** One-line [key=value] rendering (used by the final server report). *)

val mul :
  ?obs:Hppa_obs.Obs.Registry.t ->
  ?require_certified:bool ->
  int32 ->
  (string * artifact, string) result
(** Addition-chain multiply plan: chain steps, emitted instructions and
    the static cycle count, via {!Hppa.Mul_const.plan}. With
    [~require_certified:true] the selector only picks a strategy whose
    emission certifies ({!Hppa_plan.Strategy.certify}); the payload
    bytes are unchanged either way. *)

val div :
  ?obs:Hppa_obs.Obs.Registry.t ->
  ?require_certified:bool ->
  int32 ->
  (string * artifact, string) result
(** Constant-divide plan via {!Hppa.Div_const}: [d > 0] plans the
    unsigned routine, [d < 0] the signed one; [d = 0] is an error. The
    payload names the strategy (power-of-two shift, derived reciprocal
    with its magic parameters, even split, or general-divide fallback).
    [require_certified] as in {!mul}. *)

val w64 :
  ?obs:Hppa_obs.Obs.Registry.t ->
  ?require_certified:bool ->
  Hppa_machine.Machine.t ->
  fuel:int ->
  Hppa_w64.op ->
  signed:bool ->
  int64 ->
  int64 ->
  (string * artifact, string) result
(** One W64 request: route through the selector (the
    [w64_mul_millicode]/[w64_div_millicode] strategies), then execute
    the chosen millicode target on the given (worker-private) machine
    with the operands packed as (hi:lo) register pairs, and render both
    result dwords with the dynamic cycle count. The machine is reset
    first. Divide traps (zero divisor, signed [-2{^63} / -1]) and fuel
    exhaustion are error replies. Under [require_certified] the divide
    and remainder plans must carry a body-equivalence certificate or
    the request is refused. *)

val w64_batch :
  ?obs:Hppa_obs.Obs.Registry.t ->
  ?require_certified:bool ->
  Hppa_machine.Machine.t ->
  fuel:int ->
  Hppa_w64.op ->
  signed:bool ->
  (int64 * int64) list ->
  (string * artifact, string) result list
(** Batched form of {!w64}: one selector choice and one
    {!Hppa_machine.Machine.Batch} SoA dispatch covering every operand
    pair, returning per-pair results in order. The machine only donates
    its resolved program; per-lane batch cycles equal the scalar
    engine's, so each returned payload is byte-identical to what {!w64}
    would produce for that pair — miss lanes of a [W64*B] request cost
    one translated dispatch instead of K scalar calls. *)

val divl :
  ?obs:Hppa_obs.Obs.Registry.t ->
  ?require_certified:bool ->
  Hppa_machine.Machine.t ->
  fuel:int ->
  xhi:int64 ->
  xlo:int64 ->
  int64 ->
  (string * artifact, string) result
(** One [W64DIVL] request: the unsigned 128-bit dividend [(xhi:xlo)]
    divided by the dword [y] through {!Hppa_w64.divl_entry}
    ([divU128by64]), selected via the [w64_divl_millicode] strategy.
    A zero divisor or a quotient that does not fit a dword traps, which
    is an error reply. Under [require_certified] the plan must carry a
    body-equivalence certificate for the divide. *)

val divl_batch :
  ?obs:Hppa_obs.Obs.Registry.t ->
  ?require_certified:bool ->
  Hppa_machine.Machine.t ->
  fuel:int ->
  (int64 * int64 * int64) list ->
  (string * artifact, string) result list
(** Batched {!divl} over [(xhi, xlo, y)] triples: one selector choice
    and one SoA dispatch, per-lane replies byte-identical to the scalar
    path's. *)

val eval :
  Hppa_machine.Machine.t ->
  fuel:int ->
  string ->
  Hppa_word.Word.t list ->
  (string, string) result
(** Run a public millicode entry on the given (worker-private) machine
    with a fuel bound, returning results and the dynamic cycle count.
    The machine is reset first, so replies are independent of request
    history. Traps and fuel exhaustion are error replies, not
    exceptions. *)

val render_source : Program.source -> string
(** One-line rendering of an assembly routine: items separated by [" | "],
    labels suffixed with [":"]. Exposed for the tests. *)
