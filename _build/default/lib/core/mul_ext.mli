(** Extended multiplication: the 64-bit product.

    §6 limits itself to the "standard" 32-bit-result multiply and notes
    that "an efficient implementation of extended multiply (64-bit result)
    is an area of our current research". This module is that future work,
    built the way the operand statistics suggest: split each operand into
    16-bit halves and form the four partial products with the {e standard}
    multiply — each has both operands below 2{^16}, exactly the regime
    where the Figure 5 routine runs fastest — then recombine with the
    carry chain.

    Entries (linked with {!Mul_var.all}; {!Millicode.source} includes
    both):
    - [mulU64]: unsigned; [arg0 * arg1] as [ret1:ret0] (high:low).
    - [mulI64]: signed; the high word is corrected from the unsigned
      product ([hi -= (x<0 ? y : 0) + (y<0 ? x : 0)]).

    The low word always equals what [mulI] computes; the tests check both
    words against {!Hppa_word.Word.mul_wide_u}/[mul_wide_s]. *)

val source : Program.source
val entries : string list
(** [["mulU64"; "mulI64"]]. *)

val reference_unsigned :
  Hppa_word.Word.t -> Hppa_word.Word.t -> Hppa_word.Word.t * Hppa_word.Word.t
(** [(hi, lo)]. *)

val reference_signed :
  Hppa_word.Word.t -> Hppa_word.Word.t -> Hppa_word.Word.t * Hppa_word.Word.t
