(** Linear-form abstract interpretation: certify that a constant-multiply
    routine computes [multiplier * arg0] without running it on concrete
    inputs.

    Register values are tracked in the domain [a*x + b (mod 2^32)], where
    [x] is the symbolic entry value of [arg0]. Every operation a
    {!Chain_codegen} body can emit — [ADD], [SUB], [SHxADD], shift-left
    [ZDEP], [LDO]/[LDIL], [COMCLR] — is exact in this domain, so the
    abstract result at a return {e is} the polynomial the routine
    computes, and certification reduces to comparing it with
    [multiplier * x]. Congruence mod 2^32 also disposes of overflow: a
    trapping run never reaches the return, and a non-trapping run's
    result equals the mod-2^32 value.

    Two refinements let the branchy special-case plans through:
    - a [COMIB] whose compared register is exactly [x] pins [x] to the
      immediate on the appropriate edge ([=] taken, [<>] fall-through),
      after which every linear value on that path is a known constant;
    - an overflow-trapping instruction whose operands are known constants
      that certainly overflow kills its path — the guaranteed-trap idiom
      ([LDIL 0x40000000; ADDO t,t,r0]) is control flow, not arithmetic.

    Anything outside the domain ([ADDC], [DS], loads, calls, indirect
    branches) is [Top] or aborts to [Unknown]: the certifier proves the
    strength-reduced chains of §5 and their special cases, not division
    — see DESIGN.md for the boundary. *)

type verdict =
  | Certified
  | Refuted of string  (** a return path provably computes something else *)
  | Unknown of string  (** outside the domain's reach *)

val pp_verdict : Format.formatter -> verdict -> unit

val certify :
  ?src:Reg.t -> ?result:Reg.t -> Cfg.t -> entry:int -> multiplier:int32 ->
  verdict
(** Explore all paths from [entry] (default: [src] = [arg0], [result] =
    [ret0]), requiring [result = multiplier * src] at every reachable
    return. Honours the graph's mode, so scheduled bodies with filled
    delay slots certify too. *)

val findings : routine:string -> verdict -> Findings.t list
(** [[]] when certified, otherwise one {!Findings.Certify} error. *)
