(** Lowering expressions to Precision code — the compiler decisions of
    §2, §5 and §7.

    A compiled procedure takes its parameters in [arg0..arg3], returns in
    [ret0] and returns via [bv r0(rp)]. Multiplications and divisions
    lower according to the paper's cost model:

    - multiply by constant: inline shift-and-add chain when its length is
      within {!inline_mul_threshold}, otherwise a millicode call
      ([bl mulI, mrp] — the [,o] variant when [trap_overflow] is set
      lowers through monotonic chains or [muloI]);
    - multiply by variable: millicode [mulI] / [muloI];
    - divide by constant: the per-constant routine from {!Hppa.Div_const}
      is linked into the unit and called (HP practice: short sequences
      inline, the rest millicode — a call costs one [bl] here);
    - divide by variable: millicode [divI], or [divI_small] when
      [small_divisor_dispatch] is set;
    - remainder by constant [c]: composed as [x - (x/c)*c] from the
      constant-divide routine and an inline chain.

    The emitted unit references millicode entry points; link it with
    {!Hppa.Millicode.source} (see {!compile_and_link}). *)

type t = {
  entry : string;
  params : string list;
  source : Program.source;  (** procedure + any per-constant routines *)
  millicode_calls : int;  (** static count of [bl] sites *)
  inline_multiplies : int;  (** constant multiplies lowered to chains *)
}

val inline_mul_threshold : int
(** Chains at most this long (6) are inlined. *)

exception Unsupported of string
(** Raised for expressions needing more than the 14 expression registers,
    or more than 4 parameters. *)

val compile :
  ?entry:string ->
  ?trap_overflow:bool ->
  ?small_divisor_dispatch:bool ->
  ?require_certified:bool ->
  params:string list ->
  Expr.t ->
  t
(** [require_certified] (default [false]) makes every selector
    arbitration demand a machine-checked certificate
    ({!Hppa_plan.Selector.choose} with [~require_certified:true]):
    uncertifiable strategies are passed over in favour of the certified
    millicode call-through. *)

val compile_and_link :
  ?entry:string ->
  ?trap_overflow:bool ->
  ?small_divisor_dispatch:bool ->
  ?require_certified:bool ->
  params:string list ->
  Expr.t ->
  Program.resolved
(** [compile] plus the millicode library, resolved and ready to run. *)

(**/**)

(** Internal machinery shared with {!Lower_loop}; subject to change. *)
module Internal : sig
  type state

  val make_state :
    ?require_certified:bool ->
    Builder.t ->
    vars:(string * Reg.t) list ->
    temps:Reg.t list ->
    trap_overflow:bool ->
    small_divisor_dispatch:bool ->
    state

  val emit_expr : state -> Expr.t -> Reg.t
  val release : state -> Reg.t -> unit
  val plans : state -> Program.source list
  val millicode_calls : state -> int
  val inline_multiplies : state -> int
  val callee_saved : Reg.t list
  (** r3..r18: registers every millicode routine preserves. *)
end
