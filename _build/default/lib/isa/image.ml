let magic = "HPPA1"

let ( let* ) = Result.bind

let to_bytes prog =
  let* words = Encode.encode_program prog in
  let n = Array.length words in
  let out = Bytes.create (String.length magic + 4 + (4 * n)) in
  Bytes.blit_string magic 0 out 0 (String.length magic);
  Bytes.set_int32_be out (String.length magic) (Int32.of_int n);
  Array.iteri
    (fun i w -> Bytes.set_int32_be out (String.length magic + 4 + (4 * i)) w)
    words;
  Ok out

let of_bytes b =
  let m = String.length magic in
  if Bytes.length b < m + 4 then Error "image too short"
  else if Bytes.sub_string b 0 m <> magic then Error "bad magic"
  else
    let n = Int32.to_int (Bytes.get_int32_be b m) in
    if n < 0 || Bytes.length b <> m + 4 + (4 * n) then
      Error "truncated or oversized image"
    else
      let words = Array.init n (fun i -> Bytes.get_int32_be b (m + 4 + (4 * i))) in
      Encode.decode_program words

let disassemble insns =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun addr i ->
      Buffer.add_string buf
        (Format.asprintf "%6d:  %a\n" addr (Insn.pp Format.pp_print_int) i))
    insns;
  Buffer.contents buf
