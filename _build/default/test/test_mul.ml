(* Tests for the variable-multiply ladder (section 6, Figures 2-5) and the
   trapping multiply. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Stats = Hppa_machine.Stats
module Trap = Hppa_machine.Trap
open Util
open Hppa

let machine = lazy (Machine.create (Program.resolve_exn Mul_var.all))

let product mach entry x y =
  ignore (call_exn mach entry [ x; y ]);
  Machine.get mach Reg.ret0

let cycles_of mach entry x y =
  snd (call_cycles_exn mach entry [ x; y ])

(* ------------------------------------------------------------------ *)
(* Correctness                                                         *)

let edge_values =
  [
    0l; 1l; -1l; 2l; -2l; 3l; 7l; 15l; 16l; 17l; 255l; 256l; 4095l; 4096l;
    46340l; 46341l; 65535l; 65536l; 0x7fffffffl; 0x80000000l; 0x80000001l;
    -15l; -16l; -65536l;
  ]

let test_ladder_edge_matrix () =
  let mach = Lazy.force machine in
  List.iter
    (fun entry ->
      List.iter
        (fun x ->
          List.iter
            (fun y ->
              let got = product mach entry x y in
              let want = Mul_var.reference x y in
              if not (Word.equal got want) then
                Alcotest.failf "%s: %ld * %ld = %ld, want %ld" entry x y got want)
            edge_values)
        edge_values)
    [ "mul_naive"; "mul_naive_early"; "mul_nibble"; "mul_switch"; "mul_final" ]

let prop_routine entry =
  QCheck.Test.make
    ~name:(entry ^ " computes the 32-bit product")
    ~count:1000 (QCheck.pair arb_word arb_word) (fun (x, y) ->
      let mach = Lazy.force machine in
      Word.equal (product mach entry x y) (Mul_var.reference x y))

let prop_commutative =
  QCheck.Test.make ~name:"mul_final commutes" ~count:500
    (QCheck.pair arb_word arb_word) (fun (x, y) ->
      let mach = Lazy.force machine in
      Word.equal (product mach "mul_final" x y) (product mach "mul_final" y x))

let prop_ladder_agrees =
  QCheck.Test.make ~name:"all ladder routines agree" ~count:500
    (QCheck.pair arb_word arb_word) (fun (x, y) ->
      let mach = Lazy.force machine in
      let results =
        List.map
          (fun e -> product mach e x y)
          [ "mul_naive"; "mul_naive_early"; "mul_nibble"; "mul_switch"; "mul_final" ]
      in
      List.for_all (Word.equal (List.hd results)) results)

(* ------------------------------------------------------------------ *)
(* Cycle structure (the paper's instruction-count analyses)            *)

let test_naive_is_constant_time () =
  (* Figure 2: the loop always runs 32 times; nullification keeps the
     cycle count independent of the data (the paper's 167, our 168). *)
  let mach = Lazy.force machine in
  let c0 = cycles_of mach "mul_naive" 0l 0l in
  Alcotest.(check bool) "near paper's 167" true (abs (c0 - 167) <= 2);
  List.iter
    (fun (x, y) ->
      Alcotest.(check int) "constant cycles" c0 (cycles_of mach "mul_naive" x y))
    [ (1l, 1l); (-5l, 77777l); (Int32.max_int, Int32.min_int) ]

let test_early_exit_data_dependence () =
  (* Section 6: worst case ~192; small multipliers much cheaper. *)
  let mach = Lazy.force machine in
  let worst = cycles_of mach "mul_naive_early" 1l Int32.min_int in
  Alcotest.(check bool)
    (Printf.sprintf "worst (%d) near paper's 192" worst)
    true
    (abs (worst - 192) <= 8);
  let small = cycles_of mach "mul_naive_early" 123456l 3l in
  Alcotest.(check bool) "small multiplier fast" true (small < 30)

let test_nibble_loop_is_13 () =
  (* Figure 3: the loop body is exactly 13 instructions, so consecutive
     nibble counts differ by 13 cycles. *)
  let mach = Lazy.force machine in
  let one = cycles_of mach "mul_nibble" 99l 0xFl in
  let two = cycles_of mach "mul_nibble" 99l 0xFFl in
  let three = cycles_of mach "mul_nibble" 99l 0xFFFl in
  Alcotest.(check int) "second nibble costs 13" 13 (two - one);
  Alcotest.(check int) "third nibble costs 13" 13 (three - two);
  let worst = cycles_of mach "mul_nibble" 99l Int32.min_int in
  Alcotest.(check bool)
    (Printf.sprintf "worst (%d) near paper's 107" worst)
    true
    (abs (worst - 107) <= 4)

let test_final_small_operands () =
  (* Figure 5, first bucket: min operand in 0..15 should stay within the
     paper's band (best 10 / avg 15 / worst 23), allowing a small model
     delta for our unscheduled branches. *)
  let mach = Lazy.force machine in
  let worst = ref 0 and best = ref max_int and total = ref 0 and n = ref 0 in
  for y = 0 to 15 do
    List.iter
      (fun x ->
        let c = cycles_of mach "mul_final" x (Int32.of_int y) in
        worst := max !worst c;
        best := min !best c;
        total := !total + c;
        incr n)
      [ 1l; 77l; 10000l; 8000000l; 0x7fffffffl ]
  done;
  let avg = float_of_int !total /. float_of_int !n in
  Alcotest.(check bool) (Printf.sprintf "best %d <= 12" !best) true (!best <= 12);
  Alcotest.(check bool) (Printf.sprintf "avg %.1f <= 20" avg) true (avg <= 20.0);
  Alcotest.(check bool) (Printf.sprintf "worst %d <= 28" !worst) true (!worst <= 28)

let test_final_quick_exits () =
  let mach = Lazy.force machine in
  Alcotest.(check bool) "x*0 quick" true (cycles_of mach "mul_final" 1234567l 0l <= 8);
  Alcotest.(check bool) "x*1 quick" true (cycles_of mach "mul_final" 1234567l 1l <= 9)

let test_final_beats_nibble_on_distribution () =
  (* The observation of section 6: with representable products the final
     algorithm wins big over Figure 3. *)
  let mach = Lazy.force machine in
  let g = Hppa_dist.Prng.create 99L in
  let tot_final = ref 0 and tot_nibble = ref 0 in
  for _ = 1 to 500 do
    let x, y = Hppa_dist.Operand_dist.figure5_pair g in
    tot_final := !tot_final + cycles_of mach "mul_final" x y;
    tot_nibble := !tot_nibble + cycles_of mach "mul_nibble" x y
  done;
  Alcotest.(check bool)
    (Printf.sprintf "final (%d) < nibble (%d)" !tot_final !tot_nibble)
    true
    (!tot_final * 3 < !tot_nibble * 2)

(* ------------------------------------------------------------------ *)
(* Analytic cost models: the models must predict the simulator exactly *)

let prop_model entry model =
  QCheck.Test.make
    ~name:(Printf.sprintf "model predicts %s cycles exactly" entry)
    ~count:600 (QCheck.pair arb_word arb_word) (fun (x, y) ->
      let mach = Lazy.force machine in
      cycles_of mach entry x y = model x y)

let prop_model_naive = prop_model "mul_naive" (fun _ _ -> Mul_model.naive ())

let prop_model_naive_early =
  prop_model "mul_naive_early" (fun _ y -> Mul_model.naive_early ~multiplier:y)

let prop_model_nibble =
  prop_model "mul_nibble" (fun _ y -> Mul_model.nibble ~multiplier:y)

let prop_model_switch =
  prop_model "mul_switch" (fun _ y -> Mul_model.switch ~multiplier:y)

let prop_model_final = prop_model "mul_final" Mul_model.final

(* ------------------------------------------------------------------ *)
(* The trapping multiply                                               *)

let check_mulo x y =
  let mach = Lazy.force machine in
  match (Machine.call mach "mulo" ~args:[ x; y ], Mul_var.mulo_reference x y) with
  | Machine.Halted, Some want ->
      let got = Machine.get mach Reg.ret0 in
      if Word.equal got want then Ok ()
      else Error (Printf.sprintf "%ld * %ld = %ld, want %ld" x y got want)
  | Machine.Halted, None ->
      Error (Printf.sprintf "%ld * %ld: missed overflow" x y)
  | Machine.Trapped Trap.Overflow, None -> Ok ()
  | Machine.Trapped Trap.Overflow, Some _ ->
      Error (Printf.sprintf "%ld * %ld: spurious overflow" x y)
  | Machine.Trapped t, _ ->
      Error (Printf.sprintf "%ld * %ld: trap %s" x y (Trap.to_string t))
  | Machine.Fuel_exhausted, _ -> Error "fuel"

let test_mulo_edge_matrix () =
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          match check_mulo x y with
          | Ok () -> ()
          | Error msg -> Alcotest.fail msg)
        edge_values)
    edge_values

let test_mulo_min_int_products () =
  (* Products equal to exactly -2^31 are representable and must not trap:
     the subtle case the paper calls out. *)
  List.iter
    (fun (x, y) ->
      match check_mulo x y with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    [
      (Int32.min_int, 1l); (1l, Int32.min_int); (-2l, 0x40000000l);
      (0x40000000l, -2l); (2l, -0x40000000l); (-32768l, 65536l);
      (65536l, -32768l); (-65536l, 32768l); (4l, -0x20000000l);
      (-1l, Int32.min_int) (* overflows: +2^31 unrepresentable *);
    ]

let prop_mulo =
  QCheck.Test.make ~name:"mulo traps iff the signed product overflows"
    ~count:2000 (QCheck.pair arb_word arb_word) (fun (x, y) ->
      match check_mulo x y with Ok () -> true | Error _ -> false)

let prop_mulo_boundary =
  (* Products straddling the 2^31 boundary from structured factors. *)
  QCheck.Test.make ~name:"mulo near the overflow boundary" ~count:1000
    (QCheck.pair (QCheck.int_range 1 46341) (QCheck.int_range 1 65536))
    (fun (a, b) ->
      let x = Int32.of_int a and y = Int32.of_int b in
      List.for_all
        (fun (x, y) -> match check_mulo x y with Ok () -> true | Error _ -> false)
        [ (x, y); (Word.neg x, y); (x, Word.neg y); (Word.neg x, Word.neg y) ])

let suite =
  [
    ( "mul:unit",
      [
        Alcotest.test_case "ladder edge matrix" `Slow test_ladder_edge_matrix;
        Alcotest.test_case "naive constant time" `Quick test_naive_is_constant_time;
        Alcotest.test_case "early exit" `Quick test_early_exit_data_dependence;
        Alcotest.test_case "nibble loop is 13" `Quick test_nibble_loop_is_13;
        Alcotest.test_case "final small operands" `Quick test_final_small_operands;
        Alcotest.test_case "final quick exits" `Quick test_final_quick_exits;
        Alcotest.test_case "final beats nibble" `Quick test_final_beats_nibble_on_distribution;
        Alcotest.test_case "mulo edge matrix" `Slow test_mulo_edge_matrix;
        Alcotest.test_case "mulo min_int products" `Quick test_mulo_min_int_products;
      ] );
    qsuite "mul:props"
      [
        prop_routine "mul_naive";
        prop_routine "mul_naive_early";
        prop_routine "mul_nibble";
        prop_routine "mul_switch";
        prop_routine "mul_final";
        prop_commutative;
        prop_ladder_agrees;
        prop_mulo;
        prop_mulo_boundary;
        prop_model_naive;
        prop_model_naive_early;
        prop_model_nibble;
        prop_model_switch;
        prop_model_final;
      ];
  ]
