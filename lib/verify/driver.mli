(** One-call front end over the analyses.

    For a resolved program and a set of entry labels, runs:
    + structure: entries resolve, and no reachable path has an
      unresolvable indirect branch or runs off the program image;
    + the delay-slot hazard lint ({!Hazards}), whole-image;
    + per entry: use/PSW-before-def, dead writes, result definedness
      ({!Defuse}) and the clobber check ({!Convention}).

    The linear certifier is separate ({!certify}) since it needs the
    expected multiplier. *)

val check :
  ?options:Cfg.options -> ?specs:Cfg.spec list -> entries:string list ->
  Program.resolved -> Findings.t list

val check_source :
  ?options:Cfg.options -> ?specs:Cfg.spec list -> entries:string list ->
  Program.source -> (Findings.t list, string) result
(** Resolve first; [Error] is the resolver's message. *)

val certify :
  ?options:Cfg.options -> Program.resolved -> entry:string ->
  multiplier:int32 -> Linear.verdict
(** {!Linear.certify} by label; [Unknown] if the label is absent. *)
