(** Execution statistics.

    The paper's central metric is the dynamic count of single-cycle
    instructions along the executed path; {!cycles} is that count, with
    nullified instructions (skipped by [COMCLR]) costing their cycle as on
    the real pipeline.

    Every quantity is an {!Hppa_obs.Obs.Counter.t} underneath: attach a
    registry at {!create} time and the per-opcode histogram, trap counts
    and totals are published as [hppa_sim_*] metrics, so [STATS]-style
    textual output and Prometheus/JSON exports read the same atomics. *)

type t

val create :
  ?registry:Hppa_obs.Obs.Registry.t ->
  ?labels:(string * string) list ->
  unit ->
  t
(** [create ~registry ~labels ()] publishes this machine's counters into
    [registry] as [hppa_sim_executed_total], [hppa_sim_nullified_total],
    [hppa_sim_branches_taken_total], [hppa_sim_insns_total{mnemonic=...}]
    and [hppa_sim_traps_total{trap=...}], each carrying [labels]. Counters
    are always owned by this value — registration only exposes them. *)

val reset : t -> unit

val record : t -> nullified:bool -> mnemonic:string -> unit
val record_branch_taken : t -> unit

val record_trap : t -> string -> unit
(** Count one trap under its {!Trap.name} label. *)

val add_executed : t -> mnemonic:string -> int -> unit
(** Bulk {!record}: credit [n] executed instructions to one mnemonic at
    once. The threaded engine ({!Engine}) counts per-mnemonic locally
    during a run and settles here on exit, so the histogram matches the
    per-instruction interpreter exactly at a fraction of the cost. *)

val add_nullified : t -> int -> unit
val add_branches_taken : t -> int -> unit

val cycles : t -> int
(** Executed + nullified instructions. *)

val executed : t -> int
val nullified : t -> int
val branches_taken : t -> int

val by_mnemonic : t -> (string * int) list
(** Executed-instruction histogram, most frequent first; zero-count
    entries are omitted. *)

val by_trap : t -> (string * int) list
(** Trap counts by {!Trap.name}, alphabetical. *)

val diff : before:t -> after:t -> int
(** Cycle delta; both arguments may be the same mutable value snapshotted
    with {!snapshot}. *)

val snapshot : t -> t
(** Detached copy: fresh counters holding the current values, not
    published to any registry. *)

val pp : Format.formatter -> t -> unit
