module Word = Hppa_word.Word

type t =
  | Never
  | Always
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Ult
  | Ule
  | Ugt
  | Uge
  | Odd
  | Even

let eval c a b =
  match c with
  | Never -> false
  | Always -> true
  | Eq -> Word.equal a b
  | Neq -> not (Word.equal a b)
  | Lt -> Word.lt_s a b
  | Le -> Word.le_s a b
  | Gt -> Word.lt_s b a
  | Ge -> Word.le_s b a
  | Ult -> Word.lt_u a b
  | Ule -> Word.le_u a b
  | Ugt -> Word.lt_u b a
  | Uge -> Word.le_u b a
  | Odd -> Word.is_odd (Word.sub a b)
  | Even -> not (Word.is_odd (Word.sub a b))

let negate = function
  | Never -> Always
  | Always -> Never
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Ge
  | Ge -> Lt
  | Le -> Gt
  | Gt -> Le
  | Ult -> Uge
  | Uge -> Ult
  | Ule -> Ugt
  | Ugt -> Ule
  | Odd -> Even
  | Even -> Odd

let to_string = function
  | Never -> "never"
  | Always -> "tr"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Ult -> "<<"
  | Ule -> "<<="
  | Ugt -> ">>"
  | Uge -> ">>="
  | Odd -> "od"
  | Even -> "ev"

let all =
  [ Never; Always; Eq; Neq; Lt; Le; Gt; Ge; Ult; Ule; Ugt; Uge; Odd; Even ]

let of_string s = List.find_opt (fun c -> to_string c = s) all
let equal (a : t) (b : t) = a = b
let pp ppf c = Format.pp_print_string ppf (to_string c)
