(* Reply payloads for the three plan-producing requests. Everything here
   must be a pure function of the request (plus the fuel bound), because
   cached replies are compared byte-for-byte against recomputed ones.

   MUL and DIV dispatch through the kernel-strategy selector (lib/plan);
   the payload is rendered from the planner record the chosen emission
   carries, which is the very record this module used to compute
   directly — so routing through the selector changes which strategy is
   *recorded* (the artifact, the hppa_plan_* metrics), never the reply
   bytes. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Strategy = Hppa_plan.Strategy
module Selector = Hppa_plan.Selector
module Certificate = Hppa_verify.Certificate
open Hppa

type artifact = {
  strategy : string;
  entry : string;
  static_instructions : int;
  score : int;
  digest : string option;
  cert_kind : string option;
  cert_digest : string option;
}

let render_artifact a =
  Printf.sprintf "strategy=%s entry=%s insns=%d score=%d digest=%s cert=%s"
    a.strategy a.entry a.static_instructions a.score
    (Option.value a.digest ~default:"-")
    (match (a.cert_kind, a.cert_digest) with
    | Some k, Some d -> Printf.sprintf "%s:%s" k d
    | _ -> "-")

let artifact_of_choice (c : Selector.choice) =
  {
    strategy = c.Selector.chosen.Strategy.name;
    entry = c.Selector.emission.Strategy.entry;
    static_instructions = c.Selector.emission.Strategy.static_instructions;
    score = c.Selector.cost.Strategy.score;
    digest = Result.to_option (Strategy.digest c.Selector.emission);
    cert_kind =
      Option.map
        (fun (cert : Certificate.t) ->
          Certificate.kind_label cert.Certificate.kind)
        c.Selector.certificate;
    cert_digest =
      Option.map
        (fun (cert : Certificate.t) -> cert.Certificate.digest)
        c.Selector.certificate;
  }

let squash s =
  String.trim
    (String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) s)

let render_source (src : Program.source) =
  String.concat " | "
    (List.map
       (function
         | Program.Label l -> l ^ ":"
         | Program.Insn i ->
             squash
               (Format.asprintf "%a" (Insn.pp Format.pp_print_string) i))
       src)

let render_chain (c : Chain.t) =
  (* Compact one-line form of the paper's "a2 = 4*a1 + a1" notation. *)
  String.concat ";"
    (List.mapi
       (fun i step ->
         let e = i + 2 in
         match step with
         | Chain.Add (j, k) -> Printf.sprintf "a%d=a%d+a%d" e j k
         | Chain.Shadd (m, j, k) ->
             Printf.sprintf "a%d=%d*a%d+a%d" e (1 lsl m) j k
         | Chain.Sub (j, k) -> Printf.sprintf "a%d=a%d-a%d" e j k
         | Chain.Shl (j, m) -> Printf.sprintf "a%d=a%d<<%d" e j m)
       c)

let mul_payload (plan : Mul_const.plan) =
  let chain_str =
    match plan.chain with None -> "-" | Some c -> render_chain c
  in
  let steps = match plan.chain with None -> 0 | Some c -> Chain.length c in
  Printf.sprintf
    "MUL n=%ld steps=%d insns=%d cycles=%d temps=%d overflow_safe=%b \
     chain=%s code=%s"
    plan.multiplier steps plan.static_instructions plan.static_instructions
    plan.temporaries
    (match plan.chain with
    | Some c -> Chain.is_overflow_safe c
    | None -> false)
    chain_str
    (render_source plan.source)

let mul ?obs ?require_certified n =
  match Selector.choose ?obs ?require_certified (Strategy.mul_const n) with
  | Ok choice ->
      let plan =
        (* The chain strategy's emission wraps the planner record; a
           call-through winner (huge chain) still renders the chain plan
           the reply always carried. *)
        match choice.Selector.emission.Strategy.detail with
        | Strategy.Mul_plan p -> p
        | Strategy.Div_plan _ | Strategy.Millicode _ | Strategy.Pair_chain _ ->
            Mul_const.plan n
      in
      Ok (mul_payload plan, artifact_of_choice choice)
  | Error detail -> Error ("plan " ^ detail)

let rec render_strategy = function
  | Div_const.Trivial -> "trivial"
  | Div_const.Power_of_two k -> Printf.sprintf "shift:%d" k
  | Div_const.Reciprocal (m, ch) ->
      Printf.sprintf "reciprocal:z=2^%d,a=%Ld,b=%Ld,chain=%d" m.Div_magic.s
        m.Div_magic.a m.Div_magic.b (Chain.length ch)
  | Div_const.Even_split (k, s) ->
      Printf.sprintf "even_split:%d+%s" k (render_strategy s)
  | Div_const.General_fallback -> "general_divU"

let div_payload (plan : Div_const.plan) =
  Printf.sprintf
    "DIV d=%ld signed=%b strategy=%s insns=%d cycles=%d needs_millicode=%b \
     code=%s"
    plan.divisor plan.signed
    (render_strategy plan.strategy)
    plan.static_instructions plan.static_instructions
    (Div_const.needs_millicode plan)
    (render_source plan.source)

let div ?obs ?require_certified d =
  if d = 0l then Error "range division by zero"
  else
    let signedness = if d > 0l then Strategy.Unsigned else Strategy.Signed in
    match
      Selector.choose ?obs ?require_certified (Strategy.div_const signedness d)
    with
    | Ok choice ->
        let plan =
          match choice.Selector.emission.Strategy.detail with
          | Strategy.Div_plan p -> p
          | Strategy.Mul_plan _ | Strategy.Millicode _ | Strategy.Pair_chain _
            ->
              if d > 0l then Div_const.plan_unsigned d
              else Div_const.plan_signed d
        in
        Ok (div_payload plan, artifact_of_choice choice)
    | Error detail -> Error ("plan " ^ detail)

(* W64 requests carry their run-time operands, so the reply both names
   the chosen strategy's millicode target and carries the executed
   result dwords. The pooled machine holds the full millicode library;
   the emission's wrapper is a tail-call onto the target, so calling the
   target directly is the same computation. *)
let w64_choice ?obs ?require_certified op ~signed =
  let signedness = if signed then Strategy.Signed else Strategy.Unsigned in
  let sreq =
    match (op : Hppa_w64.op) with
    | Hppa_w64.Mul -> Strategy.w64_mul signedness
    | Hppa_w64.Div -> Strategy.w64_div signedness
    | Hppa_w64.Rem -> Strategy.w64_rem signedness
  in
  match Selector.choose ?obs ?require_certified sreq with
  | Error detail -> Error ("plan " ^ detail)
  | Ok choice ->
      let entry =
        match choice.Selector.emission.Strategy.detail with
        | Strategy.Millicode target -> target
        | Strategy.Mul_plan _ | Strategy.Div_plan _ | Strategy.Pair_chain _ ->
            Hppa_w64.entry ~signed op
      in
      Ok (entry, choice)

(* Render one executed W64 lane; shared by the scalar path and the
   batched path so their reply bytes cannot diverge. *)
let w64_render ~fuel op ~signed ~entry ~choice x y outcome cycles =
  match (outcome : Hppa_w64.outcome) with
  | Hppa_w64.Value { ret; arg } ->
      let verb =
        match (op : Hppa_w64.op) with
        | Hppa_w64.Mul -> "W64MUL"
        | Hppa_w64.Div -> "W64DIV"
        | Hppa_w64.Rem -> "W64REM"
      in
      let result =
        match op with
        | Hppa_w64.Mul -> Printf.sprintf "hi=%Ld lo=%Ld" ret arg
        | Hppa_w64.Div -> Printf.sprintf "q=%Ld r=%Ld" ret arg
        | Hppa_w64.Rem -> Printf.sprintf "r=%Ld" ret
      in
      Ok
        ( Printf.sprintf "%s signed=%b x=%Ld y=%Ld %s cycles=%d entry=%s" verb
            signed x y result cycles entry,
          artifact_of_choice choice )
  | Hppa_w64.Trap t ->
      Error
        (Printf.sprintf "trap %s: %s" entry (Hppa_machine.Trap.to_string t))
  | Hppa_w64.Fuel ->
      Error (Printf.sprintf "fuel %s exceeded %d cycles" entry fuel)

let w64 ?obs ?require_certified mach ~fuel op ~signed x y =
  match w64_choice ?obs ?require_certified op ~signed with
  | Error _ as e -> e
  | Ok (entry, choice) ->
      Machine.reset mach;
      let outcome, cycles = Hppa_w64.call_cycles ~fuel mach entry ~x ~y in
      w64_render ~fuel op ~signed ~entry ~choice x y outcome cycles

let w64_batch ?obs ?require_certified mach ~fuel op ~signed pairs =
  match pairs with
  | [] -> []
  | _ -> (
      match w64_choice ?obs ?require_certified op ~signed with
      | Error _ as e -> List.map (fun _ -> e) pairs
      | Ok (entry, choice) ->
          (* One SoA dispatch over all lanes. Per-lane batch cycles equal
             the scalar engine's call_cycles delta on a reset machine
             (pinned by the batch differential suite), so each lane's
             rendering is byte-identical to the scalar path's. *)
          let b =
            Machine.Batch.create
              ~lanes:(List.length pairs)
              (Machine.program mach)
          in
          let args =
            Array.of_list
              (List.map (fun (x, y) -> Hppa_w64.operands x y) pairs)
          in
          Machine.Batch.call ~fuel b entry ~args;
          List.mapi
            (fun lane (x, y) ->
              w64_render ~fuel op ~signed ~entry ~choice x y
                (Hppa_w64.batch_outcome b ~lane)
                (Machine.Batch.cycles b ~lane))
            pairs)

(* The 128/64 divide: one strategy ([w64_divl_millicode]), operands on
   the request line like the other W64 verbs but as (xhi, xlo, y)
   triples — the unsigned 128-bit dividend's dwords, then the divisor. *)
let divl_choice ?obs ?require_certified () =
  match Selector.choose ?obs ?require_certified Strategy.w64_divl with
  | Error detail -> Error ("plan " ^ detail)
  | Ok choice ->
      let entry =
        match choice.Selector.emission.Strategy.detail with
        | Strategy.Millicode target -> target
        | Strategy.Mul_plan _ | Strategy.Div_plan _ | Strategy.Pair_chain _ ->
            Hppa_w64.divl_entry
      in
      Ok (entry, choice)

let divl_render ~fuel ~entry ~choice ~xhi ~xlo y outcome cycles =
  match (outcome : Hppa_w64.outcome) with
  | Hppa_w64.Value { ret; arg } ->
      Ok
        ( Printf.sprintf
            "W64DIVL xhi=%Ld xlo=%Ld y=%Ld q=%Ld r=%Ld cycles=%d entry=%s" xhi
            xlo y ret arg cycles entry,
          artifact_of_choice choice )
  | Hppa_w64.Trap t ->
      Error
        (Printf.sprintf "trap %s: %s" entry (Hppa_machine.Trap.to_string t))
  | Hppa_w64.Fuel ->
      Error (Printf.sprintf "fuel %s exceeded %d cycles" entry fuel)

let divl ?obs ?require_certified mach ~fuel ~xhi ~xlo y =
  match divl_choice ?obs ?require_certified () with
  | Error _ as e -> e
  | Ok (entry, choice) ->
      Machine.reset mach;
      let outcome, cycles = Hppa_w64.call_divl_cycles ~fuel mach ~xhi ~xlo y in
      divl_render ~fuel ~entry ~choice ~xhi ~xlo y outcome cycles

let divl_batch ?obs ?require_certified mach ~fuel triples =
  match triples with
  | [] -> []
  | _ -> (
      match divl_choice ?obs ?require_certified () with
      | Error _ as e -> List.map (fun _ -> e) triples
      | Ok (entry, choice) ->
          let b =
            Machine.Batch.create
              ~lanes:(List.length triples)
              (Machine.program mach)
          in
          let args =
            Array.of_list
              (List.map
                 (fun (xhi, xlo, y) -> Hppa_w64.operands_divl ~xhi ~xlo y)
                 triples)
          in
          Machine.Batch.call ~fuel b entry ~args;
          List.mapi
            (fun lane (xhi, xlo, y) ->
              divl_render ~fuel ~entry ~choice ~xhi ~xlo y
                (Hppa_w64.batch_outcome b ~lane)
                (Machine.Batch.cycles b ~lane))
            triples)

let eval mach ~fuel entry args =
  if not (List.mem entry Millicode.entries) then
    Error (Printf.sprintf "entry unknown millicode entry \"%s\"" entry)
  else begin
    Machine.reset mach;
    match Machine.call_cycles ~fuel mach entry ~args with
    | Machine.Halted, cycles ->
        Ok
          (Printf.sprintf "EVAL entry=%s ret0=%ld ret1=%ld cycles=%d engine=%b"
             entry (Machine.get mach Reg.ret0) (Machine.get mach Reg.ret1)
             cycles (Machine.used_engine mach))
    | Machine.Trapped t, _ ->
        Error
          (Printf.sprintf "trap %s: %s" entry
             (Hppa_machine.Trap.to_string t))
    | Machine.Fuel_exhausted, _ ->
        Error (Printf.sprintf "fuel %s exceeded %d cycles" entry fuel)
  end
