lib/core/div_magic.mli: Format Hppa_word
