test/test_machine.ml: Alcotest Asm Hppa_machine Hppa_word Program QCheck Reg Util
