(* Closure-threaded execution engine.

   Translate once, execute many: each resolved instruction is compiled
   into one specialized OCaml closure with register indices, immediates,
   condition evaluators and trap checks resolved at compile time, and
   straight-line runs of closures are chained into basic-block
   "superblocks" that execute with direct calls — no re-decode, no
   [Result] allocation, no per-instruction statistics hashing.

   Value representation: registers live in an [int array] as unsigned
   32-bit values (0 .. 2^32-1), so all arithmetic runs unboxed in the
   native 63-bit int with a single [land 0xffff_ffff] to wrap. Slot 0 is
   the hardwired zero; writes aimed at r0 are redirected to a scratch
   slot (index 32) at compile time, which keeps every write a plain
   array store. Signedness is recovered with a two-instruction sign
   extension where a signed compare or overflow check needs it.

   Statistics parity: the reference interpreter records every
   instruction in a string-keyed histogram. The engine increments a
   per-mnemonic-id int counter inside each closure and settles the
   totals into {!Stats} once per run, so cycles, the executed/nullified
   split, taken-branch counts and the histogram are bit-identical to
   the interpreter's at a fraction of the cost.

   The engine implements only the default (no delay slot) branch model
   and supports neither trace hooks nor the icache model; {!Machine.run}
   falls back to the reference interpreter for those. *)

let u32 = 0xffff_ffff
let sign = 0x8000_0000

(* Unsigned representation -> signed value, as a native int. *)
let sext v = (v lxor sign) - sign

(* Raised by a compiled closure; the driver converts it to [Trapped],
   leaving the PC on the trapping instruction like the interpreter. *)
exception Trap_at of int * Trap.t

type st = {
  mutable carry : bool;
  mutable v : bool;
  mutable nullify : bool;
  mutable exit_pc : int;  (* PC to report after a halt (sentinel branch) *)
  mutable null_count : int;
  mutable taken : int;
  mutable block_cycles : int;
      (* cycles dispatched as fused superblocks; a block that traps midway
         is still attributed whole (the run ends there anyway) *)
  mutable step_cycles : int;
      (* single-stepped cycles: fuel-bounded tails and nullify shadows *)
}

(* A compiled instruction: [Body] falls through (and may only leave the
   block by raising a trap); [Term] ends a basic block and returns the
   next PC. Anything that branches, nullifies its successor or always
   traps is a terminator. *)
type compiled = Body of (unit -> unit) | Term of (unit -> int)

(* [Cond.eval] specialised to the unsigned-int representation. Evaluated
   once at translation time; the returned closure is monomorphic on
   ints and allocation-free. *)
let cond_fn (c : Cond.t) : int -> int -> bool =
  match c with
  | Never -> fun _ _ -> false
  | Always -> fun _ _ -> true
  | Eq -> fun a b -> a = b
  | Neq -> fun a b -> a <> b
  | Lt -> fun a b -> sext a < sext b
  | Le -> fun a b -> sext a <= sext b
  | Gt -> fun a b -> sext b < sext a
  | Ge -> fun a b -> sext b <= sext a
  | Ult -> fun a b -> a < b
  | Ule -> fun a b -> a <= b
  | Ugt -> fun a b -> b < a
  | Uge -> fun a b -> b <= a
  | Odd -> fun a b -> (a - b) land 1 = 1
  | Even -> fun a b -> (a - b) land 1 = 0

let make (cpu : Cpu.t) : int -> Cpu.outcome =
  let code = cpu.prog.code in
  let len = Array.length code in
  let mem = cpu.mem in
  let mlen = Array.length mem in
  (* Intern the mnemonics so closures count into a dense int array. *)
  let ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rev_names = ref [] in
  let intern m =
    match Hashtbl.find_opt ids m with
    | Some id -> id
    | None ->
        let id = Hashtbl.length ids in
        Hashtbl.add ids m id;
        rev_names := m :: !rev_names;
        id
  in
  let mid = Array.map (fun i -> intern (Insn.mnemonic i)) code in
  let names = Array.of_list (List.rev !rev_names) in
  let nmn = Array.length names in
  let mc = Array.make (max nmn 1) 0 in
  let st =
    { carry = false; v = false; nullify = false; exit_pc = 0;
      null_count = 0; taken = 0; block_cycles = 0; step_cycles = 0 }
  in
  (* r.(0) is the hardwired zero, r.(32) the write sink for r0 targets. *)
  let r = Array.make 33 0 in
  let ri rg = Reg.to_int rg in
  let wi rg = let i = Reg.to_int rg in if i = 0 then 32 else i in
  let iu (imm : int32) = Int32.to_int imm land u32 in
  (* A taken static branch: validity is known at translation time. The
     interpreter checks the target before recording the taken branch,
     so an out-of-range target traps without counting as taken. *)
  let branch pc target =
    if target >= 0 && target < len then
      fun () -> st.taken <- st.taken + 1; target
    else fun () -> raise (Trap_at (pc, Trap.Bad_pc target))
  in
  let compile pc (insn : int Insn.t) : compiled =
    let n = mid.(pc) in
    match insn with
    | Alu { op; a; b; t = d; trap_ov } -> (
        let ai = ri a and bi = ri b and d = wi d in
        match op with
        | Add ->
            if trap_ov then
              Body (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  let av = r.(ai) and bv = r.(bi) in
                  let w = av + bv in
                  st.carry <- w > u32;
                  st.v <- false;
                  let s = w land u32 in
                  if (av lxor bv) land sign = 0 && (av lxor s) land sign <> 0
                  then raise (Trap_at (pc, Trap.Overflow));
                  r.(d) <- s)
            else
              Body (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  let w = r.(ai) + r.(bi) in
                  st.carry <- w > u32;
                  st.v <- false;
                  r.(d) <- w land u32)
        | Addc ->
            if trap_ov then
              Body (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  let av = r.(ai) and bv = r.(bi) in
                  let ci = if st.carry then 1 else 0 in
                  let w = av + bv + ci in
                  st.carry <- w > u32;
                  let wide = sext av + sext bv + ci in
                  if wide < -0x8000_0000 || wide > 0x7fff_ffff then
                    raise (Trap_at (pc, Trap.Overflow));
                  r.(d) <- w land u32)
            else
              Body (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  let w = r.(ai) + r.(bi) + (if st.carry then 1 else 0) in
                  st.carry <- w > u32;
                  r.(d) <- w land u32)
        | Sub ->
            if trap_ov then
              Body (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  let av = r.(ai) and bv = r.(bi) in
                  let w = av - bv in
                  st.carry <- w >= 0;
                  st.v <- false;
                  let dv = w land u32 in
                  if (av lxor bv) land sign <> 0 && (av lxor dv) land sign <> 0
                  then raise (Trap_at (pc, Trap.Overflow));
                  r.(d) <- dv)
            else
              Body (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  let w = r.(ai) - r.(bi) in
                  st.carry <- w >= 0;
                  st.v <- false;
                  r.(d) <- w land u32)
        | Subb ->
            if trap_ov then
              Body (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  let av = r.(ai) and bv = r.(bi) in
                  let bw = if st.carry then 0 else 1 in
                  let w = av - bv - bw in
                  st.carry <- w >= 0;
                  let wide = sext av - sext bv - bw in
                  if wide < -0x8000_0000 || wide > 0x7fff_ffff then
                    raise (Trap_at (pc, Trap.Overflow));
                  r.(d) <- w land u32)
            else
              Body (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  let w = r.(ai) - r.(bi) - (if st.carry then 0 else 1) in
                  st.carry <- w >= 0;
                  r.(d) <- w land u32)
        | Shadd k ->
            if trap_ov then
              Body (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  let av = r.(ai) and bv = r.(bi) in
                  let shifted = (av lsl k) land u32 in
                  let w = shifted + bv in
                  st.carry <- w > u32;
                  (* The hardware's cheap circuit (§4): the k+1 top bits
                     of [a] must be sign copies, plus the 32-bit add's own
                     signed overflow. *)
                  let top = sext av asr (31 - k) in
                  let shift_ok = top = 0 || top = -1 in
                  let s = w land u32 in
                  let add_ov =
                    (shifted lxor bv) land sign = 0
                    && (shifted lxor s) land sign <> 0
                  in
                  if (not shift_ok) || add_ov then
                    raise (Trap_at (pc, Trap.Overflow));
                  r.(d) <- s)
            else
              Body (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  let w = ((r.(ai) lsl k) land u32) + r.(bi) in
                  st.carry <- w > u32;
                  r.(d) <- w land u32)
        | And ->
            Body (fun () ->
                mc.(n) <- mc.(n) + 1;
                r.(d) <- r.(ai) land r.(bi))
        | Or ->
            Body (fun () ->
                mc.(n) <- mc.(n) + 1;
                r.(d) <- r.(ai) lor r.(bi))
        | Xor ->
            Body (fun () ->
                mc.(n) <- mc.(n) + 1;
                r.(d) <- r.(ai) lxor r.(bi))
        | Andcm ->
            Body (fun () ->
                mc.(n) <- mc.(n) + 1;
                r.(d) <- r.(ai) land lnot r.(bi) land u32))
    | Ds { a; b; t = d } ->
        let ai = ri a and bi = ri b and d = wi d in
        Body (fun () ->
            mc.(n) <- mc.(n) + 1;
            (* One non-restoring divide step; the 33/34-bit partial
               remainder fits comfortably in the native int. *)
            let rr = r.(ai) - (if st.v then 0x1_0000_0000 else 0) in
            let r2 = (2 * rr) + (if st.carry then 1 else 0) in
            let r' = if st.v then r2 + r.(bi) else r2 - r.(bi) in
            st.v <- r' < 0;
            st.carry <- r' >= 0;
            r.(d) <- r' land u32)
    | Addi { imm; a; t = d; trap_ov } ->
        let ai = ri a and d = wi d and imm = iu imm in
        if trap_ov then
          Body (fun () ->
              mc.(n) <- mc.(n) + 1;
              let av = r.(ai) in
              let w = av + imm in
              st.carry <- w > u32;
              st.v <- false;
              let s = w land u32 in
              if (av lxor imm) land sign = 0 && (av lxor s) land sign <> 0
              then raise (Trap_at (pc, Trap.Overflow));
              r.(d) <- s)
        else
          Body (fun () ->
              mc.(n) <- mc.(n) + 1;
              let w = r.(ai) + imm in
              st.carry <- w > u32;
              st.v <- false;
              r.(d) <- w land u32)
    | Subi { imm; a; t = d; trap_ov } ->
        (* SUBI computes imm - a: the immediate is the left operand. *)
        let ai = ri a and d = wi d and imm = iu imm in
        if trap_ov then
          Body (fun () ->
              mc.(n) <- mc.(n) + 1;
              let av = r.(ai) in
              let w = imm - av in
              st.carry <- w >= 0;
              st.v <- false;
              let dv = w land u32 in
              if (imm lxor av) land sign <> 0 && (imm lxor dv) land sign <> 0
              then raise (Trap_at (pc, Trap.Overflow));
              r.(d) <- dv)
        else
          Body (fun () ->
              mc.(n) <- mc.(n) + 1;
              let w = imm - r.(ai) in
              st.carry <- w >= 0;
              st.v <- false;
              r.(d) <- w land u32)
    | Comclr { cond; a; b; t = d } ->
        let ai = ri a and bi = ri b and d = wi d in
        let f = cond_fn cond in
        Term (fun () ->
            mc.(n) <- mc.(n) + 1;
            if f r.(ai) r.(bi) then st.nullify <- true;
            r.(d) <- 0;
            pc + 1)
    | Comiclr { cond; imm; a; t = d } ->
        let ai = ri a and d = wi d and imm = iu imm in
        let f = cond_fn cond in
        Term (fun () ->
            mc.(n) <- mc.(n) + 1;
            if f imm r.(ai) then st.nullify <- true;
            r.(d) <- 0;
            pc + 1)
    | Extr { signed; r = src; pos; len = flen; t = d; cond } -> (
        let s = ri src and d = wi d in
        let sl = 32 - pos - flen and sr = 32 - flen in
        let mask = (1 lsl flen) - 1 in
        match cond with
        | Never ->
            if signed then
              Body (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  r.(d) <- sext ((r.(s) lsl sl) land u32) asr sr land u32)
            else
              Body (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  r.(d) <- (r.(s) lsr pos) land mask)
        | _ ->
            let f = cond_fn cond in
            if signed then
              Term (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  let v = sext ((r.(s) lsl sl) land u32) asr sr land u32 in
                  if f v 0 then st.nullify <- true;
                  r.(d) <- v;
                  pc + 1)
            else
              Term (fun () ->
                  mc.(n) <- mc.(n) + 1;
                  let v = (r.(s) lsr pos) land mask in
                  if f v 0 then st.nullify <- true;
                  r.(d) <- v;
                  pc + 1))
    | Zdep { r = src; pos; len = flen; t = d } ->
        let s = ri src and d = wi d in
        let mask = (1 lsl flen) - 1 in
        Body (fun () ->
            mc.(n) <- mc.(n) + 1;
            r.(d) <- ((r.(s) land mask) lsl pos) land u32)
    | Shd { a; b; sa; t = d } ->
        let ai = ri a and bi = ri b and d = wi d in
        if sa = 0 then
          Body (fun () ->
              mc.(n) <- mc.(n) + 1;
              r.(d) <- r.(bi))
        else
          Body (fun () ->
              mc.(n) <- mc.(n) + 1;
              r.(d) <- ((r.(ai) lsl (32 - sa)) lor (r.(bi) lsr sa)) land u32)
    | Ldil { imm; t = d } ->
        let d = wi d and imm = iu imm in
        Body (fun () ->
            mc.(n) <- mc.(n) + 1;
            r.(d) <- imm)
    | Ldo { imm; base; t = d } ->
        let b = ri base and d = wi d and imm = iu imm in
        Body (fun () ->
            mc.(n) <- mc.(n) + 1;
            r.(d) <- (r.(b) + imm) land u32)
    | Ldw { disp; base; t = d } ->
        let b = ri base and d = wi d and disp = iu disp in
        Body (fun () ->
            mc.(n) <- mc.(n) + 1;
            let addr = (r.(b) + disp) land u32 in
            if addr land 3 <> 0 then
              raise (Trap_at (pc, Trap.Unaligned (Int32.of_int addr)));
            let i = addr lsr 2 in
            if i >= mlen then
              raise (Trap_at (pc, Trap.Bad_address (Int32.of_int addr)));
            r.(d) <- Int32.to_int mem.(i) land u32)
    | Stw { r = src; disp; base } ->
        let s = ri src and b = ri base and disp = iu disp in
        Body (fun () ->
            mc.(n) <- mc.(n) + 1;
            let addr = (r.(b) + disp) land u32 in
            if addr land 3 <> 0 then
              raise (Trap_at (pc, Trap.Unaligned (Int32.of_int addr)));
            let i = addr lsr 2 in
            if i >= mlen then
              raise (Trap_at (pc, Trap.Bad_address (Int32.of_int addr)));
            mem.(i) <- Int32.of_int r.(s))
    | Ldaddr { target; t = d } ->
        let d = wi d and v = target land u32 in
        Body (fun () ->
            mc.(n) <- mc.(n) + 1;
            r.(d) <- v)
    | Comb { cond; a; b; target; n = _ } ->
        let ai = ri a and bi = ri b in
        let f = cond_fn cond and take = branch pc target in
        Term (fun () ->
            mc.(n) <- mc.(n) + 1;
            if f r.(ai) r.(bi) then take () else pc + 1)
    | Comib { cond; imm; a; target; n = _ } ->
        let ai = ri a and imm = iu imm in
        let f = cond_fn cond and take = branch pc target in
        Term (fun () ->
            mc.(n) <- mc.(n) + 1;
            if f imm r.(ai) then take () else pc + 1)
    | Addib { cond; imm; a; target; n = _ } ->
        let ai = ri a and aw = wi a and imm = iu imm in
        let f = cond_fn cond and take = branch pc target in
        Term (fun () ->
            mc.(n) <- mc.(n) + 1;
            (* The counter is written before the condition (on the sum)
               decides — it persists even into a Bad_pc trap. *)
            let sum = (r.(ai) + imm) land u32 in
            r.(aw) <- sum;
            if f sum 0 then take () else pc + 1)
    | B { target; n = _ } ->
        let take = branch pc target in
        Term (fun () ->
            mc.(n) <- mc.(n) + 1;
            take ())
    | Bl { target; t = d; n = _ } ->
        let d = wi d in
        let take = branch pc target in
        Term (fun () ->
            mc.(n) <- mc.(n) + 1;
            r.(d) <- pc + 1;
            take ())
    | Blr { x; t = d; n = _ } ->
        let xi = ri x and d = wi d in
        Term (fun () ->
            mc.(n) <- mc.(n) + 1;
            (* Link before reading x, like the interpreter (t may be x). *)
            r.(d) <- pc + 1;
            let target = pc + 1 + (2 * r.(xi)) in
            if target < len then begin
              st.taken <- st.taken + 1;
              target
            end
            else raise (Trap_at (pc, Trap.Bad_pc target)))
    | Bv { x; base; n = _ } ->
        let xi = ri x and b = ri base in
        Term (fun () ->
            mc.(n) <- mc.(n) + 1;
            let tw = (r.(b) + ((2 * r.(xi)) land u32)) land u32 in
            if tw = u32 then begin
              (* Halt sentinel: stop with the PC past this instruction. *)
              st.taken <- st.taken + 1;
              st.exit_pc <- pc + 1;
              -1
            end
            else if tw < len then begin
              st.taken <- st.taken + 1;
              tw
            end
            else raise (Trap_at (pc, Trap.Bad_pc tw)))
    | Break { code } ->
        Term (fun () ->
            mc.(n) <- mc.(n) + 1;
            raise (Trap_at (pc, Trap.Break code)))
    | Nop -> Body (fun () -> mc.(n) <- mc.(n) + 1)
  in
  (* Thread the closures into superblocks, built backwards so each body
     tail-calls directly into its successor's chain. [ops] is the
     single-instruction step used when remaining fuel can't cover a
     whole block; [blen] is the block's instruction count from each
     entry point. *)
  let dummy () = 0 in
  let ops = Array.make (max len 1) dummy in
  let blocks = Array.make (max len 1) dummy in
  let blen = Array.make (max len 1) 0 in
  for pc = len - 1 downto 0 do
    match compile pc code.(pc) with
    | Term f ->
        ops.(pc) <- f;
        blocks.(pc) <- f;
        blen.(pc) <- 1
    | Body b ->
        ops.(pc) <- (fun () -> b (); pc + 1);
        if pc = len - 1 then begin
          blocks.(pc) <- ops.(pc);
          blen.(pc) <- 1
        end
        else begin
          let next = blocks.(pc + 1) in
          blocks.(pc) <- (fun () -> b (); next ());
          blen.(pc) <- blen.(pc + 1) + 1
        end
  done;
  let regs = cpu.regs in
  let stats = cpu.stats in
  fun fuel ->
    r.(0) <- 0;
    for i = 1 to 31 do
      r.(i) <- Int32.to_int regs.(i) land u32
    done;
    st.carry <- cpu.carry;
    st.v <- cpu.v;
    st.nullify <- cpu.nullify;
    st.null_count <- 0;
    st.taken <- 0;
    st.block_cycles <- 0;
    st.step_cycles <- 0;
    Array.fill mc 0 (Array.length mc) 0;
    (* The driver mirrors the interpreter's [run]/[step] ordering
       exactly: fuel before the bounds check, bounds before the nullify
       shadow. Negative fuel never reaches 0, i.e. runs forever, in both
       engines. *)
    let rec go pc fuel =
      if pc < 0 then (Cpu.Halted, st.exit_pc)
      else if fuel = 0 then (Cpu.Fuel_exhausted, pc)
      else if pc >= len then (Cpu.Trapped (Trap.Bad_pc pc), pc)
      else if st.nullify then begin
        st.nullify <- false;
        st.null_count <- st.null_count + 1;
        st.step_cycles <- st.step_cycles + 1;
        go (pc + 1) (fuel - 1)
      end
      else
        let bl = blen.(pc) in
        if fuel >= bl || fuel < 0 then begin
          st.block_cycles <- st.block_cycles + bl;
          go (blocks.(pc) ()) (fuel - bl)
        end
        else begin
          st.step_cycles <- st.step_cycles + 1;
          go (ops.(pc) ()) (fuel - 1)
        end
    in
    let outcome, end_pc =
      try go cpu.pc fuel
      with Trap_at (tpc, trap) -> (Cpu.Trapped trap, tpc)
    in
    for i = 1 to 31 do
      (* Skip untouched registers: the comparison is allocation-free,
         while [Int32.of_int] boxes — short runs are sync-dominated. *)
      if Int32.to_int regs.(i) land u32 <> r.(i) then
        regs.(i) <- Int32.of_int r.(i)
    done;
    cpu.carry <- st.carry;
    cpu.v <- st.v;
    cpu.nullify <- st.nullify;
    cpu.pc <- end_pc;
    (match outcome with Cpu.Halted -> cpu.halted <- true | _ -> ());
    for id = 0 to Array.length names - 1 do
      if mc.(id) > 0 then Stats.add_executed stats ~mnemonic:names.(id) mc.(id)
    done;
    Stats.add_nullified stats st.null_count;
    Stats.add_branches_taken stats st.taken;
    if st.block_cycles > 0 then
      Hppa_obs.Obs.Counter.add cpu.prof.block_cycles st.block_cycles;
    if st.step_cycles > 0 then
      Hppa_obs.Obs.Counter.add cpu.prof.step_cycles st.step_cycles;
    outcome
