test/test_isa.ml: Alcotest Array Asm Bytes Cond Emit Encode Format Hppa Hppa_word Image Insn Int Int32 List Program QCheck Reg Util
