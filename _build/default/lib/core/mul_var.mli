(** Multiplication by variables (§6): the algorithm ladder.

    Five routines, each one paper refinement over the previous. All compute
    the 32-bit (mod 2{^32}) product of [arg0] and [arg1] into [ret0] — the
    "standard" multiply, correct for both signed and unsigned interpretation
    — except {!mulo_source}, which implements the signed, overflow-trapping
    variant most languages require.

    - {!naive_source} ([mul_naive]): Figure 2. One multiplier bit per
      iteration, 32 iterations, a dynamic path of ~167 instructions.
    - {!naive_early_source} ([mul_naive_early]): Figure 2 plus the "simple
      optimization" — exit as soon as the shifted multiplier is zero. Worst
      case grows to ~192; the log-uniform average halves.
    - {!nibble_source} ([mul_nibble]): Figure 3. Four bits per iteration via
      the shift-and-add pre-shifter; the loop body is exactly the paper's 13
      instructions.
    - {!switch_source} ([mul_switch]): Figure 4. The 16-way vectored-branch
      case table multiplies the multiplicand by each nibble as a constant; a
      maintained [3 * mcand] keeps every case within two work instructions.
    - {!final_source} ([mul_final]): §6 "A Few Additional Details". Adds the
      operand swap so the multiplier is the smaller magnitude (at most 4
      iterations on non-overflowing products), quick exits for 0 and 1, and
      a fast path for non-negative operands. Figure 5 profiles this routine.
    - {!mulo_source} ([mulo]): the signed trapping multiply. Overflow is
      reported iff the true product is unrepresentable — including the
      delicate most-negative-result cases the paper warns about — via
      monotonic trapping accumulation and an exact power-of-two analysis.

    Each source is self-contained and relocatable; {!all} concatenates them
    for a machine image with every entry point. *)

val naive_source : Program.source
val naive_early_source : Program.source
val nibble_source : Program.source
val switch_source : Program.source
val final_source : Program.source
val mulo_source : Program.source

val all : Program.source
(** Every routine above in one compilation unit. *)

val entries : string list
(** Entry labels, in ladder order:
    [["mul_naive"; "mul_naive_early"; "mul_nibble"; "mul_switch";
      "mul_final"; "mulo"]]. *)

val reference : Hppa_word.Word.t -> Hppa_word.Word.t -> Hppa_word.Word.t
(** What the non-trapping routines compute: the low 32 bits of the
    product. *)

val mulo_reference :
  Hppa_word.Word.t -> Hppa_word.Word.t -> Hppa_word.Word.t option
(** What [mulo] computes: [None] when the signed product overflows (the
    routine traps), [Some product] otherwise. *)
