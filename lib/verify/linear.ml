module Word = Hppa_word.Word

(* Abstract value: [Lin (a, b)] is a*x + b mod 2^32, x the entry value of
   the source register. All chain operations are linear mod 2^32, so this
   is exact on them. *)
type aval = Top | Lin of int32 * int32

(* [x = Some k] on paths where a comparison pinned the input. *)
type state = { regs : aval array; x : int32 option }

type verdict = Certified | Refuted of string | Unknown of string

let pp_verdict ppf = function
  | Certified -> Format.pp_print_string ppf "certified"
  | Refuted m -> Format.fprintf ppf "refuted: %s" m
  | Unknown m -> Format.fprintf ppf "unknown: %s" m

exception Abort of string
exception Refute of string

let av s r =
  if Reg.equal r Reg.r0 then Lin (0l, 0l) else s.regs.(Reg.to_int r)

let assign s r v =
  if Reg.equal r Reg.r0 then s
  else
    let regs = Array.copy s.regs in
    regs.(Reg.to_int r) <- v;
    { s with regs }

let vadd u v =
  match (u, v) with
  | Lin (a1, b1), Lin (a2, b2) -> Lin (Word.add a1 a2, Word.add b1 b2)
  | _ -> Top

let vsub u v =
  match (u, v) with
  | Lin (a1, b1), Lin (a2, b2) -> Lin (Word.sub a1 a2, Word.sub b1 b2)
  | _ -> Top

let vshl u k =
  match u with Lin (a, b) -> Lin (Word.shl a k, Word.shl b k) | Top -> Top

let const c = Lin (0l, c)

(* The concrete value, when the path knows it. *)
let concrete s v =
  match v with
  | Top -> None
  | Lin (a, b) -> (
      if Word.equal a 0l then Some b
      else
        match s.x with
        | Some k -> Some (Word.add (Word.mul_lo a k) b)
        | None -> None)

(* Register transfer of one instruction; [None] when the instruction
   certainly traps (its path never returns). Branching and nullification
   are the caller's business. *)
let transfer s (i : int Insn.t) : state option =
  let ov_cut ~trap_ov ov_certain next =
    if trap_ov && ov_certain then None else Some next
  in
  match i with
  | Alu { op; a; b; t; trap_ov } -> (
      let va = av s a and vb = av s b in
      match op with
      | Add ->
          let certain =
            match (concrete s va, concrete s vb) with
            | Some ca, Some cb -> Word.add_overflows_s ca cb
            | _ -> false
          in
          ov_cut ~trap_ov certain (assign s t (vadd va vb))
      | Sub ->
          let certain =
            match (concrete s va, concrete s vb) with
            | Some ca, Some cb -> Word.sub_overflows_s ca cb
            | _ -> false
          in
          ov_cut ~trap_ov certain (assign s t (vsub va vb))
      | Shadd k ->
          let certain =
            match (concrete s va, concrete s vb) with
            | Some ca, Some cb -> Word.sh_add_overflows_hw k ca cb
            | _ -> false
          in
          ov_cut ~trap_ov certain (assign s t (vadd (vshl va k) vb))
      | Addc | Subb | And | Or | Xor | Andcm -> Some (assign s t Top))
  | Ds { t; _ } -> Some (assign s t Top)
  | Addi { imm; a; t; trap_ov } ->
      let va = av s a in
      let certain =
        match concrete s va with
        | Some ca -> Word.add_overflows_s ca imm
        | None -> false
      in
      ov_cut ~trap_ov certain (assign s t (vadd va (const imm)))
  | Subi { imm; a; t; trap_ov } ->
      let va = av s a in
      let certain =
        match concrete s va with
        | Some ca -> Word.sub_overflows_s imm ca
        | None -> false
      in
      ov_cut ~trap_ov certain (assign s t (vsub (const imm) va))
  | Comclr { t; _ } | Comiclr { t; _ } -> Some (assign s t (const 0l))
  | Extr { t; _ } -> Some (assign s t Top)
  | Zdep { r; pos; len; t } ->
      (* shift-left-immediate; any other deposit leaves the domain *)
      if len = 32 - pos then Some (assign s t (vshl (av s r) pos))
      else Some (assign s t Top)
  | Shd { t; _ } -> Some (assign s t Top)
  | Ldil { imm; t } -> Some (assign s t (const imm))
  | Ldo { imm; base; t } -> Some (assign s t (vadd (av s base) (const imm)))
  | Ldw { t; _ } -> Some (assign s t Top)
  | Stw _ -> Some s
  | Ldaddr { t; _ } -> Some (assign s t Top)
  | Addib { imm; a; _ } -> Some (assign s a (vadd (av s a) (const imm)))
  | Comb _ | Comib _ | B _ | Bv _ -> Some s
  | Bl { t; _ } | Blr { t; _ } -> Some (assign s t Top)
  | Break _ -> None
  | Nop -> Some s

(* Which way does a conditional at [addr] send a successor node? *)
type sense = Taken | Fall | Either

let sense_of ~addr ~target node =
  match node with
  | Cfg.Slot _ -> Taken
  | Cfg.Insn t ->
      if t = target && t = addr + 1 then Either
      else if t = target then Taken
      else if t = addr + 1 then Fall
      else Either
  | Cfg.Summary _ | Cfg.Tail _ -> Either

(* Constrain the path state by the branch decision; [None] drops an edge
   the comparison proves impossible. Solving is only attempted when the
   compared register is exactly x (Lin (1, 0)). *)
let refine s (i : int Insn.t) sense : state option =
  let decide cond l r keep_if =
    if Cond.eval cond l r = keep_if then Some s else None
  in
  match (i, sense) with
  | _, Either -> Some s
  | Comib { cond; imm; a; _ }, _ -> (
      let va = av s a in
      match concrete s va with
      | Some c -> decide cond imm c (sense = Taken)
      | None -> (
          match (va, cond, sense) with
          | Lin (1l, 0l), Cond.Eq, Taken | Lin (1l, 0l), Cond.Neq, Fall ->
              Some { s with x = Some imm }
          | _ -> Some s))
  | Comb { cond; a; b; _ }, _ -> (
      match (concrete s (av s a), concrete s (av s b)) with
      | Some ca, Some cb -> decide cond ca cb (sense = Taken)
      | _ -> Some s)
  | Addib { cond; a; _ }, _ -> (
      (* [transfer] already updated the counter; test it against zero. *)
      match concrete s (av s a) with
      | Some c -> decide cond c 0l (sense = Taken)
      | None -> Some s)
  | _ -> Some s

let step_budget = 20_000

let certify ?(src = Reg.arg0) ?(result = Reg.ret0) cfg ~entry ~multiplier =
  let init =
    let regs = Array.make 32 Top in
    regs.(Reg.to_int src) <- Lin (1l, 0l);
    { regs; x = None }
  in
  let seen = Hashtbl.create 256 in
  let steps = ref 0 in
  let returned = ref false in
  let check_ret s =
    returned := true;
    let v = av s result in
    match s.x with
    | Some k ->
        let got =
          match concrete s v with
          | Some c -> c
          | None -> raise (Abort "return value not concrete on a pinned path")
        in
        let want = Word.mul_lo multiplier k in
        if not (Word.equal got want) then
          raise
            (Refute
               (Format.asprintf "for x = %ld the routine returns %ld, not %ld"
                  k got want))
    | None -> (
        match v with
        | Lin (a, b) when Word.equal a multiplier && Word.equal b 0l -> ()
        | Lin (a, b) ->
            raise
              (Refute
                 (Format.asprintf "returns %ld*x + %ld, wanted %ld*x" a b
                    multiplier))
        | Top -> raise (Abort "return value leaves the linear domain"))
  in
  let rec visit node s =
    if not (Hashtbl.mem seen (node, s)) then begin
      Hashtbl.replace seen (node, s) ();
      incr steps;
      if !steps > step_budget then
        raise (Abort "path explosion: state budget exhausted");
      match node with
      | Cfg.Summary _ -> raise (Abort "routine makes a call")
      | Cfg.Tail _ -> raise (Abort "routine makes a tail call")
      | Cfg.Insn a | Cfg.Slot (a, _) -> (
          let i = Cfg.insn cfg a in
          match transfer s i with
          | None -> () (* certain trap: the path never returns *)
          | Some s' ->
              let classify =
                match Insn.target i with
                | Some target -> sense_of ~addr:a ~target
                | None -> fun _ -> Either
              in
              List.iter
                (fun e ->
                  match e with
                  | Cfg.Trap -> ()
                  | Cfg.Ret -> check_ret s'
                  | Cfg.Off_image ->
                      raise (Abort "control may leave the program image")
                  | Cfg.Indirect -> raise (Abort "indirect branch")
                  | Cfg.Step next -> (
                      let sense =
                        match node with
                        | Cfg.Slot _ -> Either (* transfer already decided *)
                        | _ -> classify next
                      in
                      match refine s' i sense with
                      | Some s'' -> visit next s''
                      | None -> ()))
                (Cfg.succs cfg node))
    end
  in
  match
    visit (Cfg.Insn entry) init;
    if !returned then Certified else Unknown "no return path reached"
  with
  | v -> v
  | exception Refute m -> Refuted m
  | exception Abort m -> Unknown m

let findings ~routine v =
  match v with
  | Certified -> []
  | Refuted m ->
      [ Findings.v ~routine Findings.Certify ("multiply refuted: " ^ m) ]
  | Unknown m ->
      [ Findings.v ~routine Findings.Certify ("multiply not certified: " ^ m) ]
