(* Strength reduction: the paper's section 2 loop, end to end.

     for (i = 0; i < 10; i = i + 1)
         j = j + i*15;

   The multiplication by 15 forms an arithmetic progression, so the
   optimizer replaces it with an addition — and when the pass cannot fire
   (the paper: induction variables reused in non-subscript expressions,
   global counters, careless gotos), the multiply stays and its cost is
   whatever the architecture makes of it. This example runs the pass,
   checks semantics, and weighs the surviving multiplies with the
   simulated millicode costs.

   Run with:  dune exec examples/strength_reduction.exe *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
open Hppa_compiler

let () =
  let loop =
    Loop_ir.
      {
        counter = "i";
        start = 0l;
        stop = 10l;
        step = 1l;
        body = [ Assign ("j", Expr.Add (Var "j", Expr.Mul (Var "i", Const 15l))) ];
      }
  in
  Format.printf "original loop:@.%a@.@." Loop_ir.pp loop;

  let reduced = Strength.reduce loop in
  Format.printf "after strength reduction (%d multiply removed):@.%a@.@."
    reduced.multiplies_removed Loop_ir.pp reduced.loop;

  let before = Loop_ir.eval loop ~init:[ ("j", 0l) ] in
  let after = Strength.eval_reduced reduced ~init:[ ("j", 0l) ] in
  Format.printf "j = %ld before, %ld after (%s)@.@."
    (List.assoc "j" before) (List.assoc "j" after)
    (if List.assoc "j" before = List.assoc "j" after then "semantics preserved"
     else "BUG");

  (* The FORTRAN rank situation: the induction variable multiplies a
     runtime value. The extended pass reduces it too (the bump becomes an
     addition of n), leaving nothing for the millicode. *)
  let stubborn =
    Loop_ir.
      {
        counter = "i";
        start = 0l;
        stop = 1000l;
        step = 1l;
        body =
          [
            Assign ("j", Expr.Add (Var "j", Expr.Mul (Var "i", Const 15l)));
            Assign ("k", Expr.Add (Var "k", Expr.Mul (Var "i", Var "n")));
          ];
      }
  in
  let reduced = Strength.reduce stubborn in
  let dyn_before, _ = Loop_ir.dynamic_mul_div stubborn in
  let dyn_after, _ = Loop_ir.dynamic_mul_div reduced.loop in
  Format.printf
    "rank loop: %d dynamic multiplies before, %d survive reduction@."
    dyn_before dyn_after;
  Format.printf
    "(when the multiplier is NOT invariant — a global the loop updates, a@.";
  Format.printf
    " careless goto — the pass cannot fire and the millicode cost stays.)@.";

  (* Compile both versions of the whole loop and run them end to end. *)
  let measure name inputs args l =
    let before = Lower_loop.compile_and_link ~entry:"k" ~inputs ~result:"j" l in
    let reduced = Strength.reduce l in
    let after_u = Lower_loop.compile_reduced ~entry:"k" ~inputs ~result:"j" reduced in
    let after =
      Program.resolve_exn
        (Program.concat [ after_u.source; Hppa.Millicode.source ])
    in
    let run prog =
      let mach = Machine.create prog in
      match Machine.call_cycles mach "k" ~args with
      | Machine.Halted, c -> (Machine.get mach Reg.ret0, c)
      | (Machine.Trapped _ | Machine.Fuel_exhausted), _ -> failwith "kernel"
    in
    let v1, c1 = run before and v2, c2 = run after in
    assert (Word.equal v1 v2);
    Format.printf "  %-34s %6d -> %6d cycles (%.2fx)@." name c1 c2
      (float_of_int c1 /. float_of_int c2)
  in
  Format.printf "@.whole loops compiled and run on the simulator (1000 iterations):@.";
  let body e = [ Loop_ir.Assign ("j", Expr.Add (Var "j", e)) ] in
  let loop e =
    Loop_ir.{ counter = "i"; start = 0l; stop = 1000l; step = 1l; body = body e }
  in
  measure "j += i * n   (variable, millicode)" [ "n" ] [ 15l ]
    (loop (Expr.Mul (Var "i", Var "n")));
  measure "j += i * 15  (constant, chain)" [] []
    (loop (Expr.Mul (Var "i", Const 15l)));
  Format.printf
    "@.the architectural punchline: reduction rescues the variable case, but@.";
  Format.printf
    "a constant multiplier was already a two-instruction chain — section 5@.";
  Format.printf "made that strength reduction nearly redundant.@."
