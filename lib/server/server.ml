(* The service: one multiplexed event loop (non-blocking sockets driven
   by Unix.select) serving every connection, with plan compute sharded
   across worker domains by normalized-key hash. Requests pipeline: a
   connection may have up to [pipeline_depth] requests in flight, and
   replies come back in request order through per-request reply slots.
   See DESIGN.md "Async serving tier". *)

module Machine = Hppa_machine.Machine
module Obs = Hppa_obs.Obs
open Hppa

module Config = struct
  type endpoint = Unix_socket of string | Tcp of string * int

  type t = {
    endpoint : endpoint;
    shards : int;
    cache_capacity : int;
    fuel : int;
    pipeline_depth : int;
    backlog : int;
    tick_s : float;
    drain_grace_s : float;
    trace_path : string option;
    plans_path : string option;
    certified : bool;
  }

  let default =
    {
      endpoint = Unix_socket "hppa-serve.sock";
      shards = 2;
      cache_capacity = 4096;
      fuel = 1_000_000;
      pipeline_depth = 64;
      backlog = 128;
      tick_s = 0.05;
      drain_grace_s = 5.0;
      trace_path = None;
      plans_path = None;
      certified = false;
    }
end

let trace_capacity = 65536

(* One cache shard: an LRU slice plus a single-domain pool that owns
   every plan computation whose normalized key hashes here. The LRU has
   its own lock so the event loop can probe for hits directly; all
   *writes* to the slice happen on the shard's worker, so a hot key
   never contends across shards. *)
type shard = { cache : Lru.t; pool : Machine.t Lazy.t Pool.t }

type t = {
  cfg : Config.t;
  shards : shard array;
  artifacts : (string, Plan.artifact) Hashtbl.t;
      (* selector verdict per cached plan, keyed like the reply cache *)
  art_lock : Mutex.t;
  warmed : int ref;
  metrics : Metrics.t;
  obs : Obs.Registry.t;
  trace : Obs.Trace.t option;
  stopping : bool Atomic.t;
  started : float;
  mutable wake : Unix.file_descr option;
      (* write end of the event loop's wake pipe while [run] is live *)
  mutable live_conns : int;
  accepted : Obs.Counter.t;
}

(* ------------------------------------------------------------------ *)
(* Sharding                                                            *)

(* FNV-1a over the normalized cache key: cheap, stable across runs, and
   spreads the zipf head across shards. *)
let fnv1a key =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    key;
  Int64.to_int !h land max_int

let shard_index t key = fnv1a key mod Array.length t.shards
let shard t key = t.shards.(shard_index t key)

let sum_shards t f = Array.fold_left (fun n s -> n + f s.cache) 0 t.shards

(* Cacheable requests are keyed by their normalized form, so "MUL 7",
   "mul 7" and " MUL  7 " share one entry and one computation — and a
   batch lane shares the entry of the scalar request for the same
   operand. The cached value is the exact reply payload: hits are
   byte-identical to recomputes by construction. *)
let cache_key req = Format.asprintf "%a" Protocol.pp_request req

(* Map a strategy-layer request id (Autotune measurements record
   [Strategy.request_id]) back onto a cacheable protocol request. Only
   the shapes the protocol can express warm anything: signed constant
   multiplies and the d > 0 unsigned / d < 0 signed divide pairing DIV
   itself uses. *)
let warm_request id =
  let const tag =
    if String.length tag > 1 && tag.[0] = 'c' then
      Int32.of_string_opt (String.sub tag 1 (String.length tag - 1))
    else None
  in
  match String.split_on_char '.' id with
  | [ "mul"; tag; "s" ] -> Option.map (fun n -> Protocol.mul n) (const tag)
  | [ "div"; tag; "u" ] ->
      Option.bind (const tag) (fun d ->
          if d > 0l then Some (Protocol.div d) else None)
  | [ "div"; tag; "s" ] ->
      Option.bind (const tag) (fun d ->
          if d < 0l then Some (Protocol.div d) else None)
  | _ -> None

let cache_plan t key payload artifact =
  Lru.add (shard t key).cache key payload;
  Mutex.lock t.art_lock;
  Hashtbl.replace t.artifacts key artifact;
  Mutex.unlock t.art_lock

let hppa_op = function
  | Protocol.W64_mul -> Hppa_w64.Mul
  | Protocol.W64_div -> Hppa_w64.Div
  | Protocol.W64_rem -> Hppa_w64.Rem

(* Compute one shard's cache misses, on that shard's worker domain.
   MUL/DIV lanes are pure selector calls; W64 lanes carry run-time
   operands, and two or more of them go through one Machine.Batch SoA
   dispatch (per-lane cycles equal the scalar engine's, so the reply
   bytes cannot differ from the scalar path). Successful lanes are
   cached here — on the owning worker — before the results travel back
   to the event loop. *)
let compute_misses t kernel mach misses =
  let require_certified = t.cfg.certified in
  let obs = t.obs in
  let results =
    match (kernel : Protocol.kernel) with
    | Protocol.Kmul ->
        List.map
          (fun (key, lane) ->
            match lane with
            | Protocol.Const n -> (key, Plan.mul ~obs ~require_certified n)
            | Protocol.Pair _ | Protocol.Triple _ ->
                (key, Error "internal lane shape"))
          misses
    | Protocol.Kdiv ->
        List.map
          (fun (key, lane) ->
            match lane with
            | Protocol.Const d -> (key, Plan.div ~obs ~require_certified d)
            | Protocol.Pair _ | Protocol.Triple _ ->
                (key, Error "internal lane shape"))
          misses
    | Protocol.Kw64 pop -> (
        let op = hppa_op pop in
        let mach = Lazy.force mach in
        match misses with
        | [ (key, Protocol.Pair { signed; x; y }) ] ->
            [
              ( key,
                Plan.w64 ~obs ~require_certified mach ~fuel:t.cfg.fuel op
                  ~signed x y );
            ]
        | _ ->
            let signed =
              match misses with
              | (_, Protocol.Pair { signed; _ }) :: _ -> signed
              | _ -> false
            in
            let pairs =
              List.map
                (fun (_, lane) ->
                  match lane with
                  | Protocol.Pair { x; y; _ } -> (x, y)
                  | Protocol.Const _ | Protocol.Triple _ -> (0L, 0L))
                misses
            in
            let rs =
              Plan.w64_batch ~obs ~require_certified mach ~fuel:t.cfg.fuel op
                ~signed pairs
            in
            List.map2 (fun (key, _) r -> (key, r)) misses rs)
    | Protocol.Kdivl -> (
        let mach = Lazy.force mach in
        match misses with
        | [ (key, Protocol.Triple { xhi; xlo; y }) ] ->
            [
              ( key,
                Plan.divl ~obs ~require_certified mach ~fuel:t.cfg.fuel ~xhi
                  ~xlo y );
            ]
        | _ ->
            let triples =
              List.map
                (fun (_, lane) ->
                  match lane with
                  | Protocol.Triple { xhi; xlo; y } -> (xhi, xlo, y)
                  | Protocol.Const _ | Protocol.Pair _ -> (0L, 0L, 0L))
                misses
            in
            let rs =
              Plan.divl_batch ~obs ~require_certified mach ~fuel:t.cfg.fuel
                triples
            in
            List.map2 (fun (key, _) r -> (key, r)) misses rs)
  in
  List.iter
    (fun (key, r) ->
      match r with
      | Ok (payload, artifact) -> cache_plan t key payload artifact
      | Error _ -> ())
    results;
  List.map (fun (key, r) -> (key, Result.map fst r)) results

(* ------------------------------------------------------------------ *)
(* Payloads                                                            *)

let stats_payload t =
  let hits = sum_shards t Lru.hits
  and misses = sum_shards t Lru.misses
  and size = sum_shards t Lru.size
  and capacity = sum_shards t Lru.capacity
  and evictions = sum_shards t Lru.evictions in
  let probes = hits + misses in
  let hit_rate =
    if probes = 0 then 0.0 else float_of_int hits /. float_of_int probes
  in
  Printf.sprintf
    "STATS %s cache_hits=%d cache_misses=%d cache_hit_rate=%.4f \
     cache_size=%d cache_capacity=%d cache_evictions=%d workers=%d \
     uptime_s=%.1f"
    (Metrics.render t.metrics)
    hits misses hit_rate size capacity evictions
    (Array.length t.shards)
    (Unix.gettimeofday () -. t.started)

let metrics_payload t =
  Obs.Export.prometheus (Obs.Registry.snapshot t.obs) ^ "# EOF"

let is_scrape s =
  String.length s >= 1 && s.[0] = '#'
  (* every scrape starts with a # HELP/# TYPE comment *)

let is_batch_reply = Protocol.is_batch_reply

(* ------------------------------------------------------------------ *)
(* Staging: one parsed request becomes either an immediate reply or a
   set of per-shard jobs plus an assembly function. Both the blocking
   [respond] path and the event loop's pipelined path run the same
   staged plan, which is what keeps their reply bytes identical. *)

type staged =
  | Ready of string
  | Pending of {
      jobs :
        (int * (Machine.t Lazy.t -> (string * (string, string) result) list))
        list;
          (* (shard index, job); each job returns (key, lane result) *)
      assemble : (string, (string, string) result) Hashtbl.t -> string;
    }

let stage t (req : Protocol.request) =
  match req with
  | Protocol.Ping -> Ready (Protocol.ok "pong")
  | Protocol.Quit -> Ready (Protocol.ok "bye")
  | Protocol.Stats -> Ready (Protocol.ok (stats_payload t))
  (* Never cached: the scrape must observe live registry state. *)
  | Protocol.Metrics -> Ready (metrics_payload t)
  | Protocol.Eval (entry, args) ->
      let key = cache_key req in
      Pending
        {
          jobs =
            [
              ( shard_index t key,
                fun mach ->
                  [
                    ( key,
                      Plan.eval (Lazy.force mach) ~fuel:t.cfg.fuel entry args
                    );
                  ] );
            ];
          assemble =
            (fun tbl ->
              match Hashtbl.find_opt tbl key with
              | Some (Ok payload) -> Protocol.ok payload
              | Some (Error detail) -> Protocol.err detail
              | None -> Protocol.err "internal lane not computed");
        }
  | Protocol.Op { kernel; batch; lanes } -> (
      let keyed =
        List.map
          (fun lane ->
            let key = Protocol.lane_key kernel lane in
            (key, lane, Lru.find (shard t key).cache key))
          lanes
      in
      let seen = Hashtbl.create 16 in
      let misses =
        List.filter_map
          (fun (key, lane, hit) ->
            if hit = None && not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              Some (key, lane)
            end
            else None)
          keyed
      in
      let lane_line tbl (key, _, hit) =
        match hit with
        | Some payload -> Protocol.ok payload
        | None -> (
            match Hashtbl.find_opt tbl key with
            | Some (Ok payload) -> Protocol.ok payload
            | Some (Error detail) -> Protocol.err detail
            | None -> Protocol.err "internal batch lane not computed")
      in
      let assemble tbl =
        if batch then
          let header =
            Protocol.ok
              (Printf.sprintf "%s k=%d" (Protocol.verb req)
                 (List.length lanes))
          in
          String.concat "\n" (header :: List.map (lane_line tbl) keyed)
        else
          match keyed with
          | [ one ] -> lane_line tbl one
          | _ -> Protocol.err "internal scalar lane count"
      in
      match misses with
      | [] -> Ready (assemble (Hashtbl.create 1))
      | _ ->
          (* Misses grouped by owning shard: one job per shard however
             many lanes miss there. *)
          let groups = Hashtbl.create 8 in
          List.iter
            (fun (key, lane) ->
              let si = shard_index t key in
              let prev =
                Option.value (Hashtbl.find_opt groups si) ~default:[]
              in
              Hashtbl.replace groups si ((key, lane) :: prev))
            misses;
          let jobs =
            Hashtbl.fold
              (fun si group acc ->
                ( si,
                  fun mach -> compute_misses t kernel mach (List.rev group) )
                :: acc)
              groups []
          in
          Pending { jobs; assemble })

(* Blocking execution of a staged request — the [respond] path (tests,
   fuzzing, the byte-identity oracle). *)
let run_staged t = function
  | Ready reply -> reply
  | Pending { jobs; assemble } ->
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (si, job) ->
          let rs = Pool.submit t.shards.(si).pool job in
          List.iter (fun (k, r) -> Hashtbl.replace tbl k r) rs)
        jobs;
      assemble tbl

let record t ~verb ~reply ~t0 =
  let error = Protocol.is_err reply in
  let us = (Unix.gettimeofday () -. t0) *. 1e6 in
  Metrics.record ?verb t.metrics ~error ~us;
  match t.trace with
  | None -> ()
  | Some tr ->
      Obs.Trace.emit tr "request"
        [
          ("verb", Str (Option.value verb ~default:"(parse)"));
          ("error", Bool error);
          ("us", Float us);
        ]

let respond t line =
  let t0 = Unix.gettimeofday () in
  let parsed = Protocol.parse line in
  let reply =
    try
      match parsed with
      | Ok req -> run_staged t (stage t req)
      | Error detail -> Protocol.err detail
    with exn -> Protocol.err ("internal " ^ Printexc.to_string exn)
  in
  let verb =
    match parsed with Ok req -> Some (Protocol.verb req) | Error _ -> None
  in
  record t ~verb ~reply ~t0;
  reply

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let warm_compute t (req : Protocol.request) =
  match req with
  | Protocol.Op { kernel = Protocol.Kmul; lanes = [ Protocol.Const n ]; _ } ->
      Some (Plan.mul ~obs:t.obs ~require_certified:t.cfg.certified n)
  | Protocol.Op { kernel = Protocol.Kdiv; lanes = [ Protocol.Const d ]; _ } ->
      Some (Plan.div ~obs:t.obs ~require_certified:t.cfg.certified d)
  | _ -> None

(* Pre-compute the reply for every measured request in a BENCH_PLANS.json
   store (written by [bench plans] / {!Hppa_plan.Autotune.Store.save}):
   the first client to ask for a benchmarked plan hits the cache. An
   unreadable store or unparseable entry warms nothing — startup must
   not fail on a stale file. *)
let warm_start t path =
  match Hppa_plan.Autotune.Store.load path with
  | Error _ -> ()
  | Ok store ->
      let seen = Hashtbl.create 64 in
      List.iter
        (fun (m : Hppa_plan.Autotune.measurement) ->
          match warm_request m.Hppa_plan.Autotune.request with
          | None -> ()
          | Some req -> (
              let key = cache_key req in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                match warm_compute t req with
                | Some (Ok (payload, artifact)) ->
                    cache_plan t key payload artifact;
                    incr t.warmed
                | Some (Error _) | None -> ()
              end))
        (Hppa_plan.Autotune.Store.entries store)

let create (cfg : Config.t) =
  if cfg.shards < 1 then invalid_arg "Server.create: shards must be >= 1";
  if cfg.fuel < 1 then invalid_arg "Server.create: fuel must be >= 1";
  if cfg.cache_capacity < 1 then
    invalid_arg "Server.create: cache_capacity must be >= 1";
  if cfg.pipeline_depth < 1 then
    invalid_arg "Server.create: pipeline_depth must be >= 1";
  if not (cfg.tick_s > 0.0) then
    invalid_arg "Server.create: tick_s must be > 0";
  let obs = Obs.Registry.create () in
  let artifacts = Hashtbl.create 64 in
  let warmed = ref 0 in
  let started = Unix.gettimeofday () in
  (* Shard i gets an equal slice of the cache budget (first shards get
     the remainder); every shard holds at least one entry. The machine
     is built lazily inside each worker domain, so startup does not pay
     [shards] millicode resolutions up front. Worker machines keep
     their stats private: the server registry holds only server-level
     metrics, so scrapes stay cheap and unambiguous. *)
  let shards =
    Array.init cfg.shards (fun i ->
        let cap =
          max 1
            ((cfg.cache_capacity / cfg.shards)
            + if i < cfg.cache_capacity mod cfg.shards then 1 else 0)
        in
        {
          cache = Lru.create ~capacity:cap;
          pool =
            Pool.create ~obs
              ~obs_labels:[ ("shard", string_of_int i) ]
              ~workers:1
              ~init:(fun () -> lazy (Millicode.machine ()))
              ();
        })
  in
  let t =
    {
      cfg;
      shards;
      artifacts;
      art_lock = Mutex.create ();
      warmed;
      metrics = Metrics.create ~registry:obs ();
      obs;
      trace =
        Option.map
          (fun _ -> Obs.Trace.create ~capacity:trace_capacity)
          cfg.trace_path;
      stopping = Atomic.make false;
      started;
      wake = None;
      live_conns = 0;
      accepted =
        Obs.Registry.counter obs ~help:"Connections accepted"
          "hppa_serve_accepted_total";
    }
  in
  (* The plan cache and uptime are owned elsewhere; expose them as
     fn-backed metrics sampled at scrape time. The cache families
     aggregate over shards; per-shard occupancy is labelled. *)
  Obs.Registry.fn_counter obs ~help:"Plan cache hits"
    "hppa_serve_cache_hits_total" (fun () -> sum_shards t Lru.hits);
  Obs.Registry.fn_counter obs ~help:"Plan cache misses"
    "hppa_serve_cache_misses_total" (fun () -> sum_shards t Lru.misses);
  Obs.Registry.fn_counter obs ~help:"Plan cache evictions"
    "hppa_serve_cache_evictions_total" (fun () -> sum_shards t Lru.evictions);
  Obs.Registry.fn_gauge obs ~help:"Plan cache hit rate in [0, 1]"
    "hppa_serve_cache_hit_rate" (fun () ->
      let hits = sum_shards t Lru.hits and misses = sum_shards t Lru.misses in
      if hits + misses = 0 then 0.0
      else float_of_int hits /. float_of_int (hits + misses));
  Obs.Registry.fn_gauge obs ~help:"Plan cache entries" "hppa_serve_cache_size"
    (fun () -> float_of_int (sum_shards t Lru.size));
  Obs.Registry.fn_gauge obs ~help:"Plan cache capacity"
    "hppa_serve_cache_capacity" (fun () ->
      float_of_int (sum_shards t Lru.capacity));
  Array.iteri
    (fun i s ->
      Obs.Registry.fn_gauge obs ~help:"Plan cache entries per shard"
        ~labels:[ ("shard", string_of_int i) ]
        "hppa_serve_shard_cache_size" (fun () ->
          float_of_int (Lru.size s.cache)))
    t.shards;
  Obs.Registry.fn_gauge obs ~help:"Cache/compute shards (one domain each)"
    "hppa_serve_shards" (fun () -> float_of_int cfg.shards);
  Obs.Registry.fn_gauge obs ~help:"Worker domains" "hppa_serve_workers"
    (fun () -> float_of_int cfg.shards);
  Obs.Registry.fn_gauge obs ~help:"Max pipelined requests per connection"
    "hppa_serve_pipeline_depth" (fun () ->
      float_of_int cfg.pipeline_depth);
  Obs.Registry.fn_gauge obs ~help:"Open client connections"
    "hppa_serve_connections" (fun () -> float_of_int t.live_conns);
  Obs.Registry.fn_gauge obs ~help:"Seconds since server creation"
    "hppa_serve_uptime_seconds" (fun () -> Unix.gettimeofday () -. started);
  Obs.Registry.fn_gauge obs ~help:"Cached plan artifacts (selector verdicts)"
    "hppa_serve_plan_artifacts" (fun () ->
      float_of_int (Hashtbl.length artifacts));
  Obs.Registry.fn_gauge obs
    ~help:"Cached plan artifacts carrying a certificate digest"
    "hppa_serve_plan_artifacts_certified" (fun () ->
      float_of_int
        (Hashtbl.fold
           (fun _ (a : Plan.artifact) n ->
             if a.Plan.cert_digest <> None then n + 1 else n)
           artifacts 0));
  Obs.Registry.fn_gauge obs
    ~help:"Plans pre-computed at startup from BENCH_PLANS.json"
    "hppa_serve_plans_warmed" (fun () -> float_of_int !warmed);
  (match cfg.plans_path with None -> () | Some path -> warm_start t path);
  t

let config t = t.cfg
let registry t = t.obs

let artifacts t =
  Mutex.lock t.art_lock;
  let arts = Hashtbl.fold (fun k a acc -> (k, a) :: acc) t.artifacts [] in
  Mutex.unlock t.art_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) arts

let shutdown_pool t = Array.iter (fun s -> Pool.shutdown s.pool) t.shards

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)

(* Byte queue: contiguous bytes with an O(1) amortized append and a
   front cursor, so the per-connection buffers never rescan or recopy
   what select-sized reads already delivered. *)
module Bq = struct
  type t = { mutable data : Bytes.t; mutable start : int; mutable len : int }

  let create n = { data = Bytes.create (max 16 n); start = 0; len = 0 }
  let length t = t.len
  let is_empty t = t.len = 0

  let reserve t extra =
    let cap = Bytes.length t.data in
    if t.start + t.len + extra > cap then
      if t.len + extra <= cap / 2 then begin
        (* plenty of dead space up front: slide instead of growing *)
        Bytes.blit t.data t.start t.data 0 t.len;
        t.start <- 0
      end
      else begin
        let cap' = ref (max 16 (2 * cap)) in
        while t.len + extra > !cap' do
          cap' := 2 * !cap'
        done;
        let data' = Bytes.create !cap' in
        Bytes.blit t.data t.start data' 0 t.len;
        t.data <- data';
        t.start <- 0
      end

  let add_subbytes t b off n =
    reserve t n;
    Bytes.blit b off t.data (t.start + t.len) n;
    t.len <- t.len + n

  let add_string t s =
    let n = String.length s in
    reserve t n;
    Bytes.blit_string s 0 t.data (t.start + t.len) n;
    t.len <- t.len + n

  (* Relative index of the first '\n' at or past [from], or -1. *)
  let index_newline t from =
    let stop = t.start + t.len in
    let i = ref (t.start + from) in
    while !i < stop && Bytes.get t.data !i <> '\n' do
      incr i
    done;
    if !i < stop then !i - t.start else -1

  let sub_string t n = Bytes.sub_string t.data t.start n

  let drop t n =
    t.start <- t.start + n;
    t.len <- t.len - n;
    if t.len = 0 then t.start <- 0
end

(* One pipelined request: the slot is queued at parse time and filled
   when the reply is ready, so popping completed slots in queue order
   gives strictly ordered replies whatever order the shards finish. *)
type slot = { mutable reply : string option }

type conn = {
  fd : Unix.file_descr;
  rbuf : Bq.t;
  mutable scanned : int;  (* rbuf prefix known to hold no newline *)
  mutable overflowing : bool;  (* discarding an over-long line *)
  wbuf : Bq.t;
  inflight : slot Queue.t;
  mutable quitting : bool;  (* QUIT parsed: flush then close *)
  mutable eof : bool;  (* peer half-closed: drain then close *)
  mutable dead : bool;  (* I/O error: close, discard *)
}

type loop = {
  srv : t;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  completions : (unit -> unit) Queue.t;
  comp_lock : Mutex.t;
  mutable wake_pending : bool;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  mutable listen_open : bool;
  mutable stop_time : float option;
}

let new_conn fd =
  {
    fd;
    rbuf = Bq.create 4096;
    scanned = 0;
    overflowing = false;
    wbuf = Bq.create 4096;
    inflight = Queue.create ();
    quitting = false;
    eof = false;
    dead = false;
  }

(* Deliver a closure to the event-loop thread. The single coalesced
   wake byte keeps the pipe from ever filling, so workers never block
   here. *)
let post_completion lp f =
  Mutex.lock lp.comp_lock;
  Queue.push f lp.completions;
  if not lp.wake_pending then begin
    lp.wake_pending <- true;
    try ignore (Unix.write_substring lp.wake_w "w" 0 1) with _ -> ()
  end;
  Mutex.unlock lp.comp_lock

(* Drain order matters: empty the pipe before taking the queue, so any
   byte written after the take leaves a wakeup pending for the next
   iteration instead of being eaten. *)
let take_completions lp =
  let chunk = Bytes.create 64 in
  (try
     while Unix.read lp.wake_r chunk 0 64 > 0 do
       ()
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error _ -> ());
  Mutex.lock lp.comp_lock;
  let local = Queue.create () in
  Queue.transfer lp.completions local;
  lp.wake_pending <- false;
  Mutex.unlock lp.comp_lock;
  local

(* Submit one request line from [conn]'s pipeline. The reply slot is
   queued immediately (order!), then filled either synchronously
   (parse errors, PING/STATS/..., full cache hits) or by the last
   shard job's completion. *)
let submit_async t lp conn line =
  let t0 = Unix.gettimeofday () in
  let slot = { reply = None } in
  Queue.push slot conn.inflight;
  let parsed = Protocol.parse line in
  let verb =
    match parsed with Ok req -> Some (Protocol.verb req) | Error _ -> None
  in
  let finish reply =
    slot.reply <- Some reply;
    record t ~verb ~reply ~t0
  in
  let staged =
    try
      match parsed with
      | Ok req -> stage t req
      | Error detail -> Ready (Protocol.err detail)
    with exn -> Ready (Protocol.err ("internal " ^ Printexc.to_string exn))
  in
  match staged with
  | Ready reply ->
      finish reply;
      if parsed = Ok Protocol.Quit then conn.quitting <- true
  | Pending { jobs; assemble } ->
      let tbl = Hashtbl.create 16 in
      let remaining = ref (List.length jobs) in
      let failed = ref None in
      List.iter
        (fun (si, job) ->
          Pool.post t.shards.(si).pool (fun mach ->
              let r = try Ok (job mach) with exn -> Error exn in
              post_completion lp (fun () ->
                  (match r with
                  | Ok rs ->
                      List.iter (fun (k, v) -> Hashtbl.replace tbl k v) rs
                  | Error exn -> failed := Some exn);
                  decr remaining;
                  if !remaining = 0 then
                    finish
                      (match !failed with
                      | Some exn ->
                          Protocol.err
                            ("internal " ^ Printexc.to_string exn)
                      | None -> (
                          try assemble tbl
                          with exn ->
                            Protocol.err
                              ("internal " ^ Printexc.to_string exn))))))
        jobs

(* Pull complete lines out of the read buffer while pipeline capacity
   lasts. A partial line longer than [max_line_bytes] is discarded up
   to its newline and answered with one oversized error (same resync
   the threaded reader performed). *)
let advance t lp conn =
  let continue = ref true in
  while
    !continue && (not conn.quitting)
    && Queue.length conn.inflight < t.cfg.pipeline_depth
  do
    match Bq.index_newline conn.rbuf conn.scanned with
    | -1 ->
        if Bq.length conn.rbuf > Protocol.max_line_bytes then begin
          conn.scanned <- 0;
          Bq.drop conn.rbuf (Bq.length conn.rbuf);
          conn.overflowing <- true
        end
        else conn.scanned <- Bq.length conn.rbuf;
        continue := false
    | i ->
        let line = Bq.sub_string conn.rbuf i in
        Bq.drop conn.rbuf (i + 1);
        conn.scanned <- 0;
        if conn.overflowing then begin
          conn.overflowing <- false;
          Queue.push
            {
              reply =
                Some
                  (Protocol.err
                     (Printf.sprintf "oversized request exceeds %d bytes"
                        Protocol.max_line_bytes));
            }
            conn.inflight
        end
        else submit_async t lp conn line
  done

(* Move the completed prefix of the reply queue into the write buffer —
   this is the ordering guarantee: slot k's bytes are staged before
   slot k+1's are even looked at. *)
let pump conn =
  while
    (not (Queue.is_empty conn.inflight))
    && (Queue.peek conn.inflight).reply <> None
  do
    match (Queue.pop conn.inflight).reply with
    | Some reply ->
        Bq.add_string conn.wbuf reply;
        Bq.add_string conn.wbuf "\n"
    | None -> ()
  done

let try_write conn =
  let continue = ref true in
  while !continue && not (Bq.is_empty conn.wbuf) do
    match
      Unix.write conn.fd conn.wbuf.Bq.data conn.wbuf.Bq.start
        (min conn.wbuf.Bq.len 65536)
    with
    | n -> Bq.drop conn.wbuf n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        conn.dead <- true;
        continue := false
  done

let conn_read conn chunk =
  let continue = ref true in
  while !continue do
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 ->
        conn.eof <- true;
        continue := false
    | n ->
        Bq.add_subbytes conn.rbuf chunk 0 n;
        if n < Bytes.length chunk then continue := false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        conn.dead <- true;
        continue := false
  done

let close_conn lp conn =
  Hashtbl.remove lp.conns conn.fd;
  lp.srv.live_conns <- lp.srv.live_conns - 1;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let accept_new lp =
  let continue = ref true in
  while !continue do
    match Unix.accept lp.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        Hashtbl.replace lp.conns fd (new_conn fd);
        lp.srv.live_conns <- lp.srv.live_conns + 1;
        Obs.Counter.incr lp.srv.accepted
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done

let close_listen lp =
  if lp.listen_open then begin
    lp.listen_open <- false;
    (try Unix.close lp.listen_fd with Unix.Unix_error _ -> ());
    match lp.srv.cfg.endpoint with
    | Config.Unix_socket path -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
    | Config.Tcp _ -> ()
  end

let bind_listen (cfg : Config.t) =
  match cfg.endpoint with
  | Config.Unix_socket path ->
      (* A stale socket file from a previous run would make bind fail;
         only unlink things that actually are sockets. *)
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd cfg.backlog;
      fd
  | Config.Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd cfg.backlog;
      fd

let stop t =
  Atomic.set t.stopping true;
  match t.wake with
  | Some fd -> ( try ignore (Unix.write_substring fd "s" 0 1) with _ -> ())
  | None -> ()

let write_trace t =
  match (t.trace, t.cfg.trace_path) with
  | Some tr, Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Obs.Trace.write_jsonl tr oc)
  | _ -> ()

let loop_iter t lp chunk =
  (* 1. Run completions posted by shard workers (they fill reply
     slots). *)
  Queue.iter (fun f -> f ()) (take_completions lp);
  let stopping = Atomic.get t.stopping in
  if stopping && lp.stop_time = None then begin
    lp.stop_time <- Some (Unix.gettimeofday ());
    (* Refuse new connections immediately; in-flight requests drain. *)
    close_listen lp
  end;
  let grace_exceeded =
    match lp.stop_time with
    | Some t0 -> Unix.gettimeofday () -. t0 > t.cfg.drain_grace_s
    | None -> false
  in
  (* 2. Service every connection: stage freed pipeline slots, pump
     ordered replies, write opportunistically. *)
  let live = Hashtbl.fold (fun _ c acc -> c :: acc) lp.conns [] in
  List.iter
    (fun c ->
      if not c.dead then begin
        advance t lp c;
        pump c;
        try_write c
      end)
    live;
  (* 3. Close what is finished (or everything, past the drain grace). *)
  List.iter
    (fun c ->
      if
        c.dead || grace_exceeded
        || ((c.eof || c.quitting || stopping)
           && Queue.is_empty c.inflight
           && Bq.is_empty c.wbuf)
      then close_conn lp c)
    live;
  (* 4. Wait for readiness: the listener (unless stopping), the wake
     pipe, connections with pipeline capacity, and connections with
     backed-up writes. *)
  let rd = ref [ lp.wake_r ] in
  if lp.listen_open then rd := lp.listen_fd :: !rd;
  let wr = ref [] in
  Hashtbl.iter
    (fun fd c ->
      if
        (not stopping) && (not c.eof) && (not c.quitting) && (not c.dead)
        && Queue.length c.inflight < t.cfg.pipeline_depth
      then rd := fd :: !rd;
      if (not (Bq.is_empty c.wbuf)) && not c.dead then wr := fd :: !wr)
    lp.conns;
  match Unix.select !rd !wr [] t.cfg.tick_s with
  | rds, wrs, _ ->
      List.iter
        (fun fd ->
          if fd = lp.listen_fd then (if lp.listen_open then accept_new lp)
          else if fd = lp.wake_r then () (* drained next iteration *)
          else
            match Hashtbl.find_opt lp.conns fd with
            | Some c -> conn_read c chunk
            | None -> ())
        rds;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt lp.conns fd with
          | Some c -> try_write c
          | None -> ())
        wrs
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let run t =
  (* A client closing mid-write must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = bind_listen t.cfg in
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  t.wake <- Some wake_w;
  let lp =
    {
      srv = t;
      listen_fd;
      wake_r;
      wake_w;
      completions = Queue.create ();
      comp_lock = Mutex.create ();
      wake_pending = false;
      conns = Hashtbl.create 64;
      listen_open = true;
      stop_time = None;
    }
  in
  let chunk = Bytes.create 65536 in
  while not (Atomic.get t.stopping && Hashtbl.length lp.conns = 0) do
    loop_iter t lp chunk
  done;
  close_listen lp;
  Hashtbl.iter (fun _ c -> c.dead <- true) lp.conns;
  Hashtbl.fold (fun _ c acc -> c :: acc) lp.conns []
  |> List.iter (close_conn lp);
  shutdown_pool t;
  t.wake <- None;
  (try Unix.close wake_w with Unix.Unix_error _ -> ());
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  write_trace t

let pp_dump ppf t =
  let arts = artifacts t in
  let certified =
    List.length (List.filter (fun (_, a) -> a.Plan.cert_digest <> None) arts)
  in
  Format.fprintf ppf
    "@[<v>-- hppa-serve final report --@,%a@,cache: %d/%d entries, %d hits, \
     %d misses, %d evictions, hit rate %.2f%%@,shards: %d@,plans: %d \
     artifacts (%d certified), %d warmed@]"
    Metrics.pp_dump t.metrics (sum_shards t Lru.size)
    (sum_shards t Lru.capacity)
    (sum_shards t Lru.hits) (sum_shards t Lru.misses)
    (sum_shards t Lru.evictions)
    (let h = sum_shards t Lru.hits and m = sum_shards t Lru.misses in
     if h + m = 0 then 0.0 else 100.0 *. float_of_int h /. float_of_int (h + m))
    (Array.length t.shards)
    (List.length arts) certified !(t.warmed)
