examples/euclid_asm.mli:
