(** Double-word (64 x 64 -> 128) multiply millicode.

    Register-pair convention: X = (arg0:arg1), Y = (arg2:arg3) with the
    high word first in every pair. [mulU128] and [mulI128] return the
    high result dword in (ret0:ret1) and the low dword in (arg0:arg1).
    Both are built from four 32x32->64 [mulU64] partial products — the
    same split-multiply recursion mulU64 itself applies one level
    down. *)

val source : Program.source
val entries : string list
(** [["mulU128"; "mulI128"]]. *)

val reference_unsigned : int64 -> int64 -> int64 * int64
(** [(hi, lo)] of the unsigned 128-bit product, operands taken as
    unsigned 64-bit values. *)

val reference_signed : int64 -> int64 -> int64 * int64
(** [(hi, lo)] of the signed 128-bit product. *)
