(** Closed-form cycle models of the multiply ladder.

    The paper's §6 numbers (167, 192, 107, the Figure 5 bands) were derived
    {e analytically} from the routines' structure; this module does the
    same for our routines, and the test suite asserts that each model
    predicts the simulator's measured cycle count {e exactly} for arbitrary
    operands. That pins down the control structure of the hand-written
    assembly (iteration counts, nullification slots, quick exits) far more
    tightly than spot measurements.

    All models count what {!Hppa_machine.Stats.cycles} counts: every
    instruction including nullified ones and the final return. *)

val naive : unit -> int
(** Figure 2: data-independent (nullification makes both branches of every
    bit test cost one cycle): 168. *)

val naive_early : multiplier:Hppa_word.Word.t -> int
(** Early-exit variant: [6k + 5] where [k] is the bit-length of the
    absolute multiplier (at least 1). *)

val nibble : multiplier:Hppa_word.Word.t -> int
(** Figure 3: [13k + 4] where [k] counts the nibbles of the absolute
    multiplier. *)

val switch : multiplier:Hppa_word.Word.t -> int
(** Figure 4: dispatch and per-nibble case-table costs. *)

val final : Hppa_word.Word.t -> Hppa_word.Word.t -> int
(** The Figure 5 routine: quick exits, operand swap, the positive fast
    path and the negative slow path, modelled exactly. *)

val case_cost : int -> int
(** Instructions a case-table slot spends for a nibble value (including
    its table branches): 1 for 0; 2 for one-work nibbles; 4 for two-work
    nibbles. *)
