module Word = Hppa_word.Word
module U128 = Hppa_word.U128

(* 64 x 64 -> 128 multiply, built from four 32x32->64 [mulU64] partial
   products (the same split-multiply recursion mulU64 itself applies to
   the 16-bit halves). Register-pair convention: X = (arg0:arg1),
   Y = (arg2:arg3), high result dword = (ret0:ret1), low result dword =
   (arg0:arg1) — hi word first in every pair.

   Frame layout (sp-relative scratch, see mul_ext.ml): mulU64 owns bytes
   0..23 and mulI64 24..35; mulU128 uses 40..75 and mulI128 nests at
   80..99. *)

let mulU128_source =
  let b = Builder.create ~prefix:"mulU128" () in
  let sp = Reg.sp in
  Builder.label b "mulU128";
  Builder.insns b
    [
      Emit.stw Reg.mrp 40l sp;
      Emit.stw Reg.arg0 44l sp; (* xh *)
      Emit.stw Reg.arg1 48l sp; (* xl *)
      Emit.stw Reg.arg2 52l sp; (* yh *)
      Emit.stw Reg.arg3 56l sp; (* yl *)
      (* A = xl * yl: word 0 and the base of word 1. *)
      Emit.copy Reg.arg1 Reg.arg0;
      Emit.copy Reg.arg3 Reg.arg1;
      Emit.bl "mulU64" Reg.mrp;
      Emit.stw Reg.ret0 60l sp; (* w0 = lo A *)
      Emit.stw Reg.ret1 64l sp; (* w1 = hi A *)
      (* B = xl * yh: into words 1 and 2. *)
      Emit.ldw 48l sp Reg.arg0;
      Emit.ldw 52l sp Reg.arg1;
      Emit.bl "mulU64" Reg.mrp;
      Emit.ldw 64l sp Reg.t2;
      Emit.add Reg.t2 Reg.ret0 Reg.t2;
      Emit.stw Reg.t2 64l sp; (* w1 += lo B *)
      (* hi B <= 2^32 - 2, so the carry cannot wrap w2. *)
      Emit.addc Reg.ret1 Reg.r0 Reg.t3;
      Emit.stw Reg.t3 68l sp; (* w2 = hi B + carry *)
      (* C = xh * yl: into words 1, 2 and the carry into word 3. *)
      Emit.ldw 44l sp Reg.arg0;
      Emit.ldw 56l sp Reg.arg1;
      Emit.bl "mulU64" Reg.mrp;
      Emit.ldw 64l sp Reg.t2;
      Emit.add Reg.t2 Reg.ret0 Reg.t2;
      Emit.stw Reg.t2 64l sp; (* w1 += lo C *)
      Emit.ldw 68l sp Reg.t3;
      Emit.addc Reg.t3 Reg.ret1 Reg.t3;
      Emit.stw Reg.t3 68l sp; (* w2 += hi C + carry *)
      Emit.addc Reg.r0 Reg.r0 Reg.t4;
      Emit.stw Reg.t4 72l sp; (* w3 = carry *)
      (* D = xh * yh: into words 2 and 3 (the total is < 2^128, so the
         final addc cannot carry out). *)
      Emit.ldw 44l sp Reg.arg0;
      Emit.ldw 52l sp Reg.arg1;
      Emit.bl "mulU64" Reg.mrp;
      Emit.ldw 68l sp Reg.t2;
      Emit.add Reg.t2 Reg.ret0 Reg.t2; (* w2 += lo D *)
      Emit.ldw 72l sp Reg.t3;
      Emit.addc Reg.t3 Reg.ret1 Reg.t3; (* w3 += hi D + carry *)
      Emit.copy Reg.t3 Reg.ret0; (* high dword = (w3:w2) *)
      Emit.copy Reg.t2 Reg.ret1;
      Emit.ldw 64l sp Reg.arg0; (* low dword = (w1:w0) *)
      Emit.ldw 60l sp Reg.arg1;
      Emit.ldw 40l sp Reg.mrp;
      Emit.mret;
    ];
  Builder.to_source b

(* Signed 128-bit product: the unsigned product, minus Y * 2^64 when X is
   negative and X * 2^64 when Y is negative — i.e. two conditional 64-bit
   subtractions from the high dword, the pair analogue of mulI64's
   correction. The low dword is identical to the unsigned one. *)
let mulI128_source =
  let b = Builder.create ~prefix:"mulI128" () in
  let l s = "mulI128$" ^ s in
  let sp = Reg.sp in
  Builder.label b "mulI128";
  Builder.insns b
    [
      Emit.stw Reg.mrp 80l sp;
      Emit.stw Reg.arg0 84l sp; (* xh *)
      Emit.stw Reg.arg1 88l sp; (* xl *)
      Emit.stw Reg.arg2 92l sp; (* yh *)
      Emit.stw Reg.arg3 96l sp; (* yl *)
      Emit.bl "mulU128" Reg.mrp;
      Emit.ldw 84l sp Reg.t2; (* xh *)
      Emit.ldw 92l sp Reg.t3; (* yh *)
      Emit.comb Cond.Ge Reg.t2 Reg.r0 (l "xpos");
      (* x < 0: high dword -= Y. *)
      Emit.ldw 96l sp Reg.t4;
      Emit.sub Reg.ret1 Reg.t4 Reg.ret1;
      Emit.subb Reg.ret0 Reg.t3 Reg.ret0;
    ];
  Builder.label b (l "xpos");
  Builder.insns b
    [
      Emit.comb Cond.Ge Reg.t3 Reg.r0 (l "ypos");
      (* y < 0: high dword -= X. *)
      Emit.ldw 88l sp Reg.t4;
      Emit.sub Reg.ret1 Reg.t4 Reg.ret1;
      Emit.subb Reg.ret0 Reg.t2 Reg.ret0;
    ];
  Builder.label b (l "ypos");
  Builder.insns b [ Emit.ldw 80l sp Reg.mrp; Emit.mret ];
  Builder.to_source b

let source = Program.concat [ mulU128_source; mulI128_source ]
let entries = [ "mulU128"; "mulI128" ]

(* Two-word references over {!Hppa_word.U128}: the result as
   (hi : int64, lo : int64) of the 128-bit product. *)
let reference_unsigned x y =
  let p = U128.mul_64_64 x y in
  (p.U128.hi, p.U128.lo)

let reference_signed x y =
  let p = U128.mul_64_64 x y in
  let hi = ref p.U128.hi in
  if Int64.compare x 0L < 0 then hi := Int64.sub !hi y;
  if Int64.compare y 0L < 0 then hi := Int64.sub !hi x;
  (!hi, p.U128.lo)
