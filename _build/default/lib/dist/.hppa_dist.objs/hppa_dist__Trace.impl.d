lib/dist/trace.ml: Format Hppa_word Int64 List Operand_dist Printf Prng String
