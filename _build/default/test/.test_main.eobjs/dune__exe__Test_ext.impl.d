test/test_ext.ml: Alcotest Div_ext Hppa Hppa_machine Hppa_word Int32 Int64 Lazy List Millicode Mul_ext Printf QCheck Reg Util
