examples/euclid_asm.ml: Asm Format Hppa Hppa_machine Hppa_word List Program Reg
