(** One-call front end over the analyses.

    For a resolved program and a set of entry labels, runs:
    + structure: entries resolve, and no reachable path has an
      unresolvable indirect branch or runs off the program image;
    + the delay-slot hazard lint ({!Hazards}), whole-image;
    + per entry: use/PSW-before-def, dead writes, result definedness
      ({!Defuse}) and the clobber check ({!Convention}).

    The certifiers are separate entry points since they need the
    expected algebraic claim: {!certify} takes the multiplier for the
    linear (§5) certifier, {!certify_division} the divisor claim for
    the reciprocal/divide-step/dispatch (§4, §7) certifiers. *)

val check :
  ?options:Cfg.options -> ?specs:Cfg.spec list -> ?pairs:Pairs.spec list ->
  entries:string list -> Program.resolved -> Findings.t list
(** [pairs] (default none) additionally runs the register-pair
    convention rule ({!Pairs}) over each listed pair spec. *)

val check_source :
  ?options:Cfg.options -> ?specs:Cfg.spec list -> ?pairs:Pairs.spec list ->
  entries:string list -> Program.source -> (Findings.t list, string) result
(** Resolve first; [Error] is the resolver's message. *)

val certify :
  ?options:Cfg.options -> Program.resolved -> entry:string ->
  multiplier:int32 -> Linear.verdict
(** {!Linear.certify} by label; [Unknown] if the label is absent. *)

val certify_findings :
  ?options:Cfg.options -> Program.resolved -> entry:string ->
  multiplier:int32 -> Linear.verdict * Findings.t list
(** {!certify} plus its findings rendering. Unlike {!certify} alone, an
    absent entry label is reported as a structured [Structure]
    (missing-entry) finding, not silently folded into the verdict
    message. *)

val certify_division :
  ?options:Cfg.options -> Program.resolved -> entry:string ->
  claim:Reciprocal.claim -> Reciprocal.verdict
(** Certify a constant-divisor routine against [claim]. Dispatches on
    the entry's shape: a reciprocal/power-of-two plan goes to
    {!Reciprocal.certify}; the general millicode (recognized by its
    divide-by-zero check) and the [ldi divisor; b divU]-style fallback
    wrappers (whose loaded constant must equal the claimed divisor) go
    to {!Divstep.certify}. [Unknown] if the label is absent. *)

val certify_body :
  canonical:Program.resolved -> Program.resolved -> entry:string ->
  Reciprocal.verdict
(** {!Equiv.certify}: the routine [entry] in the candidate image is
    instruction-for-instruction the canonical library routine — the
    certificate the W64 family carries, since its correctness rests on
    the differential suite pinning the canonical body rather than on a
    closed algebraic form. *)

val certify_divstep :
  ?options:Cfg.options -> Program.resolved -> entry:string ->
  signed:bool -> want_rem:bool -> Reciprocal.verdict
(** {!Divstep.certify} by label: the variable-divisor millicode. *)

val certify_dispatch :
  ?options:Cfg.options -> Program.resolved -> entry:string ->
  signed:bool -> Reciprocal.verdict
(** Certify a §7 vectored small-divisor dispatcher: the bounds test
    must send every out-of-table divisor to a certified divide-step,
    the zero slot must trap, and each table arm is certified (via
    {!certify_division}) for its slot's divisor — proving the dispatch
    total over the declared divisor set, reported in the resulting
    {!Certificate.kind.Dispatch}. [options.blr_slots] must cover the
    table (the dispatcher's threshold, e.g. 20). *)
