lib/core/div_small.mli: Program
