lib/machine/icache.mli:
