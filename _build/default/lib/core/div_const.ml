module Word = Hppa_word.Word

type strategy =
  | Trivial
  | Power_of_two of int
  | Reciprocal of Div_magic.t * Chain.t
  | Even_split of int * strategy
  | General_fallback

type plan = {
  divisor : int32;
  signed : bool;
  entry : string;
  source : Program.source;
  static_instructions : int;
  strategy : strategy;
}

(* ------------------------------------------------------------------ *)
(* Double-word chain emission                                          *)

(* Register pairs (hi, lo) for double-precision intermediates. The signed
   wrapper reserves t1 for the dividend sign. *)
let pairs_unsigned =
  [| (Reg.t2, Reg.t3); (Reg.t4, Reg.t5); (Reg.ret1, Reg.ret0); (Reg.t1, Reg.arg1) |]

let pairs_signed =
  [| (Reg.t2, Reg.t3); (Reg.t4, Reg.t5); (Reg.ret1, Reg.ret0) |]

exception Infeasible

(* Double-word evaluation is ring arithmetic mod 2^64, so intermediate
   chain values (even negative ones) need no bound: the final value
   a*(x+1) + (r-1) < 2^64 is exact as long as a < 2^32. Only evaluability
   of the chain itself is required. *)
let dword_safe chain = Result.is_ok (Chain.values chain)

(* Emit the double-word chain: element 1 = (x+1) is produced here from
   arg0. Returns the (hi, lo) pair holding the final element. Raises
   Infeasible when the pair pool is exhausted. *)
let emit_dword_chain b ~pairs (chain : Chain.t) =
  let steps = Array.of_list chain in
  let nelts = Array.length steps + 2 in
  let last_use = Array.make nelts 0 in
  last_use.(nelts - 1) <- max_int;
  let reads : Chain.step -> int list = function
    | Add (j, k) | Shadd (_, j, k) | Sub (j, k) -> [ j; k ]
    | Shl (j, _) -> [ j ]
  in
  Array.iteri
    (fun idx step ->
      List.iter (fun e -> last_use.(e) <- max last_use.(e) (idx + 2)) (reads step))
    steps;
  let assigned = Array.make nelts (Reg.r0, Reg.r0) in
  let in_use = Array.make (Array.length pairs) (-1) in
  let alloc i ~exclude =
    let ok p =
      let e = in_use.(p) in
      (e = -1 || last_use.(e) <= i) && not (List.mem p exclude)
    in
    let rec go p =
      if p = Array.length pairs then raise Infeasible
      else if ok p then p
      else go (p + 1)
    in
    let p = go 0 in
    in_use.(p) <- i;
    p
  in
  let pair_of = Array.make nelts (-1) in
  (* Element 1: (x+1) with its carry into the high word. *)
  let p1 = alloc 1 ~exclude:[] in
  pair_of.(1) <- p1;
  assigned.(1) <- pairs.(p1);
  let hi1, lo1 = pairs.(p1) in
  Builder.insns b
    [ Emit.addi 1l Reg.arg0 lo1; Emit.addc Reg.r0 Reg.r0 hi1 ];
  Array.iteri
    (fun idx step ->
      let i = idx + 2 in
      let operand_pairs =
        List.filter_map
          (fun e -> if e = 0 then None else Some pair_of.(e))
          (reads step)
      in
      let exclude =
        match (step : Chain.step) with
        | Shadd _ -> operand_pairs (* multi-instruction; no in-place *)
        | Add _ | Sub _ | Shl _ -> []
      in
      let p = alloc i ~exclude in
      pair_of.(i) <- p;
      assigned.(i) <- pairs.(p);
      let hi_t, lo_t = pairs.(p) in
      let hi e = fst assigned.(e) and lo e = snd assigned.(e) in
      match (step : Chain.step) with
      | Add (j, k) ->
          Builder.insns b
            [ Emit.add (lo j) (lo k) lo_t; Emit.addc (hi j) (hi k) hi_t ]
      | Sub (j, k) ->
          Builder.insns b
            [ Emit.sub (lo j) (lo k) lo_t; Emit.subb (hi j) (hi k) hi_t ]
      | Shl (j, m) ->
          Builder.insns b
            [ Emit.shd (hi j) (lo j) (32 - m) hi_t; Emit.shl (lo j) m lo_t ]
      | Shadd (m, j, 0) ->
          Builder.insns b
            [ Emit.shd (hi j) (lo j) (32 - m) hi_t; Emit.shl (lo j) m lo_t ]
      | Shadd (m, j, k) ->
          (* SHmADD writes the carry of its 32-bit add, so the low words
             combine in one instruction — the paper's three-instruction
             "first pair" idiom generalised. *)
          Builder.insns b
            [
              Emit.shd (hi j) (lo j) (32 - m) hi_t;
              Emit.shadd m (lo j) (lo k) lo_t;
              Emit.addc hi_t (hi k) hi_t;
            ])
    steps;
  assigned.(nelts - 1)

(* The full derived-method body: quotient of (unsigned) arg0 by params.y
   into ret0. *)
let emit_reciprocal b ~pairs (params : Div_magic.t) chain =
  let hi, lo = emit_dword_chain b ~pairs chain in
  let r1 = Int64.sub params.r 1L in
  if r1 > 0L then
    if r1 <= 8191L then
      Builder.insns b
        [
          Emit.addi (Int64.to_int32 r1) lo lo;
          Emit.addc Reg.r0 hi hi;
        ]
    else begin
      (* The dividend register is dead once the chain has consumed x+1. *)
      Builder.insns b (Emit.ldi (Int64.to_int32 r1) Reg.arg0);
      Builder.insns b [ Emit.add Reg.arg0 lo lo; Emit.addc Reg.r0 hi hi ]
    end;
  if params.s = 32 then begin
    if not (Reg.equal hi Reg.ret0) then Builder.insn b (Emit.copy hi Reg.ret0)
  end
  else Builder.insn b (Emit.shr_u hi (params.s - 32) Reg.ret0)

(* ------------------------------------------------------------------ *)
(* Strategy selection                                                  *)

let trailing_zeros y =
  let rec go k v = if v land 1 = 0 then go (k + 1) (v lsr 1) else k in
  go 0 (Word.to_int_u y)

(* Reciprocal plan for an odd divisor over dividends < range; None when the
   derived parameters or the chain do not fit double-word precision. *)
let reciprocal_for ~range y =
  let params = Div_magic.derive ~range y in
  if params.a >= 0x1_0000_0000L then None
  else
    match Chain_rules.find (Int64.to_int params.a) with
    | Some chain when dword_safe chain -> Some (params, chain)
    | Some _ | None -> None

let emit_unsigned_body b ~pairs ~range y =
  (* Returns the strategy actually used; the quotient lands in ret0. *)
  let tz = trailing_zeros y in
  let odd = Word.shr_u y tz in
  if Word.equal odd 1l then begin
    if tz = 0 then Builder.insn b (Emit.copy Reg.arg0 Reg.ret0)
    else Builder.insn b (Emit.shr_u Reg.arg0 tz Reg.ret0);
    if tz = 0 then Trivial else Power_of_two tz
  end
  else begin
    let inner_range =
      Int64.add (Int64.div (Int64.sub range 1L) (Int64.shift_left 1L tz)) 1L
    in
    match reciprocal_for ~range:inner_range odd with
    | None -> raise Infeasible
    | Some (params, chain) ->
        if tz > 0 then Builder.insn b (Emit.shr_u Reg.arg0 tz Reg.arg0);
        (try emit_reciprocal b ~pairs params chain
         with Infeasible -> raise Infeasible);
        let inner = Reciprocal (params, chain) in
        if tz = 0 then inner else Even_split (tz, inner)
  end

let fallback_source ~entry ~target y =
  let b = Builder.create ~prefix:entry () in
  Builder.label b entry;
  Builder.insns b (Emit.ldi y Reg.arg1);
  Builder.insn b (Emit.b target);
  (Builder.to_source b, Builder.length b)

let default_entry ~signed y =
  let stem = if signed then "divi_c" else "divu_c" in
  if y >= 0l then Printf.sprintf "%s%ld" stem y
  else Printf.sprintf "%sm%ld" stem (Int32.neg y)

let plan_unsigned ?entry y =
  if Word.equal y 0l then invalid_arg "Div_const.plan_unsigned: zero divisor";
  let entry = match entry with Some e -> e | None -> default_entry ~signed:false y in
  try
    let b = Builder.create ~prefix:entry () in
    Builder.label b entry;
    let strategy =
      emit_unsigned_body b ~pairs:pairs_unsigned ~range:0x1_0000_0000L y
    in
    let count = Builder.length b in
    Builder.insn b Emit.mret;
    {
      divisor = y;
      signed = false;
      entry;
      source = Builder.to_source b;
      static_instructions = count;
      strategy;
    }
  with Infeasible ->
    let source, count = fallback_source ~entry ~target:"divU" y in
    {
      divisor = y;
      signed = false;
      entry;
      source;
      static_instructions = count;
      strategy = General_fallback;
    }

(* Signed power-of-two: 3 instructions for small k, 4 for large (§7). *)
let emit_signed_pow2 b k =
  if k = 0 then Builder.insn b (Emit.copy Reg.arg0 Reg.ret0)
  else begin
    let bias = Int32.sub (Int32.shift_left 1l k) 1l in
    if bias <= 8191l then
      Builder.insns b
        [
          Emit.comclr Cond.Ge Reg.arg0 Reg.r0 Reg.r0;
          Emit.addi bias Reg.arg0 Reg.arg0;
          Emit.shr_s Reg.arg0 k Reg.ret0;
        ]
    else
      Builder.insns b
        [
          Emit.shr_s Reg.arg0 31 Reg.t1;
          Emit.shr_u Reg.t1 (32 - k) Reg.t1;
          Emit.add Reg.t1 Reg.arg0 Reg.t1;
          Emit.shr_s Reg.t1 k Reg.ret0;
        ]
  end

let plan_signed ?entry y =
  if Word.equal y 0l then invalid_arg "Div_const.plan_signed: zero divisor";
  let entry = match entry with Some e -> e | None -> default_entry ~signed:true y in
  let negative = Word.is_neg y in
  let finish b strategy =
    let count = Builder.length b in
    Builder.insn b Emit.mret;
    {
      divisor = y;
      signed = true;
      entry;
      source = Builder.to_source b;
      static_instructions = count;
      strategy;
    }
  in
  if Word.equal y Int32.min_int then begin
    (* Quotient is 1 exactly for x = min_int, else 0. *)
    let b = Builder.create ~prefix:entry () in
    Builder.label b entry;
    Builder.insns b
      [
        Emit.ldil Int32.min_int Reg.t1;
        Emit.comclr Cond.Neq Reg.arg0 Reg.t1 Reg.ret0;
        Emit.ldo 1l Reg.r0 Reg.ret0;
      ];
    finish b Trivial
  end
  else begin
    let mag = Word.abs y in
    let tz = trailing_zeros mag in
    let odd = Word.shr_u mag tz in
    if Word.equal mag 1l then begin
      let b = Builder.create ~prefix:entry () in
      Builder.label b entry;
      if negative then Builder.insn b (Emit.sub Reg.r0 Reg.arg0 Reg.ret0)
      else Builder.insn b (Emit.copy Reg.arg0 Reg.ret0);
      finish b Trivial
    end
    else if Word.equal odd 1l then begin
      let b = Builder.create ~prefix:entry () in
      Builder.label b entry;
      emit_signed_pow2 b tz;
      if negative then Builder.insn b (Emit.sub Reg.r0 Reg.ret0 Reg.ret0);
      finish b (Power_of_two tz)
    end
    else begin
      try
        let b = Builder.create ~prefix:entry () in
        Builder.label b entry;
        (* Negate a negative dividend, divide |x| by |y|, negate back when
           the signs of dividend and divisor differ. *)
        Builder.insns b
          [
            Emit.copy Reg.arg0 Reg.t1;
            Emit.comclr Cond.Ge Reg.arg0 Reg.r0 Reg.r0;
            Emit.sub Reg.r0 Reg.arg0 Reg.arg0;
          ];
        let strategy =
          emit_unsigned_body b ~pairs:pairs_signed ~range:0x8000_0001L mag
        in
        Builder.insns b
          [
            Emit.comclr (if negative then Cond.Lt else Cond.Ge) Reg.t1 Reg.r0 Reg.r0;
            Emit.sub Reg.r0 Reg.ret0 Reg.ret0;
          ];
        finish b strategy
      with Infeasible ->
        let source, count = fallback_source ~entry ~target:"divI" y in
        {
          divisor = y;
          signed = true;
          entry;
          source;
          static_instructions = count;
          strategy = General_fallback;
        }
    end
  end

(* ------------------------------------------------------------------ *)
(* Remainders: x - (x/y)*y with an inline multiply-back chain           *)

let default_rem_entry ~signed y =
  let stem = if signed then "remi_c" else "remu_c" in
  if y >= 0l then Printf.sprintf "%s%ld" stem y
  else Printf.sprintf "%sm%ld" stem (Int32.neg y)

(* Multiply ret0 by y into ret1 (q*y always fits: q*y <= x). *)
let emit_multiply_back b y =
  let chain = Chain_rules.find_exn (Word.to_int_u y) in
  ignore
    (Chain_codegen.body_at ~src:Reg.ret0
       ~pool:[| Reg.ret1; Reg.t2; Reg.t3; Reg.t4; Reg.t5 |]
       chain b)

let plan_rem_unsigned ?entry y =
  if Word.equal y 0l then invalid_arg "Div_const.plan_rem_unsigned: zero divisor";
  let entry = match entry with Some e -> e | None -> default_rem_entry ~signed:false y in
  let tz = trailing_zeros y in
  let odd = Word.shr_u y tz in
  let finish b strategy =
    let count = Builder.length b in
    Builder.insn b Emit.mret;
    {
      divisor = y;
      signed = false;
      entry;
      source = Builder.to_source b;
      static_instructions = count;
      strategy;
    }
  in
  if Word.equal y 1l then begin
    let b = Builder.create ~prefix:entry () in
    Builder.label b entry;
    Builder.insn b (Emit.copy Reg.r0 Reg.ret0);
    finish b Trivial
  end
  else if Word.equal odd 1l then begin
    (* Power of two: the remainder is a bit field. *)
    let b = Builder.create ~prefix:entry () in
    Builder.label b entry;
    Builder.insn b (Emit.extru Reg.arg0 ~pos:0 ~len:tz Reg.ret0);
    finish b (Power_of_two tz)
  end
  else
    try
      let b = Builder.create ~prefix:entry () in
      Builder.label b entry;
      Builder.insn b (Emit.copy Reg.arg0 Reg.t1);
      let strategy =
        emit_unsigned_body b ~pairs:pairs_signed ~range:0x1_0000_0000L y
      in
      emit_multiply_back b y;
      Builder.insn b (Emit.sub Reg.t1 Reg.ret1 Reg.ret0);
      finish b strategy
    with Infeasible ->
      let source, count = fallback_source ~entry ~target:"remU" y in
      {
        divisor = y;
        signed = false;
        entry;
        source;
        static_instructions = count;
        strategy = General_fallback;
      }

let plan_rem_signed ?entry y =
  if Word.equal y 0l then invalid_arg "Div_const.plan_rem_signed: zero divisor";
  let entry = match entry with Some e -> e | None -> default_rem_entry ~signed:true y in
  (* The C remainder ignores the divisor's sign. *)
  let mag = Word.abs y in
  let tz = trailing_zeros mag in
  let odd = Word.shr_u mag tz in
  let finish b strategy =
    let count = Builder.length b in
    Builder.insn b Emit.mret;
    {
      divisor = y;
      signed = true;
      entry;
      source = Builder.to_source b;
      static_instructions = count;
      strategy;
    }
  in
  (* Negate the remainder of |x| when the dividend was negative. *)
  let emit_sign_epilogue b =
    Builder.insns b
      [
        Emit.comclr Cond.Ge Reg.t1 Reg.r0 Reg.r0;
        Emit.sub Reg.r0 Reg.ret0 Reg.ret0;
      ]
  in
  if Word.equal mag 1l then begin
    let b = Builder.create ~prefix:entry () in
    Builder.label b entry;
    Builder.insn b (Emit.copy Reg.r0 Reg.ret0);
    finish b Trivial
  end
  else if Word.equal odd 1l then begin
    let b = Builder.create ~prefix:entry () in
    Builder.label b entry;
    Builder.insns b
      [
        Emit.copy Reg.arg0 Reg.t1;
        Emit.comclr Cond.Ge Reg.arg0 Reg.r0 Reg.r0;
        Emit.sub Reg.r0 Reg.arg0 Reg.arg0;
        Emit.extru Reg.arg0 ~pos:0 ~len:tz Reg.ret0;
      ];
    emit_sign_epilogue b;
    finish b (Power_of_two tz)
  end
  else
    try
      let b = Builder.create ~prefix:entry () in
      Builder.label b entry;
      Builder.insns b
        [
          Emit.copy Reg.arg0 Reg.t1;
          Emit.comclr Cond.Ge Reg.arg0 Reg.r0 Reg.r0;
          Emit.sub Reg.r0 Reg.arg0 Reg.arg0;
        ];
      let strategy =
        emit_unsigned_body b ~pairs:pairs_signed ~range:0x8000_0001L mag
      in
      emit_multiply_back b mag;
      Builder.insns b
        [
          (* |x| - q*|y|, rebuilding |x| from the saved dividend. *)
          Emit.copy Reg.t1 Reg.t2;
          Emit.comclr Cond.Ge Reg.t1 Reg.r0 Reg.r0;
          Emit.sub Reg.r0 Reg.t2 Reg.t2;
          Emit.sub Reg.t2 Reg.ret1 Reg.ret0;
        ];
      emit_sign_epilogue b;
      finish b strategy
    with Infeasible ->
      let source, count = fallback_source ~entry ~target:"remI" y in
      {
        divisor = y;
        signed = true;
        entry;
        source;
        static_instructions = count;
        strategy = General_fallback;
      }

let needs_millicode plan =
  match plan.strategy with
  | General_fallback -> true
  | Trivial | Power_of_two _ | Reciprocal _ | Even_split _ -> false
