test/test_dist.ml: Alcotest Array Gibson Hppa_dist Hppa_word Int64 List Operand_dist Printf Prng QCheck Trace Util
