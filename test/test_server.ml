(* Tests for the plan service (lib/server): protocol totality under
   fuzzing, the LRU cache, metrics, the domain pool, the determinism
   guarantee (same request -> same plan bytes, whatever the cache state
   or worker count), and a socket end-to-end round trip. *)

module Word = Hppa_word.Word
module Prng = Hppa_dist.Prng
module Protocol = Hppa_server.Protocol
module Lru = Hppa_server.Lru
module Metrics = Hppa_server.Metrics
module Pool = Hppa_server.Pool
module Plan = Hppa_server.Plan
module Server = Hppa_server.Server
module Load_gen = Hppa_server.Load_gen
module Obs = Hppa_obs.Obs

(* [workers] predates the sharded redesign; it now sets the shard count
   (one worker domain per shard). *)
let test_config shards =
  {
    Server.Config.default with
    Server.Config.endpoint = Server.Config.Unix_socket "unused.sock";
    shards;
    cache_capacity = 64;
    fuel = 1_000_000;
  }

let with_server ?(workers = 1) ?fuel ?(certified = false) f =
  let cfg = { (test_config workers) with Server.Config.certified } in
  let cfg =
    match fuel with
    | None -> cfg
    | Some fuel -> { cfg with Server.Config.fuel }
  in
  let srv = Server.create cfg in
  Fun.protect ~finally:(fun () -> Server.shutdown_pool srv) (fun () -> f srv)

(* ------------------------------------------------------------------ *)
(* Protocol parsing                                                    *)

let req =
  Alcotest.testable
    (fun ppf r -> Protocol.pp_request ppf r)
    (fun a b -> a = b)

let parse_ok line expected () =
  match Protocol.parse line with
  | Ok r -> Alcotest.check req line expected r
  | Error e -> Alcotest.failf "%S rejected: %s" line e

let parse_err line () =
  match Protocol.parse line with
  | Ok _ -> Alcotest.failf "%S accepted" line
  | Error _ -> ()

let consts kernel batch ns =
  Protocol.Op
    { kernel; batch; lanes = List.map (fun n -> Protocol.Const n) ns }

let pairs op signed ps =
  Protocol.Op
    {
      kernel = Protocol.Kw64 op;
      batch = true;
      lanes = List.map (fun (x, y) -> Protocol.Pair { signed; x; y }) ps;
    }

let test_parse_valid () =
  parse_ok "MUL 625" (Protocol.mul 625l) ();
  parse_ok "mul 625" (Protocol.mul 625l) ();
  parse_ok "  MUL   -7  " (Protocol.mul (-7l)) ();
  parse_ok "MUL 0x1f" (Protocol.mul 31l) ();
  parse_ok "MUL 4294967295" (Protocol.mul (-1l)) ();
  parse_ok "DIV 19\r" (Protocol.div 19l) ();
  parse_ok "MULB 625" (consts Protocol.Kmul true [ 625l ]) ();
  parse_ok "mulb 625 -7 0x1f" (consts Protocol.Kmul true [ 625l; -7l; 31l ]) ();
  parse_ok "DIVB 7 0 -9" (consts Protocol.Kdiv true [ 7l; 0l; -9l ]) ();
  parse_ok
    ("MULB " ^ String.concat " " (List.init 64 string_of_int))
    (consts Protocol.Kmul true (List.init 64 Int32.of_int))
    ();
  parse_ok "EVAL mulI 99 -7" (Protocol.Eval ("mulI", [ 99l; -7l ])) ();
  parse_ok "EVAL divU" (Protocol.Eval ("divU", [])) ();
  parse_ok "W64MUL u 123 456"
    (Protocol.w64 Protocol.W64_mul ~signed:false 123L 456L)
    ();
  parse_ok "w64mul s -7 3"
    (Protocol.w64 Protocol.W64_mul ~signed:true (-7L) 3L)
    ();
  parse_ok "W64DIV u 0x100000000 3"
    (Protocol.w64 Protocol.W64_div ~signed:false 0x1_0000_0000L 3L)
    ();
  parse_ok "W64REM s 9223372036854775807 -1"
    (Protocol.w64 Protocol.W64_rem ~signed:true Int64.max_int (-1L))
    ();
  parse_ok "W64MULB u 1 2 3 4"
    (pairs Protocol.W64_mul false [ (1L, 2L); (3L, 4L) ])
    ();
  parse_ok "W64DIVB s 10 3" (pairs Protocol.W64_div true [ (10L, 3L) ]) ();
  parse_ok "W64DIVL 0 100 7" (Protocol.divl ~xhi:0L ~xlo:100L 7L) ();
  parse_ok "w64divl 0x1 0 3" (Protocol.divl ~xhi:1L ~xlo:0L 3L) ();
  parse_ok "W64DIVLB 0 100 7 1 0 3"
    (Protocol.Op
       {
         kernel = Protocol.Kdivl;
         batch = true;
         lanes =
           [
             Protocol.Triple { xhi = 0L; xlo = 100L; y = 7L };
             Protocol.Triple { xhi = 1L; xlo = 0L; y = 3L };
           ];
       })
    ();
  parse_ok "STATS" Protocol.Stats ();
  parse_ok "METRICS" Protocol.Metrics ();
  parse_ok "metrics\r" Protocol.Metrics ();
  parse_ok "ping" Protocol.Ping ();
  parse_ok "QUIT" Protocol.Quit ()

let test_parse_invalid () =
  List.iter
    (fun line -> parse_err line ())
    [
      "";
      "   ";
      "FROB 1";
      "MUL";
      "MUL 1 2";
      "MUL 99999999999999";  (* does not fit 32 bits *)
      "MUL 2a";
      "DIV one";
      "EVAL";
      "EVAL bad-label 1";
      "EVAL mulI 1 2 3 4 5";  (* five arguments *)
      "MULB";  (* batch needs at least one operand *)
      "DIVB";
      "MULB 1 2 three";  (* one bad operand rejects the whole batch *)
      "DIVB 99999999999999";
      "MULB " ^ String.concat " " (List.init 65 string_of_int);  (* cap 64 *)
      "STATS now";
      "METRICS all";
      "QUIT 0";
      String.make (Protocol.max_line_bytes + 1) 'M';
      (* W64: signedness tag mandatory, operands are full int64 pairs. *)
      "W64MUL";
      "W64MUL u";
      "W64MUL u 5";  (* missing y *)
      "W64MUL u 5 7 9";  (* too many operands *)
      "W64MUL x 5 7";  (* bad signedness tag *)
      "W64MUL 5 7";  (* missing signedness tag *)
      "W64DIV u 99999999999999999999 3";  (* does not fit 64 bits *)
      "W64REM s one 2";
      "W64MULB u";  (* batch needs at least one pair *)
      "W64DIVB u 1 2 3";  (* odd operand count: not pairs *)
      "W64REMB s 1 2 three 4";  (* one bad operand rejects the batch *)
      "W64MULB u "
      ^ String.concat " "
          (List.init (2 * (Protocol.max_w64_batch_pairs + 1)) string_of_int);
      (* W64DIVL: exactly three operands, no signedness tag (the 128/64
         divide is unsigned by definition). *)
      "W64DIVL";
      "W64DIVL 1 2";  (* missing divisor *)
      "W64DIVL 1 2 3 4";  (* too many operands *)
      "W64DIVL u 1 2 3";  (* no signedness tag on this verb *)
      "W64DIVLB";  (* batch needs at least one triple *)
      "W64DIVLB 1 2 3 4";  (* operand count not a multiple of 3 *)
      "W64DIVLB "
      ^ String.concat " "
          (List.init (3 * (Protocol.max_divl_batch_triples + 1)) string_of_int);
    ]

(* ------------------------------------------------------------------ *)
(* Fuzz: the parser and the full dispatch surface are total            *)

let random_bytes g len =
  String.init len (fun _ ->
      (* Any byte but the line terminator, which the reader strips. *)
      let c = Prng.int_range g 0 255 in
      Char.chr (if c = Char.code '\n' then 0 else c))

let fuzz_inputs =
  lazy
    (let g = Prng.create 0xF0220L in
     let random =
       List.init 1200 (fun _ -> random_bytes g (Prng.int_range g 0 200))
     in
     (* Truncations and corruptions of valid requests. *)
     let seeds =
       [
         "MUL 625"; "DIV 7"; "MULB 625 -7 0"; "DIVB 7 0 -9";
         "EVAL mulI 99 -7"; "STATS"; "PING"; "QUIT";
         "W64MUL u 123 456"; "W64DIV s -7 3"; "W64REM u 100 7";
         "W64DIVB s 10 3 5 0"; "W64DIVL 0 100 7"; "W64DIVLB 0 100 7 1 0 3";
       ]
     in
     let truncated =
       List.concat_map
         (fun s -> List.init (String.length s) (fun i -> String.sub s 0 i))
         seeds
     in
     let corrupted =
       List.concat_map
         (fun s ->
           List.init 20 (fun _ ->
               let b = Bytes.of_string s in
               Bytes.set b
                 (Prng.int_range g 0 (Bytes.length b - 1))
                 (Char.chr (Prng.int_range g 0 255));
               Bytes.to_string b))
         seeds
     in
     let oversized =
       [
         String.make 4000 'A';
         "MUL " ^ String.make 2000 '9';
         String.make (Protocol.max_line_bytes + 1) ' ' ^ "PING";
         "MULB " ^ String.concat " " (List.init 200 string_of_int);
         "W64MULB u " ^ String.concat " " (List.init 200 string_of_int);
         "W64DIV u " ^ String.make 2000 '9' ^ " 3";
       ]
     in
     random @ truncated @ corrupted @ oversized)

let test_fuzz_parse_total () =
  List.iter
    (fun line ->
      match Protocol.parse line with
      | Ok _ | Error _ -> ()
      | exception exn ->
          Alcotest.failf "parse raised %s on %S" (Printexc.to_string exn) line)
    (Lazy.force fuzz_inputs)

let test_fuzz_respond_total () =
  with_server (fun srv ->
      List.iter
        (fun line ->
          match Server.respond srv line with
          | reply ->
              if
                not
                  (Protocol.is_ok reply || Protocol.is_err reply
                 || Server.is_scrape reply)
              then Alcotest.failf "unframed reply %S for %S" reply line;
              (* Only the METRICS scrape and MULB/DIVB batch replies
                 may span lines — and every batch lane line must itself
                 be a framed scalar reply. *)
              if String.contains reply '\n' then
                if Server.is_batch_reply reply then
                  List.iter
                    (fun l ->
                      if not (Protocol.is_ok l || Protocol.is_err l) then
                        Alcotest.failf "unframed batch lane %S for %S" l line)
                    (List.tl (String.split_on_char '\n' reply))
                else if not (Server.is_scrape reply) then
                  Alcotest.failf "multi-line reply for %S" line
          | exception exn ->
              Alcotest.failf "respond raised %s on %S"
                (Printexc.to_string exn) line)
        (Lazy.force fuzz_inputs))

(* ------------------------------------------------------------------ *)
(* LRU cache                                                           *)

let test_lru_basics () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check (option string)) "miss" None (Lru.find c "a");
  Lru.add c "a" "1";
  Lru.add c "b" "2";
  Alcotest.(check (option string)) "hit a" (Some "1") (Lru.find c "a");
  (* b is now least recent; adding c evicts it. *)
  Lru.add c "c" "3";
  Alcotest.(check (option string)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option string)) "a kept" (Some "1") (Lru.find c "a");
  Alcotest.(check (option string)) "c kept" (Some "3") (Lru.find c "c");
  Alcotest.(check int) "size" 2 (Lru.size c);
  Alcotest.(check int) "evictions" 1 (Lru.evictions c);
  Alcotest.(check int) "hits" 3 (Lru.hits c);
  Alcotest.(check int) "misses" 2 (Lru.misses c);
  (* Overwrite refreshes, no growth. *)
  Lru.add c "a" "1'";
  Alcotest.(check int) "size after overwrite" 2 (Lru.size c);
  Alcotest.(check (option string)) "overwritten" (Some "1'") (Lru.find c "a")

let test_lru_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (Lru.create ~capacity:0))

let test_lru_parallel () =
  (* 4 domains hammer one cache; we only require internal consistency:
     no crash, size bounded, hits + misses = finds. *)
  let c = Lru.create ~capacity:64 in
  let finds_per_domain = 2000 in
  let worker seed () =
    let g = Prng.create (Int64.of_int seed) in
    for _ = 1 to finds_per_domain do
      let k = Printf.sprintf "k%d" (Prng.int_range g 0 99) in
      match Lru.find c k with
      | Some _ -> ()
      | None -> Lru.add c k (k ^ "!")
    done
  in
  let ds = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join ds;
  Alcotest.(check bool) "size bounded" true (Lru.size c <= 64);
  Alcotest.(check int) "find count" (4 * finds_per_domain)
    (Lru.hits c + Lru.misses c)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_percentiles () =
  let m = Metrics.create () in
  Alcotest.(check (float 0.0)) "empty p99" 0.0 (Metrics.percentile_us m 0.99);
  (* 99 fast requests, one slow one. *)
  for _ = 1 to 99 do
    Metrics.record m ~error:false ~us:3.0
  done;
  Metrics.record m ~error:true ~us:5000.0;
  Alcotest.(check int) "requests" 100 (Metrics.requests m);
  Alcotest.(check int) "errors" 1 (Metrics.errors m);
  (* 3 us lands in the (2,4] bucket: upper bound 4. *)
  Alcotest.(check (float 0.0)) "p50" 4.0 (Metrics.percentile_us m 0.5);
  (* The slow request is exactly the 100th rank = p100 >= p99. *)
  Alcotest.(check (float 0.0)) "p99" 4.0 (Metrics.percentile_us m 0.99);
  Alcotest.(check (float 0.0)) "p100" 8192.0 (Metrics.percentile_us m 1.0);
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.requests m)

let test_metrics_per_verb () =
  let m = Metrics.create () in
  Metrics.record ~verb:"MUL" m ~error:false ~us:3.0;
  Metrics.record ~verb:"MUL" m ~error:false ~us:3.0;
  Metrics.record ~verb:"EVAL" m ~error:true ~us:100.0;
  Metrics.record m ~error:false ~us:1.0;
  (* no verb: aggregate only *)
  let samples = Obs.Registry.snapshot (Metrics.registry m) in
  let hist_count name verb =
    List.find_map
      (fun s ->
        match (s : Obs.sample).value with
        | Obs.Histogram_v { count; _ }
          when s.name = name && s.labels = [ ("verb", verb) ] ->
            Some count
        | _ -> None)
      samples
  in
  Alcotest.(check (option int))
    "MUL latencies" (Some 2)
    (hist_count "hppa_serve_verb_latency_us" "MUL");
  Alcotest.(check (option int))
    "EVAL latencies" (Some 1)
    (hist_count "hppa_serve_verb_latency_us" "EVAL");
  Alcotest.(check int) "aggregate" 4 (Metrics.requests m);
  Alcotest.(check int) "errors" 1 (Metrics.errors m)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_submit () =
  let p = Pool.create ~workers:2 ~init:(fun () -> ref 0) () in
  let squares = List.init 50 (fun i -> Pool.submit p (fun _ -> i * i)) in
  Alcotest.(check (list int)) "results in order"
    (List.init 50 (fun i -> i * i))
    squares;
  (* Exceptions cross back to the submitter. *)
  Alcotest.check_raises "job exception" (Failure "boom") (fun () ->
      Pool.submit p (fun _ -> failwith "boom"));
  (* And the pool survives them. *)
  Alcotest.(check int) "alive after exception" 7
    (Pool.submit p (fun _ -> 7));
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit p (fun _ -> 0)))

let test_pool_concurrent_submitters () =
  let p = Pool.create ~workers:3 ~init:(fun () -> ()) () in
  let total = Atomic.make 0 in
  let submitter lo () =
    for i = lo to lo + 99 do
      Atomic.fetch_and_add total (Pool.submit p (fun () -> i)) |> ignore
    done
  in
  let ths = List.init 4 (fun t -> Thread.create (submitter (t * 100)) ()) in
  List.iter Thread.join ths;
  Pool.shutdown p;
  Alcotest.(check int) "sum" (399 * 400 / 2) (Atomic.get total)

(* ------------------------------------------------------------------ *)
(* Plan determinism: the acceptance-criterion bytes                    *)

let test_plan_pure () =
  List.iter
    (fun n ->
      Alcotest.(check string)
        (Printf.sprintf "mul %ld repeatable" n)
        (fst (Result.get_ok (Plan.mul n)))
        (fst (Result.get_ok (Plan.mul n))))
    [ 625l; -7l; 0l; 1l; Int32.min_int; 0x7FFF_FFFFl ];
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "div %ld repeatable" d)
        (fst (Result.get_ok (Plan.div d)))
        (fst (Result.get_ok (Plan.div d))))
    [ 3l; 7l; 11l; 16l; -5l; 1l ]

(* Certified-only serving must not change a single reply byte: the
   payload is rendered from the planner record, the certificate only
   rides along in the artifact. *)
let test_plan_certified_byte_identity () =
  List.iter
    (fun n ->
      let plain = Result.get_ok (Plan.mul n) in
      let certified = Result.get_ok (Plan.mul ~require_certified:true n) in
      Alcotest.(check string)
        (Printf.sprintf "mul %ld bytes" n)
        (fst plain) (fst certified);
      Alcotest.(check bool)
        (Printf.sprintf "mul %ld certificate attached" n)
        true
        ((snd certified).Plan.cert_digest <> None))
    [ 625l; -7l; 1l; 0x7FFF_FFFFl ];
  List.iter
    (fun d ->
      let plain = Result.get_ok (Plan.div d) in
      let certified = Result.get_ok (Plan.div ~require_certified:true d) in
      Alcotest.(check string)
        (Printf.sprintf "div %ld bytes" d)
        (fst plain) (fst certified);
      Alcotest.(check bool)
        (Printf.sprintf "div %ld certificate attached" d)
        true
        ((snd certified).Plan.cert_digest <> None))
    [ 3l; 7l; 11l; 16l; -5l; 1l ]

let test_plan_bytes_cold_warm_workers () =
  (* The same request must produce identical bytes on a cold cache, a
     warm cache, and any worker-pool size. *)
  let requests =
    [
      "MUL 625"; "MUL -1431655765"; "DIV 7"; "DIV -9"; "EVAL mulI 1234 567";
      "W64MUL u 4294967297 4294967297"; "W64DIV s -7 3";
      "W64REM u 10000000000 7";
    ]
  in
  let replies_with workers =
    with_server ~workers (fun srv ->
        List.map
          (fun r ->
            let cold = Server.respond srv r in
            let warm = Server.respond srv r in
            Alcotest.(check string) (r ^ " cold=warm") cold warm;
            cold)
          requests)
  in
  let w1 = replies_with 1 and w3 = replies_with 3 in
  List.iter2
    (fun a b -> Alcotest.(check string) "workers 1 = workers 3" a b)
    w1 w3

let test_normalized_requests_share_cache () =
  with_server (fun srv ->
      let a = Server.respond srv "MUL 625" in
      let b = Server.respond srv "  mul   625 " in
      Alcotest.(check string) "normalized" a b)

(* ------------------------------------------------------------------ *)
(* Dispatch semantics                                                  *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_reply srv line ~ok needles =
  let reply = Server.respond srv line in
  Alcotest.(check bool)
    (Printf.sprintf "%s framed (%s)" line reply)
    ok (Protocol.is_ok reply);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%s contains %S (got %s)" line n reply)
        true (contains ~needle:n reply))
    needles

let test_dispatch_semantics () =
  with_server ~workers:2 (fun srv ->
      check_reply srv "PING" ~ok:true [ "pong" ];
      check_reply srv "QUIT" ~ok:true [ "bye" ];
      check_reply srv "MUL 625" ~ok:true
        [ "n=625"; "steps=4"; "code="; "chain=" ];
      (* mul by 0 / 1 / min_int: one-instruction special cases. *)
      check_reply srv "MUL 0" ~ok:true [ "n=0"; "steps=0" ];
      check_reply srv "DIV 7" ~ok:true [ "d=7"; "strategy=reciprocal" ];
      check_reply srv "DIV 16" ~ok:true [ "strategy=shift:4" ];
      check_reply srv "DIV -9" ~ok:true [ "signed=true" ];
      check_reply srv "DIV 0" ~ok:false [ "division by zero" ];
      check_reply srv "EVAL mulI 99 -7" ~ok:true
        [ "ret0=-693"; "cycles="; "engine=" ];
      check_reply srv "EVAL divU 100 7" ~ok:true [ "ret0=14"; "ret1=2" ];
      check_reply srv "EVAL nosuch 1" ~ok:false [ "unknown millicode entry" ];
      (* A trapping overflow multiply is an error reply, not a crash. *)
      check_reply srv "EVAL muloI -2147483648 2" ~ok:false [ "trap" ];
      check_reply srv "STATS" ~ok:true
        [ "requests="; "cache_hit_rate="; "p99_us=" ])

(* The acceptance criterion for the batch verbs: a MULB/DIVB reply is a
   "k=K" header plus K lines byte-identical to the K scalar replies —
   whether the lanes come from the cache or a fresh computation, and
   including error lanes (DIV 0). *)
let test_batch_byte_identity () =
  let mul_ops = [ "625"; "-7"; "0"; "1"; "625" ] in
  let div_ops = [ "7"; "0"; "-9"; "16"; "1" ] in
  let check_batch srv verb scalar_verb ops =
    let scalars =
      List.map (fun n -> Server.respond srv (scalar_verb ^ " " ^ n)) ops
    in
    let reply = Server.respond srv (verb ^ " " ^ String.concat " " ops) in
    Alcotest.(check bool)
      (verb ^ " framed as batch") true
      (Server.is_batch_reply reply);
    match String.split_on_char '\n' reply with
    | header :: lanes ->
        Alcotest.(check string)
          (verb ^ " header")
          (Printf.sprintf "OK %s k=%d" verb (List.length ops))
          header;
        List.iteri
          (fun i (scalar, lane) ->
            Alcotest.(check string)
              (Printf.sprintf "%s lane %d byte-identical" verb i)
              scalar lane)
          (List.combine scalars lanes)
    | [] -> Alcotest.fail "empty batch reply"
  in
  (* Warm path: scalars answered first, the batch hits their cache. *)
  with_server ~workers:2 (fun srv ->
      check_batch srv "MULB" "MUL" mul_ops;
      check_batch srv "DIVB" "DIV" div_ops);
  (* Cold path: the batch computes first; scalars afterwards must agree
     (the batch populated the shared scalar cache). *)
  with_server ~workers:2 (fun srv ->
      let reply = Server.respond srv ("MULB " ^ String.concat " " mul_ops) in
      let lanes = List.tl (String.split_on_char '\n' reply) in
      List.iter2
        (fun n lane ->
          Alcotest.(check string)
            (Printf.sprintf "cold MULB lane %s = later scalar" n)
            lane
            (Server.respond srv ("MUL " ^ n)))
        mul_ops lanes;
      (* Every distinct operand the batch computed is now a cache hit. *)
      let stats = Server.respond srv "STATS" in
      Alcotest.(check bool)
        (Printf.sprintf "batch warmed the scalar cache (%s)" stats)
        true
        (contains ~needle:"cache_hits=5" stats))

let test_batch_error_lanes () =
  with_server (fun srv ->
      let reply = Server.respond srv "DIVB 7 0 16" in
      match String.split_on_char '\n' reply with
      | [ header; l0; l1; l2 ] ->
          Alcotest.(check string) "header" "OK DIVB k=3" header;
          Alcotest.(check bool) "lane 0 ok" true (Protocol.is_ok l0);
          Alcotest.(check bool) "lane 1 is ERR" true (Protocol.is_err l1);
          Alcotest.(check bool) "lane 1 names the cause" true
            (contains ~needle:"division by zero" l1);
          Alcotest.(check bool) "lane 2 ok" true (Protocol.is_ok l2);
          Alcotest.(check bool) "lane 2 strategy" true
            (contains ~needle:"strategy=shift:4" l2)
      | ls -> Alcotest.failf "expected 4 lines, got %d" (List.length ls))

(* ------------------------------------------------------------------ *)
(* W64 serving: the double-word verbs through the same plan cache      *)

let test_w64_dispatch_semantics () =
  with_server ~workers:2 (fun srv ->
      check_reply srv "W64MUL u 123 456" ~ok:true
        [ "hi=0"; "lo=56088"; "cycles="; "entry=mulU128" ];
      (* Full 64x64: (2^32+1)^2 = 2^64 + 2^33 + 1. *)
      check_reply srv "W64MUL u 4294967297 4294967297" ~ok:true
        [ "hi=1"; "lo=8589934593" ];
      check_reply srv "W64MUL s -7 3" ~ok:true
        [ "hi=-1"; "lo=-21"; "entry=mulI128" ];
      (* Truncating signed divide: -7/3 = -2 rem -1. *)
      check_reply srv "W64DIV s -7 3" ~ok:true
        [ "q=-2"; "r=-1"; "entry=divI64w" ];
      check_reply srv "W64DIV u 10000000000 3" ~ok:true
        [ "q=3333333333"; "r=1"; "entry=divU64w" ];
      check_reply srv "W64REM u 100 7" ~ok:true [ "r=2"; "entry=remU64w" ];
      check_reply srv "W64REM s -100 7" ~ok:true [ "r=-2"; "entry=remI64w" ];
      (* A zero divisor traps in the millicode; the server frames it as
         an error reply, not a crash. *)
      check_reply srv "W64DIV u 5 0" ~ok:false [ "trap" ];
      check_reply srv "W64REM s 5 0" ~ok:false [ "trap" ])

(* The 128/64 divide verb: three-operand lanes through the same plan
   cache, quotient/remainder decoded from the (ret0:ret1)/(arg0:arg1)
   pairs of divU128by64. *)
let test_divl_dispatch_semantics () =
  with_server ~workers:2 (fun srv ->
      check_reply srv "W64DIVL 0 100 7" ~ok:true
        [ "q=14"; "r=2"; "cycles="; "entry=divU128by64" ];
      (* 2^64 / 3: the quotient needs the full dword. *)
      check_reply srv "W64DIVL 1 0 3" ~ok:true
        [ "q=6148914691236517205"; "r=1" ];
      (* The dividend high dword rides above a 32-bit divisor. *)
      check_reply srv "W64DIVL 4 3735928559 5" ~ok:true [ "r=3" ];
      (* Zero divisor and an unrepresentable quotient (hi >= y) trap;
         the server frames both as error replies. *)
      check_reply srv "W64DIVL 0 5 0" ~ok:false [ "trap" ];
      check_reply srv "W64DIVL 5 0 5" ~ok:false [ "trap" ];
      (* Normalized form shares the scalar cache entry. *)
      let a = Server.respond srv "W64DIVL 0 100 7" in
      let b = Server.respond srv "  w64divl  0 0x64 7 " in
      Alcotest.(check string) "normalized" a b)

let test_divl_batch_byte_identity () =
  let ops = [ ("0", "100", "7"); ("0", "5", "0"); ("1", "0", "3") ] in
  let flat =
    String.concat " " (List.concat_map (fun (a, b, c) -> [ a; b; c ]) ops)
  in
  let scalar srv (a, b, c) =
    Server.respond srv (Printf.sprintf "W64DIVL %s %s %s" a b c)
  in
  (* Warm path: scalars first, the batch hits their cache entries. *)
  with_server ~workers:2 (fun srv ->
      let scalars = List.map (scalar srv) ops in
      let reply = Server.respond srv ("W64DIVLB " ^ flat) in
      Alcotest.(check bool) "framed as batch" true
        (Server.is_batch_reply reply);
      match String.split_on_char '\n' reply with
      | header :: lanes ->
          Alcotest.(check string) "header"
            (Printf.sprintf "OK W64DIVLB k=%d" (List.length ops))
            header;
          List.iteri
            (fun i (s, l) ->
              Alcotest.(check string)
                (Printf.sprintf "warm lane %d byte-identical" i)
                s l)
            (List.combine scalars lanes)
      | [] -> Alcotest.fail "empty batch reply");
  (* Cold path: the batch computes first; scalars afterwards agree, and
     the zero-divisor lane is a framed per-lane error. *)
  with_server ~workers:2 (fun srv ->
      let reply = Server.respond srv ("W64DIVLB " ^ flat) in
      let lanes = List.tl (String.split_on_char '\n' reply) in
      List.iter2
        (fun op lane ->
          Alcotest.(check string) "cold lane = later scalar" lane
            (scalar srv op))
        ops lanes;
      match lanes with
      | _ :: bad :: _ ->
          Alcotest.(check bool) "zero-divisor lane is ERR" true
            (Protocol.is_err bad);
          Alcotest.(check bool) "lane names the trap" true
            (contains ~needle:"trap" bad)
      | _ -> Alcotest.fail "missing lanes")

(* Same acceptance criterion as MULB/DIVB: a W64 batch reply is a
   header plus lanes byte-identical to the scalar replies, error lanes
   (zero divisors) included, cache-state independent. *)
let test_w64_batch_byte_identity () =
  let ops = [ ("10", "3"); ("5", "0"); ("-7", "3"); ("10000000000", "7") ] in
  let flat = String.concat " " (List.concat_map (fun (x, y) -> [ x; y ]) ops) in
  let scalar srv (x, y) = Server.respond srv ("W64DIV s " ^ x ^ " " ^ y) in
  (* Warm path: scalars first, the batch hits their cache entries. *)
  with_server ~workers:2 (fun srv ->
      let scalars = List.map (scalar srv) ops in
      let reply = Server.respond srv ("W64DIVB s " ^ flat) in
      Alcotest.(check bool) "framed as batch" true
        (Server.is_batch_reply reply);
      match String.split_on_char '\n' reply with
      | header :: lanes ->
          Alcotest.(check string) "header"
            (Printf.sprintf "OK W64DIVB k=%d" (List.length ops))
            header;
          List.iteri
            (fun i (s, l) ->
              Alcotest.(check string)
                (Printf.sprintf "warm lane %d byte-identical" i)
                s l)
            (List.combine scalars lanes)
      | [] -> Alcotest.fail "empty batch reply");
  (* Cold path: the batch computes first; scalars afterwards agree. *)
  with_server ~workers:2 (fun srv ->
      let reply = Server.respond srv ("W64DIVB s " ^ flat) in
      let lanes = List.tl (String.split_on_char '\n' reply) in
      List.iter2
        (fun (x, y) lane ->
          Alcotest.(check string)
            (Printf.sprintf "cold lane %s/%s = later scalar" x y)
            lane
            (scalar srv (x, y)))
        ops lanes;
      (* The zero-divisor lane is a framed per-lane error, the batch
         itself still succeeds. *)
      match lanes with
      | _ :: bad :: _ ->
          Alcotest.(check bool) "zero-divisor lane is ERR" true
            (Protocol.is_err bad);
          Alcotest.(check bool) "lane names the trap" true
            (contains ~needle:"trap" bad)
      | _ -> Alcotest.fail "missing lanes")

let test_metrics_scrape () =
  with_server (fun srv ->
      ignore (Server.respond srv "MUL 625");
      ignore (Server.respond srv "MUL 625");
      ignore (Server.respond srv "FROB");
      let reply = Server.respond srv "METRICS" in
      Alcotest.(check bool) "scrape framed" true (Server.is_scrape reply);
      Alcotest.(check bool) "ends with # EOF" true
        (contains ~needle:"# EOF" reply);
      match Obs.Export.parse_prometheus reply with
      | Error msg -> Alcotest.failf "scrape does not parse: %s" msg
      | Ok samples ->
          let get name =
            match Obs.Export.find samples name with
            | Some v -> v
            | None -> Alcotest.failf "missing %s" name
          in
          (* MUL, MUL, FROB counted; METRICS itself not yet recorded at
             snapshot time. *)
          Alcotest.(check (float 0.0))
            "requests" 3.0
            (get "hppa_serve_requests_total");
          Alcotest.(check (float 0.0))
            "errors" 1.0
            (get "hppa_serve_errors_total");
          Alcotest.(check (float 0.0))
            "cache hits" 1.0
            (get "hppa_serve_cache_hits_total");
          Alcotest.(check (float 0.0))
            "hit rate" 0.5
            (get "hppa_serve_cache_hit_rate");
          Alcotest.(check (float 0.0))
            "workers gauge" 1.0 (get "hppa_serve_workers");
          (* The scrape itself is never cached: hits unchanged after. *)
          let again = Server.respond srv "METRICS" in
          Alcotest.(check bool) "second scrape framed" true
            (Server.is_scrape again))

let test_plan_selector_metrics () =
  (* MUL/DIV dispatch through the strategy selector against the server
     registry: per-strategy hppa_plan_* families show in the scrape and
     the selector's verdict is cached alongside the reply bytes. *)
  with_server (fun srv ->
      ignore (Server.respond srv "MUL 625");
      ignore (Server.respond srv "DIV 7");
      let reply = Server.respond srv "METRICS" in
      match Obs.Export.parse_prometheus reply with
      | Error msg -> Alcotest.failf "scrape does not parse: %s" msg
      | Ok samples ->
          List.iter
            (fun name ->
              match Obs.Export.find samples name with
              | Some v ->
                  Alcotest.(check bool) (name ^ " positive") true (v > 0.0)
              | None -> Alcotest.failf "missing %s" name)
            [
              "hppa_plan_candidates_total";
              "hppa_plan_selections_total";
              "hppa_serve_plan_artifacts";
            ];
          let arts = Server.artifacts srv in
          Alcotest.(check int) "two artifacts" 2 (List.length arts);
          let strategies =
            List.map (fun (_, a) -> a.Plan.strategy) arts
          in
          Alcotest.(check bool) "chain chosen for 625" true
            (List.mem "mul_const_chain" strategies);
          Alcotest.(check bool) "div_const chosen for 7" true
            (List.mem "div_const" strategies);
          List.iter
            (fun (_, a) ->
              match a.Plan.digest with
              | Some d ->
                  Alcotest.(check int) "content address is MD5 hex" 32
                    (String.length d)
              | None -> Alcotest.fail "artifact missing digest")
            arts)

let test_certified_serving () =
  (* A --certified server answers byte-for-byte like an ordinary one,
     and every cached plan artifact carries a certificate digest (the
     hppa_serve_plan_artifacts_certified gauge tracks the total). *)
  let requests =
    [
      "MUL 625"; "MUL -7"; "DIV 7"; "DIV -9"; "DIV 16"; "DIV 1";
      "W64MUL u 123 456"; "W64DIV s -7 3"; "W64REM u 100 7";
      "W64DIVL 0 100 7";
    ]
  in
  let plain =
    with_server (fun srv -> List.map (Server.respond srv) requests)
  in
  with_server ~certified:true (fun srv ->
      List.iter2
        (fun req expected ->
          Alcotest.(check string) (req ^ " bytes unchanged") expected
            (Server.respond srv req))
        requests plain;
      let arts = Server.artifacts srv in
      Alcotest.(check bool) "artifacts recorded" true (arts <> []);
      List.iter
        (fun (key, a) ->
          match (a.Plan.cert_kind, a.Plan.cert_digest) with
          | Some _, Some d ->
              Alcotest.(check int)
                (key ^ " cert digest is MD5 hex")
                32 (String.length d)
          | _ -> Alcotest.failf "%s served without a certificate" key)
        arts;
      let reply = Server.respond srv "METRICS" in
      match Obs.Export.parse_prometheus reply with
      | Error msg -> Alcotest.failf "scrape does not parse: %s" msg
      | Ok samples -> (
          match
            Obs.Export.find samples "hppa_serve_plan_artifacts_certified"
          with
          | Some v ->
              Alcotest.(check (float 0.0))
                "all artifacts certified"
                (float_of_int (List.length arts))
                v
          | None -> Alcotest.fail "missing certified-artifacts gauge"))

let test_plans_warm_start () =
  let module A = Hppa_plan.Autotune in
  let meas ~strategy ~request ~digest =
    {
      A.strategy;
      request;
      entry = "e";
      digest;
      workload = "w";
      samples = 1;
      total_cycles = 10;
      mean_cycles = 10.0;
      min_cycles = 10;
      max_cycles = 10;
      used_engine = true;
      batch_width = 1;
      cert_kind = None;
      cert_digest = None;
    }
  in
  let store = A.Store.create () in
  A.Store.add store
    (meas ~strategy:"mul_const_chain" ~request:"mul.c625.s" ~digest:"d1");
  A.Store.add store
    (meas ~strategy:"div_const" ~request:"div.c7.u" ~digest:"d2");
  (* Variable requests have no MUL/DIV form: skipped, not fatal. *)
  A.Store.add store
    (meas ~strategy:"div_millicode" ~request:"div.var.u" ~digest:"d3");
  let path = Filename.temp_file "hppa_plans" ".json" in
  (match A.Store.save store path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let cold =
    with_server (fun srv -> Server.respond srv "MUL 625")
  in
  let cfg =
    { (test_config 1) with Server.Config.plans_path = Some path }
  in
  let srv = Server.create cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown_pool srv;
      Sys.remove path)
    (fun () ->
      Alcotest.(check int) "two plans warmed" 2
        (List.length (Server.artifacts srv));
      let warm = Server.respond srv "MUL 625" in
      Alcotest.(check string) "warm reply = cold reply" cold warm;
      (* Both requests so far were pre-computed: all hits, no misses. *)
      ignore (Server.respond srv "DIV 7");
      let stats = Server.respond srv "STATS" in
      Alcotest.(check bool)
        (Printf.sprintf "hits counted (%s)" stats)
        true
        (contains ~needle:"cache_hits=2" stats);
      Alcotest.(check bool) "no misses" true
        (contains ~needle:"cache_misses=0" stats));
  (* A missing store file warms nothing and does not fail startup. *)
  let cfg =
    {
      (test_config 1) with
      Server.Config.plans_path = Some "no-such-plans.json";
    }
  in
  let srv = Server.create cfg in
  Fun.protect
    ~finally:(fun () -> Server.shutdown_pool srv)
    (fun () ->
      Alcotest.(check int) "nothing warmed" 0
        (List.length (Server.artifacts srv)))

let test_stats_and_scrape_agree () =
  (* STATS and METRICS must be two views of the same registry cells. *)
  with_server (fun srv ->
      for i = 1 to 10 do
        ignore (Server.respond srv (Printf.sprintf "MUL %d" (600 + i)))
      done;
      ignore (Server.respond srv "NOPE");
      let stats = Server.respond srv "STATS" in
      let samples =
        Result.get_ok (Obs.Export.parse_prometheus (Server.metrics_payload srv))
      in
      let requests =
        int_of_float
          (Option.get (Obs.Export.find samples "hppa_serve_requests_total"))
      in
      let errors =
        int_of_float
          (Option.get (Obs.Export.find samples "hppa_serve_errors_total"))
      in
      (* STATS was issued after 11 recorded requests; the scrape then
         additionally includes the STATS request itself. *)
      Alcotest.(check bool)
        (Printf.sprintf "stats %s mentions requests=%d" stats (requests - 1))
        true
        (contains ~needle:(Printf.sprintf "requests=%d" (requests - 1)) stats);
      Alcotest.(check bool)
        (Printf.sprintf "stats mentions errors=%d" errors)
        true
        (contains ~needle:(Printf.sprintf "errors=%d" errors) stats))

let test_eval_fuel_limit () =
  with_server ~fuel:5 (fun srv ->
      check_reply srv "EVAL divU 100 7" ~ok:false [ "fuel" ])

let test_eval_resets_machine_state () =
  with_server (fun srv ->
      let a = Server.respond srv "EVAL divU 1000 7" in
      (* A different request in between must not change the reply. *)
      ignore (Server.respond srv "EVAL mulI -55 1234");
      let b = Server.respond srv "EVAL divU 1000 7" in
      Alcotest.(check string) "history independent" a b)

(* ------------------------------------------------------------------ *)
(* End to end over a real socket                                       *)

let test_end_to_end () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "hppa_test.sock" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let cfg =
    {
      (test_config 2) with
      Server.Config.endpoint = Server.Config.Unix_socket path;
      cache_capacity = 256;
    }
  in
  let srv = Server.create cfg in
  let th = Thread.create (fun () -> Server.run srv) () in
  (* Wait for the socket to appear. *)
  let rec wait tries =
    if tries = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists path) then begin
      Thread.delay 0.05;
      wait (tries - 1)
    end
  in
  wait 100;
  let summary =
    match
      Load_gen.run
        ~endpoint:(Server.Config.Unix_socket path)
        ~requests:300 ~conns:3 ~dist:Load_gen.Mixed ~seed:7L ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "load_gen: %s" e
  in
  Alcotest.(check int) "all requests answered" 300 summary.Load_gen.requests;
  Alcotest.(check int) "zero errors" 0 summary.Load_gen.errors;
  Alcotest.(check bool) "server stats scraped" true
    (summary.Load_gen.server_stats <> []);
  (* Batched traffic against the same server: every lane answered, the
     first-batch byte-identity cross-check clean. *)
  let batched =
    match
      Load_gen.run ~batch_width:8
        ~endpoint:(Server.Config.Unix_socket path)
        ~requests:300 ~conns:3 ~dist:Load_gen.Zipf ~seed:7L ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "load_gen batched: %s" e
  in
  Alcotest.(check int) "batched: all requests answered" 300
    batched.Load_gen.requests;
  Alcotest.(check int) "batched: zero errors" 0 batched.Load_gen.errors;
  Alcotest.(check int) "batched: zero mismatches" 0
    batched.Load_gen.batch_mismatches;
  (* Graceful stop: run returns and the socket file is gone. *)
  Server.stop srv;
  Thread.join th;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists path)

let test_load_gen_connect_failure () =
  match
    Load_gen.run
      ~endpoint:
        (Server.Config.Unix_socket "/nonexistent/definitely-missing.sock")
      ~requests:5 ~conns:1 ~dist:Load_gen.Zipf ~seed:1L ()
  with
  | Ok _ -> Alcotest.fail "connected to nothing"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Golden replies: the exact bytes the pre-redesign threaded server
   produced, captured before the event-loop/sharding rewrite. Any diff
   here is a wire-format regression, not a refactor. *)

let golden_replies =
  [
    ( "MUL 625",
      "OK MUL n=625 steps=4 insns=4 cycles=4 temps=0 overflow_safe=false \
       chain=a2=a1<<5;a3=a2-a1;a4=4*a3+a1;a5=4*a4+a4 code=mulc_625: | zdep \
       r26, 5, 27, r28 | sub r28, r26, r28 | sh2add r28, r26, r28 | sh2add \
       r28, r28, r28 | bv r0(r31)" );
    ( "MUL 0",
      "OK MUL n=0 steps=0 insns=1 cycles=1 temps=0 overflow_safe=false \
       chain=- code=mulc_0: | ldo 0(r0), r28 | bv r0(r31)" );
    ( "MUL -7",
      "OK MUL n=-7 steps=2 insns=3 cycles=3 temps=0 overflow_safe=false \
       chain=a2=a0-a1;a3=8*a1+a2 code=mulc_m7: | sub r0, r26, r28 | sh3add \
       r26, r28, r28 | sub r0, r28, r28 | bv r0(r31)" );
    ( "MUL 1",
      "OK MUL n=1 steps=0 insns=1 cycles=1 temps=0 overflow_safe=true \
       chain= code=mulc_1: | ldo 0(r26), r28 | bv r0(r31)" );
    ( "DIV 7",
      "OK DIV d=7 signed=false \
       strategy=reciprocal:z=2^33,a=1227133513,b=1227133513,chain=7 \
       insns=21 cycles=21 needs_millicode=false code=divu_c7: | addi 1, \
       r26, r20 | addc r0, r0, r19 | shd r19, r20, 29, r21 | zdep r20, 3, \
       29, r22 | shd r21, r22, 29, r29 | sh3add r22, r20, r28 | addc r29, \
       r19, r29 | shd r29, r28, 29, r21 | sh3add r28, r28, r22 | addc r21, \
       r29, r21 | shd r21, r22, 29, r29 | sh3add r22, r20, r28 | addc r29, \
       r19, r29 | shd r29, r28, 17, r21 | zdep r28, 15, 17, r22 | add r22, \
       r28, r22 | addc r21, r29, r21 | shd r21, r22, 29, r29 | sh3add r22, \
       r20, r28 | addc r29, r19, r29 | extru r29, 1, 31, r28 | bv r0(r31)" );
    ( "DIV 16",
      "OK DIV d=16 signed=false strategy=shift:4 insns=1 cycles=1 \
       needs_millicode=false code=divu_c16: | extru r26, 4, 28, r28 | bv \
       r0(r31)" );
    ( "DIV -9",
      "OK DIV d=-9 signed=true \
       strategy=reciprocal:z=2^34,a=1908874353,b=1908874359,chain=9 \
       insns=31 cycles=31 needs_millicode=false code=divi_cm9: | ldo \
       0(r26), r1 | comclr,>= r26, r0, r0 | sub r0, r26, r26 | addi 1, \
       r26, r20 | addc r0, r0, r19 | sub r0, r20, r22 | subb r0, r19, r21 \
       | shd r19, r20, 29, r29 | sh3add r20, r22, r28 | addc r29, r21, r29 \
       | shd r29, r28, 26, r21 | zdep r28, 6, 26, r22 | add r22, r28, r22 \
       | addc r21, r29, r21 | shd r21, r22, 29, r29 | sh3add r22, r20, r28 \
       | addc r29, r19, r29 | shd r29, r28, 17, r21 | zdep r28, 15, 17, \
       r22 | sub r22, r28, r22 | subb r21, r29, r21 | shd r21, r22, 29, \
       r21 | zdep r22, 3, 29, r22 | shd r21, r22, 31, r29 | sh1add r22, \
       r20, r28 | addc r29, r19, r29 | addi 6, r28, r28 | addc r0, r29, \
       r29 | extru r29, 2, 30, r28 | comclr,< r1, r0, r0 | sub r0, r28, \
       r28 | bv r0(r31)" );
    ("DIV 0", "ERR range division by zero");
    ( "W64MUL u 123 456",
      "OK W64MUL signed=false x=123 y=456 hi=0 lo=56088 cycles=335 \
       entry=mulU128" );
    ( "W64MUL s -7 3",
      "OK W64MUL signed=true x=-7 y=3 hi=-1 lo=-21 cycles=345 \
       entry=mulI128" );
    ( "W64DIV s -7 3",
      "OK W64DIV signed=true x=-7 y=3 q=-2 r=-1 cycles=195 entry=divI64w" );
    ( "W64DIV u 10000000000 3",
      "OK W64DIV signed=false x=10000000000 y=3 q=3333333333 r=1 \
       cycles=175 entry=divU64w" );
    ( "W64REM u 100 7",
      "OK W64REM signed=false x=100 y=7 r=2 cycles=177 entry=remU64w" );
    ("W64DIV u 5 0", "ERR trap divU64w: break trap (code 0)");
    ( "EVAL mulI 99 -7",
      "OK EVAL entry=mulI ret0=-693 ret1=0 cycles=23 engine=true" );
    ( "EVAL divU 100 7",
      "OK EVAL entry=divU ret0=14 ret1=2 cycles=74 engine=true" );
    ("PING", "OK pong");
    ("QUIT", "OK bye");
  ]

let golden_batches =
  (* header :: lanes, joined with newlines by the server *)
  [
    ( "MULB 625 -7 0",
      [
        "OK MULB k=3";
        List.assoc "MUL 625" golden_replies;
        List.assoc "MUL -7" golden_replies;
        List.assoc "MUL 0" golden_replies;
      ] );
    ( "DIVB 7 0 16",
      [
        "OK DIVB k=3";
        List.assoc "DIV 7" golden_replies;
        "ERR range division by zero";
        List.assoc "DIV 16" golden_replies;
      ] );
    ( "W64DIVB s 10 3 5 0",
      [
        "OK W64DIVB k=2";
        "OK W64DIV signed=true x=10 y=3 q=3 r=1 cycles=189 entry=divI64w";
        "ERR trap divI64w: break trap (code 0)";
      ] );
  ]

let test_golden_replies () =
  with_server ~workers:2 (fun srv ->
      List.iter
        (fun (request, expected) ->
          Alcotest.(check string) request expected (Server.respond srv request))
        golden_replies;
      List.iter
        (fun (request, lines) ->
          Alcotest.(check string)
            request
            (String.concat "\n" lines)
            (Server.respond srv request))
        golden_batches)

(* Shard-count independence: the reply bytes may not depend on how the
   cache is partitioned. *)
let test_shard_count_byte_identity () =
  let requests =
    List.map fst golden_replies
    @ List.map fst golden_batches
    @ [ "MULB 5 5 5"; "W64MULB u 1 2 3 4"; "EVAL divU 1000 7" ]
  in
  let replies_with shards =
    with_server ~workers:shards (fun srv ->
        List.map (Server.respond srv) requests)
  in
  let s1 = replies_with 1 and s4 = replies_with 4 in
  List.iter2
    (fun a b -> Alcotest.(check string) "shards 1 = shards 4" a b)
    s1 s4

(* ------------------------------------------------------------------ *)
(* The event loop over a real socket: partial writes, pipelining,
   ordering, back-pressure, QUIT semantics                             *)

let with_socket_server ?(config = fun c -> c) f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hppa_ev_%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let cfg =
    config
      {
        (test_config 2) with
        Server.Config.endpoint = Server.Config.Unix_socket path;
        cache_capacity = 256;
      }
  in
  let srv = Server.create cfg in
  let th = Thread.create (fun () -> Server.run srv) () in
  let rec wait tries =
    if tries = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists path) then begin
      Thread.delay 0.02;
      wait (tries - 1)
    end
  in
  wait 250;
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join th)
    (fun () -> f path)

let connect_client path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* Read one logical reply: a line, a batch header plus its lanes, or a
   METRICS scrape up to "# EOF" — reconstructed without the trailing
   newline, exactly the [Server.respond] rendering. *)
let read_reply ic =
  let first = input_line ic in
  if Server.is_batch_reply first then begin
    let k =
      match String.split_on_char '=' first with
      | [ _; k ] -> int_of_string k
      | _ -> Alcotest.failf "bad batch header %S" first
    in
    let lanes = List.init k (fun _ -> input_line ic) in
    String.concat "\n" (first :: lanes)
  end
  else if Server.is_scrape first then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf first;
    let rec go () =
      let line = input_line ic in
      Buffer.add_char buf '\n';
      Buffer.add_string buf line;
      if line <> "# EOF" then go ()
    in
    go ();
    Buffer.contents buf
  end
  else first

(* A mixed request stream written as one byte stream whose chunk
   boundaries fall at arbitrary (seeded-random) offsets — mid-token,
   mid-line, several lines at once — must produce exactly the replies
   the blocking oracle produces, in order. *)
let test_socket_partial_writes () =
  let requests =
    [
      "MUL 625"; "DIV 7"; "W64MUL u 123 456"; "MULB 625 -7 0"; "DIV 0";
      "EVAL mulI 99 -7"; "W64DIVB s 10 3 5 0"; "PING"; "MUL -7"; "DIV 16";
      "STATS"; "W64REM u 100 7"; "FROB 1"; "MUL 2a";
    ]
  in
  let expected =
    with_server ~workers:2 (fun oracle ->
        List.map (Server.respond oracle) requests)
  in
  (* STATS moves with traffic; only pin its shape. *)
  let stats_like = contains ~needle:"requests=" in
  let stream = String.concat "\n" requests ^ "\n" in
  with_socket_server (fun path ->
      let g = Prng.create 0xF122ED5L in
      for _round = 1 to 4 do
        let fd = connect_client path in
        let ic = Unix.in_channel_of_descr fd in
        let writer =
          Thread.create
            (fun () ->
              let n = String.length stream in
              let off = ref 0 in
              while !off < n do
                let len = min (n - !off) (1 + Prng.int_range g 0 6) in
                write_all fd (String.sub stream !off len);
                off := !off + len;
                if Prng.int_range g 0 3 = 0 then Thread.delay 0.001
              done)
            ()
        in
        let got = List.map (fun _ -> read_reply ic) requests in
        Thread.join writer;
        List.iter2
          (fun (request, e) g ->
            if request = "STATS" then
              Alcotest.(check bool) "STATS shaped" true (stats_like g)
            else Alcotest.(check string) ("split " ^ request) e g)
          (List.combine requests expected)
          got;
        Unix.close fd
      done)

(* Pipelining: one connection, hundreds of requests written before any
   reply is read (past pipeline_depth, so back-pressure engages), and
   every reply comes back byte-identical to the oracle, in request
   order. *)
let test_pipelined_ordering () =
  let g = Prng.create 0x9139E11EDL in
  let requests =
    List.init 240 (fun i ->
        match Prng.int_range g 0 4 with
        | 0 -> Printf.sprintf "MUL %d" (600 + (i mod 7))
        | 1 -> Printf.sprintf "DIV %d" (1 + (i mod 19))
        | 2 -> Printf.sprintf "W64DIV s %d 3" (i - 120)
        | 3 -> "PING"
        | _ -> Printf.sprintf "EVAL mulI %d -7" (i mod 50))
  in
  let expected =
    with_server ~workers:2 (fun oracle ->
        List.map (Server.respond oracle) requests)
  in
  with_socket_server (fun path ->
      let fd = connect_client path in
      let ic = Unix.in_channel_of_descr fd in
      write_all fd (String.concat "\n" requests ^ "\n");
      let got = List.map (fun _ -> read_reply ic) requests in
      List.iter2
        (fun e g -> Alcotest.(check string) "pipelined reply" e g)
        expected got;
      Unix.close fd)

(* A tiny pipeline_depth must throttle, not deadlock or drop. *)
let test_pipeline_depth_backpressure () =
  with_socket_server
    ~config:(fun c -> { c with Server.Config.pipeline_depth = 2; shards = 1 })
    (fun path ->
      let fd = connect_client path in
      let ic = Unix.in_channel_of_descr fd in
      let n = 60 in
      write_all fd
        (String.concat ""
           (List.init n (fun i -> Printf.sprintf "MUL %d\n" (i mod 5))));
      for i = 0 to n - 1 do
        let reply = read_reply ic in
        Alcotest.(check bool)
          (Printf.sprintf "reply %d framed" i)
          true (Protocol.is_ok reply)
      done;
      Unix.close fd)

(* QUIT: replies already pipelined behind it are answered, the QUIT is
   acknowledged, later bytes are never parsed and the server closes. *)
let test_quit_closes_connection () =
  with_socket_server (fun path ->
      let fd = connect_client path in
      let ic = Unix.in_channel_of_descr fd in
      write_all fd "PING\nMUL 625\nQUIT\nPING\n";
      Alcotest.(check string) "ping" "OK pong" (read_reply ic);
      Alcotest.(check bool) "mul answered" true
        (Protocol.is_ok (read_reply ic));
      Alcotest.(check string) "bye" "OK bye" (read_reply ic);
      (match input_line ic with
      | l -> Alcotest.failf "reply after QUIT: %S" l
      | exception End_of_file -> ());
      Unix.close fd)

(* Open-loop load: the generator offers a fixed Poisson rate and the
   summary carries it; every request is answered. *)
let test_open_loop_load () =
  with_socket_server (fun path ->
      match
        Load_gen.run ~rate:2500.0
          ~endpoint:(Server.Config.Unix_socket path)
          ~requests:500 ~conns:2 ~dist:Load_gen.Zipf ~seed:11L ()
      with
      | Error e -> Alcotest.failf "open-loop: %s" e
      | Ok s ->
          Alcotest.(check int) "all answered" 500 s.Load_gen.requests;
          Alcotest.(check int) "zero errors" 0 s.Load_gen.errors;
          Alcotest.(check (option (float 0.01)))
            "offered rate recorded" (Some 2500.0) s.Load_gen.offered_rps);
  (* Open loop is scalar-only: rate + batch_width is a setup error. *)
  match
    Load_gen.run ~batch_width:4 ~rate:100.0
      ~endpoint:(Server.Config.Unix_socket "unused.sock")
      ~requests:10 ~conns:1 ~dist:Load_gen.Zipf ~seed:1L ()
  with
  | Ok _ -> Alcotest.fail "rate + batch_width accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "server:protocol",
      [
        Alcotest.test_case "valid requests" `Quick test_parse_valid;
        Alcotest.test_case "invalid requests" `Quick test_parse_invalid;
        Alcotest.test_case "fuzz: parse is total" `Quick test_fuzz_parse_total;
        Alcotest.test_case "fuzz: respond is total" `Quick
          test_fuzz_respond_total;
      ] );
    ( "server:cache",
      [
        Alcotest.test_case "lru basics" `Quick test_lru_basics;
        Alcotest.test_case "lru bad capacity" `Quick
          test_lru_rejects_bad_capacity;
        Alcotest.test_case "lru under 4 domains" `Quick test_lru_parallel;
      ] );
    ( "server:metrics",
      [
        Alcotest.test_case "percentiles" `Quick test_metrics_percentiles;
        Alcotest.test_case "per-verb histograms" `Quick test_metrics_per_verb;
      ] );
    ( "server:pool",
      [
        Alcotest.test_case "submit/shutdown" `Quick test_pool_submit;
        Alcotest.test_case "concurrent submitters" `Quick
          test_pool_concurrent_submitters;
      ] );
    ( "server:determinism",
      [
        Alcotest.test_case "plans are pure" `Quick test_plan_pure;
        Alcotest.test_case "certified plans byte-identical" `Quick
          test_plan_certified_byte_identity;
        Alcotest.test_case "cold/warm/worker-count bytes" `Quick
          test_plan_bytes_cold_warm_workers;
        Alcotest.test_case "request normalization" `Quick
          test_normalized_requests_share_cache;
      ] );
    ( "server:dispatch",
      [
        Alcotest.test_case "semantics" `Quick test_dispatch_semantics;
        Alcotest.test_case "batch byte identity" `Quick
          test_batch_byte_identity;
        Alcotest.test_case "batch error lanes" `Quick test_batch_error_lanes;
        Alcotest.test_case "w64 semantics" `Quick test_w64_dispatch_semantics;
        Alcotest.test_case "w64 batch byte identity" `Quick
          test_w64_batch_byte_identity;
        Alcotest.test_case "divl semantics" `Quick test_divl_dispatch_semantics;
        Alcotest.test_case "divl batch byte identity" `Quick
          test_divl_batch_byte_identity;
        Alcotest.test_case "metrics scrape" `Quick test_metrics_scrape;
        Alcotest.test_case "selector metrics and artifacts" `Quick
          test_plan_selector_metrics;
        Alcotest.test_case "certified-only serving" `Quick
          test_certified_serving;
        Alcotest.test_case "BENCH_PLANS warm start" `Quick
          test_plans_warm_start;
        Alcotest.test_case "stats/scrape agreement" `Quick
          test_stats_and_scrape_agree;
        Alcotest.test_case "fuel limit" `Quick test_eval_fuel_limit;
        Alcotest.test_case "history independence" `Quick
          test_eval_resets_machine_state;
      ] );
    ( "server:golden",
      [
        Alcotest.test_case "pre-redesign reply bytes" `Quick
          test_golden_replies;
        Alcotest.test_case "shard-count byte identity" `Quick
          test_shard_count_byte_identity;
      ] );
    ( "server:pipeline",
      [
        Alcotest.test_case "split writes at fuzzed boundaries" `Quick
          test_socket_partial_writes;
        Alcotest.test_case "pipelined replies in order" `Quick
          test_pipelined_ordering;
        Alcotest.test_case "depth back-pressure" `Quick
          test_pipeline_depth_backpressure;
        Alcotest.test_case "quit closes the connection" `Quick
          test_quit_closes_connection;
      ] );
    ( "server:e2e",
      [
        Alcotest.test_case "socket round trip" `Quick test_end_to_end;
        Alcotest.test_case "open-loop load" `Quick test_open_loop_load;
        Alcotest.test_case "connect failure" `Quick
          test_load_gen_connect_failure;
      ] );
  ]
