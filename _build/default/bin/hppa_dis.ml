(* hppa-dis: disassemble a binary image produced by hppa-run --emit.

   Example:
     hppa-run prog.s --emit prog.bin
     hppa-dis prog.bin *)

let run file =
  let data =
    In_channel.with_open_bin file (fun ic ->
        Bytes.of_string (In_channel.input_all ic))
  in
  match Image.of_bytes data with
  | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      2
  | Ok insns ->
      print_string (Image.disassemble insns);
      0

open Cmdliner

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"IMAGE")

let cmd =
  Cmd.v
    (Cmd.info "hppa-dis" ~doc:"Disassemble an HPPA binary image")
    Term.(const run $ file)

let () = exit (Cmd.eval' cmd)
