(** The plan service: multiplexed socket front-end, sharded cache and
    drain.

    One event-loop thread owns every socket: the listener and all
    client connections are non-blocking and driven by [Unix.select]
    readiness, with per-connection read/write byte queues and a
    reply-slot queue. Requests {e pipeline}: a client may write up to
    [Config.pipeline_depth] requests before reading a reply, and
    replies always come back in request order — each parsed request
    takes a slot at parse time, slots are filled as shard jobs
    complete, and only the completed {e prefix} of the slot queue is
    flushed.

    Plan compute and the reply cache are {e sharded}: the normalized
    request key is hashed (FNV-1a) onto one of [Config.shards] shards,
    each owning an {!Lru} slice and a single worker domain with a
    private millicode machine. The event loop probes the owning slice
    for hits directly; the misses of one request are grouped per shard
    and posted as one job per shard (W64 misses run through
    {!Hppa_machine.Machine.Batch} when a batch request misses several
    lanes). Hot keys therefore never contend on a global lock, and
    batch verbs cost one job per shard touched, not one per lane.

    {!respond} is exposed separately because it is the entire protocol
    surface: the fuzz suite drives it directly, without sockets, and
    the pipelining tests use it as the byte-identity oracle. It runs
    the same staged dispatch as the event loop — same cache probes,
    same shard jobs, same assembly — so its replies are byte-identical
    to the served ones. It never raises.

    Shutdown: {!stop} (also invoked by the daemon's SIGINT/SIGTERM
    handlers) makes the loop close the listener at once, finish every
    in-flight request, flush the ordered replies, close connections,
    drain the shard pools and return from {!run}. Connections that
    cannot drain within [Config.drain_grace_s] are closed forcibly. *)

(** Immutable server configuration, fixed at {!create} (mirroring
    [Machine.Config.t]): endpoint, shard count, event-loop parameters,
    pipeline depth, warm-start and certified-only serving. *)
module Config : sig
  type endpoint = Unix_socket of string | Tcp of string * int

  type t = {
    endpoint : endpoint;
    shards : int;
        (** cache/compute shards, one worker domain each; >= 1 *)
    cache_capacity : int;
        (** total LRU plan-cache entries, split across shards (each
            shard holds at least one); >= 1 *)
    fuel : int;  (** per-EVAL / per-W64 cycle budget *)
    pipeline_depth : int;
        (** max requests in flight per connection; further input is
            left in the socket buffer (back-pressure); >= 1 *)
    backlog : int;  (** listen(2) backlog *)
    tick_s : float;
        (** event-loop select timeout — bounds stop/drain latency *)
    drain_grace_s : float;
        (** on {!stop}, how long to wait for in-flight requests and
            unflushed replies before closing connections forcibly *)
    trace_path : string option;
        (** when set, keep a bounded request-event trace and write it as
            JSONL to this path when {!run} drains *)
    plans_path : string option;
        (** when set, warm-start: load the [BENCH_PLANS.json] store
            (written by [bench plans], {!Hppa_plan.Autotune.Store}) at
            {!create} time and pre-compute the reply for every measured
            MUL/DIV-expressible request, so benchmarked plans are cache
            hits from the first client on. Unreadable or stale stores
            warm nothing and never fail startup. *)
    certified : bool;
        (** certified-only serving: every MUL/DIV plan (computed or
            warm-started) is selected with
            [Selector.choose ~require_certified:true], so each cached
            artifact carries a {!Hppa_verify.Certificate} digest.
            Strategies whose emission the certifier cannot prove are
            passed over in favour of the certified millicode
            call-through; reply bytes are unchanged. *)
  }

  val default : t
  (** Unix socket ["hppa-serve.sock"], 2 shards, cache 4096, fuel 1e6,
      pipeline depth 64, backlog 128, tick 50 ms, drain grace 5 s, no
      trace, no warm-start, not certified-only. *)
end

type t

val create : Config.t -> t
(** Builds the shards (LRU slice + one worker domain each), metrics and
    observability registry; does not open the socket ({!run} does).
    The registry carries the server metric families ([hppa_serve_*],
    [hppa_pool_*] labelled per shard); worker machines keep their
    simulator stats private. Raises [Invalid_argument] on out-of-range
    configuration. *)

val config : t -> Config.t

val registry : t -> Hppa_obs.Obs.Registry.t
(** The server's observability registry — what [METRICS] scrapes. MUL
    and DIV dispatch through {!Hppa_plan.Selector} against it, so the
    per-strategy [hppa_plan_candidates_total] /
    [hppa_plan_selections_total] families appear here alongside the
    [hppa_serve_*] ones. *)

val artifacts : t -> (string * Plan.artifact) list
(** The selector verdicts cached alongside the reply bytes, as
    (cache key, artifact) pairs sorted by key — one per distinct
    plan request computed (or warm-started) so far. *)

val respond : t -> string -> string
(** Map one raw request line to one reply (no trailing newline).
    Total: malformed input yields an ["ERR ..."] reply; internal
    exceptions are caught and reported as ["ERR internal ..."]. Every
    reply is a single line except the [METRICS] scrape (multi-line
    Prometheus text whose last line is ["# EOF"]) and the batch
    replies (["OK <VERB>B k=<K>"] header followed by K lines, each
    byte-identical to the corresponding scalar reply — see
    {!is_batch_reply}). *)

val stats_payload : t -> string
(** The [STATS] reply payload (also available without a socket).
    Cache counters aggregate over all shards; [workers] is the shard
    count (one domain each). *)

val metrics_payload : t -> string
(** The [METRICS] reply: Prometheus exposition text of a registry
    snapshot, terminated by ["# EOF"] (no trailing newline). *)

val is_scrape : string -> bool
(** Does this reply look like a [METRICS] scrape (starts with [#])?
    Replies satisfy [is_ok || is_err || is_scrape]. *)

val is_batch_reply : string -> bool
(** Does this reply open with a batch header (["OK <VERB>B k="] for any
    kernel)? Batch replies are the only multi-line replies besides the
    [METRICS] scrape; every line after the header is itself
    [is_ok || is_err]. *)

val run : t -> unit
(** Bind, listen and serve on the event loop until {!stop}; then drain
    and return. Raises [Unix.Unix_error] if the endpoint cannot be
    bound. *)

val stop : t -> unit
(** Request graceful shutdown; safe from signal handlers and other
    threads. Idempotent. *)

val shutdown_pool : t -> unit
(** Drain every shard's worker pool without running the socket loop —
    for tests that only use {!respond}. Idempotent. *)

val pp_dump : Format.formatter -> t -> unit
(** Human-readable final report: metrics dump plus cache counters. *)
