lib/word/word.mli: Format
