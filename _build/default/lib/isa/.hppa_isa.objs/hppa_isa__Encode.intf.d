lib/isa/encode.mli: Insn Program
