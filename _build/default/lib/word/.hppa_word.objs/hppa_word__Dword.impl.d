lib/word/dword.ml: Format Int64 Word
