lib/word/u128.ml: Format Int64
