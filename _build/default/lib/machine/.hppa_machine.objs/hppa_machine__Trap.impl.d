lib/machine/trap.ml: Format Printf
