(** Body-equivalence certifier.

    Proves that the routine [entry] in a candidate image is, instruction
    for instruction, the canonical library routine of the same name: the
    certifier walks both images in lockstep from the entry label —
    through branch targets, [BL] call targets (so transitively called
    millicode is covered) and fall-through — requiring structural
    equality at every step and a consistent branch-target
    correspondence. A completed walk is a simulation argument reported
    as a {!Certificate.kind.Body_equiv} certificate.

    A [BLR] case table is within the walk when the instruction before
    it is a plain unsigned extract computing the index: if the extract
    also dominates the branch (control cannot arrive any other way),
    the index is provably below [2^len] and every table slot is paired
    like an ordinary branch target. The walk stops short ([Unknown]) at
    anything else whose successors it cannot bound: an indirect branch
    that is not a return, an unbounded [BLR] table, or a materialized
    code address. *)

val certify :
  canonical:Program.resolved ->
  entry:string ->
  Program.resolved ->
  Reciprocal.verdict
